examples/custom_checker.ml: Filename Fsm Grapple Jir List Printf
