examples/custom_checker.mli:
