examples/hdfs_shutdown.mli:
