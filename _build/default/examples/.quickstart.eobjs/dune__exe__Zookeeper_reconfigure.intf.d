examples/zookeeper_reconfigure.mli:
