examples/quickstart.mli:
