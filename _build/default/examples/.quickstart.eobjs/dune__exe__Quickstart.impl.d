examples/quickstart.ml: Checkers Filename Grapple Jir List Printf
