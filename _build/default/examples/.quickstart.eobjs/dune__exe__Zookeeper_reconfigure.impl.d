examples/zookeeper_reconfigure.ml: Checkers Filename Grapple Jir List Printf
