examples/hdfs_shutdown.ml: Checkers Filename Grapple Jir List Printf
