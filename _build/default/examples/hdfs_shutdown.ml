(* The HDFS slow-shutdown bug of the paper's Figure 8(b), modeled in JIR.

   DataNode shutdown interrupts the block-scanner thread and joins it.  The
   scanner is deep inside  DataBlockScanner.run -> BlockSender.sendBlock ->
   BlockSender.sendPacket -> DataTransferThrottler.throttle,  and the
   interrupt surfaces in throttle's wait().  No method on that call stack
   handles it, so the interrupt is lost, the while loop keeps iterating and
   the shutdown hangs — a "deep bug" in the paper's terms.

   The exception checker walks the clone tree: the InterruptedException
   thrown in throttle escapes every (transitive) caller up to the thread
   entry point, so it is reported; the comparison method [safeThrottle],
   whose caller installs a handler, is not.

   Run with:  dune exec examples/hdfs_shutdown.exe                        *)

let source = {|
class DataTransferThrottler {
  void throttle(int numOfBytes) throws InterruptedException {
    int period = 500;
    int curPeriodStart = 0;
    int now = numOfBytes;
    int it = 0;
    while (it < 2) {
      int curPeriodEnd = curPeriodStart + period;
      if (now < curPeriodEnd) {
        throw new InterruptedException();
      }
      it = it + 1;
    }
    return;
  }

  void safeThrottle(int numOfBytes) throws InterruptedException {
    if (numOfBytes > 4096) {
      throw new InterruptedException();
    }
    return;
  }
}

class BlockSender {
  void sendPacket(int len) throws InterruptedException {
    DataTransferThrottler throttler = new DataTransferThrottler();
    throttler.throttle(len);
    return;
  }

  void sendBlock(int len) throws InterruptedException {
    int packet = len;
    while (packet > 0) {
      BlockSender.sendPacket(packet);
      packet = packet - 4096;
    }
    return;
  }
}

class DataBlockScanner {
  void run(int blockLen) {
    BlockSender.sendBlock(blockLen);
    DataTransferThrottler t = new DataTransferThrottler();
    try {
      t.safeThrottle(blockLen);
    } catch (InterruptedException e) {
      int handled = 1;
    }
    return;
  }
}

class Main {
  void main(int blockLen) {
    DataBlockScanner.run(blockLen);
    return;
  }
}
entry Main.main;
|}

let () =
  let program = Jir.Resolve.parse_exn ~file:"hdfs.jir" source in
  let workdir = Filename.concat (Filename.get_temp_dir_name ()) "grapple-hdfs" in
  let prepared = Grapple.Pipeline.prepare ~workdir program in
  let reports = Checkers.Exception_checker.run prepared in
  Printf.printf "%d warning(s):\n" (List.length reports);
  List.iter (fun r -> Printf.printf "  %s\n" (Grapple.Report.to_string r)) reports;
  print_newline ();
  print_endline
    "The InterruptedException thrown in throttle() escapes sendPacket,\n\
     sendBlock, run and main without ever meeting a catch block: the\n\
     interrupt sent by shutdown() is silently dropped (HDFS, paper Fig. 8b).\n\
     safeThrottle() throws the same exception but its caller handles it,\n\
     so it is not reported."
