(* Writing a checker of your own: Grapple takes (1) a program graph, (2) a
   set of types of interest and (3) an FSM over the events on those types
   (paper §1.2).  This example checks a database-transaction discipline:

       Idle --begin--> Active --commit/rollback--> Idle
       query is only legal while Active;
       a transaction must not be left Active at end of life.

   Everything below uses only the public API: the [Fsm] builder, the JIR
   parser, and [Grapple.Pipeline].

   Run with:  dune exec examples/custom_checker.exe                       *)

let transaction_fsm () : Fsm.t =
  let b = Fsm.builder "transaction" in
  Fsm.track b "Transaction";
  Fsm.initial b "Idle";
  Fsm.accepting b "Idle";
  Fsm.on b ~from:"Idle" ~event:"begin_" ~goto:"Active";
  Fsm.on b ~from:"Active" ~event:"query" ~goto:"Active";
  Fsm.on b ~from:"Active" ~event:"commit" ~goto:"Idle";
  Fsm.on b ~from:"Active" ~event:"rollback" ~goto:"Idle";
  (* events out of protocol are errors, not no-ops *)
  Fsm.on b ~from:"Idle" ~event:"query" ~goto:"Error";
  Fsm.on b ~from:"Idle" ~event:"commit" ~goto:"Error";
  Fsm.build b

let source = {|
class OrderService {
  void placeOrder(int amount) {
    Transaction tx = new Transaction();
    tx.begin_(1);
    tx.query(amount);
    if (amount > 100) {
      tx.commit(1);
    } else {
      tx.rollback(1);
    }
    return;
  }

  void auditOrder(int amount) {
    Transaction tx = new Transaction();
    tx.begin_(1);
    tx.query(amount);
    if (amount > 0) {
      tx.commit(1);
    }
    return;
  }

  void refundOrder(int amount) {
    Transaction tx = new Transaction();
    tx.query(amount);
    tx.begin_(1);
    tx.rollback(1);
    return;
  }
}

class Main {
  void main(int amount) {
    OrderService svc = new OrderService();
    svc.placeOrder(amount);
    svc.auditOrder(amount);
    svc.refundOrder(amount);
    return;
  }
}
entry Main.main;
|}

let () =
  let program = Jir.Resolve.parse_exn ~file:"orders.jir" source in
  let workdir = Filename.concat (Filename.get_temp_dir_name ()) "grapple-custom" in
  let prepared = Grapple.Pipeline.prepare ~workdir program in
  let result = Grapple.Pipeline.check_property prepared (transaction_fsm ()) in
  Printf.printf "%d warning(s):\n" (List.length result.Grapple.Pipeline.reports);
  List.iter
    (fun r -> Printf.printf "  %s\n" (Grapple.Report.to_string r))
    result.Grapple.Pipeline.reports;
  print_newline ();
  print_endline
    "placeOrder commits or rolls back on every path: no warning.\n\
     auditOrder leaves the transaction Active when amount <= 0: leak.\n\
     refundOrder queries before begin_: error state."
