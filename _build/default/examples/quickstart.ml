(* Quickstart: the paper's running example (Figures 3a/3b).

   A FileWriter must obey  Open --write*--> Open --close--> Closed;
   the program below has four control-flow paths, one of which (x >= 0 and
   then y <= 0) allocates the writer but skips the close.  A third path
   (x < 0 and then y > 0) would be a false warning — it is infeasible
   because y = x + 1 <= 0 there — and Grapple's path sensitivity prunes it.

   Run with:  dune exec examples/quickstart.exe                           *)

let source = {|
class Main {
  void main(int a) {
    FileWriter out = null;
    FileWriter o = null;
    int x = a;
    int y = x;
    if (x >= 0) {
      out = new FileWriter();
      o = out;
      y = y - 1;
    } else {
      y = y + 1;
    }
    if (y > 0) {
      out.write(x);
      o.close();
    }
    return;
  }
}
entry Main.main;
|}

let () =
  (* 1. parse and resolve the program *)
  let program = Jir.Resolve.parse_exn ~file:"figure3b.jir" source in
  Printf.printf "parsed %d statement(s)\n" (Jir.Ast.program_size program);

  (* 2. run the shared frontend + phase-1 alias analysis *)
  let workdir = Filename.concat (Filename.get_temp_dir_name ()) "grapple-quickstart" in
  let prepared = Grapple.Pipeline.prepare ~workdir program in
  Printf.printf "alias analysis done: %d flowsTo fact(s) from allocation sites\n"
    prepared.Grapple.Pipeline.n_alias_pairs;

  (* 3. check the Figure 3a property *)
  let fsm = Checkers.Specs.io_fsm () in
  let result = Grapple.Pipeline.check_property prepared fsm in

  (* 4. report *)
  let reports = result.Grapple.Pipeline.reports in
  Printf.printf "\n%d warning(s):\n" (List.length reports);
  List.iter
    (fun r -> Printf.printf "  %s\n" (Grapple.Report.to_string r))
    reports;
  match reports with
  | [ { Grapple.Report.kind = Grapple.Report.Leak state; _ } ] ->
      Printf.printf
        "\nThe writer allocated under x >= 0 can reach the program exit in \
         state %s\nwhen y = x - 1 <= 0 (i.e. x = 0): the second conditional \
         skips the close.\nThe infeasible path (x < 0 then y > 0) was pruned \
         and produced no warning.\n"
        state
  | _ -> Printf.printf "\nunexpected result; see warnings above\n"
