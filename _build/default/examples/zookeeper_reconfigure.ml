(* The ZooKeeper 3.5.0 socket-channel leak of the paper's Figure 1, modeled
   in JIR.

   NIOServerCnxnFactory.reconfigure saves the old server socket channel in
   [oldSS], opens a new channel, and only closes [oldSS] several statements
   later.  The statements in between (bind, configureBlocking) can throw
   IOException; on that path control jumps to the catch block, the reference
   to [oldSS] is effectively lost, and the old channel stays open forever.

   The socket checker reports the leak because the FSM state of the old
   channel at a (normal) program exit reachable through the handler is not
   Closed.

   Run with:  dune exec examples/zookeeper_reconfigure.exe                 *)

let source = {|
class NIOServerCnxnFactory {
  void configure(int addr) {
    ServerSocketChannel ss = new ServerSocketChannel();
    ss.bind(addr);
    ss.configureBlocking(0);
    ss.close();
    return;
  }

  void reconfigure(int addr) {
    ServerSocketChannel oldSS = new ServerSocketChannel();
    oldSS.bind(addr);
    try {
      ServerSocketChannel ss = new ServerSocketChannel();
      ss.bind(addr);
      ss.configureBlocking(0);
      oldSS.close();
      ss.close();
    } catch (IOException e) {
      int logged = 1;
    }
    return;
  }
}

class Main {
  void main(int addr) {
    NIOServerCnxnFactory factory = new NIOServerCnxnFactory();
    factory.configure(addr);
    factory.reconfigure(addr);
    return;
  }
}
entry Main.main;
|}

let () =
  let program = Jir.Resolve.parse_exn ~file:"zookeeper.jir" source in
  let workdir =
    Filename.concat (Filename.get_temp_dir_name ()) "grapple-zookeeper"
  in
  let config =
    { (Grapple.Pipeline.default_config ~workdir) with
      (* bind/configureBlocking on channels may raise, as in the JDK *)
      Grapple.Pipeline.library_throwers =
        [ ("ServerSocketChannel", "bind", "IOException");
          ("ServerSocketChannel", "configureBlocking", "IOException") ] }
  in
  let prepared = Grapple.Pipeline.prepare ~config ~workdir program in
  let result = Grapple.Pipeline.check_property prepared (Checkers.Specs.socket_fsm ()) in
  Printf.printf "%d warning(s):\n" (List.length result.Grapple.Pipeline.reports);
  List.iter
    (fun r -> Printf.printf "  %s\n" (Grapple.Report.to_string r))
    result.Grapple.Pipeline.reports;
  print_newline ();
  print_endline
    "The channel opened by configure() is always closed: no warning for it.";
  print_endline
    "The old channel in reconfigure() leaks when bind/configureBlocking on \
     the\nnew channel throws before `oldSS.close()` executes, exactly the \
     bug\nGrapple reported against ZooKeeper 3.5.0 (paper, Figure 1).  The \
     new\nchannel itself leaks on the same exception path (the handler \
     closes\nneither), which is the second warning."
