(* The exception-handler checker (paper §5.1): finds explicitly thrown
   exceptions that never have handlers, i.e. exceptional control flow that
   escapes every (transitive) caller and terminates the process — the class
   of bugs studied by Yuan et al. that the paper reports as its largest
   category.

   The check walks the clone tree.  An exceptional CFET leaf escapes an
   instance; whether it then escapes the whole program is decided by the
   caller-side structure the CFET construction already materialized: a call
   that may throw diverges in the caller, and its false child is either the
   matching handler's code or — when no handler exists in the caller — an
   exceptional leaf that recursively escapes.  A leaf is only reported when
   its local root-to-leaf path constraint is satisfiable, making the check
   path-sensitive within the throwing method. *)

module Pipeline = Grapple.Pipeline
module Report = Grapple.Report
module Icfet = Symexec.Icfet
module Cfet = Symexec.Cfet
module Clone_tree = Graphgen.Clone_tree
module Solver = Smt.Solver

let checker_name = "exception"

(* Does the exceptional leaf [node] of [inst] escape the whole program?
   Memoized over (instance, node). *)
let escape_analysis (icfet : Icfet.t) (clones : Clone_tree.t) =
  let memo : (int * int, bool) Hashtbl.t = Hashtbl.create 256 in
  (* reverse call-site map *)
  let entries_rev : (int, (int * int) list) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.iter
    (fun (caller, call_id) callee ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt entries_rev callee) in
      Hashtbl.replace entries_rev callee ((caller, call_id) :: cur))
    clones.Clone_tree.by_site;
  let rec escapes inst node =
    match Hashtbl.find_opt memo (inst, node) with
    | Some b -> b
    | None ->
        Hashtbl.replace memo (inst, node) false (* cut recursion cycles *);
        let result =
          let entering =
            Option.value ~default:[] (Hashtbl.find_opt entries_rev inst)
          in
          if
            List.mem inst clones.Clone_tree.entry_instances || entering = []
          then true
          else
            List.exists
              (fun (caller, call_id) ->
                let ce = Icfet.call_edge icfet call_id in
                let caller_node = ce.Icfet.caller_node in
                (* the may-throw divergence put the call at the head of a
                   true child; the false sibling receives the exception *)
                if ce.Icfet.diverges && caller_node > 0 then begin
                  let sibling = caller_node - 1 in
                  let caller_cfet = Icfet.cfet icfet ce.Icfet.caller_meth in
                  match Hashtbl.find_opt caller_cfet.Cfet.nodes sibling with
                  | Some n -> (
                      match n.Cfet.exit with
                      | Some (Cfet.Exceptional _) -> escapes caller sibling
                      | Some (Cfet.Normal _) | None -> false)
                  | None -> false
                end
                else
                  (* no divergence in the caller: the callee's declared
                     throws did not cover this exception; treat as escaping
                     (conservative) *)
                  true)
              entering
        in
        Hashtbl.replace memo (inst, node) result;
        result
  in
  escapes

(* Position to blame for an exceptional leaf: its trailing [throw], or the
   call statement that the divergence guarded (first statement of the true
   sibling). *)
let blame_position (cfet : Cfet.t) (n : Cfet.node) : Jir.Ast.pos option =
  match List.rev n.Cfet.stmts with
  | ({ Jir.Ast.kind = Jir.Ast.Throw _; _ } as s) :: _ -> Some s.Jir.Ast.at
  | _ -> (
      let sibling = n.Cfet.id + 1 in
      match Hashtbl.find_opt cfet.Cfet.nodes sibling with
      | Some sib -> (
          match sib.Cfet.stmts with s :: _ -> Some s.Jir.Ast.at | [] -> None)
      | None -> None)

(* Run the checker over a prepared pipeline state. *)
let run (p : Pipeline.prepared) : Report.t list =
  let icfet = p.Pipeline.icfet in
  let clones = p.Pipeline.clones in
  let escapes = escape_analysis icfet clones in
  let reports = ref [] in
  Array.iter
    (fun (inst : Clone_tree.instance) ->
      let cfet = Icfet.cfet icfet inst.Clone_tree.meth in
      Hashtbl.iter
        (fun node_id (n : Cfet.node) ->
          match (n.Cfet.exit, List.rev n.Cfet.stmts) with
          (* only *explicitly thrown* exceptions are the checker's target
             (paper §5: "explicitly thrown exceptions never have handlers");
             leaves created by may-throw library calls are not reported *)
          | ( Some (Cfet.Exceptional exn_class),
              { Jir.Ast.kind = Jir.Ast.Throw _; _ } :: _ )
            when escapes inst.Clone_tree.inst_id node_id ->
              (* path sensitivity: only report leaves whose local path is
                 feasible *)
              let local =
                Cfet.path_constraint cfet ~first:0 ~last:node_id
              in
              let feasible =
                match Solver.check local with
                | Solver.Sat | Solver.Unknown -> true
                | Solver.Unsat -> false
              in
              if feasible then begin
                let at =
                  Option.value ~default:Jir.Ast.no_pos
                    (blame_position cfet n)
                in
                reports :=
                  { Report.checker = checker_name;
                    kind = Report.Unhandled_exception exn_class;
                    cls = exn_class;
                    alloc_at = at;
                    site = None;
                    context = [ Jir.Ast.meth_id cfet.Cfet.meth ];
                    witness = Grapple.Pipeline.witness_of_constraint local;
                    trace =
                      Icfet.trace_of icfet
                        [ Pathenc.Encoding.Interval
                            { meth = inst.Clone_tree.meth; first = 0;
                              last = node_id } ] }
                  :: !reports
              end
          | _ -> ())
        cfet.Cfet.nodes)
    clones.Clone_tree.instances;
  Report.dedup (List.rev !reports)
