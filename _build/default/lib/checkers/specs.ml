(* The four finite-state properties of the paper's evaluation (§5): Java
   I/O resources, lock usage, exception handling, and socket usage.

   Tracking starts at the allocation, so the initial state of each FSM is
   the state *after* the constructor event (e.g. a FileWriter is Open as
   soon as it exists, matching Figure 3a where new() immediately leaves
   Init). *)

let io_classes =
  [ "FileWriter"; "FileReader"; "FileInputStream"; "FileOutputStream";
    "BufferedWriter"; "BufferedReader"; "PrintWriter"; "DataOutputStream" ]

(* Figure 3a: Open --write*--> Open --close--> Closed; write after close is
   an error; an object not Closed at end of life leaks. *)
let io_fsm () : Fsm.t =
  let b = Fsm.builder "io" in
  List.iter (Fsm.track b) io_classes;
  Fsm.initial b "Open";
  Fsm.accepting b "Closed";
  Fsm.on b ~from:"Open" ~event:"write" ~goto:"Open";
  Fsm.on b ~from:"Open" ~event:"read" ~goto:"Open";
  Fsm.on b ~from:"Open" ~event:"flush" ~goto:"Open";
  Fsm.on b ~from:"Open" ~event:"close" ~goto:"Closed";
  Fsm.on b ~from:"Closed" ~event:"close" ~goto:"Closed";
  Fsm.on b ~from:"Closed" ~event:"write" ~goto:"Error";
  Fsm.on b ~from:"Closed" ~event:"read" ~goto:"Error";
  Fsm.on b ~from:"Closed" ~event:"flush" ~goto:"Error";
  Fsm.build b

let lock_classes = [ "ReentrantLock"; "Lock"; "ReadLock"; "WriteLock" ]

(* lock/unlock pairing: unlock without a held lock is an error; a lock held
   at end of life (never released) is reported as a leak. *)
let lock_fsm () : Fsm.t =
  let b = Fsm.builder "lock" in
  List.iter (Fsm.track b) lock_classes;
  Fsm.initial b "Unlocked";
  Fsm.accepting b "Unlocked";
  Fsm.on b ~from:"Unlocked" ~event:"lock" ~goto:"Locked";
  Fsm.on b ~from:"Locked" ~event:"unlock" ~goto:"Unlocked";
  Fsm.on b ~from:"Unlocked" ~event:"unlock" ~goto:"Error";
  Fsm.build b

let socket_classes =
  [ "Socket"; "ServerSocket"; "ServerSocketChannel"; "SocketChannel" ]

(* Figure 2 (extended): a channel is Open on creation, must be bound before
   accepting, and must be closed before the program exits. *)
let socket_fsm () : Fsm.t =
  let b = Fsm.builder "socket" in
  List.iter (Fsm.track b) socket_classes;
  Fsm.initial b "Open";
  Fsm.accepting b "Closed";
  Fsm.on b ~from:"Open" ~event:"bind" ~goto:"Bound";
  Fsm.on b ~from:"Open" ~event:"configureBlocking" ~goto:"Open";
  Fsm.on b ~from:"Open" ~event:"connect" ~goto:"Ready";
  Fsm.on b ~from:"Open" ~event:"setTcpNoDelay" ~goto:"Open";
  Fsm.on b ~from:"Bound" ~event:"configureBlocking" ~goto:"Bound";
  Fsm.on b ~from:"Bound" ~event:"accept" ~goto:"Ready";
  Fsm.on b ~from:"Ready" ~event:"accept" ~goto:"Ready";
  Fsm.on b ~from:"Ready" ~event:"read" ~goto:"Ready";
  Fsm.on b ~from:"Ready" ~event:"write" ~goto:"Ready";
  Fsm.on b ~from:"Open" ~event:"close" ~goto:"Closed";
  Fsm.on b ~from:"Bound" ~event:"close" ~goto:"Closed";
  Fsm.on b ~from:"Ready" ~event:"close" ~goto:"Closed";
  Fsm.on b ~from:"Open" ~event:"accept" ~goto:"Error";
  Fsm.on b ~from:"Closed" ~event:"accept" ~goto:"Error";
  Fsm.on b ~from:"Closed" ~event:"bind" ~goto:"Error";
  Fsm.on b ~from:"Closed" ~event:"connect" ~goto:"Error";
  Fsm.build b

(* Library calls on resource classes that can raise in real systems code;
   used as the default may-throw table for the frontends. *)
let library_throwers =
  [ ("Socket", "connect", "IOException");
    ("Socket", "bind", "IOException");
    ("ServerSocketChannel", "bind", "IOException");
    ("SocketChannel", "connect", "IOException");
    ("FileWriter", "write", "IOException");
    ("FileOutputStream", "write", "IOException") ]

(* Null-dereference checker: [null] assignments are pseudo-allocations of
   the <null> pseudo-class (see Alias_graph.null_class); any method call on
   a receiver that may still reference that null on a feasible path is an
   error.  Variable versioning kills the source on reassignment, and path
   sensitivity confines the report to the paths where the null actually
   reaches the call. *)
let null_fsm () : Fsm.t =
  let b = Fsm.builder "null" in
  Fsm.track b Graphgen.Alias_graph.null_class;
  Fsm.initial b "Null";
  Fsm.accepting b "Null";  (* an unused null is fine *)
  (* no declared transitions: in strict mode every event on a null
     receiver goes to Error *)
  Fsm.strict_events b;
  Fsm.build b
