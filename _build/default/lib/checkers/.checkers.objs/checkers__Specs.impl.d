lib/checkers/specs.ml: Fsm Graphgen List
