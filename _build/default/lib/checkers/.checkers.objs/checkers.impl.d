lib/checkers/checkers.ml: Exception_checker Fsm Grapple List Specs
