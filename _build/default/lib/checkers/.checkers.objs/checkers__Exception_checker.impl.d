lib/checkers/exception_checker.ml: Array Graphgen Grapple Hashtbl Jir List Option Pathenc Smt Symexec
