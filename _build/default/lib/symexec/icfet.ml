(* The interprocedural CFET (paper §3.2, §3.3): the per-method CFETs plus
   call and return edges connecting them.  The ICFET is *not* inlined; it is
   the in-memory index the engine consults to decode an interval-sequence
   encoding into a concrete interprocedural path and compute its constraint.

   A call edge records the call-site id, the node containing the call
   statement, and the parameter-passing equations (callee formal symbol =
   symbolic argument expression).  Return edges are implicit: a [Ret i]
   element in an encoding names call site [i], and the callee leaf it leaves
   from is the [last] endpoint of the preceding interval, whose recorded
   symbolic return value yields the value-return equation. *)

module Symbol = Smt.Symbol
module Linexpr = Smt.Linexpr
module Formula = Smt.Formula
module Solver = Smt.Solver
module Encoding = Pathenc.Encoding


type call_edge = {
  call_id : int;
  caller_meth : int;          (* method index *)
  caller_node : int;          (* CFET node containing the call statement *)
  call_sid : int;             (* statement id of the call *)
  callee_meth : int;
  param_equations : (Symbol.t * Linexpr.t) list;  (* formal = argument *)
  lhs : (Jir.Ast.var * Symbol.t) option;          (* receiver of the result *)
  diverges : bool;  (* the caller node is the true child of a may-throw
                       divergence; its false sibling receives exceptions *)
}

type t = {
  program : Jir.Ast.program;
  config : Cfet.config;
  cfets : Cfet.t array;
  meth_index : (string, int) Hashtbl.t;
  call_edges : call_edge array;
  site_index : (int * int * int, int) Hashtbl.t;
      (* (meth_idx, node_id, sid) -> call_id *)
}

let meth_idx t id = Hashtbl.find_opt t.meth_index id
let cfet t idx = t.cfets.(idx)
let cfet_of_meth t id = Option.map (fun i -> t.cfets.(i)) (meth_idx t id)
let call_edge t id = t.call_edges.(id)
let call_id_of_site t ~meth ~node ~sid =
  Hashtbl.find_opt t.site_index (meth, node, sid)

let n_methods t = Array.length t.cfets
let n_call_edges t = Array.length t.call_edges

let total_nodes t =
  Array.fold_left (fun acc c -> acc + c.Cfet.node_count) 0 t.cfets

(* Build the ICFET of a loop-free program. *)
let build ?(config : Cfet.config option) (p : Jir.Ast.program) : t =
  let config =
    match config with Some c -> c | None -> Cfet.default_config p
  in
  let methods = Jir.Ast.all_methods p in
  let meth_index = Hashtbl.create 64 in
  List.iteri (fun i m -> Hashtbl.replace meth_index (Jir.Ast.meth_id m) i)
    methods;
  let cfets =
    Array.of_list
      (List.mapi (fun i m -> Cfet.build ~config ~meth_idx:i m) methods)
  in
  let call_edges = ref [] in
  let site_index = Hashtbl.create 256 in
  let next_id = ref 0 in
  Array.iteri
    (fun caller_meth c ->
      Hashtbl.iter
        (fun node_id (n : Cfet.node) ->
          List.iter
            (fun (ci : Cfet.call_info) ->
              match Hashtbl.find_opt meth_index ci.Cfet.callee_id with
              | None -> ()  (* library call: event or no-op, no edge *)
              | Some callee_meth ->
                  let callee = cfets.(callee_meth).Cfet.meth in
                  let callee_id = Jir.Ast.meth_id callee in
                  let param_equations =
                    let rec pair params args acc =
                      match (params, args) with
                      | [], _ | _, [] -> List.rev acc
                      | (Jir.Ast.Tint, pname) :: ps, arg :: args ->
                          pair ps args
                            ((Symenv.param_symbol ~meth_id:callee_id pname, arg)
                             :: acc)
                      | _ :: ps, _ :: args -> pair ps args acc
                    in
                    pair callee.Jir.Ast.params ci.Cfet.arg_values []
                  in
                  let call_id = !next_id in
                  incr next_id;
                  Hashtbl.replace site_index
                    (caller_meth, node_id, ci.Cfet.call_stmt.Jir.Ast.sid)
                    call_id;
                  call_edges :=
                    { call_id; caller_meth; caller_node = node_id;
                      call_sid = ci.Cfet.call_stmt.Jir.Ast.sid; callee_meth;
                      param_equations; lhs = ci.Cfet.lhs;
                      diverges = ci.Cfet.diverges }
                    :: !call_edges)
            n.Cfet.calls)
        c.Cfet.nodes)
    cfets;
  let call_edges =
    let arr = Array.of_list (List.rev !call_edges) in
    Array.sort (fun a b -> compare a.call_id b.call_id) arr;
    arr
  in
  { program = p; config; cfets; meth_index; call_edges; site_index }

(* ------------------------------------------------------------------ *)
(* Path decoding (paper Algorithm 1 extended to interprocedural paths). *)
(* ------------------------------------------------------------------ *)

exception Bad_encoding of string

(* Decode an interval-sequence encoding into its path constraint: the
   conjunction of the branch constraints of every intraprocedural fragment,
   the parameter-passing equations of every call edge crossed, and the
   value-return equations of every return edge crossed. *)
let constraint_of (t : t) (enc : Encoding.t) : Formula.t =
  let conj = ref Formula.True in
  let add f = conj := Formula.and_ !conj f in
  (* [last_interval] tracks the most recent interval within one fragment so
     a [Ret i] can recover which callee leaf the path returned from.  A
     [Rev] fragment is a forward path traversed backwards: its constraint is
     the constraint of the wrapped path, so recurse with a fresh state. *)
  let rec walk els =
    let last_interval = ref None in
    List.iter
      (fun el ->
        match el with
        | Encoding.Interval { meth; first; last } ->
            if meth < 0 || meth >= Array.length t.cfets then
              raise (Bad_encoding (Encoding.to_string enc));
            add (Cfet.path_constraint t.cfets.(meth) ~first ~last);
            last_interval := Some (meth, last)
        | Encoding.Call i ->
            if i < 0 || i >= Array.length t.call_edges then
              raise (Bad_encoding (Encoding.to_string enc));
            let ce = t.call_edges.(i) in
            List.iter
              (fun (formal, arg) -> add (Formula.eq (Linexpr.var formal) arg))
              ce.param_equations;
            last_interval := None
        | Encoding.Ret i ->
            if i < 0 || i >= Array.length t.call_edges then
              raise (Bad_encoding (Encoding.to_string enc));
            let ce = t.call_edges.(i) in
            (match (!last_interval, ce.lhs) with
            | Some (m, leaf), Some (_, lhs_sym) when m = ce.callee_meth -> (
                let n = Cfet.node t.cfets.(m) leaf in
                match n.Cfet.exit with
                | Some (Cfet.Normal (Some ret)) ->
                    add (Formula.eq (Linexpr.var lhs_sym) ret)
                | Some (Cfet.Normal None) | Some (Cfet.Exceptional _) | None
                  ->
                    ())
            | _ -> ());
            last_interval := None
        | Encoding.Rev inner | Encoding.Aux inner -> walk inner)
      els
  in
  walk enc;
  !conj

(* Satisfiability of an encoding's constraint; the hot path of the engine. *)
let satisfiable (t : t) (enc : Encoding.t) : bool =
  match Solver.check (constraint_of t enc) with
  | Solver.Sat | Solver.Unknown -> true
  | Solver.Unsat -> false

(* The forward interprocedural node sequence an encoding traverses:
   (method index, CFET node id) in path order.  Reversed and auxiliary
   fragments are skipped — they are value-flow evidence, not the control
   path itself.  This is the "recover a path during the computation" half
   of the paper's encoding/decoding contribution, used to render witness
   traces in bug reports. *)
let nodes_of (t : t) (enc : Encoding.t) : (int * int) list =
  let out = ref [] in
  List.iter
    (fun el ->
      match el with
      | Encoding.Interval { meth; first; last } ->
          if meth >= 0 && meth < Array.length t.cfets then begin
            let rec up cur acc =
              if cur = first then cur :: acc
              else if cur < first || cur <= 0 then acc
              else up (Cfet.parent_id cur) (cur :: acc)
            in
            List.iter (fun n -> out := (meth, n) :: !out) (up last [])
          end
      | Encoding.Call _ | Encoding.Ret _ | Encoding.Rev _ | Encoding.Aux _ ->
          ())
    enc;
  List.rev !out

(* Human-readable rendering of [nodes_of]: one entry per visited node that
   contains statements, "Method (file:first-last)". *)
let trace_of (t : t) (enc : Encoding.t) : string list =
  let dedup_consecutive l =
    List.fold_left
      (fun acc x -> match acc with y :: _ when y = x -> acc | _ -> x :: acc)
      [] l
    |> List.rev
  in
  dedup_consecutive
  @@ List.filter_map
    (fun (meth, node_id) ->
      let cfet = t.cfets.(meth) in
      match Hashtbl.find_opt cfet.Cfet.nodes node_id with
      | None -> None
      | Some n -> (
          match n.Cfet.stmts with
          | [] -> None
          | stmts ->
              let lines =
                List.map (fun (s : Jir.Ast.stmt) -> s.Jir.Ast.at.Jir.Ast.line)
                  stmts
              in
              let file = (List.hd stmts).Jir.Ast.at.Jir.Ast.file in
              let lo = List.fold_left min max_int lines in
              let hi = List.fold_left max 0 lines in
              Some
                (if lo = hi then
                   Printf.sprintf "%s (%s:%d)"
                     (Jir.Ast.meth_id cfet.Cfet.meth) file lo
                 else
                   Printf.sprintf "%s (%s:%d-%d)"
                     (Jir.Ast.meth_id cfet.Cfet.meth) file lo hi)))
    (nodes_of t enc)
