lib/symexec/icfet.ml: Array Cfet Hashtbl Jir List Option Pathenc Printf Smt Symenv
