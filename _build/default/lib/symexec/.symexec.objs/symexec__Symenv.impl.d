lib/symexec/symenv.ml: Jir List Pathenc Printf Smt
