lib/symexec/cfet.ml: Fmt Hashtbl Jir List Option Pathenc Printf Smt Symenv
