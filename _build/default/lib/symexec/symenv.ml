(* Symbolic store for the per-method symbolic execution that builds CFETs
   (§3.3).  Integer locals map to linear expressions over the method's
   symbolic variables: its formal parameters, plus fresh "unknown" symbols
   for values the intraprocedural execution cannot see (call return values,
   heap loads).  Object and boolean locals are not tracked. *)

module Symbol = Smt.Symbol
module Linexpr = Smt.Linexpr
module Formula = Smt.Formula
module Solver = Smt.Solver
module Encoding = Pathenc.Encoding


type t = (Jir.Ast.var * Linexpr.t) list  (* innermost binding first *)

let empty : t = []

(* The symbol standing for parameter [p] of method [meth_id]; shared between
   the CFET of the method and the call/return equations that reference it. *)
let param_symbol ~meth_id p = Symbol.intern (meth_id ^ "::" ^ p)

(* The symbol standing for the (statically unknown) value assigned to [v] by
   statement [sid]: globally unique because statement ids are. *)
let unknown_symbol ~meth_id v ~sid =
  Symbol.intern (Printf.sprintf "%s::%s@%d" meth_id v sid)

let init_for_method (m : Jir.Ast.meth) : t =
  List.filter_map
    (fun (t, p) ->
      match t with
      | Jir.Ast.Tint ->
          Some (p, Linexpr.var (param_symbol ~meth_id:(Jir.Ast.meth_id m) p))
      | Jir.Ast.Tbool | Jir.Ast.Tobj _ | Jir.Ast.Tvoid -> None)
    m.Jir.Ast.params

let bind (env : t) v value : t = (v, value) :: env

let lookup (env : t) v = List.assoc_opt v env

(* Value of a variable: its binding, or a symbol named after the variable
   itself (an argument-less unknown, e.g. a use before any tracked def). *)
let value_of (env : t) ~meth_id v =
  match lookup env v with
  | Some e -> e
  | None -> Linexpr.var (Symbol.intern (meth_id ^ "::" ^ v))

let rec eval (env : t) ~meth_id (e : Jir.Ast.expr) : Linexpr.t =
  match e with
  | Jir.Ast.Const n -> Linexpr.const n
  | Jir.Ast.Var v -> value_of env ~meth_id v
  | Jir.Ast.Binop (op, a, b) -> (
      let va = eval env ~meth_id a and vb = eval env ~meth_id b in
      match op with
      | Jir.Ast.Add -> Linexpr.add va vb
      | Jir.Ast.Sub -> Linexpr.sub va vb
      | Jir.Ast.Mul ->
          (* only linear products stay precise; a genuinely nonlinear product
             becomes a fresh unknown *)
          if Linexpr.is_const va then Linexpr.scale va.Linexpr.const vb
          else if Linexpr.is_const vb then Linexpr.scale vb.Linexpr.const va
          else Linexpr.var (Symbol.fresh "nonlinear"))

let rec eval_cond (env : t) ~meth_id (c : Jir.Ast.cond) : Formula.t =
  match c with
  | Jir.Ast.Bconst true -> Formula.True
  | Jir.Ast.Bconst false -> Formula.False
  | Jir.Ast.Cmp (op, a, b) -> (
      let va = eval env ~meth_id a and vb = eval env ~meth_id b in
      match op with
      | Jir.Ast.Le -> Formula.le va vb
      | Jir.Ast.Lt -> Formula.lt va vb
      | Jir.Ast.Ge -> Formula.ge va vb
      | Jir.Ast.Gt -> Formula.gt va vb
      | Jir.Ast.Eq -> Formula.eq va vb
      | Jir.Ast.Ne -> Formula.ne va vb)
  | Jir.Ast.And (a, b) ->
      Formula.and_ (eval_cond env ~meth_id a) (eval_cond env ~meth_id b)
  | Jir.Ast.Or (a, b) ->
      Formula.or_ (eval_cond env ~meth_id a) (eval_cond env ~meth_id b)
  | Jir.Ast.Not a -> Formula.not_ (eval_cond env ~meth_id a)
