(* Combinators for constructing JIR programs programmatically.  The workload
   generator and the domain examples build ASTs through this module rather
   than through text, so generated programs are well-formed by construction
   (they are still passed through [Resolve.run] as a sanity check). *)

open Ast

let pos ?(file = "<gen>") line = { file; line }

let v x = Var x
let i n = Const n
let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)

let ( <=: ) a b = Cmp (Le, a, b)
let ( <: ) a b = Cmp (Lt, a, b)
let ( >=: ) a b = Cmp (Ge, a, b)
let ( >: ) a b = Cmp (Gt, a, b)
let ( ==: ) a b = Cmp (Eq, a, b)
let ( <>: ) a b = Cmp (Ne, a, b)
let ( &&: ) a b = And (a, b)
let ( ||: ) a b = Or (a, b)
let not_ c = Not c

let decl ?at t x r = mk ?at (Decl (t, x, Some r))
let decl0 ?at t x = mk ?at (Decl (t, x, None))
let assign ?at x r = mk ?at (Assign (x, r))
let store ?at x f y = mk ?at (Store (x, f, y))
let if_ ?at c t f = mk ?at (If (c, t, f))
let while_ ?at c b = mk ?at (While (c, b))
let try_ ?at b catches = mk ?at (Try (b, catches))
let catch exn_class exn_var handler = { exn_class; exn_var; handler }
let throw ?at e = mk ?at (Throw e)
let return ?at e = mk ?at (Return e)
let ret0 ?at () = mk ?at (Return None)

let new_ cls args = Rnew (cls, args)
let load y f = Rload (y, f)
let null = Rnull
let e x = Rexpr x

let icall recv mname args = { recv = Some recv; target_class = ""; mname; args }
let scall cls mname args = { recv = None; target_class = cls; mname; args }

(* x.m(args); as a statement *)
let call_stmt ?at recv mname args = mk ?at (Expr (icall recv mname args))

(* x = recv.m(args) *)
let call_rhs recv mname args = Rcall (icall recv mname args)

(* x = Cls.m(args) *)
let scall_rhs cls mname args = Rcall (scall cls mname args)

let sstmt ?at cls mname args = mk ?at (Expr (scall cls mname args))

let meth ?(throws = []) ~cls ~name ?(params = []) ?(ret = Tvoid) body =
  { mclass = cls; mname = name; params; ret; throws; body }

let cls ?(fields = []) name methods = { cname = name; fields; methods }

let program ?(entries = []) classes = { classes; entries }

(* Run the resolver and fail loudly on malformed generated code: a generator
   bug, not an input error. *)
let resolved ?(entries = []) classes =
  let p, errs = Resolve.run (program ~entries classes) in
  (match errs with
  | [] -> ()
  | es ->
      let msgs = String.concat "; " (List.map Resolve.error_to_string es) in
      invalid_arg ("Builder.resolved: generated program is ill-formed: " ^ msgs));
  p
