(* Bounded loop unrolling (paper §3.1): every [while] loop is statically
   unrolled [bound] times, turning each method body into cycle-free code so
   that its CFET is a finite binary tree and every path has a unique interval
   encoding.  Copies receive fresh statement ids but keep source positions,
   so bug reports still point at the original line. *)

open Ast

let rec copy_block (b : block) : block = List.map copy_stmt b

and copy_stmt (s : stmt) : stmt =
  let kind =
    match s.kind with
    | (Decl _ | Assign _ | Store _ | Throw _ | Return _ | Expr _) as k -> k
    | If (c, t, f) -> If (c, copy_block t, copy_block f)
    | While (c, b) -> While (c, copy_block b)
    | Try (b, catches) ->
        Try
          ( copy_block b,
            List.map (fun c -> { c with handler = copy_block c.handler }) catches
          )
  in
  { s with sid = fresh_sid (); kind }

(* while (c) body   with bound k becomes
   if (c) { body; if (c) { body; ... } }   with k nested conditionals. *)
let rec unroll_block ~bound (b : block) : block =
  List.concat_map (unroll_stmt ~bound) b

and unroll_stmt ~bound (s : stmt) : stmt list =
  match s.kind with
  | Decl _ | Assign _ | Store _ | Throw _ | Return _ | Expr _ -> [ s ]
  | If (c, t, f) ->
      [ { s with kind = If (c, unroll_block ~bound t, unroll_block ~bound f) } ]
  | Try (b, catches) ->
      let catches =
        List.map
          (fun cc -> { cc with handler = unroll_block ~bound cc.handler })
          catches
      in
      [ { s with kind = Try (unroll_block ~bound b, catches) } ]
  | While (c, body) ->
      let body = unroll_block ~bound body in
      let rec expand k =
        if k = 0 then []
        else
          let inner = expand (k - 1) in
          let body_copy = copy_block body in
          [ { (copy_stmt s) with kind = If (c, body_copy @ inner, []) } ]
      in
      expand bound

let unroll_method ~bound (m : meth) : meth =
  { m with body = unroll_block ~bound m.body }

(* Unroll every loop in the program [bound] times (bound >= 1). *)
let unroll_program ~bound (p : program) : program =
  if bound < 1 then invalid_arg "Unroll.unroll_program: bound must be >= 1";
  let classes =
    List.map
      (fun c -> { c with methods = List.map (unroll_method ~bound) c.methods })
      p.classes
  in
  { p with classes }

(* True when no [While] remains anywhere in the program. *)
let is_loop_free (p : program) =
  let rec block_ok b = List.for_all stmt_ok b
  and stmt_ok s =
    match s.kind with
    | While _ -> false
    | Decl _ | Assign _ | Store _ | Throw _ | Return _ | Expr _ -> true
    | If (_, t, f) -> block_ok t && block_ok f
    | Try (b, catches) ->
        block_ok b && List.for_all (fun c -> block_ok c.handler) catches
  in
  List.for_all
    (fun c -> List.for_all (fun m -> block_ok m.body) c.methods)
    p.classes
