(* Pretty-printer for JIR.  The output is valid input for [Parser.parse],
   which the round-trip property tests rely on. *)

open Ast

let typ ppf = function
  | Tint -> Fmt.string ppf "int"
  | Tbool -> Fmt.string ppf "bool"
  | Tobj c -> Fmt.string ppf c
  | Tvoid -> Fmt.string ppf "void"

let binop ppf = function
  | Add -> Fmt.string ppf "+"
  | Sub -> Fmt.string ppf "-"
  | Mul -> Fmt.string ppf "*"

let cmpop ppf = function
  | Le -> Fmt.string ppf "<="
  | Lt -> Fmt.string ppf "<"
  | Ge -> Fmt.string ppf ">="
  | Gt -> Fmt.string ppf ">"
  | Eq -> Fmt.string ppf "=="
  | Ne -> Fmt.string ppf "!="

let rec expr ppf = function
  | Const n -> Fmt.int ppf n
  | Var v -> Fmt.string ppf v
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %a %a)" expr a binop op expr b

let rec cond ppf = function
  | Bconst true -> Fmt.string ppf "true"
  | Bconst false -> Fmt.string ppf "false"
  | Cmp (op, a, b) -> Fmt.pf ppf "%a %a %a" expr a cmpop op expr b
  | And (a, b) -> Fmt.pf ppf "(%a && %a)" cond a cond b
  | Or (a, b) -> Fmt.pf ppf "(%a || %a)" cond a cond b
  | Not c -> Fmt.pf ppf "!(%a)" cond c

let call ppf { recv; target_class; mname; args } =
  let pp_args = Fmt.list ~sep:(Fmt.any ", ") expr in
  match recv with
  | Some v -> Fmt.pf ppf "%s.%s(%a)" v mname pp_args args
  | None -> Fmt.pf ppf "%s.%s(%a)" target_class mname pp_args args

let rhs ppf = function
  | Rnew (c, args) ->
      Fmt.pf ppf "new %s(%a)" c (Fmt.list ~sep:(Fmt.any ", ") expr) args
  | Rload (v, f) -> Fmt.pf ppf "%s.%s" v f
  | Rcall c -> call ppf c
  | Rexpr e -> expr ppf e
  | Rnull -> Fmt.string ppf "null"

let rec stmt ind ppf (s : stmt) =
  let pad ppf () = Fmt.pf ppf "%s" (String.make ind ' ') in
  match s.kind with
  | Decl (t, v, None) -> Fmt.pf ppf "%a%a %s;" pad () typ t v
  | Decl (t, v, Some r) -> Fmt.pf ppf "%a%a %s = %a;" pad () typ t v rhs r
  | Assign (v, r) -> Fmt.pf ppf "%a%s = %a;" pad () v rhs r
  | Store (x, f, y) -> Fmt.pf ppf "%a%s.%s = %s;" pad () x f y
  | If (c, t, []) ->
      Fmt.pf ppf "%aif (%a) {@\n%a@\n%a}" pad () cond c (block (ind + 2)) t
        pad ()
  | If (c, t, f) ->
      Fmt.pf ppf "%aif (%a) {@\n%a@\n%a} else {@\n%a@\n%a}" pad () cond c
        (block (ind + 2)) t pad () (block (ind + 2)) f pad ()
  | While (c, b) ->
      Fmt.pf ppf "%awhile (%a) {@\n%a@\n%a}" pad () cond c (block (ind + 2)) b
        pad ()
  | Try (b, catches) ->
      Fmt.pf ppf "%atry {@\n%a@\n%a}" pad () (block (ind + 2)) b pad ();
      List.iter
        (fun c ->
          Fmt.pf ppf " catch (%s %s) {@\n%a@\n%a}" c.exn_class c.exn_var
            (block (ind + 2)) c.handler pad ())
        catches
  | Throw e -> Fmt.pf ppf "%athrow new %s();" pad () e
  | Return None -> Fmt.pf ppf "%areturn;" pad ()
  | Return (Some e) -> Fmt.pf ppf "%areturn %a;" pad () expr e
  | Expr c -> Fmt.pf ppf "%a%a;" pad () call c

and block ind ppf (b : block) =
  Fmt.pf ppf "%a" (Fmt.list ~sep:(Fmt.any "@\n") (stmt ind)) b

let meth ppf (m : meth) =
  let param ppf (t, v) = Fmt.pf ppf "%a %s" typ t v in
  let pp_throws ppf = function
    | [] -> ()
    | l -> Fmt.pf ppf " throws %a" (Fmt.list ~sep:(Fmt.any ", ") Fmt.string) l
  in
  Fmt.pf ppf "  %a %s(%a)%a {@\n%a@\n  }" typ m.ret m.mname
    (Fmt.list ~sep:(Fmt.any ", ") param)
    m.params pp_throws m.throws (block 4) m.body

let cls ppf (c : cls) =
  let fld ppf (t, f) = Fmt.pf ppf "  %a %s;" typ t f in
  Fmt.pf ppf "class %s {@\n%a%s%a@\n}" c.cname
    (Fmt.list ~sep:(Fmt.any "@\n") fld)
    c.fields
    (if c.fields = [] then "" else "\n")
    (Fmt.list ~sep:(Fmt.any "@\n@\n") meth)
    c.methods

let program ppf (p : program) =
  Fmt.pf ppf "%a@\n" (Fmt.list ~sep:(Fmt.any "@\n@\n") cls) p.classes;
  List.iter (fun (c, m) -> Fmt.pf ppf "@\nentry %s.%s;" c m) p.entries;
  Fmt.pf ppf "@\n"

let program_to_string p = Fmt.str "%a" program p
