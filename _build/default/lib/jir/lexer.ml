(* Hand-written lexer for the JIR surface syntax. *)

type token =
  | IDENT of string
  | INT of int
  | KW of string          (* class if else while try catch throw throws ... *)
  | LBRACE | RBRACE | LPAREN | RPAREN
  | SEMI | COMMA | DOT
  | ASSIGN                (* = *)
  | PLUS | MINUS | STAR
  | LE | LT | GE | GT | EQ | NE
  | ANDAND | OROR | BANG
  | EOF

exception Lex_error of string * int (* message, line *)

let keywords =
  [ "class"; "if"; "else"; "while"; "try"; "catch"; "throw"; "throws";
    "return"; "new"; "null"; "true"; "false"; "int"; "bool"; "void"; "entry" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

type lexed = { tok : token; line : int }

(* Tokenize [src] fully.  Comments: // to end of line and /* ... */. *)
let tokenize src : lexed list =
  let n = String.length src in
  let line = ref 1 in
  let out = ref [] in
  let emit tok = out := { tok; line = !line } :: !out in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (incr line; incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      let fin = ref false in
      while not !fin do
        if !i >= n then raise (Lex_error ("unterminated comment", !line));
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          i := !i + 2;
          fin := true
        end
        else incr i
      done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let s = String.sub src start (!i - start) in
      if List.mem s keywords then emit (KW s) else emit (IDENT s)
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      emit (INT (int_of_string (String.sub src start (!i - start))))
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "<=" -> emit LE; i := !i + 2
      | ">=" -> emit GE; i := !i + 2
      | "==" -> emit EQ; i := !i + 2
      | "!=" -> emit NE; i := !i + 2
      | "&&" -> emit ANDAND; i := !i + 2
      | "||" -> emit OROR; i := !i + 2
      | _ ->
          (match c with
          | '{' -> emit LBRACE
          | '}' -> emit RBRACE
          | '(' -> emit LPAREN
          | ')' -> emit RPAREN
          | ';' -> emit SEMI
          | ',' -> emit COMMA
          | '.' -> emit DOT
          | '=' -> emit ASSIGN
          | '+' -> emit PLUS
          | '-' -> emit MINUS
          | '*' -> emit STAR
          | '<' -> emit LT
          | '>' -> emit GT
          | '!' -> emit BANG
          | _ ->
              raise
                (Lex_error (Printf.sprintf "unexpected character %C" c, !line)));
          incr i
    end
  done;
  emit EOF;
  List.rev !out

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | KW s -> Printf.sprintf "keyword %S" s
  | LBRACE -> "'{'" | RBRACE -> "'}'" | LPAREN -> "'('" | RPAREN -> "')'"
  | SEMI -> "';'" | COMMA -> "','" | DOT -> "'.'"
  | ASSIGN -> "'='" | PLUS -> "'+'" | MINUS -> "'-'" | STAR -> "'*'"
  | LE -> "'<='" | LT -> "'<'" | GE -> "'>='" | GT -> "'>'"
  | EQ -> "'=='" | NE -> "'!='"
  | ANDAND -> "'&&'" | OROR -> "'||'" | BANG -> "'!'"
  | EOF -> "end of input"
