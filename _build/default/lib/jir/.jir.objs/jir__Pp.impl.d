lib/jir/pp.ml: Ast Fmt List String
