lib/jir/lexer.ml: List Printf String
