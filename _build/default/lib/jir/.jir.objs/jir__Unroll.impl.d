lib/jir/unroll.ml: Ast List
