lib/jir/builder.ml: Ast List Resolve String
