lib/jir/ast.ml: List
