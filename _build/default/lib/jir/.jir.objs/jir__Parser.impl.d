lib/jir/parser.ml: Array Ast Lexer List Printf
