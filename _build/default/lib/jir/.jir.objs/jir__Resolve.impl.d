lib/jir/resolve.ml: Ast Format Hashtbl List Option Parser Printf
