lib/jir/callgraph.ml: Array Ast Hashtbl List Option
