(* Recursive-descent parser for the JIR surface syntax.  Instance calls are
   parsed with [target_class = ""] and resolved by [Resolve.run], which also
   turns [ClassName.m(...)] receivers into static calls. *)

open Ast

exception Parse_error of string * int

type state = {
  toks : Lexer.lexed array;
  mutable cur : int;
  file : string;
}

let peek st = st.toks.(st.cur).tok
let line st = st.toks.(st.cur).line
let advance st = st.cur <- st.cur + 1

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s (got %s)" msg
                        (Lexer.token_to_string (peek st)),
                      line st))

let expect st tok msg =
  if peek st = tok then advance st else fail st msg

let accept st tok =
  if peek st = tok then (advance st; true) else false

let ident st =
  match peek st with
  | Lexer.IDENT s -> advance st; s
  | _ -> fail st "expected identifier"

let pos st = { file = st.file; line = line st }

(* ------------------------------------------------------------------ *)
(* Expressions: additive over multiplicative over atoms.              *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st = parse_additive st

and parse_additive st =
  let lhs = parse_multiplicative st in
  let rec loop lhs =
    match peek st with
    | Lexer.PLUS -> advance st; loop (Binop (Add, lhs, parse_multiplicative st))
    | Lexer.MINUS -> advance st; loop (Binop (Sub, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  loop lhs

and parse_multiplicative st =
  let lhs = parse_atom st in
  let rec loop lhs =
    match peek st with
    | Lexer.STAR -> advance st; loop (Binop (Mul, lhs, parse_atom st))
    | _ -> lhs
  in
  loop lhs

and parse_atom st =
  match peek st with
  | Lexer.INT n -> advance st; Const n
  | Lexer.MINUS ->
      advance st;
      (match peek st with
      | Lexer.INT n -> advance st; Const (-n)
      | _ -> Binop (Sub, Const 0, parse_atom st))
  | Lexer.IDENT v -> advance st; Var v
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.RPAREN "expected ')'";
      e
  | _ -> fail st "expected expression"

(* ------------------------------------------------------------------ *)
(* Conditions.  '(' is ambiguous between a parenthesized condition and
   a parenthesized arithmetic expression; resolved by backtracking.   *)
(* ------------------------------------------------------------------ *)

let cmp_of_token = function
  | Lexer.LE -> Some Le
  | Lexer.LT -> Some Lt
  | Lexer.GE -> Some Ge
  | Lexer.GT -> Some Gt
  | Lexer.EQ -> Some Eq
  | Lexer.NE -> Some Ne
  | _ -> None

let rec parse_cond st = parse_or_cond st

and parse_or_cond st =
  let lhs = parse_and_cond st in
  let rec loop lhs =
    if accept st Lexer.OROR then loop (Or (lhs, parse_and_cond st)) else lhs
  in
  loop lhs

and parse_and_cond st =
  let lhs = parse_cond_atom st in
  let rec loop lhs =
    if accept st Lexer.ANDAND then loop (And (lhs, parse_cond_atom st))
    else lhs
  in
  loop lhs

and parse_cond_atom st =
  match peek st with
  | Lexer.BANG -> advance st; Not (parse_cond_atom st)
  | Lexer.KW "true" -> advance st; Bconst true
  | Lexer.KW "false" -> advance st; Bconst false
  | Lexer.LPAREN ->
      (* Try a parenthesized condition first; fall back to a comparison
         whose left-hand side is a parenthesized arithmetic expression. *)
      let saved = st.cur in
      (try
         advance st;
         let c = parse_cond st in
         expect st Lexer.RPAREN "expected ')'";
         match cmp_of_token (peek st) with
         | Some _ -> fail st "condition followed by comparison"
         | None -> c
       with Parse_error _ ->
         st.cur <- saved;
         parse_comparison st)
  | _ -> parse_comparison st

and parse_comparison st =
  let lhs = parse_expr st in
  match cmp_of_token (peek st) with
  | Some op ->
      advance st;
      let rhs = parse_expr st in
      Cmp (op, lhs, rhs)
  | None -> fail st "expected comparison operator"

(* ------------------------------------------------------------------ *)
(* Statements.                                                         *)
(* ------------------------------------------------------------------ *)

let parse_args st =
  expect st Lexer.LPAREN "expected '('";
  if accept st Lexer.RPAREN then []
  else begin
    let rec loop acc =
      let e = parse_expr st in
      if accept st Lexer.COMMA then loop (e :: acc)
      else begin
        expect st Lexer.RPAREN "expected ')'";
        List.rev (e :: acc)
      end
    in
    loop []
  end

(* After IDENT DOT IDENT with '(' pending: an unresolved call. *)
let parse_call st ~recv ~mname =
  let args = parse_args st in
  { recv = Some recv; target_class = ""; mname; args }

let parse_rhs st =
  match peek st with
  | Lexer.KW "new" ->
      advance st;
      let c = ident st in
      let args = parse_args st in
      Rnew (c, args)
  | Lexer.KW "null" -> advance st; Rnull
  | Lexer.IDENT name when st.toks.(st.cur + 1).tok = Lexer.DOT ->
      advance st;
      advance st;
      let member = ident st in
      if peek st = Lexer.LPAREN then Rcall (parse_call st ~recv:name ~mname:member)
      else Rload (name, member)
  | _ -> Rexpr (parse_expr st)

let type_of_name = function
  | "int" -> Tint
  | "bool" -> Tbool
  | "void" -> Tvoid
  | c -> Tobj c

let rec parse_stmt st : stmt =
  let at = pos st in
  match peek st with
  | Lexer.KW "if" ->
      advance st;
      expect st Lexer.LPAREN "expected '(' after if";
      let c = parse_cond st in
      expect st Lexer.RPAREN "expected ')' after condition";
      let t = parse_block st in
      let f = if accept st (Lexer.KW "else") then parse_block st else [] in
      mk ~at (If (c, t, f))
  | Lexer.KW "while" ->
      advance st;
      expect st Lexer.LPAREN "expected '(' after while";
      let c = parse_cond st in
      expect st Lexer.RPAREN "expected ')' after condition";
      let b = parse_block st in
      mk ~at (While (c, b))
  | Lexer.KW "try" ->
      advance st;
      let b = parse_block st in
      let rec catches acc =
        if accept st (Lexer.KW "catch") then begin
          expect st Lexer.LPAREN "expected '(' after catch";
          let exn_class = ident st in
          let exn_var = ident st in
          expect st Lexer.RPAREN "expected ')' after catch binder";
          let handler = parse_block st in
          catches ({ exn_class; exn_var; handler } :: acc)
        end
        else List.rev acc
      in
      let cs = catches [] in
      if cs = [] then fail st "try without catch";
      mk ~at (Try (b, cs))
  | Lexer.KW "throw" ->
      advance st;
      expect st (Lexer.KW "new") "expected 'new' after throw";
      let e = ident st in
      let _args = parse_args st in
      expect st Lexer.SEMI "expected ';'";
      mk ~at (Throw e)
  | Lexer.KW "return" ->
      advance st;
      if accept st Lexer.SEMI then mk ~at (Return None)
      else begin
        let e = parse_expr st in
        expect st Lexer.SEMI "expected ';'";
        mk ~at (Return (Some e))
      end
  | Lexer.KW ("int" | "bool" | "void") ->
      let tname = (match peek st with Lexer.KW s -> s | _ -> assert false) in
      advance st;
      parse_decl st ~at ~typ:(type_of_name tname)
  | Lexer.IDENT name -> begin
      match st.toks.(st.cur + 1).tok with
      | Lexer.IDENT _ ->
          (* "C v ..." object declaration *)
          advance st;
          parse_decl st ~at ~typ:(Tobj name)
      | Lexer.ASSIGN ->
          advance st; advance st;
          let r = parse_rhs st in
          expect st Lexer.SEMI "expected ';'";
          mk ~at (Assign (name, r))
      | Lexer.DOT -> begin
          advance st; advance st;
          let member = ident st in
          match peek st with
          | Lexer.LPAREN ->
              let c = parse_call st ~recv:name ~mname:member in
              expect st Lexer.SEMI "expected ';'";
              mk ~at (Expr c)
          | Lexer.ASSIGN ->
              advance st;
              (match peek st with
              | Lexer.IDENT y ->
                  advance st;
                  expect st Lexer.SEMI "expected ';'";
                  mk ~at (Store (name, member, y))
              | _ -> fail st "field store expects a variable right-hand side")
          | _ -> fail st "expected call or field store"
        end
      | _ -> fail st "expected statement"
    end
  | _ -> fail st "expected statement"

and parse_decl st ~at ~typ =
  let v = ident st in
  if accept st Lexer.SEMI then mk ~at (Decl (typ, v, None))
  else begin
    expect st Lexer.ASSIGN "expected '=' or ';' in declaration";
    let r = parse_rhs st in
    expect st Lexer.SEMI "expected ';'";
    mk ~at (Decl (typ, v, Some r))
  end

and parse_block st : block =
  expect st Lexer.LBRACE "expected '{'";
  let rec loop acc =
    if accept st Lexer.RBRACE then List.rev acc
    else loop (parse_stmt st :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Methods, classes, programs.                                         *)
(* ------------------------------------------------------------------ *)

let parse_type st =
  match peek st with
  | Lexer.KW (("int" | "bool" | "void") as s) -> advance st; type_of_name s
  | Lexer.IDENT c -> advance st; Tobj c
  | _ -> fail st "expected type"

let parse_params st =
  expect st Lexer.LPAREN "expected '('";
  if accept st Lexer.RPAREN then []
  else begin
    let rec loop acc =
      let t = parse_type st in
      let v = ident st in
      if accept st Lexer.COMMA then loop ((t, v) :: acc)
      else begin
        expect st Lexer.RPAREN "expected ')'";
        List.rev ((t, v) :: acc)
      end
    in
    loop []
  end

let parse_member st ~cls =
  let t = parse_type st in
  let name = ident st in
  if peek st = Lexer.LPAREN then begin
    let params = parse_params st in
    let throws =
      if accept st (Lexer.KW "throws") then begin
        let rec loop acc =
          let e = ident st in
          if accept st Lexer.COMMA then loop (e :: acc) else List.rev (e :: acc)
        in
        loop []
      end
      else []
    in
    let body = parse_block st in
    `Method { mclass = cls; mname = name; params; ret = t; throws; body }
  end
  else begin
    expect st Lexer.SEMI "expected ';' after field";
    `Field (t, name)
  end

let parse_class st =
  expect st (Lexer.KW "class") "expected 'class'";
  let cname = ident st in
  expect st Lexer.LBRACE "expected '{'";
  let rec loop fields methods =
    if accept st Lexer.RBRACE then
      { cname; fields = List.rev fields; methods = List.rev methods }
    else
      match parse_member st ~cls:cname with
      | `Field f -> loop (f :: fields) methods
      | `Method m -> loop fields (m :: methods)
  in
  loop [] []

let parse_program st =
  let rec loop classes entries =
    match peek st with
    | Lexer.KW "class" -> loop (parse_class st :: classes) entries
    | Lexer.KW "entry" ->
        advance st;
        let c = ident st in
        expect st Lexer.DOT "expected '.' in entry";
        let m = ident st in
        expect st Lexer.SEMI "expected ';'";
        loop classes ((c, m) :: entries)
    | Lexer.EOF -> { classes = List.rev classes; entries = List.rev entries }
    | _ -> fail st "expected 'class' or 'entry'"
  in
  loop [] []

(* Parse a full program from source text.  Raises [Parse_error] or
   [Lexer.Lex_error] on malformed input. *)
let parse ?(file = "<string>") src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; cur = 0; file } in
  parse_program st
