lib/core/report.ml: Fmt Hashtbl Jir List Option Printf
