lib/core/report.ml: Buffer Char Fmt Hashtbl Jir List Option Printf String
