lib/core/pipeline.ml: Cfl Engine Filename Fsm Graphgen Hashtbl Jir List Option Pathenc Report Smt String Symexec Unix
