lib/core/pipeline.ml: Analysis Cfl Engine Filename Fsm Graphgen Hashtbl Jir List Option Pathenc Printf Report Smt String Symexec Unix
