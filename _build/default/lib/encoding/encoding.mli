(** Interval-based path encodings (paper, Sections 3 and 4.2).

    A path through the ICFET is encoded as a sequence of elements: intervals
    of CFET node ids within one method, separated by call/return edge ids.
    Program-graph edges carry such a sequence instead of a boolean formula;
    the sequence is decoded against the in-memory ICFET only when a
    constraint must be solved (see {!Symexec.Icfet.constraint_of}). *)

type element =
  | Interval of { meth : int; first : int; last : int }
      (** CFET node-id interval [first, last] inside method [meth];
          [first] is an ancestor of [last] in the method's CFET. *)
  | Call of int  (** ICFET call-edge id: an unmatched "(_i". *)
  | Ret of int   (** ICFET return-edge id: an unmatched ")_i". *)
  | Rev of element list
      (** The wrapped forward path traversed backwards (flowsToBar edges):
          same constraints, swapped endpoints, opaque to interval fusion. *)
  | Aux of element list
      (** Constraint-only fragment: a path whose feasibility must hold
          together with this one (e.g. the value flow that makes an event's
          receiver alias the tracked object); contributes no endpoints. *)

type t = element list

val empty : t

(** {1 Constructors} *)

val interval : meth:int -> first:int -> last:int -> t
val call : int -> t
val ret : int -> t

val rev : t -> t
(** The reversed-path wrapper used by mirror (flowsToBar) edges. *)

val aux : t -> t

(** {1 Comparison and printing} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val pp_element : Format.formatter -> element -> unit
val to_string : t -> string

(** {1 Endpoints} *)

val entry_point : t -> (int * int) option
(** CFET (method, node) the path starts at, when statically determinable. *)

val exit_point : t -> (int * int) option
(** CFET (method, node) the path ends at, when statically determinable. *)

(** {1 Composition (the four cases of Section 4.2)} *)

exception Incomposable
(** Raised by {!compose} when the junction endpoints of the two paths are
    both known and disagree; the engine treats it as "no transitive edge". *)

val compose : t -> t -> t
(** Concatenate two consecutive paths, fusing adjacent forward intervals in
    the same method (case 1); call/return elements concatenate (cases 2/4). *)

val normalize : t -> t
(** Cancel matched call/return pairs together with the completed callee
    interval between them (case 3).  Idempotent. *)

val compose_normalized : t -> t -> t
(** [normalize (compose x y)] — what the engine stores on transitive
    edges. *)

val pending_calls : t -> int list
(** Unmatched call-site ids, outermost first: the calling context the
    encoding is suspended in. *)

val n_elements : t -> int
(** Total element count including nested [Rev]/[Aux] contents; used by the
    engine's path-length cap. *)

val length : t -> int

(** {1 Wire format}

    Varint-based binary layout used by the on-disk edge partitions. *)

val add_varint : Buffer.t -> int -> unit
val read_varint : Bytes.t -> int ref -> int
val write : Buffer.t -> t -> unit
val read : Bytes.t -> int ref -> t
val to_bytes : t -> string
val of_bytes : string -> t
