(* Interval-based path encodings (paper §3 and §4.2).

   A path through the ICFET is encoded as a sequence of elements: intervals
   [a, b] of CFET node ids within one method, separated by call/return edge
   ids.  Each program-graph edge carries such a sequence instead of a boolean
   formula; the sequence is decoded against the in-memory ICFET only when a
   constraint has to be solved.

   The composition rules implemented by [compose]/[normalize] are the four
   cases of §4.2, generalized in two ways needed to run the full alias
   grammar: sequences may already contain several call/return segments, and
   an element may be a [Rev] wrapper around a forward path.  [Rev] appears on
   flowsToBar edges: the reverse of a flowsTo edge traverses the same ICFET
   path backwards, contributes exactly the same branch constraints, but
   must not fuse interval-wise with its neighbours.  Constraint extraction
   recurses through [Rev]; fusion treats it as an opaque segment whose entry
   point is the exit of the wrapped path and vice versa. *)

type element =
  | Interval of { meth : int; first : int; last : int }
      (* CFET node-id interval [first, last] inside method [meth]; [first]
         is an ancestor of [last] in the method's CFET. *)
  | Call of int  (* ICFET call-edge id: an unmatched "(_i" *)
  | Ret of int   (* ICFET return-edge id: an unmatched ")_i" *)
  | Rev of element list  (* the wrapped path, traversed backwards *)
  | Aux of element list
      (* constraint-only fragment: a path whose feasibility must hold
         together with this one (e.g. the value-flow path that makes an
         event's receiver alias the tracked object); no endpoints *)

type t = element list

let empty : t = []

let interval ~meth ~first ~last = [ Interval { meth; first; last } ]

let call id = [ Call id ]
let ret id = [ Ret id ]
let rev (t : t) : t = [ Rev t ]
let aux (t : t) : t = [ Aux t ]

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (a : t) = Hashtbl.hash a

let rec pp_element ppf = function
  | Interval { meth; first; last } -> Fmt.pf ppf "[m%d:%d,%d]" meth first last
  | Call id -> Fmt.pf ppf "(%d" id
  | Ret id -> Fmt.pf ppf ")%d" id
  | Rev els ->
      Fmt.pf ppf "rev<%a>" (Fmt.list ~sep:(Fmt.any " ") pp_element) els
  | Aux els ->
      Fmt.pf ppf "aux<%a>" (Fmt.list ~sep:(Fmt.any " ") pp_element) els

let pp ppf (t : t) =
  Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any " ") pp_element) t

let to_string t = Fmt.str "%a" pp t

(* ------------------------------------------------------------------ *)
(* Endpoints.  The entry (exit) point of a path is the CFET node the     *)
(* path starts (ends) at, when statically determinable.                *)
(* ------------------------------------------------------------------ *)

let rec element_entry = function
  | Interval { meth; first; _ } -> Some (meth, first)
  | Call _ | Ret _ | Aux _ -> None
  | Rev els -> exit_point els

and element_exit = function
  | Interval { meth; last; _ } -> Some (meth, last)
  | Call _ | Ret _ | Aux _ -> None
  | Rev els -> entry_point els

and entry_point = function [] -> None | el :: _ -> element_entry el

and exit_point t =
  match List.rev t with [] -> None | el :: _ -> element_exit el

(* ------------------------------------------------------------------ *)
(* Composition (§4.2).                                                 *)
(* ------------------------------------------------------------------ *)

exception Incomposable

(* Cancel matched call/return pairs: { ... [a,b] (i [e,l] )i [b,c] ... }
   becomes { ... [a,c] ... } (case 3 of §4.2).  Matching is on call-site
   ids; reversed segments are opaque. *)
let rec normalize (t : t) : t =
  let rec pass = function
    | Interval a :: Call i :: Interval _ :: Ret j :: Interval b :: rest
      when i = j && a.meth = b.meth && a.last = b.first ->
        `Changed
          (Interval { meth = a.meth; first = a.first; last = b.last } :: rest)
    | [] -> `Done []
    | e :: rest -> (
        match pass rest with
        | `Changed rest -> `Changed (e :: rest)
        | `Done rest -> `Done (e :: rest))
  in
  match pass t with `Changed t -> normalize t | `Done t -> t

(* Compose the encodings of two consecutive edges.  Adjacent forward
   intervals in the same method fuse when the first ends at the node the
   second starts from (case 1); other junctions concatenate (cases 2 and 4)
   after an endpoint sanity check; [normalize] then performs the call/return
   cancellation of case 3.  Raises [Incomposable] when the junction endpoints
   are both known and disagree, which the engine treats as "no transitive
   edge". *)
let compose (x : t) (y : t) : t =
  match (x, y) with
  | [], _ -> y
  | _, [] -> x
  | _ -> (
      let rx = List.rev x in
      match (rx, y) with
      | Interval a :: rx_tl, Interval b :: y_tl
        when a.meth = b.meth && a.last = b.first ->
          List.rev_append rx_tl
            (Interval { meth = a.meth; first = a.first; last = b.last } :: y_tl)
      | last_x :: _, first_y :: _ -> (
          match (element_exit last_x, element_entry first_y) with
          | Some p, Some q when p <> q -> raise Incomposable
          | _ -> x @ y)
      | _ -> x @ y)

let compose_normalized x y = normalize (compose x y)

(* Unmatched call ids at top level, outermost first: the calling context the
   encoding is suspended in. *)
let pending_calls (t : t) : int list =
  let rec go stack = function
    | [] -> List.rev stack
    | Call i :: rest -> go (i :: stack) rest
    | Ret _ :: rest -> (
        match stack with _ :: tl -> go tl rest | [] -> go [] rest)
    | (Interval _ | Rev _ | Aux _) :: rest -> go stack rest
  in
  go [] t

let rec n_elements (t : t) =
  List.fold_left
    (fun acc el ->
      acc
      + match el with Rev els | Aux els -> 1 + n_elements els | _ -> 1)
    0 t

let length = List.length

(* ------------------------------------------------------------------ *)
(* Binary serialization for the disk-based engine.                     *)
(* Layout: varint element count, then per element a tag byte + varints. *)
(* ------------------------------------------------------------------ *)

let add_varint buf n =
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  if n < 0 then invalid_arg "Encoding.add_varint: negative";
  go n

let read_varint (bytes : Bytes.t) (pos : int ref) : int =
  let rec go shift acc =
    let b = Char.code (Bytes.get bytes !pos) in
    incr pos;
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let rec write (buf : Buffer.t) (t : t) =
  add_varint buf (List.length t);
  List.iter
    (fun el ->
      match el with
      | Interval { meth; first; last } ->
          Buffer.add_char buf '\000';
          add_varint buf meth;
          add_varint buf first;
          add_varint buf last
      | Call id ->
          Buffer.add_char buf '\001';
          add_varint buf id
      | Ret id ->
          Buffer.add_char buf '\002';
          add_varint buf id
      | Rev els ->
          Buffer.add_char buf '\003';
          write buf els
      | Aux els ->
          Buffer.add_char buf '\004';
          write buf els)
    t

let rec read (bytes : Bytes.t) (pos : int ref) : t =
  let n = read_varint bytes pos in
  let rec go k acc =
    if k = 0 then List.rev acc
    else begin
      let tag = Bytes.get bytes !pos in
      incr pos;
      let el =
        match tag with
        | '\000' ->
            let meth = read_varint bytes pos in
            let first = read_varint bytes pos in
            let last = read_varint bytes pos in
            Interval { meth; first; last }
        | '\001' -> Call (read_varint bytes pos)
        | '\002' -> Ret (read_varint bytes pos)
        | '\003' -> Rev (read bytes pos)
        | '\004' -> Aux (read bytes pos)
        | c -> invalid_arg (Printf.sprintf "Encoding.read: bad tag %C" c)
      in
      go (k - 1) (el :: acc)
    end
  in
  go n []

let to_bytes (t : t) : string =
  let buf = Buffer.create 16 in
  write buf t;
  Buffer.contents buf

let of_bytes (s : string) : t =
  let pos = ref 0 in
  read (Bytes.unsafe_of_string s) pos
