lib/encoding/encoding.mli: Buffer Bytes Format
