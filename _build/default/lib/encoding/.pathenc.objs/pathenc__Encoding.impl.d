lib/encoding/encoding.ml: Buffer Bytes Char Fmt Hashtbl List Printf Stdlib
