(* On-disk edge storage for partitions.  A partition file is a flat sequence
   of records: varint source, varint destination, varint label code, then the
   edge's path encoding in [Encoding] wire format.  Files are written
   buffered and read back in one slurp: the engine's access pattern is
   strictly sequential (paper §4.3: "most edge accesses are sequential"). *)

module Encoding = Pathenc.Encoding

type raw_edge = { src : int; dst : int; label : int; enc : Encoding.t }

let write_edge buf (e : raw_edge) =
  Encoding.add_varint buf e.src;
  Encoding.add_varint buf e.dst;
  Encoding.add_varint buf e.label;
  Encoding.write buf e.enc

let edges_to_buffer (edges : raw_edge list) : Buffer.t =
  let buf = Buffer.create 65536 in
  List.iter (write_edge buf) edges;
  buf

(* Replace the file contents with [edges]; returns bytes written. *)
let write_file ~path (edges : raw_edge list) : int =
  let buf = edges_to_buffer edges in
  let oc = open_out_bin path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Buffer.length buf

(* Append [edges]; returns bytes written. *)
let append_file ~path (edges : raw_edge list) : int =
  let buf = edges_to_buffer edges in
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Buffer.length buf

(* Read every record; returns the edges in file order and the byte size. *)
let read_file ~path : raw_edge list * int =
  if not (Sys.file_exists path) then ([], 0)
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let bytes = Bytes.create len in
    really_input ic bytes 0 len;
    close_in ic;
    let pos = ref 0 in
    let acc = ref [] in
    while !pos < len do
      let src = Encoding.read_varint bytes pos in
      let dst = Encoding.read_varint bytes pos in
      let label = Encoding.read_varint bytes pos in
      let enc = Encoding.read bytes pos in
      acc := { src; dst; label; enc } :: !acc
    done;
    (List.rev !acc, len)
  end

let remove_file ~path = if Sys.file_exists path then Sys.remove path
