lib/engine/storage.ml: Buffer Bytes List Pathenc Sys
