lib/engine/engine.ml: Array Domain Filename Format Hashtbl List Lru Metrics Option Pathenc Printf Queue Smt Storage Sys Unix
