lib/engine/lru.ml: Hashtbl List
