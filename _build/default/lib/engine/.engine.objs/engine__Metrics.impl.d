lib/engine/metrics.ml: Float Fmt Unix
