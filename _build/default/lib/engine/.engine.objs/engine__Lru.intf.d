lib/engine/lru.mli:
