lib/smt/formula.ml: Fmt Linexpr List
