lib/smt/solver.ml: Array Formula Hashtbl Linexpr List Sat Symbol Theory
