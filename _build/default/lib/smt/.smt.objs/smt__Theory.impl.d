lib/smt/theory.ml: Array Formula Hashtbl Linexpr List Option Symbol
