lib/smt/linexpr.ml: Fmt List Stdlib Symbol
