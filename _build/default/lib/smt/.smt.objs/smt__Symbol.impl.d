lib/smt/symbol.ml: Array Fmt Hashtbl Printf
