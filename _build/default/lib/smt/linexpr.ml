(* Linear integer expressions: c0 + sum(ci * xi), with coefficient lists kept
   sorted by variable id and free of zero coefficients.  This canonical form
   makes syntactic equality meaningful and arithmetic linear-time. *)

type t = {
  coeffs : (Symbol.t * int) list;  (* strictly increasing variable ids *)
  const : int;
}

let const n = { coeffs = []; const = n }
let zero = const 0
let var ?(coeff = 1) v = if coeff = 0 then zero else { coeffs = [ (v, coeff) ]; const = 0 }

let is_const t = t.coeffs = []

let rec merge f a b =
  match (a, b) with
  | [], rest ->
      List.filter_map
        (fun (v, c) -> let c = f 0 c in if c = 0 then None else Some (v, c))
        rest
  | rest, [] ->
      List.filter_map
        (fun (v, c) -> let c = f c 0 in if c = 0 then None else Some (v, c))
        rest
  | (va, ca) :: ta, (vb, cb) :: tb ->
      if va < vb then
        let c = f ca 0 in
        if c = 0 then merge f ta b else (va, c) :: merge f ta b
      else if va > vb then
        let c = f 0 cb in
        if c = 0 then merge f a tb else (vb, c) :: merge f a tb
      else
        let c = f ca cb in
        if c = 0 then merge f ta tb else (va, c) :: merge f ta tb

let add a b = { coeffs = merge ( + ) a.coeffs b.coeffs; const = a.const + b.const }
let sub a b = { coeffs = merge ( - ) a.coeffs b.coeffs; const = a.const - b.const }

let scale k t =
  if k = 0 then zero
  else
    { coeffs = List.map (fun (v, c) -> (v, k * c)) t.coeffs;
      const = k * t.const }

let neg t = scale (-1) t

let coeff_of v t =
  match List.assoc_opt v t.coeffs with Some c -> c | None -> 0

let vars t = List.map fst t.coeffs

let equal a b = a.const = b.const && a.coeffs = b.coeffs

let compare a b =
  let c = Stdlib.compare a.coeffs b.coeffs in
  if c <> 0 then c else Stdlib.compare a.const b.const

(* Substitute expression [by] for variable [v]. *)
let subst ~v ~by t =
  let c = coeff_of v t in
  if c = 0 then t
  else
    let without = { t with coeffs = List.filter (fun (w, _) -> w <> v) t.coeffs } in
    add without (scale c by)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let coeff_gcd t = List.fold_left (fun g (_, c) -> gcd g c) 0 t.coeffs

(* Evaluate under a total assignment; raises [Not_found] if a variable is
   missing. *)
let eval assignment t =
  List.fold_left (fun acc (v, c) -> acc + (c * assignment v)) t.const t.coeffs

let pp ppf t =
  let pp_term first ppf (v, c) =
    if c = 1 then Fmt.pf ppf (if first then "%a" else " + %a") Symbol.pp v
    else if c = -1 then Fmt.pf ppf (if first then "-%a" else " - %a") Symbol.pp v
    else if c >= 0 then
      Fmt.pf ppf (if first then "%d*%a" else " + %d*%a") c Symbol.pp v
    else Fmt.pf ppf (if first then "-%d*%a" else " - %d*%a") (-c) Symbol.pp v
  in
  match t.coeffs with
  | [] -> Fmt.int ppf t.const
  | first :: rest ->
      pp_term true ppf first;
      List.iter (pp_term false ppf) rest;
      if t.const > 0 then Fmt.pf ppf " + %d" t.const
      else if t.const < 0 then Fmt.pf ppf " - %d" (-t.const)

let to_string t = Fmt.str "%a" pp t
