(* Global interning of variable names.  Terms and formulas refer to
   variables by dense integer ids, which keeps linear-expression operations
   and hashing cheap; the table maps back to names for printing. *)

type t = int

let names : (string, int) Hashtbl.t = Hashtbl.create 1024
let table : string array ref = ref (Array.make 1024 "")
let next = ref 0

let intern (name : string) : t =
  match Hashtbl.find_opt names name with
  | Some id -> id
  | None ->
      let id = !next in
      incr next;
      if id >= Array.length !table then begin
        let bigger = Array.make (2 * Array.length !table) "" in
        Array.blit !table 0 bigger 0 (Array.length !table);
        table := bigger
      end;
      !table.(id) <- name;
      Hashtbl.replace names name id;
      id

let name (id : t) : string =
  if id < 0 || id >= !next then Printf.sprintf "?%d" id else !table.(id)

let count () = !next

(* Fresh symbol guaranteed not to collide with interned names. *)
let fresh_counter = ref 0

let fresh prefix =
  incr fresh_counter;
  intern (Printf.sprintf "%s$%d" prefix !fresh_counter)

let pp ppf id = Fmt.string ppf (name id)
