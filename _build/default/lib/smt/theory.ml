(* Decision procedure for conjunctions of linear integer atoms, used as the
   theory backend of the DPLL(T) loop.  Equalities are removed by
   substitution (Gaussian elimination restricted to unit-coefficient pivots,
   which is what branch conditions and parameter-passing equations produce);
   the remaining inequalities go through Fourier-Motzkin elimination with
   integer tightening (each derived inequality is re-normalized by the gcd of
   its coefficients with a ceiling on the constant).

   Completeness note: without the omega-test dark shadow, systems that are
   rationally satisfiable but integer-infeasible can be reported Sat.  For
   path constraints built from branch conditions this shows up rarely and
   errs toward reporting a path feasible (i.e., toward a false positive,
   never a missed constraint conflict). *)

type result = Sat | Unsat

(* A witness assignment for the variables of a satisfiable system.  [None]
   when the system is satisfiable but the rational relaxation's witness does
   not round to an integer point (the incompleteness documented above). *)
type model = (Symbol.t * int) list

type model_result = Msat of model option | Munsat

exception Too_large

(* Combined inequalities cap: beyond this, give up and answer Sat (feasible),
   which is the conservative direction for a bug-finding tool. *)
let default_max_inequalities = 50_000

(* Re-apply the gcd tightening of [Formula.atom_le] to a raw term. *)
let tighten (t : Linexpr.t) : [ `Ineq of Linexpr.t | `True | `False ] =
  if Linexpr.is_const t then if t.Linexpr.const <= 0 then `True else `False
  else
    let g = Linexpr.coeff_gcd t in
    if g <= 1 then `Ineq t
    else
      let c = t.Linexpr.const in
      let cdiv = if c >= 0 then (c + g - 1) / g else -((-c) / g) in
      `Ineq
        { Linexpr.coeffs = List.map (fun (v, k) -> (v, k / g)) t.Linexpr.coeffs;
          const = cdiv }

(* Eliminate the equalities [eqs] (terms meaning t = 0) from themselves and
   from the inequalities [ineqs] (terms meaning t <= 0).  Returns [None] when
   an equality is contradictory, otherwise the remaining system: equalities
   without a unit pivot are turned into inequality pairs. *)
let eliminate_equalities ?substitutions (eqs : Linexpr.t list)
    (ineqs : Linexpr.t list) : Linexpr.t list option =
  let rec go eqs ineqs =
    match eqs with
    | [] -> Some ineqs
    | t :: rest ->
        if Linexpr.is_const t then
          if t.Linexpr.const = 0 then go rest ineqs else None
        else begin
          let g = Linexpr.coeff_gcd t in
          if t.Linexpr.const mod g <> 0 then None
          else
            let t =
              if g = 1 then t
              else
                { Linexpr.coeffs =
                    List.map (fun (v, k) -> (v, k / g)) t.Linexpr.coeffs;
                  const = t.Linexpr.const / g }
            in
            match
              List.find_opt (fun (_, c) -> c = 1 || c = -1) t.Linexpr.coeffs
            with
            | Some (v, c) ->
                (* c*v + r = 0 with c = +-1, so v = -c*r; substitute. *)
                let r =
                  { t with
                    Linexpr.coeffs =
                      List.filter (fun (w, _) -> w <> v) t.Linexpr.coeffs }
                in
                let by = Linexpr.scale (-c) r in
                (match substitutions with
                | Some subs -> subs := (v, by) :: !subs
                | None -> ());
                let rest = List.map (Linexpr.subst ~v ~by) rest in
                let ineqs = List.map (Linexpr.subst ~v ~by) ineqs in
                go rest ineqs
            | None ->
                (* No unit pivot: fall back to the inequality pair. *)
                go rest (t :: Linexpr.neg t :: ineqs)
        end
  in
  go eqs ineqs

(* Fourier-Motzkin elimination.  [max_size] bounds the working set; raising
   [Too_large] lets the caller answer Sat.  On Sat, [steps] records the
   elimination order together with each variable's lower/upper bound
   constraints so a witness can be reconstructed by back-substitution. *)
type fm_step = {
  fm_var : Symbol.t;
  fm_lowers : (int * Linexpr.t) list;  (* b < 0:  b*v + q <= 0 *)
  fm_uppers : (int * Linexpr.t) list;  (* a > 0:  a*v + p <= 0 *)
}

let fourier_motzkin ?(max_size = default_max_inequalities)
    ?(steps : fm_step list ref option) (ineqs : Linexpr.t list) : result =
  let normalize ts =
    List.filter_map
      (fun t ->
        match tighten t with
        | `True -> None
        | `False -> raise Exit
        | `Ineq t -> Some t)
      ts
  in
  let dedup ts =
    List.sort_uniq Linexpr.compare ts
  in
  try
    let rec eliminate ineqs =
      let ineqs = dedup (normalize ineqs) in
      if List.length ineqs > max_size then raise Too_large;
      (* choose the variable minimizing the product #lower * #upper *)
      let occurrences = Hashtbl.create 16 in
      List.iter
        (fun t ->
          List.iter
            (fun (v, c) ->
              let lo, hi =
                Option.value ~default:(0, 0) (Hashtbl.find_opt occurrences v)
              in
              if c > 0 then Hashtbl.replace occurrences v (lo, hi + 1)
              else Hashtbl.replace occurrences v (lo + 1, hi))
            t.Linexpr.coeffs)
        ineqs;
      if Hashtbl.length occurrences = 0 then
        (* only constants remain; [normalize] removed the satisfiable ones *)
        if ineqs = [] then Sat else Unsat
      else begin
        let best = ref None in
        Hashtbl.iter
          (fun v (lo, hi) ->
            let cost = lo * hi in
            match !best with
            | Some (_, c) when c <= cost -> ()
            | _ -> best := Some (v, cost))
          occurrences;
        let v, _ = Option.get !best in
        let lowers, uppers, rest =
          List.fold_left
            (fun (lowers, uppers, rest) t ->
              let c = Linexpr.coeff_of v t in
              if c > 0 then (lowers, (c, t) :: uppers, rest)
              else if c < 0 then ((c, t) :: lowers, uppers, rest)
              else (lowers, uppers, t :: rest))
            ([], [], []) ineqs
        in
        (match steps with
        | Some r -> r := { fm_var = v; fm_lowers = lowers; fm_uppers = uppers } :: !r
        | None -> ());
        (* a*v + p <= 0 (a>0, upper) and  b*v + q <= 0 (b<0, lower):
           eliminate v via  (-b)*(a*v+p) + a*(b*v+q) = (-b)*p + a*q <= 0 *)
        let combined =
          List.concat_map
            (fun (a, upper) ->
              List.map
                (fun (b, lower) ->
                  Linexpr.add (Linexpr.scale (-b) upper) (Linexpr.scale a lower))
                lowers)
            uppers
        in
        if List.length combined + List.length rest > max_size then
          raise Too_large;
        eliminate (combined @ rest)
      end
    in
    eliminate ineqs
  with Exit -> Unsat

(* Split a constraint system into connected components over shared
   variables: two constraints interact only if they (transitively) share a
   variable, so each component can be decided independently.  Path
   constraints are dominated by unrelated per-branch conditions, which makes
   this decomposition the difference between linear and super-linear
   behaviour on long interprocedural paths. *)
let connected_components (terms : ([ `Eq | `Le | `Ne ] * Linexpr.t) list) :
    ([ `Eq | `Le | `Ne ] * Linexpr.t) list list =
  let n = List.length terms in
  let arr = Array.of_list terms in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  let owner : (Symbol.t, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i (_, t) ->
      List.iter
        (fun v ->
          match Hashtbl.find_opt owner v with
          | Some j -> union i j
          | None -> Hashtbl.replace owner v i)
        (Linexpr.vars t))
    arr;
  let groups : (int, ([ `Eq | `Le | `Ne ] * Linexpr.t) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  Array.iteri
    (fun i term ->
      let r = find i in
      match Hashtbl.find_opt groups r with
      | Some l -> l := term :: !l
      | None -> Hashtbl.replace groups r (ref [ term ]))
    arr;
  Hashtbl.fold (fun _ l acc -> !l :: acc) groups []

(* Reconstruct an integer witness from the recorded elimination steps, in
   reverse elimination order: when a variable is assigned, every variable in
   its bound terms was eliminated later and is therefore already assigned.
   Returns [None] when the rational interval for some variable contains no
   integer (the dark-shadow gap). *)
let model_of_steps (steps : fm_step list) : (Symbol.t, int) Hashtbl.t option =
  let assign : (Symbol.t, int) Hashtbl.t = Hashtbl.create 16 in
  let value v = match Hashtbl.find_opt assign v with Some n -> n | None -> 0 in
  let eval (t : Linexpr.t) = Linexpr.eval value t in
  let ok =
    List.for_all
      (fun step ->
        (* a*v + p <= 0 (a > 0)  ==>  v <= floor(-p / a)
           b*v + q <= 0 (b < 0)  ==>  v >= ceil(q / -b) *)
        let fdiv x y = if x >= 0 then x / y else -(((-x) + y - 1) / y) in
        let cdiv x y = if x >= 0 then (x + y - 1) / y else -((-x) / y) in
        (* the residue p of t = c*v + p, evaluated under the assignments of
           the later-eliminated variables *)
        let residue t =
          eval
            { t with
              Linexpr.coeffs =
                List.filter (fun (w, _) -> w <> step.fm_var) t.Linexpr.coeffs }
        in
        let hi =
          List.fold_left
            (fun acc (a, t) -> min acc (fdiv (- (residue t)) a))
            max_int step.fm_uppers
        in
        let lo =
          List.fold_left
            (fun acc (b, t) -> max acc (cdiv (residue t) (-b)))
            min_int step.fm_lowers
        in
        if lo > hi then false
        else begin
          let v = if lo <= 0 && 0 <= hi then 0 else if lo > 0 then lo else hi in
          Hashtbl.replace assign step.fm_var v;
          true
        end)
      steps
  in
  if ok then Some assign else None

(* Decide one connected component, optionally producing a witness.
   [substitutions] collects the equality eliminations so the caller can
   back-substitute them into the witness. *)
let check_component_model ~max_size
    (terms : ([ `Eq | `Le | `Ne ] * Linexpr.t) list) : model_result =
  let eqs, ineqs, neg_eqs =
    List.fold_left
      (fun (eqs, ineqs, nes) (kind, t) ->
        match kind with
        | `Eq -> (t :: eqs, ineqs, nes)
        | `Le -> (eqs, t :: ineqs, nes)
        | `Ne -> (eqs, ineqs, t :: nes))
      ([], [], []) terms
  in
  let subs = ref [] in
  let rec split neg_eqs eqs ineqs =
    match neg_eqs with
    | [] -> begin
        subs := [];
        match eliminate_equalities ~substitutions:subs eqs ineqs with
        | None -> Munsat
        | Some ineqs -> (
            let steps = ref [] in
            match fourier_motzkin ~max_size ~steps ineqs with
            | Unsat -> Munsat
            | Sat -> (
                match model_of_steps !steps with
                | None -> Msat None
                | Some assign ->
                    (* back-substitute the equality eliminations, newest
                       first (they were prepended in elimination order) *)
                    let value v =
                      match Hashtbl.find_opt assign v with
                      | Some n -> n
                      | None -> 0
                    in
                    List.iter
                      (fun (v, by) ->
                        Hashtbl.replace assign v (Linexpr.eval value by))
                      (List.rev !subs);
                    let model =
                      Hashtbl.fold (fun v n acc -> (v, n) :: acc) assign []
                    in
                    Msat (Some model))
            | exception Too_large -> Msat None)
      end
    | t :: rest ->
        let low = Linexpr.add t (Linexpr.const 1) in
        let high = Linexpr.add (Linexpr.neg t) (Linexpr.const 1) in
        (match split rest eqs (low :: ineqs) with
        | Msat m -> Msat m
        | Munsat -> split rest eqs (high :: ineqs))
  in
  split neg_eqs eqs ineqs

(* Decide one connected component. *)
let check_component ~max_size (terms : ([ `Eq | `Le | `Ne ] * Linexpr.t) list)
    : result =
  (* a single constraint with at least one variable is always satisfiable
     over the integers *)
  match terms with
  | [ (`Le, t) ] when not (Linexpr.is_const t) -> Sat
  | [ (`Eq, t) ] when not (Linexpr.is_const t) ->
      let g = Linexpr.coeff_gcd t in
      if t.Linexpr.const mod g = 0 then Sat else Unsat
  | [ (`Ne, t) ] when not (Linexpr.is_const t) -> Sat
  | _ -> (
      match check_component_model ~max_size terms with
      | Msat _ -> Sat
      | Munsat -> Unsat)

(* Decide a conjunction of positive atoms plus negated equalities.  The
   system is decomposed into variable-connected components; each negated
   equality t <> 0 splits into t <= -1 or t >= 1 within its component. *)
let check ?(max_size = default_max_inequalities) (atoms : Formula.atom list)
    ~(neg_eqs : Linexpr.t list) : result =
  let terms =
    List.map
      (fun a ->
        match a with Formula.Eq t -> (`Eq, t) | Formula.Le t -> (`Le, t))
      atoms
    @ List.map (fun t -> (`Ne, t)) neg_eqs
  in
  (* constant terms have no component; check them directly *)
  let const_ok =
    List.for_all
      (fun (kind, (t : Linexpr.t)) ->
        if not (Linexpr.is_const t) then true
        else
          match kind with
          | `Le -> t.Linexpr.const <= 0
          | `Eq -> t.Linexpr.const = 0
          | `Ne -> t.Linexpr.const <> 0)
      terms
  in
  if not const_ok then Unsat
  else begin
    let vars_terms = List.filter (fun (_, t) -> not (Linexpr.is_const t)) terms in
    let components = connected_components vars_terms in
    if List.for_all (fun c -> check_component ~max_size c = Sat) components
    then Sat
    else Unsat
  end

(* Decide a conjunction and produce an integer witness when satisfiable.
   Component models are merged; variables in satisfiable-singleton
   components get the obvious witness. *)
let check_model ?(max_size = default_max_inequalities)
    (atoms : Formula.atom list) ~(neg_eqs : Linexpr.t list) : model_result =
  let terms =
    List.map
      (fun a ->
        match a with Formula.Eq t -> (`Eq, t) | Formula.Le t -> (`Le, t))
      atoms
    @ List.map (fun t -> (`Ne, t)) neg_eqs
  in
  let const_ok =
    List.for_all
      (fun (kind, (t : Linexpr.t)) ->
        if not (Linexpr.is_const t) then true
        else
          match kind with
          | `Le -> t.Linexpr.const <= 0
          | `Eq -> t.Linexpr.const = 0
          | `Ne -> t.Linexpr.const <> 0)
      terms
  in
  if not const_ok then Munsat
  else begin
    let vars_terms = List.filter (fun (_, t) -> not (Linexpr.is_const t)) terms in
    let components = connected_components vars_terms in
    let merged = ref [] in
    let complete = ref true in
    let rec go = function
      | [] ->
          if !complete then Msat (Some !merged) else Msat None
      | comp :: rest -> (
          match check_component_model ~max_size comp with
          | Munsat -> Munsat
          | Msat None ->
              complete := false;
              go rest
          | Msat (Some m) ->
              merged := m @ !merged;
              go rest)
    in
    go components
  end
