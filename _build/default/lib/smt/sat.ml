(* A small DPLL SAT solver over CNF.  Literals are non-zero integers in the
   DIMACS convention: +v asserts variable v, -v its negation; variables are
   numbered from 1.  Unit propagation is a scan-to-fixpoint, which is
   appropriate for the clause counts produced by path-constraint skeletons
   and blocking clauses (tens to a few thousands). *)

type result = Sat of bool array (* index by variable, [0] unused *) | Unsat

type solver = {
  nvars : int;
  mutable clauses : int array list;
  assign : int array;  (* 0 unassigned, +1 true, -1 false *)
  mutable trail : int list;
}

let create ~nvars = { nvars; clauses = []; assign = Array.make (nvars + 1) 0; trail = [] }

let add_clause s (lits : int list) =
  let lits = List.sort_uniq compare lits in
  (* drop tautologies: clause containing both v and -v *)
  let tautology =
    List.exists (fun l -> l < 0 && List.mem (-l) lits) lits
  in
  if not tautology then s.clauses <- Array.of_list lits :: s.clauses

let value s lit =
  let a = s.assign.(abs lit) in
  if a = 0 then 0 else if (lit > 0) = (a > 0) then 1 else -1

let set s lit =
  s.assign.(abs lit) <- (if lit > 0 then 1 else -1);
  s.trail <- lit :: s.trail

let undo_to s mark =
  let rec pop () =
    if s.trail != mark then
      match s.trail with
      | [] -> ()
      | lit :: rest ->
          s.assign.(abs lit) <- 0;
          s.trail <- rest;
          pop ()
  in
  pop ()

exception Conflict

(* Propagate all unit clauses to fixpoint; raises [Conflict] on an empty
   clause. *)
let propagate s =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun clause ->
        let unassigned = ref 0 in
        let last = ref 0 in
        let satisfied = ref false in
        Array.iter
          (fun lit ->
            match value s lit with
            | 1 -> satisfied := true
            | 0 ->
                incr unassigned;
                last := lit
            | _ -> ())
          clause;
        if not !satisfied then
          if !unassigned = 0 then raise Conflict
          else if !unassigned = 1 then begin
            set s !last;
            changed := true
          end)
      s.clauses
  done

let pick_branch s =
  (* first unassigned literal of the first unsatisfied clause *)
  let rec scan = function
    | [] -> None
    | clause :: rest ->
        let satisfied = Array.exists (fun lit -> value s lit = 1) clause in
        if satisfied then scan rest
        else
          let lit =
            Array.fold_left
              (fun acc lit -> if acc = 0 && value s lit = 0 then lit else acc)
              0 clause
          in
          if lit = 0 then scan rest else Some lit
  in
  scan s.clauses

let rec dpll s =
  match (try propagate s; `Ok with Conflict -> `Conflict) with
  | `Conflict -> false
  | `Ok -> (
      match pick_branch s with
      | None -> true
      | Some lit ->
          let mark = s.trail in
          set s lit;
          if dpll s then true
          else begin
            undo_to s mark;
            set s (-lit);
            if dpll s then true
            else begin
              undo_to s mark;
              false
            end
          end)

(* Solve the clause set.  The model assigns [false] to variables left
   unconstrained. *)
let solve ~nvars (clauses : int list list) : result =
  let s = create ~nvars in
  List.iter (add_clause s) clauses;
  if dpll s then begin
    let model = Array.make (nvars + 1) false in
    for v = 1 to nvars do
      model.(v) <- s.assign.(v) > 0
    done;
    Sat model
  end
  else Unsat

(* Incremental interface used by the DPLL(T) loop: keep the solver, add
   blocking clauses between calls.  Assignments are reset at each call. *)
let reset s =
  undo_to s [];
  s.trail <- []

let solve_current (s : solver) : result =
  reset s;
  if dpll s then begin
    let model = Array.make (s.nvars + 1) false in
    for v = 1 to s.nvars do
      model.(v) <- s.assign.(v) > 0
    done;
    Sat model
  end
  else Unsat
