(* Quantifier-free linear-integer-arithmetic formulas.  Atoms are kept in
   the normal forms "t <= 0" and "t = 0"; all comparison operators are
   expressed through them at construction time, so downstream passes (NNF,
   Tseitin, the theory solver) only ever see these two shapes. *)

type atom =
  | Le of Linexpr.t  (* t <= 0 *)
  | Eq of Linexpr.t  (* t  = 0 *)

type t =
  | True
  | False
  | Atom of atom
  | Not of t
  | And of t * t
  | Or of t * t

(* ---------------- smart constructors ---------------- *)

let atom_le t =
  if Linexpr.is_const t then if t.Linexpr.const <= 0 then True else False
  else begin
    (* normalize by the gcd of the coefficients: g*x + c <= 0 is equivalent
       over the integers to x + ceil(c/g) ... we use floor division on the
       tightened constant: g*e + c <= 0  <=>  e <= floor(-c/g). *)
    let g = Linexpr.coeff_gcd t in
    if g <= 1 then Atom (Le t)
    else
      let c = t.Linexpr.const in
      let coeffs = List.map (fun (v, k) -> (v, k / g)) t.Linexpr.coeffs in
      (* e + c/g <= 0 with e integer: e <= -c/g, i.e. e + ceil(c/g) <= 0 *)
      let cdiv =
        (* ceiling of c/g *)
        if c >= 0 then (c + g - 1) / g else -((-c) / g)
      in
      Atom (Le { Linexpr.coeffs; const = cdiv })
  end

let atom_eq t =
  if Linexpr.is_const t then if t.Linexpr.const = 0 then True else False
  else
    let g = Linexpr.coeff_gcd t in
    if g <= 1 then Atom (Eq t)
    else if t.Linexpr.const mod g <> 0 then False
    else
      Atom
        (Eq
           { Linexpr.coeffs = List.map (fun (v, k) -> (v, k / g)) t.Linexpr.coeffs;
             const = t.Linexpr.const / g })

let le a b = atom_le (Linexpr.sub a b)
let lt a b = atom_le (Linexpr.sub (Linexpr.add a (Linexpr.const 1)) b)
let ge a b = le b a
let gt a b = lt b a
let eq a b = atom_eq (Linexpr.sub a b)

let not_ = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> Not f

let ne a b = not_ (eq a b)

let and_ a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, f | f, True -> f
  | _ -> And (a, b)

let or_ a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, f | f, False -> f
  | _ -> Or (a, b)

let conj = List.fold_left and_ True
let disj = List.fold_left or_ False

let rec size = function
  | True | False | Atom _ -> 1
  | Not f -> 1 + size f
  | And (a, b) | Or (a, b) -> 1 + size a + size b

let rec atoms acc = function
  | True | False -> acc
  | Atom a -> a :: acc
  | Not f -> atoms acc f
  | And (a, b) | Or (a, b) -> atoms (atoms acc a) b

let rec vars acc = function
  | True | False -> acc
  | Atom (Le t) | Atom (Eq t) -> Linexpr.vars t @ acc
  | Not f -> vars acc f
  | And (a, b) | Or (a, b) -> vars (vars acc a) b

(* ---------------- literals and NNF ---------------- *)

(* A literal is a signed atom.  The negation of "t <= 0" is "-t + 1 <= 0";
   the negation of "t = 0" has no atom form and stays a negative literal,
   case-split by the theory solver. *)
type literal = { atom : atom; positive : bool }

let negate_literal l = { l with positive = not l.positive }

(* Push negations to the atoms.  Negated Le literals are rewritten into
   positive ones; negated Eq literals are preserved as negative literals. *)
let rec nnf (f : t) : t =
  match f with
  | True | False | Atom _ -> f
  | And (a, b) -> And (nnf a, nnf b)
  | Or (a, b) -> Or (nnf a, nnf b)
  | Not g -> nnf_neg g

and nnf_neg = function
  | True -> False
  | False -> True
  | Atom (Le t) ->
      (* not (t <= 0) <=> -t < 0 <=> -t + 1 <= 0 *)
      atom_le (Linexpr.add (Linexpr.neg t) (Linexpr.const 1))
  | Atom (Eq t) ->
      (* not (t = 0) <=> t <= -1 or -t <= -1 *)
      or_
        (atom_le (Linexpr.add t (Linexpr.const 1)))
        (atom_le (Linexpr.add (Linexpr.neg t) (Linexpr.const 1)))
  | Not g -> nnf g
  | And (a, b) -> or_ (nnf_neg a) (nnf_neg b)
  | Or (a, b) -> and_ (nnf_neg a) (nnf_neg b)

(* ---------------- evaluation and printing ---------------- *)

let eval_atom assignment = function
  | Le t -> Linexpr.eval assignment t <= 0
  | Eq t -> Linexpr.eval assignment t = 0

let rec eval assignment = function
  | True -> true
  | False -> false
  | Atom a -> eval_atom assignment a
  | Not f -> not (eval assignment f)
  | And (a, b) -> eval assignment a && eval assignment b
  | Or (a, b) -> eval assignment a || eval assignment b

let pp_atom ppf = function
  | Le t -> Fmt.pf ppf "%a <= 0" Linexpr.pp t
  | Eq t -> Fmt.pf ppf "%a = 0" Linexpr.pp t

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Atom a -> pp_atom ppf a
  | Not f -> Fmt.pf ppf "!(%a)" pp f
  | And (a, b) -> Fmt.pf ppf "(%a & %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a | %a)" pp a pp b

let to_string f = Fmt.str "%a" pp f

let atom_equal a b =
  match (a, b) with
  | Le x, Le y | Eq x, Eq y -> Linexpr.equal x y
  | Le _, Eq _ | Eq _, Le _ -> false

let atom_compare a b =
  match (a, b) with
  | Le x, Le y | Eq x, Eq y -> Linexpr.compare x y
  | Le _, Eq _ -> -1
  | Eq _, Le _ -> 1
