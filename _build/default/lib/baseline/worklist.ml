(* The traditional (non-systemized) comparison point of §5.3: a worklist
   path-sensitive alias analysis that keeps every edge in memory and
   attaches the *actual* constraint objects (formulas) to edges via
   pointers.  The paper reports that this implementation "ran out of memory
   quickly after several iterations" on every subject; we reproduce the
   behaviour with an explicit memory budget — the analysis tracks the
   approximate heap footprint of its edge set and raises [Out_of_budget]
   the moment it exceeds the configured limit, recording how far it got. *)

module Formula = Smt.Formula
module Solver = Smt.Solver
module Pg = Cfl.Pointer_grammar
module Icfet = Symexec.Icfet
module Alias_graph = Graphgen.Alias_graph

exception Out_of_budget

type outcome = Completed | Ran_out_of_memory

type result = {
  outcome : outcome;
  edges_processed : int;
  edges_materialized : int;
  peak_bytes : int;        (* approximate resident set of the edge store *)
  elapsed_s : float;
}

type config = {
  memory_budget_bytes : int;
  max_seconds : float;
}

let default_config = { memory_budget_bytes = 256_000_000; max_seconds = 300. }

(* Approximate in-memory size of a formula: every node is a boxed
   constructor, every atom a boxed linear expression with a cons cell per
   coefficient. *)
let formula_bytes (f : Formula.t) =
  let rec linexpr_bytes (e : Smt.Linexpr.t) =
    32 + (24 * List.length e.Smt.Linexpr.coeffs)
  and go = function
    | Formula.True | Formula.False -> 16
    | Formula.Atom (Formula.Le e) | Formula.Atom (Formula.Eq e) ->
        24 + linexpr_bytes e
    | Formula.Not a -> 16 + go a
    | Formula.And (a, b) | Formula.Or (a, b) -> 24 + go a + go b
  in
  go f

type edge = { src : int; dst : int; label : Pg.t; cstr : Formula.t }

(* Run the in-memory analysis over the alias-graph seeds of a prepared
   program.  [decode] turns each seed's encoding into its constraint once,
   after which constraints only ever grow by conjunction — the
   representation the paper's traditional implementation used. *)
let run ?(config = default_config) (icfet : Icfet.t) (ag : Alias_graph.t) :
    result =
  let t0 = Unix.gettimeofday () in
  let bytes = ref 0 in
  let peak = ref 0 in
  let processed = ref 0 in
  let materialized = ref 0 in
  let by_src : (int, edge list ref) Hashtbl.t = Hashtbl.create 4096 in
  let by_dst : (int, edge list ref) Hashtbl.t = Hashtbl.create 4096 in
  let present : (int * int * int * Formula.t, unit) Hashtbl.t =
    Hashtbl.create 4096
  in
  let queue = Queue.create () in
  let charge e =
    bytes := !bytes + 48 + formula_bytes e.cstr;
    if !bytes > !peak then peak := !bytes;
    if !bytes > config.memory_budget_bytes then raise Out_of_budget
  in
  let add (e : edge) =
    let key = (e.src, e.dst, Pg.to_int e.label, e.cstr) in
    if not (Hashtbl.mem present key) then begin
      Hashtbl.replace present key ();
      charge e;
      incr materialized;
      let push tbl k =
        match Hashtbl.find_opt tbl k with
        | Some r -> r := e :: !r
        | None -> Hashtbl.replace tbl k (ref [ e ])
      in
      push by_src e.src;
      push by_dst e.dst;
      Queue.add e queue
    end
  in
  let consequences (e : edge) =
    let unary = List.map (fun l -> { e with label = l }) (Pg.unary e.label) in
    let mirrors =
      List.filter_map
        (fun d ->
          match Pg.mirror d.label with
          | Some l -> Some { src = d.dst; dst = d.src; label = l; cstr = d.cstr }
          | None -> None)
        (e :: unary)
    in
    unary @ mirrors
  in
  let outcome = ref Completed in
  (try
     Alias_graph.iter_edges ag (fun e ->
         let cstr = Icfet.constraint_of icfet e.Alias_graph.enc in
         let edge =
           { src = e.Alias_graph.src; dst = e.Alias_graph.dst;
             label = e.Alias_graph.label; cstr }
         in
         add edge;
         List.iter add (consequences edge));
     while not (Queue.is_empty queue) do
       if Unix.gettimeofday () -. t0 > config.max_seconds then
         raise Out_of_budget;
       let e = Queue.pop queue in
       incr processed;
       let try_pair e1 e2 =
         match Pg.compose e1.label e2.label with
         | None -> ()
         | Some l3 ->
             let cstr = Formula.and_ e1.cstr e2.cstr in
             let sat =
               match Solver.check cstr with
               | Solver.Sat | Solver.Unknown -> true
               | Solver.Unsat -> false
             in
             if sat then begin
               let d = { src = e1.src; dst = e2.dst; label = l3; cstr } in
               add d;
               List.iter add (consequences d)
             end
       in
       (match Hashtbl.find_opt by_src e.dst with
       | Some outs -> List.iter (fun e2 -> try_pair e e2) !outs
       | None -> ());
       (match Hashtbl.find_opt by_dst e.src with
       | Some ins -> List.iter (fun e1 -> try_pair e1 e) !ins
       | None -> ())
     done
   with Out_of_budget -> outcome := Ran_out_of_memory);
  { outcome = !outcome;
    edges_processed = !processed;
    edges_materialized = !materialized;
    peak_bytes = !peak;
    elapsed_s = Unix.gettimeofday () -. t0 }
