lib/baseline/formula_parser.ml: Printf Smt String
