lib/baseline/string_engine.ml: Buffer Bytes Engine Filename Formula_parser Hashtbl List Option Pathenc Printf Queue Smt String Sys Unix
