lib/baseline/worklist.ml: Cfl Graphgen Hashtbl List Queue Smt Symexec Unix
