(* The naive "systemized" comparison point of §5.3 / Table 5: the same
   edge-pair-centric disk engine, but every edge carries its path constraint
   as a literal formula string instead of an interval encoding.

   Costs charged to this design, exactly as the paper describes:
     - constraint strings grow with path length, so edges are large, more
       partitions are needed to respect the same memory budget, and the
       computation takes more iterations to reach the fixpoint;
     - every satisfiability check re-parses the string into a formula.

   The implementation mirrors [Engine.Make] with a byte-denominated memory
   budget; partition files store (src, dst, label, constraint-string). *)

module Formula = Smt.Formula
module Solver = Smt.Solver

module type LABEL_LOGIC = Engine.LABEL_LOGIC

type config = {
  workdir : string;
  max_bytes_per_partition : int;
  target_partitions : int;
  cache_capacity : int;
  cache_enabled : bool;
  max_constraint_bytes : int;  (* compositions beyond this are dropped *)
  max_strings_per_key : int;
}

let default_config ~workdir =
  { workdir;
    max_bytes_per_partition = 4_000_000;
    target_partitions = 4;
    cache_capacity = 65_536;
    cache_enabled = true;
    max_constraint_bytes = 65_536;
    max_strings_per_key = 8 }

type stats = {
  mutable n_partitions : int;
  mutable iterations : int;
  mutable constraints_solved : int;
  mutable cache_hits : int;
  mutable cache_lookups : int;
  mutable parse_s : float;
  mutable solve_s : float;
  mutable io_s : float;
  mutable bytes_written : int;
  mutable edges_after : int;
}

module Make (L : LABEL_LOGIC) = struct
  type edge = { src : int; dst : int; label : L.t; cstr : string }

  type pmeta = {
    pid : int;
    lo : int;
    hi : int;
    path : string;
    mutable version : int;
  }

  type loaded = {
    meta : pmeta;
    mutable all : edge list;
    by_src : (int, edge list ref) Hashtbl.t;
    by_dst : (int, edge list ref) Hashtbl.t;
    present : (int * int * int * string, unit) Hashtbl.t;
    key_counts : (int * int * int, int) Hashtbl.t;
    mutable bytes : int;
    mutable dirty : bool;
  }

  type t = {
    config : config;
    stats : stats;
    cache : (string, bool) Engine.Lru.t;
    mutable parts : pmeta list;
    mutable next_pid : int;
    mutable seeds : edge list;
    mutable n_seeds : int;
    mutable max_vertex : int;
    mutable ran : bool;
  }

  let create ?(config : config option) ~workdir () =
    let config =
      match config with Some c -> c | None -> default_config ~workdir
    in
    Engine.ensure_dir config.workdir;
    { config;
      stats =
        { n_partitions = 0; iterations = 0; constraints_solved = 0;
          cache_hits = 0; cache_lookups = 0; parse_s = 0.; solve_s = 0.;
          io_s = 0.; bytes_written = 0; edges_after = 0 };
      cache = Engine.Lru.create (max 16 config.cache_capacity);
      parts = [];
      next_pid = 0;
      seeds = [];
      n_seeds = 0;
      max_vertex = 0;
      ran = false }

  let stats t = t.stats

  let timed cell f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    cell := !cell +. (Unix.gettimeofday () -. t0);
    r

  let feasible t (cstr : string) : bool =
    let s = t.stats in
    s.cache_lookups <- s.cache_lookups + 1;
    match if t.config.cache_enabled then Engine.Lru.find t.cache cstr else None with
    | Some answer ->
        s.cache_hits <- s.cache_hits + 1;
        answer
    | None ->
        let parse_time = ref 0. and solve_time = ref 0. in
        let formula =
          timed parse_time (fun () ->
              try Formula_parser.parse cstr
              with Formula_parser.Parse_error _ -> Formula.True)
        in
        let answer =
          timed solve_time (fun () ->
              match Solver.check formula with
              | Solver.Sat | Solver.Unknown -> true
              | Solver.Unsat -> false)
        in
        s.parse_s <- s.parse_s +. !parse_time;
        s.solve_s <- s.solve_s +. !solve_time;
        s.constraints_solved <- s.constraints_solved + 1;
        if t.config.cache_enabled then Engine.Lru.add t.cache cstr answer;
        answer

  let conjoin a b =
    if a = "true" then b else if b = "true" then a
    else Printf.sprintf "(%s & %s)" a b

  let edge_bytes (e : edge) = 24 + String.length e.cstr

  (* ---------------- storage ---------------- *)

  let write_edge buf (e : edge) =
    Pathenc.Encoding.add_varint buf e.src;
    Pathenc.Encoding.add_varint buf e.dst;
    Pathenc.Encoding.add_varint buf (L.to_int e.label);
    Pathenc.Encoding.add_varint buf (String.length e.cstr);
    Buffer.add_string buf e.cstr

  let write_file t ~path (edges : edge list) =
    let buf = Buffer.create 65536 in
    List.iter (write_edge buf) edges;
    let t0 = Unix.gettimeofday () in
    let oc = open_out_bin path in
    Buffer.output_buffer oc buf;
    close_out oc;
    t.stats.io_s <- t.stats.io_s +. (Unix.gettimeofday () -. t0);
    t.stats.bytes_written <- t.stats.bytes_written + Buffer.length buf

  let append_file t ~path (edges : edge list) =
    let buf = Buffer.create 65536 in
    List.iter (write_edge buf) edges;
    let t0 = Unix.gettimeofday () in
    let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
    Buffer.output_buffer oc buf;
    close_out oc;
    t.stats.io_s <- t.stats.io_s +. (Unix.gettimeofday () -. t0);
    t.stats.bytes_written <- t.stats.bytes_written + Buffer.length buf

  let read_file t ~path : edge list =
    if not (Sys.file_exists path) then []
    else begin
      let t0 = Unix.gettimeofday () in
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let bytes = Bytes.create len in
      really_input ic bytes 0 len;
      close_in ic;
      t.stats.io_s <- t.stats.io_s +. (Unix.gettimeofday () -. t0);
      let pos = ref 0 in
      let acc = ref [] in
      while !pos < len do
        let src = Pathenc.Encoding.read_varint bytes pos in
        let dst = Pathenc.Encoding.read_varint bytes pos in
        let label = L.of_int (Pathenc.Encoding.read_varint bytes pos) in
        let n = Pathenc.Encoding.read_varint bytes pos in
        let cstr = Bytes.sub_string bytes !pos n in
        pos := !pos + n;
        acc := { src; dst; label; cstr } :: !acc
      done;
      List.rev !acc
    end

  (* ---------------- partitions ---------------- *)

  let part_path t pid =
    Filename.concat t.config.workdir (Printf.sprintf "s%04d.edges" pid)

  let fresh_pid t =
    let pid = t.next_pid in
    t.next_pid <- pid + 1;
    pid

  let owner t v =
    match List.find_opt (fun p -> v >= p.lo && v < p.hi) t.parts with
    | Some p -> p
    | None -> invalid_arg "String_engine.owner: vertex out of range"

  let add_seed t ~src ~dst ~label ~cstr =
    if t.ran then invalid_arg "String_engine.add_seed: engine already ran";
    t.max_vertex <- max t.max_vertex (max src dst);
    t.seeds <- { src; dst; label; cstr } :: t.seeds

  let consequences (e : edge) : edge list =
    let unary = List.map (fun l -> { e with label = l }) (L.unary e.label) in
    let mirrors =
      List.filter_map
        (fun (d : edge) ->
          match L.mirror d.label with
          | Some l -> Some { src = d.dst; dst = d.src; label = l; cstr = d.cstr }
          | None -> None)
        (e :: unary)
    in
    unary @ mirrors

  let load t (meta : pmeta) : loaded =
    let raw = read_file t ~path:meta.path in
    let l =
      { meta; all = []; by_src = Hashtbl.create 1024;
        by_dst = Hashtbl.create 1024; present = Hashtbl.create 4096;
        key_counts = Hashtbl.create 4096; bytes = 0; dirty = false }
    in
    let n_raw = List.length raw in
    let n = ref 0 in
    List.iter
      (fun e ->
        let key = (e.src, e.dst, L.to_int e.label, e.cstr) in
        if not (Hashtbl.mem l.present key) then begin
          incr n;
          Hashtbl.replace l.present key ();
          let ckey = (e.src, e.dst, L.to_int e.label) in
          Hashtbl.replace l.key_counts ckey
            (1 + Option.value ~default:0 (Hashtbl.find_opt l.key_counts ckey));
          l.all <- e :: l.all;
          l.bytes <- l.bytes + edge_bytes e;
          let push tbl k =
            match Hashtbl.find_opt tbl k with
            | Some r -> r := e :: !r
            | None -> Hashtbl.replace tbl k (ref [ e ])
          in
          push l.by_src e.src;
          push l.by_dst e.dst
        end)
      raw;
    if !n <> n_raw then l.dirty <- true;
    l

  let insert t (l : loaded) (e : edge) : bool =
    let key = (e.src, e.dst, L.to_int e.label, e.cstr) in
    if Hashtbl.mem l.present key then false
    else begin
      let ckey = (e.src, e.dst, L.to_int e.label) in
      let kept = Option.value ~default:0 (Hashtbl.find_opt l.key_counts ckey) in
      if t.config.max_strings_per_key > 0 && kept >= t.config.max_strings_per_key
      then false
      else begin
        Hashtbl.replace l.present key ();
        Hashtbl.replace l.key_counts ckey (kept + 1);
        l.all <- e :: l.all;
        l.bytes <- l.bytes + edge_bytes e;
        l.dirty <- true;
        let push tbl k =
          match Hashtbl.find_opt tbl k with
          | Some r -> r := e :: !r
          | None -> Hashtbl.replace tbl k (ref [ e ])
        in
        push l.by_src e.src;
        push l.by_dst e.dst;
        true
      end
    end

  let flush t (l : loaded) =
    let needs_split =
      l.bytes > t.config.max_bytes_per_partition && l.meta.hi - l.meta.lo >= 2
    in
    if not needs_split then begin
      if l.dirty then begin
        write_file t ~path:l.meta.path l.all;
        l.meta.version <- l.meta.version + 1
      end
    end
    else begin
      let srcs = List.sort compare (List.map (fun e -> e.src) l.all) in
      let mid = List.nth srcs (List.length srcs / 2) in
      let cut = max (l.meta.lo + 1) (min mid (l.meta.hi - 1)) in
      let left, right = List.partition (fun e -> e.src < cut) l.all in
      let mk lo hi edges =
        let pid = fresh_pid t in
        let meta = { pid; lo; hi; path = part_path t pid; version = 0 } in
        write_file t ~path:meta.path edges;
        meta
      in
      let ml = mk l.meta.lo cut left in
      let mr = mk cut l.meta.hi right in
      if Sys.file_exists l.meta.path then Sys.remove l.meta.path;
      t.parts <-
        List.sort (fun a b -> compare a.lo b.lo)
          (ml :: mr :: List.filter (fun p -> p.pid <> l.meta.pid) t.parts)
    end

  (* ---------------- computation ---------------- *)

  let preprocess t =
    let seen = Hashtbl.create 4096 in
    let seeds = ref [] in
    let add e =
      let key = (e.src, e.dst, L.to_int e.label, e.cstr) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        seeds := e :: !seeds
      end
    in
    List.iter (fun e -> add e; List.iter add (consequences e)) t.seeds;
    t.seeds <- [];
    t.n_seeds <- List.length !seeds;
    let sorted = List.sort (fun a b -> compare a.src b.src) !seeds in
    let total_bytes = List.fold_left (fun a e -> a + edge_bytes e) 0 sorted in
    let k = max 1 (max t.config.target_partitions
                     (1 + (total_bytes / max 1 t.config.max_bytes_per_partition)))
    in
    let per = max 1 ((List.length sorted + k - 1) / k) in
    let bounds = ref [] in
    let i = ref 0 and last_src = ref (-1) in
    List.iter
      (fun e ->
        if !i > 0 && !i mod per = 0 && e.src <> !last_src then
          bounds := e.src :: !bounds;
        last_src := e.src;
        incr i)
      sorted;
    let bounds = List.rev !bounds in
    let lo_list = 0 :: bounds in
    let hi_list = bounds @ [ t.max_vertex + 1 ] in
    t.parts <-
      List.map2
        (fun lo hi ->
          let pid = fresh_pid t in
          let meta = { pid; lo; hi; path = part_path t pid; version = 0 } in
          write_file t ~path:meta.path
            (List.filter (fun e -> e.src >= lo && e.src < hi) sorted);
          meta)
        lo_list hi_list

  let local_fixpoint t (loadeds : loaded list) ~route =
    let find_loaded v =
      List.find_opt (fun l -> v >= l.meta.lo && v < l.meta.hi) loadeds
    in
    let queue = Queue.create () in
    List.iter (fun l -> List.iter (fun e -> Queue.add e queue) l.all) loadeds;
    let add_new (e : edge) =
      let enqueue_if_new l e = if insert t l e then Queue.add e queue in
      match find_loaded e.src with
      | Some l ->
          if insert t l e then begin
            Queue.add e queue;
            List.iter
              (fun d ->
                match find_loaded d.src with
                | Some l' -> enqueue_if_new l' d
                | None -> route d)
              (consequences e)
          end
      | None ->
          route e;
          List.iter
            (fun d ->
              match find_loaded d.src with
              | Some l' -> enqueue_if_new l' d
              | None -> route d)
            (consequences e)
    in
    let try_pair (e1 : edge) (e2 : edge) =
      match L.compose e1.label e2.label with
      | None -> ()
      | Some l3 ->
          let cstr = conjoin e1.cstr e2.cstr in
          if String.length cstr <= t.config.max_constraint_bytes
             && feasible t cstr
          then add_new { src = e1.src; dst = e2.dst; label = l3; cstr }
    in
    while not (Queue.is_empty queue) do
      let e = Queue.pop queue in
      (match find_loaded e.dst with
      | Some l -> (
          match Hashtbl.find_opt l.by_src e.dst with
          | Some outs -> List.iter (fun e2 -> try_pair e e2) !outs
          | None -> ())
      | None -> ());
      List.iter
        (fun l ->
          match Hashtbl.find_opt l.by_dst e.src with
          | Some ins -> List.iter (fun e1 -> try_pair e1 e) !ins
          | None -> ())
        loadeds
    done

  let process_pair t (pa : pmeta) (pb : pmeta) =
    t.stats.iterations <- t.stats.iterations + 1;
    let loadeds =
      if pa.pid = pb.pid then [ load t pa ] else [ load t pa; load t pb ]
    in
    let pending = ref [] in
    local_fixpoint t loadeds ~route:(fun e -> pending := e :: !pending);
    List.iter (flush t) loadeds;
    let by_owner = Hashtbl.create 16 in
    List.iter
      (fun e ->
        let meta = owner t e.src in
        match Hashtbl.find_opt by_owner meta.pid with
        | Some r -> r := e :: !r
        | None -> Hashtbl.replace by_owner meta.pid (ref [ e ]))
      !pending;
    Hashtbl.iter
      (fun pid edges ->
        match List.find_opt (fun p -> p.pid = pid) t.parts with
        | None -> assert false
        | Some meta ->
            append_file t ~path:meta.path !edges;
            meta.version <- meta.version + 1)
      by_owner

  let run t =
    if t.ran then invalid_arg "String_engine.run: already ran";
    t.ran <- true;
    preprocess t;
    let processed = Hashtbl.create 256 in
    let continue = ref true in
    while !continue do
      continue := false;
      let snapshot = t.parts in
      List.iteri
        (fun i pa ->
          List.iteri
            (fun j pb ->
              if j >= i then begin
                let alive p = List.exists (fun q -> q.pid = p.pid) t.parts in
                if alive pa && alive pb then begin
                  let key = (min pa.pid pb.pid, max pa.pid pb.pid) in
                  let vers = (pa.version, pb.version) in
                  let needs =
                    match Hashtbl.find_opt processed key with
                    | None -> true
                    | Some v -> v <> vers
                  in
                  if needs then begin
                    continue := true;
                    process_pair t pa pb;
                    let cur p =
                      match List.find_opt (fun q -> q.pid = p.pid) t.parts with
                      | Some q -> q.version
                      | None -> -1
                    in
                    Hashtbl.replace processed key (cur pa, cur pb)
                  end
                end
              end)
            snapshot)
        snapshot
    done;
    t.stats.n_partitions <- List.length t.parts;
    t.stats.edges_after <-
      List.fold_left
        (fun acc meta -> acc + List.length (load t meta).all)
        0 t.parts

  let n_seed_edges t = t.n_seeds

  let cleanup t =
    List.iter
      (fun p -> if Sys.file_exists p.path then Sys.remove p.path)
      t.parts
end
