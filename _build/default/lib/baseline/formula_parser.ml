(* Parser for the textual formula syntax produced by [Smt.Formula.pp] /
   [Smt.Linexpr.pp].  The naive string-based engine (§5.3, Table 5) stores
   path constraints as strings on edges; every satisfiability check must
   re-parse the string into a formula, which is part of the cost the paper's
   comparison charges to that design.

   Grammar (exactly the printer's output):
     formula  := "true" | "false" | atom
               | "!(" formula ")"
               | "(" formula " & " formula ")"
               | "(" formula " | " formula ")"
     atom     := linexpr " <= 0" | linexpr " = 0"
     linexpr  := term ((" + " | " - ") term)* | int
     term     := int "*" name | name | "-" name | int                     *)

module Linexpr = Smt.Linexpr
module Formula = Smt.Formula
module Symbol = Smt.Symbol

exception Parse_error of string * int  (* message, position *)

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let fail st msg = raise (Parse_error (msg, st.pos))

let eat st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let accept st s =
  if looking_at st s then begin
    st.pos <- st.pos + String.length s;
    true
  end
  else false

let is_digit c = c >= '0' && c <= '9'

(* symbol names: anything the interner may contain except the structural
   characters of the formula syntax *)
let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || is_digit c
  || String.contains "_.:$@#<>" c

let parse_int st =
  let start = st.pos in
  if accept st "-" then ();
  while (match peek st with Some c when is_digit c -> true | _ -> false) do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected integer";
  int_of_string (String.sub st.src start (st.pos - start))

let parse_name st =
  let start = st.pos in
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected symbol name";
  String.sub st.src start (st.pos - start)

(* one term: [int "*" name] | ["-"] name | int.  Returns a linexpr. *)
let parse_term st ~negated =
  let sign = if negated then -1 else 1 in
  match peek st with
  | Some c when is_digit c || c = '-' ->
      (* an integer, possibly "c*name" *)
      let n = parse_int st in
      if accept st "*" then
        let name = parse_name st in
        Linexpr.var ~coeff:(sign * n) (Symbol.intern name)
      else Linexpr.const (sign * n)
  | Some _ ->
      (* "-name" was handled by the caller via [negated]; here a bare name *)
      let name = parse_name st in
      Linexpr.var ~coeff:sign (Symbol.intern name)
  | None -> fail st "expected term"

(* linexpr := term ((" + " | " - ") term)* ; a leading "-name" belongs to
   the first term. *)
let parse_linexpr st =
  (* "-3*x" and "-3" are handled by parse_term's integer branch; a leading
     "-name" needs the explicit negation *)
  let first =
    if
      looking_at st "-"
      && st.pos + 1 < String.length st.src
      && not (is_digit st.src.[st.pos + 1])
    then begin
      eat st '-';
      parse_term st ~negated:true
    end
    else parse_term st ~negated:false
  in
  let acc = ref first in
  let rec loop () =
    if accept st " + " then begin
      acc := Linexpr.add !acc (parse_term st ~negated:false);
      loop ()
    end
    else if accept st " - " then begin
      acc := Linexpr.add !acc (parse_term st ~negated:true);
      loop ()
    end
  in
  loop ();
  !acc

let rec parse_formula st : Formula.t =
  if accept st "true" then Formula.True
  else if accept st "false" then Formula.False
  else if accept st "!(" then begin
    let f = parse_formula st in
    eat st ')';
    (* raw constructors: the parser must reproduce the printed structure
       verbatim, not re-simplify it *)
    Formula.Not f
  end
  else if accept st "(" then begin
    let a = parse_formula st in
    let op =
      if accept st " & " then `And
      else if accept st " | " then `Or
      else fail st "expected ' & ' or ' | '"
    in
    let b = parse_formula st in
    eat st ')';
    match op with `And -> Formula.And (a, b) | `Or -> Formula.Or (a, b)
  end
  else begin
    let e = parse_linexpr st in
    if accept st " <= 0" then Formula.Atom (Formula.Le e)
    else if accept st " = 0" then Formula.Atom (Formula.Eq e)
    else fail st "expected ' <= 0' or ' = 0'"
  end

(* Parse a full formula string; raises [Parse_error] on trailing input. *)
let parse (s : string) : Formula.t =
  let st = { src = s; pos = 0 } in
  let f = parse_formula st in
  if st.pos <> String.length s then fail st "trailing input";
  f
