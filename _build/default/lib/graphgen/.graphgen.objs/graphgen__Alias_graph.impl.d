lib/graphgen/alias_graph.ml: Array Cfl Clone_tree Fmt Hashtbl Jir List Pathenc Smt Symexec Varver
