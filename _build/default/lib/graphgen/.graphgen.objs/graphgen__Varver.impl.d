lib/graphgen/varver.ml: Hashtbl Jir List Option
