lib/graphgen/dataflow_graph.ml: Alias_graph Array Cfl Clone_tree Fsm Hashtbl Jir List Option Pathenc Symexec Varver
