lib/graphgen/clone_tree.ml: Array Hashtbl Jir List Option Queue Symexec
