(* The cloning plan for context sensitivity (paper §2.1, §4.1).

   The program graph is a fully inlined representation: every method is
   cloned once per call site that can reach it, except that methods in the
   same call-graph SCC share one clone per *group* and are treated
   context-insensitively among themselves.  This module materializes the
   tree of method instances that bottom-up inlining produces; the alias and
   dataflow graph generators then stamp per-method edge templates once per
   instance.

   An instance is one clone of one method; a group is one clone of one SCC.
   Calls to a method in the same SCC stay within the caller's group; calls
   to a different SCC create a fresh group (= fresh clones). *)

type instance = {
  inst_id : int;
  meth : int;                      (* method index in the ICFET *)
  group : int;                     (* SCC-clone this instance belongs to *)
  parent : (int * int) option;     (* (caller instance, ICFET call id);
                                      None for entry instances and for
                                      same-group members reached only via
                                      intra-SCC calls *)
  depth : int;
}

type t = {
  instances : instance array;
  entry_instances : int list;              (* roots, one per entry method *)
  by_site : (int * int, int) Hashtbl.t;    (* (caller inst, call id) -> callee inst *)
  children : (int, (int * int) list) Hashtbl.t;
      (* caller inst -> (call id, callee inst) list *)
  n_groups : int;
}

exception Too_many_instances of int

(* Call ids appearing in method [meth]'s CFET, grouped nowhere: we scan the
   ICFET's call-edge table once and index by caller method. *)
let call_edges_by_caller (icfet : Symexec.Icfet.t) :
    (int, Symexec.Icfet.call_edge list) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  for i = 0 to Symexec.Icfet.n_call_edges icfet - 1 do
    let ce = Symexec.Icfet.call_edge icfet i in
    let cur =
      Option.value ~default:[]
        (Hashtbl.find_opt tbl ce.Symexec.Icfet.caller_meth)
    in
    Hashtbl.replace tbl ce.Symexec.Icfet.caller_meth (ce :: cur)
  done;
  tbl

let build ?(max_instances = 200_000) (icfet : Symexec.Icfet.t)
    (callgraph : Jir.Callgraph.t) : t =
  let scc = Jir.Callgraph.tarjan callgraph in
  let meth_id_of idx =
    Jir.Ast.meth_id (Symexec.Icfet.cfet icfet idx).Symexec.Cfet.meth
  in
  let scc_of_meth idx =
    match Hashtbl.find_opt scc.Jir.Callgraph.component_of (meth_id_of idx) with
    | Some c -> c
    | None -> -1
  in
  let calls_by_caller = call_edges_by_caller icfet in
  let instances = ref [] in
  let count = ref 0 in
  let by_site = Hashtbl.create 1024 in
  let children = Hashtbl.create 1024 in
  let group_members : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  (* (group, meth) -> instance id: SCC members share clones per group *)
  let n_groups = ref 0 in
  let queue = Queue.create () in
  let new_instance ~meth ~group ~parent ~depth =
    let inst_id = !count in
    incr count;
    if !count > max_instances then raise (Too_many_instances !count);
    let inst = { inst_id; meth; group; parent; depth } in
    instances := inst :: !instances;
    Hashtbl.replace group_members (group, meth) inst_id;
    Queue.add inst queue;
    inst_id
  in
  let entry_instances =
    List.filter_map
      (fun (cls, m) ->
        match Symexec.Icfet.meth_idx icfet (Jir.Ast.qualified_name ~cls ~meth:m) with
        | None -> None
        | Some meth ->
            let group = !n_groups in
            incr n_groups;
            Some (new_instance ~meth ~group ~parent:None ~depth:0))
      icfet.Symexec.Icfet.program.Jir.Ast.entries
  in
  while not (Queue.is_empty queue) do
    let inst = Queue.pop queue in
    let sites =
      Option.value ~default:[] (Hashtbl.find_opt calls_by_caller inst.meth)
    in
    List.iter
      (fun (ce : Symexec.Icfet.call_edge) ->
        let callee = ce.Symexec.Icfet.callee_meth in
        let callee_inst =
          if scc_of_meth callee = scc_of_meth inst.meth then begin
            (* intra-SCC: reuse (or create) the member clone in this group *)
            match Hashtbl.find_opt group_members (inst.group, callee) with
            | Some id -> id
            | None ->
                new_instance ~meth:callee ~group:inst.group ~parent:None
                  ~depth:inst.depth
          end
          else begin
            let group = !n_groups in
            incr n_groups;
            new_instance ~meth:callee ~group
              ~parent:(Some (inst.inst_id, ce.Symexec.Icfet.call_id))
              ~depth:(inst.depth + 1)
          end
        in
        Hashtbl.replace by_site (inst.inst_id, ce.Symexec.Icfet.call_id)
          callee_inst;
        let cur =
          Option.value ~default:[] (Hashtbl.find_opt children inst.inst_id)
        in
        Hashtbl.replace children inst.inst_id
          ((ce.Symexec.Icfet.call_id, callee_inst) :: cur))
      sites
  done;
  let arr = Array.of_list (List.rev !instances) in
  Array.iteri (fun i inst -> assert (inst.inst_id = i)) arr;
  { instances = arr;
    entry_instances;
    by_site;
    children;
    n_groups = !n_groups }

let n_instances t = Array.length t.instances

let instance t id = t.instances.(id)

let callee_instance t ~caller ~call_id =
  Hashtbl.find_opt t.by_site (caller, call_id)

let children t id = Option.value ~default:[] (Hashtbl.find_opt t.children id)

(* The call-site chain from an entry instance down to [id]; used to print
   calling contexts in bug reports. *)
let context_chain t id =
  let rec go id acc =
    match (instance t id).parent with
    | None -> (id, acc)
    | Some (caller, call_id) -> go caller ((caller, call_id) :: acc)
  in
  go id []

(* Ancestors of [id] including itself, root last. *)
let ancestors t id =
  let rec go id acc =
    match (instance t id).parent with
    | None -> id :: acc
    | Some (caller, _) -> go caller (id :: acc)
  in
  List.rev (go id [])
