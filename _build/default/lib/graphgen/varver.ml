(* Per-node variable versioning: a light SSA-style numbering of variable
   definitions inside one CFET node (statements in a node are straight-line,
   and a CFET node has exactly one tree path leading to it, so versions make
   kills exact).

   Version 0 of a variable in a node is the value flowing in from its
   nearest occurrence in an ancestor node; each definition inside the node
   bumps the version.  Program-graph vertices are (variable, node, version),
   which stops a redefinition (e.g. the re-allocation in the second copy of
   an unrolled loop body) from conflating with the previous object. *)

type t = {
  use_version : (int * string, int) Hashtbl.t;  (* (sid, var) -> version read *)
  def_version : (int * string, int) Hashtbl.t;  (* (sid, var) -> version written *)
  entry_uses : (string, unit) Hashtbl.t;        (* vars read before any def *)
  last_version : (string, int) Hashtbl.t;       (* var -> version at node end *)
}

(* Variables a statement reads, in source order. *)
let uses_of_stmt (s : Jir.Ast.stmt) : string list =
  let call_vars (c : Jir.Ast.call) =
    let args = List.concat_map Jir.Ast.expr_vars c.Jir.Ast.args in
    match c.Jir.Ast.recv with Some r -> r :: args | None -> args
  in
  let rhs_vars = function
    | Jir.Ast.Rnew (_, args) -> List.concat_map Jir.Ast.expr_vars args
    | Jir.Ast.Rload (y, _) -> [ y ]
    | Jir.Ast.Rcall c -> call_vars c
    | Jir.Ast.Rexpr e -> Jir.Ast.expr_vars e
    | Jir.Ast.Rnull -> []
  in
  match s.Jir.Ast.kind with
  | Jir.Ast.Decl (_, _, Some r) | Jir.Ast.Assign (_, r) -> rhs_vars r
  | Jir.Ast.Decl (_, _, None) -> []
  | Jir.Ast.Store (x, _, y) -> [ x; y ]
  | Jir.Ast.Expr c -> call_vars c
  | Jir.Ast.Return (Some e) -> Jir.Ast.expr_vars e
  | Jir.Ast.Return None | Jir.Ast.Throw _ -> []
  | Jir.Ast.If _ | Jir.Ast.While _ | Jir.Ast.Try _ -> []

(* The variable a statement (re)defines, if any. *)
let def_of_stmt (s : Jir.Ast.stmt) : string option =
  match s.Jir.Ast.kind with
  | Jir.Ast.Decl (_, v, _) | Jir.Ast.Assign (v, _) -> Some v
  | Jir.Ast.Store _ | Jir.Ast.Expr _ | Jir.Ast.Return _ | Jir.Ast.Throw _
  | Jir.Ast.If _ | Jir.Ast.While _ | Jir.Ast.Try _ ->
      None

let analyze (stmts : Jir.Ast.stmt list) : t =
  let t =
    { use_version = Hashtbl.create 16;
      def_version = Hashtbl.create 16;
      entry_uses = Hashtbl.create 8;
      last_version = Hashtbl.create 8 }
  in
  let current v = Option.value ~default:0 (Hashtbl.find_opt t.last_version v) in
  List.iter
    (fun (s : Jir.Ast.stmt) ->
      List.iter
        (fun v ->
          let ver = current v in
          if ver = 0 then Hashtbl.replace t.entry_uses v ();
          Hashtbl.replace t.use_version (s.Jir.Ast.sid, v) ver)
        (uses_of_stmt s);
      (match def_of_stmt s with
      | Some v ->
          let ver = current v + 1 in
          Hashtbl.replace t.def_version (s.Jir.Ast.sid, v) ver;
          Hashtbl.replace t.last_version v ver
      | None -> ()))
    stmts;
  t

let use (t : t) ~sid ~var =
  Option.value ~default:0 (Hashtbl.find_opt t.use_version (sid, var))

let def (t : t) ~sid ~var =
  Option.value ~default:0 (Hashtbl.find_opt t.def_version (sid, var))

let last (t : t) ~var =
  Option.value ~default:0 (Hashtbl.find_opt t.last_version var)

let is_entry_use (t : t) ~var = Hashtbl.mem t.entry_uses var

let occurs (t : t) ~var =
  Hashtbl.mem t.entry_uses var || Hashtbl.mem t.last_version var

(* Vars occurring in the node (read or written). *)
let occurring_vars (t : t) : string list =
  let acc = Hashtbl.create 8 in
  Hashtbl.iter (fun v () -> Hashtbl.replace acc v ()) t.entry_uses;
  Hashtbl.iter (fun v _ -> Hashtbl.replace acc v ()) t.last_version;
  Hashtbl.fold (fun v () l -> v :: l) acc []
