(* Generic context-free grammars over interned symbols, with normalization
   into the binary form Grapple's engine consumes (§4.2: "any context-free
   grammar can be transformed into an equivalent grammar such that the right
   hand side of each production rule contains only two terms").

   The engine does not interpret productions directly; it asks three
   questions, answered by [composition_tables]:
     - compose:  which symbols label a path made of an X-edge then a Y-edge?
     - unary:    which symbols are implied by a single X-edge?
     - (reversal is analysis-specific and lives with the label logic)     *)

type symbol = int

type t = {
  names : (string, symbol) Hashtbl.t;
  of_symbol : (symbol, string) Hashtbl.t;
  mutable next : symbol;
  mutable productions : (symbol * symbol list) list;  (* lhs ::= rhs *)
}

let create () =
  { names = Hashtbl.create 32;
    of_symbol = Hashtbl.create 32;
    next = 0;
    productions = [] }

let symbol g name =
  match Hashtbl.find_opt g.names name with
  | Some s -> s
  | None ->
      let s = g.next in
      g.next <- g.next + 1;
      Hashtbl.replace g.names name s;
      Hashtbl.replace g.of_symbol s name;
      s

let name g s =
  match Hashtbl.find_opt g.of_symbol s with
  | Some n -> n
  | None -> Printf.sprintf "S%d" s

let add_production g ~lhs ~rhs = g.productions <- (lhs, rhs) :: g.productions

let parse_production g line =
  (* "A ::= B C" or "A ::= B" or "A ::=" *)
  match String.split_on_char ':' line with
  | [ lhs; ""; rhs ] ->
      let lhs = String.trim lhs in
      let rhs =
        String.split_on_char ' ' (String.trim (String.sub rhs 1 (String.length rhs - 1)))
        |> List.filter (fun s -> s <> "")
      in
      add_production g ~lhs:(symbol g lhs) ~rhs:(List.map (symbol g) rhs)
  | _ -> invalid_arg ("Grammar.parse_production: " ^ line)

(* Normalize so every production has at most two RHS symbols, introducing
   fresh nonterminals for longer bodies. *)
let normalize (g : t) : unit =
  let fresh_count = ref 0 in
  let fresh () =
    incr fresh_count;
    symbol g (Printf.sprintf "@N%d" !fresh_count)
  in
  let rec norm lhs rhs acc =
    match rhs with
    | [] | [ _ ] | [ _; _ ] -> (lhs, rhs) :: acc
    | a :: b :: rest ->
        let n = fresh () in
        norm lhs (n :: rest) ((n, [ a; b ]) :: acc)
  in
  g.productions <-
    List.fold_left (fun acc (lhs, rhs) -> norm lhs rhs acc) [] g.productions

type tables = {
  compose : (symbol * symbol, symbol list) Hashtbl.t;
  unary : (symbol, symbol list) Hashtbl.t;
  nullable : symbol list;
}

(* Build the binary/unary composition tables of a normalized grammar. *)
let composition_tables (g : t) : tables =
  let compose = Hashtbl.create 64 in
  let unary = Hashtbl.create 64 in
  let nullable = ref [] in
  let push tbl key v =
    let cur = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
    if not (List.mem v cur) then Hashtbl.replace tbl key (v :: cur)
  in
  List.iter
    (fun (lhs, rhs) ->
      match rhs with
      | [] -> if not (List.mem lhs !nullable) then nullable := lhs :: !nullable
      | [ a ] -> if a <> lhs then push unary a lhs
      | [ a; b ] -> push compose (a, b) lhs
      | _ -> invalid_arg "Grammar.composition_tables: not normalized")
    g.productions;
  (* close the unary table transitively: A -> B and B -> C give A -> C *)
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun a bs ->
        List.iter
          (fun b ->
            List.iter
              (fun c ->
                let cur = Option.value ~default:[] (Hashtbl.find_opt unary a) in
                if not (List.mem c cur) then begin
                  Hashtbl.replace unary a (c :: cur);
                  changed := true
                end)
              (Option.value ~default:[] (Hashtbl.find_opt unary b)))
          bs)
      unary
  done;
  { compose; unary; nullable = !nullable }

let compose tables a b =
  Option.value ~default:[] (Hashtbl.find_opt tables.compose (a, b))

let unary tables a = Option.value ~default:[] (Hashtbl.find_opt tables.unary a)

let pp ppf g =
  List.iter
    (fun (lhs, rhs) ->
      Fmt.pf ppf "%s ::= %a@\n" (name g lhs)
        (Fmt.list ~sep:(Fmt.any " ") Fmt.string)
        (List.map (name g) rhs))
    (List.rev g.productions)
