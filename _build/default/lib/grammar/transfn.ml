(* Interned total functions over a small state space 0..n-1, represented as
   vectors.  The dataflow phase labels every control-flow edge with the
   transition function its events apply to the tracked object's FSM state;
   functions form a finite monoid under composition, so labels stay dense
   integers and composition is a table lookup.  Identity is always id 0. *)

type registry = {
  n_states : int;
  mutable vectors : int array array;  (* id -> vector *)
  mutable count : int;
  index : (int array, int) Hashtbl.t;
  compose_cache : (int * int, int) Hashtbl.t;
}

let create ~n_states =
  let identity = Array.init n_states (fun i -> i) in
  let r =
    { n_states;
      vectors = Array.make 16 identity;
      count = 0;
      index = Hashtbl.create 64;
      compose_cache = Hashtbl.create 256 }
  in
  let id0 = ref (-1) in
  (* intern the identity as id 0 *)
  (match Hashtbl.find_opt r.index identity with
  | Some i -> id0 := i
  | None ->
      r.vectors.(0) <- identity;
      Hashtbl.replace r.index identity 0;
      r.count <- 1;
      id0 := 0);
  assert (!id0 = 0);
  r

let identity_id = 0

let intern (r : registry) (vec : int array) : int =
  if Array.length vec <> r.n_states then
    invalid_arg "Transfn.intern: wrong arity";
  match Hashtbl.find_opt r.index vec with
  | Some id -> id
  | None ->
      let id = r.count in
      if id >= Array.length r.vectors then begin
        let bigger = Array.make (2 * Array.length r.vectors) r.vectors.(0) in
        Array.blit r.vectors 0 bigger 0 (Array.length r.vectors);
        r.vectors <- bigger
      end;
      r.vectors.(id) <- Array.copy vec;
      Hashtbl.replace r.index r.vectors.(id) id;
      r.count <- id + 1;
      id

let vector (r : registry) id = r.vectors.(id)

let apply (r : registry) id state = r.vectors.(id).(state)

(* compose f-then-g: the function applying f first, then g. *)
let compose (r : registry) f g =
  match Hashtbl.find_opt r.compose_cache (f, g) with
  | Some id -> id
  | None ->
      let vf = r.vectors.(f) and vg = r.vectors.(g) in
      let id = intern r (Array.map (fun s -> vg.(s)) vf) in
      Hashtbl.replace r.compose_cache (f, g) id;
      id

let count (r : registry) = r.count

let pp (r : registry) ppf id =
  Fmt.pf ppf "[%a]" (Fmt.array ~sep:(Fmt.any " ") Fmt.int) (vector r id)
