lib/grammar/grammar.ml: Fmt Hashtbl List Option Printf String
