lib/grammar/transfn.ml: Array Fmt Hashtbl
