lib/grammar/dataflow_grammar.ml: Fmt Hashtbl Stdlib Transfn
