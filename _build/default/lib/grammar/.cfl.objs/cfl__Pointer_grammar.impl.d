lib/grammar/pointer_grammar.ml: Fmt Grammar Hashtbl List Printf Stdlib
