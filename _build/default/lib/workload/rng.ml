(* Deterministic pseudo-random numbers (splitmix64) so generated subjects
   are reproducible across runs and machines, independent of the stdlib
   [Random] state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 (t : t) : int64 =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* uniform int in [0, bound) *)
let int (t : t) bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.logand (next_int64 t) Int64.max_int)
                  (Int64.of_int bound))

let bool (t : t) = int t 2 = 0

(* true with probability pct/100 *)
let chance (t : t) pct = int t 100 < pct

let pick (t : t) (l : 'a list) =
  match l with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle (t : t) (l : 'a list) =
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
