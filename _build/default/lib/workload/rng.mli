(** Deterministic pseudo-random numbers (splitmix64), so generated subjects
    are reproducible across runs and machines. *)

type t

val create : int -> t
(** [create seed]. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] — uniform in [0, bound); [bound] must be positive. *)

val bool : t -> bool

val chance : t -> int -> bool
(** [chance t pct] is true with probability [pct]/100. *)

val pick : t -> 'a list -> 'a
(** Uniform choice; raises [Invalid_argument] on an empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates permutation. *)
