lib/workload/generator.ml: Hashtbl Jir List Option Patterns Printf Rng String
