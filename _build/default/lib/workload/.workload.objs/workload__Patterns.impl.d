lib/workload/patterns.ml: Jir Printf Rng
