lib/workload/rng.mli:
