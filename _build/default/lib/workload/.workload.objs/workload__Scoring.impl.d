lib/workload/scoring.ml: Analysis Fmt Grapple Hashtbl Jir List Patterns
