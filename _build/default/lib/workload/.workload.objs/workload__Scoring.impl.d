lib/workload/scoring.ml: Fmt Grapple Hashtbl Jir List Patterns
