lib/analysis/definite_assign.ml: Array Cfg Dataflow Jir List Set String
