lib/analysis/dataflow.ml: Array Cfg List Queue
