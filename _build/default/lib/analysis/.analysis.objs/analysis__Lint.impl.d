lib/analysis/lint.ml: Buffer Cfg Char Definite_assign Fmt Jir List Nullness Printf String Unreachable
