lib/analysis/escape.ml: Jir List Smt Symexec
