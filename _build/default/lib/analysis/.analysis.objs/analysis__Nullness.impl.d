lib/analysis/nullness.ml: Array Cfg Dataflow Jir List Map Option String
