lib/analysis/liveness.ml: Array Cfg Dataflow List Set String
