lib/analysis/reaching_defs.ml: Array Cfg Dataflow Jir List Set
