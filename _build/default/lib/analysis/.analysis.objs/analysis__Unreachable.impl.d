lib/analysis/unreachable.ml: Array Cfg Dataflow Jir List Map Smt String Symexec
