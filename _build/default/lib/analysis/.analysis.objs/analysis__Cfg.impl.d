lib/analysis/cfg.ml: Array Jir List
