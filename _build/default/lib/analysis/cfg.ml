(* Per-method control-flow graph over the structured JIR AST.

   The heavyweight phase-1/2 analyses never need a CFG: they symbolically
   execute the (unrolled) method into a CFET.  The lint analyses in this
   library do: classic dataflow problems (liveness, reaching definitions,
   definite assignment, nullness) are join-over-paths fixpoints, and a CFG
   with loops kept intact lets them run on the *pre-unroll* program so
   diagnostics cite original source lines.

   Nodes are atomic statements, branch heads (carrying their condition),
   catch binders, and three synthetic nodes: [Entry], [Exit] (normal
   return / fall-through) and [Exit_exn] (uncaught exception).  Edges are
   labelled:

   - [Seq]   ordinary fall-through
   - [True]/[False]  the two sides of a branch head
   - [Exc]   exceptional transfer from a call into an enclosing handler;
             dataflow solvers propagate the *in*-state of the source over
             these edges, because the exception may fire before the call's
             own effect (e.g. its assignment) has happened. *)

type edge_kind = Seq | True | False | Exc

type node_kind =
  | Entry
  | Exit                                   (* normal termination *)
  | Exit_exn                               (* uncaught exception *)
  | Stmt of Jir.Ast.stmt                   (* atomic statement *)
  | Branch of Jir.Ast.stmt * Jir.Ast.cond  (* If/While head *)
  | Bind of Jir.Ast.stmt * string * Jir.Ast.var
      (* catch binder: owning Try stmt, exception class, bound variable *)

type t = {
  meth : Jir.Ast.meth;
  kinds : node_kind array;
  succs : (int * edge_kind) list array;  (* successor, edge kind *)
  preds : (int * edge_kind) list array;  (* predecessor, edge kind *)
  entry : int;
  exit_ : int;
  exit_exn : int;
}

let n_nodes (g : t) = Array.length g.kinds

let pos_of_node (g : t) n =
  match g.kinds.(n) with
  | Stmt s | Branch (s, _) | Bind (s, _, _) -> Some s.Jir.Ast.at
  | Entry | Exit | Exit_exn -> None

(* ---------------- def/use per node ---------------- *)

let rhs_uses (r : Jir.Ast.rhs) =
  match r with
  | Jir.Ast.Rnew (_, args) -> List.concat_map Jir.Ast.expr_vars args
  | Jir.Ast.Rload (y, _) -> [ y ]
  | Jir.Ast.Rcall c ->
      (match c.Jir.Ast.recv with Some v -> [ v ] | None -> [])
      @ List.concat_map Jir.Ast.expr_vars c.Jir.Ast.args
  | Jir.Ast.Rexpr e -> Jir.Ast.expr_vars e
  | Jir.Ast.Rnull -> []

let defs (k : node_kind) : Jir.Ast.var list =
  match k with
  | Stmt { kind = Jir.Ast.Decl (_, v, Some _); _ }
  | Stmt { kind = Jir.Ast.Assign (v, _); _ } ->
      [ v ]
  | Bind (_, _, v) -> [ v ]
  | _ -> []

let uses (k : node_kind) : Jir.Ast.var list =
  match k with
  | Stmt { kind = Jir.Ast.Decl (_, _, Some r); _ }
  | Stmt { kind = Jir.Ast.Assign (_, r); _ } ->
      rhs_uses r
  | Stmt { kind = Jir.Ast.Store (x, _, y); _ } -> [ x; y ]
  | Stmt { kind = Jir.Ast.Expr c; _ } ->
      (match c.Jir.Ast.recv with Some v -> [ v ] | None -> [])
      @ List.concat_map Jir.Ast.expr_vars c.Jir.Ast.args
  | Stmt { kind = Jir.Ast.Return (Some e); _ } -> Jir.Ast.expr_vars e
  | Branch (_, c) -> Jir.Ast.cond_vars c
  | _ -> []

(* Does this node contain a call (which may raise through an enclosing
   handler)?  Constructors of undefined classes are treated as non-throwing,
   like everywhere else in the frontend. *)
let node_call (k : node_kind) : Jir.Ast.call option =
  match k with
  | Stmt { kind = Jir.Ast.Expr c; _ }
  | Stmt { kind = Jir.Ast.Decl (_, _, Some (Jir.Ast.Rcall c)); _ }
  | Stmt { kind = Jir.Ast.Assign (_, Jir.Ast.Rcall c); _ } ->
      Some c
  | _ -> None

(* ---------------- construction ---------------- *)

let build (m : Jir.Ast.meth) : t =
  let kinds = ref [] and n = ref 0 in
  let new_node k =
    kinds := k :: !kinds;
    let id = !n in
    incr n;
    id
  in
  let entry = new_node Entry in
  let exit_ = new_node Exit in
  let exit_exn = new_node Exit_exn in
  let edges = ref [] in
  let add_edge src dst kind = edges := (src, dst, kind) :: !edges in
  let connect frontier dst =
    List.iter (fun (src, kind) -> add_edge src dst kind) frontier
  in
  (* [go block frontier handlers] threads the pending in-edges [frontier]
     through [block]; [handlers] is the stack of enclosing catch clauses,
     innermost first, each as (exception class, binder node). *)
  let rec go (b : Jir.Ast.block) frontier handlers =
    List.fold_left (fun frontier s -> stmt s frontier handlers) frontier b
  and stmt (s : Jir.Ast.stmt) frontier handlers =
    match s.Jir.Ast.kind with
    | Jir.Ast.Decl _ | Jir.Ast.Assign _ | Jir.Ast.Store _ | Jir.Ast.Expr _ ->
        let node = new_node (Stmt s) in
        connect frontier node;
        (match node_call (Stmt s) with
        | Some _ ->
            (* a call may raise into any enclosing handler; the exception
               class is unknown statically, so every handler is a target *)
            List.iter (fun (_, bind) -> add_edge node bind Exc) handlers
        | None -> ());
        [ (node, Seq) ]
    | Jir.Ast.Return _ ->
        let node = new_node (Stmt s) in
        connect frontier node;
        add_edge node exit_ Seq;
        []
    | Jir.Ast.Throw thrown ->
        let node = new_node (Stmt s) in
        connect frontier node;
        let rec target = function
          | [] -> exit_exn
          | (cls, bind) :: tl ->
              if cls = thrown || cls = "Exception" then bind else target tl
        in
        add_edge node (target handlers) Seq;
        []
    | Jir.Ast.If (c, t, f) ->
        let node = new_node (Branch (s, c)) in
        connect frontier node;
        let tf = go t [ (node, True) ] handlers in
        let ff = go f [ (node, False) ] handlers in
        tf @ ff
    | Jir.Ast.While (c, body) ->
        let node = new_node (Branch (s, c)) in
        connect frontier node;
        let back = go body [ (node, True) ] handlers in
        connect back node;  (* loop back edge *)
        [ (node, False) ]
    | Jir.Ast.Try (b, catches) ->
        let binders =
          List.map
            (fun (c : Jir.Ast.catch) ->
              (c.Jir.Ast.exn_class,
               new_node (Bind (s, c.Jir.Ast.exn_class, c.Jir.Ast.exn_var))))
            catches
        in
        let bf = go b frontier (binders @ handlers) in
        let hf =
          List.concat_map
            (fun ((c : Jir.Ast.catch), (_, bind)) ->
              go c.Jir.Ast.handler [ (bind, Seq) ] handlers)
            (List.combine catches binders)
        in
        bf @ hf
  in
  let final = go m.Jir.Ast.body [ (entry, Seq) ] [] in
  connect final exit_;
  let kinds = Array.of_list (List.rev !kinds) in
  let succs = Array.make (Array.length kinds) [] in
  let preds = Array.make (Array.length kinds) [] in
  List.iter
    (fun (src, dst, kind) ->
      succs.(src) <- (dst, kind) :: succs.(src);
      preds.(dst) <- (src, kind) :: preds.(dst))
    !edges;
  { meth = m; kinds; succs; preds; entry; exit_; exit_exn }

(* Nodes reachable from entry; [follow] filters outgoing edges (used by the
   unreachable-code lint to prune statically-decided branch sides). *)
let reachable ?(follow = fun _ _ -> true) (g : t) : bool array =
  let seen = Array.make (n_nodes g) false in
  let rec dfs n =
    if not seen.(n) then begin
      seen.(n) <- true;
      List.iter
        (fun (dst, kind) -> if follow n kind then dfs dst)
        g.succs.(n)
    end
  in
  dfs g.entry;
  seen

(* Variables declared in this method (including parameters), for lints that
   only reason about method-local names. *)
let declared_vars (g : t) : Jir.Ast.var list =
  let acc = ref (List.map snd g.meth.Jir.Ast.params) in
  Array.iter
    (fun k ->
      match k with
      | Stmt { kind = Jir.Ast.Decl (_, v, _); _ } -> acc := v :: !acc
      | Bind (_, _, v) -> acc := v :: !acc
      | _ -> ())
    g.kinds;
  List.sort_uniq compare !acc
