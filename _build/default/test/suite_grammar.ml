(* Tests for the CFL grammar machinery: the generic normalization and
   composition tables, the pointer-analysis label logic (Figure 4), the
   dataflow label logic, and the transition-function registry. *)

module G = Cfl.Grammar
module Pg = Cfl.Pointer_grammar
module Dg = Cfl.Dataflow_grammar
module Transfn = Cfl.Transfn

let test_grammar_normalization () =
  let g = G.create () in
  G.parse_production g "A ::= B C D E";
  G.normalize g;
  List.iter
    (fun (_, rhs) ->
      Alcotest.(check bool) "binary rhs" true (List.length rhs <= 2))
    g.G.productions;
  (* the normalized grammar still derives the original string: check via
     composition tables by folding B C D E *)
  let t = G.composition_tables g in
  let fold syms =
    match List.map (G.symbol g) syms with
    | [] -> []
    | first :: rest ->
        List.fold_left
          (fun currents sym ->
            List.concat_map (fun cur -> G.compose t cur sym) currents)
          [ first ] rest
  in
  Alcotest.(check bool) "BCDE reduces to A" true
    (List.mem (G.symbol g "A") (fold [ "B"; "C"; "D"; "E" ]))

let test_grammar_unary_closure () =
  let g = G.create () in
  G.parse_production g "A ::= B";
  G.parse_production g "B ::= C";
  G.normalize g;
  let t = G.composition_tables g in
  Alcotest.(check bool) "transitive unary" true
    (List.mem (G.symbol g "A") (G.unary t (G.symbol g "C")))

let test_pointer_label_codes () =
  let roundtrip l = Pg.of_int (Pg.to_int l) in
  List.iter
    (fun l -> Alcotest.(check bool) (Pg.to_string l) true (Pg.equal l (roundtrip l)))
    [ Pg.New; Pg.Assign; Pg.Flows_to; Pg.Flows_to_bar; Pg.Alias;
      Pg.Store 0; Pg.Store 12345; Pg.Load 7; Pg.Ft_store 3; Pg.Ft_st_al 99 ]

let test_pointer_compositions () =
  let check_some a b expected =
    match Pg.compose a b with
    | Some l ->
        Alcotest.(check bool)
          (Printf.sprintf "%s . %s" (Pg.to_string a) (Pg.to_string b))
          true (Pg.equal l expected)
    | None -> Alcotest.fail "expected composition"
  in
  check_some Pg.Flows_to Pg.Assign Pg.Flows_to;
  check_some Pg.Flows_to (Pg.Store 4) (Pg.Ft_store 4);
  check_some (Pg.Ft_store 4) Pg.Alias (Pg.Ft_st_al 4);
  check_some (Pg.Ft_st_al 4) (Pg.Load 4) Pg.Flows_to;
  check_some Pg.Flows_to_bar Pg.Flows_to Pg.Alias;
  Alcotest.(check bool) "field mismatch blocks load" true
    (Pg.compose (Pg.Ft_st_al 4) (Pg.Load 5) = None);
  Alcotest.(check bool) "assign then flowsTo is nothing" true
    (Pg.compose Pg.Assign Pg.Flows_to = None)

let test_pointer_unary_mirror () =
  Alcotest.(check bool) "new implies flowsTo" true
    (Pg.unary Pg.New = [ Pg.Flows_to ]);
  Alcotest.(check bool) "flowsTo mirrors to bar" true
    (Pg.mirror Pg.Flows_to = Some Pg.Flows_to_bar);
  Alcotest.(check bool) "assign does not mirror" true (Pg.mirror Pg.Assign = None);
  Alcotest.(check bool) "results are flowsTo and alias" true
    (Pg.is_result Pg.Flows_to && Pg.is_result Pg.Alias
     && not (Pg.is_result Pg.New))

let test_transfn_registry () =
  let r = Transfn.create ~n_states:3 in
  Alcotest.(check int) "identity is 0" 0 Transfn.identity_id;
  let f = Transfn.intern r [| 1; 2; 2 |] in
  let g = Transfn.intern r [| 0; 0; 1 |] in
  Alcotest.(check int) "identity . f = f" f (Transfn.compose r Transfn.identity_id f);
  Alcotest.(check int) "f . identity = f" f (Transfn.compose r f Transfn.identity_id);
  let fg = Transfn.compose r f g in
  (* f then g: state 0 -> 1 -> 0; 1 -> 2 -> 1; 2 -> 2 -> 1 *)
  Alcotest.(check int) "apply composed 0" 0 (Transfn.apply r fg 0);
  Alcotest.(check int) "apply composed 1" 1 (Transfn.apply r fg 1);
  Alcotest.(check int) "apply composed 2" 1 (Transfn.apply r fg 2);
  (* interning is canonical *)
  Alcotest.(check int) "same vector same id" f (Transfn.intern r [| 1; 2; 2 |])

let test_dataflow_labels () =
  let r = Transfn.create ~n_states:2 in
  Dg.set_registry r;
  let f = Transfn.intern r [| 1; 1 |] in
  Alcotest.(check bool) "track . step composes" true
    (Dg.compose (Dg.Track Transfn.identity_id) (Dg.Step f) = Some (Dg.Track f));
  Alcotest.(check bool) "step . step does not" true
    (Dg.compose (Dg.Step f) (Dg.Step f) = None);
  Alcotest.(check bool) "track . track does not" true
    (Dg.compose (Dg.Track f) (Dg.Track f) = None);
  Alcotest.(check bool) "roundtrip codes" true
    (Dg.of_int (Dg.to_int (Dg.Track 5)) = Dg.Track 5
     && Dg.of_int (Dg.to_int (Dg.Step 5)) = Dg.Step 5);
  Alcotest.(check bool) "track is a result" true
    (Dg.is_result (Dg.Track 0) && not (Dg.is_result (Dg.Step 0)))

(* property: transition-function composition is associative *)
let prop_transfn_associative =
  let open QCheck in
  let vec = Gen.array_size (Gen.return 4) (Gen.int_bound 3) in
  QCheck.Test.make ~name:"transfn composition associative" ~count:200
    (make (Gen.triple vec vec vec))
    (fun (a, b, c) ->
      let r = Transfn.create ~n_states:4 in
      let fa = Transfn.intern r a
      and fb = Transfn.intern r b
      and fc = Transfn.intern r c in
      Transfn.compose r (Transfn.compose r fa fb) fc
      = Transfn.compose r fa (Transfn.compose r fb fc))

let prop_pointer_label_roundtrip =
  QCheck.Test.make ~name:"pointer label codes roundtrip" ~count:200
    QCheck.(pair (int_bound 8) (int_bound 10_000))
    (fun (tag, field) ->
      let l =
        match tag with
        | 0 -> Pg.New
        | 1 -> Pg.Assign
        | 2 -> Pg.Flows_to
        | 3 -> Pg.Flows_to_bar
        | 4 -> Pg.Alias
        | 5 -> Pg.Store field
        | 6 -> Pg.Load field
        | 7 -> Pg.Ft_store field
        | _ -> Pg.Ft_st_al field
      in
      Pg.equal l (Pg.of_int (Pg.to_int l)))

let suite =
  [ Alcotest.test_case "grammar normalization" `Quick test_grammar_normalization;
    Alcotest.test_case "grammar unary closure" `Quick test_grammar_unary_closure;
    Alcotest.test_case "pointer label codes" `Quick test_pointer_label_codes;
    Alcotest.test_case "pointer compositions" `Quick test_pointer_compositions;
    Alcotest.test_case "pointer unary/mirror" `Quick test_pointer_unary_mirror;
    Alcotest.test_case "transfn registry" `Quick test_transfn_registry;
    Alcotest.test_case "dataflow labels" `Quick test_dataflow_labels;
    QCheck_alcotest.to_alcotest prop_transfn_associative;
    QCheck_alcotest.to_alcotest prop_pointer_label_roundtrip ]
