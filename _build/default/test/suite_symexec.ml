(* Tests for symbolic execution: CFET construction (structure, Eytzinger
   numbering, exceptions, events), ICFET call edges, and path-constraint
   decoding (Algorithm 1). *)

module Cfet = Symexec.Cfet
module Icfet = Symexec.Icfet
module Solver = Smt.Solver
module E = Pathenc.Encoding

let parse src =
  Jir.Unroll.unroll_program ~bound:2 (Jir.Resolve.parse_exn src)

let figure3b = {|
class Main {
  void main(int a) {
    FileWriter out = null;
    FileWriter o = null;
    int x = a;
    int y = x;
    if (x >= 0) {
      out = new FileWriter();
      o = out;
      y = y - 1;
    } else {
      y = y + 1;
    }
    if (y > 0) {
      out.write(x);
      o.close();
    }
    return;
  }
}
entry Main.main;
|}

let cfet_of src meth =
  let p = parse src in
  let icfet = Icfet.build p in
  (icfet, Option.get (Icfet.cfet_of_meth icfet meth))

let test_figure5a_structure () =
  (* the paper's Figure 5a: 7 nodes, root 0, children 1/2, grandchildren
     3/4/5/6 *)
  let _, c = cfet_of figure3b "Main.main" in
  Alcotest.(check int) "7 nodes" 7 c.Cfet.node_count;
  Alcotest.(check int) "depth 2" 2 c.Cfet.depth;
  let ids = List.sort compare (Hashtbl.fold (fun k _ l -> k :: l) c.Cfet.nodes []) in
  Alcotest.(check (list int)) "eytzinger ids" [ 0; 1; 2; 3; 4; 5; 6 ] ids;
  let root = Cfet.node c 0 in
  Alcotest.(check (option int)) "true child" (Some 2) root.Cfet.t_child;
  Alcotest.(check (option int)) "false child" (Some 1) root.Cfet.f_child;
  Alcotest.(check int) "4 leaves" 4 (List.length c.Cfet.leaves)

let test_parent_arithmetic () =
  Alcotest.(check int) "parent of 6" 2 (Cfet.parent_id 6);
  Alcotest.(check int) "parent of 5" 2 (Cfet.parent_id 5);
  Alcotest.(check int) "parent of 2" 0 (Cfet.parent_id 2);
  Alcotest.(check int) "parent of 1" 0 (Cfet.parent_id 1);
  Alcotest.(check bool) "6 is a true child" true (Cfet.is_true_child 6);
  Alcotest.(check bool) "5 is a false child" false (Cfet.is_true_child 5)

let test_path_constraints_feasibility () =
  let icfet, c = cfet_of figure3b "Main.main" in
  ignore icfet;
  let feasible first last =
    match Solver.check (Cfet.path_constraint c ~first ~last) with
    | Solver.Sat | Solver.Unknown -> true
    | Solver.Unsat -> false
  in
  (* node 6 = both conditionals true: x >= 0 and x - 1 > 0: feasible *)
  Alcotest.(check bool) "path to 6 feasible" true (feasible 0 6);
  (* node 4 = x < 0 and x + 1 > 0: infeasible over the integers *)
  Alcotest.(check bool) "path to 4 infeasible (the paper's third path)" false
    (feasible 0 4);
  Alcotest.(check bool) "path to 5 feasible" true (feasible 0 5);
  Alcotest.(check bool) "path to 3 feasible" true (feasible 0 3)

let test_path_constraint_invalid_interval () =
  let _, c = cfet_of figure3b "Main.main" in
  Alcotest.(check bool) "non-ancestor raises" true
    (try ignore (Cfet.path_constraint c ~first:1 ~last:6); false
     with Invalid_argument _ -> true)

let test_throw_into_handler_same_node () =
  (* a throw with a matching catch does not split the node *)
  let src = {|
class C {
  void m(int p) {
    int before = p;
    try {
      throw new Boom();
    } catch (Boom b) {
      before = 0;
    }
    return;
  }
}
entry C.m;
|} in
  let _, c = cfet_of src "C.m" in
  Alcotest.(check int) "single node" 1 c.Cfet.node_count;
  match (Cfet.node c 0).Cfet.exit with
  | Some (Cfet.Normal _) -> ()
  | _ -> Alcotest.fail "expected a normal leaf"

let test_uncaught_throw_exceptional_leaf () =
  let src = {|
class C {
  void m(int p) {
    if (p > 0) {
      throw new Boom();
    }
    return;
  }
}
entry C.m;
|} in
  let _, c = cfet_of src "C.m" in
  let exceptional =
    List.filter
      (fun id ->
        match (Cfet.node c id).Cfet.exit with
        | Some (Cfet.Exceptional "Boom") -> true
        | _ -> false)
      c.Cfet.leaves
  in
  Alcotest.(check int) "one exceptional leaf" 1 (List.length exceptional)

let test_may_throw_divergence () =
  (* a call to a method declaring `throws` splits the node; the true child
     holds the call, the false child routes to the handler *)
  let src = {|
class Risky {
  void boom(int p) throws Err {
    if (p > 0) {
      throw new Err();
    }
    return;
  }
}
class C {
  void m(int p) {
    try {
      Risky.boom(p);
      int after = 1;
    } catch (Err e) {
      int handled = 1;
    }
    return;
  }
}
entry C.m;
|} in
  let icfet, c = cfet_of src "C.m" in
  Alcotest.(check int) "divergence creates three nodes" 3 c.Cfet.node_count;
  let t_child = Cfet.node c 2 in
  Alcotest.(check int) "call heads the true child" 1
    (List.length t_child.Cfet.calls);
  let ci = List.hd t_child.Cfet.calls in
  Alcotest.(check bool) "call diverges" true ci.Cfet.diverges;
  Alcotest.(check string) "callee" "Risky.boom" ci.Cfet.callee_id;
  (* the ICFET records one call edge for the site *)
  Alcotest.(check int) "one call edge" 1 (Icfet.n_call_edges icfet)

let test_return_value_recorded () =
  let src = {|
class C {
  int f(int p) {
    return p + 1;
  }
  void m(int p) {
    int r = C.f(p);
    return;
  }
}
entry C.m;
|} in
  let icfet, cf = cfet_of src "C.f" in
  (match (Cfet.node cf 0).Cfet.exit with
  | Some (Cfet.Normal (Some _)) -> ()
  | _ -> Alcotest.fail "expected recorded return value");
  (* the call edge carries the parameter equation p_f = p_m *)
  let ce = Icfet.call_edge icfet 0 in
  Alcotest.(check int) "one param equation" 1
    (List.length ce.Icfet.param_equations)

let test_loop_must_be_unrolled () =
  let p = Jir.Resolve.parse_exn {|
class C {
  void m(int p) {
    while (p > 0) {
      p = p - 1;
    }
    return;
  }
}
entry C.m;
|} in
  Alcotest.(check bool) "refuses loops" true
    (try ignore (Icfet.build p); false with Invalid_argument _ -> true)

let test_interprocedural_decode () =
  (* the §3.2 example: foo calls bar, the composed constraint includes the
     parameter-passing equation *)
  let src = {|
class C {
  int bar(int a) {
    if (a < 0) {
      return a + 1;
    }
    return a - 1;
  }
  void foo(int x) {
    int y = x + 1;
    if (x > 0) {
      y = C.bar(2 * x);
    }
    if (y < 0) {
      int dead = 1;
    }
    return;
  }
}
entry C.foo;
|} in
  let p = parse src in
  let icfet = Icfet.build p in
  let foo = Option.get (Icfet.cfet_of_meth icfet "C.foo") in
  let bar = Option.get (Icfet.cfet_of_meth icfet "C.bar") in
  (* x > 0, call bar(2x): 2x < 0 inside bar is infeasible *)
  let call_id = 0 in
  let ce = Icfet.call_edge icfet call_id in
  Alcotest.(check int) "call in foo" foo.Cfet.meth_idx ce.Icfet.caller_meth;
  let enc =
    [ E.Interval { meth = foo.Cfet.meth_idx; first = 0; last = ce.Icfet.caller_node };
      E.Call call_id;
      E.Interval { meth = bar.Cfet.meth_idx; first = 0; last = 2 } ]
  in
  (* bar node 2 is the true child (a < 0) *)
  let f = Icfet.constraint_of icfet enc in
  Alcotest.(check bool) "x>0 & a=2x & a<0 unsat" true
    (Solver.check f = Solver.Unsat);
  let enc_ok =
    [ E.Interval { meth = foo.Cfet.meth_idx; first = 0; last = ce.Icfet.caller_node };
      E.Call call_id;
      E.Interval { meth = bar.Cfet.meth_idx; first = 0; last = 1 } ]
  in
  Alcotest.(check bool) "x>0 & a=2x & a>=0 sat" true
    (Solver.check (Icfet.constraint_of icfet enc_ok) <> Solver.Unsat)

let test_trace_recovery () =
  let p = parse figure3b in
  let icfet = Icfet.build p in
  let main = Option.get (Icfet.cfet_of_meth icfet "Main.main") in
  let enc =
    [ E.Interval { meth = main.Cfet.meth_idx; first = 0; last = 6 } ]
  in
  let trace = Icfet.trace_of icfet enc in
  (* nodes 0 -> 2 -> 6: three trace entries, all in Main.main *)
  Alcotest.(check int) "three steps" 3 (List.length trace);
  List.iter
    (fun step ->
      Alcotest.(check bool) "names the method" true
        (String.length step > 9 && String.sub step 0 9 = "Main.main"))
    trace;
  (* node ids along the path *)
  Alcotest.(check (list (pair int int))) "node sequence"
    [ (main.Cfet.meth_idx, 0); (main.Cfet.meth_idx, 2); (main.Cfet.meth_idx, 6) ]
    (Icfet.nodes_of icfet enc)

let test_icfet_statistics () =
  let p = parse figure3b in
  let icfet = Icfet.build p in
  Alcotest.(check int) "one method" 1 (Icfet.n_methods icfet);
  Alcotest.(check int) "seven nodes" 7 (Icfet.total_nodes icfet)

let suite =
  [ Alcotest.test_case "figure 5a structure" `Quick test_figure5a_structure;
    Alcotest.test_case "parent arithmetic" `Quick test_parent_arithmetic;
    Alcotest.test_case "path feasibility" `Quick test_path_constraints_feasibility;
    Alcotest.test_case "invalid interval" `Quick test_path_constraint_invalid_interval;
    Alcotest.test_case "throw into handler" `Quick test_throw_into_handler_same_node;
    Alcotest.test_case "uncaught throw" `Quick test_uncaught_throw_exceptional_leaf;
    Alcotest.test_case "may-throw divergence" `Quick test_may_throw_divergence;
    Alcotest.test_case "return value recorded" `Quick test_return_value_recorded;
    Alcotest.test_case "loops rejected" `Quick test_loop_must_be_unrolled;
    Alcotest.test_case "interprocedural decode" `Quick test_interprocedural_decode;
    Alcotest.test_case "trace recovery" `Quick test_trace_recovery;
    Alcotest.test_case "icfet statistics" `Quick test_icfet_statistics ]
