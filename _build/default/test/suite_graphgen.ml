(* Tests for graph generation: the clone tree (context sensitivity plan),
   variable versioning, the alias program graph, and the dataflow graph. *)

module Icfet = Symexec.Icfet
module Clone_tree = Graphgen.Clone_tree
module Alias_graph = Graphgen.Alias_graph
module Dataflow_graph = Graphgen.Dataflow_graph
module Varver = Graphgen.Varver
module Pg = Cfl.Pointer_grammar

let prepare src =
  let p = Jir.Unroll.unroll_program ~bound:2 (Jir.Resolve.parse_exn src) in
  let icfet = Icfet.build p in
  let cg = Jir.Callgraph.build p in
  let clones = Clone_tree.build icfet cg in
  (p, icfet, cg, clones)

(* ---------------- clone tree ---------------- *)

let diamond = {|
class Leaf {
  void work(int x) { return; }
}
class Mid {
  void m1(int x) { Leaf.work(x); return; }
  void m2(int x) { Leaf.work(x); return; }
}
class Main {
  void main(int x) {
    Mid.m1(x);
    Mid.m2(x);
    return;
  }
}
entry Main.main;
|}

let test_clone_tree_diamond () =
  let _, _, _, clones = prepare diamond in
  (* main, m1, m2, and TWO clones of Leaf.work *)
  Alcotest.(check int) "five instances" 5 (Clone_tree.n_instances clones);
  Alcotest.(check int) "one entry" 1
    (List.length clones.Clone_tree.entry_instances)

let test_clone_tree_contexts () =
  let _, icfet, _, clones = prepare diamond in
  let work_instances =
    Array.to_list clones.Clone_tree.instances
    |> List.filter (fun (i : Clone_tree.instance) ->
           Jir.Ast.meth_id (Icfet.cfet icfet i.Clone_tree.meth).Symexec.Cfet.meth
           = "Leaf.work")
  in
  Alcotest.(check int) "two clones of Leaf.work" 2 (List.length work_instances);
  (* their context chains differ *)
  let chains =
    List.map
      (fun (i : Clone_tree.instance) ->
        Clone_tree.context_chain clones i.Clone_tree.inst_id)
      work_instances
  in
  Alcotest.(check bool) "distinct contexts" true
    (List.length (List.sort_uniq compare chains) = 2)

let recursive = {|
class R {
  void even(int n) {
    if (n > 0) {
      R.odd(n - 1);
    }
    return;
  }
  void odd(int n) {
    if (n > 0) {
      R.even(n - 1);
    }
    return;
  }
}
class Main {
  void main(int n) { R.even(n); return; }
}
entry Main.main;
|}

let test_clone_tree_recursion_shared () =
  let _, _, _, clones = prepare recursive in
  (* main + one shared group for {even, odd}: 3 instances, finite *)
  Alcotest.(check int) "three instances" 3 (Clone_tree.n_instances clones)

let test_clone_tree_cap () =
  let p, icfet, cg, _ = prepare diamond in
  ignore p;
  Alcotest.(check bool) "cap enforced" true
    (try
       ignore (Clone_tree.build ~max_instances:2 icfet cg);
       false
     with Clone_tree.Too_many_instances _ -> true)

(* ---------------- variable versioning ---------------- *)

let test_varver_kills () =
  let src = {|
class C {
  void m(int p) {
    FileWriter w = new FileWriter();
    w.close();
    w = new FileWriter();
    w.write(p);
    return;
  }
}
entry C.m;
|} in
  let _, icfet, _, _ = prepare src in
  let c = Option.get (Icfet.cfet_of_meth icfet "C.m") in
  let node = Symexec.Cfet.node c 0 in
  let vv = Varver.analyze node.Symexec.Cfet.stmts in
  let sids =
    List.filter_map
      (fun (s : Jir.Ast.stmt) ->
        match s.Jir.Ast.kind with
        | Jir.Ast.Expr c -> Some (s.Jir.Ast.sid, c.Jir.Ast.mname)
        | _ -> None)
      node.Symexec.Cfet.stmts
  in
  (match sids with
  | [ (close_sid, "close"); (write_sid, "write") ] ->
      Alcotest.(check int) "close sees version 1" 1
        (Varver.use vv ~sid:close_sid ~var:"w");
      Alcotest.(check int) "write sees version 2" 2
        (Varver.use vv ~sid:write_sid ~var:"w")
  | _ -> Alcotest.fail "unexpected events");
  Alcotest.(check int) "final version" 2 (Varver.last vv ~var:"w");
  Alcotest.(check bool) "no entry use of w" false
    (Varver.is_entry_use vv ~var:"w");
  Alcotest.(check bool) "p read at entry" true (Varver.is_entry_use vv ~var:"p")

(* ---------------- alias graph ---------------- *)

let test_alias_graph_figure5b () =
  (* the paper's Figure 5b example: the alias graph has the object vertex,
     new/assign edges within block 2, and artificial edges threading
     out/o into the deeper blocks *)
  let src = {|
class Main {
  void main(int a) {
    FileWriter out = null;
    FileWriter o = null;
    int x = a;
    int y = x;
    if (x >= 0) {
      out = new FileWriter();
      o = out;
      y = y - 1;
    } else {
      y = y + 1;
    }
    if (y > 0) {
      out.write(x);
      o.close();
    }
    return;
  }
}
entry Main.main;
|} in
  let _, icfet, _, clones = prepare src in
  let ag = Alias_graph.build icfet clones in
  Alcotest.(check int) "one object" 1 (List.length (Alias_graph.objects ag));
  let new_edges = ref 0 and artificial = ref [] in
  Alias_graph.iter_edges ag (fun e ->
      (match e.Alias_graph.label with
      | Pg.New -> incr new_edges
      | _ -> ());
      match (e.Alias_graph.label, e.Alias_graph.enc) with
      | Pg.Assign, [ Pathenc.Encoding.Interval { first; last; _ } ]
        when first <> last ->
          artificial := (first, last) :: !artificial
      | _ -> ());
  Alcotest.(check int) "one new edge" 1 !new_edges;
  (* out is threaded from block 2 into blocks 5 and 6 (the then-branch of
     the second conditional duplicated under both first-branch outcomes) *)
  Alcotest.(check bool) "artificial edges exist" true (!artificial <> [])

let test_alias_graph_interprocedural_edges () =
  let src = {|
class H {
  FileWriter make(int n) {
    FileWriter w = new FileWriter();
    return w;
  }
}
class Main {
  void main(int n) {
    H h = new H();
    FileWriter f = h.make(n);
    f.close();
    return;
  }
}
entry Main.main;
|} in
  let _, icfet, _, clones = prepare src in
  let ag = Alias_graph.build icfet clones in
  let param_edges = ref 0 and ret_edges = ref 0 in
  Alias_graph.iter_edges ag (fun e ->
      match e.Alias_graph.enc with
      | [ Pathenc.Encoding.Call _ ] -> incr param_edges
      | [ Pathenc.Encoding.Ret _ ] -> incr ret_edges
      | _ -> ());
  (* receiver-this edge + (no var args) for make; value-return edge for f *)
  Alcotest.(check bool) "param edges" true (!param_edges >= 1);
  Alcotest.(check int) "one return edge" 1 !ret_edges

let test_alias_graph_edge_cap () =
  let _, icfet, _, clones = prepare diamond in
  Alcotest.(check bool) "cap enforced" true
    (try ignore (Alias_graph.build ~max_edges:1 icfet clones); false
     with Alias_graph.Too_many_edges _ -> true)

(* ---------------- dataflow graph ---------------- *)

let run_alias_engine icfet ag =
  let workdir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "grapple-test-dfg-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  let module AE = Engine.Make (Cfl.Pointer_grammar) in
  let t =
    AE.create
      ~config:{ (Engine.default_config ~workdir) with Engine.target_partitions = 2 }
      ~decode:(Icfet.constraint_of icfet) ~workdir ()
  in
  Alias_graph.iter_edges ag (fun e ->
      AE.add_seed t ~src:e.Alias_graph.src ~dst:e.Alias_graph.dst
        ~label:e.Alias_graph.label ~enc:e.Alias_graph.enc);
  AE.run t;
  let flows : Dataflow_graph.flows = Hashtbl.create 64 in
  AE.iter_result_edges t (fun e ->
      match (e.AE.label, Alias_graph.info ag e.AE.src) with
      | Pg.Flows_to, Alias_graph.Obj_vertex _ ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt flows e.AE.src) in
          Hashtbl.replace flows e.AE.src ((e.AE.dst, e.AE.enc) :: cur)
      | _ -> ());
  flows

let test_dataflow_graph_structure () =
  let src = {|
class Main {
  void main(int a) {
    FileWriter w = new FileWriter();
    if (a > 0) {
      w.close();
    }
    return;
  }
}
entry Main.main;
|} in
  let _, icfet, _, clones = prepare src in
  let ag = Alias_graph.build icfet clones in
  let flows = run_alias_engine icfet ag in
  let fsm = Checkers.Specs.io_fsm () in
  let dg = Dataflow_graph.build icfet clones ag flows fsm in
  Alcotest.(check int) "one tracked object" 1
    (List.length (Dataflow_graph.tracked dg));
  Alcotest.(check bool) "seeds exist" true (Dataflow_graph.n_seeds dg > 0);
  (* exactly one Track seed *)
  let track_seeds =
    List.filter
      (fun (s : Dataflow_graph.seed) ->
        match s.Dataflow_graph.label with
        | Cfl.Dataflow_grammar.Track _ -> true
        | Cfl.Dataflow_grammar.Step _ -> false)
      (Dataflow_graph.seeds dg)
  in
  Alcotest.(check int) "one track seed" 1 (List.length track_seeds)

let test_dataflow_untracked_class_ignored () =
  let src = {|
class Main {
  void main(int a) {
    Widget w = new Widget();
    w.spin(a);
    return;
  }
}
entry Main.main;
|} in
  let _, icfet, _, clones = prepare src in
  let ag = Alias_graph.build icfet clones in
  let flows = run_alias_engine icfet ag in
  let dg = Dataflow_graph.build icfet clones ag flows (Checkers.Specs.io_fsm ()) in
  Alcotest.(check int) "nothing tracked" 0
    (List.length (Dataflow_graph.tracked dg));
  Alcotest.(check int) "no seeds" 0 (Dataflow_graph.n_seeds dg)

let suite =
  [ Alcotest.test_case "clone tree diamond" `Quick test_clone_tree_diamond;
    Alcotest.test_case "clone tree contexts" `Quick test_clone_tree_contexts;
    Alcotest.test_case "recursion shares clones" `Quick test_clone_tree_recursion_shared;
    Alcotest.test_case "clone tree cap" `Quick test_clone_tree_cap;
    Alcotest.test_case "variable versioning kills" `Quick test_varver_kills;
    Alcotest.test_case "alias graph figure 5b" `Quick test_alias_graph_figure5b;
    Alcotest.test_case "alias graph interprocedural" `Quick
      test_alias_graph_interprocedural_edges;
    Alcotest.test_case "alias graph edge cap" `Quick test_alias_graph_edge_cap;
    Alcotest.test_case "dataflow graph structure" `Quick test_dataflow_graph_structure;
    Alcotest.test_case "dataflow ignores untracked" `Quick
      test_dataflow_untracked_class_ignored ]
