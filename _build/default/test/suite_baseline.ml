(* Tests for the comparison implementations: the formula string parser, the
   string-constraint engine (Table 5) and the in-memory worklist baseline
   (§5.3). *)

module Formula = Smt.Formula
module Linexpr = Smt.Linexpr
module Solver = Smt.Solver
module Symbol = Smt.Symbol
module Fp = Baseline.Formula_parser
module SEngine = Baseline.String_engine.Make (Cfl.Pointer_grammar)
module Pg = Cfl.Pointer_grammar
module E = Pathenc.Encoding

let fresh_workdir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "grapple-test-base-%d-%d" (Unix.getpid ()) !counter)

(* ---------------- formula parser ---------------- *)

let roundtrip f =
  let s = Formula.to_string f in
  let f' = Fp.parse s in
  Alcotest.(check string) ("roundtrip " ^ s) s (Formula.to_string f')

let test_parser_atoms () =
  let x = Linexpr.var (Symbol.intern "x") in
  let y = Linexpr.var (Symbol.intern "y") in
  roundtrip (Formula.le x (Linexpr.const 0));
  roundtrip (Formula.eq x y);
  roundtrip (Formula.lt (Linexpr.scale 3 x) (Linexpr.add y (Linexpr.const 7)));
  roundtrip (Formula.ge x (Linexpr.const (-5)))

let test_parser_structure () =
  let x = Linexpr.var (Symbol.intern "x") in
  roundtrip Formula.True;
  roundtrip Formula.False;
  roundtrip
    (Formula.And
       ( Formula.le x (Linexpr.const 3),
         Formula.Or (Formula.eq x (Linexpr.const 0), Formula.True) ));
  roundtrip (Formula.Not (Formula.eq x (Linexpr.const 2)))

let test_parser_qualified_names () =
  let v = Linexpr.var (Symbol.intern "Main.main::a") in
  let w = Linexpr.var (Symbol.intern "C.<init>::p@17") in
  roundtrip (Formula.le (Linexpr.add v w) (Linexpr.const 1))

let test_parser_rejects_garbage () =
  Alcotest.(check bool) "garbage rejected" true
    (try ignore (Fp.parse "x <= 0 leftover"); false
     with Fp.Parse_error _ -> true)

let prop_parser_roundtrip =
  let arb =
    let open QCheck in
    let linexpr =
      Gen.map2
        (fun pairs const ->
          List.fold_left
            (fun acc (i, c) ->
              Linexpr.add acc
                (Linexpr.var ~coeff:c (Symbol.intern (Printf.sprintf "pv%d" i))))
            (Linexpr.const const) pairs)
        (Gen.small_list (Gen.pair (Gen.int_bound 3) (Gen.int_range (-4) 4)))
        (Gen.int_range (-9) 9)
    in
    let atom =
      Gen.map2
        (fun e k -> if k then Formula.atom_le e else Formula.atom_eq e)
        linexpr Gen.bool
    in
    let rec formula depth =
      if depth = 0 then atom
      else
        Gen.frequency
          [ (3, atom);
            (1, Gen.return Formula.True);
            (1, Gen.return Formula.False);
            (2, Gen.map2 (fun a b -> Formula.And (a, b)) (formula (depth - 1))
                  (formula (depth - 1)));
            (2, Gen.map2 (fun a b -> Formula.Or (a, b)) (formula (depth - 1))
                  (formula (depth - 1)));
            (1, Gen.map (fun a -> Formula.Not a) (formula (depth - 1))) ]
    in
    make ~print:Formula.to_string (formula 3)
  in
  QCheck.Test.make ~name:"formula parser roundtrip" ~count:300 arb (fun f ->
      Formula.to_string (Fp.parse (Formula.to_string f)) = Formula.to_string f)

(* ---------------- string engine ---------------- *)

let seed_chain t n =
  SEngine.add_seed t ~src:0 ~dst:1 ~label:Pg.New ~cstr:"true";
  for i = 1 to n - 1 do
    SEngine.add_seed t ~src:i ~dst:(i + 1) ~label:Pg.Assign ~cstr:"true"
  done

let test_string_engine_closure () =
  let workdir = fresh_workdir () in
  let t = SEngine.create ~workdir () in
  seed_chain t 5;
  SEngine.run t;
  let s = SEngine.stats t in
  Alcotest.(check bool) "did iterations" true
    (s.Baseline.String_engine.iterations > 0);
  Alcotest.(check bool) "edges grew" true
    (s.Baseline.String_engine.edges_after > SEngine.n_seed_edges t)

let test_string_engine_prunes () =
  let workdir = fresh_workdir () in
  let t = SEngine.create ~workdir () in
  let x = "x" in
  SEngine.add_seed t ~src:0 ~dst:1 ~label:Pg.New ~cstr:(x ^ " <= 0");
  SEngine.add_seed t ~src:1 ~dst:2 ~label:Pg.Assign ~cstr:("1 - " ^ x ^ " <= 0");
  SEngine.run t;
  (* x <= 0 & x >= 1 is unsat: no flowsTo to vertex 2 *)
  let s = SEngine.stats t in
  Alcotest.(check bool) "constraint was solved" true
    (s.Baseline.String_engine.constraints_solved > 0);
  (* seeds (4 incl. unary/mirror of new) + the alias self-edge on vertex 1;
     the pruned composition adds nothing towards vertex 2 *)
  Alcotest.(check int) "no transitive edge past the conflict" 5
    s.Baseline.String_engine.edges_after

let test_string_engine_more_partitions_than_grapple () =
  (* the Table 5 shape: with the same byte budget, string constraints force
     more partitions than interval encodings on a branchy chain *)
  let workdir = fresh_workdir () in
  let config =
    { (Baseline.String_engine.default_config ~workdir) with
      Baseline.String_engine.max_bytes_per_partition = 600;
      target_partitions = 1 }
  in
  let t = SEngine.create ~config ~workdir () in
  let long = String.concat " & " (List.init 6 (fun i ->
      Printf.sprintf "(c%d <= 0)" i)) in
  let long = "(" ^ long ^ ")" in
  ignore long;
  SEngine.add_seed t ~src:0 ~dst:1 ~label:Pg.New ~cstr:"true";
  for i = 1 to 9 do
    SEngine.add_seed t ~src:i ~dst:(i + 1) ~label:Pg.Assign
      ~cstr:(Printf.sprintf "cv%d <= 0" i)
  done;
  SEngine.run t;
  let s = SEngine.stats t in
  Alcotest.(check bool) "splits under byte pressure" true
    (s.Baseline.String_engine.n_partitions > 1)

(* ---------------- worklist baseline ---------------- *)

let prepare src =
  let p = Jir.Unroll.unroll_program ~bound:2 (Jir.Resolve.parse_exn src) in
  let icfet = Symexec.Icfet.build p in
  let cg = Jir.Callgraph.build p in
  let clones = Graphgen.Clone_tree.build icfet cg in
  let ag = Graphgen.Alias_graph.build icfet clones in
  (icfet, ag)

let small_src = {|
class Main {
  void main(int a) {
    FileWriter w = new FileWriter();
    FileWriter u = w;
    if (a > 0) {
      u.close();
    }
    return;
  }
}
entry Main.main;
|}

let test_worklist_completes_small () =
  let icfet, ag = prepare small_src in
  let r = Baseline.Worklist.run icfet ag in
  Alcotest.(check bool) "completes" true
    (r.Baseline.Worklist.outcome = Baseline.Worklist.Completed);
  Alcotest.(check bool) "did work" true (r.Baseline.Worklist.edges_processed > 0);
  Alcotest.(check bool) "tracked memory" true (r.Baseline.Worklist.peak_bytes > 0)

let test_worklist_oom_under_budget () =
  let icfet, ag = prepare small_src in
  let r =
    Baseline.Worklist.run
      ~config:{ Baseline.Worklist.memory_budget_bytes = 200; max_seconds = 10. }
      icfet ag
  in
  Alcotest.(check bool) "runs out of memory" true
    (r.Baseline.Worklist.outcome = Baseline.Worklist.Ran_out_of_memory)

let suite =
  [ Alcotest.test_case "parser atoms" `Quick test_parser_atoms;
    Alcotest.test_case "parser structure" `Quick test_parser_structure;
    Alcotest.test_case "parser qualified names" `Quick test_parser_qualified_names;
    Alcotest.test_case "parser rejects garbage" `Quick test_parser_rejects_garbage;
    QCheck_alcotest.to_alcotest prop_parser_roundtrip;
    Alcotest.test_case "string engine closure" `Quick test_string_engine_closure;
    Alcotest.test_case "string engine prunes" `Quick test_string_engine_prunes;
    Alcotest.test_case "string engine partitions" `Quick
      test_string_engine_more_partitions_than_grapple;
    Alcotest.test_case "worklist completes" `Quick test_worklist_completes_small;
    Alcotest.test_case "worklist oom" `Quick test_worklist_oom_under_budget ]
