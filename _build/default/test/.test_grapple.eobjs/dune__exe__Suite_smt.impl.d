test/suite_smt.ml: Alcotest Array Fmt Gen List Printf QCheck QCheck_alcotest Smt
