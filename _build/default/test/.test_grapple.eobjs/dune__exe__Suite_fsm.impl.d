test/suite_fsm.ml: Alcotest Array Checkers Fsm Gen List QCheck QCheck_alcotest
