test/suite_grammar.ml: Alcotest Cfl Gen List Printf QCheck QCheck_alcotest
