test/suite_pipeline.ml: Alcotest Checkers Filename Grapple Jir List Printf Unix
