test/suite_symexec.ml: Alcotest Hashtbl Jir List Option Pathenc Smt String Symexec
