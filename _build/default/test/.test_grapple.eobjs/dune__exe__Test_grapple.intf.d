test/test_grapple.mli:
