test/suite_analysis.ml: Alcotest Analysis Array Jir List Printf String
