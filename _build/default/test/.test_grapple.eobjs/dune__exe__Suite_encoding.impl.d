test/suite_encoding.ml: Alcotest Buffer Bytes Gen List Pathenc Printf QCheck QCheck_alcotest
