test/suite_graphgen.ml: Alcotest Array Cfl Checkers Engine Filename Graphgen Hashtbl Jir List Option Pathenc Printf Random Symexec Unix
