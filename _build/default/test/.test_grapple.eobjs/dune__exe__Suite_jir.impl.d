test/suite_jir.ml: Alcotest Gen Hashtbl Jir List Option Printf QCheck QCheck_alcotest String Workload
