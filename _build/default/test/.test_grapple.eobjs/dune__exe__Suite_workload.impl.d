test/suite_workload.ml: Alcotest Analysis Grapple Jir List QCheck QCheck_alcotest Workload
