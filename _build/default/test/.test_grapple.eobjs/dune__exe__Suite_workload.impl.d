test/suite_workload.ml: Alcotest Grapple Jir List QCheck QCheck_alcotest Workload
