test/suite_baseline.ml: Alcotest Baseline Cfl Filename Gen Graphgen Jir List Pathenc Printf QCheck QCheck_alcotest Smt String Symexec Unix
