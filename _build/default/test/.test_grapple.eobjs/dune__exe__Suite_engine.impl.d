test/suite_engine.ml: Alcotest Cfl Engine Filename Float Gen Hashtbl List Pathenc Printf QCheck QCheck_alcotest Queue Smt String Unix
