(* Tests for the FSM specification DSL and typestate semantics. *)

let writer_fsm = Checkers.Specs.io_fsm
let lock_fsm = Checkers.Specs.lock_fsm
let socket_fsm = Checkers.Specs.socket_fsm

let test_build_and_query () =
  let f = writer_fsm () in
  Alcotest.(check bool) "tracks FileWriter" true (Fsm.is_tracked f "FileWriter");
  Alcotest.(check bool) "does not track Socket" false (Fsm.is_tracked f "Socket");
  Alcotest.(check bool) "write is an event" true (Fsm.is_event f "write");
  Alcotest.(check string) "initial" "Open" (Fsm.state_name f f.Fsm.initial);
  Alcotest.(check bool) "error not accepting" false (Fsm.is_accepting f f.Fsm.error)

let test_step_semantics () =
  let f = writer_fsm () in
  let s0 = f.Fsm.initial in
  let closed = Fsm.step f s0 "close" in
  Alcotest.(check string) "close" "Closed" (Fsm.state_name f closed);
  Alcotest.(check string) "write after close is error" "Error"
    (Fsm.state_name f (Fsm.step f closed "write"));
  (* error is absorbing *)
  Alcotest.(check int) "absorbing" f.Fsm.error
    (Fsm.step f f.Fsm.error "close");
  (* unknown events stall by default *)
  Alcotest.(check int) "unknown event ignored" s0 (Fsm.step f s0 "toString")

let test_run_and_verdict () =
  let f = writer_fsm () in
  Alcotest.(check bool) "ok sequence" true
    (Fsm.check_sequence f [ "write"; "write"; "close" ] = Fsm.Ok_);
  Alcotest.(check bool) "missing close" true
    (match Fsm.check_sequence f [ "write" ] with
    | Fsm.Bad_final _ -> true
    | _ -> false);
  Alcotest.(check bool) "use after close" true
    (Fsm.check_sequence f [ "close"; "write" ] = Fsm.Reaches_error)

let test_figure3a_example () =
  (* Figure 3b's four paths against the Figure 3a FSM *)
  let f = writer_fsm () in
  Alcotest.(check bool) "path 1: new write close" true
    (Fsm.check_sequence f [ "write"; "close" ] = Fsm.Ok_);
  Alcotest.(check bool) "path 2: new only -> not accepting" true
    (match Fsm.check_sequence f [] with Fsm.Bad_final _ -> true | _ -> false)

let test_lock_fsm () =
  let f = lock_fsm () in
  Alcotest.(check bool) "lock unlock ok" true
    (Fsm.check_sequence f [ "lock"; "unlock" ] = Fsm.Ok_);
  Alcotest.(check bool) "unlock first is error" true
    (Fsm.check_sequence f [ "unlock"; "lock" ] = Fsm.Reaches_error);
  Alcotest.(check bool) "held at exit is bad" true
    (match Fsm.check_sequence f [ "lock" ] with
    | Fsm.Bad_final _ -> true
    | _ -> false)

let test_socket_fsm () =
  let f = socket_fsm () in
  Alcotest.(check bool) "bind accept close ok" true
    (Fsm.check_sequence f [ "bind"; "accept"; "close" ] = Fsm.Ok_);
  Alcotest.(check bool) "accept before bind is error" true
    (Fsm.check_sequence f [ "accept" ] = Fsm.Reaches_error);
  Alcotest.(check bool) "never closed leaks" true
    (match Fsm.check_sequence f [ "bind" ] with
    | Fsm.Bad_final _ -> true
    | _ -> false)

let test_event_vector () =
  let f = writer_fsm () in
  let v = Fsm.event_vector f "close" in
  Alcotest.(check int) "arity" (Fsm.n_states f) (Array.length v);
  Array.iteri
    (fun s s' ->
      Alcotest.(check int) "vector agrees with step" (Fsm.step f s "close") s')
    v

let test_nondeterministic_rejected () =
  let b = Fsm.builder "broken" in
  Fsm.track b "T";
  Fsm.initial b "A";
  Fsm.on b ~from:"A" ~event:"e" ~goto:"B";
  Fsm.on b ~from:"A" ~event:"e" ~goto:"C";
  Alcotest.(check bool) "nondeterminism rejected" true
    (try ignore (Fsm.build b); false with Fsm.Invalid_spec _ -> true)

let test_spec_requires_initial_and_classes () =
  let b = Fsm.builder "empty" in
  Fsm.track b "T";
  Alcotest.(check bool) "missing initial rejected" true
    (try ignore (Fsm.build b); false with Fsm.Invalid_spec _ -> true);
  let b2 = Fsm.builder "noclass" in
  Fsm.initial b2 "A";
  Alcotest.(check bool) "missing classes rejected" true
    (try ignore (Fsm.build b2); false with Fsm.Invalid_spec _ -> true)

let test_strict_events () =
  let b = Fsm.builder "strict" in
  Fsm.track b "T";
  Fsm.initial b "A";
  Fsm.accepting b "A";
  Fsm.on b ~from:"A" ~event:"e" ~goto:"A";
  Fsm.strict_events b;
  let f = Fsm.build b in
  Alcotest.(check int) "unknown event errors in strict mode" f.Fsm.error
    (Fsm.step f f.Fsm.initial "other")

(* property: run = fold of step *)
let prop_run_is_fold =
  let open QCheck in
  let events = [ "write"; "read"; "close"; "flush"; "noise" ] in
  QCheck.Test.make ~name:"fsm run = fold step" ~count:200
    (list_of_size (Gen.int_range 0 12) (oneofl events))
    (fun seq ->
      let f = writer_fsm () in
      Fsm.run f seq
      = List.fold_left (fun s e -> Fsm.step f s e) f.Fsm.initial seq)

let prop_error_absorbing =
  let open QCheck in
  let events = [ "write"; "read"; "close"; "flush" ] in
  QCheck.Test.make ~name:"fsm error absorbing" ~count:200
    (list_of_size (Gen.int_range 0 12) (oneofl events))
    (fun seq ->
      let f = writer_fsm () in
      List.fold_left (fun s e -> Fsm.step f s e) f.Fsm.error seq = f.Fsm.error)

let suite =
  [ Alcotest.test_case "build and query" `Quick test_build_and_query;
    Alcotest.test_case "step semantics" `Quick test_step_semantics;
    Alcotest.test_case "run and verdict" `Quick test_run_and_verdict;
    Alcotest.test_case "figure 3a example" `Quick test_figure3a_example;
    Alcotest.test_case "lock fsm" `Quick test_lock_fsm;
    Alcotest.test_case "socket fsm" `Quick test_socket_fsm;
    Alcotest.test_case "event vector" `Quick test_event_vector;
    Alcotest.test_case "nondeterminism rejected" `Quick test_nondeterministic_rejected;
    Alcotest.test_case "spec validation" `Quick test_spec_requires_initial_and_classes;
    Alcotest.test_case "strict events" `Quick test_strict_events;
    QCheck_alcotest.to_alcotest prop_run_is_fold;
    QCheck_alcotest.to_alcotest prop_error_absorbing ]
