(* Tests for the SMT substrate: linear expressions, formulas, the theory
   solver, the SAT core, and the DPLL(T) driver. *)

module Linexpr = Smt.Linexpr
module Formula = Smt.Formula
module Theory = Smt.Theory
module Sat = Smt.Sat
module Solver = Smt.Solver
module Symbol = Smt.Symbol

let sym = Symbol.intern
let x () = Linexpr.var (sym "x")
let y () = Linexpr.var (sym "y")
let z () = Linexpr.var (sym "z")
let c = Linexpr.const

let check_result = Alcotest.testable
    (fun ppf -> function
      | Solver.Sat -> Fmt.string ppf "Sat"
      | Solver.Unsat -> Fmt.string ppf "Unsat"
      | Solver.Unknown -> Fmt.string ppf "Unknown")
    ( = )

let solve = Solver.check

(* ---------------- Linexpr ---------------- *)

let test_linexpr_add () =
  let e = Linexpr.add (x ()) (Linexpr.add (x ()) (c 3)) in
  Alcotest.(check int) "coeff of x" 2 (Linexpr.coeff_of (sym "x") e);
  Alcotest.(check int) "const" 3 e.Linexpr.const

let test_linexpr_sub_cancel () =
  let e = Linexpr.sub (Linexpr.add (x ()) (y ())) (x ()) in
  Alcotest.(check int) "x cancelled" 0 (Linexpr.coeff_of (sym "x") e);
  Alcotest.(check int) "y kept" 1 (Linexpr.coeff_of (sym "y") e)

let test_linexpr_sub_empty_left () =
  (* regression: subtracting from a constant must negate the coefficients *)
  let e = Linexpr.sub (c 5) (x ()) in
  Alcotest.(check int) "-x" (-1) (Linexpr.coeff_of (sym "x") e);
  Alcotest.(check int) "const 5" 5 e.Linexpr.const

let test_linexpr_scale () =
  let e = Linexpr.scale (-3) (Linexpr.add (x ()) (c 2)) in
  Alcotest.(check int) "-3x" (-3) (Linexpr.coeff_of (sym "x") e);
  Alcotest.(check int) "-6" (-6) e.Linexpr.const;
  Alcotest.(check bool) "scale 0 is zero" true
    (Linexpr.equal Linexpr.zero (Linexpr.scale 0 (x ())))

let test_linexpr_subst () =
  (* x := y + 1 in 2x + 3 gives 2y + 5 *)
  let e = Linexpr.add (Linexpr.scale 2 (x ())) (c 3) in
  let e = Linexpr.subst ~v:(sym "x") ~by:(Linexpr.add (y ()) (c 1)) e in
  Alcotest.(check int) "2y" 2 (Linexpr.coeff_of (sym "y") e);
  Alcotest.(check int) "x gone" 0 (Linexpr.coeff_of (sym "x") e);
  Alcotest.(check int) "const 5" 5 e.Linexpr.const

let test_linexpr_eval () =
  let e = Linexpr.add (Linexpr.scale 2 (x ())) (Linexpr.sub (y ()) (c 7)) in
  let assignment v = if v = sym "x" then 3 else 4 in
  Alcotest.(check int) "2*3 + 4 - 7" 3 (Linexpr.eval assignment e)

(* ---------------- Formula construction ---------------- *)

let test_formula_constant_folding () =
  Alcotest.(check bool) "0 <= 1 is true" true (Formula.le (c 0) (c 1) = Formula.True);
  Alcotest.(check bool) "1 <= 0 is false" true (Formula.le (c 1) (c 0) = Formula.False);
  Alcotest.(check bool) "x < x is false" true (Formula.lt (x ()) (x ()) = Formula.False);
  Alcotest.(check bool) "x = x is true" true (Formula.eq (x ()) (x ()) = Formula.True)

let test_formula_gcd_tightening () =
  (* 2x <= 1 tightens to x <= 0 over the integers *)
  match Formula.le (Linexpr.scale 2 (x ())) (c 1) with
  | Formula.Atom (Formula.Le e) ->
      Alcotest.(check int) "coeff 1" 1 (Linexpr.coeff_of (sym "x") e);
      Alcotest.(check int) "const 0" 0 e.Linexpr.const
  | _ -> Alcotest.fail "expected an atom"

let test_formula_infeasible_eq () =
  (* 2x = 1 has no integer solution; folded to False at construction *)
  Alcotest.(check bool) "2x = 1 is false" true
    (Formula.eq (Linexpr.scale 2 (x ())) (c 1) = Formula.False)

let test_nnf_no_negation () =
  let f =
    Formula.not_
      (Formula.and_
         (Formula.le (x ()) (c 0))
         (Formula.not_ (Formula.eq (y ()) (c 2))))
  in
  let rec no_not = function
    | Formula.Not _ -> false
    | Formula.And (a, b) | Formula.Or (a, b) -> no_not a && no_not b
    | Formula.True | Formula.False | Formula.Atom _ -> true
  in
  Alcotest.(check bool) "nnf eliminates negation" true (no_not (Formula.nnf f))

(* ---------------- Theory solver ---------------- *)

let test_theory_simple_sat () =
  (* x <= 0 and x >= -5 *)
  let atoms =
    [ Formula.Le (x ()); Formula.Le (Linexpr.sub (c (-5)) (x ())) ]
  in
  Alcotest.(check bool) "sat" true (Theory.check atoms ~neg_eqs:[] = Theory.Sat)

let test_theory_simple_unsat () =
  (* x <= 0 and x >= 1, i.e. x <= 0 and 1 - x <= 0 *)
  let atoms = [ Formula.Le (x ()); Formula.Le (Linexpr.sub (c 1) (x ())) ] in
  Alcotest.(check bool) "unsat" true
    (Theory.check atoms ~neg_eqs:[] = Theory.Unsat)

let test_theory_equality_substitution () =
  (* x = y + 1, y = 3, x <= 2 is unsat *)
  let atoms =
    [ Formula.Eq (Linexpr.sub (x ()) (Linexpr.add (y ()) (c 1)));
      Formula.Eq (Linexpr.sub (y ()) (c 3));
      Formula.Le (Linexpr.sub (x ()) (c 2)) ]
  in
  Alcotest.(check bool) "unsat" true
    (Theory.check atoms ~neg_eqs:[] = Theory.Unsat)

let test_theory_transitive_chain () =
  (* x <= y, y <= z, z <= x - 1 is unsat (cycle with slack) *)
  let le a b = Formula.Le (Linexpr.sub a b) in
  let atoms =
    [ le (x ()) (y ()); le (y ()) (z ());
      le (z ()) (Linexpr.sub (x ()) (c 1)) ]
  in
  Alcotest.(check bool) "unsat" true
    (Theory.check atoms ~neg_eqs:[] = Theory.Unsat);
  let atoms_ok = [ le (x ()) (y ()); le (y ()) (z ()); le (z ()) (x ()) ] in
  Alcotest.(check bool) "sat without slack" true
    (Theory.check atoms_ok ~neg_eqs:[] = Theory.Sat)

let test_theory_neg_eq_split () =
  (* 0 <= x <= 1 and x <> 0 and x <> 1 is unsat over the integers *)
  let atoms =
    [ Formula.Le (Linexpr.neg (x ())); Formula.Le (Linexpr.sub (x ()) (c 1)) ]
  in
  Alcotest.(check bool) "x in {0,1} minus both" true
    (Theory.check atoms ~neg_eqs:[ x (); Linexpr.sub (x ()) (c 1) ]
     = Theory.Unsat);
  Alcotest.(check bool) "x in {0,1} minus one" true
    (Theory.check atoms ~neg_eqs:[ x () ] = Theory.Sat)

(* ---------------- SAT core ---------------- *)

let test_sat_basic () =
  (* (a | b) & (!a | b) & (a | !b) forces a=b=true *)
  match Sat.solve ~nvars:2 [ [ 1; 2 ]; [ -1; 2 ]; [ 1; -2 ] ] with
  | Sat.Sat model ->
      Alcotest.(check bool) "a" true model.(1);
      Alcotest.(check bool) "b" true model.(2)
  | Sat.Unsat -> Alcotest.fail "expected sat"

let test_sat_unsat () =
  let clauses = [ [ 1; 2 ]; [ -1; 2 ]; [ 1; -2 ]; [ -1; -2 ] ] in
  Alcotest.(check bool) "unsat" true (Sat.solve ~nvars:2 clauses = Sat.Unsat)

let test_sat_empty_clause () =
  Alcotest.(check bool) "empty clause unsat" true
    (Sat.solve ~nvars:1 [ [] ] = Sat.Unsat)

let test_sat_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: vars p_ij = pigeon i in hole j, 1-indexed *)
  let v i j = ((i - 1) * 2) + j in
  let clauses =
    (* each pigeon somewhere *)
    [ [ v 1 1; v 1 2 ]; [ v 2 1; v 2 2 ]; [ v 3 1; v 3 2 ] ]
    (* no two pigeons share a hole *)
    @ List.concat_map
        (fun j ->
          [ [ -v 1 j; -v 2 j ]; [ -v 1 j; -v 3 j ]; [ -v 2 j; -v 3 j ] ])
        [ 1; 2 ]
  in
  Alcotest.(check bool) "pigeonhole unsat" true
    (Sat.solve ~nvars:6 clauses = Sat.Unsat)

(* ---------------- DPLL(T) ---------------- *)

let test_solver_conjunction_fastpath () =
  let f =
    Formula.conj
      [ Formula.ge (x ()) (c 0); Formula.le (x ()) (c 10);
        Formula.eq (y ()) (Linexpr.add (x ()) (c 1));
        Formula.gt (y ()) (c 10) ]
  in
  (* x <= 10 and y = x+1 > 10 forces x = 10: satisfiable *)
  Alcotest.check check_result "sat" Solver.Sat (solve f);
  let g = Formula.and_ f (Formula.lt (x ()) (c 10)) in
  Alcotest.check check_result "then unsat" Solver.Unsat (solve g)

let test_solver_disjunction () =
  (* (x <= 0 | x >= 5) & x = 3  is unsat; with x = 6 sat *)
  let disj = Formula.or_ (Formula.le (x ()) (c 0)) (Formula.ge (x ()) (c 5)) in
  Alcotest.check check_result "unsat" Solver.Unsat
    (solve (Formula.and_ disj (Formula.eq (x ()) (c 3))));
  Alcotest.check check_result "sat" Solver.Sat
    (solve (Formula.and_ disj (Formula.eq (x ()) (c 6))))

let test_solver_paper_example () =
  (* the infeasible third path of Figure 3b: x < 0, y = x + 1, y > 0 *)
  let f =
    Formula.conj
      [ Formula.lt (x ()) (c 0);
        Formula.eq (y ()) (Linexpr.add (x ()) (c 1));
        Formula.gt (y ()) (c 0) ]
  in
  Alcotest.check check_result "infeasible path" Solver.Unsat (solve f);
  (* the feasible first path: x >= 0, y = x - 1, y > 0 *)
  let g =
    Formula.conj
      [ Formula.ge (x ()) (c 0);
        Formula.eq (y ()) (Linexpr.sub (x ()) (c 1));
        Formula.gt (y ()) (c 0) ]
  in
  Alcotest.check check_result "feasible path" Solver.Sat (solve g)

let test_model_extraction () =
  (* x >= 3, y = x + 2, y <= 6 has exactly x in {3,4} *)
  let f =
    Formula.conj
      [ Formula.ge (x ()) (c 3);
        Formula.eq (y ()) (Linexpr.add (x ()) (c 2));
        Formula.le (y ()) (c 6) ]
  in
  (match Solver.check_with_model f with
  | Solver.Model_sat (Some model) ->
      let value v = match List.assoc_opt v model with Some n -> n | None -> 0 in
      Alcotest.(check bool) "witness satisfies formula" true
        (Formula.eval value f);
      Alcotest.(check bool) "x in range" true
        (value (sym "x") >= 3 && value (sym "x") <= 4)
  | Solver.Model_sat None -> Alcotest.fail "expected a concrete witness"
  | Solver.Model_unsat | Solver.Model_unknown -> Alcotest.fail "expected sat");
  (* unsat formulas have no model *)
  let g = Formula.and_ f (Formula.ge (x ()) (c 10)) in
  Alcotest.(check bool) "unsat has no model" true
    (Solver.check_with_model g = Solver.Model_unsat)

let test_model_disconnected_components () =
  (* two independent constraint groups merge into one witness *)
  let f =
    Formula.conj
      [ Formula.ge (x ()) (c 5);
        Formula.le (y ()) (c (-2));
        Formula.eq (z ()) (c 7) ]
  in
  match Solver.check_with_model f with
  | Solver.Model_sat (Some model) ->
      let value v = match List.assoc_opt v model with Some n -> n | None -> 0 in
      Alcotest.(check bool) "holds" true (Formula.eval value f)
  | _ -> Alcotest.fail "expected a witness"

let test_solver_entailment () =
  let f = Formula.ge (x ()) (c 5) in
  let g = Formula.ge (x ()) (c 0) in
  Alcotest.(check bool) "x>=5 entails x>=0" true (Solver.entails f g);
  Alcotest.(check bool) "x>=0 does not entail x>=5" false (Solver.entails g f)

(* ---------------- properties ---------------- *)

let arb_linexpr =
  let open QCheck in
  let gen =
    Gen.map2
      (fun coeffs const ->
        List.fold_left
          (fun acc (i, c) ->
            Linexpr.add acc (Linexpr.var ~coeff:c (sym (Printf.sprintf "q%d" i))))
          (Linexpr.const const) coeffs)
      (Gen.small_list (Gen.pair (Gen.int_bound 4) (Gen.int_range (-5) 5)))
      (Gen.int_range (-20) 20)
  in
  make ~print:Linexpr.to_string gen

let prop_add_comm =
  QCheck.Test.make ~name:"linexpr add commutative" ~count:200
    (QCheck.pair arb_linexpr arb_linexpr) (fun (a, b) ->
      Linexpr.equal (Linexpr.add a b) (Linexpr.add b a))

let prop_sub_self_zero =
  QCheck.Test.make ~name:"linexpr a - a = 0" ~count:200 arb_linexpr (fun a ->
      Linexpr.equal (Linexpr.sub a a) Linexpr.zero)

let prop_neg_involution =
  QCheck.Test.make ~name:"linexpr neg involutive" ~count:200 arb_linexpr
    (fun a -> Linexpr.equal (Linexpr.neg (Linexpr.neg a)) a)

(* random small conjunctions: solver agrees with brute-force evaluation
   over a small box of integer assignments *)
let arb_small_formula =
  let open QCheck in
  let atom =
    Gen.map2
      (fun e k ->
        match k mod 3 with
        | 0 -> Formula.atom_le e
        | 1 -> Formula.atom_eq e
        | _ -> Formula.not_ (Formula.atom_le e))
      (Gen.map2
         (fun cx rest -> Linexpr.add (Linexpr.var ~coeff:cx (sym "q0")) rest)
         (Gen.int_range (-2) 2)
         (Gen.map2
            (fun cy const ->
              Linexpr.add (Linexpr.var ~coeff:cy (sym "q1")) (Linexpr.const const))
            (Gen.int_range (-2) 2)
            (Gen.int_range (-4) 4)))
      Gen.int
  in
  let gen =
    Gen.map
      (fun atoms -> Formula.conj atoms)
      (Gen.list_size (Gen.int_range 1 4) atom)
  in
  make ~print:Formula.to_string gen

(* witness extraction agrees with brute force over the box *)
let prop_model_valid =
  QCheck.Test.make ~name:"extracted models satisfy the formula" ~count:150
    arb_small_formula (fun f ->
      match Solver.check_with_model f with
      | Solver.Model_sat (Some model) ->
          let value v =
            match List.assoc_opt v model with Some n -> n | None -> 0
          in
          Formula.eval value f
      | Solver.Model_sat None | Solver.Model_unsat | Solver.Model_unknown ->
          true)

let prop_solver_sound_on_box =
  (* if brute force finds a model in [-8,8]^2, the solver must say Sat *)
  QCheck.Test.make ~name:"solver finds box models" ~count:150 arb_small_formula
    (fun f ->
      let has_model = ref false in
      for a = -8 to 8 do
        for b = -8 to 8 do
          let assignment v =
            if v = sym "q0" then a else if v = sym "q1" then b else 0
          in
          if Formula.eval assignment f then has_model := true
        done
      done;
      if !has_model then Solver.check f <> Solver.Unsat else true)

let prop_unsat_has_no_box_model =
  QCheck.Test.make ~name:"unsat formulas have no box models" ~count:150
    arb_small_formula (fun f ->
      if Solver.check f = Solver.Unsat then begin
        let ok = ref true in
        for a = -8 to 8 do
          for b = -8 to 8 do
            let assignment v =
              if v = sym "q0" then a else if v = sym "q1" then b else 0
            in
            if Formula.eval assignment f then ok := false
          done
        done;
        !ok
      end
      else true)

let suite =
  [ Alcotest.test_case "linexpr add" `Quick test_linexpr_add;
    Alcotest.test_case "linexpr sub cancels" `Quick test_linexpr_sub_cancel;
    Alcotest.test_case "linexpr sub from const" `Quick test_linexpr_sub_empty_left;
    Alcotest.test_case "linexpr scale" `Quick test_linexpr_scale;
    Alcotest.test_case "linexpr subst" `Quick test_linexpr_subst;
    Alcotest.test_case "linexpr eval" `Quick test_linexpr_eval;
    Alcotest.test_case "formula constant folding" `Quick test_formula_constant_folding;
    Alcotest.test_case "formula gcd tightening" `Quick test_formula_gcd_tightening;
    Alcotest.test_case "formula infeasible equality" `Quick test_formula_infeasible_eq;
    Alcotest.test_case "nnf eliminates negations" `Quick test_nnf_no_negation;
    Alcotest.test_case "theory sat" `Quick test_theory_simple_sat;
    Alcotest.test_case "theory unsat" `Quick test_theory_simple_unsat;
    Alcotest.test_case "theory equality subst" `Quick test_theory_equality_substitution;
    Alcotest.test_case "theory transitive chain" `Quick test_theory_transitive_chain;
    Alcotest.test_case "theory disequality split" `Quick test_theory_neg_eq_split;
    Alcotest.test_case "sat basic" `Quick test_sat_basic;
    Alcotest.test_case "sat unsat" `Quick test_sat_unsat;
    Alcotest.test_case "sat empty clause" `Quick test_sat_empty_clause;
    Alcotest.test_case "sat pigeonhole" `Quick test_sat_pigeonhole_3_2;
    Alcotest.test_case "solver conjunction" `Quick test_solver_conjunction_fastpath;
    Alcotest.test_case "solver disjunction" `Quick test_solver_disjunction;
    Alcotest.test_case "solver figure 3b paths" `Quick test_solver_paper_example;
    Alcotest.test_case "model extraction" `Quick test_model_extraction;
    Alcotest.test_case "model across components" `Quick test_model_disconnected_components;
    Alcotest.test_case "solver entailment" `Quick test_solver_entailment;
    QCheck_alcotest.to_alcotest prop_add_comm;
    QCheck_alcotest.to_alcotest prop_sub_self_zero;
    QCheck_alcotest.to_alcotest prop_neg_involution;
    QCheck_alcotest.to_alcotest prop_model_valid;
    QCheck_alcotest.to_alcotest prop_solver_sound_on_box;
    QCheck_alcotest.to_alcotest prop_unsat_has_no_box_model ]
