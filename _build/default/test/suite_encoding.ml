(* Tests for the interval-sequence path encodings: composition (the four
   cases of §4.2), call/return cancellation, endpoints, and the binary
   serialization. *)

module E = Pathenc.Encoding

let enc = Alcotest.testable E.pp E.equal

let iv ?(meth = 0) first last = E.Interval { meth; first; last }

let test_case1_fusion () =
  (* {[a,b]} . {[b,c]} = {[a,c]} *)
  let x = [ iv 0 2 ] and y = [ iv 2 6 ] in
  Alcotest.check enc "fused" [ iv 0 6 ] (E.compose_normalized x y)

let test_case2_call_concat () =
  (* {[a,b]} . {(i} = {[a,b] (i} *)
  let x = [ iv 0 2 ] and y = [ E.Call 7 ] in
  Alcotest.check enc "concat" [ iv 0 2; E.Call 7 ] (E.compose_normalized x y)

let test_case3_cancellation () =
  (* {[a,b] (i [0,0]} . {[0,d] )i [b,c]} = {[a,c]} *)
  let x = [ iv 0 2; E.Call 7; iv ~meth:1 0 0 ] in
  let y = [ iv ~meth:1 0 5; E.Ret 7; iv 2 6 ] in
  Alcotest.check enc "matched pair removed" [ iv 0 6 ]
    (E.compose_normalized x y)

let test_case4_extended_calls () =
  (* unmatched calls accumulate *)
  let x = [ iv 0 2; E.Call 7; iv ~meth:1 0 0 ] in
  let y = [ iv ~meth:1 0 3; E.Call 9; iv ~meth:2 0 0 ] in
  Alcotest.check enc "call chain grows"
    [ iv 0 2; E.Call 7; iv ~meth:1 0 3; E.Call 9; iv ~meth:2 0 0 ]
    (E.compose_normalized x y)

let test_nested_cancellation () =
  (* inner pair cancels first, then the outer pair *)
  let path =
    [ iv 0 2; E.Call 1; iv ~meth:1 0 3; E.Call 2; iv ~meth:2 0 4; E.Ret 2;
      iv ~meth:1 3 7; E.Ret 1; iv 2 6 ]
  in
  Alcotest.check enc "both pairs removed" [ iv 0 6 ] (E.normalize path)

let test_incomposable_endpoints () =
  let x = [ iv 0 2 ] and y = [ iv 5 6 ] in
  Alcotest.check_raises "mismatched junction" E.Incomposable (fun () ->
      ignore (E.compose x y))

let test_incomposable_cross_method () =
  let x = [ iv ~meth:0 0 2 ] and y = [ iv ~meth:1 2 6 ] in
  Alcotest.check_raises "different methods" E.Incomposable (fun () ->
      ignore (E.compose x y))

let test_rev_endpoints () =
  (* Rev wraps a forward path; entry/exit swap *)
  let fwd = [ iv 0 6 ] in
  let bar = E.rev fwd in
  Alcotest.(check (option (pair int int))) "entry of rev = exit of fwd"
    (Some (0, 6)) (E.entry_point bar);
  Alcotest.(check (option (pair int int))) "exit of rev = entry of fwd"
    (Some (0, 0)) (E.exit_point bar)

let test_rev_composition () =
  (* flowsToBar . flowsTo at the shared object vertex *)
  let bar = E.rev [ iv 0 4 ] in
  let fwd = [ iv 0 6 ] in
  let alias = E.compose_normalized bar fwd in
  Alcotest.check enc "alias keeps both fragments"
    [ E.Rev [ iv 0 4 ]; iv 0 6 ] alias

let test_aux_is_opaque () =
  let x = [ iv 0 2; E.Aux [ iv 0 4 ] ] in
  let y = [ iv 2 6 ] in
  (* Aux at the end blocks fusion but not composition *)
  let composed = E.compose_normalized x y in
  Alcotest.check enc "concatenated" [ iv 0 2; E.Aux [ iv 0 4 ]; iv 2 6 ]
    composed

let test_pending_calls () =
  Alcotest.(check (list int)) "pending" [ 3; 9 ]
    (E.pending_calls [ iv 0 1; E.Call 3; iv ~meth:1 0 0; E.Call 9 ]);
  Alcotest.(check (list int)) "balanced" []
    (E.pending_calls [ E.Call 3; E.Ret 3 ]);
  Alcotest.(check (list int)) "extra return ignored" []
    (E.pending_calls [ E.Ret 4 ])

let test_n_elements () =
  Alcotest.(check int) "nested counted" 4
    (E.n_elements [ iv 0 1; E.Rev [ iv 0 2; E.Call 1 ] ])

let test_serialization_roundtrip () =
  let e =
    [ iv 0 2; E.Call 300; iv ~meth:17 0 129; E.Ret 300;
      E.Rev [ iv 3 7; E.Aux [ iv ~meth:2 0 0 ] ] ]
  in
  Alcotest.check enc "roundtrip" e (E.of_bytes (E.to_bytes e))

let test_varint_boundaries () =
  List.iter
    (fun n ->
      let buf = Buffer.create 8 in
      E.add_varint buf n;
      let pos = ref 0 in
      let m = E.read_varint (Bytes.of_string (Buffer.contents buf)) pos in
      Alcotest.(check int) (Printf.sprintf "varint %d" n) n m)
    [ 0; 1; 127; 128; 255; 16_383; 16_384; 1_000_000; max_int / 2 ]

(* ---------------- properties ---------------- *)

let arb_encoding =
  let open QCheck in
  let elem =
    Gen.frequency
      [ (6,
         Gen.map2
           (fun meth (a, b) ->
             E.Interval { meth; first = min a b; last = max a b })
           (Gen.int_bound 3)
           (Gen.pair (Gen.int_bound 30) (Gen.int_bound 30)));
        (2, Gen.map (fun i -> E.Call i) (Gen.int_bound 50));
        (2, Gen.map (fun i -> E.Ret i) (Gen.int_bound 50)) ]
  in
  make ~print:E.to_string (Gen.list_size (Gen.int_range 0 6) elem)

let prop_serialization_roundtrip =
  QCheck.Test.make ~name:"encoding serialization roundtrip" ~count:300
    arb_encoding (fun e -> E.equal e (E.of_bytes (E.to_bytes e)))

let prop_normalize_idempotent =
  QCheck.Test.make ~name:"normalize idempotent" ~count:300 arb_encoding
    (fun e -> E.equal (E.normalize e) (E.normalize (E.normalize e)))

let prop_normalize_preserves_pending =
  QCheck.Test.make ~name:"normalize preserves pending calls" ~count:300
    arb_encoding (fun e ->
      E.pending_calls e = E.pending_calls (E.normalize e))

let suite =
  [ Alcotest.test_case "case 1: interval fusion" `Quick test_case1_fusion;
    Alcotest.test_case "case 2: call concat" `Quick test_case2_call_concat;
    Alcotest.test_case "case 3: cancellation" `Quick test_case3_cancellation;
    Alcotest.test_case "case 4: extended calls" `Quick test_case4_extended_calls;
    Alcotest.test_case "nested cancellation" `Quick test_nested_cancellation;
    Alcotest.test_case "incomposable endpoints" `Quick test_incomposable_endpoints;
    Alcotest.test_case "incomposable methods" `Quick test_incomposable_cross_method;
    Alcotest.test_case "rev endpoints" `Quick test_rev_endpoints;
    Alcotest.test_case "rev composition" `Quick test_rev_composition;
    Alcotest.test_case "aux opaque" `Quick test_aux_is_opaque;
    Alcotest.test_case "pending calls" `Quick test_pending_calls;
    Alcotest.test_case "element count" `Quick test_n_elements;
    Alcotest.test_case "serialization roundtrip" `Quick test_serialization_roundtrip;
    Alcotest.test_case "varint boundaries" `Quick test_varint_boundaries;
    QCheck_alcotest.to_alcotest prop_serialization_roundtrip;
    QCheck_alcotest.to_alcotest prop_normalize_idempotent;
    QCheck_alcotest.to_alcotest prop_normalize_preserves_pending ]
