(* Focused tests for the LRU map beyond the smoke coverage in
   [Suite_engine]: recency semantics of re-adding an existing key, the
   degenerate capacity-1 cache, clear-then-reuse, the [keys] recency
   ordering, and the eviction counter. *)

module Lru = Engine.Lru

(* Re-adding an existing key must refresh its recency, not insert a
   duplicate: after re-adding "a", the eviction victim is "b". *)
let test_readd_refreshes_recency () =
  let c = Lru.create 2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "a" 10;  (* "a" becomes most recent; "b" is now LRU *)
  Lru.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b");
  Alcotest.(check (option int)) "a kept, updated" (Some 10) (Lru.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Lru.find c "c");
  Alcotest.(check int) "size stays at capacity" 2 (Lru.size c)

let test_capacity_one () =
  let c = Lru.create 1 in
  Lru.add c 1 "one";
  Alcotest.(check (option string)) "holds one entry" (Some "one") (Lru.find c 1);
  Lru.add c 2 "two";
  Alcotest.(check (option string)) "previous evicted" None (Lru.find c 1);
  Alcotest.(check (option string)) "newest kept" (Some "two") (Lru.find c 2);
  Alcotest.(check int) "size is 1" 1 (Lru.size c);
  (* updating the sole key in place must not evict it *)
  Lru.add c 2 "two'";
  Alcotest.(check (option string)) "in-place update" (Some "two'") (Lru.find c 2);
  Alcotest.(check int) "still 1" 1 (Lru.size c)

let test_clear_then_reuse () =
  let c = Lru.create 3 in
  Lru.add c 1 ();
  Lru.add c 2 ();
  Lru.add c 3 ();
  Lru.clear c;
  Alcotest.(check int) "empty after clear" 0 (Lru.size c);
  Alcotest.(check (list int)) "no keys" [] (Lru.keys c);
  Alcotest.(check (option unit)) "old entries gone" None (Lru.find c 2);
  (* the cleared cache must be fully functional, including eviction *)
  Lru.add c 4 ();
  Lru.add c 5 ();
  Lru.add c 6 ();
  Lru.add c 7 ();
  Alcotest.(check int) "refilled to capacity" 3 (Lru.size c);
  Alcotest.(check (option unit)) "oldest of the refill evicted" None
    (Lru.find c 4);
  Alcotest.(check (list int)) "recency order after refill" [ 7; 6; 5 ]
    (Lru.keys c)

let test_keys_recency_order () =
  let c = Lru.create 4 in
  Lru.add c 1 ();
  Lru.add c 2 ();
  Lru.add c 3 ();
  Lru.add c 4 ();
  Alcotest.(check (list int)) "insertion order" [ 4; 3; 2; 1 ] (Lru.keys c);
  ignore (Lru.find c 2);  (* a hit moves the key to the front *)
  Alcotest.(check (list int)) "find refreshes" [ 2; 4; 3; 1 ] (Lru.keys c);
  ignore (Lru.find c 99);  (* a miss changes nothing *)
  Alcotest.(check (list int)) "miss is inert" [ 2; 4; 3; 1 ] (Lru.keys c);
  Lru.add c 3 ();  (* re-add behaves like a hit *)
  Alcotest.(check (list int)) "re-add refreshes" [ 3; 2; 4; 1 ] (Lru.keys c)

let test_eviction_counter () =
  let c = Lru.create 2 in
  Alcotest.(check int) "starts at zero" 0 (Lru.evictions c);
  Lru.add c 1 ();
  Lru.add c 2 ();
  Alcotest.(check int) "filling does not evict" 0 (Lru.evictions c);
  Lru.add c 1 ();  (* update in place: no eviction *)
  Alcotest.(check int) "update does not evict" 0 (Lru.evictions c);
  Lru.add c 3 ();
  Lru.add c 4 ();
  Alcotest.(check int) "two displacements counted" 2 (Lru.evictions c);
  (* clearing starts a fresh accounting epoch: the tally drops to zero and
     only the new epoch's displacements count *)
  Lru.clear c;
  Alcotest.(check int) "clear resets the tally" 0 (Lru.evictions c);
  Lru.add c 5 ();
  Lru.add c 6 ();
  Alcotest.(check int) "refilling after clear does not evict" 0
    (Lru.evictions c);
  Lru.add c 7 ();
  Alcotest.(check int) "fresh epoch counts from zero" 1 (Lru.evictions c);
  Lru.clear c;
  Alcotest.(check int) "every clear resets" 0 (Lru.evictions c)

let suite =
  [ Alcotest.test_case "re-add refreshes recency" `Quick
      test_readd_refreshes_recency;
    Alcotest.test_case "capacity one" `Quick test_capacity_one;
    Alcotest.test_case "clear then reuse" `Quick test_clear_then_reuse;
    Alcotest.test_case "keys recency order" `Quick test_keys_recency_order;
    Alcotest.test_case "eviction counter" `Quick test_eviction_counter ]
