(* Tests for the workload generator and the ground-truth scoring. *)

let small_profile ?(bugs = [ ("io", 2); ("exception", 2) ]) ?(lint_bugs = [])
    ?(seed = 42) () =
  { Workload.Generator.name = "testsubj";
    description = "test subject";
    seed;
    layers = 2;
    classes_per_layer = 2;
    methods_per_class = 2;
    patterns_per_method = 2;
    calls_per_method = 1;
    bugs;
    lint_bugs;
    loops_per_subject = 1 }

let test_generation_deterministic () =
  let s1 = Workload.Generator.generate (small_profile ()) in
  let s2 = Workload.Generator.generate (small_profile ()) in
  Alcotest.(check string) "same program"
    (Jir.Pp.program_to_string s1.Workload.Generator.program)
    (Jir.Pp.program_to_string s2.Workload.Generator.program);
  Alcotest.(check int) "same expectations"
    (List.length s1.Workload.Generator.expected)
    (List.length s2.Workload.Generator.expected)

let test_generation_seed_matters () =
  let s1 = Workload.Generator.generate (small_profile ~seed:1 ()) in
  let s2 = Workload.Generator.generate (small_profile ~seed:2 ()) in
  Alcotest.(check bool) "different programs" true
    (Jir.Pp.program_to_string s1.Workload.Generator.program
     <> Jir.Pp.program_to_string s2.Workload.Generator.program)

let test_bug_quota_planted () =
  let s = Workload.Generator.generate (small_profile ()) in
  let count checker =
    List.length
      (List.filter
         (fun e -> e.Workload.Patterns.exp_checker = checker)
         s.Workload.Generator.expected)
  in
  Alcotest.(check int) "io bugs" 2 (count "io");
  Alcotest.(check int) "exception bugs" 2 (count "exception");
  Alcotest.(check int) "no lock bugs" 0 (count "lock")

let test_generated_program_valid () =
  let s = Workload.Generator.generate (small_profile ()) in
  (* resolves cleanly (Builder.resolved would have raised otherwise) and
     parses back from its pretty-printed form *)
  let text = Jir.Pp.program_to_string s.Workload.Generator.program in
  let p = Jir.Resolve.parse_exn text in
  Alcotest.(check bool) "non-trivial" true (Jir.Ast.program_size p > 50);
  Alcotest.(check bool) "loc counted" true (s.Workload.Generator.loc > 50)

let test_expectation_lines_unique () =
  let s = Workload.Generator.generate (small_profile ()) in
  let lines =
    List.map (fun e -> e.Workload.Patterns.exp_line) s.Workload.Generator.expected
  in
  Alcotest.(check int) "lines unique" (List.length lines)
    (List.length (List.sort_uniq compare lines))

let test_subject_profiles_exist () =
  let zk = Workload.Generator.mini_zookeeper () in
  Alcotest.(check string) "name" "minizk"
    zk.Workload.Generator.profile.Workload.Generator.name;
  Alcotest.(check bool) "expectations planted" true
    (List.length zk.Workload.Generator.expected > 0)

(* ---------------- scoring ---------------- *)

let mk_report ?(checker = "io") ?(line = 5) kind =
  { Grapple.Report.checker;
    kind;
    cls = "FileWriter";
    alloc_at = { Jir.Ast.file = "t.jir"; line };
    site = None;
    context = [];
    witness = [];
    trace = [] }

let mk_exp ?(checker = "io") ?(line = 5) kind =
  { Workload.Patterns.exp_checker = checker; exp_kind = kind; exp_line = line;
    exp_note = "test" }

let test_scoring_tp () =
  let s =
    Workload.Scoring.score ~checker:"io"
      ~expected:[ mk_exp `Leak ]
      ~reports:[ mk_report (Grapple.Report.Leak "Open") ]
      ()
  in
  Alcotest.(check int) "tp" 1 s.Workload.Scoring.tp;
  Alcotest.(check int) "fp" 0 s.Workload.Scoring.fp;
  Alcotest.(check int) "fn" 0 s.Workload.Scoring.fn

let test_scoring_fp_wrong_line () =
  let s =
    Workload.Scoring.score ~checker:"io"
      ~expected:[ mk_exp ~line:5 `Leak ]
      ~reports:[ mk_report ~line:6 (Grapple.Report.Leak "Open") ]
      ()
  in
  Alcotest.(check int) "fp" 1 s.Workload.Scoring.fp;
  Alcotest.(check int) "fn" 1 s.Workload.Scoring.fn

let test_scoring_kind_mismatch () =
  let s =
    Workload.Scoring.score ~checker:"io"
      ~expected:[ mk_exp `Error ]
      ~reports:[ mk_report (Grapple.Report.Leak "Open") ]
      ()
  in
  Alcotest.(check int) "kind must match" 0 s.Workload.Scoring.tp

let test_scoring_filters_checker () =
  let s =
    Workload.Scoring.score ~allow_empty:true ~checker:"io"
      ~expected:[ mk_exp ~checker:"socket" `Leak ]
      ~reports:[ mk_report ~checker:"socket" (Grapple.Report.Leak "Open") ]
      ()
  in
  Alcotest.(check int) "other checker invisible" 0
    (s.Workload.Scoring.tp + s.Workload.Scoring.fp + s.Workload.Scoring.fn)

let test_scoring_each_expectation_once () =
  let s =
    Workload.Scoring.score ~checker:"io"
      ~expected:[ mk_exp `Leak ]
      ~reports:
        [ mk_report (Grapple.Report.Leak "Open");
          mk_report (Grapple.Report.Leak "Open") ]
      ()
  in
  Alcotest.(check int) "one tp" 1 s.Workload.Scoring.tp;
  Alcotest.(check int) "second is fp" 1 s.Workload.Scoring.fp

(* ---------------- lint bug injection ---------------- *)

let lint_profile () =
  small_profile
    ~lint_bugs:
      [ ("use-before-init", 1); ("null-deref", 1); ("dead-branch", 1) ]
    ()

let test_lint_bugs_found () =
  (* every lint expectation (the injected quota plus any labeled decoy the
     filler happened to plant) is flagged, and nothing else is *)
  let s = Workload.Generator.generate (lint_profile ()) in
  let diags = Analysis.Lint.check_program s.Workload.Generator.program in
  let ls =
    Workload.Scoring.score_lints ~expected:s.Workload.Generator.expected
      diags
  in
  Alcotest.(check bool) "quota planted" true (ls.Workload.Scoring.ltp >= 3);
  Alcotest.(check int) "no false positives" 0 ls.Workload.Scoring.lfp;
  Alcotest.(check int) "no misses" 0 ls.Workload.Scoring.lfn

let test_lint_clean_without_lint_bugs () =
  (* with no lint quota, every diagnostic the linter emits must still be
     explained by a labeled pattern: zero false positives on ground truth *)
  let s = Workload.Generator.generate (small_profile ()) in
  let diags = Analysis.Lint.check_program s.Workload.Generator.program in
  let ls =
    Workload.Scoring.score_lints ~allow_empty:true
      ~expected:s.Workload.Generator.expected diags
  in
  Alcotest.(check int) "no false positives" 0 ls.Workload.Scoring.lfp;
  Alcotest.(check int) "no misses" 0 ls.Workload.Scoring.lfn

let test_score_lints_each_expectation_once () =
  let e =
    { Workload.Patterns.exp_checker = "lint";
      exp_kind = `Lint "null-deref";
      exp_line = 5;
      exp_note = "test" }
  in
  let d line =
    { Analysis.Lint.lint = "null-deref"; meth = "C.m";
      at = { Jir.Ast.file = "t.jir"; line };
      message = "m" }
  in
  let ls =
    Workload.Scoring.score_lints ~expected:[ e ] [ d 5; d 5; d 9 ]
  in
  Alcotest.(check int) "one tp" 1 ls.Workload.Scoring.ltp;
  Alcotest.(check int) "rest are fp" 2 ls.Workload.Scoring.lfp

let test_generation_byte_identical () =
  (* same seed => byte-identical JIR text, including with lint bugs *)
  let gen () =
    Jir.Pp.program_to_string
      (Workload.Generator.generate (lint_profile ())).Workload.Generator
        .program
  in
  Alcotest.(check string) "byte identical" (gen ()) (gen ())

let test_every_tier_byte_identical () =
  (* same seed => byte-identical program at EVERY tier: the four paper
     mini profiles, the four DSL profiles, and the megaload tier *)
  let text (s : Workload.Generator.subject) =
    Jir.Pp.program_to_string s.Workload.Generator.program
  in
  let pair name gen = (name, text (gen ()), text (gen ())) in
  let tiers =
    [ pair "minizk" Workload.Generator.mini_zookeeper;
      pair "minihadoop" Workload.Generator.mini_hadoop;
      pair "minihdfs" Workload.Generator.mini_hdfs;
      pair "minihbase" Workload.Generator.mini_hbase;
      pair "minilocks" Workload.Generator.mini_locks;
      pair "minitaint" Workload.Generator.mini_taint;
      pair "miniclose" Workload.Generator.mini_close;
      pair "minitwr" Workload.Generator.mini_twr;
      pair "mega100k" (fun () -> Workload.Generator.mega_100k ~units:3 ());
      pair "mega1m" (fun () -> Workload.Generator.mega_1m ~units:3 ()) ]
  in
  List.iter
    (fun (name, a, b) -> Alcotest.(check string) name a b)
    tiers

let test_mega_seed_distinct_bugs () =
  (* different generator seeds => the megaload bug plan lands on
     different (checker, line) sites *)
  let bugs seed =
    let p =
      { (Workload.Generator.mega_profile ~units:6 ()) with
        Workload.Generator.m_seed = seed }
    in
    let s = Workload.Generator.generate_mega p in
    List.map
      (fun e ->
        (e.Workload.Patterns.exp_checker, e.Workload.Patterns.exp_line))
      s.Workload.Generator.expected
  in
  let a = bugs 900 and b = bugs 901 in
  Alcotest.(check bool) "bugs planted" true (a <> []);
  Alcotest.(check bool) "distinct bug plans" true (a <> b)

let test_mega_subject_shape () =
  let s = Workload.Generator.mega_100k ~units:6 () in
  (* one entry island per unit, LoC accounted, parses back *)
  Alcotest.(check int) "one entry per unit" 6
    (List.length s.Workload.Generator.program.Jir.Ast.entries);
  Alcotest.(check bool) "loc counted" true
    (s.Workload.Generator.loc > 1000);
  let text = Jir.Pp.program_to_string s.Workload.Generator.program in
  let p = Jir.Resolve.parse_exn text in
  Alcotest.(check int) "round trips" (List.length s.Workload.Generator.program.Jir.Ast.classes)
    (List.length p.Jir.Ast.classes)

let test_scoring_empty_ground_truth_raises () =
  (* scoring against an empty filtered ground truth is a harness bug
     (vacuous 100% TP) and must raise unless explicitly allowed *)
  let r = mk_report (Grapple.Report.Leak "opened") in
  Alcotest.check_raises "score raises"
    (Invalid_argument
       "Scoring.score: no ground-truth expectations for checker \"io\" \
        (pass ~allow_empty:true to score a zero-bug subject)")
    (fun () ->
      ignore
        (Workload.Scoring.score ~checker:"io" ~expected:[] ~reports:[ r ] ()));
  Alcotest.check_raises "score_lints raises"
    (Invalid_argument
       "Scoring.score_lints: no ground-truth expectations for \"lint\" \
        (pass ~allow_empty:true to score a zero-bug subject)")
    (fun () ->
      ignore (Workload.Scoring.score_lints ~expected:[] []));
  (* the explicit opt-in still scores a clean run *)
  let s =
    Workload.Scoring.score ~allow_empty:true ~checker:"io" ~expected:[]
      ~reports:[ r ] ()
  in
  Alcotest.(check int) "opt-in counts fps" 1 s.Workload.Scoring.fp

(* ---------------- rng ---------------- *)

let test_rng_deterministic () =
  let a = Workload.Rng.create 7 and b = Workload.Rng.create 7 in
  let seq r = List.init 20 (fun _ -> Workload.Rng.int r 1000) in
  Alcotest.(check (list int)) "same stream" (seq a) (seq b)

let prop_rng_bounds =
  QCheck.Test.make ~name:"rng respects bounds" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Workload.Rng.create seed in
      let v = Workload.Rng.int r bound in
      v >= 0 && v < bound)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:100
    QCheck.(pair small_int (small_list int))
    (fun (seed, l) ->
      let r = Workload.Rng.create seed in
      List.sort compare (Workload.Rng.shuffle r l) = List.sort compare l)

let suite =
  [ Alcotest.test_case "generation deterministic" `Quick test_generation_deterministic;
    Alcotest.test_case "seed matters" `Quick test_generation_seed_matters;
    Alcotest.test_case "bug quota planted" `Quick test_bug_quota_planted;
    Alcotest.test_case "generated program valid" `Quick test_generated_program_valid;
    Alcotest.test_case "expectation lines unique" `Quick test_expectation_lines_unique;
    Alcotest.test_case "subject profiles" `Quick test_subject_profiles_exist;
    Alcotest.test_case "scoring tp" `Quick test_scoring_tp;
    Alcotest.test_case "scoring wrong line" `Quick test_scoring_fp_wrong_line;
    Alcotest.test_case "scoring kind mismatch" `Quick test_scoring_kind_mismatch;
    Alcotest.test_case "scoring filters checker" `Quick test_scoring_filters_checker;
    Alcotest.test_case "each expectation once" `Quick test_scoring_each_expectation_once;
    Alcotest.test_case "lint bugs found" `Quick test_lint_bugs_found;
    Alcotest.test_case "lint clean without lint bugs" `Quick
      test_lint_clean_without_lint_bugs;
    Alcotest.test_case "lint expectation matched once" `Quick
      test_score_lints_each_expectation_once;
    Alcotest.test_case "every tier byte identical" `Quick
      test_every_tier_byte_identical;
    Alcotest.test_case "mega seed distinct bugs" `Quick
      test_mega_seed_distinct_bugs;
    Alcotest.test_case "mega subject shape" `Quick test_mega_subject_shape;
    Alcotest.test_case "scoring empty ground truth raises" `Quick
      test_scoring_empty_ground_truth_raises;
    Alcotest.test_case "generation byte identical" `Quick
      test_generation_byte_identical;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    QCheck_alcotest.to_alcotest prop_rng_bounds;
    QCheck_alcotest.to_alcotest prop_shuffle_permutation ]
