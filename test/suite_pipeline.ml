(* End-to-end tests of the Grapple pipeline and the four checkers: the
   paper's worked examples, path sensitivity, context sensitivity, and the
   statistics plumbing the benchmarks rely on. *)

let fresh_workdir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "grapple-test-pipe-%d-%d" (Unix.getpid ()) !counter)

let check_src ?(checkers = Checkers.all ()) ?(track_null = false)
    ?(prefilter = false) src =
  let program = Jir.Resolve.parse_exn src in
  let workdir = fresh_workdir () in
  let prefilter_properties =
    if prefilter then
      List.filter_map
        (fun (c : Checkers.t) ->
          match c.Checkers.kind with
          | `Typestate fsm -> Some fsm
          | `Exception_walk _ -> None)
        checkers
    else []
  in
  let config =
    { (Grapple.Pipeline.default_config ~workdir) with
      Grapple.Pipeline.library_throwers = Checkers.Specs.library_throwers;
      track_null;
      prefilter_properties }
  in
  let prepared = Grapple.Pipeline.prepare ~config ~workdir program in
  let results, props = Checkers.run_all prepared checkers in
  (prepared, results, props)

let reports_of name results =
  match List.assoc_opt name results with Some r -> r | None -> []

let kinds rs =
  List.map
    (fun (r : Grapple.Report.t) ->
      match r.Grapple.Report.kind with
      | Grapple.Report.Leak _ -> "leak"
      | Grapple.Report.Error_state _ -> "error"
      | Grapple.Report.Unhandled_exception _ -> "exn"
      | Grapple.Report.Inconclusive _ -> "inconclusive")
    rs
  |> List.sort compare

let test_figure3b_leak () =
  let _, results, _ =
    check_src ~checkers:[ Checkers.io () ] {|
class Main {
  void main(int a) {
    FileWriter out = null;
    FileWriter o = null;
    int x = a;
    int y = x;
    if (x >= 0) {
      out = new FileWriter();
      o = out;
      y = y - 1;
    } else {
      y = y + 1;
    }
    if (y > 0) {
      out.write(x);
      o.close();
    }
    return;
  }
}
entry Main.main;
|}
  in
  (match reports_of "io" results with
  | [ r ] ->
      Alcotest.(check (list string)) "exactly the paper's leak" [ "leak" ]
        (kinds [ r ]);
      (* the witness is the x = 0 case the paper walks through *)
      Alcotest.(check (list (pair string int))) "witness"
        [ ("Main.main::a", 0) ] r.Grapple.Report.witness
  | rs ->
      Alcotest.fail
        (Printf.sprintf "expected one warning, got %d" (List.length rs)))

let test_path_sensitivity_prunes () =
  (* close guarded by the same condition as the allocation: safe *)
  let _, results, _ =
    check_src ~checkers:[ Checkers.io () ] {|
class Main {
  void main(int x) {
    FileWriter out = null;
    if (x >= 0) {
      out = new FileWriter();
    }
    if (x < 0) {
      out.close();
      out.write(1);
    } else {
      out.close();
    }
    return;
  }
}
entry Main.main;
|}
  in
  Alcotest.(check (list string)) "no warning" [] (kinds (reports_of "io" results))

let test_use_after_close () =
  let _, results, _ =
    check_src ~checkers:[ Checkers.io () ] {|
class Main {
  void main(int x) {
    FileWriter w = new FileWriter();
    w.close();
    w.write(1);
    return;
  }
}
entry Main.main;
|}
  in
  Alcotest.(check (list string)) "error state" [ "error" ]
    (kinds (reports_of "io" results))

let test_context_sensitivity () =
  let _, results, _ =
    check_src ~checkers:[ Checkers.io () ] {|
class H {
  FileWriter make(int n) {
    FileWriter w = new FileWriter();
    return w;
  }
  void closeIt(FileWriter f) {
    f.close();
    return;
  }
}
class Main {
  void main(int x) {
    H h = new H();
    FileWriter a = h.make(x);
    FileWriter b = h.make(x);
    h.closeIt(a);
    return;
  }
}
entry Main.main;
|}
  in
  (* only the clone feeding b leaks; a's clone is closed through closeIt *)
  Alcotest.(check (list string)) "one leak" [ "leak" ]
    (kinds (reports_of "io" results))

let test_heap_alias_close () =
  let _, results, _ =
    check_src ~checkers:[ Checkers.io () ] {|
class Main {
  void main(int x) {
    Holder h = new Holder();
    FileWriter w = new FileWriter();
    h.res = w;
    FileWriter u = h.res;
    u.close();
    return;
  }
}
entry Main.main;
|}
  in
  Alcotest.(check (list string)) "closed through the alias" []
    (kinds (reports_of "io" results))

let test_socket_exception_leak () =
  let _, results, _ =
    check_src ~checkers:[ Checkers.socket () ] {|
class Main {
  void main(int addr) {
    Socket s = new Socket();
    try {
      s.connect(addr);
      s.close();
    } catch (IOException e) {
      int logged = 1;
    }
    return;
  }
}
entry Main.main;
|}
  in
  Alcotest.(check (list string)) "exception-path leak" [ "leak" ]
    (kinds (reports_of "socket" results))

let test_socket_exception_closed_in_handler () =
  let _, results, _ =
    check_src ~checkers:[ Checkers.socket () ] {|
class Main {
  void main(int addr) {
    Socket s = new Socket();
    try {
      s.connect(addr);
      s.close();
    } catch (IOException e) {
      s.close();
    }
    return;
  }
}
entry Main.main;
|}
  in
  Alcotest.(check (list string)) "handler closes" []
    (kinds (reports_of "socket" results))

let test_lock_misuse () =
  let _, results, _ =
    check_src ~checkers:[ Checkers.lock () ] {|
class Main {
  void main(int x) {
    ReentrantLock l = new ReentrantLock();
    l.unlock();
    l.lock();
    return;
  }
}
entry Main.main;
|}
  in
  Alcotest.(check (list string)) "misordered" [ "error" ]
    (kinds (reports_of "lock" results))

let test_exception_escapes () =
  let _, results, _ =
    check_src ~checkers:[ Checkers.exception_ () ] {|
class Deep {
  void risky(int n) throws Boom {
    if (n > 0) {
      throw new Boom();
    }
    return;
  }
}
class Mid {
  void call(int n) throws Boom {
    Deep.risky(n);
    return;
  }
}
class Main {
  void main(int n) {
    Mid.call(n);
    return;
  }
}
entry Main.main;
|}
  in
  Alcotest.(check (list string)) "escapes" [ "exn" ]
    (kinds (reports_of "exception" results))

let test_exception_handled_somewhere () =
  let _, results, _ =
    check_src ~checkers:[ Checkers.exception_ () ] {|
class Deep {
  void risky(int n) throws Boom {
    if (n > 0) {
      throw new Boom();
    }
    return;
  }
}
class Main {
  void main(int n) {
    try {
      Deep.risky(n);
    } catch (Boom b) {
      int handled = 1;
    }
    return;
  }
}
entry Main.main;
|}
  in
  Alcotest.(check (list string)) "handled" []
    (kinds (reports_of "exception" results))

let test_exception_infeasible_throw () =
  let _, results, _ =
    check_src ~checkers:[ Checkers.exception_ () ] {|
class Main {
  void main(int n) {
    int x = n * 2;
    if (x > n + n) {
      throw new Boom();
    }
    return;
  }
}
entry Main.main;
|}
  in
  Alcotest.(check (list string)) "infeasible throw pruned" []
    (kinds (reports_of "exception" results))

let test_reconfigure_both_channels_leak () =
  (* the Figure 1 dance as a pipeline-level scenario: both the old and the
     new channel leak on the exception path, and nothing else is reported *)
  let _, results, _ =
    check_src ~checkers:[ Checkers.socket () ] {|
class Main {
  void reconfigure(int addr) {
    ServerSocketChannel oldSS = new ServerSocketChannel();
    oldSS.bind(addr);
    try {
      ServerSocketChannel ss = new ServerSocketChannel();
      ss.bind(addr);
      ss.configureBlocking(0);
      oldSS.close();
      ss.close();
    } catch (IOException e) {
      int logged = 1;
    }
    return;
  }
}
entry Main.reconfigure;
|}
  in
  Alcotest.(check (list string)) "two leaks" [ "leak"; "leak" ]
    (kinds (reports_of "socket" results))

let test_report_trace_present () =
  let _, results, _ =
    check_src ~checkers:[ Checkers.io () ] {|
class Main {
  void main(int a) {
    FileWriter w = new FileWriter();
    return;
  }
}
entry Main.main;
|}
  in
  match reports_of "io" results with
  | [ r ] ->
      Alcotest.(check bool) "trace recovered" true
        (r.Grapple.Report.trace <> [])
  | _ -> Alcotest.fail "expected one warning"

let test_null_deref () =
  let _, results, _ =
    check_src ~checkers:[ Checkers.null () ] ~track_null:true {|
class Main {
  void main(int p) {
    FileWriter w = null;
    if (p > 0) {
      w = new FileWriter();
    }
    w.write(p);
    return;
  }
  void safe(int p) {
    FileWriter w = null;
    if (p > 0) {
      w = new FileWriter();
    }
    if (p > 0) {
      w.write(p);
    }
    return;
  }
}
entry Main.main;
entry Main.safe;
|}
  in
  (* main dereferences the null when p <= 0; safe's guard makes the null
     path infeasible *)
  Alcotest.(check (list string)) "one null deref" [ "error" ]
    (kinds (reports_of "null" results))

let test_stats_populated () =
  let prepared, _, props =
    check_src {|
class Main {
  void main(int a) {
    FileWriter w = new FileWriter();
    w.close();
    return;
  }
}
entry Main.main;
|}
  in
  let s = Grapple.Pipeline.stats prepared props in
  Alcotest.(check bool) "vertices counted" true (s.Grapple.Pipeline.n_vertices > 0);
  Alcotest.(check bool) "edges grow" true
    (s.Grapple.Pipeline.n_edges_after >= s.Grapple.Pipeline.n_edges_before);
  Alcotest.(check bool) "partitions" true (s.Grapple.Pipeline.n_partitions > 0);
  Alcotest.(check bool) "iterations" true (s.Grapple.Pipeline.n_iterations > 0);
  Alcotest.(check bool) "breakdown has 4 components" true
    (List.length s.Grapple.Pipeline.breakdown = 4)

(* ---------------- escape-based instance pre-filter ---------------- *)

let use_after_close_src = {|
class Main {
  void main(int x) {
    FileWriter w = new FileWriter();
    w.close();
    w.write(1);
    return;
  }
}
entry Main.main;
|}

let test_prefilter_same_reports () =
  (* the pre-filter must not change what is reported, only where the work
     happens: the non-escaping alloc is resolved intraprocedurally *)
  let run prefilter =
    let prepared, results, props =
      check_src ~checkers:[ Checkers.io () ] ~prefilter use_after_close_src
    in
    (Grapple.Pipeline.stats prepared props, kinds (reports_of "io" results))
  in
  let s_off, k_off = run false in
  let s_on, k_on = run true in
  Alcotest.(check (list string)) "same warnings either way" k_off k_on;
  Alcotest.(check (list string)) "still the use-after-close" [ "error" ] k_on;
  Alcotest.(check int) "nothing filtered with the filter off" 0
    s_off.Grapple.Pipeline.n_prefiltered;
  Alcotest.(check int) "one allocation filtered" 1
    s_on.Grapple.Pipeline.n_prefiltered;
  Alcotest.(check bool) "alias graph shrinks" true
    (s_on.Grapple.Pipeline.n_vertices < s_off.Grapple.Pipeline.n_vertices)

let test_prefilter_leak_detected () =
  let prepared, results, props =
    check_src ~checkers:[ Checkers.io () ] ~prefilter:true {|
class Main {
  void main(int a) {
    FileWriter w = new FileWriter();
    w.write(a);
    return;
  }
}
entry Main.main;
|}
  in
  let s = Grapple.Pipeline.stats prepared props in
  Alcotest.(check int) "resolved off-engine" 1 s.Grapple.Pipeline.n_prefiltered;
  Alcotest.(check (list string)) "leak still reported" [ "leak" ]
    (kinds (reports_of "io" results))

let test_prefilter_path_sensitive () =
  (* the filtered paths carry the same SMT constraints as the engine: the
     infeasible error path must stay pruned *)
  let prepared, results, props =
    check_src ~checkers:[ Checkers.io () ] ~prefilter:true {|
class Main {
  void main(int p) {
    FileWriter w = new FileWriter();
    int z = p - p;
    w.close();
    if (z > 0) {
      w.write(1);
    }
    return;
  }
}
entry Main.main;
|}
  in
  let s = Grapple.Pipeline.stats prepared props in
  Alcotest.(check int) "resolved off-engine" 1 s.Grapple.Pipeline.n_prefiltered;
  Alcotest.(check (list string)) "infeasible write-after-close pruned" []
    (kinds (reports_of "io" results))

let test_prefilter_inert_on_escaping_allocs () =
  (* figure 3b's writer escapes into an alias; the filter must leave it to
     the engine and reproduce the paper's exact report *)
  let run prefilter =
    let prepared, results, props =
      check_src ~checkers:[ Checkers.io () ] ~prefilter {|
class Main {
  void main(int a) {
    FileWriter out = null;
    FileWriter o = null;
    int x = a;
    int y = x;
    if (x >= 0) {
      out = new FileWriter();
      o = out;
      y = y - 1;
    } else {
      y = y + 1;
    }
    if (y > 0) {
      out.write(x);
      o.close();
    }
    return;
  }
}
entry Main.main;
|}
    in
    (Grapple.Pipeline.stats prepared props, kinds (reports_of "io" results))
  in
  let s_off, k_off = run false in
  let s_on, k_on = run true in
  Alcotest.(check int) "nothing qualifies" 0 s_on.Grapple.Pipeline.n_prefiltered;
  Alcotest.(check (list string)) "reports unchanged" k_off k_on;
  Alcotest.(check int) "graph identical" s_off.Grapple.Pipeline.n_vertices
    s_on.Grapple.Pipeline.n_vertices

let test_report_dedup () =
  let r kind site =
    { Grapple.Report.checker = "io"; kind; cls = "FileWriter";
      alloc_at = { Jir.Ast.file = "f"; line = 3 }; site;
      context = []; witness = []; trace = [] }
  in
  let reports =
    [ r (Grapple.Report.Leak "Open") None;
      r (Grapple.Report.Leak "Open") None;
      r (Grapple.Report.Error_state "Error") None;
      r (Grapple.Report.Error_state "Error")
        (Some { Jir.Ast.file = "f"; line = 9 }) ]
  in
  let deduped = Grapple.Report.dedup reports in
  Alcotest.(check int) "two distinct warnings" 2 (List.length deduped);
  (* the error variant with a site is preferred *)
  Alcotest.(check bool) "sited report kept" true
    (List.exists
       (fun (r : Grapple.Report.t) ->
         match (r.Grapple.Report.kind, r.Grapple.Report.site) with
         | Grapple.Report.Error_state _, Some _ -> true
         | _ -> false)
       deduped)

let suite =
  [ Alcotest.test_case "figure 3b leak" `Quick test_figure3b_leak;
    Alcotest.test_case "path sensitivity prunes" `Quick test_path_sensitivity_prunes;
    Alcotest.test_case "use after close" `Quick test_use_after_close;
    Alcotest.test_case "context sensitivity" `Quick test_context_sensitivity;
    Alcotest.test_case "heap alias close" `Quick test_heap_alias_close;
    Alcotest.test_case "socket exception leak" `Quick test_socket_exception_leak;
    Alcotest.test_case "socket handler closes" `Quick
      test_socket_exception_closed_in_handler;
    Alcotest.test_case "lock misuse" `Quick test_lock_misuse;
    Alcotest.test_case "exception escapes" `Quick test_exception_escapes;
    Alcotest.test_case "exception handled" `Quick test_exception_handled_somewhere;
    Alcotest.test_case "infeasible throw pruned" `Quick
      test_exception_infeasible_throw;
    Alcotest.test_case "reconfigure leaks both channels" `Quick
      test_reconfigure_both_channels_leak;
    Alcotest.test_case "report trace present" `Quick test_report_trace_present;
    Alcotest.test_case "null dereference" `Quick test_null_deref;
    Alcotest.test_case "stats populated" `Quick test_stats_populated;
    Alcotest.test_case "prefilter same reports" `Quick test_prefilter_same_reports;
    Alcotest.test_case "prefilter leak detected" `Quick
      test_prefilter_leak_detected;
    Alcotest.test_case "prefilter path sensitive" `Quick
      test_prefilter_path_sensitive;
    Alcotest.test_case "prefilter inert on escaping allocs" `Quick
      test_prefilter_inert_on_escaping_allocs;
    Alcotest.test_case "report dedup" `Quick test_report_dedup ]
