(* Tests for the lib/analysis dataflow layer: CFG construction, the generic
   solver's client analyses, the lint diagnostics, and the escape-based
   instance pre-filter. *)

let parse src = Jir.Resolve.parse_exn src

let meth_named program id =
  match
    List.find_opt
      (fun m -> Jir.Ast.meth_id m = id)
      (Jir.Ast.all_methods program)
  with
  | Some m -> m
  | None -> Alcotest.fail ("no such method: " ^ id)

let cfg_of src id = Analysis.Cfg.build (meth_named (parse src) id)

(* First node whose kind satisfies [pred]. *)
let find_node (g : Analysis.Cfg.t) pred =
  let n = Analysis.Cfg.n_nodes g in
  let rec go i =
    if i >= n then Alcotest.fail "node not found"
    else if pred g.Analysis.Cfg.kinds.(i) then i
    else go (i + 1)
  in
  go 0

let is_return = function
  | Analysis.Cfg.Stmt { Jir.Ast.kind = Jir.Ast.Return _; _ } -> true
  | _ -> false

let lint_names diags = List.map (fun d -> d.Analysis.Lint.lint) diags

(* ---------------- CFG shape ---------------- *)

let branchy = {|
class Main {
  void main(int p) {
    int x = 0;
    if (p > 0) {
      x = 1;
    } else {
      x = 2;
    }
    int y = x + 1;
    return;
  }
}
entry Main.main;
|}

let test_cfg_shape () =
  let g = cfg_of branchy "Main.main" in
  let branch =
    find_node g (function Analysis.Cfg.Branch _ -> true | _ -> false)
  in
  let kinds = List.map snd g.Analysis.Cfg.succs.(branch) in
  Alcotest.(check bool) "branch has true edge" true
    (List.mem Analysis.Cfg.True kinds);
  Alcotest.(check bool) "branch has false edge" true
    (List.mem Analysis.Cfg.False kinds);
  let reach = Analysis.Cfg.reachable g in
  Alcotest.(check bool) "exit reachable" true reach.(g.Analysis.Cfg.exit_);
  Alcotest.(check bool) "declared vars include param and locals" true
    (List.for_all
       (fun v -> List.mem v (Analysis.Cfg.declared_vars g))
       [ "p"; "x"; "y" ])

let test_cfg_exc_edges () =
  let g =
    cfg_of {|
class H { void helper(int n) { return; } }
class Main {
  void main(int p) {
    try {
      H.helper(p);
    } catch (Boom b) {
      int logged = 1;
    }
    return;
  }
}
entry Main.main;
|} "Main.main"
  in
  let call =
    find_node g (fun k -> Analysis.Cfg.node_call k <> None)
  in
  let exc_succs =
    List.filter (fun (_, k) -> k = Analysis.Cfg.Exc) g.Analysis.Cfg.succs.(call)
  in
  Alcotest.(check int) "call has one exceptional successor" 1
    (List.length exc_succs);
  let bind, _ = List.hd exc_succs in
  (match g.Analysis.Cfg.kinds.(bind) with
  | Analysis.Cfg.Bind (_, cls, v) ->
      Alcotest.(check string) "handler class" "Boom" cls;
      Alcotest.(check string) "bound var" "b" v
  | _ -> Alcotest.fail "Exc edge should target the catch binder")

(* ---------------- reaching definitions / liveness ---------------- *)

let test_reaching_defs () =
  let g = cfg_of branchy "Main.main" in
  let r = Analysis.Reaching_defs.analyze g in
  let use =
    find_node g (function
      | Analysis.Cfg.Stmt { Jir.Ast.kind = Jir.Ast.Decl (_, "y", _); _ } -> true
      | _ -> false)
  in
  (* both branch assignments reach the use of x after the join; the initial
     x = 0 is killed on both sides *)
  Alcotest.(check int) "two defs of x reach the join" 2
    (List.length (Analysis.Reaching_defs.reaching r ~node:use "x"))

let test_liveness () =
  let g = cfg_of branchy "Main.main" in
  let r = Analysis.Liveness.analyze g in
  let use =
    find_node g (function
      | Analysis.Cfg.Stmt { Jir.Ast.kind = Jir.Ast.Decl (_, "y", _); _ } -> true
      | _ -> false)
  in
  Alcotest.(check bool) "x live into its use" true
    (Analysis.Liveness.live_in r ~node:use "x");
  let ret = find_node g is_return in
  Alcotest.(check bool) "x dead after the last use" false
    (Analysis.Liveness.live_in r ~node:ret "x")

(* ---------------- lints ---------------- *)

let test_use_before_init () =
  let diags =
    Analysis.Lint.check_program (parse {|
class Main {
  void main(int p) {
    int x;
    int y = x + 1;
    return;
  }
}
entry Main.main;
|})
  in
  Alcotest.(check (list string)) "flagged" [ "use-before-init" ]
    (lint_names diags)

let test_use_before_init_negative () =
  let diags =
    Analysis.Lint.check_program (parse {|
class Main {
  void main(int p) {
    int x;
    if (p > 0) {
      x = 1;
    } else {
      x = 2;
    }
    int y = x + 1;
    return;
  }
}
entry Main.main;
|})
  in
  Alcotest.(check (list string)) "assigned on both branches" []
    (lint_names diags)

let test_null_deref () =
  let diags =
    Analysis.Lint.check_program (parse {|
class Main {
  void main(int p) {
    FileWriter w = null;
    w.write(p);
    return;
  }
}
entry Main.main;
|})
  in
  Alcotest.(check (list string)) "definite null deref" [ "null-deref" ]
    (lint_names diags)

let test_null_deref_guarded_join_negative () =
  (* after the join w is only *maybe* null; the lint stays quiet (the
     path-sensitive null checker owns that case) *)
  let diags =
    Analysis.Lint.check_program (parse {|
class Main {
  void main(int p) {
    FileWriter w = null;
    if (p > 0) {
      w = new FileWriter();
    }
    w.write(p);
    return;
  }
}
entry Main.main;
|})
  in
  Alcotest.(check (list string)) "maybe-null is not flagged" []
    (lint_names diags)

let test_dead_branch () =
  let diags =
    Analysis.Lint.check_program (parse {|
class Main {
  void main(int p) {
    int z = p - p;
    if (z > 0) {
      z = z + 1;
    }
    return;
  }
}
entry Main.main;
|})
  in
  Alcotest.(check (list string)) "z - z is never positive" [ "dead-branch" ]
    (lint_names diags)

let test_dead_branch_undecidable_negative () =
  let diags =
    Analysis.Lint.check_program (parse {|
class Main {
  void main(int p) {
    int z = p;
    if (z > 0) {
      z = z + 1;
    }
    return;
  }
}
entry Main.main;
|})
  in
  Alcotest.(check (list string)) "data-dependent branch kept" []
    (lint_names diags)

let test_unreachable_after_return () =
  let diags =
    Analysis.Lint.check_program (parse {|
class Main {
  void main(int p) {
    return;
    int x = 1;
  }
}
entry Main.main;
|})
  in
  Alcotest.(check (list string)) "code after return" [ "unreachable" ]
    (lint_names diags)

let test_clean_program_no_diags () =
  (* the paper's Figure 3b program is lint-clean: all its defects need the
     path-sensitive engine *)
  let diags =
    Analysis.Lint.check_program (parse {|
class Main {
  void main(int a) {
    FileWriter out = null;
    FileWriter o = null;
    int x = a;
    int y = x;
    if (x >= 0) {
      out = new FileWriter();
      o = out;
      y = y - 1;
    } else {
      y = y + 1;
    }
    if (y > 0) {
      out.write(x);
      o.close();
    }
    return;
  }
}
entry Main.main;
|})
  in
  Alcotest.(check (list string)) "no diagnostics" [] (lint_names diags)

let test_clean_examples_no_diags () =
  (* the other two shipped examples — they exercise while loops, try/catch
     and throws, none of which may produce a lint diagnostic *)
  let zookeeper = {|
class NIOServerCnxnFactory {
  void configure(int addr) {
    ServerSocketChannel ss = new ServerSocketChannel();
    ss.bind(addr);
    ss.configureBlocking(0);
    ss.close();
    return;
  }

  void reconfigure(int addr) {
    ServerSocketChannel oldSS = new ServerSocketChannel();
    oldSS.bind(addr);
    try {
      ServerSocketChannel ss = new ServerSocketChannel();
      ss.bind(addr);
      ss.configureBlocking(0);
      oldSS.close();
      ss.close();
    } catch (IOException e) {
      int logged = 1;
    }
    return;
  }
}

class Main {
  void main(int addr) {
    NIOServerCnxnFactory factory = new NIOServerCnxnFactory();
    factory.configure(addr);
    factory.reconfigure(addr);
    return;
  }
}
entry Main.main;
|}
  in
  let hdfs = {|
class DataTransferThrottler {
  void throttle(int numOfBytes) throws InterruptedException {
    int period = 500;
    int curPeriodStart = 0;
    int now = numOfBytes;
    int it = 0;
    while (it < 2) {
      int curPeriodEnd = curPeriodStart + period;
      if (now < curPeriodEnd) {
        throw new InterruptedException();
      }
      it = it + 1;
    }
    return;
  }

  void safeThrottle(int numOfBytes) throws InterruptedException {
    if (numOfBytes > 4096) {
      throw new InterruptedException();
    }
    return;
  }
}

class BlockSender {
  void sendPacket(int len) throws InterruptedException {
    DataTransferThrottler throttler = new DataTransferThrottler();
    throttler.throttle(len);
    return;
  }

  void sendBlock(int len) throws InterruptedException {
    int packet = len;
    while (packet > 0) {
      BlockSender.sendPacket(packet);
      packet = packet - 4096;
    }
    return;
  }
}

class DataBlockScanner {
  void run(int blockLen) {
    BlockSender.sendBlock(blockLen);
    DataTransferThrottler t = new DataTransferThrottler();
    try {
      t.safeThrottle(blockLen);
    } catch (InterruptedException e) {
      int handled = 1;
    }
    return;
  }
}

class Main {
  void main(int blockLen) {
    DataBlockScanner.run(blockLen);
    return;
  }
}
entry Main.main;
|}
  in
  List.iter
    (fun (name, src) ->
      Alcotest.(check (list string))
        (name ^ " is lint-clean") []
        (lint_names (Analysis.Lint.check_program (parse src))))
    [ ("zookeeper_reconfigure", zookeeper); ("hdfs_shutdown", hdfs) ]

let test_lint_json () =
  let diags =
    Analysis.Lint.check_program (parse {|
class Main {
  void main(int p) {
    FileWriter w = null;
    w.write(p);
    return;
  }
}
entry Main.main;
|})
  in
  match diags with
  | [ d ] ->
      let j = Analysis.Lint.to_json d in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "json contains %s" needle)
            true
            (let rec search i =
               i + String.length needle <= String.length j
               && (String.sub j i (String.length needle) = needle
                  || search (i + 1))
             in
             search 0))
        [ {|"tool":"lint"|}; {|"lint":"null-deref"|}; {|"method":"Main.main"|} ]
  | ds ->
      Alcotest.fail (Printf.sprintf "expected one diag, got %d" (List.length ds))

(* ---------------- escape pre-filter ---------------- *)

let tracked_fw cls = cls = "FileWriter"

let test_escape_qualifies () =
  let program = parse {|
class Main {
  void main(int p) {
    FileWriter w = new FileWriter();
    if (p > 0) {
      w.close();
    }
    return;
  }
}
entry Main.main;
|}
  in
  match Analysis.Escape.analyze ~tracked:tracked_fw program with
  | [ r ] ->
      Alcotest.(check string) "class" "FileWriter" r.Analysis.Escape.cls;
      Alcotest.(check string) "variable" "w" r.Analysis.Escape.var;
      Alcotest.(check int) "both sides of the branch enumerated" 2
        (List.length r.Analysis.Escape.paths);
      let events =
        List.map
          (fun (p : Analysis.Escape.path) ->
            List.map fst p.Analysis.Escape.events)
          r.Analysis.Escape.paths
        |> List.sort compare
      in
      Alcotest.(check (list (list string))) "event sequences"
        [ []; [ "close" ] ] events
  | rs ->
      Alcotest.fail
        (Printf.sprintf "expected one resolved alloc, got %d" (List.length rs))

let test_escape_disqualified_by_aliasing () =
  let program = parse {|
class Main {
  void main(int p) {
    FileWriter w = new FileWriter();
    FileWriter u = w;
    u.close();
    return;
  }
}
entry Main.main;
|}
  in
  Alcotest.(check int) "aliased alloc stays on the engine path" 0
    (List.length
       (Analysis.Escape.analyze ~tracked:tracked_fw program))

let test_escape_disqualified_by_call_arg () =
  let program = parse {|
class H { void take(FileWriter f) { f.close(); return; } }
class Main {
  void main(int p) {
    FileWriter w = new FileWriter();
    H.take(w);
    return;
  }
}
entry Main.main;
|}
  in
  Alcotest.(check int) "escaping arg stays on the engine path" 0
    (List.length
       (Analysis.Escape.analyze ~tracked:tracked_fw program))

let test_escape_disqualified_by_store () =
  let program = parse {|
class Main {
  void main(int p) {
    Holder h = new Holder();
    FileWriter w = new FileWriter();
    h.res = w;
    w.close();
    return;
  }
}
entry Main.main;
|}
  in
  Alcotest.(check int) "field store escapes" 0
    (List.length
       (Analysis.Escape.analyze ~tracked:tracked_fw program))

let test_escape_disqualified_by_loop () =
  let program = parse {|
class Main {
  void main(int p) {
    FileWriter w = new FileWriter();
    int i = 0;
    while (i < 2) {
      i = i + 1;
    }
    w.close();
    return;
  }
}
entry Main.main;
|}
  in
  Alcotest.(check int) "looping method not enumerated" 0
    (List.length
       (Analysis.Escape.analyze ~tracked:tracked_fw program))

let suite =
  [ Alcotest.test_case "cfg shape" `Quick test_cfg_shape;
    Alcotest.test_case "cfg exceptional edges" `Quick test_cfg_exc_edges;
    Alcotest.test_case "reaching definitions" `Quick test_reaching_defs;
    Alcotest.test_case "liveness" `Quick test_liveness;
    Alcotest.test_case "use before init" `Quick test_use_before_init;
    Alcotest.test_case "use before init negative" `Quick
      test_use_before_init_negative;
    Alcotest.test_case "null deref" `Quick test_null_deref;
    Alcotest.test_case "null deref guarded join" `Quick
      test_null_deref_guarded_join_negative;
    Alcotest.test_case "dead branch" `Quick test_dead_branch;
    Alcotest.test_case "dead branch undecidable" `Quick
      test_dead_branch_undecidable_negative;
    Alcotest.test_case "unreachable after return" `Quick
      test_unreachable_after_return;
    Alcotest.test_case "clean program" `Quick test_clean_program_no_diags;
    Alcotest.test_case "clean examples" `Quick test_clean_examples_no_diags;
    Alcotest.test_case "lint json" `Quick test_lint_json;
    Alcotest.test_case "escape qualifies" `Quick test_escape_qualifies;
    Alcotest.test_case "escape aliasing" `Quick
      test_escape_disqualified_by_aliasing;
    Alcotest.test_case "escape call arg" `Quick
      test_escape_disqualified_by_call_arg;
    Alcotest.test_case "escape field store" `Quick
      test_escape_disqualified_by_store;
    Alcotest.test_case "escape loop" `Quick test_escape_disqualified_by_loop ]
