(* Tests for the whole-program Andersen points-to layer (ISSUE 7): subset
   soundness on hand-built programs, field sensitivity, cycle collapse,
   determinism, the pipeline's points-to pre-filter (proven to prune
   strictly beyond escape + summaries), the closure-graph slicer, and the
   alias on/off differential at several worker counts. *)

let parse src = Jir.Resolve.parse_exn src

let fresh_workdir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "grapple-test-pointsto-%d-%d" (Unix.getpid ()) !counter)

(* ---------------- solver soundness ---------------- *)

let sites pt ~meth_id ~var =
  Analysis.Pointsto.pts_sites pt ~meth_id ~var
  |> List.map (fun (cls, _, line) -> (cls, line))

let test_copy_chain () =
  let pt =
    Analysis.Pointsto.analyze
      (parse {|
class Main {
  void main(int p) {
    FileWriter a = new FileWriter();
    FileWriter b = a;
    FileWriter c = b;
    return;
  }
}
entry Main.main;
|})
  in
  let alloc = [ ("FileWriter", 4) ] in
  Alcotest.(check (list (pair string int))) "a points at the alloc" alloc
    (sites pt ~meth_id:"Main.main" ~var:"a");
  Alcotest.(check (list (pair string int))) "copies inherit it" alloc
    (sites pt ~meth_id:"Main.main" ~var:"c");
  Alcotest.(check bool) "unknown vars are empty" false
    (Analysis.Pointsto.nonempty pt ~meth_id:"Main.main" ~var:"zz")

let test_interprocedural_flow () =
  (* allocation flows out through a return and in through a parameter *)
  let pt =
    Analysis.Pointsto.analyze
      (parse {|
class H {
  FileWriter mk(int n) {
    FileWriter hw = new FileWriter();
    return hw;
  }
  void use(FileWriter f) {
    f.write(1);
    return;
  }
}
class Main {
  void main(int p) {
    FileWriter w = H.mk(p);
    H.use(w);
    return;
  }
}
entry Main.main;
|})
  in
  let alloc = [ ("FileWriter", 4) ] in
  Alcotest.(check (list (pair string int))) "return value flows to caller"
    alloc
    (sites pt ~meth_id:"Main.main" ~var:"w");
  Alcotest.(check (list (pair string int))) "argument flows to formal" alloc
    (sites pt ~meth_id:"H.use" ~var:"f")

let test_field_sensitivity () =
  (* two stores into distinct fields of the same holder must not conflate *)
  let pt =
    Analysis.Pointsto.analyze
      (parse {|
class Main {
  void main(int p) {
    Holder h = new Holder();
    FileWriter x = new FileWriter();
    Socket y = new Socket();
    h.f = x;
    h.g = y;
    FileWriter rf = h.f;
    Socket rg = h.g;
    return;
  }
}
entry Main.main;
|})
  in
  Alcotest.(check (list (pair string int))) "load of f sees only x"
    [ ("FileWriter", 5) ]
    (sites pt ~meth_id:"Main.main" ~var:"rf");
  Alcotest.(check (list (pair string int))) "load of g sees only y"
    [ ("Socket", 6) ]
    (sites pt ~meth_id:"Main.main" ~var:"rg")

let test_cycle_collapse () =
  (* a copy cycle through mutual recursion: the solver must terminate and
     collapse at least one component, and both ends of the cycle keep the
     full points-to set *)
  let pt =
    Analysis.Pointsto.analyze
      (parse {|
class R {
  FileWriter spin(FileWriter a, int n) {
    if (n > 0) {
      FileWriter b = R.spin(a, n - 1);
      return b;
    }
    return a;
  }
}
class Main {
  void main(int p) {
    FileWriter w = new FileWriter();
    FileWriter r = R.spin(w, p);
    return;
  }
}
entry Main.main;
|})
  in
  Alcotest.(check bool) "a copy cycle was collapsed" true
    (Analysis.Pointsto.n_collapsed pt > 0);
  let alloc = [ ("FileWriter", 13) ] in
  Alcotest.(check (list (pair string int))) "cycle member keeps the set"
    alloc
    (sites pt ~meth_id:"R.spin" ~var:"b");
  Alcotest.(check (list (pair string int))) "result keeps the set" alloc
    (sites pt ~meth_id:"Main.main" ~var:"r")

let test_render_deterministic () =
  let subject () =
    (Workload.Generator.mini_hadoop ()).Workload.Generator.program
  in
  let render p = Analysis.Pointsto.render (Analysis.Pointsto.analyze p) in
  let a = render (subject ()) in
  let b = render (subject ()) in
  Alcotest.(check bool) "renders byte-identical across runs" true (a = b);
  Alcotest.(check bool) "render is non-trivial" true (String.length a > 0)

(* ---------------- pipeline pre-filter and slicer ---------------- *)

let run_pipeline ?(alias_prefilter = true) ?(workers = 1) ?fsms src =
  let program = parse src in
  let workdir = fresh_workdir () in
  let fsms =
    match fsms with
    | Some fs -> fs
    | None -> [ Checkers.Specs.lock_fsm () ]
  in
  let config =
    { (Grapple.Pipeline.default_config ~workdir) with
      Grapple.Pipeline.library_throwers = Checkers.Specs.library_throwers;
      prefilter_properties = fsms;
      alias_prefilter;
      workers }
  in
  let prepared = Grapple.Pipeline.prepare ~config ~workdir program in
  let prs = List.map (Grapple.Pipeline.check_property prepared) fsms in
  let stats = Grapple.Pipeline.stats prepared prs in
  (stats, List.concat_map (fun pr -> pr.Grapple.Pipeline.reports) prs)

let report_sig (rs : Grapple.Report.t list) =
  List.map Grapple.Report.to_string rs |> List.sort compare

(* the acceptance witness: a lock parked into a holder field and never
   used again.  The store makes it escape (so the escape tier keeps it)
   and wildcards it in the summary tier; only the points-to tier sees that
   its whole reachable event alphabet is empty *)
let parked_lock_src = {|
class H {
  void step(int n) {
    return;
  }
}
class Main {
  void main(int p) {
    Holder h = new Holder();
    ReentrantLock l = new ReentrantLock();
    h.parked = l;
    H.step(p);
    return;
  }
}
entry Main.main;
|}

let test_alias_prefilter_prunes_beyond_escape_and_summaries () =
  let s_on, r_on = run_pipeline parked_lock_src in
  let s_off, r_off = run_pipeline ~alias_prefilter:false parked_lock_src in
  Alcotest.(check int) "escape filter cannot catch it" 0
    s_on.Grapple.Pipeline.n_prefiltered;
  Alcotest.(check int) "summary filter cannot catch it" 0
    s_on.Grapple.Pipeline.n_summary_pruned;
  Alcotest.(check int) "points-to filter prunes the lock" 1
    s_on.Grapple.Pipeline.n_alias_pruned;
  Alcotest.(check int) "hatch disables it" 0
    s_off.Grapple.Pipeline.n_alias_pruned;
  Alcotest.(check (list string)) "reports identical either way"
    (report_sig r_off) (report_sig r_on);
  Alcotest.(check (list string)) "and there are none" [] (report_sig r_on)

let test_alias_prefilter_keeps_buggy_alloc () =
  (* a lock that is locked and never unlocked must survive every tier *)
  let src = {|
class Main {
  void main(int p) {
    ReentrantLock l = new ReentrantLock();
    l.lock();
    return;
  }
}
entry Main.main;
|}
  in
  let s_on, r_on = run_pipeline src in
  let _, r_off = run_pipeline ~alias_prefilter:false src in
  Alcotest.(check int) "buggy lock not pruned" 0
    s_on.Grapple.Pipeline.n_alias_pruned;
  Alcotest.(check (list string)) "bug reported identically"
    (report_sig r_off) (report_sig r_on);
  Alcotest.(check bool) "there is a report" true (r_on <> [])

let test_slicer_reduces_edges () =
  let s_on, r_on = run_pipeline parked_lock_src in
  let s_off, r_off = run_pipeline ~alias_prefilter:false parked_lock_src in
  Alcotest.(check bool) "slicer removed edges" true
    (s_on.Grapple.Pipeline.n_edges_sliced > 0);
  Alcotest.(check int) "hatch slices nothing" 0
    s_off.Grapple.Pipeline.n_edges_sliced;
  Alcotest.(check bool) "pre-slice count covers the removed edges" true
    (s_on.Grapple.Pipeline.n_edges_presliced
    >= s_on.Grapple.Pipeline.n_edges_sliced);
  Alcotest.(check (list string)) "reports identical either way"
    (report_sig r_off) (report_sig r_on)

(* ---------------- differential on generated subjects ---------------- *)

let run_subject ?(alias_prefilter = true) ~workers
    (subject : Workload.Generator.subject) =
  let workdir = fresh_workdir () in
  let fsms =
    [ Checkers.Specs.io_fsm (); Checkers.Specs.lock_fsm ();
      Checkers.Specs.socket_fsm () ]
  in
  let config =
    { (Grapple.Pipeline.default_config ~workdir) with
      Grapple.Pipeline.library_throwers = Checkers.Specs.library_throwers;
      alias_prefilter;
      workers }
  in
  let _prepared, props =
    Grapple.Pipeline.check ~config ~workdir
      subject.Workload.Generator.program fsms
  in
  report_sig (List.concat_map (fun pr -> pr.Grapple.Pipeline.reports) props)

let test_differential_generated_subject () =
  let subject = Workload.Generator.mini_zookeeper () in
  List.iter
    (fun workers ->
      let on = run_subject ~workers subject in
      let off = run_subject ~alias_prefilter:false ~workers subject in
      Alcotest.(check (list string))
        (Printf.sprintf "byte-identical reports at workers=%d" workers)
        off on)
    [ 1; 4 ]

(* ---------------- whole-program lints ---------------- *)

let test_workload_pointsto_expectations () =
  let s = Workload.Generator.mini_hbase () in
  let pt =
    Analysis.Pointsto.analyze s.Workload.Generator.program
  in
  let diags = Analysis.Pointsto.diags pt in
  let ls =
    Workload.Scoring.score_lints ~checker:"pointsto"
      ~expected:s.Workload.Generator.expected diags
  in
  Alcotest.(check bool) "planted points-to bugs found" true
    (ls.Workload.Scoring.ltp >= 2);
  Alcotest.(check int) "no misses" 0 ls.Workload.Scoring.lfn;
  Alcotest.(check int) "no false positives" 0 ls.Workload.Scoring.lfp;
  (* the same expectations are invisible to the intraprocedural linter *)
  let intra = Analysis.Lint.check_program s.Workload.Generator.program in
  let ls_intra =
    Workload.Scoring.score_lints ~checker:"pointsto"
      ~expected:s.Workload.Generator.expected intra
  in
  Alcotest.(check int) "intraprocedural lints find none of them" 0
    ls_intra.Workload.Scoring.ltp

let test_never_read_respects_aliased_loads () =
  (* loading the field through an alias of the receiver must suppress the
     never-read diagnostic *)
  let pt =
    Analysis.Pointsto.analyze
      (parse {|
class Main {
  void main(int p) {
    Holder h = new Holder();
    Holder g = h;
    FileWriter w = new FileWriter();
    h.res = w;
    FileWriter r = g.res;
    r.close();
    return;
  }
}
entry Main.main;
|})
  in
  Alcotest.(check int) "aliased load suppresses the diag" 0
    (List.length (Analysis.Pointsto.never_read_diags pt))

let test_confused_sink_requires_cross_method_flow () =
  (* source allocated and drained in the same method: not confused *)
  let pt =
    Analysis.Pointsto.analyze
      (parse {|
class Main {
  void main(int p) {
    Holder h = new Holder();
    UserInput u = new UserInput();
    h.payload = u;
    UserInput w = h.payload;
    w.exec();
    return;
  }
}
entry Main.main;
|})
  in
  Alcotest.(check int) "same-method flow is not reported" 0
    (List.length (Analysis.Pointsto.confused_sink_diags pt))

let suite =
  [ Alcotest.test_case "copy chain" `Quick test_copy_chain;
    Alcotest.test_case "interprocedural flow" `Quick
      test_interprocedural_flow;
    Alcotest.test_case "field sensitivity" `Quick test_field_sensitivity;
    Alcotest.test_case "cycle collapse" `Quick test_cycle_collapse;
    Alcotest.test_case "render deterministic" `Quick
      test_render_deterministic;
    Alcotest.test_case "prefilter prunes beyond escape+summaries" `Quick
      test_alias_prefilter_prunes_beyond_escape_and_summaries;
    Alcotest.test_case "prefilter keeps buggy alloc" `Quick
      test_alias_prefilter_keeps_buggy_alloc;
    Alcotest.test_case "slicer reduces edges" `Quick
      test_slicer_reduces_edges;
    Alcotest.test_case "differential on generated subject" `Slow
      test_differential_generated_subject;
    Alcotest.test_case "workload pointsto expectations" `Quick
      test_workload_pointsto_expectations;
    Alcotest.test_case "never-read respects aliased loads" `Quick
      test_never_read_respects_aliased_loads;
    Alcotest.test_case "confused sink requires cross-method flow" `Quick
      test_confused_sink_requires_cross_method_flow ]
