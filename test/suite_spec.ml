(* Tests for the declarative property DSL (lib/spec): parser and validator
   diagnostics, printer round-trips, the differential guarantee that DSL
   replicas of the hand-coded checkers produce byte-identical warnings, and
   the ground-truth scores of the four DSL-defined checkers. *)

let fresh_workdir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "grapple-test-spec-%d-%d" (Unix.getpid ()) !counter)

(* ---------------- parsing and validation ---------------- *)

let expect_error ~line ~needle src =
  match Spec.compile ~file:"t.gspec" src with
  | _ -> Alcotest.failf "expected Spec_error (%s)" needle
  | exception Spec.Spec_error (pos, msg) ->
      Alcotest.(check string) "file" "t.gspec" pos.Spec.sp_file;
      Alcotest.(check int) ("line of: " ^ msg) line pos.Spec.sp_line;
      Alcotest.(check bool) ("column positioned: " ^ msg) true
        (pos.Spec.sp_col >= 1);
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%S mentions %S" msg needle)
        true (contains msg needle)

let test_unknown_state () =
  expect_error ~line:5 ~needle:"unknown state"
    {|property p {
  track C;
  initial A;
  accepting A;
  on A e -> B;
}
|}

let test_nondeterministic_transition () =
  expect_error ~line:7 ~needle:"nondeterministic"
    {|property p {
  track C;
  initial A;
  accepting A;
  state B;
  on A e -> B;
  on A e -> Error;
  on B e -> A;
}
|}

let test_missing_error_message () =
  expect_error ~line:5 ~needle:"missing error message"
    {|property p {
  track C;
  initial A;
  accepting A;
  error Boom;
  on A e -> Boom;
}
|}

let test_unreachable_state () =
  expect_error ~line:5 ~needle:"unreachable state"
    {|property p {
  track C;
  initial A;
  accepting A;
  state Island;
  on A e -> A;
}
|}

let test_transition_out_of_error () =
  expect_error ~line:5 ~needle:"error state"
    {|property p {
  track C;
  initial A;
  accepting A;
  on Error e -> A;
}
|}

let test_unknown_event_in_declared_mode () =
  expect_error ~line:6 ~needle:"unknown event"
    {|property p {
  track C;
  initial A;
  accepting A;
  event go = call start;
  on A stop -> Error;
}
|}

let test_unknown_product_component () =
  expect_error ~line:1 ~needle:"unknown property"
    {|property p = product(a, b) {
  error "boom";
}
|}

(* ---------------- printer round-trip ---------------- *)

let roundtrip name (fsm : Fsm.t) =
  let text = Spec.print_fsm fsm in
  match Spec.compile ~file:(name ^ ".gspec") text with
  | [ { Spec.c_kind = Spec.Typestate fsm'; _ } ] ->
      Alcotest.(check bool)
        (Printf.sprintf "%s round-trips:\n%s" name text)
        true
        (Spec.equivalent fsm fsm')
  | _ -> Alcotest.failf "%s: round-trip did not yield one typestate" name

let test_roundtrip_builtins () =
  roundtrip "io" (Checkers.Specs.io_fsm ());
  roundtrip "lock" (Checkers.Specs.lock_fsm ());
  roundtrip "socket" (Checkers.Specs.socket_fsm ());
  roundtrip "null" (Checkers.Specs.null_fsm ())

let test_roundtrip_dsl_builtins () =
  List.iter
    (fun (file, text) ->
      List.iter
        (fun (c : Spec.checker) ->
          match c.Spec.c_kind with
          | Spec.Typestate fsm -> roundtrip c.Spec.c_name fsm
          | Spec.Exception_walk _ -> ())
        (Spec.compile ~file text))
    Spec.Builtin.all

(* the shipped specs/*.gspec files are the embedded Builtin texts *)
let test_shipped_specs_in_sync () =
  let read path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  List.iter
    (fun (file, text) ->
      Alcotest.(check string) ("specs/" ^ file) text
        (read (Filename.concat "../specs" file)))
    Spec.Builtin.all

(* ---------------- checker resolution (CLI satellite) ---------------- *)

let test_resolve_names () =
  let c = Checkers.resolve "io" in
  Alcotest.(check string) "builtin" "io" c.Checkers.name;
  let c = Checkers.resolve "lock_order" in
  Alcotest.(check string) "dsl" "lock_order" c.Checkers.name;
  let loaded =
    List.map Checkers.of_spec (Spec.compile_file "../specs/close.gspec")
  in
  let c = Checkers.resolve ~loaded "close" in
  Alcotest.(check string) "loaded" "close" c.Checkers.name

let test_resolve_unknown_lists_available () =
  match Checkers.resolve "no_such_checker" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      List.iter
        (fun n ->
          let contains s sub =
            let k = String.length sub in
            let rec go i =
              i + k <= String.length s
              && (String.sub s i k = sub || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) ("lists " ^ n) true (contains msg n))
        [ "no_such_checker"; "io"; "lock"; "exception"; "socket"; "null";
          "lock_order"; "taint"; "close"; "exc_twr" ]

(* ---------------- pipeline harness ---------------- *)

let prepare_and_run ?workers ~track_null (cs : Checkers.t list)
    (program : Jir.Ast.program) =
  let workdir = fresh_workdir () in
  let prefilter_properties =
    List.filter_map
      (fun (c : Checkers.t) ->
        match c.Checkers.kind with
        | `Typestate fsm -> Some fsm
        | `Exception_walk _ -> None)
      cs
  in
  let config =
    { (Grapple.Pipeline.default_config ~workdir) with
      Grapple.Pipeline.library_throwers = Checkers.Specs.library_throwers;
      track_null;
      prefilter = true;
      prefilter_properties }
  in
  let prepared = Grapple.Pipeline.prepare ~config ~workdir program in
  let results, _, _ = Checkers.run_all_scheduled ?workers prepared cs in
  results

(* the rendered report block, exactly what the CLI prints per checker *)
let render results =
  String.concat "\n"
    (List.concat_map
       (fun (name, reports) ->
         Printf.sprintf "== %s: %d" name (List.length reports)
         :: List.map Grapple.Report.to_string reports)
       results)

(* ---------------- differential: replicas vs hand-coded ---------------- *)

let differential_subject () =
  Workload.Generator.generate
    { Workload.Generator.name = "specdiff";
      description = "differential subject";
      seed = 909;
      layers = 2;
      classes_per_layer = 2;
      methods_per_class = 2;
      patterns_per_method = 2;
      calls_per_method = 1;
      bugs = [ ("io", 2); ("lock", 1); ("socket", 1); ("null", 1) ];
      lint_bugs = [];
      loops_per_subject = 1 }

let test_replicas_byte_identical () =
  let replicas =
    List.map Checkers.of_spec (Spec.compile_file "../specs/replicas.gspec")
  in
  Alcotest.(check (list string)) "replica names"
    [ "io"; "lock"; "socket"; "null" ]
    (List.map (fun (c : Checkers.t) -> c.Checkers.name) replicas);
  let builtins =
    [ Checkers.io (); Checkers.lock (); Checkers.socket (); Checkers.null () ]
  in
  let subject = differential_subject () in
  let program = subject.Workload.Generator.program in
  List.iter
    (fun workers ->
      let base_results =
        prepare_and_run ~workers ~track_null:true builtins program
      in
      let repl =
        render (prepare_and_run ~workers ~track_null:true replicas program)
      in
      Alcotest.(check string)
        (Printf.sprintf "byte-identical at %d worker(s)" workers)
        (render base_results) repl;
      let total =
        List.fold_left (fun n (_, rs) -> n + List.length rs) 0 base_results
      in
      Alcotest.(check bool) "subject produces warnings" true (total > 0))
    [ 1; 4 ]

(* worker-count invariance of the full DSL checker set (dedup satellite:
   the rendered reports must be byte-identical at 1 and 4 workers) *)
let test_dsl_checkers_worker_invariant () =
  let cs =
    List.map Checkers.resolve [ "lock_order"; "taint"; "close"; "exc_twr" ]
  in
  let subject = Workload.Generator.mini_taint () in
  let program = subject.Workload.Generator.program in
  let r1 = render (prepare_and_run ~workers:1 ~track_null:false cs program) in
  let r4 = render (prepare_and_run ~workers:4 ~track_null:false cs program) in
  Alcotest.(check string) "workers 1 = workers 4" r1 r4

let test_dedup_exact () =
  let r line =
    { Grapple.Report.checker = "close";
      kind = Grapple.Report.Error_state "Error";
      cls = "FileChannel";
      alloc_at = { Jir.Ast.file = "t.jir"; line };
      site = None;
      context = [];
      witness = [];
      trace = [] }
  in
  Alcotest.(check int) "identical copies collapse" 2
    (List.length (Grapple.Report.dedup_exact [ r 1; r 2; r 1; r 1 ]));
  let distinct =
    [ r 1; { (r 1) with Grapple.Report.checker = "taint" } ]
  in
  Alcotest.(check int) "distinct reports survive" 2
    (List.length (Grapple.Report.dedup_exact distinct))

(* ---------------- DSL checker ground truth ---------------- *)

let score_subject (subject : Workload.Generator.subject) name =
  let c = Checkers.resolve name in
  let results =
    prepare_and_run ~track_null:false [ c ]
      subject.Workload.Generator.program
  in
  let reports =
    Option.value ~default:[] (List.assoc_opt name results)
  in
  Workload.Scoring.score ~checker:name
    ~expected:subject.Workload.Generator.expected ~reports ()

let check_perfect name subject expected_tp =
  let s = score_subject subject name in
  Alcotest.(check int) (name ^ " TP") expected_tp s.Workload.Scoring.tp;
  Alcotest.(check int) (name ^ " FP") 0 s.Workload.Scoring.fp;
  Alcotest.(check int) (name ^ " FN") 0 s.Workload.Scoring.fn

let test_lock_order_score () =
  check_perfect "lock_order" (Workload.Generator.mini_locks ()) 2

let test_taint_score () =
  check_perfect "taint" (Workload.Generator.mini_taint ()) 3

let test_close_score () =
  check_perfect "close" (Workload.Generator.mini_close ()) 2

(* exc_twr: same true positives as the paper's exception checker, strictly
   fewer false positives on the try-with-resources decoys *)
let test_exc_twr_beats_exception () =
  let subject = Workload.Generator.mini_twr () in
  let program = subject.Workload.Generator.program in
  let expected = subject.Workload.Generator.expected in
  let twr =
    let results =
      prepare_and_run ~track_null:false [ Checkers.resolve "exc_twr" ] program
    in
    let reports = Option.value ~default:[] (List.assoc_opt "exc_twr" results) in
    Workload.Scoring.score ~checker:"exc_twr" ~expected ~reports ()
  in
  let old =
    let results =
      prepare_and_run ~track_null:false [ Checkers.exception_ () ] program
    in
    let reports =
      Option.value ~default:[] (List.assoc_opt "exception" results)
      (* rename so the scorer matches them against the exc_twr ground
         truth: both walks target the same planted bugs *)
      |> List.map (fun r -> { r with Grapple.Report.checker = "exc_twr" })
    in
    Workload.Scoring.score ~checker:"exc_twr" ~expected ~reports ()
  in
  Alcotest.(check int) "exc_twr TP" 2 twr.Workload.Scoring.tp;
  Alcotest.(check int) "exc_twr FP" 0 twr.Workload.Scoring.fp;
  Alcotest.(check int) "exc_twr FN" 0 twr.Workload.Scoring.fn;
  Alcotest.(check int) "plain walk finds the same bugs" 2
    old.Workload.Scoring.tp;
  Alcotest.(check bool)
    (Printf.sprintf "plain walk FPs (%d) > exc_twr FPs (%d)"
       old.Workload.Scoring.fp twr.Workload.Scoring.fp)
    true
    (old.Workload.Scoring.fp > twr.Workload.Scoring.fp)

(* the product construction itself: alphabet union, component stall,
   pair-state naming *)
let test_product_semantics () =
  let cs = Spec.compile ~file:"b.gspec" Spec.Builtin.lock_order in
  let fsm =
    match cs with
    | [ { Spec.c_name = "lock_order"; c_kind = Spec.Typestate f } ] -> f
    | _ -> Alcotest.fail "lock_order compiles to one typestate checker"
  in
  Alcotest.(check bool) "lockB first errs" true
    (Fsm.run fsm [ "lockB" ] = fsm.Fsm.error);
  let st = Fsm.run fsm [ "lockA"; "lockB"; "unlockA" ] in
  Alcotest.(check bool) "A-first sequence accepted" true
    (st <> fsm.Fsm.error && Fsm.is_accepting fsm st);
  (* the product's error message template renders through describe_state *)
  let msg = Fsm.describe_state fsm fsm.Fsm.error ~cls:"LockPair" in
  Alcotest.(check string) "error message template"
    "lock-order inversion on LockPair: B acquired before A" msg

let suite =
  [ Alcotest.test_case "unknown state" `Quick test_unknown_state;
    Alcotest.test_case "nondeterministic transition" `Quick
      test_nondeterministic_transition;
    Alcotest.test_case "missing error message" `Quick
      test_missing_error_message;
    Alcotest.test_case "unreachable state" `Quick test_unreachable_state;
    Alcotest.test_case "transition out of error" `Quick
      test_transition_out_of_error;
    Alcotest.test_case "unknown event" `Quick
      test_unknown_event_in_declared_mode;
    Alcotest.test_case "unknown product component" `Quick
      test_unknown_product_component;
    Alcotest.test_case "round-trip built-ins" `Quick test_roundtrip_builtins;
    Alcotest.test_case "round-trip DSL builtins" `Quick
      test_roundtrip_dsl_builtins;
    Alcotest.test_case "shipped specs in sync" `Quick
      test_shipped_specs_in_sync;
    Alcotest.test_case "resolve names" `Quick test_resolve_names;
    Alcotest.test_case "resolve unknown lists available" `Quick
      test_resolve_unknown_lists_available;
    Alcotest.test_case "replicas byte-identical" `Slow
      test_replicas_byte_identical;
    Alcotest.test_case "DSL checkers worker-invariant" `Slow
      test_dsl_checkers_worker_invariant;
    Alcotest.test_case "dedup exact" `Quick test_dedup_exact;
    Alcotest.test_case "lock_order score" `Slow test_lock_order_score;
    Alcotest.test_case "taint score" `Slow test_taint_score;
    Alcotest.test_case "close score" `Slow test_close_score;
    Alcotest.test_case "exc_twr beats exception" `Slow
      test_exc_twr_beats_exception;
    Alcotest.test_case "product semantics" `Quick test_product_semantics ]
