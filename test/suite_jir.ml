(* Tests for the JIR frontend: lexer, parser, resolver, pretty-printer
   round-trips, loop unrolling, and the call graph / SCC machinery. *)

let parse = Jir.Resolve.parse_exn

let simple_program = {|
class Util {
  int double_(int n) {
    int r = n * 2;
    return r;
  }
}
class Main {
  void main(int a) {
    int b = Util.double_(a);
    if (b > 10) {
      b = b - 1;
    } else {
      b = b + 1;
    }
    return;
  }
}
entry Main.main;
|}

let test_parse_simple () =
  let p = parse simple_program in
  Alcotest.(check int) "two classes" 2 (List.length p.Jir.Ast.classes);
  Alcotest.(check int) "one entry" 1 (List.length p.Jir.Ast.entries);
  Alcotest.(check bool) "finds Util.double_" true
    (Jir.Ast.find_method p ~cls:"Util" ~meth:"double_" <> None)

let test_parse_statements () =
  let src = {|
class C {
  void m(int p) {
    FileWriter w = new FileWriter();
    C other = null;
    w.write(p + 1);
    other.field = w;
    FileWriter u = other.field;
    u.close();
    int x = 3 * p - 2;
    while (x > 0) {
      x = x - 1;
    }
    try {
      throw new Boom();
    } catch (Boom b) {
      x = 0;
    }
    return;
  }
}
entry C.m;
|} in
  let p = parse src in
  let m = Option.get (Jir.Ast.find_method p ~cls:"C" ~meth:"m") in
  Alcotest.(check int) "statement count" 13 (Jir.Ast.block_size m.Jir.Ast.body)

let test_parse_static_vs_instance () =
  let src = {|
class Svc {
  void op(int k) {
    return;
  }
}
class Main {
  void main(int a) {
    Svc s = new Svc();
    s.op(a);
    Svc.op(a);
    return;
  }
}
entry Main.main;
|} in
  let p = parse src in
  let m = Option.get (Jir.Ast.find_method p ~cls:"Main" ~meth:"main") in
  let calls =
    List.filter_map
      (fun (s : Jir.Ast.stmt) ->
        match s.Jir.Ast.kind with Jir.Ast.Expr c -> Some c | _ -> None)
      m.Jir.Ast.body
  in
  match calls with
  | [ inst; static ] ->
      Alcotest.(check bool) "instance has receiver" true
        (inst.Jir.Ast.recv = Some "s");
      Alcotest.(check string) "instance resolved to Svc" "Svc"
        inst.Jir.Ast.target_class;
      Alcotest.(check bool) "static has no receiver" true
        (static.Jir.Ast.recv = None);
      Alcotest.(check string) "static class" "Svc" static.Jir.Ast.target_class
  | _ -> Alcotest.fail "expected two call statements"

let test_parse_errors () =
  let bad = "class C { void m() { int x = ; } }" in
  Alcotest.check_raises "parse error"
    (Jir.Parser.Parse_error ("expected expression (got ';')", 1))
    (fun () -> ignore (Jir.Parser.parse bad))

(* parse/lex failures must carry the line of the offending token, not the
   line the parser started the enclosing construct on *)
let test_parse_error_lines () =
  let bad = "class C {\n  void m(int p) {\n    int x = ;\n  }\n}\n" in
  Alcotest.check_raises "missing expression on line 3"
    (Jir.Parser.Parse_error ("expected expression (got ';')", 3))
    (fun () -> ignore (Jir.Parser.parse bad));
  let bad = "class C {\n  void m(int p) {\n    int x = 1\n    return;\n  }\n}\n" in
  Alcotest.check_raises "missing semicolon reported at the next token"
    (Jir.Parser.Parse_error ("expected ';' (got keyword \"return\")", 4))
    (fun () -> ignore (Jir.Parser.parse bad));
  let bad = "class C {\n  void m(int p) {\n    if (p) {\n    }\n  }\n}\n" in
  Alcotest.check_raises "non-comparison condition on line 3"
    (Jir.Parser.Parse_error ("expected comparison operator (got ')')", 3))
    (fun () -> ignore (Jir.Parser.parse bad))

let test_lexer_error_lines () =
  Alcotest.check_raises "unexpected character"
    (Jir.Lexer.Lex_error ("unexpected character '#'", 2))
    (fun () -> ignore (Jir.Lexer.tokenize "class C {\n# }\n"));
  (* the unterminated comment is reported at the line the scan ends on *)
  Alcotest.check_raises "unterminated comment"
    (Jir.Lexer.Lex_error ("unterminated comment", 3))
    (fun () -> ignore (Jir.Lexer.tokenize "class C {\n/* lost\ncomment"))

let test_resolve_errors () =
  let src = {|
class C {
  void m(int p) {
    C c = new C();
    c.nosuch(p);
    return;
  }
}
|} in
  let _, errs = Jir.Resolve.run (Jir.Parser.parse src) in
  Alcotest.(check int) "one error" 1 (List.length errs);
  Alcotest.(check bool) "mentions nosuch" true
    (String.length (Jir.Resolve.error_to_string (List.hd errs)) > 0)

let test_library_classes_allowed () =
  let src = {|
class C {
  void m(int p) {
    FileWriter w = new FileWriter();
    w.write(p);
    w.close();
    return;
  }
}
entry C.m;
|} in
  let _, errs = Jir.Resolve.run (Jir.Parser.parse src) in
  Alcotest.(check int) "library calls are fine" 0 (List.length errs)

let test_pp_roundtrip () =
  let p = parse simple_program in
  let text = Jir.Pp.program_to_string p in
  let p2 = parse text in
  let text2 = Jir.Pp.program_to_string p2 in
  Alcotest.(check string) "pp . parse . pp fixpoint" text text2

let test_unroll_removes_loops () =
  let src = {|
class C {
  void m(int p) {
    int i = 0;
    while (i < p) {
      i = i + 1;
      while (i < 3) {
        i = i + 2;
      }
    }
    return;
  }
}
entry C.m;
|} in
  let p = parse src in
  Alcotest.(check bool) "has loops before" false (Jir.Unroll.is_loop_free p);
  let u = Jir.Unroll.unroll_program ~bound:2 p in
  Alcotest.(check bool) "loop free after" true (Jir.Unroll.is_loop_free u)

let test_unroll_size_growth () =
  let src = {|
class C {
  void m(int p) {
    int i = 0;
    while (i < p) {
      i = i + 1;
    }
    return;
  }
}
entry C.m;
|} in
  let p = parse src in
  let u1 = Jir.Unroll.unroll_program ~bound:1 p in
  let u3 = Jir.Unroll.unroll_program ~bound:3 p in
  Alcotest.(check bool) "more copies with higher bound" true
    (Jir.Ast.program_size u3 > Jir.Ast.program_size u1)

let test_unroll_fresh_sids () =
  let src = {|
class C {
  void m(int p) {
    while (p > 0) {
      p = p - 1;
    }
    return;
  }
}
entry C.m;
|} in
  let u = Jir.Unroll.unroll_program ~bound:3 (parse src) in
  let sids = ref [] in
  let rec collect (b : Jir.Ast.block) =
    List.iter
      (fun (s : Jir.Ast.stmt) ->
        sids := s.Jir.Ast.sid :: !sids;
        match s.Jir.Ast.kind with
        | Jir.Ast.If (_, t, f) -> collect t; collect f
        | Jir.Ast.While (_, b) -> collect b
        | Jir.Ast.Try (b, cs) ->
            collect b;
            List.iter (fun c -> collect c.Jir.Ast.handler) cs
        | _ -> ())
      b
  in
  List.iter (fun m -> collect m.Jir.Ast.body) (Jir.Ast.all_methods u);
  let unique = List.sort_uniq compare !sids in
  Alcotest.(check int) "statement ids unique after unrolling"
    (List.length !sids) (List.length unique)

(* Unrolling rewrites loops into nested Ifs but must keep every statement's
   source position: downstream diagnostics (reports, lints) cite original
   lines. *)
let test_unroll_preserves_positions () =
  let src = "class C {\n  void m(int p) {\n    int i = 0;\n    while (i < p) {\n      i = i + 1;\n    }\n    return;\n  }\n}\nentry C.m;\n" in
  let original_lines = [ 3; 4; 5; 7 ] in
  let u = Jir.Unroll.unroll_program ~bound:3 (parse src) in
  let lines = ref [] in
  let rec collect (b : Jir.Ast.block) =
    List.iter
      (fun (s : Jir.Ast.stmt) ->
        lines := s.Jir.Ast.at.Jir.Ast.line :: !lines;
        match s.Jir.Ast.kind with
        | Jir.Ast.If (_, t, f) -> collect t; collect f
        | Jir.Ast.While (_, b) -> collect b
        | Jir.Ast.Try (b, cs) ->
            collect b;
            List.iter (fun c -> collect c.Jir.Ast.handler) cs
        | _ -> ())
      b
  in
  List.iter (fun m -> collect m.Jir.Ast.body) (Jir.Ast.all_methods u);
  let seen = List.sort_uniq compare !lines in
  Alcotest.(check (list int)) "every original line survives, nothing invented"
    original_lines seen;
  Alcotest.(check bool) "unrolled copies multiply the loop lines" true
    (List.length !lines > List.length original_lines)

(* ---------------- call graph and SCC ---------------- *)

let callgraph_program = {|
class A {
  void a1(int x) { B.b1(x); return; }
  void a2(int x) { A.a1(x); B.b2(x); return; }
}
class B {
  void b1(int x) { B.b2(x); return; }
  void b2(int x) { B.b1(x); return; }
}
class Main {
  void main(int x) { A.a2(x); return; }
}
entry Main.main;
|}

let test_callgraph_edges () =
  let p = parse callgraph_program in
  let cg = Jir.Callgraph.build p in
  Alcotest.(check (list string)) "a2 calls" [ "A.a1"; "B.b2" ]
    (Jir.Callgraph.callees cg "A.a2");
  Alcotest.(check (list string)) "b1 callers" [ "B.b2"; "A.a1" ]
    (List.sort compare (Jir.Callgraph.callers cg "B.b1")
     |> List.sort (fun a b -> compare b a))

let test_scc_detection () =
  let p = parse callgraph_program in
  let cg = Jir.Callgraph.build p in
  let scc = Jir.Callgraph.tarjan cg in
  let comp m = Hashtbl.find scc.Jir.Callgraph.component_of m in
  Alcotest.(check bool) "b1 and b2 share a component" true
    (comp "B.b1" = comp "B.b2");
  Alcotest.(check bool) "a1 is alone" true (comp "A.a1" <> comp "B.b1");
  Alcotest.(check bool) "b1 recursive" true
    (Jir.Callgraph.is_recursive cg scc "B.b1");
  Alcotest.(check bool) "a1 not recursive" false
    (Jir.Callgraph.is_recursive cg scc "A.a1")

let test_reverse_topological () =
  let p = parse callgraph_program in
  let cg = Jir.Callgraph.build p in
  let order = Jir.Callgraph.reverse_topological cg in
  let pos m =
    let rec go i = function
      | [] -> Alcotest.fail (m ^ " missing from order")
      | x :: _ when x = m -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 order
  in
  Alcotest.(check bool) "callees before callers: b1 before a1" true
    (pos "B.b1" < pos "A.a1");
  Alcotest.(check bool) "a1 before a2" true (pos "A.a1" < pos "A.a2");
  Alcotest.(check bool) "a2 before main" true (pos "A.a2" < pos "Main.main")

(* round-trip property over generated subjects *)
let prop_generator_roundtrip =
  QCheck.Test.make ~name:"generated subjects parse back" ~count:4
    QCheck.(make (Gen.int_range 1 1000))
    (fun seed ->
      let subj =
        Workload.Generator.generate
          { Workload.Generator.name = Printf.sprintf "prop%d" seed;
            description = "roundtrip";
            seed;
            layers = 2;
            classes_per_layer = 1;
            methods_per_class = 2;
            patterns_per_method = 2;
            calls_per_method = 1;
            bugs = [ ("io", 1) ];
            lint_bugs = [];
            loops_per_subject = 1 }
      in
      let text = Jir.Pp.program_to_string subj.Workload.Generator.program in
      let p2 = parse text in
      Jir.Pp.program_to_string p2 = text)

let suite =
  [ Alcotest.test_case "parse simple" `Quick test_parse_simple;
    Alcotest.test_case "parse statements" `Quick test_parse_statements;
    Alcotest.test_case "static vs instance calls" `Quick test_parse_static_vs_instance;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse error lines" `Quick test_parse_error_lines;
    Alcotest.test_case "lexer error lines" `Quick test_lexer_error_lines;
    Alcotest.test_case "resolve errors" `Quick test_resolve_errors;
    Alcotest.test_case "library classes allowed" `Quick test_library_classes_allowed;
    Alcotest.test_case "pretty-print round trip" `Quick test_pp_roundtrip;
    Alcotest.test_case "unroll removes loops" `Quick test_unroll_removes_loops;
    Alcotest.test_case "unroll size growth" `Quick test_unroll_size_growth;
    Alcotest.test_case "unroll fresh sids" `Quick test_unroll_fresh_sids;
    Alcotest.test_case "unroll preserves positions" `Quick
      test_unroll_preserves_positions;
    Alcotest.test_case "callgraph edges" `Quick test_callgraph_edges;
    Alcotest.test_case "scc detection" `Quick test_scc_detection;
    Alcotest.test_case "reverse topological order" `Quick test_reverse_topological;
    QCheck_alcotest.to_alcotest prop_generator_roundtrip ]
