(* Tests for the supervised multi-process shard runtime (ISSUE 8).

   The contract under test: with the phase-2/3 instances running in forked
   worker processes, the rendered reports are byte-identical to the
   in-process scheduler at every process count, under fault plans, and
   under deterministic SIGKILL injection; a worker killed mid-instance is
   re-dispatched from its checkpoint manifest with zero lost instances; and
   an instance that keeps losing its worker degrades to [Inconclusive]
   instead of stalling or aborting the run.  Unit tests pin the supervisor
   itself: completion, re-dispatch after worker death, the degradation
   ladder, and deadline kills. *)

module Faults = Engine.Faults
module Supervisor = Engine.Supervisor
module Interrupt = Engine.Interrupt
module Pipeline = Grapple.Pipeline
module R = Obs.Registry

let fresh_workdir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "grapple-test-shard-%d-%d" (Unix.getpid ()) !counter)
    in
    Engine.ensure_dir dir;
    dir

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let cval reg name = R.value (R.counter reg name)

(* ---------------- supervisor unit tests ---------------- *)

(* Fast heartbeats and tiny backoffs so worker deaths settle quickly. *)
let sup_config ?(procs = 1) ?(max_redispatch = 2) ?(deadline_s = 0.)
    ?(kill_nth = 0) () =
  { Supervisor.default_config with
    Supervisor.procs;
    heartbeat_ms = 20.;
    max_redispatch;
    deadline_s;
    retry_base_ms = 0.01;
    kill_nth }

let test_supervisor_completes () =
  let reg = R.create () in
  let outcomes =
    Supervisor.run ~reg ~config:(sup_config ~procs:2 ())
      ~tasks:[| "a"; "b"; "c" |]
      ~run_task:(fun ~task ~attempt:_ -> Printf.sprintf "r%d" task)
      ()
  in
  Array.iteri
    (fun i o ->
      match o with
      | Supervisor.Completed { payload; slot; wall_s } ->
          Alcotest.(check string)
            (Printf.sprintf "task %d payload" i)
            (Printf.sprintf "r%d" i)
            payload;
          Alcotest.(check bool)
            (Printf.sprintf "task %d sane slot/wall" i)
            true
            (slot >= 0 && slot < 2 && wall_s >= 0.)
      | Supervisor.Degraded r -> Alcotest.failf "task %d degraded: %s" i r)
    outcomes;
  Alcotest.(check int) "no kills" 0 (cval reg "supervisor.kills");
  Alcotest.(check int) "two workers spawned" 2 (cval reg "supervisor.spawns")

(* A task that dies on its first attempt (the worker process exits) and
   succeeds on the re-dispatch: the instance completes with one kill and
   one re-dispatch on the books. *)
let test_supervisor_redispatch_recovers () =
  let reg = R.create () in
  let outcomes =
    Supervisor.run ~reg ~config:(sup_config ())
      ~tasks:[| "flaky" |]
      ~run_task:(fun ~task:_ ~attempt ->
        if attempt = 0 then failwith "injected worker death" else "recovered")
      ()
  in
  (match outcomes.(0) with
  | Supervisor.Completed { payload; _ } ->
      Alcotest.(check string) "payload" "recovered" payload
  | Supervisor.Degraded r -> Alcotest.failf "degraded: %s" r);
  Alcotest.(check int) "one redispatch" 1 (cval reg "supervisor.redispatches");
  Alcotest.(check bool) "the dead worker was reaped" true
    (cval reg "supervisor.kills" >= 1);
  Alcotest.(check int) "nothing degraded" 0 (cval reg "supervisor.degraded")

(* The degradation ladder: a task that kills every worker it touches is
   given up after [max_redispatch] re-dispatches, with a reason naming the
   instance — the run completes instead of spinning. *)
let test_supervisor_degrades_after_limit () =
  let reg = R.create () in
  let outcomes =
    Supervisor.run ~reg
      ~config:(sup_config ~max_redispatch:2 ())
      ~tasks:[| "doomed" |]
      ~run_task:(fun ~task:_ ~attempt:_ -> failwith "always dies")
      ()
  in
  (match outcomes.(0) with
  | Supervisor.Degraded reason ->
      Alcotest.(check bool) "reason names the instance" true
        (contains reason "doomed")
  | Supervisor.Completed _ -> Alcotest.fail "expected Degraded");
  Alcotest.(check int) "exactly max_redispatch re-dispatches" 2
    (cval reg "supervisor.redispatches");
  Alcotest.(check int) "one degraded" 1 (cval reg "supervisor.degraded");
  Alcotest.(check int) "every dispatch killed a worker" 3
    (cval reg "supervisor.kills")

(* A dispatch that overruns its wall deadline is killed and re-dispatched;
   the retry (which returns promptly) completes the task. *)
let test_supervisor_deadline_kill () =
  let reg = R.create () in
  let outcomes =
    Supervisor.run ~reg
      ~config:(sup_config ~deadline_s:0.4 ())
      ~tasks:[| "slow" |]
      ~run_task:(fun ~task:_ ~attempt ->
        if attempt = 0 then Unix.sleep 30;
        "woke")
      ()
  in
  (match outcomes.(0) with
  | Supervisor.Completed { payload; _ } ->
      Alcotest.(check string) "payload" "woke" payload
  | Supervisor.Degraded r -> Alcotest.failf "degraded: %s" r);
  Alcotest.(check bool) "deadline killed the first dispatch" true
    (cval reg "supervisor.kills" >= 1);
  Alcotest.(check bool) "and re-dispatched it" true
    (cval reg "supervisor.redispatches" >= 1)

(* The cooperative interrupt flag: request -> engines raise [Interrupted]
   at their next budget poll; reset -> they don't. *)
let test_interrupt_flag () =
  Interrupt.reset ();
  Alcotest.(check bool) "clear at rest" false (Interrupt.requested ());
  Interrupt.request ();
  Alcotest.(check bool) "set after request" true (Interrupt.requested ());
  (match Interrupt.check () with
  | () -> Alcotest.fail "check should raise when requested"
  | exception Engine.Interrupted -> ());
  Interrupt.reset ();
  Interrupt.check ();
  Alcotest.(check bool) "clear after reset" false (Interrupt.requested ())

(* ---------------- pipeline-level shard runs ---------------- *)

(* Like [Suite_parallel.run] but through the shard-process scheduler. *)
let run_shard ?(procs = 2) ?(kill_nth = 0) ?(max_redispatch = 3) ?plan
    ?(throwers = []) program : Suite_parallel.outcome =
  let workdir = fresh_workdir () in
  let saved = Faults.current () in
  (match plan with
  | Some spec -> Faults.install (Faults.parse spec)
  | None -> Faults.clear ());
  Fun.protect
    ~finally:(fun () ->
      match saved with Some p -> Faults.install p | None -> Faults.clear ())
  @@ fun () ->
  let config =
    { (Pipeline.default_config ~workdir) with
      Pipeline.library_throwers = throwers;
      track_null = true;
      prefilter_properties = Checkers.fsms ();
      shard_procs = procs;
      heartbeat_ms = 20.;
      max_redispatch;
      shard_kill_nth = kill_nth;
      engine =
        { (Engine.default_config ~workdir) with Engine.retry_base_ms = 0.01 } }
  in
  let prepared = Pipeline.prepare ~config ~workdir program in
  let results, props, schedule =
    Checkers.run_all_scheduled prepared (Checkers.all_with_null ())
  in
  let stats = Pipeline.stats prepared props in
  let warnings =
    List.fold_left (fun acc (_, rs) -> acc + List.length rs) 0 results
  in
  { Suite_parallel.o_reports = Suite_parallel.render results;
    o_counters = Suite_parallel.counters stats ~warnings;
    o_stats = stats;
    o_schedule = schedule }

(* Reports AND integer counters byte-identical across {in-process, 1, 2, 4}
   worker processes on a hand-written and a generated subject. *)
let test_shard_differential () =
  List.iter
    (fun (name, program) ->
      let base = Suite_parallel.run ~workers:1 program in
      Alcotest.(check bool)
        (name ^ ": subject produces warnings")
        true
        (base.Suite_parallel.o_reports <> "");
      List.iter
        (fun procs ->
          let out = run_shard ~procs program in
          Suite_parallel.check_same
            ~what:(Printf.sprintf "%s p%d" name procs)
            base out;
          List.iter
            (fun (e : Pipeline.schedule_entry) ->
              if not (e.Pipeline.s_worker >= 0 && e.Pipeline.s_worker < procs)
              then
                Alcotest.failf "%s p%d: instance %s on worker slot %d" name
                  procs e.Pipeline.s_instance e.Pipeline.s_worker)
            out.Suite_parallel.o_schedule)
        [ 1; 2; 4 ])
    [ ( "quickstart",
        Jir.Resolve.parse_exn ~file:"quickstart.jir"
          Suite_parallel.quickstart_src );
      ("gen11", Suite_parallel.generated ~seed:11) ]

(* Under a 5% fault plan: warnings identical to the in-process run, and the
   full counter set identical across shard process counts (each instance's
   fault stream is derived from its own identity, never from placement). *)
let test_shard_fault_plan_differential () =
  let program = Suite_parallel.generated ~seed:11 in
  let plan = "seed=9,rate=0.05" in
  let inproc = Suite_parallel.run ~workers:1 ~plan program in
  let shard1 = run_shard ~procs:1 ~plan program in
  Alcotest.(check bool) "plan actually fired in the workers" true
    (shard1.Suite_parallel.o_stats.Pipeline.n_faults_injected > 0);
  Alcotest.(check string) "reports: shard p1 = in-process"
    inproc.Suite_parallel.o_reports shard1.Suite_parallel.o_reports;
  List.iter
    (fun procs ->
      let out = run_shard ~procs ~plan program in
      Suite_parallel.check_same
        ~what:(Printf.sprintf "faulty p%d" procs)
        shard1 out)
    [ 2; 4 ]

(* Deterministic SIGKILL of the worker holding the Nth assignment: the
   killed worker is replaced, the instance re-dispatched and re-run from
   scratch, and both reports and counters match the kill-free shard run —
   re-dispatches surface only in the supervisor's own counters. *)
let test_shard_kill_nth () =
  let program = Suite_parallel.generated ~seed:22 in
  let base = run_shard ~procs:2 program in
  let out = run_shard ~procs:2 ~kill_nth:2 program in
  Suite_parallel.check_same ~what:"SIGKILL-on-2nd-assignment" base out;
  let reg = out.Suite_parallel.o_stats.Pipeline.registry in
  Alcotest.(check bool) "redispatch counter > 0" true
    (cval reg "supervisor.redispatches" > 0);
  Alcotest.(check bool) "the killed worker was reaped" true
    (cval reg "supervisor.kills" > 0);
  Alcotest.(check int) "zero lost instances" 0
    out.Suite_parallel.o_stats.Pipeline.n_inconclusive

(* Workers killed *mid-instance* (a crash plan detonates inside the engine,
   taking the worker process down) are re-dispatched from their checkpoint
   manifests: every attempt makes durable progress, the run completes with
   zero lost instances, and the reports equal a fault-free run's. *)
let test_shard_crash_mid_instance () =
  let program = Suite_parallel.generated ~seed:33 in
  let expect = Suite_parallel.run ~workers:1 program in
  let workdir = fresh_workdir () in
  let config =
    { (Pipeline.default_config ~workdir) with
      Pipeline.track_null = true;
      prefilter_properties = Checkers.fsms ();
      shard_procs = 2;
      heartbeat_ms = 20.;
      max_redispatch = 50;
      engine =
        { (Engine.default_config ~workdir) with Engine.retry_base_ms = 0.01 } }
  in
  (* phases 0/1 run clean; the crash plan arms for the checking phase only *)
  let prepared = Pipeline.prepare ~config ~workdir program in
  let saved = Faults.current () in
  Faults.install (Faults.parse "seed=5,crash-checkpoint=2");
  let results, props, _schedule =
    Fun.protect
      ~finally:(fun () ->
        match saved with Some p -> Faults.install p | None -> Faults.clear ())
      (fun () -> Checkers.run_all_scheduled prepared (Checkers.all_with_null ()))
  in
  let stats = Pipeline.stats prepared props in
  Alcotest.(check string) "reports survive repeated worker crashes"
    expect.Suite_parallel.o_reports
    (Suite_parallel.render results);
  Alcotest.(check int) "zero lost instances" 0 stats.Pipeline.n_inconclusive;
  Alcotest.(check bool) "workers actually died and were re-dispatched" true
    (cval stats.Pipeline.registry "supervisor.redispatches" > 0)

(* Past the re-dispatch limit the instance degrades to [Inconclusive] —
   the same sound contract as budget exhaustion — and the run still ends. *)
let test_shard_degrade_to_inconclusive () =
  let program = Suite_parallel.generated ~seed:11 in
  let workdir = fresh_workdir () in
  let config =
    { (Pipeline.default_config ~workdir) with
      Pipeline.track_null = true;
      prefilter_properties = Checkers.fsms ();
      shard_procs = 1;
      heartbeat_ms = 20.;
      max_redispatch = 0;
      engine =
        { (Engine.default_config ~workdir) with Engine.retry_base_ms = 0.01 } }
  in
  let prepared = Pipeline.prepare ~config ~workdir program in
  let saved = Faults.current () in
  Faults.install (Faults.parse "seed=5,crash-checkpoint=1");
  let results, props, _schedule =
    Fun.protect
      ~finally:(fun () ->
        match saved with Some p -> Faults.install p | None -> Faults.clear ())
      (fun () -> Checkers.run_all_scheduled prepared (Checkers.all_with_null ()))
  in
  let stats = Pipeline.stats prepared props in
  let rendered = Suite_parallel.render results in
  Alcotest.(check int) "every typestate instance degraded" 4
    stats.Pipeline.n_inconclusive;
  Alcotest.(check int) "supervisor accounted the degradations" 4
    (cval stats.Pipeline.registry "supervisor.degraded");
  Alcotest.(check bool) "inconclusive reports are visible in the output" true
    (contains rendered "inconclusive")

(* ---------------- frame checksums ---------------- *)

(* A damaged frame must never reach [Marshal]: the worker-side blocking
   reader raises [Closed] (the worker exits and is re-dispatched), and the
   coordinator-side drain reports the worker dead instead of yielding
   frames. *)
let test_frame_checksum_detects_corruption () =
  let module Sp = Engine.Shardproc in
  let b = Sp.frame_bytes (Sp.Heartbeat 7) in
  (* clean roundtrip through the coordinator-side nonblocking reader *)
  let r = Sp.reader () in
  let rd, wr = Unix.pipe () in
  Unix.set_nonblock rd;
  ignore (Unix.write wr b 0 (Bytes.length b));
  (match (Sp.drain r rd : Sp.to_coordinator list * bool) with
  | [ Sp.Heartbeat 7 ], false -> ()
  | frames, dead ->
      Alcotest.failf "clean frame: %d frames, dead=%b" (List.length frames)
        dead);
  (* flip one payload bit: no frames, and the worker is declared dead *)
  let c = Bytes.copy b in
  Bytes.set c 5 (Char.chr (Char.code (Bytes.get c 5) lxor 0x40));
  ignore (Unix.write wr c 0 (Bytes.length c));
  (match (Sp.drain r rd : Sp.to_coordinator list * bool) with
  | [], true -> ()
  | frames, dead ->
      Alcotest.failf "corrupt frame: %d frames, dead=%b" (List.length frames)
        dead);
  Unix.close rd;
  Unix.close wr;
  (* worker side: a blocking read of the same damaged frame raises Closed
     rather than unmarshalling garbage *)
  let rd, wr = Unix.pipe () in
  ignore (Unix.write wr c 0 (Bytes.length c));
  (match (Sp.read_frame rd : Sp.to_coordinator) with
  | _ -> Alcotest.fail "corrupt frame unmarshalled"
  | exception Sp.Closed -> ());
  Unix.close rd;
  Unix.close wr

let suite =
  [ Alcotest.test_case "supervisor: tasks complete across workers" `Quick
      test_supervisor_completes;
    Alcotest.test_case "supervisor: re-dispatch after worker death" `Quick
      test_supervisor_redispatch_recovers;
    Alcotest.test_case "supervisor: degrade past the re-dispatch limit" `Quick
      test_supervisor_degrades_after_limit;
    Alcotest.test_case "supervisor: deadline kill and recovery" `Quick
      test_supervisor_deadline_kill;
    Alcotest.test_case "interrupt: flag set/raise/reset" `Quick
      test_interrupt_flag;
    Alcotest.test_case "differential: in-process vs 1/2/4 procs" `Quick
      test_shard_differential;
    Alcotest.test_case "differential: under a fault plan" `Quick
      test_shard_fault_plan_differential;
    Alcotest.test_case "SIGKILL-on-Nth-assignment: identical output" `Quick
      test_shard_kill_nth;
    Alcotest.test_case "crash mid-instance: resume from manifests" `Quick
      test_shard_crash_mid_instance;
    Alcotest.test_case "degraded mode: inconclusive past the limit" `Quick
      test_shard_degrade_to_inconclusive;
    Alcotest.test_case "frame checksum: corruption is a dead peer" `Quick
      test_frame_checksum_detects_corruption ]
