(* The soundness harness suite (ISSUE 9).

   Three layers of defence, cheapest first:

   - interpreter unit tests: the concrete reference interpreter is
     deterministic, honours catch dispatch, and cuts off on fuel;
   - corpus replay: every minimized counterexample ever found by the
     fuzzer (plus hand-written exception cases) is re-checked on every
     `dune runtest` — the unweakened pipeline must report its bug, and
     the harness must find no false negative and no invalid report;
   - live fuzzing: a short seeded fuzz run must come back clean, and a
     deliberately weakened triage tier (escape / summary / alias) must
     be caught as a false negative within a few iterations — proof the
     harness has teeth, not just that the pipeline is currently sound. *)

module Fuzz = Refinterp.Fuzz
module Interp = Refinterp.Interp
module Oracle = Refinterp.Oracle

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  Jir.Resolve.parse_exn ~file:(Filename.basename path) src

let parse_src src = Jir.Resolve.parse_exn ~file:"<test>" src

(* the glob_files dep copies test/corpus into the build directory next
   to the test binary; resolving against the executable works under both
   `dune runtest` and `dune exec` *)
let corpus_dir =
  Filename.concat (Filename.dirname Sys.executable_name) "corpus"

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".jir")
  |> List.sort compare
  |> List.map (fun f -> Filename.concat corpus_dir f)

(* ---------------- interpreter unit tests ---------------- *)

let throw_src =
  {|
class Main {
  void main(int argc) {
    if (argc > 0) {
      throw new AppError();
    }
    return;
  }
}
entry Main.main;
|}

let test_interp_deterministic () =
  let program = parse_src throw_src in
  let run seed =
    Interp.run ~config:(Interp.default_config ~seed) program
  in
  for seed = 1 to 10 do
    let a = run seed and b = run seed in
    Alcotest.(check int) "same steps" a.Interp.steps b.Interp.steps;
    Alcotest.(check bool) "same exit" true (a.Interp.exit_ = b.Interp.exit_);
    Alcotest.(check int) "same allocations"
      (List.length a.Interp.objects)
      (List.length b.Interp.objects)
  done;
  (* the seeded inputs must land on both sides of the branch *)
  let exits =
    List.init 20 (fun i -> (run (i + 1)).Interp.exit_)
  in
  let thrown =
    List.exists
      (function Interp.Exit_uncaught _ -> true | _ -> false)
      exits
  and normal = List.exists (( = ) Interp.Exit_normal) exits in
  Alcotest.(check bool) "both outcomes reached" true (thrown && normal)

let test_interp_throw_site () =
  let program = parse_src throw_src in
  let rec go seed =
    if seed > 50 then Alcotest.fail "no seed triggered the throw"
    else
      match (Interp.run ~config:(Interp.default_config ~seed) program)
              .Interp.exit_
      with
      | Interp.Exit_uncaught { exn_class; throw_at = Some at } ->
          Alcotest.(check string) "exception class" "AppError" exn_class;
          Alcotest.(check int) "throw line" 5 at.Jir.Ast.line
      | _ -> go (seed + 1)
  in
  go 1

let test_interp_catch () =
  let program =
    parse_src
      {|
class Main {
  void main(int argc) {
    try {
      throw new AppError();
    } catch (AppError e) {
      argc = 0;
    }
    return;
  }
}
entry Main.main;
|}
  in
  let out = Interp.run ~config:(Interp.default_config ~seed:1) program in
  Alcotest.(check bool) "caught throw exits normally" true
    (out.Interp.exit_ = Interp.Exit_normal)

let test_interp_fuel () =
  let program =
    parse_src
      {|
class Main {
  void main(int argc) {
    int x = 0;
    while (x < 1) {
      argc = argc + 1;
    }
    return;
  }
}
entry Main.main;
|}
  in
  let config = { (Interp.default_config ~seed:1) with Interp.fuel = 500 } in
  let out = Interp.run ~config program in
  Alcotest.(check bool) "runaway loop hits the fuel bound" true
    (out.Interp.exit_ = Interp.Exit_fuel)

let test_interp_event_trace () =
  (* a socket opened and closed: exactly the open/close library calls
     land on the object's trace, in order *)
  let program =
    parse_src
      {|
class Main {
  void main(int argc) {
    Socket s = new Socket();
    s.connect();
    s.close();
    return;
  }
}
entry Main.main;
|}
  in
  let out = Interp.run ~config:(Interp.default_config ~seed:1) program in
  match out.Interp.objects with
  | [ o ] ->
      let names =
        List.rev_map
          (fun (e : Interp.event) ->
            match e.Interp.ev_kind with
            | Interp.Ecall c -> c.Jir.Ast.mname
            | Interp.Estore _ -> "<store>"
            | Interp.Ereturn _ -> "<return>")
          o.Interp.o_events
      in
      Alcotest.(check (list string)) "event trace" [ "connect"; "close" ]
        names
  | objs ->
      Alcotest.failf "expected one allocation, got %d" (List.length objs)

(* ---------------- corpus replay ---------------- *)

let test_corpus_present () =
  let files = corpus_files () in
  Alcotest.(check bool)
    (Printf.sprintf "at least 10 corpus programs (found %d)"
       (List.length files))
    true
    (List.length files >= 10)

let replay path () =
  let program = parse_file path in
  let h = Fuzz.check_program ~runs:6 ~seed:1 program in
  let n_reports =
    List.fold_left (fun n (_, rs) -> n + List.length rs) 0 h.Fuzz.h_reports
  in
  Alcotest.(check bool)
    (path ^ ": pipeline reports the planted bug")
    true (n_reports > 0);
  List.iter
    (fun v ->
      Alcotest.failf "%s: false negative: %s" path
        (Oracle.violation_to_string v))
    h.Fuzz.h_uncovered;
  List.iter
    (fun (r, reason) ->
      Alcotest.failf "%s: invalid report from %s: %s" path
        r.Grapple.Report.checker reason)
    h.Fuzz.h_invalid

let test_corpus_concrete_violations () =
  (* in aggregate the corpus must exercise the concrete side too:
     replay is vacuous if no minimized program ever reaches a bad state
     under the interpreter *)
  let total =
    List.fold_left
      (fun n path ->
        let h = Fuzz.check_program ~runs:6 ~seed:1 (parse_file path) in
        n + List.length h.Fuzz.h_violations)
      0 (corpus_files ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "corpus exhibits concrete violations (saw %d)" total)
    true (total > 0)

(* ---------------- live fuzzing ---------------- *)

let test_fuzz_smoke () =
  let r = Fuzz.run { Fuzz.default_config with Fuzz.iters = 10 } in
  List.iter
    (fun (f : Fuzz.failure) ->
      Alcotest.failf "iter %d (seed %d): %s" f.Fuzz.f_iter f.Fuzz.f_seed
        f.Fuzz.f_summary)
    r.Fuzz.failures;
  Alcotest.(check bool) "confronted concrete violations" true
    (r.Fuzz.violations_seen > 0);
  Alcotest.(check bool) "confronted static reports" true
    (r.Fuzz.reports_seen > 0)

let test_weakened_tier tier () =
  (* drop one triage tier and the harness must catch the resulting
     false negatives within a few iterations *)
  let r =
    Fuzz.run
      { Fuzz.default_config with
        Fuzz.iters = 15;
        weaken_tier = Some tier;
        shrink_checks = 20 }
  in
  Alcotest.(check bool)
    (Printf.sprintf "weakened %s tier caught as FN (%d failure(s))" tier
       (List.length r.Fuzz.failures))
    true
    (r.Fuzz.failures <> []);
  List.iter
    (fun (f : Fuzz.failure) ->
      Alcotest.(check bool)
        "counterexample was minimized to a parseable program" true
        (Jir.Pp.program_to_string f.Fuzz.f_program <> ""))
    r.Fuzz.failures

let suite =
  [ Alcotest.test_case "interp: deterministic per seed" `Quick
      test_interp_deterministic;
    Alcotest.test_case "interp: uncaught throw site" `Quick
      test_interp_throw_site;
    Alcotest.test_case "interp: catch dispatch" `Quick test_interp_catch;
    Alcotest.test_case "interp: fuel bound" `Quick test_interp_fuel;
    Alcotest.test_case "interp: library-call event trace" `Quick
      test_interp_event_trace;
    Alcotest.test_case "corpus: at least 10 programs" `Quick
      test_corpus_present ]
  @ List.map
      (fun path ->
        Alcotest.test_case ("replay " ^ Filename.basename path) `Quick
          (replay path))
      (corpus_files ())
  @ [ Alcotest.test_case "corpus: concrete violations exercised" `Quick
        test_corpus_concrete_violations;
      Alcotest.test_case "fuzz: 10-iteration smoke run is clean" `Quick
        test_fuzz_smoke;
      Alcotest.test_case "fuzz: weakened escape tier caught" `Slow
        (test_weakened_tier "escape");
      Alcotest.test_case "fuzz: weakened summary tier caught" `Slow
        (test_weakened_tier "summary");
      Alcotest.test_case "fuzz: weakened alias tier caught" `Slow
        (test_weakened_tier "alias") ]
