(* Tests for the interprocedural layer (ISSUE 2): SCC condensation order,
   FSM transfer relations, the summary-based bottom-up solver, the
   whole-program lints, and the pipeline's summary pre-filter. *)

let parse src = Jir.Resolve.parse_exn src

let fresh_workdir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "grapple-test-interproc-%d-%d" (Unix.getpid ()) !counter)

(* ---------------- SCC condensation ---------------- *)

let chain_src = {|
class B { void g(int p) { return; } }
class A { void f(int p) { B.g(p); return; } }
class Main { void main(int p) { A.f(p); return; } }
entry Main.main;
|}

let test_sccs_chain () =
  let cg = Jir.Callgraph.build (parse chain_src) in
  let sccs = Jir.Callgraph.sccs_reverse_topological cg in
  Alcotest.(check bool) "all components singleton" true
    (List.for_all (fun c -> List.length c = 1) sccs);
  let order = List.concat sccs in
  let pos x =
    match List.find_index (( = ) x) order with
    | Some i -> i
    | None -> Alcotest.fail ("missing from order: " ^ x)
  in
  Alcotest.(check bool) "callee before caller (B.g < A.f)" true
    (pos "B.g" < pos "A.f");
  Alcotest.(check bool) "callee before caller (A.f < Main.main)" true
    (pos "A.f" < pos "Main.main")

let mutual_src = {|
class B { void g(int p) { A.f(p); return; } }
class A { void f(int p) { if (p > 0) { B.g(p); } return; } }
class Main { void main(int p) { A.f(p); return; } }
entry Main.main;
|}

let test_sccs_mutual_recursion () =
  let cg = Jir.Callgraph.build (parse mutual_src) in
  let sccs = Jir.Callgraph.sccs_reverse_topological cg in
  let cycle =
    match List.find_opt (fun c -> List.mem "A.f" c) sccs with
    | Some c -> c
    | None -> Alcotest.fail "A.f not in any component"
  in
  Alcotest.(check bool) "A.f and B.g share a component" true
    (List.mem "B.g" cycle);
  let main_pos =
    match List.find_index (fun c -> List.mem "Main.main" c) sccs with
    | Some i -> i
    | None -> Alcotest.fail "Main.main not in any component"
  in
  let cycle_pos =
    match List.find_index (fun c -> List.mem "A.f" c) sccs with
    | Some i -> i
    | None -> assert false
  in
  Alcotest.(check bool) "cycle component precedes its caller" true
    (cycle_pos < main_pos)

let test_sccs_self_recursion () =
  let cg =
    Jir.Callgraph.build
      (parse {|
class H { void rec(int n) { if (n > 0) { H.rec(n - 1); } return; } }
class Main { void main(int p) { H.rec(p); return; } }
entry Main.main;
|})
  in
  let sccs = Jir.Callgraph.sccs_reverse_topological cg in
  Alcotest.(check bool) "self-recursive method is its own component" true
    (List.mem [ "H.rec" ] sccs)

(* ---------------- FSM transfer relations ---------------- *)

let io = Checkers.Specs.io_fsm ()

let state name =
  let rec go i =
    if i >= Fsm.n_states io then Alcotest.fail ("no state " ^ name)
    else if Fsm.state_name io i = name then i
    else go (i + 1)
  in
  go 0

let states_of rel from =
  let v = Array.make (Fsm.n_states io) false in
  v.(from) <- true;
  let img = Fsm.rel_apply rel v in
  List.filter (fun s -> img.(s)) (List.init (Fsm.n_states io) Fun.id)
  |> List.map (Fsm.state_name io)
  |> List.sort compare

let test_rel_compose_apply () =
  let write = Fsm.rel_of_event io "write" in
  let close = Fsm.rel_of_event io "close" in
  Alcotest.(check (list string)) "write keeps Open open" [ "Open" ]
    (states_of write (state "Open"));
  Alcotest.(check (list string)) "write; close closes" [ "Closed" ]
    (states_of (Fsm.rel_compose write close) (state "Open"));
  Alcotest.(check (list string)) "close; write errs" [ "Error" ]
    (states_of (Fsm.rel_compose close write) (state "Open"));
  let joined = Fsm.rel_join (Fsm.rel_identity io) close in
  Alcotest.(check (list string)) "join keeps both outcomes"
    [ "Closed"; "Open" ]
    (states_of joined (state "Open"))

let test_rel_universal_and_leq () =
  let u = Fsm.rel_universal io in
  Alcotest.(check bool) "identity below universal" true
    (Fsm.rel_leq (Fsm.rel_identity io) u);
  Alcotest.(check bool) "any event below universal" true
    (Fsm.rel_leq (Fsm.rel_of_event io "close") u);
  Alcotest.(check bool) "universal not below identity" false
    (Fsm.rel_leq u (Fsm.rel_identity io))

(* ---------------- summary fixpoints ---------------- *)

let rec_close_src = {|
class H {
  void rec(FileWriter f, int n) {
    if (n > 0) {
      H.rec(f, n - 1);
    } else {
      f.close();
    }
    return;
  }
}
class Main {
  void main(int p) {
    FileWriter w = new FileWriter();
    H.rec(w, p);
    return;
  }
}
entry Main.main;
|}

let test_summary_recursive_fixpoint () =
  let r = Analysis.Summaries.analyze io (parse rec_close_src) in
  Alcotest.(check bool) "recursive component iterated" true
    (r.Analysis.Summaries.n_scc_iterations
     > List.length (Hashtbl.fold (fun k _ acc -> k :: acc) r.Analysis.Summaries.summaries []));
  let s = Hashtbl.find r.Analysis.Summaries.summaries "H.rec" in
  let ps = s.Analysis.Summaries.s_params.(0) in
  Alcotest.(check (list string)) "every path through rec closes" [ "Closed" ]
    (states_of ps.Analysis.Summaries.ps_rel (state "Open"));
  (* the allocation in Main is closed on every path and never escapes *)
  Alcotest.(check int) "alloc proved clean" 1
    (List.length (Analysis.Summaries.clean_sids r))

(* ---------------- interprocedural nullness ---------------- *)

let null_ret_src = {|
class H {
  FileWriter mk(int n) {
    FileWriter r = null;
    return r;
  }
}
class Main {
  void main(int p) {
    FileWriter w = H.mk(p);
    w.write(1);
    return;
  }
}
entry Main.main;
|}

let lints ds = List.map (fun d -> d.Analysis.Lint.lint) ds

let test_interproc_null_via_return () =
  let program = parse null_ret_src in
  Alcotest.(check (list string)) "summary lint sees the flow"
    [ "interproc-null" ]
    (lints (Analysis.Interproc.null_diags program));
  (* the acceptance criterion: the intraprocedural lints miss this bug *)
  Alcotest.(check bool) "intraprocedural linter is blind to it" true
    (not (List.mem "null-deref"
            (lints (Analysis.Lint.check_program program))))

let test_interproc_null_via_param () =
  let program =
    parse {|
class H { void use(FileWriter f) { f.write(1); return; } }
class Main {
  void main(int p) {
    FileWriter w = null;
    H.use(w);
    return;
  }
}
entry Main.main;
|}
  in
  Alcotest.(check (list string)) "null argument into a dereferencing callee"
    [ "interproc-null" ]
    (lints (Analysis.Interproc.null_diags program))

let test_interproc_null_negative () =
  let program =
    parse {|
class H {
  FileWriter mk(int n) {
    FileWriter r = new FileWriter();
    return r;
  }
}
class Main {
  void main(int p) {
    FileWriter w = H.mk(p);
    w.write(1);
    w.close();
    return;
  }
}
entry Main.main;
|}
  in
  Alcotest.(check (list string)) "non-null return stays quiet" []
    (lints (Analysis.Interproc.null_diags program))

(* ---------------- the interproc-leak lint ---------------- *)

let leak_src = {|
class H {
  FileWriter openLog(int n) {
    FileWriter hw = new FileWriter();
    return hw;
  }
}
class Main {
  void main(int p) {
    FileWriter w = H.openLog(p);
    w.write(p);
    return;
  }
}
entry Main.main;
|}

let test_interproc_leak_positive () =
  match Analysis.Summaries.leak_diags [ io ] (parse leak_src) with
  | [ d ] ->
      Alcotest.(check string) "lint slug" "interproc-leak" d.Analysis.Lint.lint;
      Alcotest.(check int) "reported at the helper's allocation" 4
        d.Analysis.Lint.at.Jir.Ast.line
  | ds ->
      Alcotest.fail
        (Printf.sprintf "expected one leak diag, got %d" (List.length ds))

let test_interproc_leak_negative_closed () =
  let program =
    parse {|
class H {
  FileWriter openLog(int n) {
    FileWriter hw = new FileWriter();
    return hw;
  }
}
class Main {
  void main(int p) {
    FileWriter w = H.openLog(p);
    w.write(p);
    w.close();
    return;
  }
}
entry Main.main;
|}
  in
  Alcotest.(check int) "closed on every path: no lint" 0
    (List.length (Analysis.Summaries.leak_diags [ io ] program))

let test_interproc_leak_branch_is_may_not_must () =
  (* close skipped on one branch: the engine reports this (a may-leak with
     a feasible witness), the all-paths lint must not *)
  let program =
    parse {|
class Main {
  void main(int p) {
    FileWriter w = new FileWriter();
    w.write(p);
    if (p > 10) {
      w.close();
    }
    return;
  }
}
entry Main.main;
|}
  in
  Alcotest.(check int) "may-leak is not must-leak" 0
    (List.length (Analysis.Summaries.leak_diags [ io ] program))

(* ---------------- pipeline summary pre-filter ---------------- *)

let run_pipeline ?(summary_prefilter = true) src =
  let program = parse src in
  let workdir = fresh_workdir () in
  let fsm = Checkers.Specs.io_fsm () in
  let config =
    { (Grapple.Pipeline.default_config ~workdir) with
      Grapple.Pipeline.library_throwers = Checkers.Specs.library_throwers;
      prefilter_properties = [ fsm ];
      summary_prefilter }
  in
  let prepared = Grapple.Pipeline.prepare ~config ~workdir program in
  let pr = Grapple.Pipeline.check_property prepared fsm in
  let stats = Grapple.Pipeline.stats prepared [ pr ] in
  (stats, pr.Grapple.Pipeline.reports)

(* helper-created, helper-written, caller-closed: escapes its method (so the
   escape filter cannot touch it) but provably clean interprocedurally *)
let clean_via_helper_src = {|
class H {
  FileWriter mk(int n) {
    FileWriter hw = new FileWriter();
    hw.write(n);
    return hw;
  }
}
class Main {
  void main(int p) {
    FileWriter w = H.mk(p);
    w.close();
    return;
  }
}
entry Main.main;
|}

let report_sig (rs : Grapple.Report.t list) =
  List.map
    (fun (r : Grapple.Report.t) ->
      Grapple.Report.to_string r)
    rs
  |> List.sort compare

let test_summary_prefilter_prunes_beyond_escape () =
  let s_on, r_on = run_pipeline clean_via_helper_src in
  let s_off, r_off =
    run_pipeline ~summary_prefilter:false clean_via_helper_src
  in
  Alcotest.(check int) "escape filter cannot catch it" 0
    s_on.Grapple.Pipeline.n_prefiltered;
  Alcotest.(check int) "summary filter prunes the allocation" 1
    s_on.Grapple.Pipeline.n_summary_pruned;
  Alcotest.(check int) "hatch disables it" 0
    s_off.Grapple.Pipeline.n_summary_pruned;
  Alcotest.(check (list string)) "reports identical either way"
    (report_sig r_off) (report_sig r_on);
  Alcotest.(check (list string)) "and there are none" [] (report_sig r_on);
  Alcotest.(check bool) "graphs shrink" true
    (s_on.Grapple.Pipeline.n_vertices < s_off.Grapple.Pipeline.n_vertices)

let test_summary_prefilter_keeps_buggy_alloc () =
  let s_on, r_on = run_pipeline leak_src in
  let _, r_off = run_pipeline ~summary_prefilter:false leak_src in
  Alcotest.(check int) "leaking allocation not pruned" 0
    s_on.Grapple.Pipeline.n_summary_pruned;
  Alcotest.(check (list string)) "leak reported identically"
    (report_sig r_off) (report_sig r_on);
  Alcotest.(check bool) "there is a leak report" true (r_on <> [])

(* ---------------- determinism ---------------- *)

let test_summaries_deterministic () =
  let subject () = (Workload.Generator.mini_hadoop ()).Workload.Generator.program in
  let render p = Analysis.Summaries.render (Analysis.Summaries.analyze io p) in
  let a = render (subject ()) in
  let b = render (subject ()) in
  Alcotest.(check bool) "summaries and facts byte-identical" true (a = b);
  let s1, _ = run_pipeline clean_via_helper_src in
  let s2, _ = run_pipeline clean_via_helper_src in
  Alcotest.(check int) "n_summary_pruned stable across runs"
    s1.Grapple.Pipeline.n_summary_pruned s2.Grapple.Pipeline.n_summary_pruned

(* workload integration: the generated subjects carry interproc-null and
   interproc-leak expectations that only the --interproc lints satisfy *)
let test_workload_interproc_expectations () =
  let s = Workload.Generator.mini_hadoop () in
  let program = s.Workload.Generator.program in
  let diags =
    Analysis.Summaries.interproc_diags ~fsms:(Checkers.fsms ()) program
  in
  let ls =
    Workload.Scoring.score_lints ~checker:"interproc"
      ~expected:s.Workload.Generator.expected diags
  in
  Alcotest.(check bool) "planted interprocedural bugs found" true
    (ls.Workload.Scoring.ltp >= 1);
  Alcotest.(check int) "no misses" 0 ls.Workload.Scoring.lfn;
  Alcotest.(check int) "no false positives" 0 ls.Workload.Scoring.lfp;
  (* the same expectations are invisible to the intraprocedural linter *)
  let intra = Analysis.Lint.check_program program in
  let ls_intra =
    Workload.Scoring.score_lints ~checker:"interproc"
      ~expected:s.Workload.Generator.expected intra
  in
  Alcotest.(check int) "intraprocedural lints find none of them" 0
    ls_intra.Workload.Scoring.ltp

let suite =
  [ Alcotest.test_case "sccs chain order" `Quick test_sccs_chain;
    Alcotest.test_case "sccs mutual recursion" `Quick
      test_sccs_mutual_recursion;
    Alcotest.test_case "sccs self recursion" `Quick test_sccs_self_recursion;
    Alcotest.test_case "rel compose apply" `Quick test_rel_compose_apply;
    Alcotest.test_case "rel universal leq" `Quick test_rel_universal_and_leq;
    Alcotest.test_case "summary recursive fixpoint" `Quick
      test_summary_recursive_fixpoint;
    Alcotest.test_case "interproc null via return" `Quick
      test_interproc_null_via_return;
    Alcotest.test_case "interproc null via param" `Quick
      test_interproc_null_via_param;
    Alcotest.test_case "interproc null negative" `Quick
      test_interproc_null_negative;
    Alcotest.test_case "interproc leak positive" `Quick
      test_interproc_leak_positive;
    Alcotest.test_case "interproc leak negative" `Quick
      test_interproc_leak_negative_closed;
    Alcotest.test_case "interproc leak may not must" `Quick
      test_interproc_leak_branch_is_may_not_must;
    Alcotest.test_case "summary prefilter prunes beyond escape" `Quick
      test_summary_prefilter_prunes_beyond_escape;
    Alcotest.test_case "summary prefilter keeps buggy alloc" `Quick
      test_summary_prefilter_keeps_buggy_alloc;
    Alcotest.test_case "summaries deterministic" `Quick
      test_summaries_deterministic;
    Alcotest.test_case "workload interproc expectations" `Quick
      test_workload_interproc_expectations ]
