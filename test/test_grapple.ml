(* Test driver: every library has a suite; `dune runtest` runs them all.

   GRAPPLE_FAULT_PLAN (same syntax as `grapple check --fault-plan`) installs
   a deterministic fault plan for the whole run, so CI can re-run the
   pipeline suite under injected storage faults and assert that every test
   still passes with identical warnings. *)

let () =
  (match Sys.getenv_opt "GRAPPLE_FAULT_PLAN" with
  | Some spec when String.trim spec <> "" ->
      Engine.Faults.install (Engine.Faults.parse spec)
  | _ -> ());
  (* the shard suite must run FIRST: it forks worker processes, and
     Unix.fork refuses to run in a process that has ever created a domain
     (OCaml 5), which several later suites do (solver fan-out, the domain
     scheduler).  Alcotest runs suites in list order. *)
  Alcotest.run "grapple"
    [ ("shard", Suite_shard.suite);
      ("smt", Suite_smt.suite);
      ("jir", Suite_jir.suite);
      ("encoding", Suite_encoding.suite);
      ("symexec", Suite_symexec.suite);
      ("grammar", Suite_grammar.suite);
      ("obs", Suite_obs.suite);
      ("lru", Suite_lru.suite);
      ("engine", Suite_engine.suite);
      ("storage", Suite_storage.suite);
      ("fsm", Suite_fsm.suite);
      ("graphgen", Suite_graphgen.suite);
      ("analysis", Suite_analysis.suite);
      ("interproc", Suite_interproc.suite);
      ("pipeline", Suite_pipeline.suite);
      ("faults", Suite_faults.suite);
      ("parallel", Suite_parallel.suite);
      ("workload", Suite_workload.suite);
      ("spec", Suite_spec.suite);
      ("baseline", Suite_baseline.suite);
      ("pointsto", Suite_pointsto.suite);
      ("soundness", Suite_soundness.suite) ]
