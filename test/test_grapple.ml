(* Test driver: every library has a suite; `dune runtest` runs them all. *)

let () =
  Alcotest.run "grapple"
    [ ("smt", Suite_smt.suite);
      ("jir", Suite_jir.suite);
      ("encoding", Suite_encoding.suite);
      ("symexec", Suite_symexec.suite);
      ("grammar", Suite_grammar.suite);
      ("engine", Suite_engine.suite);
      ("fsm", Suite_fsm.suite);
      ("graphgen", Suite_graphgen.suite);
      ("analysis", Suite_analysis.suite);
      ("interproc", Suite_interproc.suite);
      ("pipeline", Suite_pipeline.suite);
      ("workload", Suite_workload.suite);
      ("baseline", Suite_baseline.suite) ]
