(* Tests for the flat int-packed edge representation (ISSUE 10): codec
   round-trips over random edges including max-width fields, torn-tail
   recovery, the [edges_added] accounting fix, a worked-example differential
   against the naive in-memory closure, and corpus replay through the new
   representation. *)

module E = Pathenc.Encoding
module Pg = Cfl.Pointer_grammar
module S = Engine.Storage
module AEngine = Engine.Make (Cfl.Pointer_grammar)

let fresh_workdir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "grapple-test-flat-%d-%d" (Unix.getpid ()) !counter)
    in
    Engine.ensure_dir dir;
    dir

let read_bytes path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---------------- flat codec properties ---------------- *)

let gen_enc =
  let open QCheck in
  let elem =
    Gen.frequency
      [ (6,
         Gen.map2
           (fun meth (a, b) ->
             E.Interval { meth; first = min a b; last = max a b })
           (Gen.int_bound 3)
           (Gen.pair (Gen.int_bound 30) (Gen.int_bound 30)));
        (2, Gen.map (fun i -> E.Call i) (Gen.int_bound 50));
        (2, Gen.map (fun i -> E.Ret i) (Gen.int_bound 50)) ]
  in
  Gen.list_size (Gen.int_range 0 4) elem

(* vertices and labels exercise the full 63-bit word: the format stores
   them as little-endian int64 fields, so huge field ids and vertex ids
   must survive unchanged *)
let gen_vertex =
  QCheck.Gen.frequency
    [ (4, QCheck.Gen.int_bound 60);
      (1, QCheck.Gen.map (fun n -> n land max_int) QCheck.Gen.int) ]

let gen_label =
  let open QCheck in
  Gen.frequency
    [ (3,
       Gen.map Pg.to_int
         (Gen.oneofl [ Pg.New; Pg.Assign; Pg.Flows_to; Pg.Flows_to_bar; Pg.Alias ]));
      (2,
       (* max-width field ids: [Store f] packs f into the bits above the
          4-bit tag, so codes reach all the way up the word *)
       Gen.map
         (fun f -> Pg.to_int (Pg.Store (f land ((1 lsl 58) - 1))))
         Gen.int);
      (1, Gen.map (fun n -> n land max_int) Gen.int) ]

let gen_edge =
  QCheck.Gen.map3
    (fun src dst (label, enc) -> { S.src; dst; label; enc })
    gen_vertex gen_vertex
    (QCheck.Gen.pair gen_label gen_enc)

let pr_edge (e : S.raw_edge) =
  Printf.sprintf "%d-%d->%d/%s" e.S.src e.S.label e.S.dst (E.to_string e.S.enc)

let pr_edges es = String.concat "; " (List.map pr_edge es)

let prop_path =
  let dir = lazy (fresh_workdir ()) in
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Lazy.force dir) (Printf.sprintf "prop-%d.edges" !counter)

let prop_flat_roundtrip =
  QCheck.Test.make ~name:"flat codec roundtrip incl. max-width fields"
    ~count:150
    (QCheck.make
       ~print:(fun (cap, es) -> Printf.sprintf "cap=%d [%s]" cap (pr_edges es))
       (QCheck.Gen.pair (QCheck.Gen.int_range 1 6)
          (QCheck.Gen.list_size (QCheck.Gen.int_range 0 20) gen_edge)))
    (fun (cap, edges) ->
      let path = prop_path () in
      let (_ : int) = S.write_file ~block_cap:cap ~path edges in
      let out = S.read_file ~path in
      out.S.corrupt = None && out.S.edges = edges)

let rec is_prefix shorter longer =
  match (shorter, longer) with
  | [], _ -> true
  | x :: a, y :: b -> x = y && is_prefix a b
  | _ :: _, [] -> false

(* chopping any number of trailing bytes must never invent or corrupt an
   edge: the reader returns an intact prefix, and unless the cut landed
   exactly on a block boundary it also reports the damage *)
let prop_flat_torn_tail =
  QCheck.Test.make ~name:"flat codec torn-tail recovery" ~count:150
    (QCheck.make
       ~print:(fun (cap, es, cut) ->
         Printf.sprintf "cap=%d cut=%d [%s]" cap cut (pr_edges es))
       (QCheck.Gen.triple (QCheck.Gen.int_range 1 3)
          (QCheck.Gen.list_size (QCheck.Gen.int_range 1 15) gen_edge)
          (QCheck.Gen.int_bound 1_000_000)))
    (fun (cap, edges, cut) ->
      let path = prop_path () in
      let (_ : int) = S.write_file ~block_cap:cap ~path edges in
      let bytes = read_bytes path in
      let len = String.length bytes in
      let k = 1 + (cut mod (len - 1)) in
      let oc = open_out_bin path in
      output_string oc (String.sub bytes 0 (len - k));
      close_out oc;
      let out = S.read_file ~path in
      is_prefix out.S.edges edges
      && (out.S.corrupt <> None
         || List.length out.S.edges < List.length edges))

let test_flat_extreme_fields () =
  let dir = fresh_workdir () in
  let path = Filename.concat dir "extreme.edges" in
  let wide = (1 lsl 58) - 1 in
  let iv = [ E.Interval { meth = 0; first = 0; last = 0 } ] in
  let edges =
    [ { S.src = max_int; dst = 0; label = Pg.to_int (Pg.Store wide); enc = iv };
      { S.src = 0; dst = max_int; label = Pg.to_int (Pg.Load wide); enc = [] };
      { S.src = 1; dst = 2; label = max_int; enc = [ E.Call 3 ] } ]
  in
  let (_ : int) = S.write_file ~path edges in
  let out = S.read_file ~path in
  Alcotest.(check bool) "intact" true (out.S.corrupt = None);
  Alcotest.(check bool) "identical" true (out.S.edges = edges);
  (* the label codec itself must also survive the width *)
  List.iter
    (fun l ->
      Alcotest.(check bool) (Pg.to_string l ^ " code roundtrip") true
        (Pg.of_int (Pg.to_int l) = l))
    [ Pg.Store wide; Pg.Load wide; Pg.Ft_store wide; Pg.Ft_st_al wide ]

(* ---------------- edges_added accounting ---------------- *)

let true_decode (_ : E.t) = Smt.Formula.True

let test_edges_added_hand_counted () =
  (* o --new--> v1 --assign--> v2, closed under the pointer grammar.

     [preprocess] closes the seeds {New(o,v1), Assign(v1,v2)} under
     unary/mirror, giving FlowsTo(o,v1) and FlowsToBar(v1,o) — none of
     which count.  The run then derives exactly six new facts, each with a
     single witness encoding:

       FlowsTo(o,v2), FlowsToBar(v2,o),
       Alias(v1,v1), Alias(v1,v2), Alias(v2,v1), Alias(v2,v2)

     so [edges_added] must read exactly 6 — once per landed edge, at any
     partition count.  Regression for the route/add_new double-count, which
     inflated the counter whenever an edge crossed partitions. *)
  List.iter
    (fun parts ->
      let workdir = fresh_workdir () in
      let config =
        { (Engine.default_config ~workdir) with
          Engine.target_partitions = parts }
      in
      let t = AEngine.create ~config ~decode:true_decode ~workdir () in
      let iv = [ E.Interval { meth = 0; first = 0; last = 0 } ] in
      AEngine.add_seed t ~src:0 ~dst:1 ~label:Pg.New ~enc:iv;
      AEngine.add_seed t ~src:1 ~dst:2 ~label:Pg.Assign ~enc:iv;
      AEngine.run t;
      let facts =
        AEngine.fold_edges t
          (fun acc e ->
            (e.AEngine.src, e.AEngine.dst, Pg.to_int e.AEngine.label) :: acc)
          []
        |> List.sort_uniq compare
      in
      Alcotest.(check int)
        (Printf.sprintf "total facts (parts=%d)" parts)
        10 (List.length facts);
      Alcotest.(check int)
        (Printf.sprintf "edges added (parts=%d)" parts)
        6
        (Engine.Metrics.count
           (AEngine.metrics t).Engine.Metrics.edges_added))
    [ 1; 8 ]

(* ---------------- worked example vs. naive closure ---------------- *)

let test_example_matches_reference () =
  (* the paper's store/load worked example (h1 = new H; w = new W;
     h1.f = w; h2 = h1; u = h2.f), forced through small partitions so the
     semi-naive delta join crosses partition pairs, compared fact-for-fact
     against the naive in-memory closure *)
  let seeds =
    [ (0, 1, Pg.New); (2, 3, Pg.New); (3, 1, Pg.Store 9); (1, 4, Pg.Assign);
      (4, 5, Pg.Load 9) ]
  in
  let workdir = fresh_workdir () in
  let config =
    { (Engine.default_config ~workdir) with
      Engine.target_partitions = 3;
      max_edges_per_partition = 4;
      max_encodings_per_key = 1;
      max_path_elements = 0 }
  in
  let t = AEngine.create ~config ~decode:true_decode ~workdir () in
  List.iter
    (fun (src, dst, label) ->
      AEngine.add_seed t ~src ~dst ~label
        ~enc:[ E.Interval { meth = 0; first = 0; last = 0 } ])
    seeds;
  AEngine.run t;
  let engine_facts =
    AEngine.fold_edges t
      (fun acc e ->
        (e.AEngine.src, e.AEngine.dst, Pg.to_int e.AEngine.label) :: acc)
      []
    |> List.sort_uniq compare
  in
  Alcotest.(check (list (triple int int int)))
    "fact set matches the naive closure"
    (Suite_engine.reference_closure seeds)
    engine_facts;
  (* sanity: the example's point — the W object flows through the heap
     into u — is among the facts *)
  Alcotest.(check bool) "w flows to u" true
    (List.mem (2, 5, Pg.to_int Pg.Flows_to) engine_facts)

(* ---------------- corpus replay ---------------- *)

let corpus_dir =
  Filename.concat (Filename.dirname Sys.executable_name) "corpus"

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".jir")
  |> List.sort compare
  |> List.map (Filename.concat corpus_dir)

let rec edge_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.concat_map (fun f ->
         let p = Filename.concat dir f in
         if Sys.is_directory p then edge_files p
         else if Filename.check_suffix p ".edges" then [ p ]
         else [])

let run_corpus ~parts path =
  let program =
    Jir.Resolve.parse_exn ~file:(Filename.basename path) (read_bytes path)
  in
  let workdir = fresh_workdir () in
  let config =
    { (Grapple.Pipeline.default_config ~workdir) with
      Grapple.Pipeline.library_throwers = Checkers.Specs.library_throwers }
  in
  let config =
    { config with
      Grapple.Pipeline.engine =
        { config.Grapple.Pipeline.engine with
          Engine.target_partitions = parts } }
  in
  let prepared = Grapple.Pipeline.prepare ~config ~workdir program in
  let results, _props = Checkers.run_all prepared (Checkers.all ()) in
  let reports =
    List.concat_map
      (fun (name, rs) ->
        List.map (fun r -> name ^ ": " ^ Grapple.Report.to_string r) rs)
      results
    |> List.sort compare
  in
  (workdir, reports)

let test_corpus_replay () =
  (* every minimized program in the corpus goes through the full pipeline
     on the flat representation: the partition files it leaves behind must
     re-read losslessly and re-serialize byte-identically, and the warnings
     must not depend on the partition count *)
  let saw_partition_files = ref false in
  List.iter
    (fun path ->
      let workdir, reports = run_corpus ~parts:2 path in
      List.iter
        (fun f ->
          let out = S.read_flat ~path:f in
          (match out.S.corrupt with
          | Some c ->
              Alcotest.failf "%s: %s corrupt: %s" (Filename.basename path) f
                (Fmt.str "%a" S.pp_corruption c)
          | None -> ());
          saw_partition_files := true;
          let rt = f ^ ".rt" in
          let (_ : int) = S.write_flat ~path:rt out.S.buf in
          Alcotest.(check bool)
            (Filename.basename path ^ ": " ^ Filename.basename f
           ^ " re-serializes byte-identically")
            true
            (read_bytes rt = read_bytes f))
        (edge_files workdir);
      let _, reports' = run_corpus ~parts:5 path in
      Alcotest.(check (list string))
        (Filename.basename path ^ ": warnings stable across partitioning")
        reports reports')
    (corpus_files ());
  Alcotest.(check bool) "replay exercised partition files" true
    !saw_partition_files

let suite =
  [ QCheck_alcotest.to_alcotest prop_flat_roundtrip;
    QCheck_alcotest.to_alcotest prop_flat_torn_tail;
    Alcotest.test_case "extreme field widths" `Quick test_flat_extreme_fields;
    Alcotest.test_case "edges_added hand-counted" `Quick
      test_edges_added_hand_counted;
    Alcotest.test_case "worked example vs naive closure" `Quick
      test_example_matches_reference;
    Alcotest.test_case "corpus replay on the flat representation" `Quick
      test_corpus_replay ]
