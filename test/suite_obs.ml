(* Tests for the observability layer: registry semantics (kinds, histogram
   bucketing, canonical merge, deterministic JSON) and the tracer (span on
   raise, well-formed trace_event output, zero cost when off). *)

module R = Obs.Registry
module T = Obs.Trace

(* ---------------- registry ---------------- *)

let test_counter_gauge_basics () =
  let r = R.create () in
  let c = R.counter r "a.count" in
  R.incr c;
  R.incr ~by:4 c;
  Alcotest.(check int) "counter adds" 5 (R.value c);
  Alcotest.(check int) "find-or-create shares the cell" 5
    (R.value (R.counter r "a.count"));
  let g = R.gauge r "a.seconds" in
  R.gauge_add g 1.5;
  R.gauge_add g 0.25;
  Alcotest.(check (float 1e-9)) "gauge accumulates" 1.75 (R.gauge_value g)

let test_kind_clash_rejected () =
  let r = R.create () in
  ignore (R.counter r "x");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Obs.Registry: x already registered with another kind")
    (fun () -> ignore (R.gauge r "x"))

let test_histogram_buckets () =
  let r = R.create () in
  let h = R.histogram ~bounds:[| 1.; 10.; 100. |] r "h" in
  List.iter (R.observe h) [ 0.5; 1.; 7.; 50.; 1000. ];
  Alcotest.(check int) "count" 5 (R.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 1058.5 (R.hist_sum h);
  (* <=1, <=10, <=100, overflow *)
  Alcotest.(check (array int)) "bucket counts" [| 2; 1; 1; 1 |]
    (R.hist_counts h)

let test_merge_is_canonical () =
  (* build two source registries whose metrics were created in different
     orders, merge both ways interleaved, and demand identical JSON *)
  let mk order =
    let r = R.create () in
    List.iter
      (fun name -> R.incr ~by:(String.length name) (R.counter r name))
      order;
    R.gauge_add (R.gauge r "g.t") 0.5;
    r
  in
  let a = mk [ "zeta"; "alpha"; "mid" ] in
  let b = mk [ "mid"; "zeta"; "alpha"; "extra" ] in
  let m1 = R.create () in
  R.merge ~into:m1 a;
  R.merge ~into:m1 b;
  let m2 = R.create () in
  R.merge ~into:m2 b;
  R.merge ~into:m2 a;
  Alcotest.(check string) "merge order invisible" (R.to_json m1) (R.to_json m2);
  Alcotest.(check int) "counters added" 8
    (R.value (R.counter m1 "zeta"));
  Alcotest.(check int) "missing metrics created" 5
    (R.value (R.counter m1 "extra"));
  Alcotest.(check (float 1e-9)) "gauges added" 1.
    (R.gauge_value (R.gauge m1 "g.t"))

let test_merge_histograms () =
  let mk () =
    let r = R.create () in
    let h = R.histogram ~bounds:[| 2.; 4. |] r "h" in
    (r, h)
  in
  let ra, ha = mk () and rb, hb = mk () in
  R.observe ha 1.;
  R.observe hb 3.;
  R.observe hb 9.;
  let m = R.create () in
  R.merge ~into:m ra;
  R.merge ~into:m rb;
  let h = R.histogram ~bounds:[| 2.; 4. |] m "h" in
  Alcotest.(check int) "merged count" 3 (R.hist_count h);
  Alcotest.(check (array int)) "merged buckets" [| 1; 1; 1 |] (R.hist_counts h)

let test_json_shape () =
  let r = R.create () in
  R.incr ~by:2 (R.counter r "c");
  R.gauge_set (R.gauge r "g") 1.5;
  ignore (R.histogram ~bounds:[| 1. |] r "h");
  Alcotest.(check string) "deterministic dump"
    {|{"counters":{"c":2},"gauges":{"g":1.500000},"histograms":{"h":{"bounds":[1.0],"counts":[0,0],"count":0,"sum":0.0}}}|}
    (R.to_json r)

(* ---------------- tracer ---------------- *)

let with_trace f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "grapple-obs-%d.trace" (Unix.getpid ()))
  in
  T.start ~path;
  Fun.protect ~finally:(fun () -> T.stop ()) (fun () -> f ());
  T.stop ();
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  s

let test_span_recorded_on_raise () =
  let contents =
    with_trace (fun () ->
        try T.with_span "raising.span" (fun () -> raise Exit)
        with Exit -> ())
  in
  let has sub =
    let n = String.length sub and m = String.length contents in
    let rec go i = i + n <= m && (String.sub contents i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "span name present" true (has "raising.span");
  Alcotest.(check bool) "complete event" true (has "\"ph\":\"X\"");
  Alcotest.(check bool) "duration present" true (has "\"dur\":")

let test_trace_file_shape () =
  let contents =
    with_trace (fun () ->
        T.with_span ~args:[ ("k", T.Int 3) ] "outer" (fun () ->
            T.instant ~args:[ ("msg", T.Str "quoted \"x\"") ] "mark"))
  in
  let has sub =
    let n = String.length sub and m = String.length contents in
    let rec go i = i + n <= m && (String.sub contents i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "traceEvents wrapper" true
    (String.length contents > 16 && String.sub contents 0 16 = {|{"traceEvents":[|});
  Alcotest.(check bool) "instant event" true (has "\"ph\":\"i\"");
  Alcotest.(check bool) "args rendered" true (has "\"k\":3");
  Alcotest.(check bool) "strings escaped" true (has {|quoted \"x\"|});
  Alcotest.(check bool) "pid present" true (has "\"pid\":");
  Alcotest.(check bool) "tid present" true (has "\"tid\":")

let test_off_by_default () =
  (* with no trace started, instrumentation records nothing and the traced
     computation's value is untouched *)
  Alcotest.(check bool) "off" false (T.is_on ());
  let v = T.with_span "ignored" (fun () -> 42) in
  T.instant "ignored too";
  Alcotest.(check int) "value passes through" 42 v;
  Alcotest.(check int) "no events buffered" 0 (T.n_events ())

let suite =
  [ Alcotest.test_case "counter and gauge basics" `Quick
      test_counter_gauge_basics;
    Alcotest.test_case "kind clash rejected" `Quick test_kind_clash_rejected;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "merge is canonical" `Quick test_merge_is_canonical;
    Alcotest.test_case "merge histograms" `Quick test_merge_histograms;
    Alcotest.test_case "json shape" `Quick test_json_shape;
    Alcotest.test_case "span recorded on raise" `Quick
      test_span_recorded_on_raise;
    Alcotest.test_case "trace file shape" `Quick test_trace_file_shape;
    Alcotest.test_case "tracing off by default" `Quick test_off_by_default ]
