(* Tests for the fault-tolerance layer (ISSUE 3): crash-safe storage
   (atomic writes, checksummed records, typed corruption results),
   checkpoint/resume determinism, per-instance budgets with graceful
   degradation, retry counters, and the SMT round budget. *)

module E = Pathenc.Encoding
module Pg = Cfl.Pointer_grammar
module AEngine = Engine.Make (Cfl.Pointer_grammar)
module Faults = Engine.Faults
module Storage = Engine.Storage
module Manifest = Engine.Manifest

let fresh_workdir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "grapple-test-faults-%d-%d" (Unix.getpid ()) !counter)
    in
    Engine.ensure_dir dir;
    dir

(* Install [spec] for the duration of [f] only: a leaked plan would inject
   faults into every later test. *)
let with_plan spec f =
  Faults.install (Faults.parse spec);
  Fun.protect ~finally:Faults.clear f

let mk_edge ?(label = 0) src dst =
  { Storage.src; dst; label;
    enc = [ E.Interval { meth = 0; first = 0; last = src land 3 } ] }

let edges n = List.init n (fun i -> mk_edge i (i + 1))

let read_edges path = (Storage.read_file ~path).Storage.edges

(* ---------------- fault-plan parsing ---------------- *)

let test_plan_parse () =
  let p = Faults.parse "seed=42,rate=0.05,fail-write=3,crash-checkpoint=2" in
  Alcotest.(check int) "seed" 42 p.Faults.seed;
  Alcotest.(check int) "directives" 3 (List.length p.Faults.directives);
  Alcotest.check_raises "unknown key"
    (Invalid_argument "Faults.parse: unknown directive \"bogus\"") (fun () ->
      ignore (Faults.parse "bogus=1"));
  (match Faults.parse "rate=1.5" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rate out of range accepted")

(* ---------------- storage: torn and damaged files ---------------- *)

(* Byte offsets of every framed record (varint len | payload | varint sum)
   in a format-2 partition file; recovery granularity is one record. *)
let record_offsets (contents : string) : int list =
  let bytes = Bytes.of_string contents in
  let len = Bytes.length bytes in
  let pos = ref 0 in
  let offs = ref [] in
  while !pos < len do
    offs := !pos :: !offs;
    let plen = E.read_varint bytes pos in
    pos := !pos + plen;
    ignore (E.read_varint bytes pos)
  done;
  List.rev !offs

let test_read_truncated () =
  let dir = fresh_workdir () in
  let path = Filename.concat dir "t.edges" in
  let all = edges 3 in
  (* block_cap=1: one pool block per encoding, one edge block per edge, so
     damage granularity in this test is a single edge *)
  let bytes = Storage.write_file ~block_cap:1 ~path all in
  (* chop 2 bytes off the trailing edge block *)
  let contents = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub contents 0 (bytes - 2)));
  let outcome = Storage.read_file ~path in
  Alcotest.(check int) "valid prefix" 2 (List.length outcome.Storage.edges);
  Alcotest.(check bool) "prefix contents" true
    (outcome.Storage.edges = [ List.nth all 0; List.nth all 1 ]);
  (match outcome.Storage.corrupt with
  | Some (Storage.Truncated _) -> ()
  | other ->
      Alcotest.failf "expected Truncated, got %s"
        (match other with
        | None -> "None"
        | Some c -> Fmt.str "%a" Storage.pp_corruption c))

let test_read_corrupted () =
  let dir = fresh_workdir () in
  let path = Filename.concat dir "c.edges" in
  let all = edges 3 in
  let _ = Storage.write_file ~block_cap:1 ~path all in
  let contents = In_channel.with_open_bin path In_channel.input_all in
  (* the three distinct encodings and three edges give six records: pool
     blocks first, then edge blocks; flip one byte inside the *middle* edge
     block's payload *)
  let offs = record_offsets contents in
  Alcotest.(check int) "record layout" 6 (List.length offs);
  let target = List.nth offs 4 in
  let bytes = Bytes.of_string contents in
  let off = target + 4 (* past the length varint, tag, and count *) in
  Bytes.set bytes off (Char.chr (Char.code (Bytes.get bytes off) lxor 0xff));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc bytes);
  let outcome = Storage.read_file ~path in
  Alcotest.(check int) "valid prefix" 1 (List.length outcome.Storage.edges);
  Alcotest.(check bool) "prefix contents" true
    (outcome.Storage.edges = [ List.hd all ]);
  (match outcome.Storage.corrupt with
  | Some (Storage.Checksum_mismatch o) ->
      Alcotest.(check int) "damage offset" target o
  | other ->
      Alcotest.failf "expected Checksum_mismatch, got %s"
        (match other with
        | None -> "None"
        | Some c -> Fmt.str "%a" Storage.pp_corruption c))

(* ---------------- storage: crash-point matrix for atomic writes -------- *)

let test_crash_before_rename () =
  let dir = fresh_workdir () in
  let path = Filename.concat dir "a.edges" in
  let v1 = edges 2 in
  let _ = Storage.write_file ~path v1 in
  (match
     with_plan "crash-before-rename=1" (fun () ->
         Storage.write_file ~path (edges 5))
   with
  | _ -> Alcotest.fail "crash point did not fire"
  | exception Faults.Crash _ -> ());
  let outcome = Storage.read_file ~path in
  Alcotest.(check bool) "old contents intact" true (outcome.Storage.edges = v1);
  Alcotest.(check bool) "no corruption" true (outcome.Storage.corrupt = None)

let test_crash_after_rename () =
  let dir = fresh_workdir () in
  let path = Filename.concat dir "b.edges" in
  let _ = Storage.write_file ~path (edges 2) in
  let v2 = edges 5 in
  (match
     with_plan "crash-after-rename=1" (fun () -> Storage.write_file ~path v2)
   with
  | _ -> Alcotest.fail "crash point did not fire"
  | exception Faults.Crash _ -> ());
  let outcome = Storage.read_file ~path in
  Alcotest.(check bool) "new contents published" true
    (outcome.Storage.edges = v2);
  Alcotest.(check bool) "no corruption" true (outcome.Storage.corrupt = None)

let test_short_write_leaves_target () =
  let dir = fresh_workdir () in
  let path = Filename.concat dir "s.edges" in
  let v1 = edges 2 in
  let _ = Storage.write_file ~path v1 in
  (match
     with_plan "short-write=1" (fun () -> Storage.write_file ~path (edges 6))
   with
  | _ -> Alcotest.fail "short write did not fire"
  | exception Faults.Injected _ -> ());
  Alcotest.(check bool) "target untouched" true (read_edges path = v1);
  (* the next clean write overwrites the garbage temp file *)
  let v3 = edges 4 in
  let _ = Storage.write_file ~path v3 in
  Alcotest.(check bool) "clean write wins" true (read_edges path = v3)

let test_append_is_crash_safe () =
  let dir = fresh_workdir () in
  let path = Filename.concat dir "ap.edges" in
  let _ = Storage.write_file ~path (edges 2) in
  (match
     with_plan "crash-before-rename=1" (fun () ->
         Storage.append_file ~path [ mk_edge 10 11 ])
   with
  | _ -> Alcotest.fail "crash point did not fire"
  | exception Faults.Crash _ -> ());
  Alcotest.(check int) "append rolled back whole" 2 (List.length (read_edges path));
  let _ = Storage.append_file ~path [ mk_edge 10 11 ] in
  Alcotest.(check int) "retried append lands" 3 (List.length (read_edges path))

(* ---------------- manifest ---------------- *)

let test_manifest_roundtrip () =
  let workdir = fresh_workdir () in
  let m =
    { Manifest.next_pid = 7; max_vertex = 123; n_seed_edges = 45;
      parts =
        [ { Manifest.pid = 3; lo = 0; hi = 60; version = 2; approx_edges = 17;
            file = "p0003.edges" };
          { Manifest.pid = 5; lo = 60; hi = 124; version = 0; approx_edges = 8;
            file = "p0005.edges" } ];
      processed = [ ((3, 3), (2, 2, 17, 17)); ((3, 5), (1, 0, 17, 8)) ] }
  in
  Manifest.save ~workdir m;
  (match Manifest.load ~workdir with
  | Some back -> Alcotest.(check bool) "roundtrip" true (back = m)
  | None -> Alcotest.fail "manifest did not load");
  (* flip a digit in the body: the whole-file checksum must reject it *)
  let path = Manifest.path ~workdir in
  let contents = In_channel.with_open_bin path In_channel.input_all in
  let damaged =
    String.map (fun c -> if c = '7' then '8' else c)
      (String.sub contents 0 40)
    ^ String.sub contents 40 (String.length contents - 40)
  in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc damaged);
  Alcotest.(check bool) "damaged manifest rejected" true
    (Manifest.load ~workdir = None);
  Alcotest.(check bool) "missing manifest" true
    (Manifest.load ~workdir:(fresh_workdir ()) = None)

let test_manifest_truncated_header () =
  let workdir = fresh_workdir () in
  let m =
    { Manifest.next_pid = 2; max_vertex = 9; n_seed_edges = 4;
      parts =
        [ { Manifest.pid = 0; lo = 0; hi = 10; version = 1; approx_edges = 4;
            file = "p0000.edges" } ];
      processed = [] }
  in
  Manifest.save ~workdir m;
  let path = Manifest.path ~workdir in
  let contents = In_channel.with_open_bin path In_channel.input_all in
  (* keep only a prefix of the header line: no checksum, no body *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub contents 0 3));
  Alcotest.(check bool) "truncated header rejected" true
    (Manifest.load ~workdir = None);
  (* empty file: same typed outcome, no exception *)
  Out_channel.with_open_bin path (fun _ -> ());
  Alcotest.(check bool) "empty manifest rejected" true
    (Manifest.load ~workdir = None)

(* ---------------- engine under faults ---------------- *)

let true_decode (_ : E.t) = Smt.Formula.True

let mk_engine ?(config_f = fun c -> c) () =
  let workdir = fresh_workdir () in
  let config =
    config_f
      { (Engine.default_config ~workdir) with
        Engine.target_partitions = 2;
        retry_base_ms = 0.01 }
  in
  AEngine.create ~config ~decode:true_decode ~workdir ()

let seed_chain t n =
  AEngine.add_seed t ~src:0 ~dst:1 ~label:Pg.New
    ~enc:[ E.Interval { meth = 0; first = 0; last = 0 } ];
  for i = 1 to n - 1 do
    AEngine.add_seed t ~src:i ~dst:(i + 1) ~label:Pg.Assign
      ~enc:[ E.Interval { meth = 0; first = 0; last = 0 } ]
  done

let facts t =
  AEngine.fold_edges t
    (fun acc e -> (e.AEngine.src, e.AEngine.dst, Pg.to_int e.AEngine.label) :: acc)
    []
  |> List.sort compare

let test_engine_identical_under_rate_faults () =
  let clean = mk_engine () in
  seed_chain clean 10;
  AEngine.run clean;
  let expect = facts clean in
  AEngine.cleanup clean;
  let t =
    with_plan "seed=5,rate=0.3" (fun () ->
        let t = mk_engine () in
        seed_chain t 10;
        AEngine.run t;
        Alcotest.(check bool) "faults actually fired" true
          (Faults.injected_count () > 0);
        Alcotest.(check bool) "retries recorded" true
          (Engine.Metrics.count (AEngine.metrics t).Engine.Metrics.retries > 0);
        t)
  in
  Alcotest.(check bool) "closure identical" true (facts t = expect);
  AEngine.cleanup t

let test_engine_resume_equals_fresh () =
  let clean = mk_engine () in
  seed_chain clean 12;
  AEngine.run clean;
  let expect = facts clean in
  AEngine.cleanup clean;
  let workdir = fresh_workdir () in
  let config =
    { (Engine.default_config ~workdir) with Engine.target_partitions = 2 }
  in
  let t = AEngine.create ~config ~decode:true_decode ~workdir () in
  seed_chain t 12;
  (match with_plan "crash-checkpoint=2" (fun () -> AEngine.run t) with
  | _ -> Alcotest.fail "checkpoint crash did not fire"
  | exception Faults.Crash _ -> ());
  Alcotest.(check bool) "manifest durable at crash" true
    (Sys.file_exists (Manifest.path ~workdir));
  (* a fresh process resumes from the manifest; its seeds are discarded in
     favour of the restored partitions *)
  let t2 = AEngine.create ~config ~decode:true_decode ~workdir () in
  seed_chain t2 12;
  AEngine.run ~resume:true t2;
  Alcotest.(check bool) "resumed closure identical" true (facts t2 = expect);
  AEngine.cleanup t2

(* A checksum-valid manifest whose partition file vanished (e.g. a partial
   workdir wipe) must not be restored: resume falls back to a fresh run and
   still converges to the same closure. *)
let test_resume_missing_partition_runs_fresh () =
  let clean = mk_engine () in
  seed_chain clean 12;
  AEngine.run clean;
  let expect = facts clean in
  AEngine.cleanup clean;
  let workdir = fresh_workdir () in
  let config =
    { (Engine.default_config ~workdir) with Engine.target_partitions = 2 }
  in
  let t = AEngine.create ~config ~decode:true_decode ~workdir () in
  seed_chain t 12;
  (match with_plan "crash-checkpoint=2" (fun () -> AEngine.run t) with
  | _ -> Alcotest.fail "checkpoint crash did not fire"
  | exception Faults.Crash _ -> ());
  (* delete one partition file out from under the (still valid) manifest *)
  (match Manifest.load ~workdir with
  | None -> Alcotest.fail "manifest should be durable at the crash point"
  | Some m ->
      let part = List.hd m.Manifest.parts in
      Sys.remove (Filename.concat workdir part.Manifest.file));
  let t2 = AEngine.create ~config ~decode:true_decode ~workdir () in
  seed_chain t2 12;
  AEngine.run ~resume:true t2;
  Alcotest.(check bool) "fresh run after rejected restore is identical" true
    (facts t2 = expect);
  AEngine.cleanup t2

(* The edge budget is a strict bound: a run whose final closure is exactly
   the budget completes; one edge less trips [Budget_exhausted]; resuming
   the tripped run without a budget finishes with the identical closure. *)
let test_engine_budget_exact_boundary () =
  let clean = mk_engine () in
  seed_chain clean 10;
  AEngine.run clean;
  let expect = facts clean in
  let added =
    Engine.Metrics.count (AEngine.metrics clean).Engine.Metrics.edges_added
  in
  AEngine.cleanup clean;
  Alcotest.(check bool) "closure is non-trivial" true (added > 1);
  let at =
    mk_engine ~config_f:(fun c -> { c with Engine.edge_budget = added }) ()
  in
  seed_chain at 10;
  AEngine.run at;
  Alcotest.(check bool) "exactly-at-budget completes" true (facts at = expect);
  AEngine.cleanup at;
  let workdir = fresh_workdir () in
  let tight =
    { (Engine.default_config ~workdir) with
      Engine.target_partitions = 2; edge_budget = added - 1 }
  in
  let t = AEngine.create ~config:tight ~decode:true_decode ~workdir () in
  seed_chain t 10;
  (match AEngine.run t with
  | _ -> Alcotest.fail "budget of total-1 should trip"
  | exception Engine.Budget_exhausted _ -> ());
  (* same workdir, budget lifted: resume completes what the tripped run
     checkpointed and converges to the same closure *)
  let unbounded =
    { (Engine.default_config ~workdir) with Engine.target_partitions = 2 }
  in
  let t2 = AEngine.create ~config:unbounded ~decode:true_decode ~workdir () in
  seed_chain t2 10;
  AEngine.run ~resume:true t2;
  Alcotest.(check bool) "resume after exhaustion is identical" true
    (facts t2 = expect);
  AEngine.cleanup t2

let test_engine_edge_budget () =
  let t = mk_engine ~config_f:(fun c -> { c with Engine.edge_budget = 1 }) () in
  seed_chain t 10;
  match AEngine.run t with
  | _ -> Alcotest.fail "edge budget did not trip"
  | exception Engine.Budget_exhausted _ -> AEngine.cleanup t

(* ---------------- pipeline: supervision and degradation ---------------- *)

let leak_src = {|
class Main {
  void main(int n) {
    FileWriter log = new FileWriter();
    log.write(n);
    if (n > 10) {
      log.close();
    }
    return;
  }
}
entry Main.main;
|}

let check_leak ?(config_f = fun c -> c) ?workdir () =
  let program = Jir.Resolve.parse_exn leak_src in
  let workdir = match workdir with Some d -> d | None -> fresh_workdir () in
  let config =
    config_f
      { (Grapple.Pipeline.default_config ~workdir) with
        Grapple.Pipeline.library_throwers = Checkers.Specs.library_throwers;
        Grapple.Pipeline.engine =
          { (Engine.default_config ~workdir) with Engine.retry_base_ms = 0.01 } }
  in
  let fsm = (Checkers.io ()).Checkers.kind in
  let fsm = match fsm with `Typestate f -> f | _ -> assert false in
  let prepared = Grapple.Pipeline.prepare ~config ~workdir program in
  let pr = Grapple.Pipeline.check_property prepared fsm in
  let stats = Grapple.Pipeline.stats prepared [ pr ] in
  (prepared, pr, stats)

let rendered (pr : Grapple.Pipeline.property_result) =
  String.concat "\n" (List.map Grapple.Report.to_json pr.Grapple.Pipeline.reports)

let test_pipeline_identical_under_rate_faults () =
  let p0, pr0, _ = check_leak () in
  let expect = rendered pr0 in
  Grapple.Pipeline.cleanup p0 [ pr0 ];
  with_plan "seed=11,rate=0.3" (fun () ->
      let p, pr, stats = check_leak () in
      Alcotest.(check string) "warnings identical" expect (rendered pr);
      Alcotest.(check bool) "faults fired" true
        (stats.Grapple.Pipeline.n_faults_injected > 0);
      Alcotest.(check bool) "retries counted" true
        (stats.Grapple.Pipeline.n_retried > 0);
      Alcotest.(check int) "nothing degraded" 0
        stats.Grapple.Pipeline.n_inconclusive;
      Grapple.Pipeline.cleanup p [ pr ])

let test_pipeline_budget_degrades () =
  let p, pr, stats =
    check_leak
      ~config_f:(fun c ->
        { c with
          Grapple.Pipeline.instance_edge_budget = 1;
          Grapple.Pipeline.max_retries = 0 })
      ()
  in
  (match pr.Grapple.Pipeline.degraded with
  | Some _ -> ()
  | None -> Alcotest.fail "instance was not degraded");
  (match pr.Grapple.Pipeline.reports with
  | [ { Grapple.Report.kind = Grapple.Report.Inconclusive _; _ } ] -> ()
  | _ -> Alcotest.fail "expected exactly one Inconclusive report");
  Alcotest.(check int) "n_inconclusive" 1 stats.Grapple.Pipeline.n_inconclusive;
  Grapple.Pipeline.cleanup p [ pr ]

let test_pipeline_fault_recovers () =
  (* op-level retries disabled, so a single injected write failure escalates
     to the supervisor, which restarts the sub-run from its checkpoint: the
     instance must be recovered, not degraded, with identical warnings *)
  let p0, pr0, _ = check_leak () in
  let expect = rendered pr0 in
  Grapple.Pipeline.cleanup p0 [ pr0 ];
  with_plan "fail-write=8" (fun () ->
      let p, pr, stats =
        check_leak
          ~config_f:(fun c ->
            { c with
              Grapple.Pipeline.engine =
                { c.Grapple.Pipeline.engine with Engine.max_retries = 0 } })
          ()
      in
      Alcotest.(check bool) "the fault fired" true
        (Faults.injected_count () = 1);
      Alcotest.(check string) "warnings identical" expect (rendered pr);
      Alcotest.(check int) "nothing degraded" 0
        stats.Grapple.Pipeline.n_inconclusive;
      Alcotest.(check bool) "supervisor recovered the sub-run" true
        (stats.Grapple.Pipeline.n_recovered > 0
        && stats.Grapple.Pipeline.n_retried > 0);
      Grapple.Pipeline.cleanup p [ pr ])

let test_pipeline_resume_byte_identical () =
  let p0, pr0, _ = check_leak () in
  let expect = rendered pr0 in
  Grapple.Pipeline.cleanup p0 [ pr0 ];
  let workdir = fresh_workdir () in
  let crashed = ref false in
  (try
     with_plan "crash-checkpoint=3" (fun () ->
         ignore (check_leak ~workdir ()))
   with Faults.Crash _ -> crashed := true);
  Alcotest.(check bool) "killed at a checkpoint boundary" true !crashed;
  (* restart in the same workdir with --resume semantics *)
  let p, pr, _ =
    check_leak ~workdir
      ~config_f:(fun c -> { c with Grapple.Pipeline.resume = true })
      ()
  in
  Alcotest.(check string) "report byte-identical" expect (rendered pr);
  Grapple.Pipeline.cleanup p [ pr ]

(* ---------------- SMT round budget ---------------- *)

let test_smt_budget_sound () =
  let x () = Smt.Linexpr.var (Smt.Symbol.intern "x") in
  let c n = Smt.Linexpr.const n in
  (* (x <= 0 or x >= 2) and x = 1: propositionally satisfiable, every model
     theory-conflicts, so DPLL(T) needs several rounds to conclude Unsat *)
  let f =
    Smt.Formula.and_
      (Smt.Formula.or_
         (Smt.Formula.le (x ()) (c 0))
         (Smt.Formula.ge (x ()) (c 2)))
      (Smt.Formula.eq (x ()) (c 1))
  in
  Alcotest.(check bool) "unbudgeted answer is Unsat" true
    (Smt.Solver.check f = Smt.Solver.Unsat);
  let hits0 = Atomic.get Smt.Solver.stats.Smt.Solver.budget_hits in
  Smt.Solver.set_budget 1;
  Fun.protect
    ~finally:(fun () -> Smt.Solver.set_budget 0)
    (fun () ->
      let r = Smt.Solver.check f in
      Alcotest.(check bool) "budgeted answer is Unknown (sound)" true
        (r = Smt.Solver.Unknown);
      Alcotest.(check bool) "still treated as feasible" true
        (Smt.Solver.is_sat f);
      Alcotest.(check bool) "budget hit counted" true
        (Atomic.get Smt.Solver.stats.Smt.Solver.budget_hits > hits0))

let suite =
  [ Alcotest.test_case "fault plan parse" `Quick test_plan_parse;
    Alcotest.test_case "read truncated tail" `Quick test_read_truncated;
    Alcotest.test_case "read corrupted record" `Quick test_read_corrupted;
    Alcotest.test_case "crash before rename" `Quick test_crash_before_rename;
    Alcotest.test_case "crash after rename" `Quick test_crash_after_rename;
    Alcotest.test_case "short write leaves target" `Quick
      test_short_write_leaves_target;
    Alcotest.test_case "append crash safe" `Quick test_append_is_crash_safe;
    Alcotest.test_case "manifest roundtrip" `Quick test_manifest_roundtrip;
    Alcotest.test_case "manifest truncated header" `Quick
      test_manifest_truncated_header;
    Alcotest.test_case "resume with missing partition runs fresh" `Quick
      test_resume_missing_partition_runs_fresh;
    Alcotest.test_case "edge budget exact boundary" `Quick
      test_engine_budget_exact_boundary;
    Alcotest.test_case "engine identical under rate faults" `Quick
      test_engine_identical_under_rate_faults;
    Alcotest.test_case "engine resume equals fresh" `Quick
      test_engine_resume_equals_fresh;
    Alcotest.test_case "engine edge budget trips" `Quick test_engine_edge_budget;
    Alcotest.test_case "pipeline identical under rate faults" `Quick
      test_pipeline_identical_under_rate_faults;
    Alcotest.test_case "pipeline budget degrades" `Quick
      test_pipeline_budget_degrades;
    Alcotest.test_case "pipeline fault recovers" `Quick
      test_pipeline_fault_recovers;
    Alcotest.test_case "pipeline resume byte identical" `Quick
      test_pipeline_resume_byte_identical;
    Alcotest.test_case "smt budget sound" `Quick test_smt_budget_sound ]
