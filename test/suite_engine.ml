(* Tests for the disk-based engine: LRU cache, storage, partitioning,
   transitive closure with and without constraints, repartitioning, and the
   memoization counters. *)

module E = Pathenc.Encoding
module Pg = Cfl.Pointer_grammar
module AEngine = Engine.Make (Cfl.Pointer_grammar)

let fresh_workdir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "grapple-test-engine-%d-%d" (Unix.getpid ()) !counter)
    in
    Engine.ensure_dir dir;
    dir

(* ---------------- LRU ---------------- *)

let test_lru_basic () =
  let c = Engine.Lru.create 2 in
  Engine.Lru.add c "a" 1;
  Engine.Lru.add c "b" 2;
  Alcotest.(check (option int)) "find a" (Some 1) (Engine.Lru.find c "a");
  Engine.Lru.add c "c" 3;  (* evicts b: a was refreshed by the find *)
  Alcotest.(check (option int)) "b evicted" None (Engine.Lru.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Engine.Lru.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Engine.Lru.find c "c");
  Alcotest.(check int) "size" 2 (Engine.Lru.size c)

let test_lru_update () =
  let c = Engine.Lru.create 2 in
  Engine.Lru.add c "a" 1;
  Engine.Lru.add c "a" 10;
  Alcotest.(check (option int)) "updated" (Some 10) (Engine.Lru.find c "a");
  Alcotest.(check int) "no duplicate" 1 (Engine.Lru.size c)

let test_lru_order () =
  let c = Engine.Lru.create 3 in
  Engine.Lru.add c 1 ();
  Engine.Lru.add c 2 ();
  Engine.Lru.add c 3 ();
  ignore (Engine.Lru.find c 1);
  Alcotest.(check (list int)) "mru order" [ 1; 3; 2 ] (Engine.Lru.keys c)

let prop_lru_never_exceeds_capacity =
  QCheck.Test.make ~name:"lru capacity invariant" ~count:100
    QCheck.(list (pair (int_bound 20) (int_bound 100)))
    (fun ops ->
      let c = Engine.Lru.create 5 in
      List.iter (fun (k, v) -> Engine.Lru.add c k v) ops;
      Engine.Lru.size c <= 5)

(* ---------------- storage ---------------- *)

let test_storage_roundtrip () =
  let dir = fresh_workdir () in
  let path = Filename.concat dir "edges.bin" in
  let edges =
    [ { Engine.Storage.src = 1; dst = 2; label = 0;
        enc = [ E.Interval { meth = 0; first = 0; last = 3 } ] };
      { Engine.Storage.src = 1000; dst = 2000; label = 77;
        enc = [ E.Call 5; E.Ret 5 ] } ]
  in
  let _ = Engine.Storage.write_file ~path edges in
  let outcome = Engine.Storage.read_file ~path in
  Alcotest.(check int) "count" 2 (List.length outcome.Engine.Storage.edges);
  Alcotest.(check bool) "contents equal" true
    (outcome.Engine.Storage.edges = edges);
  Alcotest.(check bool) "intact" true (outcome.Engine.Storage.corrupt = None)

let test_storage_append () =
  let dir = fresh_workdir () in
  let path = Filename.concat dir "edges.bin" in
  let e n = { Engine.Storage.src = n; dst = n + 1; label = 1; enc = [] } in
  let _ = Engine.Storage.write_file ~path [ e 1 ] in
  let _ = Engine.Storage.append_file ~path [ e 2; e 3 ] in
  let back = (Engine.Storage.read_file ~path).Engine.Storage.edges in
  Alcotest.(check int) "three records" 3 (List.length back)

let test_storage_missing_file () =
  let outcome = Engine.Storage.read_file ~path:"/nonexistent/nowhere.bin" in
  Alcotest.(check int) "no edges" 0 (List.length outcome.Engine.Storage.edges);
  Alcotest.(check int) "no bytes" 0 outcome.Engine.Storage.bytes

(* ---------------- closure without constraints ---------------- *)

(* a trivially-true decode: every path is feasible *)
let true_decode (_ : E.t) = Smt.Formula.True

let mk_engine ?(config = None) () =
  let workdir = fresh_workdir () in
  let config =
    match config with
    | Some c -> { c with Engine.workdir }
    | None ->
        { (Engine.default_config ~workdir) with
          Engine.target_partitions = 2 }
  in
  AEngine.create ~config ~decode:true_decode ~workdir ()

let seed_chain t n =
  (* o --new--> v0 --assign--> v1 --assign--> ... --assign--> v(n-1) *)
  AEngine.add_seed t ~src:0 ~dst:1 ~label:Pg.New
    ~enc:[ E.Interval { meth = 0; first = 0; last = 0 } ];
  for i = 1 to n - 1 do
    AEngine.add_seed t ~src:i ~dst:(i + 1) ~label:Pg.Assign
      ~enc:[ E.Interval { meth = 0; first = 0; last = 0 } ]
  done

let count_label t label =
  AEngine.fold_edges t
    (fun acc e -> if Pg.equal e.AEngine.label label then acc + 1 else acc)
    0

let test_closure_chain () =
  let t = mk_engine () in
  seed_chain t 5;
  AEngine.run t;
  (* flowsTo reaches every variable in the chain *)
  Alcotest.(check int) "flowsTo edges" 5 (count_label t Pg.Flows_to);
  (* each flowsTo has a mirrored bar edge *)
  Alcotest.(check int) "bar edges" 5 (count_label t Pg.Flows_to_bar);
  (* all pairs rooted at the object alias pairwise: 5x5 *)
  Alcotest.(check int) "alias edges" 25 (count_label t Pg.Alias)

let test_closure_store_load () =
  (* h1 = new H; w = new W; h1.f = w; h2 = h1; u = h2.f
     flowsTo(o_w, u) requires store/alias/load matching *)
  let t = mk_engine () in
  let iv = [ E.Interval { meth = 0; first = 0; last = 0 } ] in
  let oh = 0 and h1 = 1 and ow = 2 and w = 3 and h2 = 4 and u = 5 in
  AEngine.add_seed t ~src:oh ~dst:h1 ~label:Pg.New ~enc:iv;
  AEngine.add_seed t ~src:ow ~dst:w ~label:Pg.New ~enc:iv;
  AEngine.add_seed t ~src:w ~dst:h1 ~label:(Pg.Store 9) ~enc:iv;
  AEngine.add_seed t ~src:h1 ~dst:h2 ~label:Pg.Assign ~enc:iv;
  AEngine.add_seed t ~src:h2 ~dst:u ~label:(Pg.Load 9) ~enc:iv;
  AEngine.run t;
  let flows_to_u = ref false in
  AEngine.iter_result_edges t (fun e ->
      if Pg.equal e.AEngine.label Pg.Flows_to && e.AEngine.src = ow
         && e.AEngine.dst = u
      then flows_to_u := true);
  Alcotest.(check bool) "object flows through the heap" true !flows_to_u

let test_closure_field_mismatch () =
  let t = mk_engine () in
  let iv = [ E.Interval { meth = 0; first = 0; last = 0 } ] in
  AEngine.add_seed t ~src:0 ~dst:1 ~label:Pg.New ~enc:iv;
  AEngine.add_seed t ~src:2 ~dst:3 ~label:Pg.New ~enc:iv;
  AEngine.add_seed t ~src:3 ~dst:1 ~label:(Pg.Store 9) ~enc:iv;
  AEngine.add_seed t ~src:1 ~dst:4 ~label:(Pg.Load 8) ~enc:iv;
  AEngine.run t;
  let bad = ref false in
  AEngine.iter_result_edges t (fun e ->
      if Pg.equal e.AEngine.label Pg.Flows_to && e.AEngine.src = 2
         && e.AEngine.dst = 4
      then bad := true);
  Alcotest.(check bool) "different fields do not match" false !bad

let test_repartitioning () =
  let workdir = fresh_workdir () in
  let config =
    { (Engine.default_config ~workdir) with
      Engine.target_partitions = 1;
      max_edges_per_partition = 8 }
  in
  let t = AEngine.create ~config ~decode:true_decode ~workdir () in
  seed_chain t 20;
  AEngine.run t;
  Alcotest.(check bool) "partitions split" true (AEngine.n_partitions t > 1);
  Alcotest.(check bool) "repartitions counted" true
    (Engine.Metrics.count (AEngine.metrics t).Engine.Metrics.repartitions > 0);
  (* closure is still complete after splits *)
  Alcotest.(check int) "flowsTo complete" 20 (count_label t Pg.Flows_to)

let test_cache_counters () =
  let workdir = fresh_workdir () in
  let t =
    AEngine.create
      ~config:{ (Engine.default_config ~workdir) with Engine.target_partitions = 2 }
      ~decode:true_decode ~workdir ()
  in
  seed_chain t 6;
  AEngine.run t;
  let m = AEngine.metrics t in
  Alcotest.(check bool) "lookups happened" true (Engine.Metrics.count m.Engine.Metrics.cache_lookups > 0);
  Alcotest.(check bool) "some hits" true (Engine.Metrics.count m.Engine.Metrics.cache_hits > 0);
  Alcotest.(check bool) "solved <= lookups" true
    (Engine.Metrics.count m.Engine.Metrics.constraints_solved
    <= Engine.Metrics.count m.Engine.Metrics.cache_lookups)

(* regression: [Metrics.time] used to drop the elapsed time when the timed
   function raised, under-reporting every component that ever aborted
   (budget exhaustion, injected faults) *)
let test_metrics_time_records_on_raise () =
  let m = Engine.Metrics.create () in
  (try
     Engine.Metrics.time m `Solve (fun () ->
         Unix.sleepf 0.02;
         raise Exit)
   with Exit -> ());
  Alcotest.(check bool) "elapsed time survives the raise" true
    (Engine.Metrics.seconds m.Engine.Metrics.solve_s >= 0.01)

(* regression: the engine used to count a cache lookup (never a hit) even
   with [cache_enabled = false], reporting a fake 0% hit rate *)
let test_cache_disabled_counts_no_lookups () =
  let workdir = fresh_workdir () in
  let config =
    { (Engine.default_config ~workdir) with
      Engine.target_partitions = 2;
      cache_enabled = false }
  in
  let t = AEngine.create ~config ~decode:true_decode ~workdir () in
  seed_chain t 6;
  AEngine.run t;
  let m = AEngine.metrics t in
  Alcotest.(check int) "no lookups against a disabled cache" 0
    (Engine.Metrics.count m.Engine.Metrics.cache_lookups);
  Alcotest.(check int) "no hits either" 0
    (Engine.Metrics.count m.Engine.Metrics.cache_hits);
  Alcotest.(check bool) "hit rate is None, not a fake 0%" true
    (Engine.Metrics.hit_rate m = None);
  Alcotest.(check bool) "work still happened" true
    (Engine.Metrics.count m.Engine.Metrics.constraints_solved > 0)

let test_constraint_pruning () =
  (* a decode that rejects any encoding mentioning node 13 *)
  let workdir = fresh_workdir () in
  let decode (enc : E.t) =
    let rec bad = function
      | [] -> false
      | E.Interval { last = 13; _ } :: _ -> true
      | _ :: tl -> bad tl
    in
    if bad enc then Smt.Formula.False else Smt.Formula.True
  in
  let t =
    AEngine.create
      ~config:{ (Engine.default_config ~workdir) with Engine.target_partitions = 1 }
      ~decode ~workdir ()
  in
  let iv last = [ E.Interval { meth = 0; first = 0; last } ] in
  AEngine.add_seed t ~src:0 ~dst:1 ~label:Pg.New ~enc:(iv 0);
  AEngine.add_seed t ~src:1 ~dst:2 ~label:Pg.Assign ~enc:(iv 5);
  AEngine.add_seed t ~src:1 ~dst:3 ~label:Pg.Assign ~enc:(iv 13);
  AEngine.run t;
  let reaches dst =
    AEngine.fold_edges t
      (fun acc e ->
        acc
        || (Pg.equal e.AEngine.label Pg.Flows_to && e.AEngine.src = 0
            && e.AEngine.dst = dst))
      false
  in
  Alcotest.(check bool) "feasible branch kept" true (reaches 2);
  Alcotest.(check bool) "infeasible branch pruned" false (reaches 3)

let test_encodings_per_key_cap () =
  let workdir = fresh_workdir () in
  let config =
    { (Engine.default_config ~workdir) with
      Engine.target_partitions = 1;
      max_encodings_per_key = 1 }
  in
  let t = AEngine.create ~config ~decode:true_decode ~workdir () in
  (* two parallel paths from o to v *)
  let iv last = [ E.Interval { meth = 0; first = 0; last } ] in
  AEngine.add_seed t ~src:0 ~dst:1 ~label:Pg.New ~enc:(iv 0);
  AEngine.add_seed t ~src:1 ~dst:2 ~label:Pg.Assign ~enc:(iv 1);
  AEngine.add_seed t ~src:1 ~dst:2 ~label:Pg.Assign ~enc:(iv 2);
  AEngine.run t;
  let count =
    AEngine.fold_edges t
      (fun acc e ->
        if Pg.equal e.AEngine.label Pg.Flows_to && e.AEngine.dst = 2 then
          acc + 1
        else acc)
      0
  in
  Alcotest.(check int) "one witness kept" 1 count

let test_metrics_breakdown_sums_to_100 () =
  let t = mk_engine () in
  seed_chain t 8;
  AEngine.run t;
  let parts = Engine.Metrics.breakdown (AEngine.metrics t) in
  let total = List.fold_left (fun a (_, p) -> a +. p) 0. parts in
  Alcotest.(check bool) "percentages sum to ~100" true
    (Float.abs (total -. 100.) < 1e-6 || total = 0.)

let test_parallel_solving_same_result () =
  (* a decode that actually exercises the solver; the symbol is interned
     up front because decode runs on worker domains *)
  let x_sym = Smt.Symbol.intern "pe_x" in
  let decode (enc : E.t) =
    let x = Smt.Linexpr.var x_sym in
    match enc with
    | E.Interval { last; _ } :: _ when last mod 7 = 3 ->
        (* infeasible constraint for some encodings *)
        Smt.Formula.and_
          (Smt.Formula.ge x (Smt.Linexpr.const 1))
          (Smt.Formula.le x (Smt.Linexpr.const 0))
    | _ -> Smt.Formula.ge x (Smt.Linexpr.const 0)
  in
  let run domains =
    let workdir = fresh_workdir () in
    let config =
      { (Engine.default_config ~workdir) with
        Engine.target_partitions = 2;
        solver_domains = domains;
        cache_enabled = false }
    in
    let t = AEngine.create ~config ~decode ~workdir () in
    AEngine.add_seed t ~src:0 ~dst:1 ~label:Pg.New
      ~enc:[ E.Interval { meth = 0; first = 0; last = 0 } ];
    for i = 1 to 20 do
      AEngine.add_seed t ~src:i ~dst:(i + 1) ~label:Pg.Assign
        ~enc:[ E.Interval { meth = 0; first = 0; last = i } ]
    done;
    AEngine.run t;
    AEngine.fold_edges t
      (fun acc e -> (e.AEngine.src, e.AEngine.dst, Pg.to_int e.AEngine.label) :: acc)
      []
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "parallel solving agrees with sequential" true
    (run 1 = run 3)

(* reference implementation: naive in-memory closure with the same label
   logic and no constraints, used to differential-test the disk engine *)
let reference_closure (seeds : (int * int * Pg.t) list) : (int * int * int) list =
  let present = Hashtbl.create 256 in
  let queue = Queue.create () in
  let by_src = Hashtbl.create 64 and by_dst = Hashtbl.create 64 in
  let push tbl k v =
    match Hashtbl.find_opt tbl k with
    | Some r -> r := v :: !r
    | None -> Hashtbl.replace tbl k (ref [ v ])
  in
  let rec add (src, dst, label) =
    let key = (src, dst, Pg.to_int label) in
    if not (Hashtbl.mem present key) then begin
      Hashtbl.replace present key ();
      push by_src src (dst, label);
      push by_dst dst (src, label);
      Queue.add (src, dst, label) queue;
      List.iter (fun l -> add (src, dst, l)) (Pg.unary label);
      match Pg.mirror label with
      | Some l -> add (dst, src, l)
      | None -> ()
    end
  in
  List.iter add seeds;
  while not (Queue.is_empty queue) do
    let src, dst, label = Queue.pop queue in
    (match Hashtbl.find_opt by_src dst with
    | Some outs ->
        List.iter
          (fun (dst2, l2) ->
            match Pg.compose label l2 with
            | Some l3 -> add (src, dst2, l3)
            | None -> ())
          !outs
    | None -> ());
    (match Hashtbl.find_opt by_dst src with
    | Some ins ->
        List.iter
          (fun (src0, l1) ->
            match Pg.compose l1 label with
            | Some l3 -> add (src0, dst, l3)
            | None -> ())
          !ins
    | None -> ())
  done;
  Hashtbl.fold (fun k () acc -> k :: acc) present [] |> List.sort compare

let arb_graph =
  let open QCheck in
  let edge =
    Gen.map3
      (fun src dst kind ->
        let label =
          match kind mod 5 with
          | 0 -> Pg.New
          | 1 | 2 -> Pg.Assign
          | 3 -> Pg.Store (kind mod 2)
          | _ -> Pg.Load (kind mod 2)
        in
        (src, dst, label))
      (Gen.int_bound 8) (Gen.int_bound 8) (Gen.int_bound 20)
  in
  make
    ~print:(fun es ->
      String.concat ";"
        (List.map (fun (s, d, l) -> Printf.sprintf "%d-%s->%d" s (Pg.to_string l) d) es))
    (Gen.list_size (Gen.int_range 1 14) edge)

let prop_engine_matches_reference =
  QCheck.Test.make ~name:"engine matches in-memory reference closure" ~count:30
    arb_graph (fun edges ->
      let workdir = fresh_workdir () in
      let config =
        { (Engine.default_config ~workdir) with
          Engine.target_partitions = 3;
          max_edges_per_partition = 6;
          (* one witness per fact and no length cap: every fact keeps a
             composable encoding, so the closure is complete and bounded by
             the fact space even on cyclic graphs (unbounded witnesses blow
             up through Rev fragments) *)
          max_encodings_per_key = 1;
          max_path_elements = 0 }
      in
      let t = AEngine.create ~config ~decode:true_decode ~workdir () in
      List.iter
        (fun (src, dst, label) ->
          AEngine.add_seed t ~src ~dst ~label
            ~enc:[ E.Interval { meth = 0; first = 0; last = 0 } ])
        edges;
      AEngine.run t;
      let engine_facts =
        AEngine.fold_edges t
          (fun acc e -> (e.AEngine.src, e.AEngine.dst, Pg.to_int e.AEngine.label) :: acc)
          []
        |> List.sort_uniq compare
      in
      engine_facts = reference_closure edges)

(* property: closure results are independent of the partition budget *)
let prop_partitioning_invariance =
  QCheck.Test.make ~name:"closure independent of partitioning" ~count:8
    QCheck.(pair (int_range 2 12) (int_range 2 24))
    (fun (parts, budget) ->
      let t1 = mk_engine () in
      seed_chain t1 7;
      AEngine.run t1;
      let reference = count_label t1 Pg.Flows_to in
      let workdir = fresh_workdir () in
      let config =
        { (Engine.default_config ~workdir) with
          Engine.target_partitions = parts;
          max_edges_per_partition = budget }
      in
      let t2 = AEngine.create ~config ~decode:true_decode ~workdir () in
      seed_chain t2 7;
      AEngine.run t2;
      count_label t2 Pg.Flows_to = reference)

let suite =
  [ Alcotest.test_case "lru basic" `Quick test_lru_basic;
    Alcotest.test_case "lru update" `Quick test_lru_update;
    Alcotest.test_case "lru order" `Quick test_lru_order;
    QCheck_alcotest.to_alcotest prop_lru_never_exceeds_capacity;
    Alcotest.test_case "storage roundtrip" `Quick test_storage_roundtrip;
    Alcotest.test_case "storage append" `Quick test_storage_append;
    Alcotest.test_case "storage missing file" `Quick test_storage_missing_file;
    Alcotest.test_case "closure over a chain" `Quick test_closure_chain;
    Alcotest.test_case "closure through the heap" `Quick test_closure_store_load;
    Alcotest.test_case "field mismatch" `Quick test_closure_field_mismatch;
    Alcotest.test_case "eager repartitioning" `Quick test_repartitioning;
    Alcotest.test_case "cache counters" `Quick test_cache_counters;
    Alcotest.test_case "metrics time on raise" `Quick
      test_metrics_time_records_on_raise;
    Alcotest.test_case "disabled cache counts nothing" `Quick
      test_cache_disabled_counts_no_lookups;
    Alcotest.test_case "constraint pruning" `Quick test_constraint_pruning;
    Alcotest.test_case "encodings-per-key cap" `Quick test_encodings_per_key_cap;
    Alcotest.test_case "breakdown sums to 100" `Quick test_metrics_breakdown_sums_to_100;
    Alcotest.test_case "parallel solving" `Quick test_parallel_solving_same_result;
    QCheck_alcotest.to_alcotest prop_engine_matches_reference;
    QCheck_alcotest.to_alcotest prop_partitioning_invariance ]
