(* Tests for the parallel instance scheduler (ISSUE 4).

   The contract under test: whatever the worker count, a run's rendered
   reports and every integer counter of its statistics are byte-identical —
   with and without an installed fault plan — and a run crashed mid-flight
   can be resumed at any other worker count with no loss.  The suite also
   pins the shared domain budget (worker pools take priority over the
   engines' SMT fan-out) and the ordering invariants the byte-identity
   rests on. *)

module Faults = Engine.Faults
module Domains = Engine.Domains
module Pipeline = Grapple.Pipeline
module Report = Grapple.Report
module Generator = Workload.Generator

(* The differential runs compare workers=1 against workers=2 and against
   this count; CI's test matrix sets GRAPPLE_WORKERS to vary it. *)
let default_workers =
  match Option.bind (Sys.getenv_opt "GRAPPLE_WORKERS") int_of_string_opt with
  | Some w when w > 0 -> w
  | _ -> 4

let fresh_workdir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "grapple-test-parallel-%d-%d" (Unix.getpid ()) !counter)
    in
    Engine.ensure_dir dir;
    dir

(* ---------------- subjects ----------------

   The three example programs (examples/{quickstart,zookeeper_reconfigure,
   hdfs_shutdown}.ml) plus generated workload subjects. *)

let quickstart_src =
  {|
class Main {
  void main(int a) {
    FileWriter out = null;
    FileWriter o = null;
    int x = a;
    int y = x;
    if (x >= 0) {
      out = new FileWriter();
      o = out;
      y = y - 1;
    } else {
      y = y + 1;
    }
    if (y > 0) {
      out.write(x);
      o.close();
    }
    return;
  }
}
entry Main.main;
|}

let zookeeper_src =
  {|
class NIOServerCnxnFactory {
  void configure(int addr) {
    ServerSocketChannel ss = new ServerSocketChannel();
    ss.bind(addr);
    ss.configureBlocking(0);
    ss.close();
    return;
  }

  void reconfigure(int addr) {
    ServerSocketChannel oldSS = new ServerSocketChannel();
    oldSS.bind(addr);
    try {
      ServerSocketChannel ss = new ServerSocketChannel();
      ss.bind(addr);
      ss.configureBlocking(0);
      oldSS.close();
      ss.close();
    } catch (IOException e) {
      int logged = 1;
    }
    return;
  }
}

class Main {
  void main(int addr) {
    NIOServerCnxnFactory factory = new NIOServerCnxnFactory();
    factory.configure(addr);
    factory.reconfigure(addr);
    return;
  }
}
entry Main.main;
|}

let zookeeper_throwers =
  [ ("ServerSocketChannel", "bind", "IOException");
    ("ServerSocketChannel", "configureBlocking", "IOException") ]

let hdfs_src =
  {|
class DataTransferThrottler {
  void throttle(int numOfBytes) throws InterruptedException {
    int period = 500;
    int curPeriodStart = 0;
    int now = numOfBytes;
    int it = 0;
    while (it < 2) {
      int curPeriodEnd = curPeriodStart + period;
      if (now < curPeriodEnd) {
        throw new InterruptedException();
      }
      it = it + 1;
    }
    return;
  }

  void safeThrottle(int numOfBytes) throws InterruptedException {
    if (numOfBytes > 4096) {
      throw new InterruptedException();
    }
    return;
  }
}

class BlockSender {
  void sendPacket(int len) throws InterruptedException {
    DataTransferThrottler throttler = new DataTransferThrottler();
    throttler.throttle(len);
    return;
  }

  void sendBlock(int len) throws InterruptedException {
    int packet = len;
    while (packet > 0) {
      BlockSender.sendPacket(packet);
      packet = packet - 4096;
    }
    return;
  }
}

class DataBlockScanner {
  void run(int blockLen) {
    BlockSender.sendBlock(blockLen);
    DataTransferThrottler t = new DataTransferThrottler();
    try {
      t.safeThrottle(blockLen);
    } catch (InterruptedException e) {
      int handled = 1;
    }
    return;
  }
}

class Main {
  void main(int blockLen) {
    DataBlockScanner.run(blockLen);
    return;
  }
}
entry Main.main;
|}

let examples =
  [ ("quickstart", quickstart_src, []);
    ("zookeeper", zookeeper_src, zookeeper_throwers);
    ("hdfs", hdfs_src, []) ]

(* A small generated subject with bugs across several checkers, so the
   scheduler has real work on more than one instance. *)
let generated ~seed =
  let profile =
    { Generator.name = Printf.sprintf "par%d" seed;
      description = "parallel differential subject";
      seed;
      layers = 2;
      classes_per_layer = 2;
      methods_per_class = 2;
      patterns_per_method = 2;
      calls_per_method = 1;
      bugs = [ ("io", 2); ("lock", 1); ("socket", 1) ];
      lint_bugs = [];
      loops_per_subject = 1 }
  in
  (Generator.generate profile).Generator.program

(* ---------------- the run-and-render helper ---------------- *)

type outcome = {
  o_reports : string;  (* per-checker rendered report lines *)
  o_counters : string; (* every integer field of [Pipeline.stats] *)
  o_stats : Pipeline.stats;
  o_schedule : Pipeline.schedule_entry list;
}

let render results =
  String.concat "\n"
    (List.concat_map
       (fun (name, rs) -> List.map (fun r -> name ^ " " ^ Report.to_json r) rs)
       results)

(* Superset of the CLI's `--json` stats trailer: if these match, the trailer
   matches. *)
let counters (s : Pipeline.stats) ~warnings =
  Printf.sprintf
    "warnings=%d vertices=%d edges_before=%d edges_after=%d partitions=%d \
     iterations=%d solved=%d cache=%d/%d added=%d prefiltered=%d pruned=%d \
     retried=%d recovered=%d inconclusive=%d smt_budget=%d injected=%d \
     corrupt=%d"
    warnings s.Pipeline.n_vertices s.Pipeline.n_edges_before
    s.Pipeline.n_edges_after s.Pipeline.n_partitions s.Pipeline.n_iterations
    s.Pipeline.n_constraints_solved s.Pipeline.cache_lookups
    s.Pipeline.cache_hits s.Pipeline.edges_added s.Pipeline.n_prefiltered
    s.Pipeline.n_summary_pruned s.Pipeline.n_retried s.Pipeline.n_recovered
    s.Pipeline.n_inconclusive s.Pipeline.n_smt_budget_hits
    s.Pipeline.n_faults_injected s.Pipeline.n_corrupt_recovered

(* One full run through the scheduler path at a given worker count.  A fresh
   plan state is always installed (the given one, or none): fault-plan
   counters are stateful, so a differential comparison needs each run to
   start from the same plan state.  The ambient plan (e.g. the driver's
   GRAPPLE_FAULT_PLAN) is restored afterwards. *)
let run ?(workers = 1) ?(admission_budget = 0) ?plan ?(resume = false)
    ?workdir ?(throwers = []) program =
  let workdir = match workdir with Some d -> d | None -> fresh_workdir () in
  let saved = Faults.current () in
  (match plan with
  | Some spec -> Faults.install (Faults.parse spec)
  | None -> Faults.clear ());
  Fun.protect
    ~finally:(fun () ->
      match saved with Some p -> Faults.install p | None -> Faults.clear ())
  @@ fun () ->
  let config =
    { (Pipeline.default_config ~workdir) with
      Pipeline.library_throwers = throwers;
      track_null = true;
      prefilter_properties = Checkers.fsms ();
      workers;
      admission_budget;
      resume;
      engine =
        { (Engine.default_config ~workdir) with Engine.retry_base_ms = 0.01 } }
  in
  let prepared = Pipeline.prepare ~config ~workdir program in
  let results, props, schedule =
    Checkers.run_all_scheduled prepared (Checkers.all_with_null ())
  in
  let stats = Pipeline.stats prepared props in
  let warnings =
    List.fold_left (fun acc (_, rs) -> acc + List.length rs) 0 results
  in
  { o_reports = render results;
    o_counters = counters stats ~warnings;
    o_stats = stats;
    o_schedule = schedule }

let check_same ~what base other =
  Alcotest.(check string) (what ^ ": reports") base.o_reports other.o_reports;
  Alcotest.(check string) (what ^ ": counters") base.o_counters other.o_counters

(* ---------------- differential: examples ---------------- *)

let test_examples_differential () =
  List.iter
    (fun (name, src, throwers) ->
      let program = Jir.Resolve.parse_exn ~file:(name ^ ".jir") src in
      let base = run ~workers:1 ~throwers program in
      Alcotest.(check bool)
        (name ^ ": subject produces warnings") true
        (base.o_reports <> "");
      List.iter
        (fun w ->
          let out = run ~workers:w ~throwers program in
          check_same ~what:(Printf.sprintf "%s w%d" name w) base out;
          List.iter
            (fun (e : Pipeline.schedule_entry) ->
              if not (e.Pipeline.s_worker >= 0 && e.Pipeline.s_worker < w)
              then
                Alcotest.failf "%s w%d: instance %s on worker slot %d" name w
                  e.Pipeline.s_instance e.Pipeline.s_worker)
            out.o_schedule)
        [ 2; default_workers ])
    examples

(* ---------------- differential: generated workloads ---------------- *)

let test_generated_differential () =
  List.iter
    (fun seed ->
      let program = generated ~seed in
      let base = run ~workers:1 program in
      List.iter
        (fun w ->
          let out = run ~workers:w program in
          check_same ~what:(Printf.sprintf "seed %d w%d" seed w) base out)
        [ 2; default_workers ])
    [ 11; 22; 33 ]

(* ---------------- differential: under an injected-fault plan ---------- *)

let test_fault_plan_differential () =
  let program = generated ~seed:11 in
  let plan = "seed=9,rate=0.05" in
  let base = run ~workers:1 ~plan program in
  Alcotest.(check bool) "plan actually fired" true
    (base.o_stats.Pipeline.n_faults_injected > 0);
  List.iter
    (fun w ->
      let out = run ~workers:w ~plan program in
      check_same ~what:(Printf.sprintf "faulty w%d" w) base out)
    [ 2; default_workers ]

(* ---------------- determinism regressions ---------------- *)

(* Same worker count, run twice: the report bytes and counters must not
   depend on scheduling accidents either. *)
let test_repeatability_same_count () =
  let program = Jir.Resolve.parse_exn ~file:"quickstart.jir" quickstart_src in
  let a = run ~workers:default_workers program in
  let b = run ~workers:default_workers program in
  check_same ~what:"repeat w=default" a b

(* The witness is name-sorted and internal symbols (generated `$`,
   statement-suffixed `@`) never leak into it — the model ordering under
   the report bytes. *)
let test_witness_ordering () =
  let v name = Smt.Linexpr.var (Smt.Symbol.intern name) in
  let c n = Smt.Linexpr.const n in
  let f =
    Smt.Formula.conj
      [ Smt.Formula.eq (v "Main::main::b") (c 2);
        Smt.Formula.eq (v "Main::main::a") (c 1);
        Smt.Formula.eq (v "gen$witness") (c 7);
        Smt.Formula.eq (v "tmp@3::x") (c 9) ]
  in
  let w = Pipeline.witness_of_constraint f in
  Alcotest.(check (list (pair string int)))
    "sorted, internals filtered"
    [ ("Main::main::a", 1); ("Main::main::b", 2) ]
    w;
  Alcotest.(check (list (pair string int))) "stable across calls" w
    (Pipeline.witness_of_constraint f)

(* The admission budget serializes the largest instances but never changes
   the output. *)
let test_admission_budget () =
  let program = generated ~seed:22 in
  let base = run ~workers:1 program in
  let out = run ~workers:default_workers ~admission_budget:1 program in
  check_same ~what:"admission budget 1" base out

(* The schedule covers exactly the typestate instances, once each. *)
let test_schedule_entries () =
  let program = generated ~seed:11 in
  let out = run ~workers:2 program in
  let names =
    List.sort compare
      (List.map (fun e -> e.Pipeline.s_instance) out.o_schedule)
  in
  Alcotest.(check (list string))
    "typestate instances scheduled once each"
    [ "io"; "lock"; "null"; "socket" ]
    names;
  List.iter
    (fun (e : Pipeline.schedule_entry) ->
      Alcotest.(check bool)
        (e.Pipeline.s_instance ^ ": sane entry")
        true
        (e.Pipeline.s_estimate >= 0 && e.Pipeline.s_wall_s >= 0.))
    out.o_schedule

(* ---------------- the shared domain budget ---------------- *)

let with_cap n f =
  Domains.set_cap n;
  Fun.protect ~finally:(fun () -> Domains.set_cap Domains.default_cap) f

let test_domain_budget_unit () =
  with_cap 3 (fun () ->
      (* cap 3 = this domain + 2 grantable slots *)
      Alcotest.(check int) "grant capped" 2 (Domains.acquire ~max:10);
      Alcotest.(check int) "exhausted" 0 (Domains.acquire ~max:1);
      Domains.release 2;
      Alcotest.(check int) "zero request" 0 (Domains.acquire ~max:0);
      (* a reservation takes priority: acquire yields nothing until the
         reserved slots are released, even though reserve never blocked *)
      Domains.reserve 2;
      Alcotest.(check int) "reserved away" 0 (Domains.acquire ~max:1);
      Domains.release 2;
      Alcotest.(check int) "back after release" 1 (Domains.acquire ~max:1);
      Domains.release 1)

(* W workers x S solver domains must not multiply: with the budget fully
   reserved by the worker pool, the only domains ever spawned are the pool
   itself — the engines' batch fan-out degrades to sequential solving. *)
let test_no_domain_oversubscription () =
  let program = generated ~seed:11 in
  let workdir = fresh_workdir () in
  with_cap 1 (fun () ->
      let config =
        { (Pipeline.default_config ~workdir) with
          Pipeline.track_null = true;
          workers = 2;
          engine =
            { (Engine.default_config ~workdir) with
              Engine.solver_domains = 4;
              retry_base_ms = 0.01 } }
      in
      let before = Domains.n_spawned () in
      let prepared = Pipeline.prepare ~config ~workdir program in
      let _, props, _ =
        Checkers.run_all_scheduled prepared (Checkers.all_with_null ())
      in
      ignore (Pipeline.stats prepared props);
      Alcotest.(check int) "only the worker pool spawned domains" 2
        (Domains.n_spawned () - before))

(* ---------------- stress: crash, isolation, resume ---------------- *)

let test_crash_isolation_resume () =
  let program = generated ~seed:33 in
  (* the reference: a clean single-worker run in its own workdir *)
  let expect = run ~workers:1 program in
  (* the crashing run: phases 0/1 run cleanly, then the crash plan is
     installed for the checking phase only — like a process killed
     mid-checking.  Every storage operation is watched and attributed to
     the instance scope the scheduler sets on the worker. *)
  let workdir = fresh_workdir () in
  let config =
    { (Pipeline.default_config ~workdir) with
      Pipeline.track_null = true;
      prefilter_properties = Checkers.fsms ();
      workers = default_workers;
      engine =
        { (Engine.default_config ~workdir) with Engine.retry_base_ms = 0.01 } }
  in
  let prepared = Pipeline.prepare ~config ~workdir program in
  let owners : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  let omu = Mutex.create () in
  Faults.set_observer
    (Some
       (fun _op path ->
         let dir = Filename.basename (Filename.dirname path) in
         if String.length dir >= 3 && String.sub dir 0 3 = "df-" then begin
           let scope = Option.value ~default:"<none>" (Faults.scope ()) in
           Mutex.lock omu;
           let cur = Option.value ~default:[] (Hashtbl.find_opt owners path) in
           if not (List.mem scope cur) then
             Hashtbl.replace owners path (scope :: cur);
           Mutex.unlock omu
         end));
  let crashed = ref false in
  let saved = Faults.current () in
  Faults.install (Faults.parse "seed=5,crash-checkpoint=2");
  (try
     ignore (Checkers.run_all_scheduled prepared (Checkers.all_with_null ()))
   with Faults.Crash _ -> crashed := true);
  (match saved with Some p -> Faults.install p | None -> Faults.clear ());
  Faults.set_observer None;
  Alcotest.(check bool) "a worker crashed mid-run" true !crashed;
  (* isolation: every partition file under an instance workdir was touched
     by exactly that instance's scope and by no other *)
  Hashtbl.iter
    (fun path scopes ->
      let dir = Filename.basename (Filename.dirname path) in
      match scopes with
      | [ scope ] when scope = dir -> ()
      | _ ->
          Alcotest.failf "%s touched by scopes [%s], expected [%s]"
            (Filename.basename path)
            (String.concat "; " scopes)
            dir)
    owners;
  Alcotest.(check bool) "observer saw instance storage traffic" true
    (Hashtbl.length owners > 0);
  (* resume the crashed run's checkpoints at a different worker count, with
     no plan: the result is the clean run's, byte for byte *)
  let resumed = run ~workers:2 ~resume:true ~workdir program in
  Alcotest.(check string) "resume-after-crash = fresh run" expect.o_reports
    resumed.o_reports;
  Alcotest.(check int) "no inconclusive instances after resume" 0
    resumed.o_stats.Pipeline.n_inconclusive

let suite =
  [ Alcotest.test_case "domains: acquire/reserve/release budget" `Quick
      test_domain_budget_unit;
    Alcotest.test_case "domains: workers pin total spawn count" `Quick
      test_no_domain_oversubscription;
    Alcotest.test_case "differential: example subjects" `Quick
      test_examples_differential;
    Alcotest.test_case "differential: generated workloads" `Quick
      test_generated_differential;
    Alcotest.test_case "differential: under a fault plan" `Quick
      test_fault_plan_differential;
    Alcotest.test_case "determinism: repeat at same worker count" `Quick
      test_repeatability_same_count;
    Alcotest.test_case "determinism: witness ordering" `Quick
      test_witness_ordering;
    Alcotest.test_case "determinism: admission budget" `Quick
      test_admission_budget;
    Alcotest.test_case "schedule entries cover the instances" `Quick
      test_schedule_entries;
    Alcotest.test_case "stress: crash, isolation, resume" `Quick
      test_crash_isolation_resume ]
