(* Command-line front door: check a JIR source file with the built-in
   property checkers.

     grapple check file.jir --checkers io,lock,exception,socket
     grapple cfet file.jir            (dump the per-method CFETs)
     grapple graph file.jir           (alias-graph statistics)
     grapple closure edges.txt        (standalone grammar-guided closure
                                       over a Graspan-style edge list)    *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path =
  match Jir.Resolve.parse_exn ~file:(Filename.basename path) (read_file path) with
  | p -> p
  | exception Jir.Resolve.Resolve_error errs ->
      List.iter (fun e -> prerr_endline (Jir.Resolve.error_to_string e)) errs;
      exit 2
  | exception Jir.Parser.Parse_error (msg, line) ->
      Printf.eprintf "%s:%d: parse error: %s\n" path line msg;
      exit 2
  | exception Jir.Lexer.Lex_error (msg, line) ->
      Printf.eprintf "%s:%d: lexical error: %s\n" path line msg;
      exit 2

let with_workdir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "grapple-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> ()) (fun () -> f dir)

open Cmdliner

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"JIR source file")

let checkers_arg =
  Arg.(value & opt (some string) None
       & info [ "checkers" ] ~docv:"LIST"
           ~doc:"comma-separated checker names (built-in, DSL-defined, or \
                 loaded with $(b,--spec)), or `all' for every registered \
                 checker.  Default: the paper's four checkers, or the \
                 loaded spec's properties when $(b,--spec) is given")

let spec_arg =
  Arg.(value & opt_all file []
       & info [ "spec" ] ~docv:"FILE"
           ~doc:"load typestate properties from a .gspec file (repeatable); \
                 the loaded checkers run by default and take precedence \
                 over same-named built-ins")

let unroll_arg =
  Arg.(value & opt int 2 & info [ "unroll" ] ~docv:"K" ~doc:"loop unroll bound")

let paths_arg =
  Arg.(value & flag & info [ "paths" ] ~doc:"print the recovered path of each warning")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"write a Chrome trace_event JSON timeline of the run to \
                 FILE (load it in Perfetto or chrome://tracing).  Tracing \
                 only observes the run: warnings and statistics are \
                 byte-identical with and without it")

let metrics_json_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-json" ] ~docv:"FILE"
           ~doc:"write the run's full metric registry (counters, timers, \
                 histograms) as JSON to FILE")

let json_arg =
  Arg.(value & flag
       & info [ "json" ] ~doc:"print one JSON report per line (machine-readable)")

let no_prefilter_arg =
  Arg.(value & flag
       & info [ "no-prefilter" ]
           ~doc:"disable the escape-based pre-filter; every tracked \
                 allocation goes through the engine")

(* Checkers loaded from --spec files; a positioned diagnostic exits 2. *)
let load_specs files =
  List.concat_map
    (fun path ->
      match Spec.compile_file path with
      | cs -> List.map Checkers.of_spec cs
      | exception Spec.Spec_error (pos, msg) ->
          prerr_endline (Spec.error_to_string (pos, msg));
          exit 2)
    files

let checker_of_name ~loaded s =
  match Checkers.resolve ~loaded s with
  | c -> c
  | exception Invalid_argument msg ->
      prerr_endline msg;
      exit 2

let checker_names ~loaded spec =
  match spec with
  | None ->
      if loaded <> [] then List.map (fun (c : Checkers.t) -> c.Checkers.name) loaded
      else Checkers.names () |> List.filter (fun n -> n <> "null")
  | Some spec ->
      if String.trim spec = "all" then
        (* loaded checkers shadow same-named built-ins, so drop duplicates
           (first occurrence wins: the report keeps the built-in order) *)
        let all =
          Checkers.names ()
          @ List.map (fun (c : Checkers.t) -> c.Checkers.name) loaded
        in
        List.fold_left
          (fun acc n -> if List.mem n acc then acc else n :: acc)
          [] all
        |> List.rev
      else String.split_on_char ',' spec

let no_summary_prefilter_arg =
  Arg.(value & flag
       & info [ "no-summary-prefilter" ]
           ~doc:"disable the interprocedural summary pre-filter; allocations \
                 it would prove unreportable still go through the engine")

let no_alias_prefilter_arg =
  Arg.(value & flag
       & info [ "no-alias-prefilter" ]
           ~doc:"disable the whole-program points-to pre-filter and the \
                 closure-graph slicer; allocations it would prove \
                 unreportable still go through the engine and no alias \
                 edges are sliced.  The warning report is byte-identical \
                 either way")

let workdir_arg =
  Arg.(value & opt (some string) None
       & info [ "workdir" ] ~docv:"DIR"
           ~doc:"working directory for partition files and checkpoint \
                 manifests (default: a fresh temporary directory); keep it \
                 to make a later $(b,--resume) possible")

let resume_arg =
  Arg.(value & opt (some string) None
       & info [ "resume" ] ~docv:"DIR"
           ~doc:"resume an interrupted run from DIR's checkpoint manifests, \
                 recomputing only unfinished work; the report is \
                 byte-identical to an uninterrupted run")

let instance_budget_arg =
  Arg.(value & opt float 0.
       & info [ "instance-budget" ] ~docv:"SECONDS"
           ~doc:"wall-clock budget per checking instance and attempt; 0 = \
                 unlimited.  An instance that exhausts it is retried from \
                 its last checkpoint and eventually degraded to an \
                 `inconclusive' report instead of aborting the run")

let edge_budget_arg =
  Arg.(value & opt int 0
       & info [ "edge-budget" ] ~docv:"N"
           ~doc:"transitive-edge budget per checking instance; 0 = \
                 unlimited.  Same retry-then-degrade behaviour as \
                 $(b,--instance-budget)")

let max_retries_arg =
  Arg.(value & opt int 3
       & info [ "max-retries" ] ~docv:"N"
           ~doc:"restarts per checking instance (and retries per storage \
                 operation) before giving up on it")

let fault_plan_arg =
  Arg.(value & opt (some string) None
       & info [ "fault-plan" ] ~docv:"SPEC"
           ~doc:"install a deterministic storage fault plan, e.g. \
                 `seed=7,rate=0.05' or `fail-write=3,crash-checkpoint=2' \
                 (testing the resilience layer; also read from the \
                 GRAPPLE_FAULT_PLAN environment variable)")

let workers_arg =
  Arg.(value & opt (some int) None
       & info [ "workers" ] ~docv:"N"
           ~doc:"worker domains for the phase-2/3 checking instances \
                 (default: the GRAPPLE_WORKERS environment variable, else \
                 the machine's recommended domain count).  The report is \
                 byte-identical at every worker count, and a run \
                 interrupted at any count can be $(b,--resume)d at any \
                 other")

let admission_budget_arg =
  Arg.(value & opt int 0
       & info [ "admission-budget" ] ~docv:"N"
           ~doc:"cap on the summed size estimates of checking instances \
                 running concurrently (0 = unlimited); bounds the peak \
                 footprint of a parallel run")

let shard_procs_arg =
  Arg.(value & opt (some int) None
       & info [ "shard-procs" ] ~docv:"N"
           ~doc:"run the phase-2/3 checking instances in N supervised \
                 worker $(i,processes) instead of in-process domains \
                 (default: the GRAPPLE_SHARD_PROCS environment variable, \
                 else 0 = in-process).  A worker that crashes, hangs, or \
                 overruns its deadline is killed and its instance \
                 re-dispatched from its checkpoint manifest; the warning \
                 report is byte-identical at every process count")

let heartbeat_ms_arg =
  Arg.(value & opt float 100.
       & info [ "heartbeat-ms" ] ~docv:"MS"
           ~doc:"shard-worker heartbeat period in milliseconds; a worker \
                 silent for too many periods is presumed hung and replaced")

let max_redispatch_arg =
  Arg.(value & opt int 3
       & info [ "max-redispatch" ] ~docv:"N"
           ~doc:"re-dispatches of a checking instance whose shard worker \
                 died before the instance is degraded to an `inconclusive' \
                 report")

let shard_deadline_arg =
  Arg.(value & opt float 0.
       & info [ "shard-deadline" ] ~docv:"SECONDS"
           ~doc:"wall deadline per instance dispatch in shard mode; a \
                 worker that overruns it is killed and the instance \
                 re-dispatched (0 = none)")

let shard_kill_nth_arg =
  Arg.(value & opt int 0
       & info [ "shard-kill-nth" ] ~docv:"N"
           ~doc:"fault injection: SIGKILL the worker receiving the Nth \
                 instance assignment of the run (0 = off); exercises the \
                 re-dispatch path deterministically")

let smt_budget_arg =
  Arg.(value & opt int 0
       & info [ "smt-budget" ] ~docv:"N"
           ~doc:"DPLL(T) round budget per solver call; 0 = the default \
                 (10000).  Exhaustion stays sound: the path is assumed \
                 feasible, counted in the smt-budget-hits stat")

let check_cmd =
  let run file checkers specs unroll paths trace_out metrics_out json no_prefilter
      no_summary_prefilter no_alias_prefilter workdir_opt resume_opt
      instance_budget edge_budget max_retries fault_plan smt_budget workers_opt
      admission_budget shard_procs_opt heartbeat_ms max_redispatch
      shard_deadline shard_kill_nth =
    let shard_procs =
      match shard_procs_opt with
      | Some n -> max 0 n
      | None -> (
          match
            Option.bind (Sys.getenv_opt "GRAPPLE_SHARD_PROCS") int_of_string_opt
          with
          | Some n -> max 0 n
          | None -> 0)
    in
    (* SIGINT/SIGTERM request a cooperative interrupt: the engine raises at
       its next checkpoint boundary, where the manifest is already durable,
       so an interrupted run is always --resume-able *)
    let on_signal = Sys.Signal_handle (fun _ -> Engine.Interrupt.request ()) in
    (try Sys.set_signal Sys.sigint on_signal with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm on_signal with Invalid_argument _ -> ());
    let workers =
      match workers_opt with
      | Some w -> max 1 w
      | None -> (
          match
            Option.bind (Sys.getenv_opt "GRAPPLE_WORKERS") int_of_string_opt
          with
          | Some w -> max 1 w
          | None -> max 1 (Domain.recommended_domain_count ()))
    in
    (match
       match fault_plan with
       | Some _ -> fault_plan
       | None -> Sys.getenv_opt "GRAPPLE_FAULT_PLAN"
     with
    | Some spec when String.trim spec <> "" ->
        Engine.Faults.install (Engine.Faults.parse spec)
    | _ -> ());
    Smt.Solver.set_budget smt_budget;
    (match trace_out with
    | Some path -> Obs.Trace.start ~path
    | None -> ());
    Fun.protect ~finally:Obs.Trace.stop @@ fun () ->
    let program = load file in
    if program.Jir.Ast.entries = [] then
      prerr_endline
        "warning: no `entry Class.method;` declaration -- nothing will be \
         analyzed";
    let loaded = load_specs specs in
    let names = checker_names ~loaded checkers in
    let cs = List.map (checker_of_name ~loaded) names in
    let prefilter_properties =
      List.filter_map
        (fun (c : Checkers.t) ->
          match c.Checkers.kind with
          | `Typestate fsm -> Some fsm
          | `Exception_walk _ -> None)
        cs
    in
    let explicit_dir =
      match resume_opt with Some d -> Some d | None -> workdir_opt
    in
    let in_workdir f =
      match explicit_dir with
      | Some dir ->
          Engine.ensure_dir dir;
          f dir
      | None -> with_workdir f
    in
    (* Sweep orphaned *.tmp files (a writer interrupted mid-atomic-write)
       from the workdir and every engine subdirectory, so nothing stale
       shadows the durable state a later --resume restores. *)
    let sweep_temps workdir =
      let swept = ref (Engine.Storage.sweep_stale_temps ~dir:workdir) in
      let sweep d = swept := !swept + Engine.Storage.sweep_stale_temps ~dir:d in
      sweep (Filename.concat workdir "alias");
      if Sys.file_exists workdir && Sys.is_directory workdir then
        Array.iter
          (fun f ->
            if String.length f > 3 && String.sub f 0 3 = "df-" then
              sweep (Filename.concat workdir f))
          (Sys.readdir workdir);
      !swept
    in
    in_workdir (fun workdir ->
        try
        let config =
          { (Grapple.Pipeline.default_config ~workdir) with
            Grapple.Pipeline.unroll_bound = unroll;
            library_throwers = Checkers.Specs.library_throwers;
            track_null = List.mem "null" names;
            prefilter = not no_prefilter;
            prefilter_properties;
            summary_prefilter = not no_summary_prefilter;
            alias_prefilter = not no_alias_prefilter;
            max_retries;
            instance_budget_s = instance_budget;
            instance_edge_budget = edge_budget;
            resume = resume_opt <> None;
            workers;
            admission_budget;
            shard_procs;
            heartbeat_ms;
            max_redispatch;
            shard_deadline_s = shard_deadline;
            shard_kill_nth }
        in
        let prepared = Grapple.Pipeline.prepare ~config ~workdir program in
        let results, props, schedule = Checkers.run_all_scheduled prepared cs in
        (* per-worker schedule summary: stderr only, so stdout stays
           byte-identical across worker counts *)
        if workers > 1 || shard_procs > 0 then
          List.iter
            (fun (s : Grapple.Pipeline.schedule_entry) ->
              Printf.eprintf
                "worker %d: instance %s est=%d wall=%.3fs\n"
                s.Grapple.Pipeline.s_worker s.Grapple.Pipeline.s_instance
                s.Grapple.Pipeline.s_estimate s.Grapple.Pipeline.s_wall_s)
            schedule;
        let total = ref 0 in
        List.iter
          (fun (name, reports) ->
            if json then
              List.iter
                (fun r -> print_endline (Grapple.Report.to_json r))
                reports
            else begin
              Printf.printf "== checker %s: %d warning(s)\n" name
                (List.length reports);
              List.iter
                (fun r ->
                  if paths then
                    Fmt.pr "  %a@." Grapple.Report.pp_with_trace r
                  else Printf.printf "  %s\n" (Grapple.Report.to_string r))
                reports
            end;
            total := !total + List.length reports)
          results;
        let stats = Grapple.Pipeline.stats prepared props in
        (match metrics_out with
        | Some path ->
            let oc = open_out path in
            output_string oc
              (Obs.Registry.to_json stats.Grapple.Pipeline.registry);
            output_char oc '\n';
            close_out oc
        | None -> ());
        if json then
          (* machine-readable run stats, one line, after the reports *)
          Printf.printf
            {|{"tool":"stats","warnings":%d,"n_retried":%d,"n_recovered":%d,"n_inconclusive":%d,"n_smt_budget_hits":%d,"n_faults_injected":%d,"n_corrupt_recovered":%d,"cache_enabled":%b,"bytes_read":%d,"bytes_written":%d,"n_alias_pruned":%d,"n_edges_presliced":%d,"n_edges_sliced":%d}|}
            !total stats.Grapple.Pipeline.n_retried
            stats.Grapple.Pipeline.n_recovered
            stats.Grapple.Pipeline.n_inconclusive
            stats.Grapple.Pipeline.n_smt_budget_hits
            stats.Grapple.Pipeline.n_faults_injected
            stats.Grapple.Pipeline.n_corrupt_recovered
            stats.Grapple.Pipeline.cache_enabled
            stats.Grapple.Pipeline.bytes_read
            stats.Grapple.Pipeline.bytes_written
            stats.Grapple.Pipeline.n_alias_pruned
            stats.Grapple.Pipeline.n_edges_presliced
            stats.Grapple.Pipeline.n_edges_sliced
          |> print_newline;
        let summary = if json then Printf.eprintf else Printf.printf in
        let cache_cell =
          (* "off" for a disabled cache instead of a misleading 0/0 *)
          if not stats.Grapple.Pipeline.cache_enabled then "off"
          else
            Printf.sprintf "%d/%d" stats.Grapple.Pipeline.cache_hits
              stats.Grapple.Pipeline.cache_lookups
        in
        summary
          "\n%d warning(s); |V|=%d |E|before=%d |E|after=%d partitions=%d \
           iterations=%d constraints=%d cache=%s prefiltered=%d \
           summary-pruned=%d alias-pruned=%d sliced=%d retried=%d \
           recovered=%d inconclusive=%d smt-budget-hits=%d \
           faults-injected=%d\n"
          !total stats.Grapple.Pipeline.n_vertices
          stats.Grapple.Pipeline.n_edges_before
          stats.Grapple.Pipeline.n_edges_after
          stats.Grapple.Pipeline.n_partitions
          stats.Grapple.Pipeline.n_iterations
          stats.Grapple.Pipeline.n_constraints_solved
          cache_cell
          stats.Grapple.Pipeline.n_prefiltered
          stats.Grapple.Pipeline.n_summary_pruned
          stats.Grapple.Pipeline.n_alias_pruned
          stats.Grapple.Pipeline.n_edges_sliced
          stats.Grapple.Pipeline.n_retried stats.Grapple.Pipeline.n_recovered
          stats.Grapple.Pipeline.n_inconclusive
          stats.Grapple.Pipeline.n_smt_budget_hits
          stats.Grapple.Pipeline.n_faults_injected
        with Engine.Interrupted ->
          (* interrupted between checkpoints: the manifests on disk are
             durable and consistent — clean up orphaned temp files and tell
             the user how to continue *)
          let swept = sweep_temps workdir in
          Printf.eprintf
            "interrupted: checkpoint manifests are durable (%d stale temp \
             file(s) swept); continue with\n  grapple check %s --resume %s\n%!"
            swept file workdir;
          exit 130)
  in
  Cmd.v (Cmd.info "check" ~doc:"run property checkers on a JIR file")
    Term.(const run $ file_arg $ checkers_arg $ spec_arg $ unroll_arg $ paths_arg
          $ trace_out_arg $ metrics_json_arg $ json_arg $ no_prefilter_arg
          $ no_summary_prefilter_arg $ no_alias_prefilter_arg $ workdir_arg
          $ resume_arg
          $ instance_budget_arg $ edge_budget_arg $ max_retries_arg
          $ fault_plan_arg $ smt_budget_arg $ workers_arg
          $ admission_budget_arg $ shard_procs_arg $ heartbeat_ms_arg
          $ max_redispatch_arg $ shard_deadline_arg $ shard_kill_nth_arg)

let interproc_arg =
  Arg.(value & flag
       & info [ "interproc" ]
           ~doc:"also run the whole-program lints: the summary-based ones \
                 (interproc-null, interproc-leak) and the points-to-based \
                 ones (pointsto-never-read, pointsto-confused-sink)")

let lint_cmd =
  let run file json interproc =
    let program = load file in
    (* per-pass latency: every analysis pass reports its wall time into a
       histogram (one per pass name) so repeated passes — the intraproc
       lints run once per method — accumulate count and total seconds *)
    let reg = Obs.Registry.create () in
    let pass_names = ref [] in
    let on_pass name secs =
      if not (List.mem name !pass_names) then
        pass_names := name :: !pass_names;
      Obs.Registry.observe (Obs.Registry.histogram reg ("lint.pass." ^ name))
        secs
    in
    let timed name f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      on_pass name (Unix.gettimeofday () -. t0);
      r
    in
    let diags = Analysis.Lint.check_program ~on_pass program in
    let diags =
      if interproc then
        let pt =
          timed "pointsto-solve" (fun () -> Analysis.Pointsto.analyze program)
        in
        diags
        @ Analysis.Summaries.interproc_diags ~on_pass
            ~fsms:(Checkers.fsms ()) program
        @ timed "pointsto-lints" (fun () -> Analysis.Pointsto.diags pt)
      else diags
    in
    List.iter
      (fun d ->
        if json then print_endline (Analysis.Lint.to_json d)
        else print_endline (Analysis.Lint.to_string d))
      diags;
    if json then begin
      (* one machine-readable timing document after the diagnostics *)
      let parts =
        List.sort compare !pass_names
        |> List.map (fun n ->
               let h = Obs.Registry.histogram reg ("lint.pass." ^ n) in
               Printf.sprintf {|{"pass":"%s","count":%d,"seconds":%.6f}|} n
                 (Obs.Registry.hist_count h)
                 (Obs.Registry.hist_sum h))
      in
      Printf.printf {|{"tool":"lint-timing","passes":[%s]}|}
        (String.concat "," parts);
      print_newline ()
    end
    else Printf.printf "%d lint diagnostic(s)\n" (List.length diags);
    if diags <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"run the dataflow lint analyses (use-before-init, null-deref, \
             dead-branch, unreachable; with --interproc also the \
             summary- and points-to-based whole-program lints) on a JIR \
             file")
    Term.(const run $ file_arg $ json_arg $ interproc_arg)

let cfet_cmd =
  let run file unroll =
    let program = load file in
    let program = Jir.Unroll.unroll_program ~bound:unroll program in
    let icfet = Symexec.Icfet.build program in
    Array.iter
      (fun (c : Symexec.Cfet.t) ->
        Fmt.pr "=== %s (%d nodes, depth %d)@.%a@.@."
          (Jir.Ast.meth_id c.Symexec.Cfet.meth)
          c.Symexec.Cfet.node_count c.Symexec.Cfet.depth Symexec.Cfet.pp c)
      icfet.Symexec.Icfet.cfets
  in
  Cmd.v (Cmd.info "cfet" ~doc:"dump per-method CFETs")
    Term.(const run $ file_arg $ unroll_arg)

let graph_cmd =
  let run file unroll =
    let program = load file in
    let program = Jir.Unroll.unroll_program ~bound:unroll program in
    let icfet = Symexec.Icfet.build program in
    let cg = Jir.Callgraph.build program in
    let clones = Graphgen.Clone_tree.build icfet cg in
    let ag = Graphgen.Alias_graph.build icfet clones in
    Printf.printf
      "methods=%d icfet-nodes=%d call-edges=%d clones=%d vertices=%d edges=%d\n"
      (Symexec.Icfet.n_methods icfet)
      (Symexec.Icfet.total_nodes icfet)
      (Symexec.Icfet.n_call_edges icfet)
      (Graphgen.Clone_tree.n_instances clones)
      (Graphgen.Alias_graph.n_vertices ag)
      (Graphgen.Alias_graph.n_edges ag)
  in
  Cmd.v (Cmd.info "graph" ~doc:"alias-graph statistics")
    Term.(const run $ file_arg $ unroll_arg)

(* Standalone closure over a Graspan-style edge list: one edge per line,
   "src dst label" with label in {new, assign, store[F], load[F]}.  Runs the
   pointer-analysis grammar without path constraints and prints the derived
   flowsTo and alias facts — the engine as a reusable building block. *)
let closure_cmd =
  let module AE = Engine.Make (Cfl.Pointer_grammar) in
  let parse_label l =
    if l = "new" then Cfl.Pointer_grammar.New
    else if l = "assign" then Cfl.Pointer_grammar.Assign
    else
      let field prefix =
        let n = String.length prefix in
        if String.length l > n + 1
           && String.sub l 0 n = prefix
           && l.[n] = '['
           && l.[String.length l - 1] = ']'
        then
          Some
            (Smt.Symbol.intern
               (String.sub l (n + 1) (String.length l - n - 2)))
        else None
      in
      match (field "store", field "load") with
      | Some f, _ -> Cfl.Pointer_grammar.Store f
      | _, Some f -> Cfl.Pointer_grammar.Load f
      | None, None ->
          Printf.eprintf
            "unknown edge label %S (expected new, assign, store[F], load[F])\n"
            l;
          exit 2
  in
  let run file =
    let workdir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "grapple-closure-%d" (Unix.getpid ()))
    in
    let t =
      AE.create ~decode:(fun _ -> Smt.Formula.True) ~workdir ()
    in
    let ic = open_in file in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" && line.[0] <> '#' then
           match String.split_on_char ' ' line |> List.filter (( <> ) "") with
           | [ src; dst; label ] ->
               AE.add_seed t ~src:(int_of_string src) ~dst:(int_of_string dst)
                 ~label:(parse_label label) ~enc:[]
           | _ -> failwith ("malformed edge line: " ^ line)
       done
     with End_of_file -> close_in ic);
    AE.run t;
    AE.iter_result_edges t (fun e ->
        Printf.printf "%d %d %s\n" e.AE.src e.AE.dst
          (Cfl.Pointer_grammar.to_string e.AE.label));
    AE.cleanup t
  in
  Cmd.v
    (Cmd.info "closure"
       ~doc:"grammar-guided transitive closure over an edge-list file")
    Term.(const run $ file_arg)

(* Emit a synthetic workload subject as JIR source, so CI and bench scripts
   can run the pipeline on a generated program without linking the workload
   library themselves. *)
let gen_cmd =
  let profile_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PROFILE"
             ~doc:"subject profile name (e.g. minizk, minihdfs, minitaint)")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"write the generated JIR to FILE (default: stdout)")
  in
  let run profile out =
    (* thunks: the megaload profiles are expensive, so nothing is
       generated until the requested name is known *)
    let mega_units default =
      match
        Option.bind (Sys.getenv_opt "GRAPPLE_MEGALOAD_UNITS") int_of_string_opt
      with
      | Some u when u > 0 -> u
      | _ -> default
    in
    let profiles : (string * (unit -> Workload.Generator.subject)) list =
      [ ("minizk", Workload.Generator.mini_zookeeper);
        ("minihadoop", Workload.Generator.mini_hadoop);
        ("minihdfs", Workload.Generator.mini_hdfs);
        ("minihbase", Workload.Generator.mini_hbase);
        ("minilocks", Workload.Generator.mini_locks);
        ("minitaint", Workload.Generator.mini_taint);
        ("miniclose", Workload.Generator.mini_close);
        ("minitwr", Workload.Generator.mini_twr);
        ("mega100k",
         fun () -> Workload.Generator.mega_100k ~units:(mega_units 400) ());
        ("mega1m",
         fun () -> Workload.Generator.mega_1m ~units:(mega_units 2400) ()) ]
    in
    match List.assoc_opt profile profiles with
    | None ->
        Printf.eprintf "unknown profile %S (available: %s)\n" profile
          (String.concat ", " (List.map fst profiles));
        exit 2
    | Some mk -> (
        let s = mk () in
        let text = Jir.Pp.program_to_string s.Workload.Generator.program in
        match out with
        | None -> print_string text
        | Some path ->
            let oc = open_out path in
            output_string oc text;
            close_out oc)
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:"emit a synthetic benchmark subject (JIR source) by profile name")
    Term.(const run $ profile_arg $ out_arg)

(* The adversarial soundness fuzzer (ISSUE 9): random generated subjects
   through the full pipeline vs. the concrete reference interpreter. *)
let fuzz_cmd =
  let iters_arg =
    Arg.(value & opt int 50
         & info [ "iters" ] ~docv:"N" ~doc:"fuzz iterations (one generated \
                  subject each)")
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"base seed; every generated subject, input choice, and \
                   shrink step derives from it, so a run is reproducible")
  in
  let runs_arg =
    Arg.(value & opt int 6
         & info [ "runs" ] ~docv:"N"
             ~doc:"concrete interpreter runs (distinct input seeds) per \
                   subject")
  in
  let corpus_arg =
    Arg.(value & opt (some string) None
         & info [ "corpus-dir" ] ~docv:"DIR"
             ~doc:"write minimized counterexamples to DIR (default: no \
                   corpus output)")
  in
  let weaken_arg =
    Arg.(value & opt (some string) None
         & info [ "weaken-tier" ] ~docv:"TIER"
             ~doc:"TESTING ONLY: deliberately break a triage tier \
                   (escape|summary|alias) so the harness itself can be \
                   validated — a weakened run must fail")
  in
  let run iters seed runs corpus_dir weaken workers_opt shard_procs_opt
      fault_plan =
    let workers = match workers_opt with Some w when w > 0 -> w | _ -> 1 in
    let shard_procs =
      match shard_procs_opt with Some n when n >= 0 -> n | _ -> 0
    in
    (* soundness must also hold while storage faults are being injected
       and recovered: same flag syntax as `check --fault-plan` *)
    (match fault_plan with
    | Some spec -> Engine.Faults.install (Engine.Faults.parse spec)
    | None -> ());
    let cfg =
      { Refinterp.Fuzz.default_config with
        Refinterp.Fuzz.iters;
        seed;
        workers;
        shard_procs;
        weaken_tier = weaken;
        runs_per_program = runs;
        corpus_dir;
        log = (fun m -> Printf.eprintf "fuzz: %s\n%!" m) }
    in
    let res = Refinterp.Fuzz.run cfg in
    Printf.printf
      "fuzz: %d iterations, %d interpreter runs, %d concrete violations \
       checked, %d reports checked, %d soundness failure(s)\n"
      res.Refinterp.Fuzz.iterations res.Refinterp.Fuzz.interp_runs
      res.Refinterp.Fuzz.violations_seen res.Refinterp.Fuzz.reports_seen
      (List.length res.Refinterp.Fuzz.failures);
    List.iter
      (fun (f : Refinterp.Fuzz.failure) ->
        Printf.printf "FAIL iter=%d seed=%d checker=%s: %s%s\n" f.Refinterp.Fuzz.f_iter
          f.Refinterp.Fuzz.f_seed f.Refinterp.Fuzz.f_checker
          f.Refinterp.Fuzz.f_summary
          (match f.Refinterp.Fuzz.f_corpus_file with
          | Some p -> " (minimized: " ^ p ^ ")"
          | None -> ""))
      res.Refinterp.Fuzz.failures;
    if res.Refinterp.Fuzz.failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"adversarial soundness fuzzing: generated subjects through the \
             static pipeline vs. a concrete reference interpreter")
    Term.(const run $ iters_arg $ seed_arg $ runs_arg $ corpus_arg
          $ weaken_arg $ workers_arg $ shard_procs_arg $ fault_plan_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "grapple" ~doc:"static finite-state property checking")
          [ check_cmd; lint_cmd; cfet_cmd; graph_cmd; closure_cmd; gen_cmd;
            fuzz_cmd ]))
