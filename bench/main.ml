(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5) against the four synthetic subjects, plus the ablations
   called out in DESIGN.md and one Bechamel micro-benchmark per table.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- table2  -- a single experiment
     dune exec bench/main.exe -- fast    -- skip the slowest comparisons

   Absolute numbers are not expected to match the paper (the subjects are
   scaled-down synthetic codebases); the *shapes* are: who finds what, the
   false-positive rate, cache hit rates, the cost breakdown, and the naive
   string-constraint engine needing far more partitions/iterations.        *)

module Pipeline = Grapple.Pipeline
module Generator = Workload.Generator
module Scoring = Workload.Scoring
module Icfet = Symexec.Icfet
module E = Pathenc.Encoding

let root_workdir =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "grapple-bench-%d" (Unix.getpid ()))

let line = String.make 78 '-'

let header title paper =
  Printf.printf "\n%s\n%s\n(paper: %s)\n%s\n" line title paper line

(* ------------------------------------------------------------------ *)
(* Shared subject runs: one pipeline execution feeds Tables 1-3 + Fig 9. *)
(* ------------------------------------------------------------------ *)

type run = {
  subject : Generator.subject;
  results : (string * Grapple.Report.t list) list;
  stats : Pipeline.stats;
  wall_s : float;
}

let run_subject (subject : Generator.subject) : run =
  let name = subject.Generator.profile.Generator.name in
  let workdir = Filename.concat root_workdir name in
  let config =
    { (Pipeline.default_config ~workdir) with
      Pipeline.library_throwers = Checkers.Specs.library_throwers }
  in
  let t0 = Unix.gettimeofday () in
  let prepared = Pipeline.prepare ~config ~workdir subject.Generator.program in
  let results, props = Checkers.run_all prepared (Checkers.all ()) in
  let wall_s = Unix.gettimeofday () -. t0 in
  let stats = Pipeline.stats prepared props in
  { subject; results; stats; wall_s }

let cached_runs : run list option ref = ref None

let all_runs () =
  match !cached_runs with
  | Some rs -> rs
  | None ->
      Printf.printf "running the four subjects (shared by tables 1-3, fig 9)...\n%!";
      let rs =
        List.map
          (fun s ->
            let r = run_subject s in
            Printf.printf "  %-12s done in %.1fs\n%!"
              s.Generator.profile.Generator.name r.wall_s;
            r)
          (Generator.all_subjects ())
      in
      cached_runs := Some rs;
      rs

let hms seconds =
  let s = int_of_float seconds in
  if s >= 3600 then
    Printf.sprintf "%02dh%02dm%02ds" (s / 3600) (s mod 3600 / 60) (s mod 60)
  else if s >= 60 then Printf.sprintf "%02dm%02ds" (s / 60) (s mod 60)
  else Printf.sprintf "%.1fs" seconds

(* ------------------------------------------------------------------ *)
(* Table 1: subject characteristics.                                    *)
(* ------------------------------------------------------------------ *)

let table1 () =
  header "Table 1: characteristics of subject programs"
    "ZooKeeper 206K / Hadoop 568K / HDFS 546K / HBase 1.37M LoC";
  Printf.printf "%-12s %8s %9s %9s  %s\n" "Subject" "LoC" "#Methods"
    "#Planted" "Description";
  List.iter
    (fun (s : Generator.subject) ->
      Printf.printf "%-12s %8d %9d %9d  %s\n"
        s.Generator.profile.Generator.name s.Generator.loc s.Generator.n_methods
        (List.length s.Generator.expected)
        s.Generator.profile.Generator.description)
    (Generator.all_subjects ());
  print_endline
    "\nshape check: hbase is the largest subject, zookeeper the smallest."

(* ------------------------------------------------------------------ *)
(* Table 2: bugs reported per checker, scored against ground truth.     *)
(* ------------------------------------------------------------------ *)

let table2 () =
  header "Table 2: warnings per checker (TP / FP; FN = missed injections)"
    "376 warnings total, 17 false positives (4.7% FP rate)";
  Printf.printf "%-12s" "Subject";
  List.iter (fun c -> Printf.printf " | %-10s" c)
    [ "io"; "lock"; "except."; "socket" ];
  Printf.printf " | %-10s\n" "total";
  let grand_tp = ref 0 and grand_fp = ref 0 and grand_fn = ref 0 in
  List.iter
    (fun r ->
      Printf.printf "%-12s" r.subject.Generator.profile.Generator.name;
      let tot_tp = ref 0 and tot_fp = ref 0 in
      List.iter
        (fun checker ->
          let reports =
            Option.value ~default:[] (List.assoc_opt checker r.results)
          in
          let s =
            Scoring.score ~allow_empty:true ~checker
              ~expected:r.subject.Generator.expected ~reports ()
          in
          tot_tp := !tot_tp + s.Scoring.tp;
          tot_fp := !tot_fp + s.Scoring.fp;
          grand_fn := !grand_fn + s.Scoring.fn;
          Printf.printf " | TP%2d FP%2d" s.Scoring.tp s.Scoring.fp)
        [ "io"; "lock"; "exception"; "socket" ];
      grand_tp := !grand_tp + !tot_tp;
      grand_fp := !grand_fp + !tot_fp;
      Printf.printf " | TP%2d FP%2d\n" !tot_tp !tot_fp)
    (all_runs ());
  let fp_rate =
    if !grand_tp + !grand_fp = 0 then 0.
    else 100. *. float_of_int !grand_fp /. float_of_int (!grand_tp + !grand_fp)
  in
  Printf.printf
    "\ntotals: TP=%d FP=%d FN=%d  (FP rate %.1f%%; paper: 4.7%%)\n" !grand_tp
    !grand_fp !grand_fn fp_rate;
  print_endline
    "shape check: exception handling dominates, lock bugs are rare (one, in\n\
     hdfs), every injected bug is found, false positives are rare.\n\
     (planted null bugs are scored by the extension checker, below)";
  (* extension: the null-dereference checker, on the smallest subject (it
     tracks every [= null] pseudo-allocation, so it is the most expensive
     property per clone) *)
  header "Extension: null-dereference checker (minizk)"
    "not a paper column; evidence the system takes new FSM properties (S1.2)";
  let subject = List.hd (Generator.all_subjects ()) in
  let workdir = Filename.concat root_workdir "ext-null" in
  let config =
    { (Pipeline.default_config ~workdir) with
      Pipeline.library_throwers = Checkers.Specs.library_throwers;
      track_null = true }
  in
  let prepared = Pipeline.prepare ~config ~workdir subject.Generator.program in
  let results, _ = Checkers.run_all prepared [ Checkers.null () ] in
  let reports = Option.value ~default:[] (List.assoc_opt "null" results) in
  let sc =
    Scoring.score ~checker:"null" ~expected:subject.Generator.expected ~reports
      ()
  in
  Printf.printf "null checker on minizk: TP=%d FP=%d FN=%d\n" sc.Scoring.tp
    sc.Scoring.fp sc.Scoring.fn

(* ------------------------------------------------------------------ *)
(* Table 3: performance statistics.                                     *)
(* ------------------------------------------------------------------ *)

let table3 () =
  header "Table 3: graph sizes and running times"
    "#V, #E before/after, preprocessing/computation/total time";
  Printf.printf "%-12s %9s %9s %9s %9s %9s %9s\n" "Subject" "#V(K)" "#EB(K)"
    "#EA(K)" "PT" "CT" "TT";
  List.iter
    (fun r ->
      let s = r.stats in
      Printf.printf "%-12s %9.1f %9.1f %9.1f %9s %9s %9s\n"
        r.subject.Generator.profile.Generator.name
        (float_of_int s.Pipeline.n_vertices /. 1000.)
        (float_of_int s.Pipeline.n_edges_before /. 1000.)
        (float_of_int s.Pipeline.n_edges_after /. 1000.)
        (hms s.Pipeline.preprocess_s)
        (hms s.Pipeline.compute_s) (hms r.wall_s))
    (all_runs ());
  print_endline
    "\nshape check: computation adds a large fraction of transitive edges\n\
     (#EA > #EB) and computation time dominates preprocessing."

(* ------------------------------------------------------------------ *)
(* Figure 9: cost breakdown.                                            *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  header "Figure 9: performance breakdown (percent of total)"
    "I/O 1-4%, constraint lookup <1%, SMT solving 33-90%, edge comp. 9-63%";
  Printf.printf "%-12s %8s %12s %12s %12s\n" "Subject" "I/O" "Constraint"
    "SMT" "EdgeComp";
  List.iter
    (fun r ->
      let pct name =
        match List.assoc_opt name r.stats.Pipeline.breakdown with
        | Some p -> p
        | None -> 0.
      in
      Printf.printf "%-12s %7.1f%% %11.1f%% %11.1f%% %11.1f%%\n"
        r.subject.Generator.profile.Generator.name (pct "I/O")
        (pct "Constraint lookup") (pct "SMT solving") (pct "Edge computation"))
    (all_runs ());
  print_endline
    "\nshape check: SMT solving and edge computation dominate; constraint\n\
     encoding/decoding is cheap thanks to the interval representation."

(* ------------------------------------------------------------------ *)
(* Table 4: constraint-cache effectiveness.                             *)
(* ------------------------------------------------------------------ *)

let table4 ~fast () =
  header "Table 4: effectiveness of constraint memoization"
    "hit rates 60-78%, caching saves 64-87% of solving time";
  Printf.printf "%-12s %10s %10s %7s %9s %9s %8s\n" "Subject" "#Lookups"
    "#Hits" "Rate" "TOC(s)" "TWC(s)" "Saving";
  let subjects = Generator.all_subjects () in
  let subjects = if fast then [ List.hd subjects ] else subjects in
  List.iter
    (fun (subject : Generator.subject) ->
      let name = subject.Generator.profile.Generator.name in
      let go ~cache_enabled tag =
        let workdir =
          Filename.concat root_workdir (Printf.sprintf "t4-%s-%s" name tag)
        in
        let config =
          { (Pipeline.default_config ~workdir) with
            Pipeline.library_throwers = Checkers.Specs.library_throwers;
            engine =
              { (Engine.default_config ~workdir) with Engine.cache_enabled } }
        in
        let prepared =
          Pipeline.prepare ~config ~workdir subject.Generator.program
        in
        let _, props = Checkers.run_all prepared (Checkers.all ()) in
        Pipeline.stats prepared props
      in
      let with_cache = go ~cache_enabled:true "wc" in
      let without_cache = go ~cache_enabled:false "nc" in
      let rate =
        if with_cache.Pipeline.cache_lookups = 0 then 0.
        else
          100.
          *. float_of_int with_cache.Pipeline.cache_hits
          /. float_of_int with_cache.Pipeline.cache_lookups
      in
      let toc = without_cache.Pipeline.solve_s in
      let twc = with_cache.Pipeline.solve_s in
      let saving = if toc > 0. then 100. *. (1. -. (twc /. toc)) else 0. in
      Printf.printf "%-12s %10d %10d %6.1f%% %9.2f %9.2f %7.1f%%\n" name
        with_cache.Pipeline.cache_lookups with_cache.Pipeline.cache_hits rate
        toc twc saving)
    subjects;
  print_endline
    "\nshape check: most lookups hit the cache (edges in the same scope share\n\
     paths) and caching saves the majority of constraint-solving time."

(* ------------------------------------------------------------------ *)
(* Table 5: vs. the string-constraint engine.                           *)
(* ------------------------------------------------------------------ *)

module SEngine = Baseline.String_engine.Make (Cfl.Pointer_grammar)
module AEngine = Engine.Make (Cfl.Pointer_grammar)

(* alias-phase comparison under the same memory budget, expressed as ~40
   bytes per interval-encoded edge *)
let table5_budget_edges = 30_000

let alias_graph_of (subject : Generator.subject) =
  let program = Jir.Unroll.unroll_program ~bound:2 subject.Generator.program in
  let icfet = Icfet.build program in
  let cg = Jir.Callgraph.build program in
  let clones = Graphgen.Clone_tree.build icfet cg in
  let ag = Graphgen.Alias_graph.build icfet clones in
  (icfet, ag)

let table5 ~fast () =
  header "Table 5: Grapple vs. naive string-constraint engine (alias phase)"
    "naive needs ~10x partitions, more iterations, times out on the largest";
  Printf.printf "%-12s | %25s | %25s\n" "" "Grapple" "naive (strings)";
  Printf.printf "%-12s | %5s %5s %7s %5s | %5s %5s %7s %5s\n" "Subject" "#part"
    "#iter" "#const" "time" "#part" "#iter" "#const" "time";
  let subjects = Generator.all_subjects () in
  let subjects = if fast then [ List.hd subjects ] else subjects in
  List.iter
    (fun (subject : Generator.subject) ->
      let name = subject.Generator.profile.Generator.name in
      let icfet, ag = alias_graph_of subject in
      (* grapple engine *)
      let gw = Filename.concat root_workdir ("t5g-" ^ name) in
      let gcfg =
        { (Engine.default_config ~workdir:gw) with
          Engine.max_edges_per_partition = table5_budget_edges;
          target_partitions = 2 }
      in
      let g =
        AEngine.create ~config:gcfg ~decode:(Icfet.constraint_of icfet)
          ~workdir:gw ()
      in
      Graphgen.Alias_graph.iter_edges ag (fun e ->
          AEngine.add_seed g ~src:e.Graphgen.Alias_graph.src
            ~dst:e.Graphgen.Alias_graph.dst ~label:e.Graphgen.Alias_graph.label
            ~enc:e.Graphgen.Alias_graph.enc);
      let t0 = Unix.gettimeofday () in
      AEngine.run g;
      let g_time = Unix.gettimeofday () -. t0 in
      let gm = AEngine.metrics g in
      (* naive engine: same budget in bytes *)
      let sw = Filename.concat root_workdir ("t5s-" ^ name) in
      let scfg =
        { (Baseline.String_engine.default_config ~workdir:sw) with
          Baseline.String_engine.max_bytes_per_partition =
            table5_budget_edges * 40;
          target_partitions = 2 }
      in
      let s = SEngine.create ~config:scfg ~workdir:sw () in
      Graphgen.Alias_graph.iter_edges ag (fun e ->
          SEngine.add_seed s ~src:e.Graphgen.Alias_graph.src
            ~dst:e.Graphgen.Alias_graph.dst ~label:e.Graphgen.Alias_graph.label
            ~cstr:
              (Smt.Formula.to_string
                 (Icfet.constraint_of icfet e.Graphgen.Alias_graph.enc)));
      let t0 = Unix.gettimeofday () in
      SEngine.run s;
      let s_time = Unix.gettimeofday () -. t0 in
      let sm = SEngine.stats s in
      Printf.printf "%-12s | %5d %5d %7d %5s | %5d %5d %7d %5s\n" name
        (AEngine.n_partitions g)
        (Engine.Metrics.count gm.Engine.Metrics.pairs_processed)
        (Engine.Metrics.count gm.Engine.Metrics.constraints_solved)
        (hms g_time)
        sm.Baseline.String_engine.n_partitions
        sm.Baseline.String_engine.iterations
        sm.Baseline.String_engine.constraints_solved (hms s_time);
      AEngine.cleanup g;
      SEngine.cleanup s)
    subjects;
  print_endline
    "\nshape check: under the same memory budget the string engine needs more\n\
     partitions and iterations and pays parse-before-solve on every\n\
     constraint check."

(* ------------------------------------------------------------------ *)
(* §5.3: the traditional in-memory implementation runs out of memory.   *)
(* ------------------------------------------------------------------ *)

let oom () =
  header "Comparison (§5.3): traditional in-memory worklist implementation"
    "ran out of memory on every subject";
  (* apples-to-apples: both implementations get the same memory.  The
     engine's residency is bounded by two loaded partitions; the worklist
     must hold the whole graph plus explicit constraint objects.  The paper
     makes the same comparison at 16 GB scale. *)
  let partition_budget_edges = 2_000 in
  let bytes_per_edge = 150 in
  let shared_budget = 2 * partition_budget_edges * bytes_per_edge in
  Printf.printf "shared memory budget: %d KB (two engine partitions)\n\n"
    (shared_budget / 1024);
  Printf.printf "%-12s %22s | %32s\n" "" "Grapple engine" "in-memory worklist";
  Printf.printf "%-12s %10s %11s | %14s %12s %9s\n" "Subject" "outcome"
    "#partitions" "outcome" "peak bytes" "time";
  List.iter
    (fun (subject : Generator.subject) ->
      let name = subject.Generator.profile.Generator.name in
      let icfet, ag = alias_graph_of subject in
      (* the engine under the same budget: spills to disk and completes *)
      let gw = Filename.concat root_workdir ("oom-" ^ name) in
      let gcfg =
        { (Engine.default_config ~workdir:gw) with
          Engine.max_edges_per_partition = partition_budget_edges;
          target_partitions = 2 }
      in
      let g =
        AEngine.create ~config:gcfg ~decode:(Icfet.constraint_of icfet)
          ~workdir:gw ()
      in
      Graphgen.Alias_graph.iter_edges ag (fun e ->
          AEngine.add_seed g ~src:e.Graphgen.Alias_graph.src
            ~dst:e.Graphgen.Alias_graph.dst ~label:e.Graphgen.Alias_graph.label
            ~enc:e.Graphgen.Alias_graph.enc);
      AEngine.run g;
      let parts = AEngine.n_partitions g in
      AEngine.cleanup g;
      let r =
        Baseline.Worklist.run
          ~config:
            { Baseline.Worklist.memory_budget_bytes = shared_budget;
              max_seconds = 120. }
          icfet ag
      in
      Printf.printf "%-12s %10s %11d | %14s %12d %9s\n" name "completed"
        parts
        (match r.Baseline.Worklist.outcome with
        | Baseline.Worklist.Completed -> "completed"
        | Baseline.Worklist.Ran_out_of_memory -> "OUT OF MEMORY")
        r.Baseline.Worklist.peak_bytes
        (hms r.Baseline.Worklist.elapsed_s))
    (Generator.all_subjects ());
  print_endline
    "\nshape check: with the memory that suffices for Grapple's two-partition\n\
     residency, the in-memory implementation (whole graph + explicit\n\
     constraint objects) exhausts its budget on every subject while the\n\
     out-of-core engine completes by spilling partitions to disk."

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md): unroll bound and partition budget.            *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Pre-filter side-by-side: the escape-based instance pruning on vs.    *)
(* off, per subject.  Warnings must be identical; the graphs shrink by  *)
(* however many tracked allocations were resolved intraprocedurally.    *)
(* Subjects are seed-fixed, so every column reproduces exactly.         *)
(* ------------------------------------------------------------------ *)

let prefilter () =
  header "Pre-filter: escape-resolved instances (on vs off)"
    "instance pruning ablation";
  Printf.printf "%-10s %4s %8s %9s %9s %6s %6s %8s %6s\n" "subject" "pf"
    "|V|" "#E0" "#EA" "#filt" "warns" "time" "same";
  let fsms =
    List.filter_map
      (fun (c : Checkers.t) ->
        match c.Checkers.kind with
        | `Typestate fsm -> Some fsm
        | `Exception_walk _ -> None)
      (Checkers.all ())
  in
  List.iter
    (fun (subject : Generator.subject) ->
      let name = subject.Generator.profile.Generator.name in
      let run on =
        let workdir =
          Filename.concat root_workdir (Printf.sprintf "pf-%s-%b" name on)
        in
        let config =
          { (Pipeline.default_config ~workdir) with
            Pipeline.library_throwers = Checkers.Specs.library_throwers;
            prefilter_properties = (if on then fsms else []) }
        in
        let t0 = Unix.gettimeofday () in
        let prepared =
          Pipeline.prepare ~config ~workdir subject.Generator.program
        in
        let results, props = Checkers.run_all prepared (Checkers.all ()) in
        let dt = Unix.gettimeofday () -. t0 in
        (Pipeline.stats prepared props, results, dt)
      in
      let signature results =
        List.concat_map
          (fun (checker, reports) ->
            List.map
              (fun (r : Grapple.Report.t) ->
                ( checker,
                  Grapple.Report.kind_to_string r.Grapple.Report.kind,
                  r.Grapple.Report.alloc_at.Jir.Ast.line ))
              reports)
          results
        |> List.sort compare
      in
      let s_off, r_off, t_off = run false in
      let s_on, r_on, t_on = run true in
      let warns rs =
        List.fold_left (fun acc (_, l) -> acc + List.length l) 0 rs
      in
      let same = signature r_off = signature r_on in
      let row tag (s : Pipeline.stats) rs dt same_col =
        Printf.printf "%-10s %4s %8d %9d %9d %6d %6d %8s %6s\n" name tag
          s.Pipeline.n_vertices s.Pipeline.n_edges_before
          s.Pipeline.n_edges_after s.Pipeline.n_prefiltered (warns rs)
          (hms dt) same_col
      in
      row "off" s_off r_off t_off "";
      row "on" s_on r_on t_on (if same then "yes" else "NO!"))
    (Generator.all_subjects ())

(* ------------------------------------------------------------------ *)
(* Summary pre-filter side-by-side (ISSUE 2): escape filter alone vs.   *)
(* escape + interprocedural summary triage.  The summary stage must     *)
(* prune strictly more instances with zero change in reported warnings  *)
(* (TP and FP identical), and the --interproc lints must catch planted  *)
(* whole-program bugs the intraprocedural linter misses.                *)
(* ------------------------------------------------------------------ *)

let summaries () =
  header "Summary pre-filter: interprocedural typestate triage (on vs off)"
    "sound pipeline triage ablation + whole-program lints";
  Printf.printf "%-10s %4s %8s %9s %6s %6s %6s %6s %6s %8s %6s\n" "subject"
    "sf" "|V|" "#EA" "#esc" "#sum" "TP" "FP" "warns" "time" "same";
  let fsms =
    List.filter_map
      (fun (c : Checkers.t) ->
        match c.Checkers.kind with
        | `Typestate fsm -> Some fsm
        | `Exception_walk _ -> None)
      (Checkers.all ())
  in
  let checker_names = [ "io"; "lock"; "exception"; "socket" ] in
  List.iter
    (fun (subject : Generator.subject) ->
      let name = subject.Generator.profile.Generator.name in
      let run on =
        let workdir =
          Filename.concat root_workdir (Printf.sprintf "sum-%s-%b" name on)
        in
        let config =
          { (Pipeline.default_config ~workdir) with
            Pipeline.library_throwers = Checkers.Specs.library_throwers;
            prefilter_properties = fsms;
            summary_prefilter = on }
        in
        let t0 = Unix.gettimeofday () in
        let prepared =
          Pipeline.prepare ~config ~workdir subject.Generator.program
        in
        let results, props = Checkers.run_all prepared (Checkers.all ()) in
        let dt = Unix.gettimeofday () -. t0 in
        (Pipeline.stats prepared props, results, dt)
      in
      let signature results =
        List.concat_map
          (fun (checker, reports) ->
            List.map
              (fun (r : Grapple.Report.t) ->
                ( checker,
                  Grapple.Report.kind_to_string r.Grapple.Report.kind,
                  r.Grapple.Report.alloc_at.Jir.Ast.line ))
              reports)
          results
        |> List.sort compare
      in
      let tp_fp results =
        List.fold_left
          (fun (tp, fp) checker ->
            let reports =
              Option.value ~default:[] (List.assoc_opt checker results)
            in
            let s =
              Scoring.score ~allow_empty:true ~checker
                ~expected:subject.Generator.expected ~reports ()
            in
            (tp + s.Scoring.tp, fp + s.Scoring.fp))
          (0, 0) checker_names
      in
      let s_off, r_off, t_off = run false in
      let s_on, r_on, t_on = run true in
      let warns rs =
        List.fold_left (fun acc (_, l) -> acc + List.length l) 0 rs
      in
      let same = signature r_off = signature r_on in
      let row tag (s : Pipeline.stats) rs dt same_col =
        let tp, fp = tp_fp rs in
        Printf.printf "%-10s %4s %8d %9d %6d %6d %6d %6d %6d %8s %6s\n" name
          tag s.Pipeline.n_vertices s.Pipeline.n_edges_after
          s.Pipeline.n_prefiltered s.Pipeline.n_summary_pruned tp fp (warns rs)
          (hms dt) same_col
      in
      row "off" s_off r_off t_off "";
      row "on" s_on r_on t_on (if same then "yes" else "NO!"))
    (Generator.all_subjects ());
  print_endline
    "\nshape check: the summary stage prunes instances the escape filter\n\
     cannot (#sum > 0 on top of #esc) with identical warnings and TP/FP.";
  (* the --interproc lint surface, scored against the planted
     interprocedural bugs the intraprocedural linter cannot see *)
  header "Whole-program lints (grapple lint --interproc)"
    "interprocedural null/leak findings beyond the intraprocedural linter";
  Printf.printf "%-12s %18s %18s\n" "subject" "interproc TP/FP/FN"
    "intraproc TP";
  List.iter
    (fun (subject : Generator.subject) ->
      let program = subject.Generator.program in
      let diags =
        Analysis.Summaries.interproc_diags ~fsms:(Checkers.fsms ()) program
      in
      let ls =
        Scoring.score_lints ~allow_empty:true ~checker:"interproc"
          ~expected:subject.Generator.expected diags
      in
      let intra =
        Scoring.score_lints ~allow_empty:true ~checker:"interproc"
          ~expected:subject.Generator.expected
          (Analysis.Lint.check_program program)
      in
      Printf.printf "%-12s %11d/%2d/%2d %18d\n"
        subject.Generator.profile.Generator.name ls.Scoring.ltp ls.Scoring.lfp
        ls.Scoring.lfn intra.Scoring.ltp)
    (Generator.all_subjects ());
  print_endline
    "\nshape check: every planted interprocedural bug is found by the summary\n\
     lints (TP >= 1 where planted, FN = 0) and by none of the intraprocedural\n\
     ones (intraproc TP = 0)."

(* ------------------------------------------------------------------ *)
(* Points-to triage side-by-side (ISSUE 7): escape + summaries alone    *)
(* vs. the full three-tier triage with the closure-graph slicer.  The   *)
(* points-to stage must prune instances the first two tiers keep and    *)
(* slice alias edges before phase 1, with zero change in reported       *)
(* warnings; the pointsto lints must catch planted heap-flow bugs.      *)
(* ------------------------------------------------------------------ *)

let alias () =
  header "Points-to pre-filter and slicer: Andersen triage (on vs off)"
    "sound pipeline triage ablation + closure-graph slicing";
  Printf.printf "%-10s %4s %9s %9s %6s %6s %6s %8s %6s %8s %6s\n" "subject"
    "ap" "|E|pre" "|E|after" "#esc" "#sum" "#pt" "sliced" "warns" "time"
    "same";
  let fsms =
    List.filter_map
      (fun (c : Checkers.t) ->
        match c.Checkers.kind with
        | `Typestate fsm -> Some fsm
        | `Exception_walk _ -> None)
      (Checkers.all ())
  in
  List.iter
    (fun (subject : Generator.subject) ->
      let name = subject.Generator.profile.Generator.name in
      let run on =
        let workdir =
          Filename.concat root_workdir (Printf.sprintf "pt-%s-%b" name on)
        in
        let config =
          { (Pipeline.default_config ~workdir) with
            Pipeline.library_throwers = Checkers.Specs.library_throwers;
            prefilter_properties = fsms;
            alias_prefilter = on }
        in
        let t0 = Unix.gettimeofday () in
        let prepared =
          Pipeline.prepare ~config ~workdir subject.Generator.program
        in
        let results, props = Checkers.run_all prepared (Checkers.all ()) in
        let dt = Unix.gettimeofday () -. t0 in
        (Pipeline.stats prepared props, results, dt)
      in
      let signature results =
        List.concat_map
          (fun (checker, reports) ->
            List.map
              (fun (r : Grapple.Report.t) ->
                ( checker,
                  Grapple.Report.kind_to_string r.Grapple.Report.kind,
                  r.Grapple.Report.alloc_at.Jir.Ast.line ))
              reports)
          results
        |> List.sort compare
      in
      let s_off, r_off, t_off = run false in
      let s_on, r_on, t_on = run true in
      let warns rs =
        List.fold_left (fun acc (_, l) -> acc + List.length l) 0 rs
      in
      let same = signature r_off = signature r_on in
      let row tag (s : Pipeline.stats) rs dt same_col =
        Printf.printf "%-10s %4s %9d %9d %6d %6d %6d %8d %6d %8s %6s\n" name
          tag s.Pipeline.n_edges_presliced s.Pipeline.n_edges_after
          s.Pipeline.n_prefiltered s.Pipeline.n_summary_pruned
          s.Pipeline.n_alias_pruned s.Pipeline.n_edges_sliced (warns rs)
          (hms dt) same_col
      in
      row "off" s_off r_off t_off "";
      row "on" s_on r_on t_on (if same then "yes" else "NO!"))
    (Generator.all_subjects ());
  print_endline
    "\nshape check: the points-to stage prunes instances escape and the\n\
     summaries both keep (#pt > 0 on top of #esc/#sum) and slices alias\n\
     edges before phase 1 (sliced > 0), with identical warnings.";
  (* the pointsto lint surface, scored against the planted heap-flow bugs
     the intraprocedural linter cannot see *)
  header "Whole-program lints (grapple lint --interproc, pointsto)"
    "heap-flow findings beyond the intraprocedural linter";
  Printf.printf "%-12s %18s %18s\n" "subject" "pointsto TP/FP/FN"
    "intraproc TP";
  List.iter
    (fun (subject : Generator.subject) ->
      let program = subject.Generator.program in
      let diags =
        Analysis.Pointsto.diags (Analysis.Pointsto.analyze program)
      in
      let ls =
        Scoring.score_lints ~allow_empty:true ~checker:"pointsto"
          ~expected:subject.Generator.expected diags
      in
      let intra =
        Scoring.score_lints ~allow_empty:true ~checker:"pointsto"
          ~expected:subject.Generator.expected
          (Analysis.Lint.check_program program)
      in
      Printf.printf "%-12s %11d/%2d/%2d %18d\n"
        subject.Generator.profile.Generator.name ls.Scoring.ltp ls.Scoring.lfp
        ls.Scoring.lfn intra.Scoring.ltp)
    (Generator.all_subjects ());
  print_endline
    "\nshape check: every planted heap-flow bug is found by the pointsto\n\
     lints (TP >= 1 where planted, FN = 0) and by none of the\n\
     intraprocedural ones (intraproc TP = 0)."

let ablation () =
  header "Ablation: loop unroll bound k (minizk)" "design choice, §3.1";
  Printf.printf "%3s %8s %8s %8s %8s\n" "k" "TP" "FN" "#EA(K)" "time";
  let subject = Generator.mini_zookeeper () in
  List.iter
    (fun k ->
      let workdir = Filename.concat root_workdir (Printf.sprintf "ab-k%d" k) in
      let config =
        { (Pipeline.default_config ~workdir) with
          Pipeline.unroll_bound = k;
          library_throwers = Checkers.Specs.library_throwers }
      in
      let t0 = Unix.gettimeofday () in
      let prepared =
        Pipeline.prepare ~config ~workdir subject.Generator.program
      in
      let results, props = Checkers.run_all prepared (Checkers.all ()) in
      let dt = Unix.gettimeofday () -. t0 in
      let stats = Pipeline.stats prepared props in
      let tp = ref 0 and fn = ref 0 in
      List.iter
        (fun (checker, reports) ->
          let s =
            Scoring.score ~allow_empty:true ~checker
              ~expected:subject.Generator.expected ~reports ()
          in
          tp := !tp + s.Scoring.tp;
          fn := !fn + s.Scoring.fn)
        results;
      Printf.printf "%3d %8d %8d %8.1f %8s\n" k !tp !fn
        (float_of_int stats.Pipeline.n_edges_after /. 1000.)
        (hms dt))
    [ 1; 2; 3 ];
  header "Ablation: partition memory budget (minizk, alias phase)"
    "out-of-core mechanics, §4.3";
  Printf.printf "%10s %8s %8s %8s\n" "budget" "#part" "#iter" "time";
  let icfet, ag = alias_graph_of subject in
  List.iter
    (fun budget ->
      let workdir =
        Filename.concat root_workdir (Printf.sprintf "ab-b%d" budget)
      in
      let cfg =
        { (Engine.default_config ~workdir) with
          Engine.max_edges_per_partition = budget;
          target_partitions = 2 }
      in
      let g =
        AEngine.create ~config:cfg ~decode:(Icfet.constraint_of icfet)
          ~workdir ()
      in
      Graphgen.Alias_graph.iter_edges ag (fun e ->
          AEngine.add_seed g ~src:e.Graphgen.Alias_graph.src
            ~dst:e.Graphgen.Alias_graph.dst ~label:e.Graphgen.Alias_graph.label
            ~enc:e.Graphgen.Alias_graph.enc);
      let t0 = Unix.gettimeofday () in
      AEngine.run g;
      let dt = Unix.gettimeofday () -. t0 in
      let m = AEngine.metrics g in
      Printf.printf "%10d %8d %8d %8s\n" budget (AEngine.n_partitions g)
        (Engine.Metrics.count m.Engine.Metrics.pairs_processed)
        (hms dt);
      AEngine.cleanup g)
    [ 1_000; 5_000; 50_000 ];
  print_endline
    "\nshape check: smaller budgets mean more partitions and more iterations\n\
     for the same final result (the out-of-core trade).";
  header "Ablation: path sensitivity off (Graspan-style closure)"
    "the motivation of the whole paper: without path sensitivity the checker\n\
     over-approximates and reports bugs on infeasible paths (S2)";
  Printf.printf "%-12s %-18s %6s %6s %6s\n" "Subject" "mode" "TP" "FP" "FN";
  List.iter
    (fun (subject : Generator.subject) ->
      List.iter
        (fun sensitive ->
          let name = subject.Generator.profile.Generator.name in
          let workdir =
            Filename.concat root_workdir
              (Printf.sprintf "ab-ps-%s-%b" name sensitive)
          in
          let config =
            { (Pipeline.default_config ~workdir) with
              Pipeline.library_throwers = Checkers.Specs.library_throwers;
              engine =
                { (Engine.default_config ~workdir) with
                  Engine.feasibility_enabled = sensitive } }
          in
          let prepared =
            Pipeline.prepare ~config ~workdir subject.Generator.program
          in
          (* typestate checkers only: the exception walk does its own
             feasibility checking independent of the engine flag *)
          let results, _ =
            Checkers.run_all prepared
              [ Checkers.io (); Checkers.lock (); Checkers.socket () ]
          in
          let tp = ref 0 and fp = ref 0 and fn = ref 0 in
          List.iter
            (fun (checker, reports) ->
              let sc =
                Scoring.score ~allow_empty:true ~checker
                  ~expected:subject.Generator.expected ~reports ()
              in
              tp := !tp + sc.Scoring.tp;
              fp := !fp + sc.Scoring.fp;
              fn := !fn + sc.Scoring.fn)
            results;
          Printf.printf "%-12s %-18s %6d %6d %6d\n" name
            (if sensitive then "path-sensitive" else "insensitive")
            !tp !fp !fn)
        [ true; false ])
    [ Generator.mini_zookeeper (); Generator.mini_hdfs () ];
  print_endline
    "\nshape check: turning path sensitivity off keeps the true positives but\n\
     adds false positives on the planted infeasible-path decoys -- the\n\
     Graspan-vs-Grapple precision gap the paper is built on.";
  header "Ablation: parallel constraint solving (minihdfs pipeline)"
    "\"concurrently accessed by multiple edge-induction threads\", §4.3";
  Printf.printf "%8s %10s %10s\n" "domains" "time" "warnings";
  let hdfs = Generator.mini_hdfs () in
  List.iter
    (fun domains ->
      let workdir =
        Filename.concat root_workdir (Printf.sprintf "ab-d%d" domains)
      in
      let config =
        { (Pipeline.default_config ~workdir) with
          Pipeline.library_throwers = Checkers.Specs.library_throwers;
          engine =
            { (Engine.default_config ~workdir) with
              Engine.solver_domains = domains } }
      in
      let t0 = Unix.gettimeofday () in
      let prepared = Pipeline.prepare ~config ~workdir hdfs.Generator.program in
      let results, _ = Checkers.run_all prepared (Checkers.all ()) in
      let dt = Unix.gettimeofday () -. t0 in
      let warnings =
        List.fold_left (fun a (_, rs) -> a + List.length rs) 0 results
      in
      Printf.printf "%8d %10s %10d\n" domains (hms dt) warnings)
    [ 1; 2; 4 ];
  print_endline
    "\nshape check: identical warnings at every domain count.  Whether wall\n\
     time drops tracks the SMT share of Figure 9: our decomposed\n\
     Fourier-Motzkin solver is far cheaper relative to the join than Z3 was\n\
     in the paper, so at this scale the fan-out overhead can win."

(* ------------------------------------------------------------------ *)
(* Fault injection (robustness extension): the full pipeline under      *)
(* seeded storage-fault rates.  Warnings must be identical to the       *)
(* fault-free run at every rate -- recovery is retries + checkpoint     *)
(* resume, never silent data loss -- and the overhead column is the     *)
(* price paid for that redundant work.                                  *)
(* ------------------------------------------------------------------ *)

let faults () =
  header "Fault injection: recovery overhead at increasing fault rates"
    "robustness extension, not a paper experiment";
  Printf.printf "%-10s %6s %8s %9s %8s %8s %7s %6s\n" "subject" "rate" "time"
    "overhead" "#inject" "#retry" "#incon" "same";
  let signature results =
    List.concat_map
      (fun (checker, reports) ->
        List.map
          (fun (r : Grapple.Report.t) ->
            ( checker,
              Grapple.Report.kind_to_string r.Grapple.Report.kind,
              r.Grapple.Report.alloc_at.Jir.Ast.line ))
          reports)
      results
    |> List.sort compare
  in
  List.iter
    (fun (subject : Generator.subject) ->
      let name = subject.Generator.profile.Generator.name in
      let run_at idx rate =
        let workdir =
          Filename.concat root_workdir (Printf.sprintf "flt-%s-%d" name idx)
        in
        let config =
          { (Pipeline.default_config ~workdir) with
            Pipeline.library_throwers = Checkers.Specs.library_throwers }
        in
        if rate > 0. then
          Engine.Faults.install
            (Engine.Faults.parse (Printf.sprintf "seed=11,rate=%g" rate));
        Fun.protect ~finally:Engine.Faults.clear (fun () ->
            let t0 = Unix.gettimeofday () in
            let prepared =
              Pipeline.prepare ~config ~workdir subject.Generator.program
            in
            let results, props = Checkers.run_all prepared (Checkers.all ()) in
            let dt = Unix.gettimeofday () -. t0 in
            (signature results, Pipeline.stats prepared props, dt))
      in
      let base_sig, _, base_dt = run_at 0 0. in
      List.iteri
        (fun i rate ->
          let sg, st, dt = run_at (i + 1) rate in
          let overhead =
            if base_dt > 0. then 100. *. ((dt /. base_dt) -. 1.) else 0.
          in
          Printf.printf "%-10s %5.0f%% %8s %8.1f%% %8d %8d %7d %6s\n" name
            (100. *. rate) (hms dt)
            (if rate = 0. then 0. else overhead)
            st.Pipeline.n_faults_injected st.Pipeline.n_retried
            st.Pipeline.n_inconclusive
            (if sg = base_sig then "yes" else "NO!"))
        [ 0.; 0.01; 0.05; 0.10 ])
    (Generator.all_subjects ());
  print_endline
    "\nshape check: warnings are identical at every fault rate (same = yes,\n\
     #incon = 0); overhead grows with the rate and is dominated by the\n\
     re-execution the op-level retries and checkpoint resumes perform."

(* ------------------------------------------------------------------ *)
(* Scaling: the parallel instance scheduler (multicore extension).      *)
(* Phase-2/3 wall time swept over worker counts; the warnings must be   *)
(* identical at every count, and resume must work across counts.        *)
(* ------------------------------------------------------------------ *)

let scaling ~fast () =
  header "Scaling: checking instances over a worker-domain pool"
    "multicore extension, not a paper experiment";
  Printf.printf
    "machine: %d recommended domain(s) -- speedups above that count (or on \n\
     a single-core container at all) are not expected\n\n"
    (Domain.recommended_domain_count ());
  let signature results =
    List.concat_map
      (fun (checker, reports) ->
        List.map
          (fun (r : Grapple.Report.t) ->
            ( checker,
              Grapple.Report.kind_to_string r.Grapple.Report.kind,
              r.Grapple.Report.alloc_at.Jir.Ast.line ))
          reports)
      results
    |> List.sort compare
  in
  let subjects = Generator.all_subjects () in
  let subjects = if fast then [ List.hd subjects ] else subjects in
  let sweep = if fast then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  (* null included so the sweep has five typestate instances to schedule *)
  let checkers = Checkers.all_with_null () in
  Printf.printf "%-10s %8s %10s %9s %9s %6s\n" "subject" "workers" "phase2/3"
    "speedup" "warnings" "same";
  List.iter
    (fun (subject : Generator.subject) ->
      let name = subject.Generator.profile.Generator.name in
      let base = ref None in
      List.iter
        (fun workers ->
          let workdir =
            Filename.concat root_workdir
              (Printf.sprintf "scale-%s-w%d" name workers)
          in
          let config =
            { (Pipeline.default_config ~workdir) with
              Pipeline.library_throwers = Checkers.Specs.library_throwers;
              track_null = true;
              workers }
          in
          let prepared =
            Pipeline.prepare ~config ~workdir subject.Generator.program
          in
          (* time phases 2+3 only: phase 0/1 is shared preprocessing the
             scheduler does not touch *)
          let t0 = Unix.gettimeofday () in
          let results, _, _ =
            Checkers.run_all_scheduled ~workers prepared checkers
          in
          let dt = Unix.gettimeofday () -. t0 in
          let sg = signature results in
          let t1, sg1 =
            match !base with
            | Some b -> b
            | None ->
                base := Some (dt, sg);
                (dt, sg)
          in
          let warnings =
            List.fold_left (fun a (_, rs) -> a + List.length rs) 0 results
          in
          Printf.printf "%-10s %8d %10s %8.2fx %9d %6s\n" name workers
            (hms dt)
            (if dt > 0. then t1 /. dt else 1.)
            warnings
            (if sg = sg1 then "yes" else "NO!"))
        sweep)
    subjects;
  print_endline
    "\nshape check: warnings identical at every worker count (same = yes).\n\
     The speedup column tracks phase-2/3 wall time against 1 worker; it\n\
     saturates at min(#instances, #cores) and collapses to ~1.0x on a\n\
     single-core machine, where the pool only adds scheduling overhead."

(* ------------------------------------------------------------------ *)
(* Shard processes: the supervised multi-process runtime (robustness    *)
(* extension).  Phase-2/3 instances run in forked, crash-isolated       *)
(* worker processes; warnings must be identical to the in-process       *)
(* scheduler at every process count, with and without an injected       *)
(* fault plan, and with a worker SIGKILLed mid-run (re-dispatch).       *)
(* ------------------------------------------------------------------ *)

let shards ~fast () =
  header "Shard processes: crash-isolated multi-process scheduler"
    "robustness extension, not a paper experiment";
  let signature results =
    List.concat_map
      (fun (checker, reports) ->
        List.map
          (fun (r : Grapple.Report.t) ->
            ( checker,
              Grapple.Report.kind_to_string r.Grapple.Report.kind,
              r.Grapple.Report.alloc_at.Jir.Ast.line ))
          reports)
      results
    |> List.sort compare
  in
  let subjects = Generator.all_subjects () in
  let subjects = if fast then [ List.hd subjects ] else subjects in
  let checkers = Checkers.all_with_null () in
  Printf.printf "%-10s %-6s %7s %8s %9s %7s %5s %6s\n" "subject" "plan"
    "procs" "time" "warnings" "redisp" "kills" "same";
  List.iter
    (fun (subject : Generator.subject) ->
      let name = subject.Generator.profile.Generator.name in
      let run_one ~tag ~plan ~procs ~kill_nth =
        let workdir =
          Filename.concat root_workdir
            (Printf.sprintf "shard-%s-%s-p%d" name tag procs)
        in
        (match plan with
        | Some spec -> Engine.Faults.install (Engine.Faults.parse spec)
        | None -> ());
        Fun.protect ~finally:Engine.Faults.clear (fun () ->
            let config =
              { (Pipeline.default_config ~workdir) with
                Pipeline.library_throwers = Checkers.Specs.library_throwers;
                track_null = true;
                shard_procs = procs;
                shard_kill_nth = kill_nth;
                heartbeat_ms = 25. }
            in
            let prepared =
              Pipeline.prepare ~config ~workdir subject.Generator.program
            in
            let t0 = Unix.gettimeofday () in
            let results, props, _ =
              Checkers.run_all_scheduled prepared checkers
            in
            let dt = Unix.gettimeofday () -. t0 in
            let stats = Pipeline.stats prepared props in
            (signature results, stats, dt))
      in
      List.iter
        (fun (ptag, plan) ->
          let base = ref None in
          List.iter
            (fun procs ->
              let tag = Printf.sprintf "%s-n" ptag in
              let sg, st, dt = run_one ~tag ~plan ~procs ~kill_nth:0 in
              let sg0 =
                match !base with
                | Some b -> b
                | None ->
                    base := Some sg;
                    sg
              in
              let cnt c =
                Obs.Registry.value
                  (Obs.Registry.counter st.Pipeline.registry c)
              in
              Printf.printf "%-10s %-6s %7s %8s %9d %7d %5d %6s\n" name ptag
                (if procs = 0 then "inproc" else string_of_int procs)
                (hms dt) (List.length sg)
                (cnt "supervisor.redispatches")
                (cnt "supervisor.kills")
                (if sg = sg0 then "yes" else "NO!"))
            [ 0; 1; 2; 4 ];
          (* one worker SIGKILLed at its 2nd assignment: the instance is
             re-dispatched and the output must not change *)
          let sg, st, dt =
            run_one ~tag:(ptag ^ "-k") ~plan ~procs:2 ~kill_nth:2
          in
          let cnt c =
            Obs.Registry.value (Obs.Registry.counter st.Pipeline.registry c)
          in
          Printf.printf "%-10s %-6s %7s %8s %9d %7d %5d %6s\n" name ptag
            "2+kill" (hms dt) (List.length sg)
            (cnt "supervisor.redispatches")
            (cnt "supervisor.kills")
            (if Some sg = !base then "yes" else "NO!"))
        [ ("none", None); ("5%", Some "seed=11,rate=0.05") ])
    subjects;
  print_endline
    "\nshape check: warnings identical at every process count, under the\n\
     fault plan, and with a worker killed mid-run (same = yes everywhere;\n\
     the kill row shows kills > 0 and redisp > 0 with unchanged output)."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one kernel per table/figure.              *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Micro-benchmarks (Bechamel): the dominant kernel of each table"
    "n/a -- engineering sanity checks";
  let open Bechamel in
  (* table 1 kernel: subject generation *)
  let t1 =
    Test.make ~name:"table1/generate-subject"
      (Staged.stage (fun () ->
           ignore
             (Generator.generate
                { Generator.name = "bench"; description = ""; seed = 1;
                  layers = 2; classes_per_layer = 1; methods_per_class = 2;
                  patterns_per_method = 1; calls_per_method = 1;
                  bugs = [ ("io", 1) ]; lint_bugs = [];
                  loops_per_subject = 0 })))
  in
  (* table 2 kernel: FSM typestate run *)
  let fsm = Checkers.Specs.io_fsm () in
  let t2 =
    Test.make ~name:"table2/fsm-sequence-check"
      (Staged.stage (fun () ->
           ignore
             (Fsm.check_sequence fsm [ "write"; "write"; "close"; "write" ])))
  in
  (* table 3 kernel: SMT solving of a path-like conjunction *)
  let x = Smt.Linexpr.var (Smt.Symbol.intern "bx") in
  let y = Smt.Linexpr.var (Smt.Symbol.intern "by") in
  let path_constraint =
    Smt.Formula.conj
      [ Smt.Formula.ge x (Smt.Linexpr.const 0);
        Smt.Formula.eq y (Smt.Linexpr.sub x (Smt.Linexpr.const 1));
        Smt.Formula.gt y (Smt.Linexpr.const 0);
        Smt.Formula.le x (Smt.Linexpr.const 100) ]
  in
  let t3 =
    Test.make ~name:"table3/smt-solve"
      (Staged.stage (fun () -> ignore (Smt.Solver.check path_constraint)))
  in
  (* table 4 kernel: LRU hit *)
  let cache = Engine.Lru.create 1024 in
  let key = [ E.Interval { meth = 0; first = 0; last = 6 } ] in
  Engine.Lru.add cache key true;
  let t4 =
    Test.make ~name:"table4/lru-lookup"
      (Staged.stage (fun () -> ignore (Engine.Lru.find cache key)))
  in
  (* table 5 kernel: string constraint parse, the naive engine's extra cost *)
  let cstr = "((bx <= 0 & 1 - by <= 0) & (bx - by = 0 | bx <= 0))" in
  let t5 =
    Test.make ~name:"table5/string-parse"
      (Staged.stage (fun () -> ignore (Baseline.Formula_parser.parse cstr)))
  in
  (* fig 9 kernel: encoding compose + normalize *)
  let e1 =
    [ E.Interval { meth = 0; first = 0; last = 2 }; E.Call 3;
      E.Interval { meth = 1; first = 0; last = 0 } ]
  in
  let e2 =
    [ E.Interval { meth = 1; first = 0; last = 5 }; E.Ret 3;
      E.Interval { meth = 0; first = 2; last = 6 } ]
  in
  let f9 =
    Test.make ~name:"fig9/encoding-compose"
      (Staged.stage (fun () -> ignore (E.compose_normalized e1 e2)))
  in
  let grouped = Test.make_grouped ~name:"grapple" [ t1; t2; t3; t4; t5; f9 ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.25) ()
  in
  let raw = Benchmark.all cfg instances grouped in
  List.iter
    (fun instance ->
      let tbl = Analyze.all ols instance raw in
      let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) tbl [] in
      List.iter
        (fun (name, o) ->
          match Analyze.OLS.estimates o with
          | Some [ est ] -> Printf.printf "%-34s %14.1f ns/run\n" name est
          | _ -> Printf.printf "%-34s (no estimate)\n" name)
        (List.sort compare rows))
    instances

(* ------------------------------------------------------------------ *)
(* Baseline snapshot: a machine-readable performance record per commit.  *)
(* ------------------------------------------------------------------ *)

(* Writes BENCH_<rev>.json in the current directory: per-subject wall
   time, Figure-9 breakdown percentages, cache hit rate, and closure
   throughput (edges added per second of compute).  Comparing two such
   files across commits is the intended regression check. *)
let git_rev () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | ic ->
      let rev = try String.trim (input_line ic) with End_of_file -> "" in
      let status = Unix.close_process_in ic in
      if status = Unix.WEXITED 0 && rev <> "" then rev else "dev"
  | exception _ -> "dev"

let baseline () =
  header "Baseline: performance snapshot for this commit"
    "regression tracking, not a paper figure";
  let rev = git_rev () in
  let path = Printf.sprintf "BENCH_%s.json" rev in
  let subject_json (r : run) =
    let s = r.stats in
    let name = r.subject.Generator.profile.Generator.name in
    let hit_rate =
      if s.Pipeline.cache_lookups = 0 then 0.
      else float_of_int s.Pipeline.cache_hits /. float_of_int s.Pipeline.cache_lookups
    in
    let edges_per_s =
      if s.Pipeline.compute_s > 0. then
        float_of_int s.Pipeline.edges_added /. s.Pipeline.compute_s
      else 0.
    in
    let breakdown =
      String.concat ","
        (List.map
           (fun (component, pct) ->
             Printf.sprintf "%S:%.2f" component pct)
           s.Pipeline.breakdown)
    in
    Printf.sprintf
      {|    {"subject":%S,"wall_s":%.3f,"preprocess_s":%.3f,"compute_s":%.3f,"edges_added":%d,"edges_per_s":%.1f,"cache_hit_rate":%.4f,"bytes_read":%d,"bytes_written":%d,"n_alias_pruned":%d,"n_edges_presliced":%d,"n_edges_sliced":%d,"breakdown_pct":{%s}}|}
      name r.wall_s s.Pipeline.preprocess_s s.Pipeline.compute_s
      s.Pipeline.edges_added edges_per_s hit_rate s.Pipeline.bytes_read
      s.Pipeline.bytes_written s.Pipeline.n_alias_pruned
      s.Pipeline.n_edges_presliced s.Pipeline.n_edges_sliced breakdown
  in
  let runs = all_runs () in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"rev\": %S,\n  \"subjects\": [\n%s\n  ]\n}\n" rev
    (String.concat ",\n" (List.map subject_json runs));
  close_out oc;
  List.iter
    (fun (r : run) ->
      Printf.printf "  %-12s wall=%s edges/s=%.0f\n"
        r.subject.Generator.profile.Generator.name (hms r.wall_s)
        (if r.stats.Pipeline.compute_s > 0. then
           float_of_int r.stats.Pipeline.edges_added
           /. r.stats.Pipeline.compute_s
         else 0.))
    runs;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* DSL checkers: the four spec-defined properties against their         *)
(* dedicated seed-fixed subjects -- per-checker wall time, graph size,  *)
(* pruning, and ground-truth score.  The final row runs the paper's     *)
(* plain exception walk on the try-with-resources subject and scores it *)
(* against the exc_twr ground truth: its FP column is exactly the       *)
(* residual false-positive class the handler-aware walk kills.          *)
(* ------------------------------------------------------------------ *)

let dsl_checkers () =
  header "DSL checkers: spec-defined properties vs ground truth"
    "property DSL extension, not a paper experiment";
  Printf.printf "%-11s %-10s %9s %6s %5s %6s %4s %4s %4s %8s\n" "checker"
    "subject" "|E|after" "#filt" "#spr" "warns" "TP" "FP" "FN" "time";
  let row label (subject : Generator.subject) (c : Checkers.t) ~score_as =
    let name = subject.Generator.profile.Generator.name in
    let workdir =
      Filename.concat root_workdir (Printf.sprintf "dsl-%s-%s" label name)
    in
    let prefilter_properties =
      match c.Checkers.kind with
      | `Typestate f -> [ f ]
      | `Exception_walk _ -> []
    in
    let config =
      { (Pipeline.default_config ~workdir) with
        Pipeline.library_throwers = Checkers.Specs.library_throwers;
        prefilter_properties }
    in
    let t0 = Unix.gettimeofday () in
    let prepared =
      Pipeline.prepare ~config ~workdir subject.Generator.program
    in
    let results, props = Checkers.run_all prepared [ c ] in
    let dt = Unix.gettimeofday () -. t0 in
    let stats = Pipeline.stats prepared props in
    let reports =
      List.concat_map snd results
      |> List.map (fun (r : Grapple.Report.t) ->
             { r with Grapple.Report.checker = score_as })
    in
    let s =
      Scoring.score ~checker:score_as ~expected:subject.Generator.expected
        ~reports ()
    in
    Printf.printf "%-11s %-10s %9d %6d %5d %6d %4d %4d %4d %8s\n" label name
      stats.Pipeline.n_edges_after stats.Pipeline.n_prefiltered
      stats.Pipeline.n_summary_pruned (List.length reports)
      s.Scoring.tp s.Scoring.fp s.Scoring.fn (hms dt)
  in
  row "lock_order" (Generator.mini_locks ())
    (Checkers.resolve "lock_order") ~score_as:"lock_order";
  row "taint" (Generator.mini_taint ()) (Checkers.resolve "taint")
    ~score_as:"taint";
  row "close" (Generator.mini_close ()) (Checkers.resolve "close")
    ~score_as:"close";
  row "exc_twr" (Generator.mini_twr ()) (Checkers.resolve "exc_twr")
    ~score_as:"exc_twr";
  row "exception*" (Generator.mini_twr ()) (Checkers.exception_ ())
    ~score_as:"exc_twr";
  Printf.printf
    "(exception* = plain walk scored against the exc_twr ground truth)\n"

(* ------------------------------------------------------------------ *)
(* Megaload: the 100K+-LoC workload tier (ISSUE 9).  One generated      *)
(* mega subject through the full pipeline at shard-procs {1,4} and      *)
(* workers {1,4}; asserts the four warning reports are byte-identical   *)
(* and records edges/s, peak RSS, and the triage-tier prune rates into  *)
(* BENCH_<rev>.json.                                                    *)
(* ------------------------------------------------------------------ *)

let peak_rss_kb () =
  try
    let ic = open_in "/proc/self/status" in
    let rec go acc =
      match input_line ic with
      | line ->
          let acc =
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              match
                String.split_on_char ' ' line |> List.filter (( <> ) "")
              with
              | _ :: v :: _ -> Option.value ~default:acc (int_of_string_opt v)
              | _ -> acc
            else acc
          in
          go acc
      | exception End_of_file ->
          close_in ic;
          acc
    in
    go 0
  with _ -> 0

let render_results results =
  results
  |> List.concat_map (fun (name, rs) ->
         List.map (fun r -> name ^ " " ^ Grapple.Report.to_json r) rs)
  |> String.concat "\n"

(* Splice a "megaload" entry into this commit's BENCH_<rev>.json,
   preserving the baseline subjects if the file already exists. *)
let record_megaload_json json =
  let rev = git_rev () in
  let path = Printf.sprintf "BENCH_%s.json" rev in
  let entry = Printf.sprintf "  \"megaload\": %s\n}\n" json in
  let content =
    if Sys.file_exists path then begin
      let ic = open_in path in
      let n = in_channel_length ic in
      let old = really_input_string ic n in
      close_in ic;
      (* drop any previous megaload entry, then the closing brace *)
      let find_sub hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          if i + nn > nh then None
          else if String.sub hay i nn = needle then Some i
          else go (i + 1)
        in
        go 0
      in
      let old =
        match find_sub old ",\n  \"megaload\":" with
        | Some i -> String.sub old 0 i ^ "\n}\n"
        | None -> old
      in
      match String.rindex_opt old '}' with
      | Some i -> String.sub old 0 i ^ ",\n" ^ entry
      | None -> Printf.sprintf "{\n  \"rev\": %S,\n%s" rev entry
    end
    else Printf.sprintf "{\n  \"rev\": %S,\n%s" rev entry
  in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  Printf.printf "recorded megaload entry in %s\n" path

let megaload ~fast () =
  header "Megaload: the 100K+-LoC workload tier"
    "checking 1M-LoC codebases on one desktop (SS1, SS5)";
  let units =
    match
      Option.bind (Sys.getenv_opt "GRAPPLE_MEGALOAD_UNITS") int_of_string_opt
    with
    | Some u when u > 0 -> u
    | _ -> if fast then 60 else 400
  in
  Printf.printf "generating mega100k (%d units)...\n%!" units;
  let t0 = Unix.gettimeofday () in
  let subject = Generator.mega_100k ~units () in
  let gen_s = Unix.gettimeofday () -. t0 in
  Printf.printf "  %d LoC, %d methods, %d planted bugs (generated in %s)\n%!"
    subject.Generator.loc subject.Generator.n_methods
    (List.length subject.Generator.expected)
    (hms gen_s);
  let cs = Checkers.all () in
  let fsms =
    List.filter_map
      (fun (c : Checkers.t) ->
        match c.Checkers.kind with
        | `Typestate f -> Some f
        | `Exception_walk _ -> None)
      cs
  in
  let one ~label ~workers ~shard_procs =
    let workdir = Filename.concat root_workdir ("mega-" ^ label) in
    let config =
      { (Pipeline.default_config ~workdir) with
        Pipeline.library_throwers = Checkers.Specs.library_throwers;
        prefilter_properties = fsms;
        workers;
        shard_procs }
    in
    let t0 = Unix.gettimeofday () in
    let prepared =
      Pipeline.prepare ~config ~workdir subject.Generator.program
    in
    let results, props, _ = Checkers.run_all_scheduled prepared cs in
    let wall = Unix.gettimeofday () -. t0 in
    let stats = Pipeline.stats prepared props in
    Printf.printf "  %-14s wall=%-8s warnings=%d\n%!" label (hms wall)
      (List.fold_left (fun n (_, rs) -> n + List.length rs) 0 results);
    (render_results results, stats, wall)
  in
  (* ordering constraint: the shard runs fork worker processes, and a
     process that has spawned domains must never fork (OCaml 5) — so both
     shard configurations run first, with the shared domain budget capped
     at 1 to keep the solver fan-out from creating domains either. *)
  Engine.Domains.set_cap 1;
  let shard1 = one ~label:"shard-procs=1" ~workers:1 ~shard_procs:1 in
  let shard4 = one ~label:"shard-procs=4" ~workers:1 ~shard_procs:4 in
  Engine.Domains.set_cap Engine.Domains.default_cap;
  let w1 = one ~label:"workers=1" ~workers:1 ~shard_procs:0 in
  let w4 = one ~label:"workers=4" ~workers:4 ~shard_procs:0 in
  let base, stats, wall = w1 in
  let identical =
    List.for_all (fun (r, _, _) -> r = base) [ shard1; shard4; w4 ]
  in
  Printf.printf
    "  warnings byte-identical across workers {1,4} x shard-procs {1,4}: %s\n"
    (if identical then "yes" else "NO — DIVERGENCE");
  let tracked =
    stats.Pipeline.n_prefiltered + stats.Pipeline.n_summary_pruned
    + stats.Pipeline.n_alias_pruned
  in
  let edges_per_s =
    if stats.Pipeline.compute_s > 0. then
      float_of_int stats.Pipeline.edges_added /. stats.Pipeline.compute_s
    else 0.
  in
  let rss = peak_rss_kb () in
  Printf.printf
    "  edges/s=%.0f peak_rss=%dMB prefiltered=%d summary_pruned=%d \
     alias_pruned=%d\n"
    edges_per_s (rss / 1024) stats.Pipeline.n_prefiltered
    stats.Pipeline.n_summary_pruned stats.Pipeline.n_alias_pruned;
  ignore tracked;
  let wall_of (_, _, w) = w in
  record_megaload_json
    (Printf.sprintf
       {|{"units":%d,"loc":%d,"n_methods":%d,"gen_s":%.3f,"wall_s_workers1":%.3f,"wall_s_workers4":%.3f,"wall_s_shard1":%.3f,"wall_s_shard4":%.3f,"edges_added":%d,"edges_per_s":%.1f,"peak_rss_kb":%d,"n_prefiltered":%d,"n_summary_pruned":%d,"n_alias_pruned":%d,"n_edges_presliced":%d,"n_edges_sliced":%d,"byte_identical":%b}|}
       units subject.Generator.loc subject.Generator.n_methods gen_s wall
       (wall_of w4) (wall_of shard1) (wall_of shard4)
       stats.Pipeline.edges_added edges_per_s rss stats.Pipeline.n_prefiltered
       stats.Pipeline.n_summary_pruned stats.Pipeline.n_alias_pruned
       stats.Pipeline.n_edges_presliced stats.Pipeline.n_edges_sliced
       identical);
  if not identical then exit 1

(* ------------------------------------------------------------------ *)
(* Driver.                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let args = List.filter (fun a -> a <> "--") args in
  let fast = List.mem "fast" args in
  let args = List.filter (fun a -> a <> "fast") args in
  Engine.ensure_dir root_workdir;
  let experiments =
    [ ("table1", fun () -> table1 ());
      ("table2", fun () -> table2 ());
      ("table3", fun () -> table3 ());
      ("fig9", fun () -> fig9 ());
      ("table4", fun () -> table4 ~fast ());
      ("table5", fun () -> table5 ~fast ());
      ("oom", fun () -> oom ());
      ("ablation", fun () -> ablation ());
      ("prefilter", fun () -> prefilter ());
      ("summaries", fun () -> summaries ());
      ("alias", fun () -> alias ());
      ("faults", fun () -> faults ());
      ("scaling", fun () -> scaling ~fast ());
      ("shards", fun () -> shards ~fast ());
      ("micro", fun () -> micro ());
      ("checkers", fun () -> dsl_checkers ());
      ("baseline", fun () -> baseline ());
      ("megaload", fun () -> megaload ~fast ()) ]
  in
  let chosen =
    match args with
    | [] -> experiments
    | names ->
        List.map
          (fun n ->
            match List.assoc_opt n experiments with
            | Some f -> (n, f)
            | None ->
                Printf.eprintf "unknown experiment %s\n" n;
                exit 2)
          names
  in
  Printf.printf "grapple benchmark harness -- %d experiment(s)\n"
    (List.length chosen);
  List.iter (fun (_, f) -> f ()) chosen;
  Printf.printf "\n%s\nall experiments done.\n" line
