(* Labels and composition rules of the Sridharan-Bodik pointer analysis the
   paper uses (Figure 4), binarized for the edge-pair-centric engine.

   Edges point in the direction of value flow:
     x = new O()   gives   o --New-->     x
     x = y         gives   y --Assign-->  x
     x.f = y       gives   y --Store f--> x
     x = y.f       gives   y --Load f-->  x

   Grammar (Figure 4b), in flow direction:
     flowsTo ::= new (assign | store[f] alias load[f])*
     alias   ::= flowsToBar flowsTo

   Binarized:
     FlowsTo  ::= New                    (unary)
     FlowsTo  ::= FlowsTo Assign
     FtStore f ::= FlowsTo (Store f)
     FtStAl f  ::= (FtStore f) Alias
     FlowsTo  ::= (FtStAl f) (Load f)
     FlowsToBar ::= reverse of FlowsTo   (mirror)
     Alias    ::= FlowsToBar FlowsTo                                    *)

type t =
  | New
  | Assign
  | Store of int  (* field id *)
  | Load of int
  | Flows_to
  | Flows_to_bar
  | Alias
  | Ft_store of int   (* FlowsTo . Store f *)
  | Ft_st_al of int   (* FlowsTo . Store f . Alias *)

let equal (a : t) (b : t) = a = b
let compare = Stdlib.compare
let hash = Hashtbl.hash

(* Dense integer codes for on-disk storage: low 4 bits tag, rest field id. *)
let to_int = function
  | New -> 0
  | Assign -> 1
  | Flows_to -> 2
  | Flows_to_bar -> 3
  | Alias -> 4
  | Store f -> 5 lor (f lsl 4)
  | Load f -> 6 lor (f lsl 4)
  | Ft_store f -> 7 lor (f lsl 4)
  | Ft_st_al f -> 8 lor (f lsl 4)

let of_int n =
  match n land 0xf with
  | 0 -> New
  | 1 -> Assign
  | 2 -> Flows_to
  | 3 -> Flows_to_bar
  | 4 -> Alias
  | 5 -> Store (n lsr 4)
  | 6 -> Load (n lsr 4)
  | 7 -> Ft_store (n lsr 4)
  | 8 -> Ft_st_al (n lsr 4)
  | _ -> invalid_arg (Printf.sprintf "Pointer_grammar.of_int: %d" n)

(* Binary productions: the label of a transitive edge over a consecutive
   X-edge then Y-edge, if any. *)
let compose (a : t) (b : t) : t option =
  match (a, b) with
  | Flows_to, Assign -> Some Flows_to
  | Flows_to, Store f -> Some (Ft_store f)
  | Ft_store f, Alias -> Some (Ft_st_al f)
  | Ft_st_al f, Load g when f = g -> Some Flows_to
  | Flows_to_bar, Flows_to -> Some Alias
  | _ -> None

(* The same table on the dense integer codes, allocation-free: the engine's
   join loop works on int-packed edges and must not box labels to compose
   them.  Returns [-1] for "no production".  Field ids ride in the high
   bits, so [Store f]'s code is [5 lor (f lsl 4)] etc.; tag dispatch is on
   the low 4 bits. *)
let compose_code (a : int) (b : int) : int =
  match (a land 0xf, b land 0xf) with
  | 2, 1 -> 2                                    (* FlowsTo . Assign *)
  | 2, 5 -> 7 lor (b land lnot 0xf)              (* FlowsTo . Store f *)
  | 7, 4 -> 8 lor (a land lnot 0xf)              (* FtStore f . Alias *)
  | 8, 6 when a lsr 4 = b lsr 4 -> 2             (* FtStAl f . Load f *)
  | 3, 2 -> 4                                    (* FlowsToBar . FlowsTo *)
  | _ -> -1

(* Unary productions: labels implied by a single edge. *)
let unary (a : t) : t list = match a with New -> [ Flows_to ] | _ -> []

(* Labels whose reversal induces an edge in the opposite direction. *)
let mirror (a : t) : t option =
  match a with Flows_to -> Some Flows_to_bar | _ -> None

(* Only these labels constitute analysis results; the rest are intermediate.
   [Alias] pairs feed the dataflow phase; [Flows_to] gives points-to sets. *)
let is_result = function
  | Flows_to | Alias -> true
  | New | Assign | Store _ | Load _ | Flows_to_bar | Ft_store _ | Ft_st_al _ ->
      false

let pp ppf = function
  | New -> Fmt.string ppf "new"
  | Assign -> Fmt.string ppf "assign"
  | Store f -> Fmt.pf ppf "store[%d]" f
  | Load f -> Fmt.pf ppf "load[%d]" f
  | Flows_to -> Fmt.string ppf "flowsTo"
  | Flows_to_bar -> Fmt.string ppf "flowsToBar"
  | Alias -> Fmt.string ppf "alias"
  | Ft_store f -> Fmt.pf ppf "ftStore[%d]" f
  | Ft_st_al f -> Fmt.pf ppf "ftStAl[%d]" f

let to_string l = Fmt.str "%a" pp l

(* The same grammar expressed as data, used by tests to check that the
   hand-coded tables agree with the generic normalization machinery. *)
let as_grammar () =
  let g = Grammar.create () in
  List.iter
    (Grammar.parse_production g)
    [ "FlowsTo ::= New";
      "FlowsTo ::= FlowsTo Assign";
      "FtStore ::= FlowsTo Store";
      "FtStAl ::= FtStore Alias";
      "FlowsTo ::= FtStAl Load";
      "Alias ::= FlowsToBar FlowsTo" ];
  g
