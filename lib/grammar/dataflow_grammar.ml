(* Labels of the dataflow (typestate) graph, the second program graph of the
   paper's workflow (§2.2).  Control-flow hop edges carry the FSM transition
   function their segment applies ([Step]); the distinguished edge leaving a
   tracked allocation carries [Track].  The grammar is the left-linear
   closure

     Track ::= Track Step | TrackSeed

   so the engine grows object-rooted paths one control hop at a time and a
   transitive edge (alloc --Track f--> point) states: the object can reach
   this program point with its FSM driven by f (apply f to the initial
   state).  Composing two Steps is deliberately not a production: paths not
   anchored at an allocation are irrelevant, and omitting the rule keeps the
   closure linear in the reachable frontier (Graspan treats its dataflow
   grammar the same way). *)

type t =
  | Track of int  (* transition-function id accumulated from the alloc *)
  | Step of int   (* transition function of one control-flow hop *)

let equal (a : t) (b : t) = a = b
let compare = Stdlib.compare
let hash = Hashtbl.hash

let to_int = function
  | Track f -> f lsl 1
  | Step f -> (f lsl 1) lor 1

let of_int n = if n land 1 = 0 then Track (n lsr 1) else Step (n lsr 1)

(* Composition needs the transition-function registry of the property being
   checked; the engine is instantiated per run, so the registry is passed at
   graph-build time via this cell.  The cell is *domain-local*: checking
   instances run concurrently on worker domains, each building its own
   graph and registry, and a shared cell would let one instance compose
   another property's transition functions. *)
let registry_key : Transfn.registry option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_registry r = Domain.DLS.get registry_key := Some r

let get_registry () =
  match !(Domain.DLS.get registry_key) with
  | Some r -> r
  | None -> invalid_arg "Dataflow_grammar: registry not set"

let compose (a : t) (b : t) : t option =
  match (a, b) with
  | Track f, Step g -> Some (Track (Transfn.compose (get_registry ()) f g))
  | Track _, Track _ | Step _, (Step _ | Track _) -> None

(* Composition on the dense integer codes ([Track f] even, [Step f] odd),
   allocation-free for the engine's int-packed join loop; [-1] for "no
   production".  The transfer-function composition itself is memoized by
   the registry, so the hot path is two bit tests and a table lookup. *)
let compose_code (a : int) (b : int) : int =
  if a land 1 = 0 && b land 1 = 1 then
    Transfn.compose (get_registry ()) (a lsr 1) (b lsr 1) lsl 1
  else -1

let unary (_ : t) : t list = []
let mirror (_ : t) : t option = None

let is_result = function Track _ -> true | Step _ -> false

let pp ppf = function
  | Track f -> Fmt.pf ppf "track#%d" f
  | Step f -> Fmt.pf ppf "step#%d" f

let to_string l = Fmt.str "%a" pp l
