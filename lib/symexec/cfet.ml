(* Control-flow execution trees (paper §3.1).

   A CFET is a binary tree of "extended basic blocks" built by symbolically
   executing a loop-free method body.  Non-leaf nodes end at a control-flow
   divergence and carry the symbolic condition guarding it; leaves end at a
   method exit (return, or an exception with no matching handler).  Node ids
   follow the paper's Eytzinger-style numbering: the root is 0, the false
   child of node n is 2n+1 and its true child is 2n+2, so the parent of any
   node is (id - 1) / 2 and an id interval identifies a unique tree path.

   Exceptions are part of the tree: a [throw] transfers control into the
   innermost matching handler (within the same node -- no divergence), and a
   call that may throw ends the node with a nondeterministic divergence whose
   true child re-executes the call normally and whose false child enters the
   handler (or an exceptional leaf).  The divergence condition is "e = 0"
   over a fresh symbol e, satisfiable on both sides. *)

module Symbol = Smt.Symbol
module Linexpr = Smt.Linexpr
module Formula = Smt.Formula
module Solver = Smt.Solver
module Encoding = Pathenc.Encoding


type exit_kind =
  | Normal of Linexpr.t option  (* symbolic return value, if any *)
  | Exceptional of string       (* escaping exception class *)

(* A call to a method defined in the program, recorded in the node that
   contains the call statement; the ICFET turns these into call/return
   edges. *)
type call_info = {
  call_stmt : Jir.Ast.stmt;
  callee_id : string;
  arg_values : Linexpr.t list;    (* symbolic arguments at the site *)
  lhs : (Jir.Ast.var * Symbol.t) option;  (* variable receiving the result *)
  diverges : bool;
      (* the call heads the true child of a may-throw divergence, whose
         false sibling receives the exception *)
}

type node = {
  id : int;
  stmts : Jir.Ast.stmt list;      (* execution order *)
  cond : Formula.t option;        (* Some iff the node has children *)
  t_child : int option;
  f_child : int option;
  exit : exit_kind option;        (* Some iff the node is a leaf *)
  calls : call_info list;         (* in execution order *)
}

type t = {
  meth : Jir.Ast.meth;
  meth_idx : int;                 (* dense index used by encodings *)
  nodes : (int, node) Hashtbl.t;
  node_count : int;
  leaves : int list;              (* leaf ids *)
  depth : int;
}

exception Too_large of string  (* method id *)

type config = {
  max_nodes_per_method : int;
  may_throw : Jir.Ast.call -> string option;
      (* exception class a call can raise, if any *)
}

(* Calls that may throw according to method signatures declared in the
   program, the paper's default behaviour for analyzed code. *)
let may_throw_of_program (p : Jir.Ast.program) : Jir.Ast.call -> string option =
  let idx = Jir.Ast.index p in
  fun c ->
    match
      Jir.Ast.find_method_idx idx ~cls:c.Jir.Ast.target_class
        ~meth:c.Jir.Ast.mname
    with
    | Some m -> (match m.Jir.Ast.throws with e :: _ -> Some e | [] -> None)
    | None -> None

let default_config (p : Jir.Ast.program) =
  { max_nodes_per_method = 200_000; may_throw = may_throw_of_program p }

let parent_id id = (id - 1) / 2
let is_true_child id = id mod 2 = 0
let node t id = Hashtbl.find t.nodes id

(* ------------------------------------------------------------------ *)
(* Construction.                                                       *)
(* ------------------------------------------------------------------ *)

(* Continuation of the walk: statement lists stacked with markers recording
   where a try block's handler scope ends. *)
type work =
  | Stmts of Jir.Ast.block * work
  | Pop of work
  | Done

type handler_frame = Jir.Ast.catch list * work

let catch_matches ~thrown (c : Jir.Ast.catch) =
  c.Jir.Ast.exn_class = thrown || c.Jir.Ast.exn_class = "Exception"

(* Where does an exception of class [thrown] go?  Either into a handler
   (continuation + remaining handler stack) or out of the method. *)
let rec handler_continuation ~thrown (handlers : handler_frame list) =
  match handlers with
  | [] -> `Escapes
  | (catches, kont) :: tl -> (
      match List.find_opt (catch_matches ~thrown) catches with
      | Some c -> `Handler (Stmts (c.Jir.Ast.handler, kont), tl)
      | None -> handler_continuation ~thrown tl)

let build ~(config : config) ~meth_idx (m : Jir.Ast.meth) : t =
  let meth_id = Jir.Ast.meth_id m in
  let nodes = Hashtbl.create 64 in
  let count = ref 0 in
  let leaves = ref [] in
  let max_depth = ref 0 in
  let depth_of id =
    (* number of edges from the root: position of the highest set bit of
       id+1, minus one *)
    let rec go id acc = if id = 0 then acc else go (parent_id id) (acc + 1) in
    go id 0
  in
  let register n =
    incr count;
    if !count > config.max_nodes_per_method then raise (Too_large meth_id);
    Hashtbl.replace nodes n.id n;
    let d = depth_of n.id in
    if d > !max_depth then max_depth := d;
    if n.exit <> None then leaves := n.id :: !leaves
  in
  let finalize_leaf ~id ~stmts ~calls exit =
    register
      { id; stmts = List.rev stmts; cond = None; t_child = None;
        f_child = None; exit = Some exit; calls = List.rev calls }
  in
  let finalize_branch ~id ~stmts ~calls cond =
    register
      { id; stmts = List.rev stmts; cond = Some cond;
        t_child = Some ((2 * id) + 2); f_child = Some ((2 * id) + 1);
        exit = None; calls = List.rev calls }
  in
  (* [go] accumulates one extended basic block (in reverse) until the walk
     hits a divergence or an exit. *)
  let rec go ~id ~env ~stmts ~calls work handlers =
    match work with
    | Done -> finalize_leaf ~id ~stmts ~calls (Normal None)
    | Pop k -> (
        match handlers with
        | _ :: tl -> go ~id ~env ~stmts ~calls k tl
        | [] -> assert false)
    | Stmts ([], k) -> go ~id ~env ~stmts ~calls k handlers
    | Stmts (s :: ss, k) -> step ~id ~env ~stmts ~calls s (Stmts (ss, k)) handlers

  and step ~id ~env ~stmts ~calls (s : Jir.Ast.stmt) rest handlers =
    let continue ?(stmt = true) ?(calls = calls) env =
      go ~id ~env ~stmts:(if stmt then s :: stmts else stmts) ~calls rest
        handlers
    in
    match s.Jir.Ast.kind with
    | Jir.Ast.While _ ->
        invalid_arg
          (Printf.sprintf "Cfet.build: %s still contains a loop; run \
                           Unroll.unroll_program first" meth_id)
    | Jir.Ast.Store _ -> continue env
    | Jir.Ast.Decl (_, _, None) -> continue env
    | Jir.Ast.Decl (_, v, Some r) | Jir.Ast.Assign (v, r) ->
        assignment ~id ~env ~stmts ~calls s v r rest handlers
    | Jir.Ast.Expr c -> call_effect ~id ~env ~stmts ~calls s ~lhs:None c rest handlers
    | Jir.Ast.Return e ->
        let ret = Option.map (Symenv.eval env ~meth_id) e in
        finalize_leaf ~id ~stmts:(s :: stmts) ~calls (Normal ret)
    | Jir.Ast.Throw thrown -> (
        match handler_continuation ~thrown handlers with
        | `Escapes ->
            finalize_leaf ~id ~stmts:(s :: stmts) ~calls (Exceptional thrown)
        | `Handler (work, handlers) ->
            go ~id ~env ~stmts:(s :: stmts) ~calls work handlers)
    | Jir.Ast.If (c, t, f) ->
        (* the conditional lives in [cond]; the branch blocks live in the
           children, so the If statement itself is not part of the node *)
        let cond = Symenv.eval_cond env ~meth_id c in
        finalize_branch ~id ~stmts ~calls cond;
        go ~id:((2 * id) + 2) ~env ~stmts:[] ~calls:[] (Stmts (t, rest))
          handlers;
        go ~id:((2 * id) + 1) ~env ~stmts:[] ~calls:[] (Stmts (f, rest))
          handlers
    | Jir.Ast.Try (b, catches) ->
        go ~id ~env ~stmts ~calls
          (Stmts (b, Pop rest))
          ((catches, rest) :: handlers)

  and assignment ~id ~env ~stmts ~calls s v (r : Jir.Ast.rhs) rest handlers =
    let continue env =
      go ~id ~env ~stmts:(s :: stmts) ~calls rest handlers
    in
    match r with
    | Jir.Ast.Rexpr e -> continue (Symenv.bind env v (Symenv.eval env ~meth_id e))
    | Jir.Ast.Rnull -> continue env
    | Jir.Ast.Rload _ ->
        continue
          (Symenv.bind env v
             (Linexpr.var (Symenv.unknown_symbol ~meth_id v ~sid:s.Jir.Ast.sid)))
    | Jir.Ast.Rnew (cls, args) ->
        (* constructor: behaves like a static call to <init> when defined *)
        let c =
          { Jir.Ast.recv = None; target_class = cls; mname = "<init>"; args }
        in
        call_effect ~id ~env ~stmts ~calls s ~lhs:(Some (v, `Object)) c rest
          handlers
    | Jir.Ast.Rcall c ->
        call_effect ~id ~env ~stmts ~calls s ~lhs:(Some (v, `Value)) c rest
          handlers

  and call_effect ~id ~env ~stmts ~calls (s : Jir.Ast.stmt) ~lhs c rest handlers =
    let arg_values = List.map (Symenv.eval env ~meth_id) c.Jir.Ast.args in
    let callee_id =
      Jir.Ast.qualified_name ~cls:c.Jir.Ast.target_class ~meth:c.Jir.Ast.mname
    in
    let lhs_binding env =
      match lhs with
      | None -> env
      | Some (v, _) ->
          Symenv.bind env v
            (Linexpr.var (Symenv.unknown_symbol ~meth_id v ~sid:s.Jir.Ast.sid))
    in
    let lhs_info =
      match lhs with
      | None -> None
      | Some (v, _) ->
          Some (v, Symenv.unknown_symbol ~meth_id v ~sid:s.Jir.Ast.sid)
    in
    match config.may_throw c with
    | None ->
        let call_record =
          { call_stmt = s; callee_id; arg_values; lhs = lhs_info;
            diverges = false }
        in
        let calls = call_record :: calls in
        go ~id ~env:(lhs_binding env) ~stmts:(s :: stmts) ~calls rest handlers
    | Some thrown ->
        (* End the node before the call: the true child performs the call
           (event observed), the false child takes the exceptional route. *)
        let call_record =
          { call_stmt = s; callee_id; arg_values; lhs = lhs_info;
            diverges = true }
        in
        let e = Symbol.fresh "exn" in
        let cond = Formula.eq (Linexpr.var e) Linexpr.zero in
        finalize_branch ~id ~stmts ~calls cond;
        go ~id:((2 * id) + 2) ~env:(lhs_binding env) ~stmts:[ s ]
          ~calls:[ call_record ] rest handlers;
        let fid = (2 * id) + 1 in
        (match handler_continuation ~thrown handlers with
        | `Escapes ->
            finalize_leaf ~id:fid ~stmts:[] ~calls:[] (Exceptional thrown)
        | `Handler (work, handlers) ->
            go ~id:fid ~env ~stmts:[] ~calls:[] work handlers)
  in
  let env = Symenv.init_for_method m in
  go ~id:0 ~env ~stmts:[] ~calls:[] (Stmts (m.Jir.Ast.body, Done)) [];
  { meth = m; meth_idx; nodes; node_count = !count; leaves = !leaves;
    depth = !max_depth }

(* ------------------------------------------------------------------ *)
(* Queries used by path decoding and graph generation.                 *)
(* ------------------------------------------------------------------ *)

(* Branch constraints along the tree path [first .. last]; [first] must be an
   ancestor of [last].  The constraint of the step parent -> child is the
   parent's condition (true child) or its negation (false child).  This is
   Algorithm 1 of the paper generalized to signed branches. *)
let path_constraint (t : t) ~first ~last : Formula.t =
  let rec walk cur acc =
    if cur = first then acc
    else if cur < first || cur <= 0 then
      invalid_arg
        (Printf.sprintf "Cfet.path_constraint: %d is not an ancestor of %d"
           first last)
    else
      let p = parent_id cur in
      let pnode = node t p in
      let c =
        match pnode.cond with
        | Some c -> c
        | None -> assert false (* inner nodes always carry a condition *)
      in
      let c = if is_true_child cur then c else Formula.not_ c in
      walk p (Formula.and_ acc c)
  in
  walk last Formula.True

(* All root-to-leaf paths (leaf ids); used by tests and by exhaustive
   checkers on small methods. *)
let leaf_ids (t : t) = t.leaves

let rec path_to_root (t : t) id acc =
  if id = 0 then 0 :: acc else path_to_root t (parent_id id) (id :: acc)

let pp ppf (t : t) =
  let rec dump ppf id =
    let n = node t id in
    let pp_stmt ppf s = Jir.Pp.stmt 0 ppf s in
    Fmt.pf ppf "@[<v 2>node %d:%a%a@]" id
      (fun ppf () ->
        List.iter (fun s -> Fmt.pf ppf "@ %a" pp_stmt s) n.stmts)
      ()
      (fun ppf () ->
        match (n.cond, n.exit) with
        | Some c, _ ->
            Fmt.pf ppf "@ if %a@ @[<v 2>T:@ %a@]@ @[<v 2>F:@ %a@]" Formula.pp c
              dump (Option.get n.t_child) dump (Option.get n.f_child)
        | None, Some (Normal _) -> Fmt.pf ppf "@ exit(normal)"
        | None, Some (Exceptional e) -> Fmt.pf ppf "@ exit(throws %s)" e
        | None, None -> assert false)
      ()
  in
  dump ppf 0
