(* Declarative typestate property DSL (.gspec).

   A spec file declares one or more properties.  A property is either a
   plain typestate FSM —

     property io {
       track FileInputStream, FileOutputStream;
       initial Open;
       accepting Closed;
       on Open "close" -> Closed;
       ...
     }

   — an exception-walk property —

     property exc_twr { kind exception; handler_aware; }

   — or the product of two previously declared properties (for ordering
   checks):

     property lock_order = product(lock_pairing, lock_ordering) {
       error "lock order inversion on {class}";
     }

   Events come in two modes.  With no [event] declarations the property
   uses name matching: every library instance call fires an event named
   after the called method (the historical hand-coded behavior, so DSL
   replicas of the built-ins are drop-in identical).  With [event]
   declarations —

       event sink = call send when arg 0 == 0;
       event sink = store;

   — a statement fires the first declared event whose pattern matches and
   whose guards hold; repeated names act as alternation.

   The compiler lowers a property onto the existing {!Fsm.t} so the whole
   pipeline (escape pre-filter, summaries, graph closure, SMT, scheduler)
   runs unchanged.  All diagnostics are positioned ({!Spec_error}). *)

type pos = { sp_file : string; sp_line : int; sp_col : int }

exception Spec_error of pos * string

let spec_error at fmt =
  Format.kasprintf (fun msg -> raise (Spec_error (at, msg))) fmt

let error_to_string (at, msg) =
  Printf.sprintf "%s:%d:%d: %s" at.sp_file at.sp_line at.sp_col msg

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Str of string
  | Num of int
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Semi
  | Comma
  | Eq
  | EqEq
  | Arrow
  | Star
  | Eof

let token_to_string = function
  | Ident s -> Printf.sprintf "identifier '%s'" s
  | Str s -> Printf.sprintf "string %S" s
  | Num n -> Printf.sprintf "integer %d" n
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Semi -> "';'"
  | Comma -> "','"
  | Eq -> "'='"
  | EqEq -> "'=='"
  | Arrow -> "'->'"
  | Star -> "'*'"
  | Eof -> "end of file"

type tok = { tok : token; at : pos }

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

(* '.' is an identifier character so the pair-state names a printed
   product property carries ("NoA.Start") parse back *)
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '.'
let is_digit c = c >= '0' && c <= '9'

let tokenize ~file src : tok list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let here () = { sp_file = file; sp_line = !line; sp_col = !col } in
  let adv () =
    (if src.[!i] = '\n' then (
       incr line;
       col := 1)
     else incr col);
    incr i
  in
  let emit t at = toks := { tok = t; at } :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then adv ()
    else if c = '#' then
      while !i < n && src.[!i] <> '\n' do
        adv ()
      done
    else
      let at = here () in
      match c with
      | '{' ->
          emit Lbrace at;
          adv ()
      | '}' ->
          emit Rbrace at;
          adv ()
      | '(' ->
          emit Lparen at;
          adv ()
      | ')' ->
          emit Rparen at;
          adv ()
      | ';' ->
          emit Semi at;
          adv ()
      | ',' ->
          emit Comma at;
          adv ()
      | '*' ->
          emit Star at;
          adv ()
      | '=' ->
          adv ();
          if !i < n && src.[!i] = '=' then (
            emit EqEq at;
            adv ())
          else emit Eq at
      | '-' ->
          adv ();
          if !i < n && src.[!i] = '>' then (
            emit Arrow at;
            adv ())
          else spec_error at "expected '->'"
      | '"' ->
          adv ();
          let b = Buffer.create 16 in
          let closed = ref false in
          while (not !closed) && !i < n do
            let c = src.[!i] in
            if c = '"' then (
              closed := true;
              adv ())
            else if c = '\n' then spec_error at "unterminated string"
            else (
              Buffer.add_char b c;
              adv ())
          done;
          if not !closed then spec_error at "unterminated string";
          emit (Str (Buffer.contents b)) at
      | c when is_digit c ->
          let b = Buffer.create 8 in
          while !i < n && is_digit src.[!i] do
            Buffer.add_char b src.[!i];
            adv ()
          done;
          emit (Num (int_of_string (Buffer.contents b))) at
      | c when is_ident_start c ->
          let b = Buffer.create 16 in
          while !i < n && is_ident_char src.[!i] do
            Buffer.add_char b src.[!i];
            adv ()
          done;
          emit (Ident (Buffer.contents b)) at
      | c -> spec_error at "unexpected character '%c'" c
  done;
  emit Eof (here ());
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* AST                                                                *)
(* ------------------------------------------------------------------ *)

type decl =
  | Dtrack of (string * pos) list
  | Dinitial of string * pos
  | Daccepting of (string * pos) list
  | Dstate of (string * pos) list
  | Derror of { est : string; est_pos : pos; emsg : string option }
  | Dmessage of { mst : string; mst_pos : pos; mtext : string }
  | Devent of {
      dv_name : string;
      dv_pos : pos;
      dv_pattern : Fsm.pattern;
      dv_guards : Fsm.guard list;
    }
  | Don of {
      t_from : string;
      t_from_pos : pos;
      t_ev : string;
      t_ev_pos : pos;
      t_goto : string;
      t_goto_pos : pos;
    }
  | Dstrict of pos
  | Dkind_exception of pos
  | Dhandler_aware of pos

type property =
  | Pdef of { p_name : string; p_pos : pos; p_decls : decl list }
  | Pproduct of {
      p_name : string;
      p_pos : pos;
      p_left : string * pos;
      p_right : string * pos;
      p_err_msg : string option;
    }

(* ------------------------------------------------------------------ *)
(* Parser (recursive descent)                                         *)
(* ------------------------------------------------------------------ *)

type pstate = { mutable toks : tok list }

let peek st = List.hd st.toks

let next st =
  let t = List.hd st.toks in
  (match t.tok with Eof -> () | _ -> st.toks <- List.tl st.toks);
  t

let expect st want =
  let t = next st in
  if t.tok <> want then
    spec_error t.at "expected %s, found %s" (token_to_string want)
      (token_to_string t.tok)

let p_ident st what =
  let t = next st in
  match t.tok with
  | Ident s -> (s, t.at)
  | k -> spec_error t.at "expected %s, found %s" what (token_to_string k)

(* An identifier or a quoted string: used where the grammar names things
   that may not be valid identifiers (class names like "<null>", event
   names matching arbitrary method names). *)
let p_name st what =
  let t = next st in
  match t.tok with
  | Ident s | Str s -> (s, t.at)
  | k -> spec_error t.at "expected %s, found %s" what (token_to_string k)

let p_int st what =
  let t = next st in
  match t.tok with
  | Num n -> (n, t.at)
  | k -> spec_error t.at "expected %s, found %s" what (token_to_string k)

let rec p_name_list st what =
  let n = p_name st what in
  match (peek st).tok with
  | Comma ->
      ignore (next st);
      n :: p_name_list st what
  | _ -> [ n ]

let rec p_ident_list st what =
  let n = p_ident st what in
  match (peek st).tok with
  | Comma ->
      ignore (next st);
      n :: p_ident_list st what
  | _ -> [ n ]

let p_pattern st : Fsm.pattern =
  let kw, at = p_ident st "an event pattern ('call', 'store', 'return')" in
  match kw with
  | "call" -> (
      let t = next st in
      match t.tok with
      | Star -> Fsm.Pany_call
      | Ident m | Str m -> Fsm.Pcall m
      | k ->
          spec_error t.at "expected a method name or '*', found %s"
            (token_to_string k))
  | "store" -> Fsm.Pstore
  | "return" -> Fsm.Preturn
  | kw -> spec_error at "unknown event pattern '%s'" kw

let p_guard st : Fsm.guard =
  let kw, at = p_ident st "a guard ('arg' or 'receiver')" in
  match kw with
  | "arg" ->
      let idx, idx_at = p_int st "an argument index" in
      if idx < 0 then spec_error idx_at "argument index must be non-negative";
      expect st EqEq;
      let n, _ = p_int st "an integer literal" in
      Fsm.Garg_const (idx, n)
  | "receiver" -> (
      let which, wat = p_ident st "a receiver predicate" in
      match which with
      | "nullable" -> Fsm.Gnullable true
      | "nonnull" -> Fsm.Gnullable false
      | "escapes" -> Fsm.Gescaping true
      | "local" -> Fsm.Gescaping false
      | w ->
          spec_error wat
            "unknown receiver predicate '%s' (expected nullable, nonnull, \
             escapes or local)"
            w)
  | kw -> spec_error at "unknown guard '%s' (expected 'arg' or 'receiver')" kw

let rec p_guards st acc =
  match (peek st).tok with
  | Ident "when" ->
      ignore (next st);
      p_guards st (p_guard st :: acc)
  | _ -> List.rev acc

let p_decl st : decl =
  let kw, at = p_ident st "a declaration" in
  let d =
    match kw with
    | "track" -> Dtrack (p_name_list st "a class name")
    | "initial" ->
        let s, p = p_ident st "a state name" in
        Dinitial (s, p)
    | "accepting" -> Daccepting (p_ident_list st "a state name")
    | "state" -> Dstate (p_ident_list st "a state name")
    | "error" -> (
        let s, p = p_ident st "a state name" in
        match (peek st).tok with
        | Str m ->
            ignore (next st);
            Derror { est = s; est_pos = p; emsg = Some m }
        | _ -> Derror { est = s; est_pos = p; emsg = None })
    | "message" ->
        let s, p = p_ident st "a state name" in
        let t = next st in
        let text =
          match t.tok with
          | Str m -> m
          | k ->
              spec_error t.at "expected a message string, found %s"
                (token_to_string k)
        in
        Dmessage { mst = s; mst_pos = p; mtext = text }
    | "event" ->
        let name, p = p_ident st "an event name" in
        expect st Eq;
        let pat = p_pattern st in
        let guards = p_guards st [] in
        Devent { dv_name = name; dv_pos = p; dv_pattern = pat; dv_guards = guards }
    | "on" ->
        let from, from_pos = p_ident st "a state name" in
        let ev, ev_pos = p_name st "an event name" in
        expect st Arrow;
        let goto, goto_pos = p_ident st "a state name" in
        Don
          { t_from = from;
            t_from_pos = from_pos;
            t_ev = ev;
            t_ev_pos = ev_pos;
            t_goto = goto;
            t_goto_pos = goto_pos }
    | "strict" -> Dstrict at
    | "kind" -> (
        let k, kat = p_ident st "a property kind" in
        match k with
        | "exception" -> Dkind_exception at
        | k -> spec_error kat "unknown property kind '%s'" k)
    | "handler_aware" -> Dhandler_aware at
    | kw -> spec_error at "unknown declaration '%s'" kw
  in
  expect st Semi;
  d

let p_property st : property =
  let t = next st in
  (match t.tok with
  | Ident "property" -> ()
  | k -> spec_error t.at "expected 'property', found %s" (token_to_string k));
  let name, p_pos = p_ident st "a property name" in
  let t = next st in
  match t.tok with
  | Lbrace ->
      let rec decls acc =
        match (peek st).tok with
        | Rbrace ->
            ignore (next st);
            List.rev acc
        | _ -> decls (p_decl st :: acc)
      in
      Pdef { p_name = name; p_pos; p_decls = decls [] }
  | Eq -> (
      let kw, kat = p_ident st "'product'" in
      if kw <> "product" then
        spec_error kat "expected 'product', found identifier '%s'" kw;
      expect st Lparen;
      let left = p_ident st "a property name" in
      expect st Comma;
      let right = p_ident st "a property name" in
      expect st Rparen;
      match (peek st).tok with
      | Semi ->
          ignore (next st);
          Pproduct { p_name = name; p_pos; p_left = left; p_right = right;
                     p_err_msg = None }
      | Lbrace ->
          ignore (next st);
          let msg =
            let kw, kat = p_ident st "'error'" in
            if kw <> "error" then
              spec_error kat "expected 'error', found identifier '%s'" kw;
            let t = next st in
            match t.tok with
            | Str m ->
                expect st Semi;
                m
            | k ->
                spec_error t.at "expected a message string, found %s"
                  (token_to_string k)
          in
          expect st Rbrace;
          Pproduct { p_name = name; p_pos; p_left = left; p_right = right;
                     p_err_msg = Some msg }
      | k ->
          spec_error (peek st).at "expected ';' or '{', found %s"
            (token_to_string k))
  | k -> spec_error t.at "expected '{' or '=', found %s" (token_to_string k)

let parse ~file src : property list =
  let st = { toks = tokenize ~file src } in
  let rec props acc =
    match (peek st).tok with
    | Eof -> List.rev acc
    | _ -> props (p_property st :: acc)
  in
  props []

(* ------------------------------------------------------------------ *)
(* Validation and compilation of a single typestate property           *)
(* ------------------------------------------------------------------ *)

type checker_kind =
  | Typestate of Fsm.t
  | Exception_walk of { handler_aware : bool }

type checker = { c_name : string; c_kind : checker_kind }

let is_exception_prop decls =
  List.exists (function Dkind_exception _ -> true | _ -> false) decls

let compile_exception name p_pos decls : checker =
  let handler_aware = ref false in
  List.iter
    (function
      | Dkind_exception _ -> ()
      | Dhandler_aware _ -> handler_aware := true
      | Dtrack ((_, at) :: _) | Dinitial (_, at) | Daccepting ((_, at) :: _)
      | Dstate ((_, at) :: _) ->
          spec_error at
            "an exception-kind property cannot declare typestate structure"
      | Derror { est_pos = at; _ } | Dmessage { mst_pos = at; _ }
      | Devent { dv_pos = at; _ } | Don { t_from_pos = at; _ } | Dstrict at ->
          spec_error at
            "an exception-kind property cannot declare typestate structure"
      | Dtrack [] | Daccepting [] | Dstate [] ->
          spec_error p_pos "empty declaration")
    decls;
  { c_name = name;
    c_kind = Exception_walk { handler_aware = !handler_aware } }

(* Validate the declarations of a typestate property and lower them to an
   [Fsm.t].  Every rule reports a position. *)
let compile_typestate name p_pos decls : Fsm.t =
  (match
     List.find_opt (function Dhandler_aware _ -> true | _ -> false) decls
   with
  | Some (Dhandler_aware at) ->
      spec_error at "'handler_aware' requires 'kind exception'"
  | _ -> ());
  (* Declared states, in declaration order, with the position of the first
     declaration (used by the unreachable-state diagnostic). *)
  let states : (string, pos) Hashtbl.t = Hashtbl.create 16 in
  let state_order = ref [] in
  let declare_state (s, at) =
    if not (Hashtbl.mem states s) then (
      Hashtbl.add states s at;
      state_order := s :: !state_order)
  in
  let initial = ref None in
  let error_state = ref None in
  let error_msg = ref None in
  List.iter
    (function
      | Dinitial (s, at) -> (
          match !initial with
          | Some _ -> spec_error at "duplicate 'initial' declaration"
          | None ->
              initial := Some (s, at);
              declare_state (s, at))
      | Daccepting ss | Dstate ss -> List.iter declare_state ss
      | Derror { est; est_pos; emsg } -> (
          match !error_state with
          | Some _ ->
              spec_error est_pos
                "duplicate 'error' declaration (a property has one error \
                 state)"
          | None ->
              error_state := Some (est, est_pos);
              error_msg := emsg;
              declare_state (est, est_pos))
      | _ -> ())
    decls;
  (* The error state compiles to the engine's distinguished "Error" state;
     "Error" is implicitly declared even without an [error] decl. *)
  let error_name = match !error_state with Some (s, _) -> s | None -> "Error" in
  if not (Hashtbl.mem states "Error") then
    Hashtbl.add states "Error" p_pos;
  let rename s = if s = error_name then "Error" else s in
  let check_state (s, at) =
    if not (Hashtbl.mem states s) then spec_error at "unknown state '%s'" s
  in
  (match !error_state with
  | Some (s, at) when !error_msg = None ->
      spec_error at "missing error message for state '%s'" s
  | _ -> ());
  let initial =
    match !initial with
    | Some (s, _) -> s
    | None -> spec_error p_pos "property '%s' declares no initial state" name
  in
  (* Event declarations. *)
  let event_decls =
    List.filter_map
      (function
        | Devent { dv_name; dv_pattern; dv_guards; _ } ->
            Some (dv_name, dv_pattern, dv_guards)
        | _ -> None)
      decls
  in
  let declared_event e =
    List.exists (fun (n, _, _) -> n = e) event_decls
  in
  (* Transitions: states must be declared, events must be declared when the
     property uses declared events, the error state has no outgoing
     transitions, and no (state, event) pair maps to two targets. *)
  let seen : (string * string, string * pos) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (function
      | Don { t_from; t_from_pos; t_ev; t_ev_pos; t_goto; t_goto_pos } ->
          check_state (t_from, t_from_pos);
          check_state (t_goto, t_goto_pos);
          if rename t_from = "Error" then
            spec_error t_from_pos
              "transition out of the error state '%s'" t_from;
          if event_decls <> [] && not (declared_event t_ev) then
            spec_error t_ev_pos "unknown event '%s'" t_ev;
          let key = (rename t_from, t_ev) in
          (match Hashtbl.find_opt seen key with
          | Some (goto', _) when goto' <> rename t_goto ->
              spec_error t_from_pos
                "nondeterministic transition: %s on '%s' goes to both '%s' \
                 and '%s'"
                t_from t_ev goto' t_goto
          | Some _ ->
              spec_error t_from_pos
                "duplicate transition: %s on '%s' already declared" t_from
                t_ev
          | None -> Hashtbl.add seen key (rename t_goto, t_from_pos))
      | Dmessage { mst; mst_pos; _ } -> check_state (mst, mst_pos)
      | _ -> ())
    decls;
  (* Reachability: every declared state other than the error state must be
     reachable from the initial state via declared transitions. *)
  let reachable = Hashtbl.create 16 in
  let rec visit s =
    if not (Hashtbl.mem reachable s) then (
      Hashtbl.add reachable s ();
      Hashtbl.iter
        (fun (from, _) (goto, _) -> if from = s then visit goto)
        seen)
  in
  visit (rename initial);
  Hashtbl.iter
    (fun s at ->
      let r = rename s in
      if r <> "Error" && not (Hashtbl.mem reachable r) then
        spec_error at "unreachable state '%s'" s)
    states;
  (* Tracked classes. *)
  let tracked =
    List.concat_map (function Dtrack cs -> cs | _ -> []) decls
  in
  if tracked = [] then
    spec_error p_pos "property '%s' tracks no classes" name;
  (* Lower onto the FSM builder.  States are declared in source order so
     that a replica of a hand-coded checker gets the same state numbering
     (reports do not depend on ids, but determinism is free here). *)
  let b = Fsm.builder name in
  List.iter (fun (c, _) -> Fsm.track b c) tracked;
  Fsm.initial b (rename initial);
  List.iter
    (fun s -> if rename s <> "Error" then Fsm.state b (rename s))
    (List.rev !state_order);
  List.iter
    (function
      | Daccepting ss -> List.iter (fun (s, _) -> Fsm.accepting b (rename s)) ss
      | Don { t_from; t_ev; t_goto; _ } ->
          Fsm.on b ~from:(rename t_from) ~event:t_ev ~goto:(rename t_goto)
      | Dstrict _ -> Fsm.strict_events b
      | Devent { dv_name; dv_pattern; dv_guards; _ } ->
          Fsm.declare_event b ~name:dv_name ~pattern:dv_pattern
            ~guards:dv_guards
      | Dmessage { mst; mtext; _ } ->
          Fsm.message b ~state:(rename mst) ~text:mtext
      | _ -> ())
    decls;
  (match !error_msg with
  | Some m -> Fsm.message b ~state:"Error" ~text:m
  | None -> ());
  Fsm.build b

(* ------------------------------------------------------------------ *)
(* Product construction                                               *)
(* ------------------------------------------------------------------ *)

(* The product runs two properties in lockstep over the union of their
   alphabets: an event outside one component's alphabet stalls that
   component.  The product errs as soon as either component errs, and a
   final state is accepting iff both components accept.  Used for
   ordering checks (e.g. lock-order inversion = pairing x ordering). *)
let product ~name ~err_msg ~at (f1 : Fsm.t) (f2 : Fsm.t) : Fsm.t =
  let declared f = f.Fsm.event_decls <> [] in
  if declared f1 <> declared f2 then
    spec_error at
      "product components '%s' and '%s' mix declared-event and \
       name-matching properties"
      f1.Fsm.name f2.Fsm.name;
  if (not (declared f1)) && not f1.Fsm.ignore_unknown_events then
    spec_error at
      "product component '%s' is strict and name-matching; its alphabet is \
       open so the product is not well defined"
      f1.Fsm.name;
  if (not (declared f2)) && not f2.Fsm.ignore_unknown_events then
    spec_error at
      "product component '%s' is strict and name-matching; its alphabet is \
       open so the product is not well defined"
      f2.Fsm.name;
  (* Merge event declarations: same name must mean the same thing. *)
  let decls =
    List.fold_left
      (fun acc (d : Fsm.event_decl) ->
        if List.mem d acc then acc
        else if
          List.exists (fun (d' : Fsm.event_decl) ->
              d'.Fsm.ev_name = d.Fsm.ev_name
              && (d'.Fsm.ev_pattern <> d.Fsm.ev_pattern
                 || d'.Fsm.ev_guards <> d.Fsm.ev_guards))
            acc
        then
          spec_error at
            "product components declare event '%s' with different patterns"
            d.Fsm.ev_name
        else acc @ [ d ])
      f1.Fsm.event_decls f2.Fsm.event_decls
  in
  let alphabet =
    List.sort_uniq compare (f1.Fsm.events @ f2.Fsm.events)
  in
  let step_comp (f : Fsm.t) s e =
    if List.mem e f.Fsm.events then Fsm.step f s e else s
  in
  let is_err (f : Fsm.t) s = s = f.Fsm.error in
  let pair_name (s1, s2) =
    if is_err f1 s1 || is_err f2 s2 then "Error"
    else Fsm.state_name f1 s1 ^ "." ^ Fsm.state_name f2 s2
  in
  let b = Fsm.builder name in
  List.iter (Fsm.track b)
    (List.sort_uniq compare
       (f1.Fsm.tracked_classes @ f2.Fsm.tracked_classes));
  let init = (f1.Fsm.initial, f2.Fsm.initial) in
  Fsm.initial b (pair_name init);
  (* BFS over reachable pairs; every (pair, alphabet event) transition is
     emitted explicitly, so strictness of the product never triggers. *)
  let visited = Hashtbl.create 16 in
  let queue = Queue.create () in
  Hashtbl.add visited init ();
  Queue.add init queue;
  while not (Queue.is_empty queue) do
    let ((s1, s2) as s) = Queue.pop queue in
    if not (is_err f1 s1 || is_err f2 s2) then (
      Fsm.state b (pair_name s);
      if Fsm.is_accepting f1 s1 && Fsm.is_accepting f2 s2 then
        Fsm.accepting b (pair_name s);
      List.iter
        (fun e ->
          let s' = (step_comp f1 s1 e, step_comp f2 s2 e) in
          Fsm.on b ~from:(pair_name s) ~event:e ~goto:(pair_name s');
          if not (Hashtbl.mem visited s') then (
            Hashtbl.add visited s' ();
            Queue.add s' queue))
        alphabet)
  done;
  List.iter
    (fun (d : Fsm.event_decl) ->
      Fsm.declare_event b ~name:d.Fsm.ev_name ~pattern:d.Fsm.ev_pattern
        ~guards:d.Fsm.ev_guards)
    decls;
  (match err_msg with
  | Some m -> Fsm.message b ~state:"Error" ~text:m
  | None -> (
      (* Inherit a component error message if exactly one side has one. *)
      match
        ( List.assoc_opt "Error" f1.Fsm.messages,
          List.assoc_opt "Error" f2.Fsm.messages )
      with
      | Some m, None | None, Some m -> Fsm.message b ~state:"Error" ~text:m
      | _ -> ()));
  Fsm.build b

(* ------------------------------------------------------------------ *)
(* Compiling a whole spec file                                        *)
(* ------------------------------------------------------------------ *)

(* Compile every property in [src].  Properties consumed as product
   components are helpers, not checkers: the result lists only the
   exported ones (in declaration order). *)
let compile ~file src : checker list =
  let props = parse ~file src in
  let seen_names = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let name, at =
        match p with
        | Pdef { p_name; p_pos; _ } | Pproduct { p_name; p_pos; _ } ->
            (p_name, p_pos)
      in
      if Hashtbl.mem seen_names name then
        spec_error at "duplicate property '%s'" name;
      Hashtbl.add seen_names name ())
    props;
  let env : (string, checker) Hashtbl.t = Hashtbl.create 8 in
  let consumed = Hashtbl.create 8 in
  let compiled =
    List.map
      (fun p ->
        let c =
          match p with
          | Pdef { p_name; p_pos; p_decls } ->
              if is_exception_prop p_decls then
                compile_exception p_name p_pos p_decls
              else
                { c_name = p_name;
                  c_kind = Typestate (compile_typestate p_name p_pos p_decls) }
          | Pproduct { p_name; p_pos; p_left; p_right; p_err_msg } ->
              let component (n, at) =
                match Hashtbl.find_opt env n with
                | None -> spec_error at "unknown property '%s'" n
                | Some { c_kind = Typestate f; _ } ->
                    Hashtbl.replace consumed n ();
                    f
                | Some _ ->
                    spec_error at
                      "property '%s' is not a typestate property; products \
                       compose typestate properties"
                      n
              in
              let f1 = component p_left in
              let f2 = component p_right in
              { c_name = p_name;
                c_kind =
                  Typestate
                    (product ~name:p_name ~err_msg:p_err_msg ~at:p_pos f1 f2) }
        in
        Hashtbl.replace env c.c_name c;
        c)
      props
  in
  List.filter (fun c -> not (Hashtbl.mem consumed c.c_name)) compiled

let compile_file path : checker list =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  compile ~file:(Filename.basename path) src

(* ------------------------------------------------------------------ *)
(* Printer: Fsm.t -> .gspec text (round-trips for the test suite)      *)
(* ------------------------------------------------------------------ *)

let quote_name s =
  let plain =
    String.length s > 0
    && is_ident_start s.[0]
    && String.for_all is_ident_char s
  in
  if plain then s else Printf.sprintf "%S" s

let print_pattern = function
  | Fsm.Pcall m -> "call " ^ quote_name m
  | Fsm.Pany_call -> "call *"
  | Fsm.Pstore -> "store"
  | Fsm.Preturn -> "return"

let print_guard = function
  | Fsm.Garg_const (i, n) -> Printf.sprintf "when arg %d == %d" i n
  | Fsm.Gnullable true -> "when receiver nullable"
  | Fsm.Gnullable false -> "when receiver nonnull"
  | Fsm.Gescaping true -> "when receiver escapes"
  | Fsm.Gescaping false -> "when receiver local"

(* Render an FSM as DSL text.  [compile] of the result yields an FSM
   isomorphic to the input (see {!equivalent}). *)
let print_fsm (f : Fsm.t) : string =
  let b = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "property %s {\n" f.Fsm.name;
  pr "  track %s;\n"
    (String.concat ", " (List.map quote_name f.Fsm.tracked_classes));
  pr "  initial %s;\n" (Fsm.state_name f f.Fsm.initial);
  (match f.Fsm.accepting with
  | [] -> ()
  | acc ->
      pr "  accepting %s;\n"
        (String.concat ", " (List.map (Fsm.state_name f) acc)));
  Array.iteri
    (fun i s ->
      if
        i <> f.Fsm.initial && i <> f.Fsm.error
        && not (Fsm.is_accepting f i)
      then pr "  state %s;\n" s)
    f.Fsm.state_names;
  if not f.Fsm.ignore_unknown_events then pr "  strict;\n";
  List.iter
    (fun (d : Fsm.event_decl) ->
      pr "  event %s = %s%s;\n" d.Fsm.ev_name (print_pattern d.Fsm.ev_pattern)
        (String.concat ""
           (List.map (fun g -> " " ^ print_guard g) d.Fsm.ev_guards)))
    f.Fsm.event_decls;
  List.iter
    (fun (s, m) ->
      if s = "Error" then pr "  error Error %S;\n" m
      else pr "  message %s %S;\n" s m)
    f.Fsm.messages;
  let transitions =
    Hashtbl.fold (fun (s, e) s' acc -> (s, e, s') :: acc) f.Fsm.transitions []
  in
  List.iter
    (fun (s, e, s') ->
      pr "  on %s %s -> %s;\n" (Fsm.state_name f s) (quote_name e)
        (Fsm.state_name f s'))
    (List.sort compare transitions);
  pr "}\n";
  Buffer.contents b

(* Structural equivalence up to state numbering: same name, tracked
   classes, state-name set, initial/error/accepting names, transition
   triples (by name), alphabet, strictness, event declarations and
   message templates. *)
let equivalent (a : Fsm.t) (b : Fsm.t) : bool =
  let names f =
    List.sort compare (Array.to_list f.Fsm.state_names)
  in
  let transitions f =
    Hashtbl.fold
      (fun (s, e) s' acc ->
        (Fsm.state_name f s, e, Fsm.state_name f s') :: acc)
      f.Fsm.transitions []
    |> List.sort compare
  in
  let accepting f =
    List.sort compare (List.map (Fsm.state_name f) f.Fsm.accepting)
  in
  a.Fsm.name = b.Fsm.name
  && List.sort compare a.Fsm.tracked_classes
     = List.sort compare b.Fsm.tracked_classes
  && names a = names b
  && Fsm.state_name a a.Fsm.initial = Fsm.state_name b b.Fsm.initial
  && Fsm.state_name a a.Fsm.error = Fsm.state_name b b.Fsm.error
  && accepting a = accepting b
  && transitions a = transitions b
  && List.sort compare a.Fsm.events = List.sort compare b.Fsm.events
  && a.Fsm.ignore_unknown_events = b.Fsm.ignore_unknown_events
  && a.Fsm.event_decls = b.Fsm.event_decls
  && List.sort compare a.Fsm.messages = List.sort compare b.Fsm.messages

(* ------------------------------------------------------------------ *)
(* Built-in spec texts                                                 *)
(* ------------------------------------------------------------------ *)

(* The DSL sources for the four new checkers and for the replicas of the
   hand-coded ones.  The same texts are shipped as specs/*.gspec; the
   test suite asserts the files and these strings stay in sync. *)
module Builtin = struct
  let lock_order =
    {|# Lock-order inversion: a LockPair object owns two locks A and B that
# must always be acquired A-first.  The checker is the product of two
# simpler properties: pairing (lock/unlock discipline for A) and
# ordering (B must not be the first lock taken).

property lock_pairing {
  track LockPair;
  initial NoA;
  accepting NoA;
  state HeldA;
  event lockA = call lockA;
  event unlockA = call unlockA;
  on NoA lockA -> HeldA;
  on HeldA lockA -> HeldA;
  on HeldA unlockA -> NoA;
  on NoA unlockA -> Error;
}

property lock_ordering {
  track LockPair;
  initial Start;
  accepting Start, AFirst;
  event lockA = call lockA;
  event lockB = call lockB;
  on Start lockA -> AFirst;
  on Start lockB -> Error;
  on AFirst lockA -> AFirst;
  on AFirst lockB -> AFirst;
}

property lock_order = product(lock_pairing, lock_ordering) {
  error "lock-order inversion on {class}: B acquired before A";
}
|}

  let taint =
    {|# Taint source-to-sink flow: a UserInput object is tainted from
# allocation; passing it to a sink (exec, send with mode flag 0, or a
# field store) before sanitize() is an error.

property taint {
  track UserInput;
  initial Tainted;
  accepting Tainted, Clean;
  error Error "tainted {class} reaches a sink without sanitize()";
  event sanitize = call sanitize;
  event sink = call exec;
  event sink = call send when arg 0 == 0;
  event sink = store;
  on Tainted sanitize -> Clean;
  on Clean sanitize -> Clean;
  on Tainted sink -> Error;
  on Clean sink -> Clean;
}
|}

  let close =
    {|# Double-close / use-after-close for random-access handles.

property close {
  track RandomAccessFile, FileChannel;
  initial Open;
  accepting Closed;
  error Error "{class} closed twice or used after close";
  event close = call close;
  event use = call read;
  event use = call write;
  event use = call seek;
  on Open close -> Closed;
  on Open use -> Open;
  on Closed close -> Error;
  on Closed use -> Error;
}
|}

  let exc_twr =
    {|# Try-with-resources-aware exception checker: like the built-in
# exception walk, but an undeclared throw that a caller demonstrably
# catches (an enclosing try whose handler matches the exception class)
# is not reported.  Kills the paper's residual false-positive class.

property exc_twr {
  kind exception;
  handler_aware;
}
|}

  let all =
    [ ("lock_order.gspec", lock_order);
      ("taint.gspec", taint);
      ("close.gspec", close);
      ("exc_twr.gspec", exc_twr) ]
end
