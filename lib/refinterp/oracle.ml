(* The soundness oracle (ISSUE 9): judge a static run against a concrete
   one.

   Direction (a), no false negatives: every error state or leak a concrete
   execution actually exhibited must appear in the static report — through
   whatever triage tier (escape / summary / alias) the allocation took and
   at any worker/shard count.  The concrete trace is resolved with the same
   [Fsm.call_event]/[store_event]/[return_event] matchers the graph
   builder, the summaries, and the escape re-check share, so a divergence
   is a real pipeline bug, never an event-vocabulary mismatch.

   Direction (b), witness feasibility: every static report must be
   *about* something real — an allocation of a class the property tracks
   at the reported site (or, for exception reports, an explicit [throw] of
   the reported class at the reported line), with a claimed outcome the
   property FSM can actually produce (error state reachable, or a
   reachable non-accepting end-of-life state for leaks).  This is a
   structural check of the report against program + FSM; path feasibility
   beyond it is exactly what the SMT layer already decides.

   Degraded instances are excluded from (a): an [Inconclusive] report is
   the pipeline's explicit admission that the checker did not finish, so
   the harness treats that checker's coverage gap as declared, not as a
   false negative. *)

type violation = {
  v_checker : string;
  v_kind : [ `Error | `Leak | `Exn ];
  v_cls : string;   (* tracked class, or the exception class for [`Exn] *)
  v_line : int;     (* allocation line, or the throw line for [`Exn] *)
  v_state : string; (* FSM state name reached (diagnostics) *)
  v_events : string list;  (* resolved event names (diagnostics) *)
}

let kind_name = function
  | `Error -> "error-state"
  | `Leak -> "leak"
  | `Exn -> "unhandled-exception"

let violation_to_string (v : violation) =
  Printf.sprintf "%s %s %s at line %d (state %s; events: %s)" v.v_checker
    (kind_name v.v_kind) v.v_cls v.v_line v.v_state
    (String.concat "," v.v_events)

(* Resolve one object's raw trace against one property: the recorded
   statements replayed through the FSM's own event matchers. *)
let resolved_events (fsm : Fsm.t) (o : Interp.obj) : string list =
  List.rev o.Interp.o_events
  |> List.filter_map (fun (e : Interp.event) ->
         match e.Interp.ev_kind with
         | Interp.Ecall c -> Fsm.call_event fsm ~meth:e.Interp.ev_meth c
         | Interp.Estore src ->
             Fsm.store_event fsm ~meth:e.Interp.ev_meth ~src
         | Interp.Ereturn v -> Fsm.return_event fsm ~meth:e.Interp.ev_meth v)

(* Concrete typestate violations of one run: an object that stepped into
   the error state (reported whatever the exit), or that a *normally*
   exiting program left in a non-accepting state (leaks are reported at
   normal exits only — an uncaught exception kills the process, which
   reclaims the resource — and a fuel-truncated run proves nothing about
   end of life). *)
let typestate_violations (fsm : Fsm.t) (out : Interp.outcome) :
    violation list =
  List.filter_map
    (fun (o : Interp.obj) ->
      if not (Fsm.is_tracked fsm o.Interp.o_cls) then None
      else
        let events = resolved_events fsm o in
        let final, hit_error =
          List.fold_left
            (fun (st, err) ev ->
              let st' = Fsm.step fsm st ev in
              (st', err || st' = fsm.Fsm.error))
            (fsm.Fsm.initial, fsm.Fsm.initial = fsm.Fsm.error)
            events
        in
        let mk kind state =
          Some
            { v_checker = fsm.Fsm.name;
              v_kind = kind;
              v_cls = o.Interp.o_cls;
              v_line = o.Interp.o_at.Jir.Ast.line;
              v_state = Fsm.state_name fsm state;
              v_events = events }
        in
        if hit_error then mk `Error fsm.Fsm.error
        else if
          out.Interp.exit_ = Interp.Exit_normal
          && not (Fsm.is_accepting fsm final)
        then mk `Leak final
        else None)
    out.Interp.objects

(* Concrete exception violations: the run died from an exception whose
   origin is an explicit [throw] statement.  Exceptions injected at
   library calls ([throw_at = None]) are excluded: the exception walks
   report explicit throws only.  One violation per exception-walk checker
   in play (the plain walk over-approximates the handler-aware one, so a
   concretely-escaping throw must be reported by both). *)
let exception_violations ~(exn_checkers : string list)
    (out : Interp.outcome) : violation list =
  match out.Interp.exit_ with
  | Interp.Exit_uncaught { exn_class; throw_at = Some at } ->
      List.map
        (fun name ->
          { v_checker = name;
            v_kind = `Exn;
            v_cls = exn_class;
            v_line = at.Jir.Ast.line;
            v_state = "<uncaught>";
            v_events = [] })
        exn_checkers
  | _ -> []

let concrete_violations ~(fsms : Fsm.t list) ~(exn_checkers : string list)
    (out : Interp.outcome) : violation list =
  List.concat_map (fun fsm -> typestate_violations fsm out) fsms
  @ exception_violations ~exn_checkers out

(* ---------------- direction (a): coverage ---------------- *)

let report_covers (v : violation) (r : Grapple.Report.t) =
  r.Grapple.Report.alloc_at.Jir.Ast.line = v.v_line
  &&
  match (v.v_kind, r.Grapple.Report.kind) with
  | `Error, Grapple.Report.Error_state _ | `Leak, Grapple.Report.Leak _ ->
      r.Grapple.Report.cls = v.v_cls
  | `Exn, Grapple.Report.Unhandled_exception e -> e = v.v_cls
  | _ -> false

let checker_degraded (reports : Grapple.Report.t list) =
  List.exists
    (fun (r : Grapple.Report.t) ->
      match r.Grapple.Report.kind with
      | Grapple.Report.Inconclusive _ -> true
      | _ -> false)
    reports

(* Concrete violations the static run failed to report — the soundness
   failures.  Violations of a degraded checker are dropped: its coverage
   gap is explicit in the output. *)
let uncovered ~(reports : (string * Grapple.Report.t list) list)
    (violations : violation list) : violation list =
  List.filter
    (fun v ->
      match List.assoc_opt v.v_checker reports with
      | None ->
          (* the checker did not run at all: not a soundness claim *)
          false
      | Some rs ->
          (not (checker_degraded rs))
          && not (List.exists (report_covers v) rs))
    violations

(* ---------------- direction (b): witness validity ---------------- *)

(* All FSM states reachable from the initial state over the declared
   event alphabet. *)
let reachable_states (fsm : Fsm.t) : Fsm.state list =
  let seen = Hashtbl.create 8 in
  let rec go s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.replace seen s ();
      List.iter (fun ev -> go (Fsm.step fsm s ev)) fsm.Fsm.events
    end
  in
  go fsm.Fsm.initial;
  Hashtbl.fold (fun s () acc -> s :: acc) seen []

(* Allocation sites [(class, line)] and explicit throw sites
   [(exn_class, line)] of a program. *)
let program_sites (program : Jir.Ast.program) =
  let allocs = Hashtbl.create 64 and throws = Hashtbl.create 16 in
  let rhs (s : Jir.Ast.stmt) = function
    | Jir.Ast.Rnew (cls, _) ->
        Hashtbl.replace allocs (cls, s.Jir.Ast.at.Jir.Ast.line) ()
    | _ -> ()
  in
  let rec stmt (s : Jir.Ast.stmt) =
    match s.Jir.Ast.kind with
    | Jir.Ast.Decl (_, _, Some r) | Jir.Ast.Assign (_, r) -> rhs s r
    | Jir.Ast.Throw e ->
        Hashtbl.replace throws (e, s.Jir.Ast.at.Jir.Ast.line) ()
    | Jir.Ast.If (_, a, b) ->
        List.iter stmt a;
        List.iter stmt b
    | Jir.Ast.While (_, b) -> List.iter stmt b
    | Jir.Ast.Try (b, cs) ->
        List.iter stmt b;
        List.iter
          (fun (c : Jir.Ast.catch) -> List.iter stmt c.Jir.Ast.handler)
          cs
    | _ -> ()
  in
  List.iter
    (fun (m : Jir.Ast.meth) -> List.iter stmt m.Jir.Ast.body)
    (Jir.Ast.all_methods program);
  (allocs, throws)

(* Structurally invalid reports, with reasons.  [program] is the source
   program (unrolling preserves positions, so its lines are the report
   lines). *)
let invalid_reports ~(program : Jir.Ast.program) ~(fsms : Fsm.t list)
    (reports : (string * Grapple.Report.t list) list) :
    (Grapple.Report.t * string) list =
  let allocs, throws = program_sites program in
  let fsm_of name =
    List.find_opt (fun (f : Fsm.t) -> f.Fsm.name = name) fsms
  in
  List.concat_map
    (fun (checker, rs) ->
      List.filter_map
        (fun (r : Grapple.Report.t) ->
          let line = r.Grapple.Report.alloc_at.Jir.Ast.line in
          let bad reason = Some (r, reason) in
          match r.Grapple.Report.kind with
          | Grapple.Report.Inconclusive _ -> None
          | Grapple.Report.Unhandled_exception e ->
              if Hashtbl.mem throws (e, line) then None
              else
                bad
                  (Printf.sprintf "no `throw new %s` at line %d" e line)
          | Grapple.Report.Error_state _ | Grapple.Report.Leak _ -> (
              match fsm_of checker with
              | None ->
                  bad
                    (Printf.sprintf
                       "typestate report from unknown property %S" checker)
              | Some fsm ->
                  let cls = r.Grapple.Report.cls in
                  if not (Fsm.is_tracked fsm cls) then
                    bad
                      (Printf.sprintf "%s does not track class %s" checker
                         cls)
                  else if not (Hashtbl.mem allocs (cls, line)) then
                    bad
                      (Printf.sprintf "no `new %s` at line %d" cls line)
                  else
                    let reachable = reachable_states fsm in
                    let feasible =
                      match r.Grapple.Report.kind with
                      | Grapple.Report.Error_state _ ->
                          List.mem fsm.Fsm.error reachable
                      | _ ->
                          List.exists
                            (fun s ->
                              s <> fsm.Fsm.error
                              && not (Fsm.is_accepting fsm s))
                            reachable
                    in
                    if feasible then None
                    else
                      bad
                        "the property FSM cannot produce the claimed \
                         outcome from its initial state"))
        rs)
    reports
