(* Concrete reference interpreter for resolved JIR (ISSUE 9).

   DiVM-style oracle for the static pipeline: run the program for real —
   a heap of allocation-site objects, a call stack, bounded loop/recursion
   fuel, seeded input choices — and record the *actual* event trace each
   tracked allocation experienced.  The soundness harness (Oracle, Fuzz)
   replays those traces through the property FSMs and demands that every
   concrete error-state or leak is also statically reported.

   Alignment with the static semantics is the whole point, so the
   interpreter borrows the analyses' own definitions wherever one exists:

   - a call is a *library* call exactly when its resolved [target_class]
     defines no such method in the program (the resolver fills
     [target_class] from the receiver's declared type — static dispatch,
     same as the call graph);
   - library instance calls record an event on the receiver object; the
     event fires on the normal outcome only, mirroring the CFET, where a
     may-throw call statement lives on the non-exceptional continuation;
   - whether a library call may throw comes from the same
     [library_throwers] table the pipeline merges into the CFET config,
     and the throw/no-throw outcome is a seeded input choice;
   - catch dispatch uses [Symexec.Cfet.catch_matches] verbatim (exact
     class, or the [Exception] catch-all);
   - store and return events are syntactic on the statement, like the
     graph builder's event matcher: a store fires for the stored
     reference even when the receiver is null, and calls through a null
     receiver are inert (no event, no crash) because the static analyses
     model no null-pointer traps;
   - methods have no [this]: a call to a *defined* (class, method) binds
     arguments to parameters and ignores the receiver, exactly as the
     clone tree does.

   Events are recorded raw ([call]/[store src]/[return var] plus the
   enclosing method) and resolved against a concrete FSM only later, in
   the oracle, with [Fsm.call_event]/[store_event]/[return_event] — the
   single point of truth every static layer already shares. *)

type value = Vint of int | Vnull | Vobj of obj

and obj = {
  o_id : int;                      (* allocation order, 0-based *)
  o_cls : string;
  o_at : Jir.Ast.pos;              (* allocation site *)
  o_fields : (string, value) Hashtbl.t;
  mutable o_events : event list;   (* reverse chronological *)
}

and event = { ev_meth : Jir.Ast.meth; ev_kind : ekind }

and ekind =
  | Ecall of Jir.Ast.call          (* library instance call on the object *)
  | Estore of Jir.Ast.var          (* the object was stored to a field *)
  | Ereturn of Jir.Ast.var         (* the object was returned *)

type exit_kind =
  | Exit_normal
  | Exit_uncaught of { exn_class : string; throw_at : Jir.Ast.pos option }
      (* [throw_at] is the position of the originating explicit [Throw]
         statement; [None] for exceptions injected at library calls *)
  | Exit_fuel  (* loop/recursion fuel exhausted: a truncated run *)

type outcome = {
  exit_ : exit_kind;
  objects : obj list;  (* chronological allocation order *)
  steps : int;         (* statements executed *)
}

type config = {
  seed : int;          (* drives entry inputs and library-throw choices *)
  fuel : int;          (* statement budget for the whole run *)
  max_depth : int;     (* call-stack depth bound *)
  throw_pct : int;     (* a may-throw library call throws with this % *)
  library_throwers : (string * string * string) list;
      (* (class, method, exception), as in [Pipeline.config] *)
}

let default_config ~seed =
  { seed;
    fuel = 200_000;
    max_depth = 200;
    throw_pct = 30;
    library_throwers = [] }

exception Out_of_fuel

type state = {
  cfg : config;
  idx : Jir.Ast.index;
  throwers : (string * string, string) Hashtbl.t;
  rng : Workload.Rng.t;
  mutable fuel : int;
  mutable steps : int;
  mutable allocs : obj list;  (* reverse chronological *)
  mutable next_id : int;
}

(* Entry inputs: a seeded mixture that lands on both sides of every
   branch threshold the workload patterns use (0, 2, 3, 5, 10, 100). *)
let input_int (st : state) =
  match Workload.Rng.int st.rng 6 with
  | 0 -> Workload.Rng.int st.rng 4 - 2
  | 1 -> Workload.Rng.int st.rng 8
  | 2 -> Workload.Rng.int st.rng 13
  | 3 -> 98 + Workload.Rng.int st.rng 5
  | 4 -> Workload.Rng.int st.rng 200 - 50
  | _ -> Workload.Rng.int st.rng 12

let consume (st : state) =
  if st.fuel <= 0 then raise Out_of_fuel;
  st.fuel <- st.fuel - 1;
  st.steps <- st.steps + 1

let alloc (st : state) cls at =
  let o =
    { o_id = st.next_id; o_cls = cls; o_at = at;
      o_fields = Hashtbl.create 4; o_events = [] }
  in
  st.next_id <- st.next_id + 1;
  st.allocs <- o :: st.allocs;
  o

let default_value = function
  | Jir.Ast.Tint | Jir.Ast.Tbool -> Vint 0
  | Jir.Ast.Tobj _ | Jir.Ast.Tvoid -> Vnull

(* ---------------- frames and flow ---------------- *)

type env = {
  st : state;
  meth : Jir.Ast.meth;
  mutable vars : (Jir.Ast.var * value ref) list;
  depth : int;
}

type flow =
  | Fnext
  | Freturn of value
  | Fthrow of string * Jir.Ast.pos option

let lookup env v = List.assoc_opt v env.vars

let get env v = match lookup env v with Some r -> !r | None -> Vnull

let set env v value =
  match lookup env v with
  | Some r -> r := value
  | None -> env.vars <- (v, ref value) :: env.vars

let define env v value = env.vars <- (v, ref value) :: env.vars

let record env v kind =
  match v with
  | Vobj o -> o.o_events <- { ev_meth = env.meth; ev_kind = kind } :: o.o_events
  | Vint _ | Vnull -> ()

(* ---------------- expressions ---------------- *)

let rec eval_expr env : Jir.Ast.expr -> int = function
  | Jir.Ast.Const n -> n
  | Jir.Ast.Var v -> (
      match get env v with Vint n -> n | Vnull | Vobj _ -> 0)
  | Jir.Ast.Binop (op, a, b) -> (
      let a = eval_expr env a and b = eval_expr env b in
      match op with
      | Jir.Ast.Add -> a + b
      | Jir.Ast.Sub -> a - b
      | Jir.Ast.Mul -> a * b)

let rec eval_cond env : Jir.Ast.cond -> bool = function
  | Jir.Ast.Bconst b -> b
  | Jir.Ast.Cmp (op, a, b) -> (
      let a = eval_expr env a and b = eval_expr env b in
      match op with
      | Jir.Ast.Le -> a <= b
      | Jir.Ast.Lt -> a < b
      | Jir.Ast.Ge -> a >= b
      | Jir.Ast.Gt -> a > b
      | Jir.Ast.Eq -> a = b
      | Jir.Ast.Ne -> a <> b)
  | Jir.Ast.And (a, b) -> eval_cond env a && eval_cond env b
  | Jir.Ast.Or (a, b) -> eval_cond env a || eval_cond env b
  | Jir.Ast.Not c -> not (eval_cond env c)

(* Arguments pass values, not just integers: a variable argument hands the
   callee whatever it holds (object references included, as the clone
   tree's parameter binding does). *)
let eval_arg env : Jir.Ast.expr -> value = function
  | Jir.Ast.Var v -> get env v
  | e -> Vint (eval_expr env e)

(* ---------------- statements and calls ---------------- *)

let rec exec_call env (c : Jir.Ast.call) :
    (value, string * Jir.Ast.pos option) result =
  match
    Jir.Ast.find_method_idx env.st.idx ~cls:c.Jir.Ast.target_class
      ~meth:c.Jir.Ast.mname
  with
  | Some callee ->
      if env.depth >= env.st.cfg.max_depth then raise Out_of_fuel;
      let args = List.map (eval_arg env) c.Jir.Ast.args in
      exec_method env.st callee args ~depth:(env.depth + 1)
  | None -> (
      (* library call: the seeded throw decision comes first, and on the
         throwing outcome no event fires (the CFET places the call
         statement on the normal continuation only) *)
      match
        Hashtbl.find_opt env.st.throwers
          (c.Jir.Ast.target_class, c.Jir.Ast.mname)
      with
      | Some exn_class
        when Workload.Rng.chance env.st.rng env.st.cfg.throw_pct ->
          Error (exn_class, None)
      | _ ->
          (match c.Jir.Ast.recv with
          | Some r -> record env (get env r) (Ecall c)
          | None -> ());
          Ok Vnull)

and eval_rhs env (s : Jir.Ast.stmt) :
    Jir.Ast.rhs -> (value, string * Jir.Ast.pos option) result = function
  | Jir.Ast.Rnew (cls, args) -> (
      let o = alloc env.st cls s.Jir.Ast.at in
      match Jir.Ast.find_method_idx env.st.idx ~cls ~meth:"<init>" with
      | Some init -> (
          let vs = List.map (eval_arg env) args in
          match exec_method env.st init vs ~depth:(env.depth + 1) with
          | Ok _ -> Ok (Vobj o)
          | Error _ as e -> e)
      | None -> Ok (Vobj o))
  | Jir.Ast.Rload (y, f) -> (
      match get env y with
      | Vobj o ->
          Ok (Option.value ~default:Vnull (Hashtbl.find_opt o.o_fields f))
      | Vint _ | Vnull -> Ok Vnull)
  | Jir.Ast.Rcall c -> exec_call env c
  | Jir.Ast.Rexpr e -> Ok (Vint (eval_expr env e))
  | Jir.Ast.Rnull -> Ok Vnull

and exec_stmt env (s : Jir.Ast.stmt) : flow =
  consume env.st;
  match s.Jir.Ast.kind with
  | Jir.Ast.Decl (ty, x, None) ->
      define env x (default_value ty);
      Fnext
  | Jir.Ast.Decl (_, x, Some r) -> (
      match eval_rhs env s r with
      | Ok v ->
          define env x v;
          Fnext
      | Error (e, at) -> Fthrow (e, at))
  | Jir.Ast.Assign (x, r) -> (
      match eval_rhs env s r with
      | Ok v ->
          set env x v;
          Fnext
      | Error (e, at) -> Fthrow (e, at))
  | Jir.Ast.Store (x, f, y) ->
      let vy = get env y in
      (match get env x with
      | Vobj o -> Hashtbl.replace o.o_fields f vy
      | Vint _ | Vnull -> ());
      (* syntactic on the statement, like the graph builder's matcher:
         the store event fires for the stored reference regardless of
         what the receiver held *)
      record env vy (Estore y);
      Fnext
  | Jir.Ast.If (c, t, f) -> exec_block env (if eval_cond env c then t else f)
  | Jir.Ast.While (c, b) ->
      let rec loop () =
        if eval_cond env c then begin
          consume env.st;
          match exec_block env b with Fnext -> loop () | f -> f
        end
        else Fnext
      in
      loop ()
  | Jir.Ast.Try (b, catches) -> (
      match exec_block env b with
      | Fthrow (e, _) as f -> (
          match
            List.find_opt
              (fun c -> Symexec.Cfet.catch_matches ~thrown:e c)
              catches
          with
          | Some c ->
              (* the exception variable is bound but inert (null): the
                 static analyses track only its class *)
              let saved = env.vars in
              define env c.Jir.Ast.exn_var Vnull;
              let r = exec_block env c.Jir.Ast.handler in
              env.vars <- saved;
              r
          | None -> f)
      | f -> f)
  | Jir.Ast.Throw e -> Fthrow (e, Some s.Jir.Ast.at)
  | Jir.Ast.Return None -> Freturn Vnull
  | Jir.Ast.Return (Some (Jir.Ast.Var v)) ->
      let value = get env v in
      record env value (Ereturn v);
      Freturn value
  | Jir.Ast.Return (Some e) -> Freturn (Vint (eval_expr env e))
  | Jir.Ast.Expr c -> (
      match exec_call env c with
      | Ok _ -> Fnext
      | Error (e, at) -> Fthrow (e, at))

and exec_block env (b : Jir.Ast.block) : flow =
  let saved = env.vars in
  let rec go = function
    | [] -> Fnext
    | s :: rest -> ( match exec_stmt env s with Fnext -> go rest | f -> f)
  in
  let f = go b in
  env.vars <- saved;
  f

and exec_method (st : state) (m : Jir.Ast.meth) (args : value list) ~depth :
    (value, string * Jir.Ast.pos option) result =
  let env = { st; meth = m; vars = []; depth } in
  let rec bind ps vs =
    match ps with
    | [] -> ()
    | (ty, x) :: ps' ->
        let v, vs' =
          match vs with v :: tl -> (v, tl) | [] -> (default_value ty, [])
        in
        define env x v;
        bind ps' vs'
  in
  bind m.Jir.Ast.params args;
  match exec_block env m.Jir.Ast.body with
  | Fnext -> Ok Vnull
  | Freturn v -> Ok v
  | Fthrow (e, at) -> Error (e, at)

(* ---------------- whole-program runs ---------------- *)

(* Run every analysis entry in declaration order against one seeded input
   vector (integer parameters drawn from [input_int], object parameters
   null).  The heap is shared across entries, as the clone tree roots all
   entries in one program. *)
let run ~(config : config) (program : Jir.Ast.program) : outcome =
  let throwers = Hashtbl.create 16 in
  List.iter
    (fun (cls, m, e) -> Hashtbl.replace throwers (cls, m) e)
    config.library_throwers;
  let st =
    { cfg = config;
      idx = Jir.Ast.index program;
      throwers;
      rng = Workload.Rng.create config.seed;
      fuel = config.fuel;
      steps = 0;
      allocs = [];
      next_id = 0 }
  in
  let exit_ =
    try
      let rec go = function
        | [] -> Exit_normal
        | (cls, mname) :: rest -> (
            match Jir.Ast.find_method_idx st.idx ~cls ~meth:mname with
            | None -> go rest
            | Some m -> (
                let args =
                  List.map
                    (fun (ty, _) ->
                      match ty with
                      | Jir.Ast.Tint | Jir.Ast.Tbool -> Vint (input_int st)
                      | Jir.Ast.Tobj _ | Jir.Ast.Tvoid -> Vnull)
                    m.Jir.Ast.params
                in
                match exec_method st m args ~depth:0 with
                | Ok _ -> go rest
                | Error (e, at) ->
                    Exit_uncaught { exn_class = e; throw_at = at }))
      in
      go program.Jir.Ast.entries
    with Out_of_fuel -> Exit_fuel
  in
  { exit_; objects = List.rev st.allocs; steps = st.steps }
