(* The adversarial soundness fuzzer (ISSUE 9 tentpole).

   Each iteration generates a small random subject through the same
   [Workload.Generator] machinery as the benchmark profiles, runs the
   full static pipeline (all four paper checkers plus the shipped DSL
   checkers, through whatever worker/shard configuration the caller
   asks for), concretely executes the program under several input
   seeds, and holds the two sides against each other with [Oracle]:

     (a) every concrete error-state trace or leak must be statically
         reported — a miss is a false negative smuggled through the
         escape/summary/alias triage tiers;
     (b) every static report must be structurally valid — a real
         allocation (or throw) site whose claimed outcome the property
         FSM can produce.

   On a failure, the program is shrunk ([Shrink.minimize]) and the
   minimized counterexample written to the corpus directory so it
   becomes a permanent regression test. *)

module Pipeline = Grapple.Pipeline
module Report = Grapple.Report
module Generator = Workload.Generator
module Rng = Workload.Rng

(* The checker set the harness exercises: the paper's four (minus
   [null], whose tracked "allocation" is the null constant and which
   has no concrete-trace analogue) plus every shipped DSL checker, so
   all three triage tiers and all checker families are covered. *)
let checker_names =
  [ "io"; "lock"; "socket"; "exception"; "lock_order"; "taint"; "close";
    "exc_twr" ]

let exn_checker_names = [ "exception"; "exc_twr" ]

let checkers () = List.map (fun n -> Checkers.resolve n) checker_names

let fsms_of cs =
  List.filter_map
    (fun (c : Checkers.t) ->
      match c.Checkers.kind with
      | `Typestate f -> Some f
      | `Exception_walk _ -> None)
    cs

(* Bug families the generator can plant, one per checker family. *)
let bug_families =
  [ "io"; "lock"; "socket"; "exception"; "lock_order"; "taint"; "close";
    "exc_twr" ]

(* A small random profile.  Dimensions are tiny (1-2 layers / classes /
   methods) so a single iteration stays sub-second; the bug quota is
   capped by the number of method slots, which the generator enforces. *)
let random_profile ~seed : Generator.profile =
  let rng = Rng.create (0x50b5eed + (2 * seed)) in
  let layers = 1 + Rng.int rng 2 in
  let classes_per_layer = 1 + Rng.int rng 2 in
  let methods_per_class = 1 + Rng.int rng 2 in
  let slots = layers * classes_per_layer * methods_per_class in
  let fams = Rng.shuffle rng bug_families in
  let n_bugged = 1 + Rng.int rng (min slots (List.length fams)) in
  let bugs =
    List.filteri (fun i _ -> i < n_bugged) fams
    |> List.map (fun f -> (f, 1))
  in
  { Generator.name = Printf.sprintf "fuzz%d" seed;
    description = "soundness-fuzz subject";
    seed = (seed * 7919) + 13;
    layers;
    classes_per_layer;
    methods_per_class;
    patterns_per_method = Rng.int rng 2;
    calls_per_method = 1 + Rng.int rng 2;
    bugs;
    lint_bugs = [];
    loops_per_subject = Rng.int rng 2 }

(* ---------------- one program through the harness ---------------- *)

type harness_result = {
  h_reports : (string * Report.t list) list;
  h_violations : Oracle.violation list;  (* deduped concrete violations *)
  h_uncovered : Oracle.violation list;   (* direction (a) failures *)
  h_invalid : (Report.t * string) list;  (* direction (b) failures *)
  h_interp_runs : int;
}

let fresh_workdir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "grapple-fuzz-%d-%d" (Unix.getpid ()) !counter)
    in
    Engine.ensure_dir dir;
    dir

let interp_seeds ~runs ~seed =
  List.init (max 1 runs) (fun i -> (seed * 1_000) + (i * 77) + 1)

(* Run the static pipeline and the concrete interpreter over one
   resolved program and confront the two.  This is the harness core,
   shared by the fuzz loop, the corpus replay, and the weakened-tier
   tests. *)
let check_program ?(workers = 1) ?(shard_procs = 0) ?weaken_tier
    ?(runs = 6) ?(seed = 1) ?workdir (program : Jir.Ast.program) :
    harness_result =
  let workdir = match workdir with Some d -> d | None -> fresh_workdir () in
  let cs = checkers () in
  let fsms = fsms_of cs in
  let config =
    { (Pipeline.default_config ~workdir) with
      Pipeline.library_throwers = Checkers.Specs.library_throwers;
      prefilter_properties = fsms;
      workers;
      shard_procs;
      weaken_tier }
  in
  let prepared = Pipeline.prepare ~config ~workdir program in
  let reports, _props, _schedule = Checkers.run_all_scheduled prepared cs in
  let seeds = interp_seeds ~runs ~seed in
  let violations =
    List.concat_map
      (fun s ->
        let iconfig =
          { (Interp.default_config ~seed:s) with
            Interp.library_throwers = Checkers.Specs.library_throwers }
        in
        let out = Interp.run ~config:iconfig program in
        Oracle.concrete_violations ~fsms ~exn_checkers:exn_checker_names out)
      seeds
  in
  (* the same site often misbehaves under several input seeds: one
     violation per (checker, kind, class, line) is enough *)
  let seen = Hashtbl.create 16 in
  let violations =
    List.filter
      (fun (v : Oracle.violation) ->
        let k = (v.Oracle.v_checker, v.Oracle.v_kind, v.Oracle.v_cls,
                 v.Oracle.v_line)
        in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.replace seen k ();
          true
        end)
      violations
  in
  { h_reports = reports;
    h_violations = violations;
    h_uncovered = Oracle.uncovered ~reports violations;
    h_invalid = Oracle.invalid_reports ~program ~fsms reports;
    h_interp_runs = List.length seeds }

(* ---------------- the fuzz loop ---------------- *)

type config = {
  iters : int;
  seed : int;
  workers : int;
  shard_procs : int;
  weaken_tier : string option;  (* test-only: see Pipeline.weaken_tier *)
  runs_per_program : int;       (* interpreter seeds per subject *)
  corpus_dir : string option;   (* minimized counterexamples land here *)
  shrink_checks : int;          (* harness re-runs the shrinker may spend *)
  log : string -> unit;
}

let default_config =
  { iters = 50;
    seed = 1;
    workers = 1;
    shard_procs = 0;
    weaken_tier = None;
    runs_per_program = 6;
    corpus_dir = None;
    shrink_checks = 120;
    log = ignore }

type failure = {
  f_iter : int;
  f_seed : int;            (* generator seed of the failing subject *)
  f_checker : string;
  f_summary : string;
  f_program : Jir.Ast.program;  (* minimized counterexample *)
  f_shrink_checks : int;
  f_corpus_file : string option;
}

type result = {
  iterations : int;
  interp_runs : int;
  violations_seen : int;  (* concrete violations confronted with reports *)
  reports_seen : int;     (* static reports confronted with the program *)
  failures : failure list;
}

let slug s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> c
      | _ -> '_')
    s

let write_corpus ~dir ~name ~summary program =
  Engine.ensure_dir dir;
  let path = Filename.concat dir (name ^ ".jir") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc ("// minimized soundness counterexample: " ^ summary);
      output_string oc "\n";
      output_string oc (Jir.Pp.program_to_string program));
  path

(* Describe the first failure of a harness result, if any, together
   with a predicate that recognizes the same failure class on a shrunk
   candidate. *)
let first_failure (h : harness_result) :
    (string * string * (harness_result -> bool)) option =
  match h.h_uncovered with
  | v :: _ ->
      let c = v.Oracle.v_checker in
      Some
        ( c,
          "false negative: " ^ Oracle.violation_to_string v,
          fun h' ->
            List.exists
              (fun (v' : Oracle.violation) -> v'.Oracle.v_checker = c)
              h'.h_uncovered )
  | [] -> (
      match h.h_invalid with
      | (r, reason) :: _ ->
          let c = r.Report.checker in
          Some
            ( c,
              Printf.sprintf "invalid report from %s: %s" c reason,
              fun h' ->
                List.exists
                  (fun ((r' : Report.t), _) -> r'.Report.checker = c)
                  h'.h_invalid )
      | [] -> None)

let run (cfg : config) : result =
  let interp_runs = ref 0 in
  let violations_seen = ref 0 in
  let reports_seen = ref 0 in
  let failures = ref [] in
  for i = 0 to cfg.iters - 1 do
    let iter_seed = (cfg.seed * 10_000) + i in
    let profile = random_profile ~seed:iter_seed in
    let subject = Generator.generate profile in
    let check ?runs p =
      check_program ~workers:cfg.workers ~shard_procs:cfg.shard_procs
        ?weaken_tier:cfg.weaken_tier
        ~runs:(Option.value ~default:cfg.runs_per_program runs)
        ~seed:iter_seed p
    in
    let h = check subject.Generator.program in
    interp_runs := !interp_runs + h.h_interp_runs;
    violations_seen := !violations_seen + List.length h.h_violations;
    reports_seen :=
      !reports_seen
      + List.fold_left (fun n (_, rs) -> n + List.length rs) 0 h.h_reports;
    match first_failure h with
    | None -> ()
    | Some (checker, summary, fails) ->
        cfg.log
          (Printf.sprintf "iter %d (seed %d): %s — shrinking" i iter_seed
             summary);
        let minimized, checks =
          Shrink.minimize ~max_checks:cfg.shrink_checks
            ~still_fails:(fun p -> fails (check ~runs:3 p))
            subject.Generator.program
        in
        let corpus_file =
          Option.map
            (fun dir ->
              write_corpus ~dir
                ~name:(Printf.sprintf "fuzz_%s_%d" (slug checker) iter_seed)
                ~summary minimized)
            cfg.corpus_dir
        in
        failures :=
          { f_iter = i;
            f_seed = iter_seed;
            f_checker = checker;
            f_summary = summary;
            f_program = minimized;
            f_shrink_checks = checks;
            f_corpus_file = corpus_file }
          :: !failures
  done;
  { iterations = cfg.iters;
    interp_runs = !interp_runs;
    violations_seen = !violations_seen;
    reports_seen = !reports_seen;
    failures = List.rev !failures }
