(* Counterexample shrinking (ISSUE 9 satellite): reduce a JIR program
   that makes the soundness harness fail to a (locally) minimal one that
   still fails, so the corpus stays readable and replays fast.

   Reductions, greedily to a fixpoint under a re-check budget:
     - drop a whole method, rewriting its call sites away (the big cuts);
     - drop a single statement at any nesting depth.

   Every candidate is revalidated by pretty-printing and re-resolving:
   a cut that orphans a variable use or an entry point simply fails to
   parse and is skipped without spending budget.  The re-resolve also
   renumbers lines, so the caller's failure predicate must re-derive
   its expectations from the candidate program, never from the
   original. *)

open Jir.Ast

(* Re-render and re-resolve a mutated AST.  Sids and positions of the
   mutated tree are stale; the pp/parse round trip rebuilds both. *)
let revalidate (p : program) : program option =
  match Jir.Resolve.parse_exn ~file:"shrunk.jir" (Jir.Pp.program_to_string p) with
  | p' -> Some p'
  | exception (Jir.Resolve.Resolve_error _ | Jir.Parser.Parse_error _) -> None

(* ---- reduction 1: drop a method and its call sites ---- *)

let droppable_methods (p : program) : (string * string) list =
  List.concat_map
    (fun c ->
      List.filter_map
        (fun m ->
          if List.mem (c.cname, m.mname) p.entries then None
          else Some (c.cname, m.mname))
        c.methods)
    p.classes

let drop_method (p : program) (dcls, dname) : program =
  let target (c : call) = c.target_class = dcls && c.mname = dname in
  let rec block b = List.filter_map stmt b
  and stmt s =
    match s.kind with
    | Expr c when target c -> None
    | Assign (_, Rcall c) when target c -> None
    | Decl (ty, x, Some (Rcall c)) when target c ->
        Some { s with kind = Decl (ty, x, None) }
    | If (cond, a, b) -> Some { s with kind = If (cond, block a, block b) }
    | While (cond, b) -> Some { s with kind = While (cond, block b) }
    | Try (b, cs) ->
        Some
          { s with
            kind =
              Try
                ( block b,
                  List.map (fun c -> { c with handler = block c.handler }) cs
                ) }
    | _ -> Some s
  in
  let classes =
    List.map
      (fun c ->
        { c with
          methods =
            c.methods
            |> List.filter (fun m ->
                   not (c.cname = dcls && m.mname = dname))
            |> List.map (fun m -> { m with body = block m.body }) })
      p.classes
  in
  { p with classes }

(* ---- reduction 2: drop the [n]-th statement in a pre-order walk ---- *)

let drop_nth_stmt (p : program) (n : int) : program option =
  let counter = ref (-1) in
  let dropped = ref false in
  let rec block b = List.filter_map stmt b
  and stmt s =
    incr counter;
    if !counter = n then begin
      dropped := true;
      None
    end
    else
      match s.kind with
      | If (cond, a, b) -> Some { s with kind = If (cond, block a, block b) }
      | While (cond, b) -> Some { s with kind = While (cond, block b) }
      | Try (b, cs) ->
          Some
            { s with
              kind =
                Try
                  ( block b,
                    List.map
                      (fun c -> { c with handler = block c.handler })
                      cs ) }
      | _ -> Some s
  in
  let classes =
    List.map
      (fun c ->
        { c with methods = List.map (fun m -> { m with body = block m.body }) c.methods })
      p.classes
  in
  if !dropped then Some { p with classes } else None

(* Greedy fixpoint minimization.  [still_fails] re-runs the whole
   harness on a candidate; [max_checks] bounds how many such runs the
   shrinker may spend.  Returns the smallest failing program found and
   the number of predicate evaluations used. *)
let minimize ?(max_checks = 200) ~(still_fails : program -> bool)
    (program : program) : program * int =
  let checks = ref 0 in
  let attempt cand =
    match revalidate cand with
    | None -> None
    | Some cand' ->
        if !checks >= max_checks then None
        else begin
          incr checks;
          if still_fails cand' then Some cand' else None
        end
  in
  let cur = ref program in
  let progress = ref true in
  while !progress && !checks < max_checks do
    progress := false;
    (* whole methods first: each hit removes many statements at once *)
    let rec methods_pass () =
      let hit =
        List.find_map
          (fun m -> attempt (drop_method !cur m))
          (droppable_methods !cur)
      in
      match hit with
      | Some p ->
          cur := p;
          progress := true;
          if !checks < max_checks then methods_pass ()
      | None -> ()
    in
    methods_pass ();
    (* then individual statements; on a hit, retry the same index (the
       next statement slid into it) *)
    let rec stmts_pass i =
      if !checks < max_checks then
        match drop_nth_stmt !cur i with
        | None -> ()
        | Some cand -> (
            match attempt cand with
            | Some p ->
                cur := p;
                progress := true;
                stmts_pass i
            | None -> stmts_pass (i + 1))
    in
    stmts_pass 0
  done;
  (!cur, !checks)
