(* Definite assignment (Java-style "might not have been initialized"): a
   forward must-analysis whose state is the set of variables assigned on
   *every* path from entry.  [All] is the must-lattice top and doubles as
   the solver's [bottom] (identity of intersection), so unreachable
   predecessors never weaken the state. *)

module VS = Set.Make (String)

module Domain = struct
  type t = All | Only of VS.t

  let bottom = All
  let init (g : Cfg.t) = Only (VS.of_list (List.map snd g.Cfg.meth.Jir.Ast.params))

  let equal a b =
    match (a, b) with
    | All, All -> true
    | Only x, Only y -> VS.equal x y
    | _ -> false

  let join a b =
    match (a, b) with
    | All, x | x, All -> x
    | Only x, Only y -> Only (VS.inter x y)

  let exc _ _ state = state

  let transfer (g : Cfg.t) node state =
    match Cfg.defs g.Cfg.kinds.(node) with
    | [] -> state
    | ds -> (
        match state with
        | All -> All
        | Only s -> Only (List.fold_left (fun acc v -> VS.add v acc) s ds))
end

module Solver = Dataflow.Forward (Domain)

type result = Domain.t Dataflow.result

let analyze (g : Cfg.t) : result = Solver.solve g

(* Uses of a method-declared variable at a reachable node where it is not
   definitely assigned: (variable, node) pairs, deduplicated. *)
let violations (g : Cfg.t) : (Jir.Ast.var * int) list =
  let r = analyze g in
  let declared = VS.of_list (Cfg.declared_vars g) in
  let reach = Cfg.reachable g in
  let out = ref [] in
  for node = 0 to Cfg.n_nodes g - 1 do
    if reach.(node) then
      match r.Dataflow.input.(node) with
      | Domain.All -> ()
      | Domain.Only assigned ->
          List.iter
            (fun v ->
              if VS.mem v declared && not (VS.mem v assigned) then
                out := (v, node) :: !out)
            (Cfg.uses g.Cfg.kinds.(node))
  done;
  List.sort_uniq compare !out
