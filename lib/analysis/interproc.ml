(* Generic summary-based interprocedural solver (paper §2.1: analyses are
   driven bottom-up over the SCC condensation of the call graph).

   A client supplies a per-method summary lattice: a bottom element, an
   equality test, and an [analyze] function that computes one method's
   summary given (current) summaries for its callees.  The solver visits
   SCC components in reverse-topological order (callees before callers) and
   iterates each component to a fixpoint, so summaries of (mutually)
   recursive methods converge from bottom.  Because every client lattice is
   finite-height and [analyze] monotone, the result is the least fixpoint —
   the most precise sound summary assignment.

   The context policy is configurable.  [Ctx_insensitive] merges all call
   sites of a method into one summary, exactly as the paper collapses SCCs
   and treats them context-insensitively.  [Ctx_1cfa] is a declared hook: a
   1-CFA instantiation would key the summary table by (method, call site)
   and re-run [analyze] per key; until a client needs it, it behaves like
   [Ctx_insensitive]. *)

type policy = Ctx_insensitive | Ctx_1cfa

type 'summary client = {
  cl_name : string;
  cl_bottom : Jir.Ast.meth -> 'summary;
  cl_equal : 'summary -> 'summary -> bool;
  cl_analyze :
    lookup:(string -> 'summary option) ->
    Jir.Ast.program ->
    Jir.Ast.meth ->
    'summary;
}

type 'summary result = {
  table : (string, 'summary) Hashtbl.t;  (* method id -> summary *)
  order : string list;                   (* reverse-topological method order *)
  n_scc_iterations : int;                (* total component fixpoint rounds *)
}

let lookup (r : 'a result) id = Hashtbl.find_opt r.table id

let solve ?(policy = Ctx_insensitive) (client : 'a client)
    (program : Jir.Ast.program) : 'a result =
  ignore policy;  (* Ctx_1cfa hook: same table, per-call-site keys *)
  let cg = Jir.Callgraph.build program in
  let sccs = Jir.Callgraph.sccs_reverse_topological cg in
  let methods = Hashtbl.create 64 in
  List.iter
    (fun m -> Hashtbl.replace methods (Jir.Ast.meth_id m) m)
    (Jir.Ast.all_methods program);
  let meth id = Hashtbl.find methods id in
  let table = Hashtbl.create 64 in
  let lookup id = Hashtbl.find_opt table id in
  let rounds = ref 0 in
  List.iter
    (fun component ->
      List.iter
        (fun id -> Hashtbl.replace table id (client.cl_bottom (meth id)))
        component;
      (* one pass suffices for non-recursive singleton components, because
         all callees outside the component are already at fixpoint *)
      let rec iterate () =
        incr rounds;
        let changed =
          List.fold_left
            (fun changed id ->
              let s' = client.cl_analyze ~lookup program (meth id) in
              if client.cl_equal (Hashtbl.find table id) s' then changed
              else begin
                Hashtbl.replace table id s';
                true
              end)
            false component
        in
        if changed then iterate ()
      in
      iterate ())
    sccs;
  { table; order = List.concat sccs; n_scc_iterations = !rounds }

(* ------------------------------------------------------------------ *)
(* Interprocedural nullness: null values flowing through returns and   *)
(* parameters into a dereference.  The per-method summary records the  *)
(* join of the values returned at every normal return site (so [Null]  *)
(* means "returns null on every path", matching the intraprocedural    *)
(* lint's definite-null-only discipline) and, per parameter, whether a *)
(* null argument would definitely be dereferenced inside the callee    *)
(* (transitively, through further calls).                              *)
(* ------------------------------------------------------------------ *)

type null_summary = {
  ns_ret : Nullness.value option;  (* None = bottom: no return site seen *)
  ns_deref_param : bool array;     (* param i dereferenced when passed null *)
}

let join_ret a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (Nullness.join_value a b)

(* Context threaded into the summary-aware nullness domain through a cell:
   the Dataflow functor takes a closed module, so per-run parameters (the
   summary table and the entry-value probe) travel alongside it. *)
type null_ctx = {
  nc_lookup : string -> null_summary option;
  nc_entry : (string * Nullness.value) list;  (* parameter seed values *)
}

let null_ctx : null_ctx option ref = ref None

let call_ret_value nc (c : Jir.Ast.call) =
  let id =
    Jir.Ast.qualified_name ~cls:c.Jir.Ast.target_class ~meth:c.Jir.Ast.mname
  in
  match nc.nc_lookup id with
  | Some { ns_ret = Some v; _ } -> v
  | Some { ns_ret = None; _ } ->
      (* bottom: no normal return analyzed yet (recursion) — optimistic,
         resolved by the component fixpoint *)
      Nullness.Nonnull
  | None -> Nullness.Top  (* library call *)

module NullDomain = struct
  type t = Nullness.Domain.t

  let bottom = Nullness.Domain.Unreached

  let init (_ : Cfg.t) =
    let nc = Option.get !null_ctx in
    Nullness.Domain.Env
      (List.fold_left
         (fun env (v, value) -> Nullness.VM.add v value env)
         Nullness.VM.empty nc.nc_entry)

  let equal = Nullness.Domain.equal
  let join = Nullness.Domain.join
  let exc _ _ state = state

  let value_of_rhs env (r : Jir.Ast.rhs) =
    match r with
    | Jir.Ast.Rcall c -> call_ret_value (Option.get !null_ctx) c
    | _ -> Nullness.Domain.value_of_rhs env r

  let transfer (g : Cfg.t) node state =
    match state with
    | Nullness.Domain.Unreached -> Nullness.Domain.Unreached
    | Nullness.Domain.Env env -> (
        match g.Cfg.kinds.(node) with
        | Cfg.Stmt { kind = Jir.Ast.Decl (_, v, Some r); _ }
        | Cfg.Stmt { kind = Jir.Ast.Assign (v, r); _ } -> (
            match value_of_rhs env r with
            | Nullness.Top -> Nullness.Domain.Env (Nullness.VM.remove v env)
            | value -> Nullness.Domain.Env (Nullness.VM.add v value env))
        | Cfg.Stmt { kind = Jir.Ast.Decl (_, v, None); _ } ->
            Nullness.Domain.Env (Nullness.VM.remove v env)
        | Cfg.Bind (_, _, v) ->
            Nullness.Domain.Env (Nullness.VM.add v Nullness.Nonnull env)
        | _ -> Nullness.Domain.Env env)
end

module NullSolver = Dataflow.Forward (NullDomain)

let solve_null_method ~lookup ~entry (g : Cfg.t) =
  null_ctx := Some { nc_lookup = lookup; nc_entry = entry };
  let r = NullSolver.solve g in
  null_ctx := None;
  r

(* Dereferences of definitely-null variables, including null arguments
   passed to a parameter the callee definitely dereferences. *)
let null_hits ~lookup (g : Cfg.t) (res : NullDomain.t Dataflow.result) :
    (Jir.Ast.var * int) list =
  let out = ref [] in
  for node = 0 to Cfg.n_nodes g - 1 do
    match res.Dataflow.input.(node) with
    | Nullness.Domain.Unreached -> ()
    | Nullness.Domain.Env env ->
        let null v = Nullness.VM.find_opt v env = Some Nullness.Null in
        List.iter
          (fun v -> if null v then out := (v, node) :: !out)
          (Nullness.dereferenced g.Cfg.kinds.(node));
        (match Cfg.node_call g.Cfg.kinds.(node) with
        | Some c -> (
            let id =
              Jir.Ast.qualified_name ~cls:c.Jir.Ast.target_class
                ~meth:c.Jir.Ast.mname
            in
            match lookup id with
            | Some summ ->
                List.iteri
                  (fun i arg ->
                    match arg with
                    | Jir.Ast.Var y
                      when null y
                           && i < Array.length summ.ns_deref_param
                           && summ.ns_deref_param.(i) ->
                        out := (y, node) :: !out
                    | _ -> ())
                  c.Jir.Ast.args
            | None -> ())
        | None -> ())
  done;
  List.sort_uniq compare !out

let analyze_null_method ~lookup (_ : Jir.Ast.program) (m : Jir.Ast.meth) :
    null_summary =
  let g = Cfg.build m in
  (* normal run: parameters unknown *)
  let res = solve_null_method ~lookup ~entry:[] g in
  let ns_ret =
    let acc = ref None in
    for node = 0 to Cfg.n_nodes g - 1 do
      match (g.Cfg.kinds.(node), res.Dataflow.input.(node)) with
      | Cfg.Stmt { kind = Jir.Ast.Return (Some e); _ }, Nullness.Domain.Env env
        ->
          let v =
            match e with
            | Jir.Ast.Var y ->
                Option.value ~default:Nullness.Top
                  (Nullness.VM.find_opt y env)
            | _ -> Nullness.Top
          in
          acc := join_ret !acc (Some v)
      | _ -> ()
    done;
    !acc
  in
  (* per-parameter probe: would a null argument definitely be dereferenced? *)
  let params = List.map snd m.Jir.Ast.params in
  let ns_deref_param =
    Array.of_list
      (List.map
         (fun p ->
           let res = solve_null_method ~lookup ~entry:[ (p, Nullness.Null) ] g in
           null_hits ~lookup g res
           |> List.exists (fun (v, _) -> v = p))
         params)
  in
  { ns_ret; ns_deref_param }

let null_client : null_summary client =
  { cl_name = "interproc-null";
    cl_bottom =
      (fun m ->
        { ns_ret = None;
          ns_deref_param =
            Array.make (List.length m.Jir.Ast.params) false });
    cl_equal =
      (fun a b -> a.ns_ret = b.ns_ret && a.ns_deref_param = b.ns_deref_param);
    cl_analyze = analyze_null_method }

(* The lint client: dereferences that only become definite nulls once
   summaries are applied.  Sites the intraprocedural nullness lint already
   reports are subtracted, so [--interproc] adds strictly whole-program
   findings instead of re-labelling local ones. *)
let null_diags ?policy (p : Jir.Ast.program) : Lint.diag list =
  let r = solve ?policy null_client p in
  let lk = lookup r in
  Jir.Ast.all_methods p
  |> List.concat_map (fun (m : Jir.Ast.meth) ->
         let g = Cfg.build m in
         let intra =
           Nullness.violations g
           |> List.filter_map (fun (v, node) ->
                  Option.map
                    (fun (at : Jir.Ast.pos) -> (v, at.Jir.Ast.line))
                    (Cfg.pos_of_node g node))
         in
         let res = solve_null_method ~lookup:lk ~entry:[] g in
         null_hits ~lookup:lk g res
         |> List.filter_map (fun (v, node) ->
                match Cfg.pos_of_node g node with
                | Some at when not (List.mem (v, at.Jir.Ast.line) intra) ->
                    Some
                      (Lint.diag "interproc-null" (Jir.Ast.meth_id m) at
                         (Printf.sprintf
                            "'%s' is null through an interprocedural flow \
                             when dereferenced"
                            v))
                | _ -> None))
  |> List.sort_uniq (fun (a : Lint.diag) b ->
         compare
           (a.Lint.at.Jir.Ast.file, a.Lint.at.Jir.Ast.line, a.Lint.meth,
            a.Lint.message)
           (b.Lint.at.Jir.Ast.file, b.Lint.at.Jir.Ast.line, b.Lint.meth,
            b.Lint.message))
