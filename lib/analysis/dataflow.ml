(* Generic forward/backward dataflow solver over [Cfg.t].

   Same worklist discipline as [Baseline.Worklist] (FIFO queue, re-enqueue
   on change) but typed against a user-supplied lattice instead of graph
   edges.  Clients provide the lattice operations and a per-node transfer
   function; the solver returns the fixpoint in/out states indexed by CFG
   node id.

   [bottom] must be the identity of [join] and is the state of nodes the
   iteration never reaches, so must-analyses use their top element (the
   full universe) as [bottom].  Exceptional edges ([Cfg.Exc]) propagate the
   *in*-state of their source in the forward direction: the exception may
   preempt the statement's own effect. *)

module type DOMAIN = sig
  type t

  val bottom : t
  (** identity of [join]; the state of unvisited nodes *)

  val init : Cfg.t -> t
  (** boundary state: at entry for forward, at the exits for backward *)

  val equal : t -> t -> bool
  val join : t -> t -> t

  val transfer : Cfg.t -> int -> t -> t
  (** [transfer g node state] applies node [node]'s effect to [state] *)

  val exc : Cfg.t -> int -> t -> t
  (** [exc g node state] is the state flowing along an exceptional edge
      out of [node], given [node]'s in-state.  Intraprocedural clients use
      the identity (the exception preempts the statement's own effect);
      interprocedural clients apply the callee's partial effect, since the
      callee may have advanced tracked objects before throwing. *)
end

type 'a result = { input : 'a array; output : 'a array }

module Forward (D : DOMAIN) = struct
  let solve (g : Cfg.t) : D.t result =
    let n = Cfg.n_nodes g in
    let input = Array.make n D.bottom in
    let output = Array.make n D.bottom in
    let queue = Queue.create () in
    let queued = Array.make n false in
    let push i =
      if not queued.(i) then begin
        queued.(i) <- true;
        Queue.add i queue
      end
    in
    for i = 0 to n - 1 do push i done;
    while not (Queue.is_empty queue) do
      let node = Queue.pop queue in
      queued.(node) <- false;
      let in_state =
        List.fold_left
          (fun acc (p, kind) ->
            let contrib =
              match kind with
              | Cfg.Exc -> D.exc g p input.(p)
              | _ -> output.(p)
            in
            D.join acc contrib)
          (if node = g.Cfg.entry then D.init g else D.bottom)
          g.Cfg.preds.(node)
      in
      let out_state = D.transfer g node in_state in
      input.(node) <- in_state;
      if not (D.equal out_state output.(node)) then begin
        output.(node) <- out_state;
        List.iter (fun (s, _) -> push s) g.Cfg.succs.(node)
      end
    done;
    { input; output }
end

module Backward (D : DOMAIN) = struct
  let solve (g : Cfg.t) : D.t result =
    let n = Cfg.n_nodes g in
    let input = Array.make n D.bottom in
    let output = Array.make n D.bottom in
    let queue = Queue.create () in
    let queued = Array.make n false in
    let push i =
      if not queued.(i) then begin
        queued.(i) <- true;
        Queue.add i queue
      end
    in
    for i = n - 1 downto 0 do push i done;
    let is_exit node = node = g.Cfg.exit_ || node = g.Cfg.exit_exn in
    while not (Queue.is_empty queue) do
      let node = Queue.pop queue in
      queued.(node) <- false;
      let out_state =
        List.fold_left
          (fun acc (s, _) -> D.join acc input.(s))
          (if is_exit node then D.init g else D.bottom)
          g.Cfg.succs.(node)
      in
      let in_state = D.transfer g node out_state in
      output.(node) <- out_state;
      if not (D.equal in_state input.(node)) then begin
        input.(node) <- in_state;
        List.iter (fun (p, _) -> push p) g.Cfg.preds.(node)
      end
    done;
    { input; output }
end
