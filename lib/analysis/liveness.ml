(* Classic backward liveness: a variable is live at a point if some path
   from the point reads it before overwriting it. *)

module VS = Set.Make (String)

module Domain = struct
  type t = VS.t

  let bottom = VS.empty
  let init (_ : Cfg.t) = VS.empty
  let equal = VS.equal
  let join = VS.union

  let exc _ _ state = state

  let transfer (g : Cfg.t) node out_state =
    let k = g.Cfg.kinds.(node) in
    let killed =
      List.fold_left (fun acc v -> VS.remove v acc) out_state (Cfg.defs k)
    in
    List.fold_left (fun acc v -> VS.add v acc) killed (Cfg.uses k)
end

module Solver = Dataflow.Backward (Domain)

type result = Domain.t Dataflow.result

let analyze (g : Cfg.t) : result = Solver.solve g

let live_in (r : result) ~node v = VS.mem v r.Dataflow.input.(node)
let live_out (r : result) ~node v = VS.mem v r.Dataflow.output.(node)
