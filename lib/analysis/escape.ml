(* Escape/relevance pre-filter for FSM-tracked allocations (ISSUE 1).

   The phase-1/2 closures dominate pipeline cost, and they are only needed
   for objects whose typestate genuinely depends on aliasing or on
   interprocedural flow.  An allocation whose reference provably never
   escapes its method — never stored to a field, never passed as a call
   argument, never returned, never aliased into another local — has a
   typestate determined entirely by the instance calls on that one variable
   inside that one method.  For such allocations we enumerate the method's
   (loop-free, post-unroll) paths once, collect the event sequence and the
   path condition of each, and let the pipeline run the FSM directly over
   those sequences instead of shipping the object into the alias and
   dataflow graphs.

   Qualification is deliberately strict; anything the quick syntactic
   argument cannot justify stays on the engine path:

   - the enclosing method contains no [While] (callers unroll first) and no
     [Try]/[Throw], so the local path structure is exactly the If-tree.
     Library calls that may throw are fine: with no handler in the method,
     the exceptional side of the CFET's may-throw divergence is a leaf that
     never reaches a normal exit (the engine reports leaks at normal exits
     only) and observes the event on the non-throwing side only, so the
     normal-path projection the enumerator walks sees exactly the event
     sequences the engine would;
   - the variable has exactly one definition: the candidate [Rnew];
   - the variable never occurs in an expression, as a call argument, as a
     store source or target, as a load base, in a return, or as the
     receiver of a call to a *defined* method (receivers of library calls
     are the FSM events and are allowed);
   - the method's path count stays under a small cap.

   Path conditions reuse the CFET's symbolic vocabulary ([Symexec.Symenv])
   so feasibility decisions agree with the engine: an infeasible local path
   is discarded by the same SMT check the closure would have applied. *)

module Symenv = Symexec.Symenv
module Linexpr = Smt.Linexpr
module Formula = Smt.Formula

type path = {
  events : (string * Jir.Ast.stmt) list;
      (* library calls on the variable, in order: raw called-method name
         and the call statement.  The pipeline re-resolves each statement
         against the property's event matcher at replay time, so one
         enumeration serves every FSM (name-matching or declared). *)
  cond : Formula.t;                       (* conjunction of branch constraints *)
}

type resolved = {
  meth_id : string;
  meth : Jir.Ast.meth;    (* enclosing method, for event-guard evaluation *)
  cls : string;
  sid : int;              (* allocation statement id (post-unroll) *)
  var : Jir.Ast.var;
  at : Jir.Ast.pos;
  paths : path list;      (* every complete local path through the alloc *)
}

let max_paths = 512

(* ---------------- qualification ---------------- *)

let rec block_stmts (b : Jir.Ast.block) : Jir.Ast.stmt list =
  List.concat_map
    (fun (s : Jir.Ast.stmt) ->
      s
      ::
      (match s.Jir.Ast.kind with
      | Jir.Ast.If (_, t, f) -> block_stmts t @ block_stmts f
      | Jir.Ast.While (_, b) -> block_stmts b
      | Jir.Ast.Try (b, cs) ->
          block_stmts b
          @ List.concat_map (fun c -> block_stmts c.Jir.Ast.handler) cs
      | _ -> []))
    b

(* The method shape the path enumerator understands: straight-line code and
   If-trees, with no handlers and no local throws. *)
let method_qualifies (m : Jir.Ast.meth) =
  List.for_all
    (fun (s : Jir.Ast.stmt) ->
      match s.Jir.Ast.kind with
      | Jir.Ast.While _ | Jir.Ast.Try _ | Jir.Ast.Throw _ -> false
      | _ -> true)
    (block_stmts m.Jir.Ast.body)

let expr_mentions v e = List.mem v (Jir.Ast.expr_vars e)
let cond_mentions v c = List.mem v (Jir.Ast.cond_vars c)

(* Would [s] let the reference in [v] escape (or alias) beyond the events
   the enumerator sees?  [defined] answers whether a call target is a
   program method. *)
let stmt_disqualifies ~defined v (s : Jir.Ast.stmt) =
  let call_bad (c : Jir.Ast.call) =
    List.exists (expr_mentions v) c.Jir.Ast.args
    || (c.Jir.Ast.recv = Some v
        && defined ~cls:c.Jir.Ast.target_class ~meth:c.Jir.Ast.mname)
  in
  let rhs_bad (r : Jir.Ast.rhs) =
    match r with
    | Jir.Ast.Rnew (_, args) -> List.exists (expr_mentions v) args
    | Jir.Ast.Rload (y, _) -> y = v
    | Jir.Ast.Rcall c -> call_bad c
    | Jir.Ast.Rexpr e -> expr_mentions v e
    | Jir.Ast.Rnull -> false
  in
  match s.Jir.Ast.kind with
  | Jir.Ast.Decl (_, _, Some r) | Jir.Ast.Assign (_, r) -> rhs_bad r
  | Jir.Ast.Store (x, _, y) -> x = v || y = v
  | Jir.Ast.Expr c -> call_bad c
  | Jir.Ast.Return (Some e) -> expr_mentions v e
  | Jir.Ast.If (c, _, _) | Jir.Ast.While (c, _) -> cond_mentions v c
  | _ -> false

let defs_of v (s : Jir.Ast.stmt) =
  match s.Jir.Ast.kind with
  | Jir.Ast.Decl (_, x, Some _) | Jir.Ast.Assign (x, _) -> x = v
  | _ -> false

(* ---------------- path enumeration ---------------- *)

exception Too_many_paths

type state = {
  env : Symenv.t;
  conds : Formula.t list;
  seen : bool;                            (* past the allocation *)
  events : (string * Jir.Ast.stmt) list;  (* reverse order *)
}

(* Enumerate every complete path of [m], mirroring the env updates of
   [Cfet.build] so branch constraints match the engine's.  Only paths that
   execute the allocation [sid] are returned. *)
let enumerate ~defined ~meth_id ~alloc_sid ~var (m : Jir.Ast.meth) :
    path list =
  let out = ref [] and count = ref 0 in
  let finish (st : state) =
    incr count;
    if !count > max_paths then raise Too_many_paths;
    if st.seen then
      out :=
        { events = List.rev st.events;
          cond =
            List.fold_left (fun acc f -> Formula.and_ acc f) Formula.True
              (List.rev st.conds) }
        :: !out
  in
  let event (c : Jir.Ast.call) st s =
    match c.Jir.Ast.recv with
    | Some r
      when r = var && st.seen
           && not
                (defined ~cls:c.Jir.Ast.target_class ~meth:c.Jir.Ast.mname) ->
        { st with events = (c.Jir.Ast.mname, s) :: st.events }
    | _ -> st
  in
  let rec block b st k =
    match b with
    | [] -> k st
    | s :: tl -> stmt s st (fun st -> block tl st k)
  and stmt (s : Jir.Ast.stmt) st k =
    let unknown x =
      Linexpr.var (Symenv.unknown_symbol ~meth_id x ~sid:s.Jir.Ast.sid)
    in
    match s.Jir.Ast.kind with
    | Jir.Ast.Store _ | Jir.Ast.Decl (_, _, None) -> k st
    | Jir.Ast.Decl (_, x, Some r) | Jir.Ast.Assign (x, r) -> (
        match r with
        | Jir.Ast.Rexpr e ->
            k { st with env = Symenv.bind st.env x (Symenv.eval st.env ~meth_id e) }
        | Jir.Ast.Rnull -> k st
        | Jir.Ast.Rload _ -> k { st with env = Symenv.bind st.env x (unknown x) }
        | Jir.Ast.Rnew _ ->
            let st =
              if s.Jir.Ast.sid = alloc_sid then { st with seen = true } else st
            in
            k { st with env = Symenv.bind st.env x (unknown x) }
        | Jir.Ast.Rcall c ->
            let st = event c st s in
            k { st with env = Symenv.bind st.env x (unknown x) })
    | Jir.Ast.Expr c -> k (event c st s)
    | Jir.Ast.Return _ -> finish st
    | Jir.Ast.If (c, t, f) ->
        let ct = Symenv.eval_cond st.env ~meth_id c in
        block t { st with conds = ct :: st.conds } k;
        block f { st with conds = Formula.not_ ct :: st.conds } k
    | Jir.Ast.While _ | Jir.Ast.Try _ | Jir.Ast.Throw _ ->
        (* ruled out by [method_qualifies] *)
        assert false
  in
  (try
     block m.Jir.Ast.body
       { env = Symenv.init_for_method m; conds = []; seen = false; events = [] }
       finish
   with Too_many_paths -> out := []);
  !out

(* ---------------- driver ---------------- *)

(* [analyze ~tracked program] over the *unrolled* program: every allocation
   of a tracked class that provably stays local to its method, with its
   per-path event sequences and path conditions. *)
let analyze ~tracked (program : Jir.Ast.program) : resolved list =
  let idx = Jir.Ast.index program in
  let defined ~cls ~meth = Jir.Ast.find_method_idx idx ~cls ~meth <> None in
  Jir.Ast.all_methods program
  |> List.concat_map (fun (m : Jir.Ast.meth) ->
         if not (method_qualifies m) then []
         else
           let meth_id = Jir.Ast.meth_id m in
           let stmts = block_stmts m.Jir.Ast.body in
           stmts
           |> List.filter_map (fun (s : Jir.Ast.stmt) ->
                  match s.Jir.Ast.kind with
                  | Jir.Ast.Decl (_, v, Some (Jir.Ast.Rnew (cls, _)))
                    when tracked cls ->
                      let n_defs =
                        List.length (List.filter (defs_of v) stmts)
                      in
                      if
                        n_defs = 1
                        && not
                             (List.exists
                                (stmt_disqualifies ~defined v)
                                stmts)
                      then
                        match
                          enumerate ~defined ~meth_id ~alloc_sid:s.Jir.Ast.sid
                            ~var:v m
                        with
                        | [] -> None  (* blown path cap or alloc never runs *)
                        | paths ->
                            Some
                              { meth_id; meth = m; cls; sid = s.Jir.Ast.sid;
                                var = v; at = s.Jir.Ast.at; paths }
                      else None
                  | _ -> None))
