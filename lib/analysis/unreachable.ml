(* Branch-decision and unreachable-code detection.

   A forward constant-propagation pass tracks each integer variable as a
   linear expression over the method's symbolic inputs (the same
   [Symexec.Symenv] vocabulary the CFET builder uses: parameter symbols,
   per-statement unknown symbols for call returns and heap loads).  At each
   reachable branch head the condition is evaluated to a formula and handed
   to the SMT solver twice — if [not c] is unsatisfiable the branch always
   takes its true side, if [c] is unsatisfiable it always takes its false
   side — which subsumes both constant-condition and arithmetically-forced
   dead branches (e.g. [x = p - p; if (x > 0)]).

   Two kinds of diagnostics fall out:
   - dead branch sides at decided branch heads (with a non-empty dead block)
   - structurally unreachable statements (code after return/throw), computed
     without the solver so the two lints never double-report. *)

module Symenv = Symexec.Symenv
module Linexpr = Smt.Linexpr
module Formula = Smt.Formula
module Solver = Smt.Solver
module VM = Map.Make (String)

(* A variable's abstract value: a linear expression, or join-damaged
   ([Varies]).  Missing keys mean "never assigned", which evaluates to the
   variable's own symbol — the same fallback [Symenv.value_of] uses — so
   the mapping is stable across fixpoint iterations. *)
type value = Lin of Linexpr.t | Varies

module Domain = struct
  type t = Unreached | Env of value VM.t

  let bottom = Unreached
  let init (_ : Cfg.t) = Env VM.empty

  let equal a b =
    match (a, b) with
    | Unreached, Unreached -> true
    | Env x, Env y -> VM.equal ( = ) x y
    | _ -> false

  let join a b =
    match (a, b) with
    | Unreached, x | x, Unreached -> x
    | Env x, Env y ->
        Env
          (VM.merge
             (fun _ l r ->
               match (l, r) with
               | Some (Lin a), Some (Lin b) when a = b -> Some (Lin a)
               | None, None -> None
               | _ -> Some Varies)
             x y)
end

let meth_id (g : Cfg.t) = Jir.Ast.meth_id g.Cfg.meth

let lookup env ~meth_id v =
  match VM.find_opt v env with
  | Some value -> value
  | None -> Lin (Linexpr.var (Smt.Symbol.intern (meth_id ^ "::" ^ v)))

let rec eval env ~meth_id (e : Jir.Ast.expr) : value =
  match e with
  | Jir.Ast.Const n -> Lin (Linexpr.const n)
  | Jir.Ast.Var v -> lookup env ~meth_id v
  | Jir.Ast.Binop (op, a, b) -> (
      match (eval env ~meth_id a, eval env ~meth_id b) with
      | Lin va, Lin vb -> (
          match op with
          | Jir.Ast.Add -> Lin (Linexpr.add va vb)
          | Jir.Ast.Sub -> Lin (Linexpr.sub va vb)
          | Jir.Ast.Mul ->
              if Linexpr.is_const va then Lin (Linexpr.scale va.Linexpr.const vb)
              else if Linexpr.is_const vb then
                Lin (Linexpr.scale vb.Linexpr.const va)
              else Varies)
      | _ -> Varies)

module ConstDomain = struct
  include Domain

  let exc _ _ state = state

  let transfer (g : Cfg.t) node state =
    match state with
    | Unreached -> Unreached
    | Env env -> (
        let meth_id = meth_id g in
        let unknown v sid =
          Lin (Linexpr.var (Symenv.unknown_symbol ~meth_id v ~sid))
        in
        match g.Cfg.kinds.(node) with
        | Cfg.Stmt { sid; kind = Jir.Ast.Decl (_, v, Some r); _ }
        | Cfg.Stmt { sid; kind = Jir.Ast.Assign (v, r); _ } ->
            let value =
              match r with
              | Jir.Ast.Rexpr e -> eval env ~meth_id e
              | Jir.Ast.Rload _ | Jir.Ast.Rcall _ -> unknown v sid
              | Jir.Ast.Rnew _ | Jir.Ast.Rnull -> unknown v sid
            in
            Env (VM.add v value env)
        | Cfg.Stmt { sid; kind = Jir.Ast.Decl (_, v, None); _ } ->
            Env (VM.add v (unknown v sid) env)
        | _ -> Env env)
end

module ConstSolver = Dataflow.Forward (ConstDomain)

(* Decide a branch condition under the abstract environment: [Some true] if
   it can only be true, [Some false] if only false, [None] otherwise
   (including when any mentioned variable is join-damaged). *)
let decide (g : Cfg.t) env (c : Jir.Ast.cond) : bool option =
  let meth_id = meth_id g in
  let decidable =
    List.for_all
      (fun v -> match lookup env ~meth_id v with Lin _ -> true | Varies -> false)
      (Jir.Ast.cond_vars c)
  in
  if not decidable then None
  else
    let assoc =
      VM.fold
        (fun v value acc ->
          match value with Lin le -> (v, le) :: acc | Varies -> acc)
        env []
    in
    let f = Symenv.eval_cond assoc ~meth_id c in
    match Solver.check f with
    | Solver.Unsat -> Some false
    | Solver.Sat | Solver.Unknown -> (
        match Solver.check (Formula.not_ f) with
        | Solver.Unsat -> Some true
        | Solver.Sat | Solver.Unknown -> None)

type branch_verdict = {
  node : int;
  stmt : Jir.Ast.stmt;
  always : bool;  (* the condition's constant truth value *)
  dead_nonempty : bool;  (* the dead side contains statements *)
}

(* Branch heads whose condition is statically decided, restricted to nodes
   reachable when decided branches are pruned along the way (a dead branch
   inside a dead branch is not re-reported). *)
let decided_branches (g : Cfg.t) : branch_verdict list =
  let r = ConstSolver.solve g in
  let verdicts = Array.make (Cfg.n_nodes g) None in
  for node = 0 to Cfg.n_nodes g - 1 do
    match (g.Cfg.kinds.(node), r.Dataflow.input.(node)) with
    | Cfg.Branch (stmt, c), Domain.Env env -> (
        match decide g env c with
        | Some always ->
            let dead_nonempty =
              match stmt.Jir.Ast.kind with
              | Jir.Ast.If (_, t, f) -> (if always then f else t) <> []
              | Jir.Ast.While (_, b) -> (not always) && b <> []
              | _ -> false
            in
            verdicts.(node) <- Some { node; stmt; always; dead_nonempty }
        | None -> ())
    | _ -> ()
  done;
  let follow node kind =
    match (verdicts.(node), kind) with
    | Some { always = true; _ }, Cfg.False -> false
    | Some { always = false; _ }, Cfg.True -> false
    | _ -> true
  in
  let reach = Cfg.reachable ~follow g in
  let out = ref [] in
  Array.iter
    (function
      | Some v when reach.(v.node) -> out := v :: !out
      | _ -> ())
    verdicts;
  List.rev !out

(* Structurally unreachable statement nodes: no path from entry even with
   every branch side considered feasible (i.e. code after return/throw). *)
let unreachable_nodes (g : Cfg.t) : int list =
  let reach = Cfg.reachable g in
  let out = ref [] in
  for node = 0 to Cfg.n_nodes g - 1 do
    (match g.Cfg.kinds.(node) with
    | Cfg.Stmt _ | Cfg.Branch _ -> if not reach.(node) then out := node :: !out
    | _ -> ())
  done;
  List.rev !out
