(* Reaching definitions: which (variable, def-node) pairs may reach each
   program point.  Parameters are modelled as definitions at [Cfg.entry]. *)

module DS = Set.Make (struct
  type t = Jir.Ast.var * int  (* variable, defining CFG node *)

  let compare = compare
end)

module Domain = struct
  type t = DS.t

  let bottom = DS.empty

  let init (g : Cfg.t) =
    List.fold_left
      (fun acc (_, p) -> DS.add (p, g.Cfg.entry) acc)
      DS.empty g.Cfg.meth.Jir.Ast.params

  let equal = DS.equal
  let join = DS.union

  let exc _ _ state = state

  let transfer (g : Cfg.t) node state =
    match Cfg.defs g.Cfg.kinds.(node) with
    | [] -> state
    | ds ->
        List.fold_left
          (fun acc v ->
            DS.add (v, node) (DS.filter (fun (v', _) -> v' <> v) acc))
          state ds
end

module Solver = Dataflow.Forward (Domain)

type result = Domain.t Dataflow.result

let analyze (g : Cfg.t) : result = Solver.solve g

(* Definitions of [v] reaching the entry of [node]. *)
let reaching (r : result) ~node v : int list =
  DS.fold
    (fun (v', d) acc -> if v' = v then d :: acc else acc)
    r.Dataflow.input.(node) []
  |> List.sort compare
