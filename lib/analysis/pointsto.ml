(* Whole-program Andersen points-to analysis over resolved JIR.

   Flow- and context-insensitive, field-sensitive on named fields: one
   abstract location per allocation site ([Rnew] statement id, plus the
   [Rnull] pseudo-allocation when null tracking is on), one node per
   (method, variable) pair, one lazily-created cell per (allocation,
   field).  Subset constraints:

     new:    x = new C      =>  {o_sid} ⊆ pts(x)
     copy:   x = y          =>  pts(y) ⊆ pts(x)
     load:   x = y.f        =>  ∀ o ∈ pts(y): pts(o.f) ⊆ pts(x)
     store:  x.f = y        =>  ∀ o ∈ pts(x): pts(y) ⊆ pts(o.f)
     call:   parameter binding / return flow for program-defined callees
             (library calls bind nothing; they only fire FSM events)

   The solver is a deterministic FIFO worklist over subset edges with
   online cycle elimination: the copy-edge graph is Tarjan-collapsed once
   after constraint generation and again whenever enough propagation work
   has accumulated, so cyclic copy chains (recursion, loops threaded
   through helpers) become single nodes.  All iteration orders are fixed
   (integer node ids, sorted sets), so results are byte-stable.

   The result is a sound over-approximation of the CFL-reachability
   [FlowsTo] relation the closure engine computes on the alias graph:
   every graph-derivable FlowsTo(o, v) fact has sid(o) ∈ pts(v).  That
   directional guarantee is what makes the two consumers sound:

   - the pipeline's alias pre-filter prunes an allocation only when no
     event-bearing statement can observe it (see [prunable_sids]);
   - the alias-graph slicer drops Assign-labeled edges whose source
     variable has an empty points-to set — no FlowsTo derivation can
     cross such an edge, so the closure is unchanged edge-for-edge. *)

module IS = Set.Make (Int)
module SS = Set.Make (String)

type alloc = {
  o_sid : int;
  o_cls : string;
  o_at : Jir.Ast.pos;
  o_meth : string;  (* method id of the allocating method *)
}

type t = {
  program : Jir.Ast.program;
  idx : Jir.Ast.index;
  track_null : bool;
  (* nodes are dense ints; arrays grow as field cells appear during solving *)
  mutable n : int;
  mutable pts : IS.t array;
  mutable succ : IS.t array;  (* copy edges, may hold stale (merged) ids *)
  mutable loads : (string * int) list array;  (* base -> (field, dst) *)
  mutable stores : (string * int) list array;  (* base -> (field, src) *)
  mutable rep : int array;  (* union-find parent *)
  mutable in_q : bool array;
  queue : int Queue.t;
  var_node : (string * string, int) Hashtbl.t;  (* (method id, var) *)
  cell_node : (int * string, int) Hashtbl.t;  (* (alloc sid, field) *)
  allocs : (int, alloc) Hashtbl.t;
  mutable alloc_sids : int list;  (* sorted, set after solving *)
  mutable n_collapsed : int;  (* nodes merged away by cycle elimination *)
  mutable ops : int;  (* propagations since the last collapse *)
}

(* Variable node holding a method's returned objects; the bracket syntax
   cannot collide with source variable names. *)
let ret_var = "<ret>"

(* Receiver formal of instance methods; must agree with
   [Alias_graph.this_var]. *)
let this_var = "this"

(* Class of the [Rnull] pseudo-allocation; must agree with
   [Alias_graph.null_class] (graphgen depends on analysis-free layers only,
   so the string is repeated here). *)
let null_class = "<null>"

(* ---------------- node store ---------------- *)

let grow t wanted =
  let cap = max 64 (max wanted (2 * Array.length t.pts)) in
  let extend a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 t.n;
    b
  in
  t.pts <- extend t.pts IS.empty;
  t.succ <- extend t.succ IS.empty;
  t.loads <- extend t.loads [];
  t.stores <- extend t.stores [];
  t.in_q <- extend t.in_q false;
  let r = Array.init cap (fun i -> i) in
  Array.blit t.rep 0 r 0 t.n;
  t.rep <- r

let new_node t =
  if t.n >= Array.length t.pts then grow t (t.n + 1);
  let i = t.n in
  t.n <- i + 1;
  i

let rec find t i =
  let p = t.rep.(i) in
  if p = i then i
  else begin
    let r = find t p in
    t.rep.(i) <- r;
    r
  end

let enqueue t i =
  let r = find t i in
  if not t.in_q.(r) then begin
    t.in_q.(r) <- true;
    Queue.add r t.queue
  end

let var_nd t mid v =
  match Hashtbl.find_opt t.var_node (mid, v) with
  | Some n -> n
  | None ->
      let n = new_node t in
      Hashtbl.add t.var_node (mid, v) n;
      n

let ret_nd t mid = var_nd t mid ret_var

let cell_nd t o f =
  match Hashtbl.find_opt t.cell_node (o, f) with
  | Some n -> n
  | None ->
      let n = new_node t in
      Hashtbl.add t.cell_node (o, f) n;
      n

(* ---------------- constraints ---------------- *)

let add_pts t node sid =
  let r = find t node in
  if not (IS.mem sid t.pts.(r)) then begin
    t.pts.(r) <- IS.add sid t.pts.(r);
    enqueue t r
  end

let add_edge t a b =
  let a = find t a and b = find t b in
  if a <> b && not (IS.mem b t.succ.(a)) then begin
    t.succ.(a) <- IS.add b t.succ.(a);
    if not (IS.subset t.pts.(a) t.pts.(b)) then begin
      t.pts.(b) <- IS.union t.pts.(b) t.pts.(a);
      enqueue t b
    end
  end

let add_load t base f dst =
  let r = find t base in
  t.loads.(r) <- (f, dst) :: t.loads.(r);
  enqueue t r

let add_store t base f src =
  let r = find t base in
  t.stores.(r) <- (f, src) :: t.stores.(r);
  enqueue t r

(* ---------------- cycle elimination ---------------- *)

(* Tarjan over the copy-edge graph restricted to representatives; every
   non-trivial SCC is merged into its smallest member.  Components are
   collected first and merged afterwards so [find] is stable during the
   traversal. *)
let collapse t =
  t.ops <- 0;
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let comps = ref [] in
  let succs v =
    IS.fold
      (fun w acc ->
        let w = find t w in
        if w = v then acc else IS.add w acc)
      t.succ.(v) IS.empty
  in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    IS.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
      in
      match pop [] with [] | [ _ ] -> () | members -> comps := members :: !comps
    end
  in
  for v = 0 to t.n - 1 do
    if find t v = v && not (Hashtbl.mem index v) then strongconnect v
  done;
  List.iter
    (fun members ->
      let r = List.fold_left min (List.hd members) members in
      List.iter
        (fun v ->
          if v <> r then begin
            t.n_collapsed <- t.n_collapsed + 1;
            t.pts.(r) <- IS.union t.pts.(r) t.pts.(v);
            t.succ.(r) <- IS.union t.succ.(r) t.succ.(v);
            t.loads.(r) <- List.sort_uniq compare (t.loads.(r) @ t.loads.(v));
            t.stores.(r) <-
              List.sort_uniq compare (t.stores.(r) @ t.stores.(v));
            t.rep.(v) <- r;
            t.pts.(v) <- IS.empty;
            t.succ.(v) <- IS.empty;
            t.loads.(v) <- [];
            t.stores.(v) <- []
          end)
        members;
      enqueue t r)
    (List.rev !comps)

(* ---------------- solving ---------------- *)

let process t r =
  let p = t.pts.(r) in
  List.iter
    (fun (f, dst) -> IS.iter (fun o -> add_edge t (cell_nd t o f) dst) p)
    t.loads.(r);
  List.iter
    (fun (f, src) -> IS.iter (fun o -> add_edge t src (cell_nd t o f)) p)
    t.stores.(r);
  IS.iter
    (fun d ->
      let d = find t d in
      if d <> r && not (IS.subset t.pts.(r) t.pts.(d)) then begin
        t.pts.(d) <- IS.union t.pts.(d) t.pts.(r);
        t.ops <- t.ops + 1;
        enqueue t d
      end)
    t.succ.(r)

let solve t =
  while not (Queue.is_empty t.queue) do
    let i = Queue.pop t.queue in
    t.in_q.(i) <- false;
    let r = find t i in
    if r = i then begin
      process t r;
      (* online cycle elimination: dynamic load/store edges keep creating
         new copy cycles, so re-collapse when propagation work piles up *)
      if t.ops > (4 * t.n) + 64 then collapse t
    end
    else enqueue t r
  done

(* ---------------- constraint generation ---------------- *)

let rec iter_block f (b : Jir.Ast.block) = List.iter (iter_stmt f) b

and iter_stmt f (s : Jir.Ast.stmt) =
  f s;
  match s.Jir.Ast.kind with
  | Jir.Ast.If (_, th, el) ->
      iter_block f th;
      iter_block f el
  | Jir.Ast.While (_, b) -> iter_block f b
  | Jir.Ast.Try (b, catches) ->
      iter_block f b;
      List.iter (fun c -> iter_block f c.Jir.Ast.handler) catches
  | _ -> ()

let record_alloc t ~sid ~cls ~at ~mid =
  if not (Hashtbl.mem t.allocs sid) then
    Hashtbl.add t.allocs sid { o_sid = sid; o_cls = cls; o_at = at; o_meth = mid }

(* Bind actuals to formals of a program-defined callee; library calls bind
   nothing (their only effect is the FSM event the graph layer models). *)
let bind_args t ~mid (callee : Jir.Ast.meth) args =
  let cid = Jir.Ast.meth_id callee in
  List.iteri
    (fun i arg ->
      match arg with
      | Jir.Ast.Var y -> (
          match List.nth_opt callee.Jir.Ast.params i with
          | Some (_, formal) -> add_edge t (var_nd t mid y) (var_nd t cid formal)
          | None -> ())
      | _ -> ())
    args

let bind_call t ~mid ~lhs (c : Jir.Ast.call) =
  match
    Jir.Ast.find_method_idx t.idx ~cls:c.Jir.Ast.target_class
      ~meth:c.Jir.Ast.mname
  with
  | None -> ()
  | Some callee ->
      let cid = Jir.Ast.meth_id callee in
      (match c.Jir.Ast.recv with
      | Some r -> add_edge t (var_nd t mid r) (var_nd t cid this_var)
      | None -> ());
      bind_args t ~mid callee c.Jir.Ast.args;
      (match lhs with
      | Some v -> add_edge t (ret_nd t cid) (var_nd t mid v)
      | None -> ())

let gen_rhs t ~mid (s : Jir.Ast.stmt) v (r : Jir.Ast.rhs) =
  match r with
  | Jir.Ast.Rnew (cls, args) -> (
      record_alloc t ~sid:s.Jir.Ast.sid ~cls ~at:s.Jir.Ast.at ~mid;
      add_pts t (var_nd t mid v) s.Jir.Ast.sid;
      (* a program-defined constructor receives the fresh object as [this] *)
      match Jir.Ast.find_method_idx t.idx ~cls ~meth:"<init>" with
      | Some init ->
          add_edge t (var_nd t mid v)
            (var_nd t (Jir.Ast.meth_id init) this_var);
          bind_args t ~mid init args
      | None -> ())
  | Jir.Ast.Rload (y, f) -> add_load t (var_nd t mid y) f (var_nd t mid v)
  | Jir.Ast.Rcall c -> bind_call t ~mid ~lhs:(Some v) c
  | Jir.Ast.Rexpr (Jir.Ast.Var y) ->
      add_edge t (var_nd t mid y) (var_nd t mid v)
  | Jir.Ast.Rexpr _ -> ()
  | Jir.Ast.Rnull ->
      if t.track_null then begin
        record_alloc t ~sid:s.Jir.Ast.sid ~cls:null_class ~at:s.Jir.Ast.at ~mid;
        add_pts t (var_nd t mid v) s.Jir.Ast.sid
      end

let gen_stmt t ~mid (s : Jir.Ast.stmt) =
  match s.Jir.Ast.kind with
  | Jir.Ast.Decl (_, v, Some r) | Jir.Ast.Assign (v, r) -> gen_rhs t ~mid s v r
  | Jir.Ast.Decl (_, _, None) -> ()
  | Jir.Ast.Store (x, f, y) ->
      add_store t (var_nd t mid x) f (var_nd t mid y)
  | Jir.Ast.Expr c -> bind_call t ~mid ~lhs:None c
  | Jir.Ast.Return (Some (Jir.Ast.Var r)) ->
      add_edge t (var_nd t mid r) (ret_nd t mid)
  | Jir.Ast.Return _ | Jir.Ast.Throw _ -> ()
  | Jir.Ast.If _ | Jir.Ast.While _ | Jir.Ast.Try _ -> ()

let analyze ?(track_null = false) (program : Jir.Ast.program) : t =
  let t =
    {
      program;
      idx = Jir.Ast.index program;
      track_null;
      n = 0;
      pts = [||];
      succ = [||];
      loads = [||];
      stores = [||];
      rep = [||];
      in_q = [||];
      queue = Queue.create ();
      var_node = Hashtbl.create 256;
      cell_node = Hashtbl.create 64;
      allocs = Hashtbl.create 64;
      alloc_sids = [];
      n_collapsed = 0;
      ops = 0;
    }
  in
  List.iter
    (fun (m : Jir.Ast.meth) ->
      let mid = Jir.Ast.meth_id m in
      iter_block (gen_stmt t ~mid) m.Jir.Ast.body)
    (Jir.Ast.all_methods program);
  (* static copy cycles (recursion) collapse before the first propagation *)
  collapse t;
  solve t;
  t.alloc_sids <-
    List.sort compare (Hashtbl.fold (fun sid _ acc -> sid :: acc) t.allocs []);
  t

(* ---------------- queries ---------------- *)

let pts_node t n = t.pts.(find t n)

let pts_sids t ~meth_id ~var : int list =
  match Hashtbl.find_opt t.var_node (meth_id, var) with
  | None -> []
  | Some n -> IS.elements (pts_node t n)

let nonempty t ~meth_id ~var =
  match Hashtbl.find_opt t.var_node (meth_id, var) with
  | None -> false
  | Some n -> not (IS.is_empty (pts_node t n))

let alloc_site t sid = Hashtbl.find_opt t.allocs sid
let n_nodes t = t.n
let n_allocs t = Hashtbl.length t.allocs
let n_collapsed t = t.n_collapsed

(* Points-to set as (class, file, line) sites: statement ids are a global
   counter, so anything compared across program builds must be site-keyed. *)
let pts_sites t ~meth_id ~var : (string * string * int) list =
  pts_sids t ~meth_id ~var
  |> List.filter_map (fun sid -> Hashtbl.find_opt t.allocs sid)
  |> List.map (fun a ->
         (a.o_cls, a.o_at.Jir.Ast.file, a.o_at.Jir.Ast.line))
  |> List.sort_uniq compare

(* Deterministic dump of every non-empty variable points-to set, site-keyed
   so two analyses of equal programs render byte-identically. *)
let render t =
  let site (a : alloc) =
    Printf.sprintf "%s@%s:%d" a.o_cls a.o_at.Jir.Ast.file a.o_at.Jir.Ast.line
  in
  let buf = Buffer.create 1024 in
  Hashtbl.fold (fun key n acc -> (key, n) :: acc) t.var_node []
  |> List.sort compare
  |> List.iter (fun ((mid, v), n) ->
         let sites =
           IS.elements (pts_node t n)
           |> List.filter_map (fun sid -> Hashtbl.find_opt t.allocs sid)
           |> List.map site |> List.sort_uniq compare
         in
         if sites <> [] then
           Buffer.add_string buf
             (Printf.sprintf "%s %s -> {%s}\n" mid v (String.concat ", " sites)));
  Buffer.contents buf

(* ---------------- the alias pre-filter ---------------- *)

(* Allocations the checking pipeline may drop before building graphs,
   proven unreportable for every FSM in [fsms] that tracks their class:

   - the FSM-state closure of the object's whole event alphabet — every
     event any library call / store / return statement the object can
     reach could fire, mirroring {!Dataflow_graph.stmt_event} — stays
     accepting and never touches the error state.  Order-free closure over
     the alphabet over-approximates every feasible event sequence, so no
     error report and no leak report is possible;
   - the object never flows into the base of a [Store]: a store-base
     object is the potential mediator of a store[f]/alias/load[f] chain,
     and removing its New edge could change *other* objects' flows.

   Untracked allocations and [Rnull] pseudo-allocations are never pruned
   (the graph builder's exclusion hook does not cover the latter). *)
let prunable_sids (t : t) ~(fsms : Fsm.t list) : int list =
  if fsms = [] then []
  else begin
    let fsms = Array.of_list fsms in
    let n_fsms = Array.length fsms in
    (* per-FSM event alphabet per allocation *)
    let events = Array.init n_fsms (fun _ -> Hashtbl.create 64) in
    let store_mediators = ref IS.empty in
    let add_events i node ev =
      IS.iter
        (fun sid ->
          let cur =
            Option.value ~default:SS.empty (Hashtbl.find_opt events.(i) sid)
          in
          Hashtbl.replace events.(i) sid (SS.add ev cur))
        (pts_node t node)
    in
    let on_call ~mid ~(m : Jir.Ast.meth) (c : Jir.Ast.call) =
      let defined =
        Jir.Ast.find_method_idx t.idx ~cls:c.Jir.Ast.target_class
          ~meth:c.Jir.Ast.mname
        <> None
      in
      if not defined then
        match c.Jir.Ast.recv with
        | None -> ()
        | Some r ->
            Array.iteri
              (fun i fsm ->
                match Fsm.call_event fsm ~meth:m c with
                | Some ev -> add_events i (var_nd t mid r) ev
                | None -> ())
              fsms
    in
    List.iter
      (fun (m : Jir.Ast.meth) ->
        let mid = Jir.Ast.meth_id m in
        iter_block
          (fun (s : Jir.Ast.stmt) ->
            match s.Jir.Ast.kind with
            | Jir.Ast.Expr c
            | Jir.Ast.Decl (_, _, Some (Jir.Ast.Rcall c))
            | Jir.Ast.Assign (_, Jir.Ast.Rcall c) ->
                on_call ~mid ~m c
            | Jir.Ast.Store (x, _, y) ->
                store_mediators :=
                  IS.union !store_mediators (pts_node t (var_nd t mid x));
                Array.iteri
                  (fun i fsm ->
                    match Fsm.store_event fsm ~meth:m ~src:y with
                    | Some ev -> add_events i (var_nd t mid y) ev
                    | None -> ())
                  fsms
            | Jir.Ast.Return (Some (Jir.Ast.Var r)) ->
                Array.iteri
                  (fun i fsm ->
                    match Fsm.return_event fsm ~meth:m r with
                    | Some ev -> add_events i (var_nd t mid r) ev
                    | None -> ())
                  fsms
            | _ -> ())
          m.Jir.Ast.body)
      (Jir.Ast.all_methods t.program);
    (* reachable-state closure of one object's alphabet under one FSM *)
    let closure_ok (fsm : Fsm.t) evs =
      let seen = Hashtbl.create 8 in
      let ok = ref true in
      let rec go s =
        if not (Hashtbl.mem seen s) then begin
          Hashtbl.add seen s ();
          if s = fsm.Fsm.error || not (Fsm.is_accepting fsm s) then ok := false
          else SS.iter (fun ev -> go (Fsm.step fsm s ev)) evs
        end
      in
      go fsm.Fsm.initial;
      !ok
    in
    t.alloc_sids
    |> List.filter (fun sid ->
           let a = Hashtbl.find t.allocs sid in
           a.o_cls <> null_class
           && (not (IS.mem sid !store_mediators))
           &&
           let tracking = ref [] in
           Array.iteri
             (fun i fsm ->
               if Fsm.is_tracked fsm a.o_cls then tracking := (i, fsm) :: !tracking)
             fsms;
           !tracking <> []
           && List.for_all
                (fun (i, fsm) ->
                  let evs =
                    Option.value ~default:SS.empty
                      (Hashtbl.find_opt events.(i) sid)
                  in
                  closure_ok fsm evs)
                !tracking)
  end

(* ---------------- whole-program lints ---------------- *)

(* Heap stores whose stored region is never loaded back through any alias
   of the receiver: the written cell is unreachable dead weight. *)
let never_read_diags (t : t) : Lint.diag list =
  (* (field, base points-to set) of every load in the program *)
  let loads = ref [] in
  List.iter
    (fun (m : Jir.Ast.meth) ->
      let mid = Jir.Ast.meth_id m in
      iter_block
        (fun (s : Jir.Ast.stmt) ->
          match s.Jir.Ast.kind with
          | Jir.Ast.Decl (_, _, Some (Jir.Ast.Rload (y, f)))
          | Jir.Ast.Assign (_, Jir.Ast.Rload (y, f)) ->
              loads := (f, pts_node t (var_nd t mid y)) :: !loads
          | _ -> ())
        m.Jir.Ast.body)
    (Jir.Ast.all_methods t.program);
  let loads = !loads in
  let diags = ref [] in
  List.iter
    (fun (m : Jir.Ast.meth) ->
      let mid = Jir.Ast.meth_id m in
      iter_block
        (fun (s : Jir.Ast.stmt) ->
          match s.Jir.Ast.kind with
          | Jir.Ast.Store (x, f, y) ->
              let px = pts_node t (var_nd t mid x) in
              let py = pts_node t (var_nd t mid y) in
              if
                (not (IS.is_empty px))
                && (not (IS.is_empty py))
                && not
                     (List.exists
                        (fun (f', pw) ->
                          f' = f && not (IS.is_empty (IS.inter px pw)))
                        loads)
              then
                diags :=
                  Lint.diag "pointsto-never-read" mid s.Jir.Ast.at
                    (Printf.sprintf
                       "store into field '%s' is never loaded through any \
                        alias of the receiver"
                       f)
                  :: !diags
          | _ -> ())
        m.Jir.Ast.body)
    (Jir.Ast.all_methods t.program);
  List.sort_uniq compare !diags

(* Objects of a taint-source class parked in the heap and reaching a sink
   call in a *different* method: the alias chain (store, load through an
   alias, sink) is invisible to every intraprocedural lint. *)
let confused_sink_diags ?(sources = [ "UserInput" ])
    ?(sinks = [ "exec"; "send" ]) (t : t) : Lint.diag list =
  let source_sids =
    List.filter
      (fun sid ->
        let a = Hashtbl.find t.allocs sid in
        List.mem a.o_cls sources)
      t.alloc_sids
  in
  if source_sids = [] then []
  else begin
    (* sources that actually pass through the heap *)
    let stored = ref IS.empty in
    List.iter
      (fun (m : Jir.Ast.meth) ->
        let mid = Jir.Ast.meth_id m in
        iter_block
          (fun (s : Jir.Ast.stmt) ->
            match s.Jir.Ast.kind with
            | Jir.Ast.Store (_, _, y) ->
                stored := IS.union !stored (pts_node t (var_nd t mid y))
            | _ -> ())
          m.Jir.Ast.body)
      (Jir.Ast.all_methods t.program);
    let diags = ref [] in
    List.iter
      (fun (m : Jir.Ast.meth) ->
        let mid = Jir.Ast.meth_id m in
        iter_block
          (fun (s : Jir.Ast.stmt) ->
            match s.Jir.Ast.kind with
            | Jir.Ast.Expr c
            | Jir.Ast.Decl (_, _, Some (Jir.Ast.Rcall c))
            | Jir.Ast.Assign (_, Jir.Ast.Rcall c) -> (
                let library =
                  Jir.Ast.find_method_idx t.idx ~cls:c.Jir.Ast.target_class
                    ~meth:c.Jir.Ast.mname
                  = None
                in
                match c.Jir.Ast.recv with
                | Some r when library && List.mem c.Jir.Ast.mname sinks -> (
                    let reaching =
                      IS.inter !stored (pts_node t (var_nd t mid r))
                    in
                    let tainted =
                      List.filter
                        (fun sid ->
                          IS.mem sid reaching
                          && (Hashtbl.find t.allocs sid).o_meth <> mid)
                        source_sids
                    in
                    match tainted with
                    | [] -> ()
                    | sid :: _ ->
                        let a = Hashtbl.find t.allocs sid in
                        diags :=
                          Lint.diag "pointsto-confused-sink" mid s.Jir.Ast.at
                            (Printf.sprintf
                               "tainted %s allocated at %s:%d reaches sink \
                                '%s' through the heap"
                               a.o_cls a.o_at.Jir.Ast.file a.o_at.Jir.Ast.line
                               c.Jir.Ast.mname)
                          :: !diags)
                | _ -> ())
            | _ -> ())
          m.Jir.Ast.body)
      (Jir.Ast.all_methods t.program);
    List.sort_uniq compare !diags
  end

(* Both points-to lints, ordered like {!Lint.check_program}. *)
let diags (t : t) : Lint.diag list =
  never_read_diags t @ confused_sink_diags t
  |> List.sort (fun (a : Lint.diag) (b : Lint.diag) ->
         compare
           (a.Lint.at.Jir.Ast.file, a.Lint.at.Jir.Ast.line, a.Lint.lint,
            a.Lint.meth)
           (b.Lint.at.Jir.Ast.file, b.Lint.at.Jir.Ast.line, b.Lint.lint,
            b.Lint.meth))
