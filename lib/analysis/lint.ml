(* Lint diagnostics over the client dataflow analyses.

   Runs on the *resolved, pre-unroll* program so every diagnostic cites an
   original source position.  Each lint is named by a stable slug used by
   the CLI, the JSON output, and the workload scorer. *)

type diag = {
  lint : string;          (* "use-before-init" | "null-deref" | ... *)
  meth : string;          (* qualified method id *)
  at : Jir.Ast.pos;
  message : string;
}

let lint_names =
  [ "use-before-init"; "null-deref"; "dead-branch"; "unreachable" ]

let diag lint meth at message = { lint; meth; at; message }

(* [on_pass name seconds] is called once per pass per method so the CLI can
   feed per-pass latency histograms in the metrics registry. *)
let check_method ?(on_pass = fun _ _ -> ()) (m : Jir.Ast.meth) : diag list =
  let g = Cfg.build m in
  let id = Jir.Ast.meth_id m in
  let out = ref [] in
  let emit lint node message =
    match Cfg.pos_of_node g node with
    | Some at -> out := diag lint id at message :: !out
    | None -> ()
  in
  let timed name f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    on_pass name (Unix.gettimeofday () -. t0);
    r
  in
  List.iter
    (fun (v, node) ->
      emit "use-before-init" node
        (Printf.sprintf "variable '%s' may be used before it is assigned" v))
    (timed "use-before-init" (fun () -> Definite_assign.violations g));
  List.iter
    (fun (v, node) ->
      emit "null-deref" node
        (Printf.sprintf "variable '%s' is definitely null when dereferenced" v))
    (timed "null-deref" (fun () -> Nullness.violations g));
  List.iter
    (fun (b : Unreachable.branch_verdict) ->
      if b.Unreachable.dead_nonempty then
        emit "dead-branch" b.Unreachable.node
          (Printf.sprintf "condition is always %b; the %s branch is dead"
             b.Unreachable.always
             (if b.Unreachable.always then "false" else "true")))
    (timed "dead-branch" (fun () -> Unreachable.decided_branches g));
  List.iter
    (fun node -> emit "unreachable" node "statement is unreachable")
    (timed "unreachable" (fun () -> Unreachable.unreachable_nodes g));
  (* one diagnostic per (lint, line): unrolled copies or multi-var nodes
     should not spam *)
  !out
  |> List.sort_uniq (fun a b ->
         compare
           (a.lint, a.at.Jir.Ast.file, a.at.Jir.Ast.line, a.message)
           (b.lint, b.at.Jir.Ast.file, b.at.Jir.Ast.line, b.message))

let check_program ?on_pass (p : Jir.Ast.program) : diag list =
  Jir.Ast.all_methods p
  |> List.concat_map (check_method ?on_pass)
  |> List.sort (fun a b ->
         compare
           (a.at.Jir.Ast.file, a.at.Jir.Ast.line, a.lint, a.meth)
           (b.at.Jir.Ast.file, b.at.Jir.Ast.line, b.lint, b.meth))

let pp ppf (d : diag) =
  Fmt.pf ppf "%s:%d: %s: %s [%s]" d.at.Jir.Ast.file d.at.Jir.Ast.line d.lint
    d.message d.meth

let to_string (d : diag) = Fmt.str "%a" pp d

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json (d : diag) =
  Printf.sprintf
    {|{"tool":"lint","lint":"%s","method":"%s","file":"%s","line":%d,"message":"%s"}|}
    (json_escape d.lint) (json_escape d.meth)
    (json_escape d.at.Jir.Ast.file)
    d.at.Jir.Ast.line (json_escape d.message)
