(* Interprocedural typestate summaries (the tentpole of ISSUE 2).

   A flow-sensitive, path- and context-insensitive abstraction of one FSM
   property over the whole program, computed bottom-up over the call-graph
   SCC condensation by [Interproc.solve].  Each abstract object carries a
   transfer relation over FSM states ([Fsm.rel]): the join, over every path
   reaching the current point, of the composition of the event effects
   applied so far.  Per-method summaries map each parameter to its relation
   between entry and normal return (plus a partial relation covering
   exception exits, and an escape bit) and describe the objects a method
   can return, so call sites apply callee effects instead of inlining.

   Everything joins: paths (at CFG merges), contexts (one summary per
   method), and aliases (an uncertain receiver applies an event *weakly*,
   id ∪ effect, so the "event did not happen" outcome survives).  The
   abstraction therefore over-approximates the set of event sequences the
   path-sensitive engine can realize for any allocation — which is what
   makes the pipeline's summary pre-filter sound: if no abstract sequence
   reaches the FSM error state and no abstract end-of-life state is
   non-accepting, the engine can report neither an error nor a leak for
   that allocation, and it can be dropped before graph generation.

   The same facts power the [interproc-leak] lint under the dual, all-paths
   reading: if the object dies at some normal exit and *every* abstract
   end-of-life state there is non-accepting (and the object never escapes
   and never reaches the error state), every concrete execution leaks. *)

module SM = Map.Make (String)

type origin = Oalloc of int (* allocation sid *) | Oparam of int

module OM = Map.Make (struct
  type t = origin

  let compare = compare
end)

module OS = Set.Make (struct
  type t = origin

  let compare = compare
end)

(* ---------------- allocation registry ---------------- *)

type alloc_site = {
  a_sid : int;
  a_cls : string;
  a_at : Jir.Ast.pos;
  a_meth : string;  (* qualified id of the method containing the allocation *)
}

let alloc_sites (p : Jir.Ast.program) : (int, alloc_site) Hashtbl.t =
  let table = Hashtbl.create 64 in
  let rec block mid (b : Jir.Ast.block) = List.iter (stmt mid) b
  and stmt mid (s : Jir.Ast.stmt) =
    match s.Jir.Ast.kind with
    | Jir.Ast.Decl (_, _, Some (Jir.Ast.Rnew (cls, _)))
    | Jir.Ast.Assign (_, Jir.Ast.Rnew (cls, _)) ->
        Hashtbl.replace table s.Jir.Ast.sid
          { a_sid = s.Jir.Ast.sid; a_cls = cls; a_at = s.Jir.Ast.at;
            a_meth = mid }
    | Jir.Ast.If (_, t, f) ->
        block mid t;
        block mid f
    | Jir.Ast.While (_, b) -> block mid b
    | Jir.Ast.Try (b, catches) ->
        block mid b;
        List.iter (fun (c : Jir.Ast.catch) -> block mid c.Jir.Ast.handler)
          catches
    | _ -> ()
  in
  List.iter
    (fun (m : Jir.Ast.meth) -> block (Jir.Ast.meth_id m) m.Jir.Ast.body)
    (Jir.Ast.all_methods p);
  table

(* ---------------- the summary lattice ---------------- *)

type param_summary = {
  ps_obj : bool;       (* parameter has object type; others never bind *)
  ps_rel : Fsm.rel;    (* effect between entry and any normal return *)
  ps_partial : Fsm.rel;  (* join of effects at every point: exception exits *)
  ps_wild : bool;      (* escapes the summary's view inside the callee *)
}

type summary = {
  s_params : param_summary array;
  s_ret_fresh : (int * Fsm.rel * bool) list;
      (* allocation sid (here or deeper), accumulated relation, wild;
         sorted by sid for deterministic equality *)
  s_ret_params : int list;  (* parameter indices possibly returned *)
  s_ret_other : bool;
      (* may return something else: null, an untracked or field-loaded
         value, or a value from an unanalyzed path *)
}

let rel_bottom fsm =
  let n = Fsm.n_states fsm in
  Array.init n (fun _ -> Array.make n false)

let param_bottom fsm (t : Jir.Ast.typ) =
  { ps_obj = (match t with Jir.Ast.Tobj _ -> true | _ -> false);
    ps_rel = rel_bottom fsm;
    ps_partial = rel_bottom fsm;
    ps_wild = false }

let summary_bottom fsm (m : Jir.Ast.meth) =
  { s_params =
      Array.of_list (List.map (fun (t, _) -> param_bottom fsm t) m.Jir.Ast.params);
    s_ret_fresh = [];
    s_ret_params = [];
    s_ret_other = false }

let summary_equal (a : summary) (b : summary) =
  Array.length a.s_params = Array.length b.s_params
  && Array.for_all2
       (fun p q ->
         p.ps_obj = q.ps_obj && p.ps_wild = q.ps_wild
         && Fsm.rel_equal p.ps_rel q.ps_rel
         && Fsm.rel_equal p.ps_partial q.ps_partial)
       a.s_params b.s_params
  && List.length a.s_ret_fresh = List.length b.s_ret_fresh
  && List.for_all2
       (fun (s, r, w) (s', r', w') ->
         s = s' && w = w' && Fsm.rel_equal r r')
       a.s_ret_fresh b.s_ret_fresh
  && a.s_ret_params = b.s_ret_params
  && a.s_ret_other = b.s_ret_other

(* ---------------- the per-method abstract domain ---------------- *)

type ostate = {
  o_rel : Fsm.rel;
  o_wild : bool;
  o_multi : bool;
      (* origin may describe several live objects at once (allocation in a
         loop, repeated calls returning the same site): events then apply
         weakly even through an unaliased variable *)
}

type binding = {
  b_objs : OS.t;
  b_other : bool;  (* may also hold null / an untracked or unknown value *)
}

type env = { vars : binding SM.t; objs : ostate OM.t }

let unbound = { b_objs = OS.empty; b_other = true }

type tcx = {
  fsm : Fsm.t;
  lookup : string -> summary option;  (* defined methods only *)
}

let cur : tcx option ref = ref None

let tc () = Option.get !cur

let binding env v = Option.value ~default:unbound (SM.find_opt v env.vars)

let set_obj env o st = { env with objs = OM.add o st env.objs }

let wildify env (b : binding) =
  OS.fold
    (fun o env ->
      match OM.find_opt o env.objs with
      | Some st -> set_obj env o { st with o_wild = true }
      | None -> env)
    b.b_objs env

let wildify_expr env (e : Jir.Ast.expr) =
  List.fold_left (fun env y -> wildify env (binding env y)) env
    (Jir.Ast.expr_vars e)

(* Apply an effect relation to the objects a binding may reference.  The
   composition is strong (the effect definitely happened to the object)
   only when the binding names exactly one non-multi origin and nothing
   else; any aliasing or points-to uncertainty keeps the identity in. *)
let apply_eff t env (b : binding) (eff : Fsm.rel) =
  let definite = (not b.b_other) && OS.cardinal b.b_objs = 1 in
  OS.fold
    (fun o env ->
      match OM.find_opt o env.objs with
      | None -> env
      | Some st ->
          let eff =
            if definite && not st.o_multi then eff
            else Fsm.rel_join (Fsm.rel_identity t.fsm) eff
          in
          set_obj env o { st with o_rel = Fsm.rel_compose st.o_rel eff })
    b.b_objs env

(* A new object enters the frame: freshly allocated here, or returned by a
   callee with relation [rel] accumulated since its birth.  If the origin
   is already live, the site now describes several objects at once. *)
let birth env o ~rel ~wild =
  match OM.find_opt o env.objs with
  | None -> set_obj env o { o_rel = rel; o_wild = wild; o_multi = false }
  | Some st ->
      set_obj env o
        { o_rel = Fsm.rel_join st.o_rel rel;
          o_wild = st.o_wild || wild;
          o_multi = true }

let set_var env v b = { env with vars = SM.add v b env.vars }

let callee_id (c : Jir.Ast.call) =
  Jir.Ast.qualified_name ~cls:c.Jir.Ast.target_class ~meth:c.Jir.Ast.mname

(* Bindings of the positional [Var] arguments; any origin reachable from a
   non-variable argument expression escapes conservatively. *)
let arg_bindings env (c : Jir.Ast.call) : (int * binding) list * env =
  List.fold_left
    (fun (acc, env) (i, arg) ->
      match arg with
      | Jir.Ast.Var y -> ((i, binding env y) :: acc, env)
      | e -> (acc, wildify_expr env e))
    ([], env)
    (List.mapi (fun i a -> (i, a)) c.Jir.Ast.args)

(* Origins shared between several arguments of the same call: the callee
   summary models parameters as distinct objects, so interleaved effects on
   an aliased pair are not covered — those origins go wild. *)
let wildify_shared env (binds : (int * binding) list) =
  let seen = Hashtbl.create 8 in
  let dup = ref OS.empty in
  List.iter
    (fun (_, b) ->
      OS.iter
        (fun o ->
          if Hashtbl.mem seen o then dup := OS.add o !dup
          else Hashtbl.replace seen o ())
        b.b_objs)
    binds;
  wildify env { b_objs = !dup; b_other = false }

(* Effects of a call at its normal return edge; [bind] receives the result.
   [meth] is the enclosing method, consulted by the event matcher's
   guards. *)
let do_call t ~(meth : Jir.Ast.meth) env (c : Jir.Ast.call)
    ~(bind : Jir.Ast.var option) =
  match t.lookup (callee_id c) with
  | Some summ ->
      (* defined callee: apply its parameter effects positionally *)
      let env =
        match c.Jir.Ast.recv with
        | Some r -> wildify env (binding env r)
        | None -> env
      in
      let binds, env = arg_bindings env c in
      let env = wildify_shared env binds in
      let env =
        List.fold_left
          (fun env (i, b) ->
            if i < Array.length summ.s_params && summ.s_params.(i).ps_obj then begin
              let ps = summ.s_params.(i) in
              let env = apply_eff t env b ps.ps_rel in
              if ps.ps_wild then wildify env b else env
            end
            else wildify env b)
          env binds
      in
      (match bind with
      | None -> env
      | Some x ->
          let env, fresh =
            List.fold_left
              (fun (env, os) (sid, rel, wild) ->
                (birth env (Oalloc sid) ~rel ~wild, OS.add (Oalloc sid) os))
              (env, OS.empty) summ.s_ret_fresh
          in
          let ret_os, other =
            List.fold_left
              (fun (os, other) i ->
                match List.assoc_opt i binds with
                | Some b -> (OS.union os b.b_objs, other || b.b_other)
                | None -> (os, true))
              (OS.empty, summ.s_ret_other)
              summ.s_ret_params
          in
          set_var env x { b_objs = OS.union fresh ret_os; b_other = other })
  | None -> (
      (* library call: an instance call is an FSM event on the receiver;
         any origin passed as an argument escapes into unknown code *)
      let env =
        List.fold_left (fun env e -> wildify_expr env e) env c.Jir.Ast.args
      in
      let env =
        match (c.Jir.Ast.recv, Fsm.call_event t.fsm ~meth c) with
        | Some r, Some ev ->
            apply_eff t env (binding env r) (Fsm.rel_of_event t.fsm ev)
        | _ -> env
      in
      match bind with Some x -> set_var env x unbound | None -> env)

let tracked_class t cls = Fsm.is_tracked t.fsm cls

let do_rhs t ~meth env v (r : Jir.Ast.rhs) (s : Jir.Ast.stmt) =
  match r with
  | Jir.Ast.Rnew (cls, args) ->
      let env = List.fold_left (fun env e -> wildify_expr env e) env args in
      if tracked_class t cls then
        let o = Oalloc s.Jir.Ast.sid in
        let env = birth env o ~rel:(Fsm.rel_identity t.fsm) ~wild:false in
        set_var env v { b_objs = OS.singleton o; b_other = false }
      else set_var env v unbound
  | Jir.Ast.Rcall c -> do_call t ~meth env c ~bind:(Some v)
  | Jir.Ast.Rexpr (Jir.Ast.Var y) -> set_var env v (binding env y)
  | Jir.Ast.Rload _ | Jir.Ast.Rnull | Jir.Ast.Rexpr _ -> set_var env v unbound

module Domain = struct
  type t = Unreached | Env of env

  let bottom = Unreached

  let init (g : Cfg.t) =
    let t = tc () in
    let vars, objs =
      List.fold_left
        (fun (vars, objs) (i, (ty, p)) ->
          match ty with
          | Jir.Ast.Tobj _ ->
              ( SM.add p { b_objs = OS.singleton (Oparam i); b_other = false }
                  vars,
                OM.add (Oparam i)
                  { o_rel = Fsm.rel_identity t.fsm;
                    o_wild = false;
                    o_multi = false }
                  objs )
          | _ -> (SM.add p { b_objs = OS.empty; b_other = false } vars, objs))
        (SM.empty, OM.empty)
        (List.mapi (fun i pr -> (i, pr)) g.Cfg.meth.Jir.Ast.params)
    in
    Env { vars; objs }

  let equal_binding a b = a.b_other = b.b_other && OS.equal a.b_objs b.b_objs

  let equal_ostate a b =
    a.o_wild = b.o_wild && a.o_multi = b.o_multi
    && Fsm.rel_equal a.o_rel b.o_rel

  let equal a b =
    match (a, b) with
    | Unreached, Unreached -> true
    | Env a, Env b ->
        SM.equal equal_binding a.vars b.vars
        && OM.equal equal_ostate a.objs b.objs
    | _ -> false

  let join a b =
    match (a, b) with
    | Unreached, x | x, Unreached -> x
    | Env a, Env b ->
        Env
          { vars =
              SM.merge
                (fun _ l r ->
                  match (l, r) with
                  | Some l, Some r ->
                      Some
                        { b_objs = OS.union l.b_objs r.b_objs;
                          b_other = l.b_other || r.b_other }
                  | Some x, None | None, Some x ->
                      (* bound on one side only: the variable may hold
                         anything on the other *)
                      Some { x with b_other = true }
                  | None, None -> None)
                a.vars b.vars;
            objs =
              OM.merge
                (fun _ l r ->
                  match (l, r) with
                  | Some l, Some r ->
                      Some
                        { o_rel = Fsm.rel_join l.o_rel r.o_rel;
                          o_wild = l.o_wild || r.o_wild;
                          o_multi = l.o_multi || r.o_multi }
                  | Some x, None | None, Some x -> Some x
                  | None, None -> None)
                a.objs b.objs }

  let transfer (g : Cfg.t) node state =
    match state with
    | Unreached -> Unreached
    | Env env -> (
        let t = tc () in
        match g.Cfg.kinds.(node) with
        | Cfg.Stmt ({ kind = Jir.Ast.Decl (_, v, Some r); _ } as s)
        | Cfg.Stmt ({ kind = Jir.Ast.Assign (v, r); _ } as s) ->
            Env (do_rhs t ~meth:g.Cfg.meth env v r s)
        | Cfg.Stmt { kind = Jir.Ast.Decl (_, v, None); _ } ->
            Env (set_var env v unbound)
        | Cfg.Stmt { kind = Jir.Ast.Store (_, _, y); _ } ->
            (* a declared store-pattern event fires before the reference
               escapes into the heap *)
            let env =
              match Fsm.store_event t.fsm ~meth:g.Cfg.meth ~src:y with
              | Some ev ->
                  apply_eff t env (binding env y) (Fsm.rel_of_event t.fsm ev)
              | None -> env
            in
            Env (wildify env (binding env y))
        | Cfg.Stmt { kind = Jir.Ast.Expr c; _ } ->
            Env (do_call t ~meth:g.Cfg.meth env c ~bind:None)
        | Cfg.Stmt { kind = Jir.Ast.Return (Some (Jir.Ast.Var y)); _ } ->
            (* a cleanly-returned allocation transfers ownership to the
               caller: drop it here so the exit node does not count it as
               dying in this frame.  Anything uncertain stays, and is then
               both recorded as returned and checked at exit — conservative
               in both directions. *)
            let env =
              match Fsm.return_event t.fsm ~meth:g.Cfg.meth y with
              | Some ev ->
                  apply_eff t env (binding env y) (Fsm.rel_of_event t.fsm ev)
              | None -> env
            in
            let b = binding env y in
            if (not b.b_other) && OS.cardinal b.b_objs = 1 then
              match OS.choose b.b_objs with
              | Oalloc _ as o -> (
                  match OM.find_opt o env.objs with
                  | Some st when not st.o_multi ->
                      Env { env with objs = OM.remove o env.objs }
                  | _ -> Env env)
              | Oparam _ -> Env env
            else Env env
        | Cfg.Bind (_, _, v) -> Env (set_var env v unbound)
        | _ -> Env env)

  (* Exceptional edge out of a call: the callee may have applied any prefix
     of its effects before throwing.  Partial parameter relations contain
     the identity, so plain composition covers "threw before touching it";
     a library event may or may not have fired. *)
  let exc (g : Cfg.t) node state =
    match state with
    | Unreached -> Unreached
    | Env env -> (
        match Cfg.node_call g.Cfg.kinds.(node) with
        | None -> state
        | Some c -> (
            let t = tc () in
            match t.lookup (callee_id c) with
            | Some summ ->
                let env =
                  match c.Jir.Ast.recv with
                  | Some r -> wildify env (binding env r)
                  | None -> env
                in
                let binds, env = arg_bindings env c in
                let env = wildify_shared env binds in
                Env
                  (List.fold_left
                     (fun env (i, b) ->
                       if
                         i < Array.length summ.s_params
                         && summ.s_params.(i).ps_obj
                       then begin
                         let ps = summ.s_params.(i) in
                         let env = apply_eff t env b ps.ps_partial in
                         if ps.ps_wild then wildify env b else env
                       end
                       else wildify env b)
                     env binds)
            | None ->
                let env =
                  List.fold_left (fun env e -> wildify_expr env e) env
                    c.Jir.Ast.args
                in
                Env
                  (match
                     (c.Jir.Ast.recv, Fsm.call_event t.fsm ~meth:g.Cfg.meth c)
                   with
                  | Some r, Some ev ->
                      apply_eff t env (binding env r)
                        (Fsm.rel_join
                           (Fsm.rel_identity t.fsm)
                           (Fsm.rel_of_event t.fsm ev))
                  | _ -> env)))
end

module Solver = Dataflow.Forward (Domain)

let solve_method t (g : Cfg.t) : Domain.t Dataflow.result =
  cur := Some t;
  let r = Solver.solve g in
  cur := None;
  r

(* ---------------- summarization ---------------- *)

let summarize t (g : Cfg.t) (res : Domain.t Dataflow.result) : summary =
  let m = g.Cfg.meth in
  let nparams = List.length m.Jir.Ast.params in
  let exit_objs =
    match res.Dataflow.input.(g.Cfg.exit_) with
    | Domain.Unreached -> OM.empty
    | Domain.Env env -> env.objs
  in
  let param_rel i =
    match OM.find_opt (Oparam i) exit_objs with
    | Some st -> st.o_rel
    | None -> rel_bottom t.fsm
  in
  (* partial relation and escape: join over every reachable point *)
  let partial = Array.make nparams (rel_bottom t.fsm) in
  let wild = Array.make nparams false in
  Array.iter
    (fun state ->
      match state with
      | Domain.Unreached -> ()
      | Domain.Env env ->
          for i = 0 to nparams - 1 do
            match OM.find_opt (Oparam i) env.objs with
            | Some st ->
                partial.(i) <- Fsm.rel_join partial.(i) st.o_rel;
                if st.o_wild then wild.(i) <- true
            | None -> ()
          done)
    res.Dataflow.input;
  let s_params =
    Array.of_list
      (List.mapi
         (fun i (ty, _) ->
           { ps_obj = (match ty with Jir.Ast.Tobj _ -> true | _ -> false);
             ps_rel = param_rel i;
             ps_partial = Fsm.rel_join (Fsm.rel_identity t.fsm) partial.(i);
             ps_wild = wild.(i) })
         m.Jir.Ast.params)
  in
  (* returned objects, from the in-state of every reachable return site *)
  let fresh : (int, Fsm.rel * bool) Hashtbl.t = Hashtbl.create 8 in
  let ret_params = ref [] in
  let ret_other = ref false in
  for node = 0 to Cfg.n_nodes g - 1 do
    match (g.Cfg.kinds.(node), res.Dataflow.input.(node)) with
    | Cfg.Stmt { kind = Jir.Ast.Return (Some e); _ }, Domain.Env env -> (
        match e with
        | Jir.Ast.Var y ->
            let b = binding env y in
            if b.b_other then ret_other := true;
            OS.iter
              (fun o ->
                match o with
                | Oparam i ->
                    if not (List.mem i !ret_params) then
                      ret_params := i :: !ret_params
                | Oalloc sid -> (
                    match OM.find_opt o env.objs with
                    | None -> ()
                    | Some st ->
                        let rel, w =
                          match Hashtbl.find_opt fresh sid with
                          | Some (r, w) ->
                              (Fsm.rel_join r st.o_rel, w || st.o_wild)
                          | None -> (st.o_rel, st.o_wild)
                        in
                        Hashtbl.replace fresh sid (rel, w)))
              b.b_objs
        | _ -> ret_other := true)
    | _ -> ()
  done;
  let s_ret_fresh =
    Hashtbl.fold (fun sid (rel, w) acc -> (sid, rel, w) :: acc) fresh []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  { s_params;
    s_ret_fresh;
    s_ret_params = List.sort compare !ret_params;
    s_ret_other = !ret_other }

(* ---------------- whole-program analysis ---------------- *)

type alloc_fact = {
  f_site : alloc_site;
  mutable f_tracked : bool;       (* received an origin somewhere *)
  mutable f_may_error : bool;     (* error state abstractly reachable *)
  mutable f_exit_bad : bool;      (* some death point with a non-accepting
                                     state: the engine could report a leak *)
  mutable f_wild : bool;          (* escaped the abstraction's view *)
  mutable f_died_normal : bool;   (* dies at some normal exit *)
  mutable f_normal_all_bad : bool;
      (* every normal death point had only non-accepting states: the
         all-paths premise of the interproc-leak lint *)
}

type result = {
  fsm : Fsm.t;
  summaries : (string, summary) Hashtbl.t;
  facts : alloc_fact list;  (* sorted by allocation sid *)
  n_scc_iterations : int;
}

let initial_states fsm =
  let v = Array.make (Fsm.n_states fsm) false in
  v.(fsm.Fsm.initial) <- true;
  v

let any_nonaccepting fsm states =
  let bad = ref false in
  Array.iteri
    (fun s live -> if live && not (Fsm.is_accepting fsm s) then bad := true)
    states;
  !bad

let all_nonaccepting fsm states =
  let any = ref false and bad = ref true in
  Array.iteri
    (fun s live ->
      if live then begin
        any := true;
        if Fsm.is_accepting fsm s then bad := false
      end)
    states;
  !any && !bad

let nonempty states = Array.exists (fun b -> b) states

let client fsm : summary Interproc.client =
  { Interproc.cl_name = "typestate-summaries";
    cl_bottom = summary_bottom fsm;
    cl_equal = summary_equal;
    cl_analyze =
      (fun ~lookup _ m ->
        let t = { fsm; lookup } in
        let g = Cfg.build m in
        summarize t g (solve_method t g)) }

let analyze (fsm : Fsm.t) (program : Jir.Ast.program) : result =
  let r = Interproc.solve (client fsm) program in
  let lookup = Interproc.lookup r in
  let sites = alloc_sites program in
  let facts : (int, alloc_fact) Hashtbl.t = Hashtbl.create 64 in
  let fact sid =
    match Hashtbl.find_opt facts sid with
    | Some f -> f
    | None ->
        let f =
          { f_site = Hashtbl.find sites sid;
            f_tracked = false;
            f_may_error = false;
            f_exit_bad = false;
            f_wild = false;
            f_died_normal = false;
            f_normal_all_bad = true }
        in
        Hashtbl.replace facts sid f;
        f
  in
  let t = { fsm; lookup } in
  let states_of st = Fsm.rel_apply st.o_rel (initial_states fsm) in
  let record_flow st sid =
    let f = fact sid in
    f.f_tracked <- true;
    if st.o_wild then f.f_wild <- true;
    let states = states_of st in
    if states.(fsm.Fsm.error) then f.f_may_error <- true
  in
  let record_death ~normal st sid =
    record_flow st sid;
    let f = fact sid in
    let states = states_of st in
    if nonempty states then begin
      if any_nonaccepting fsm states then f.f_exit_bad <- true;
      if normal then begin
        f.f_died_normal <- true;
        if not (all_nonaccepting fsm states) then f.f_normal_all_bad <- false
      end
    end
  in
  let callgraph = Jir.Callgraph.build program in
  let entries =
    List.map
      (fun (cls, m) -> Jir.Ast.qualified_name ~cls ~meth:m)
      program.Jir.Ast.entries
  in
  List.iter
    (fun (m : Jir.Ast.meth) ->
      let g = Cfg.build m in
      let res = solve_method t g in
      (* every post-effect point: the error state is absorbing, so any
         abstract visit to it survives to wherever the flow is observed *)
      Array.iter
        (fun state ->
          match state with
          | Domain.Unreached -> ()
          | Domain.Env env ->
              OM.iter
                (fun o st ->
                  match o with
                  | Oalloc sid -> record_flow st sid
                  | Oparam _ -> ())
                env.objs)
        res.Dataflow.output;
      (* death points: local objects still live at an exit of this frame *)
      let deaths node ~normal =
        match res.Dataflow.input.(node) with
        | Domain.Unreached -> ()
        | Domain.Env env ->
            OM.iter
              (fun o st ->
                match o with
                | Oalloc sid -> record_death ~normal st sid
                | Oparam _ -> ())
              env.objs
      in
      deaths g.Cfg.exit_ ~normal:true;
      deaths g.Cfg.exit_exn ~normal:false;
      (* objects returned by a callee whose result is dropped die here *)
      for node = 0 to Cfg.n_nodes g - 1 do
        match (g.Cfg.kinds.(node), res.Dataflow.input.(node)) with
        | Cfg.Stmt { kind = Jir.Ast.Expr c; _ }, Domain.Env _ -> (
            match lookup (callee_id c) with
            | Some summ ->
                List.iter
                  (fun (sid, rel, wild) ->
                    record_death ~normal:true
                      { o_rel = rel; o_wild = wild; o_multi = false }
                      sid)
                  summ.s_ret_fresh
            | None -> ())
        | _ -> ()
      done;
      (* objects a root method returns die with the program *)
      let id = Jir.Ast.meth_id m in
      if List.mem id entries || Jir.Callgraph.callers callgraph id = [] then
        match lookup id with
        | Some summ ->
            List.iter
              (fun (sid, rel, wild) ->
                record_death ~normal:true
                  { o_rel = rel; o_wild = wild; o_multi = false }
                  sid)
              summ.s_ret_fresh
        | None -> ())
    (Jir.Ast.all_methods program);
  let facts =
    Hashtbl.fold (fun _ f acc -> f :: acc) facts []
    |> List.sort (fun a b -> compare a.f_site.a_sid b.f_site.a_sid)
  in
  { fsm; summaries = r.Interproc.table; facts;
    n_scc_iterations = r.Interproc.n_scc_iterations }

(* Allocations this property can never flag: no abstract event sequence
   reaches the error state, no abstract end-of-life state is non-accepting,
   and the object never escapes the abstraction's view.  The abstraction
   joins over all paths and contexts, so the set of event sequences the
   path-sensitive engine can realize is a subset of the abstract ones —
   pruning these allocations changes no report. *)
let clean_sids (r : result) : int list =
  r.facts
  |> List.filter (fun f ->
         f.f_tracked && (not f.f_may_error) && (not f.f_exit_bad)
         && not f.f_wild)
  |> List.map (fun f -> f.f_site.a_sid)

(* ---------------- the interproc-leak lint ---------------- *)

(* Must-leak under the all-paths abstraction: the object dies at a normal
   exit, every abstract state at every normal death point is non-accepting,
   it never escapes, and it never reaches the error state (those are the
   error checker's findings, not leaks).  Every concrete execution then
   ends the object's life in a non-accepting state. *)
let must_leaks (r : result) : alloc_fact list =
  r.facts
  |> List.filter (fun f ->
         f.f_died_normal && f.f_normal_all_bad && (not f.f_wild)
         && not f.f_may_error)

let leak_diags (fsms : Fsm.t list) (program : Jir.Ast.program) :
    Lint.diag list =
  List.concat_map
    (fun fsm ->
      let r = analyze fsm program in
      List.map
        (fun f ->
          Lint.diag "interproc-leak" f.f_site.a_meth f.f_site.a_at
            (Printf.sprintf
               "%s allocated here never reaches an accepting %s state on \
                any path"
               f.f_site.a_cls fsm.Fsm.name))
        (must_leaks r))
    fsms
  |> List.sort (fun (a : Lint.diag) b ->
         compare
           (a.Lint.at.Jir.Ast.file, a.Lint.at.Jir.Ast.line, a.Lint.meth)
           (b.Lint.at.Jir.Ast.file, b.Lint.at.Jir.Ast.line, b.Lint.meth))

(* Combined interprocedural lint surface behind [grapple lint --interproc]. *)
let interproc_diags ?(on_pass = fun _ _ -> ()) ~(fsms : Fsm.t list)
    (program : Jir.Ast.program) : Lint.diag list =
  let timed name f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    on_pass name (Unix.gettimeofday () -. t0);
    r
  in
  timed "interproc-null" (fun () -> Interproc.null_diags program)
  @ timed "interproc-leak" (fun () -> leak_diags fsms program)
  |> List.sort (fun (a : Lint.diag) b ->
         compare
           (a.Lint.at.Jir.Ast.file, a.Lint.at.Jir.Ast.line, a.Lint.lint,
            a.Lint.meth)
           (b.Lint.at.Jir.Ast.file, b.Lint.at.Jir.Ast.line, b.Lint.lint,
            b.Lint.meth))

(* Deterministic rendering of a whole result, for the byte-identity test.
   Allocation sites print as class@file:line, not raw sids: sids come from
   a global counter, so two structurally identical programs built in the
   same process get different absolute values. *)
let render (r : result) : string =
  let buf = Buffer.create 1024 in
  let site_of =
    let table = Hashtbl.create 16 in
    List.iter (fun f -> Hashtbl.replace table f.f_site.a_sid f.f_site) r.facts;
    fun sid ->
      match Hashtbl.find_opt table sid with
      | Some site ->
          Printf.sprintf "%s@%s:%d" site.a_cls site.a_at.Jir.Ast.file
            site.a_at.Jir.Ast.line
      | None -> "?"
  in
  let ids =
    Hashtbl.fold (fun id _ acc -> id :: acc) r.summaries []
    |> List.sort compare
  in
  List.iter
    (fun id ->
      let s = Hashtbl.find r.summaries id in
      Buffer.add_string buf (Printf.sprintf "method %s\n" id);
      Array.iteri
        (fun i (p : param_summary) ->
          if p.ps_obj then
            Buffer.add_string buf
              (Printf.sprintf "  p%d rel=[%s] partial=[%s] wild=%b\n" i
                 (Fsm.rel_to_string r.fsm p.ps_rel)
                 (Fsm.rel_to_string r.fsm p.ps_partial)
                 p.ps_wild))
        s.s_params;
      List.iter
        (fun (sid, rel, w) ->
          Buffer.add_string buf
            (Printf.sprintf "  ret alloc:%s rel=[%s] wild=%b\n" (site_of sid)
               (Fsm.rel_to_string r.fsm rel)
               w))
        s.s_ret_fresh;
      if s.s_ret_params <> [] then
        Buffer.add_string buf
          (Printf.sprintf "  ret params=[%s]\n"
             (String.concat ","
                (List.map string_of_int s.s_ret_params)));
      if s.s_ret_other then Buffer.add_string buf "  ret other\n")
    ids;
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf
           "alloc %s in %s error=%b exit_bad=%b wild=%b leak=%b\n"
           (site_of f.f_site.a_sid) f.f_site.a_meth
           f.f_may_error f.f_exit_bad f.f_wild
           (f.f_died_normal && f.f_normal_all_bad && (not f.f_wild)
            && not f.f_may_error)))
    r.facts;
  Buffer.contents buf
