(* Null-pointer lattice: for each variable, is it definitely [null],
   definitely non-null, or unknown at a program point?  Only *definite*
   nulls are reported (dereference of a maybe-null value is not an error in
   this lint, matching the conservative null checker in the pipeline).

   The per-variable lattice is Null < Top > Nonnull; the map domain joins
   pointwise with missing keys denoting Top, and a distinguished [Unreached]
   element serves as the solver's bottom. *)

module VM = Map.Make (String)

type value = Null | Nonnull | Top

let join_value a b = if a = b then a else Top

module Domain = struct
  type t = Unreached | Env of value VM.t

  let bottom = Unreached
  let init (_ : Cfg.t) = Env VM.empty

  let equal a b =
    match (a, b) with
    | Unreached, Unreached -> true
    | Env x, Env y -> VM.equal ( = ) x y
    | _ -> false

  let join a b =
    match (a, b) with
    | Unreached, x | x, Unreached -> x
    | Env x, Env y ->
        Env
          (VM.merge
             (fun _ l r ->
               match (l, r) with
               | Some l, Some r -> (
                   match join_value l r with Top -> None | v -> Some v)
               | _ -> None)  (* missing = Top *)
             x y)

  let value_of_rhs env (r : Jir.Ast.rhs) =
    match r with
    | Jir.Ast.Rnull -> Null
    | Jir.Ast.Rnew _ -> Nonnull
    | Jir.Ast.Rexpr (Jir.Ast.Var y) ->
        Option.value ~default:Top (VM.find_opt y env)
    | Jir.Ast.Rload _ | Jir.Ast.Rcall _ | Jir.Ast.Rexpr _ -> Top

  let exc _ _ state = state

  let transfer (g : Cfg.t) node state =
    match state with
    | Unreached -> Unreached
    | Env env -> (
        match g.Cfg.kinds.(node) with
        | Cfg.Stmt { kind = Jir.Ast.Decl (_, v, Some r); _ }
        | Cfg.Stmt { kind = Jir.Ast.Assign (v, r); _ } -> (
            match value_of_rhs env r with
            | Top -> Env (VM.remove v env)
            | value -> Env (VM.add v value env))
        | Cfg.Stmt { kind = Jir.Ast.Decl (_, v, None); _ } ->
            Env (VM.remove v env)
        | Cfg.Bind (_, _, v) -> Env (VM.add v Nonnull env)
        | _ -> Env env)
end

module Solver = Dataflow.Forward (Domain)

type result = Domain.t Dataflow.result

let analyze (g : Cfg.t) : result = Solver.solve g

(* Variables dereferenced by a node: call receivers, load bases, store
   bases.  (Static calls have no receiver and dereference nothing.) *)
let dereferenced (k : Cfg.node_kind) : Jir.Ast.var list =
  match k with
  | Cfg.Stmt { kind = Jir.Ast.Expr { recv = Some v; _ }; _ } -> [ v ]
  | Cfg.Stmt { kind = Jir.Ast.Decl (_, _, Some r); _ }
  | Cfg.Stmt { kind = Jir.Ast.Assign (_, r); _ } -> (
      match r with
      | Jir.Ast.Rcall { recv = Some v; _ } -> [ v ]
      | Jir.Ast.Rload (y, _) -> [ y ]
      | _ -> [])
  | Cfg.Stmt { kind = Jir.Ast.Store (x, _, _); _ } -> [ x ]
  | _ -> []

(* Dereferences of definitely-null variables at reachable nodes. *)
let violations (g : Cfg.t) : (Jir.Ast.var * int) list =
  let r = analyze g in
  let out = ref [] in
  for node = 0 to Cfg.n_nodes g - 1 do
    match r.Dataflow.input.(node) with
    | Domain.Unreached -> ()
    | Domain.Env env ->
        List.iter
          (fun v ->
            if VM.find_opt v env = Some Null then out := (v, node) :: !out)
          (dereferenced g.Cfg.kinds.(node))
  done;
  List.sort_uniq compare !out
