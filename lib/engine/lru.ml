(* A fixed-capacity LRU map used for constraint memoization (§4.3,
   "Constraint Memoization").  Implemented as a hash table over an intrusive
   doubly-linked recency list; all operations are O(1). *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* most recently used *)
  mutable tail : ('k, 'v) node option;  (* least recently used *)
  mutable size : int;
  mutable evictions : int;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  { capacity; table = Hashtbl.create (min capacity 4096); head = None;
    tail = None; size = 0; evictions = 0 }

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> ());
  t.head <- Some node;
  if t.tail = None then t.tail <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some node ->
      unlink t node;
      push_front t node;
      Some node.value

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      t.size <- t.size - 1;
      t.evictions <- t.evictions + 1

let add t key value =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      node.value <- value;
      unlink t node;
      push_front t node
  | None ->
      if t.size >= t.capacity then evict_lru t;
      let node = { key; value; prev = None; next = None } in
      Hashtbl.replace t.table key node;
      push_front t node;
      t.size <- t.size + 1

let size t = t.size
let capacity t = t.capacity
let evictions t = t.evictions

(* Reset to the empty state, *including* the eviction tally: a cleared
   cache starts a fresh accounting epoch, so per-run stats never inherit
   another run's evictions. *)
let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.size <- 0;
  t.evictions <- 0

(* Keys from most to least recently used; for tests. *)
let keys t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head
