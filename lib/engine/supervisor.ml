(* Supervised multi-process shard runtime (ISSUE 8).

   The coordinator forks [procs] worker processes and feeds them tasks over
   the [Shardproc] frame protocol, supervising each worker with heartbeats
   and an optional per-dispatch wall deadline.  A worker that dies (nonzero
   exit, signal, closed pipe), goes silent for [max_missed_heartbeats]
   heartbeat periods, or overruns the deadline is SIGKILLed and replaced,
   and its in-flight task is re-dispatched to a fresh attempt after a
   seeded exponential backoff — restarting from whatever checkpoint state
   the task's own [run] callback persisted.  After [max_redispatch]
   re-dispatches a task degrades to [Degraded] instead of stalling the run.

   Result frames are deduplicated by (task, attempt): only the attempt the
   coordinator currently has outstanding may complete a task, so a worker
   presumed dead whose result races its SIGKILL can never double-report —
   the stale frame is counted and dropped.  Results are delivered as an
   array in task order, so the caller's canonical-order merge is
   independent of which worker ran what and of any crash schedule.

   Fork discipline: workers are forked from the coordinator's main domain
   with no spawned domains live, stdio flushed, and every other worker's
   pipe ends closed in the child.  SIGPIPE is ignored for the duration so a
   dead worker surfaces as [Closed]/EOF, never as a signal. *)

type config = {
  procs : int;               (* worker processes to keep alive *)
  heartbeat_ms : float;      (* worker heartbeat period *)
  max_missed_heartbeats : int;
      (* heartbeat periods of silence before a worker is presumed hung *)
  deadline_s : float;        (* wall deadline per dispatch; 0 = none *)
  max_redispatch : int;      (* re-dispatches per task before degrading *)
  retry_seed : int;          (* seed of the re-dispatch backoff jitter *)
  retry_base_ms : float;     (* base delay of the re-dispatch backoff *)
  kill_nth : int;
      (* SIGKILL the worker receiving the Nth assignment of the run, just
         before it starts the task (0 = off): a deterministic process-kill
         injection point for tests and CI *)
}

let default_config =
  { procs = 2;
    heartbeat_ms = 100.;
    max_missed_heartbeats = 50;
    deadline_s = 0.;
    max_redispatch = 3;
    retry_seed = 0x6a09;
    retry_base_ms = 2.;
    kill_nth = 0 }

type outcome =
  | Completed of { payload : string; slot : int; wall_s : float }
  | Degraded of string  (* deterministic reason, e.g. for a report *)

(* Same shape as the engine's [backoff_delay_s] (not referenced directly:
   the engine module sits above this one). *)
let backoff_delay_s ~seed ~base_ms ~attempt =
  let jitter =
    1. +. (float_of_int (Faults.mix3 seed 0x7e7 attempt mod 1000) /. 1000.)
  in
  base_ms /. 1000. *. (2. ** float_of_int attempt) *. jitter

type worker = {
  slot : int;
  pid : int;
  to_w : Unix.file_descr;
  from_w : Unix.file_descr;
  rd : Shardproc.reader;
  mutable last_frame : float;  (* arrival time of the last frame *)
  mutable assigned : (int * int * float) option;  (* task, attempt, start *)
}

let hb_bounds = [| 1.; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000.; 5000. |]

let run ?reg ~(config : config) ~(tasks : string array)
    ~(run_task : task:int -> attempt:int -> string) () : outcome array =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let reg = match reg with Some r -> r | None -> Obs.Registry.create () in
    let c_spawns = Obs.Registry.counter reg "supervisor.spawns" in
    let c_kills = Obs.Registry.counter reg "supervisor.kills" in
    let c_redispatch = Obs.Registry.counter reg "supervisor.redispatches" in
    let c_degraded = Obs.Registry.counter reg "supervisor.degraded" in
    let c_stale = Obs.Registry.counter reg "supervisor.stale_frames" in
    let h_hb =
      Obs.Registry.histogram ~bounds:hb_bounds reg "supervisor.heartbeat_ms"
    in
    let procs = max 1 (min config.procs n) in
    let hb_period_s = Float.max 0.001 (config.heartbeat_ms /. 1000.) in
    let silence_s = hb_period_s *. float_of_int (max 2 config.max_missed_heartbeats) in
    let results : outcome option array = Array.make n None in
    let n_done = ref 0 in
    (* (task, attempt, not_before); assignment picks the lowest-numbered
       ready task, so the caller's largest-first order is preserved *)
    let pending = ref (List.init n (fun task -> (task, 0, 0.))) in
    let workers : worker option array = Array.make procs None in
    let n_spawned = ref 0 in
    let spawn_cap = procs + ((config.max_redispatch + 1) * n) in
    let assign_seq = ref 0 in
    let old_sigpipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ | Sys_error _ -> None
    in
    let restore_sigpipe () =
      match old_sigpipe with
      | Some b -> ( try Sys.set_signal Sys.sigpipe b with _ -> ())
      | None -> ()
    in
    let spawn slot =
      (* the child's heap is a snapshot of ours: flush anything buffered so
         the copy can't re-emit it *)
      flush stdout;
      flush stderr;
      let wr_r, wr_w = Unix.pipe () in
      let fr_r, fr_w = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
          (* child: drop the coordinator ends and every sibling's pipes *)
          (try Unix.close wr_w with Unix.Unix_error _ -> ());
          (try Unix.close fr_r with Unix.Unix_error _ -> ());
          Array.iter
            (function
              | Some (w : worker) ->
                  (try Unix.close w.to_w with Unix.Unix_error _ -> ());
                  (try Unix.close w.from_w with Unix.Unix_error _ -> ())
              | None -> ())
            workers;
          Shardproc.worker_main ~slot ~hb_period_s ~in_fd:wr_r ~out_fd:fr_w
            ~run:run_task;
          Unix._exit 0
      | pid ->
          (try Unix.close wr_r with Unix.Unix_error _ -> ());
          (try Unix.close fr_w with Unix.Unix_error _ -> ());
          Unix.set_nonblock fr_r;
          incr n_spawned;
          Obs.Registry.incr c_spawns;
          Obs.Trace.instant ~cat:"shard"
            ~args:[ ("slot", Obs.Trace.Int slot); ("pid", Obs.Trace.Int pid) ]
            "shard.spawn";
          workers.(slot) <-
            Some
              { slot; pid; to_w = wr_w; from_w = fr_r;
                rd = Shardproc.reader (); last_frame = Unix.gettimeofday ();
                assigned = None }
    in
    let reap (w : worker) =
      (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
      (try Unix.close w.to_w with Unix.Unix_error _ -> ());
      (try Unix.close w.from_w with Unix.Unix_error _ -> ())
    in
    (* Kill [w], re-queue its in-flight attempt (or degrade the task), and
       fork a replacement into the same slot when work remains. *)
    let handle_death (w : worker) now =
      workers.(w.slot) <- None;
      reap w;
      Obs.Registry.incr c_kills;
      Obs.Trace.instant ~cat:"shard"
        ~args:[ ("slot", Obs.Trace.Int w.slot); ("pid", Obs.Trace.Int w.pid) ]
        "shard.kill";
      (match w.assigned with
      | Some (task, attempt, _) when results.(task) = None ->
          if attempt >= config.max_redispatch then begin
            results.(task) <-
              Some
                (Degraded
                   (Printf.sprintf
                      "instance %s lost its worker process on %d consecutive \
                       dispatches"
                      tasks.(task) (attempt + 1)));
            incr n_done;
            Obs.Registry.incr c_degraded
          end
          else begin
            let delay =
              backoff_delay_s ~seed:config.retry_seed
                ~base_ms:config.retry_base_ms ~attempt
            in
            pending := (task, attempt + 1, now +. delay) :: !pending;
            Obs.Registry.incr c_redispatch;
            Obs.Trace.instant ~cat:"shard"
              ~args:[ ("task", Obs.Trace.Str tasks.(task));
                      ("attempt", Obs.Trace.Int (attempt + 1)) ]
              "shard.redispatch"
          end
      | _ -> ());
      if !n_done < n && !n_spawned < spawn_cap then spawn w.slot
    in
    let live () =
      Array.to_list workers |> List.filter_map (fun w -> w)
    in
    (* Hand the lowest-numbered ready pending task to [w]. *)
    let try_assign (w : worker) now =
      let ready =
        List.filter (fun (_, _, nb) -> nb <= now) !pending
        |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
      in
      match ready with
      | [] -> ()
      | (task, attempt, _) :: _ ->
          pending :=
            List.filter (fun (t, a, _) -> (t, a) <> (task, attempt)) !pending;
          incr assign_seq;
          let self_kill = config.kill_nth > 0 && !assign_seq = config.kill_nth in
          w.assigned <- Some (task, attempt, now);
          (try
             Shardproc.write_frame w.to_w
               (Shardproc.Assign { task; attempt; self_kill })
           with Shardproc.Closed | Unix.Unix_error _ -> handle_death w now)
    in
    let shutdown () =
      List.iter
        (fun (w : worker) ->
          (try Shardproc.write_frame w.to_w Shardproc.Shutdown
           with Shardproc.Closed | Unix.Unix_error _ -> ());
          workers.(w.slot) <- None;
          reap w)
        (live ())
    in
    Fun.protect
      ~finally:(fun () ->
        shutdown ();
        restore_sigpipe ())
      (fun () ->
        for slot = 0 to procs - 1 do
          spawn slot
        done;
        while !n_done < n do
          if Interrupt.requested () then raise Interrupt.Interrupted;
          let now = Unix.gettimeofday () in
          (* keep every idle worker busy *)
          List.iter
            (fun (w : worker) ->
              if w.assigned = None then try_assign w now)
            (live ());
          let fds = List.map (fun (w : worker) -> w.from_w) (live ()) in
          let readable =
            if fds = [] then []
            else
              match Unix.select fds [] [] (hb_period_s /. 2.) with
              | r, _, _ -> r
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
          in
          let now = Unix.gettimeofday () in
          List.iter
            (fun (w : worker) ->
              if List.memq w.from_w readable then begin
                let frames, eof = Shardproc.drain w.rd w.from_w in
                List.iter
                  (fun (f : Shardproc.to_coordinator) ->
                    match f with
                    | Shardproc.Hello _ -> w.last_frame <- now
                    | Shardproc.Heartbeat _ ->
                        Obs.Registry.observe h_hb
                          ((now -. w.last_frame) *. 1000.);
                        w.last_frame <- now
                    | Shardproc.Done { task; attempt; payload } -> (
                        w.last_frame <- now;
                        match w.assigned with
                        | Some (t, a, start)
                          when t = task && a = attempt
                               && results.(task) = None ->
                            results.(task) <-
                              Some
                                (Completed
                                   { payload; slot = w.slot;
                                     wall_s = now -. start });
                            incr n_done;
                            w.assigned <- None
                        | _ ->
                            (* a result from an attempt we no longer have
                               outstanding: never merged twice *)
                            Obs.Registry.incr c_stale))
                  frames;
                if eof then handle_death w now
              end)
            (live ());
          (* deadline and heartbeat supervision *)
          let now = Unix.gettimeofday () in
          List.iter
            (fun (w : worker) ->
              let overdue =
                match w.assigned with
                | Some (_, _, start) ->
                    config.deadline_s > 0. && now -. start > config.deadline_s
                | None -> false
              in
              let silent = now -. w.last_frame > silence_s in
              if overdue || silent then handle_death w now)
            (live ());
          (* every worker dead with work outstanding (spawn cap exhausted
             mid-loop): degrade what remains rather than spin forever *)
          if live () = [] && !n_done < n && !n_spawned >= spawn_cap then
            List.iter
              (fun (task, attempt, _) ->
                if results.(task) = None then begin
                  results.(task) <-
                    Some
                      (Degraded
                         (Printf.sprintf
                            "instance %s lost its worker process on %d \
                             consecutive dispatches"
                            tasks.(task) (attempt + 1)));
                  incr n_done;
                  Obs.Registry.incr c_degraded
                end)
              !pending
        done);
    Array.map
      (function
        | Some o -> o
        | None -> Degraded "supervisor lost track of the task")
      results
  end
