(* Deterministic fault injection for the storage layer.

   A fault plan is a seeded description of which storage operations fail and
   how.  The plan is installed process-wide; the storage primitives consult
   it at each operation, so every layer above (engine retries, pipeline
   supervision, checkpoint/resume) can be exercised against reproducible
   failures.  Two classes of injected event:

   - [Injected] simulates a recoverable operation failure (EIO, ENOSPC, a
     torn write): the retry machinery is expected to absorb it.
   - [Crash] simulates the process being killed at a crash point (around a
     rename, or at a checkpoint boundary): nothing may catch it except a
     test harness standing in for process supervision; recovery happens via
     [--resume] in a fresh run.

   All decisions are pure functions of (seed, per-kind operation counter),
   so a plan replays identically across runs. *)

type kind =
  | Fail_read             (* raise before any bytes are read *)
  | Fail_write            (* raise before any bytes are written *)
  | Short_write           (* persist a truncated temp file, then raise *)
  | Crash_before_rename   (* kill between temp write and publish *)
  | Crash_after_rename    (* kill just after publish *)
  | Crash_checkpoint      (* kill at a checkpoint boundary *)

type directive =
  | Nth of kind * int  (* fire on the Nth operation of the matching class *)
  | Rate of float      (* fail reads/writes with this seeded probability *)

type plan = {
  seed : int;
  directives : directive list;
  mutable n_reads : int;
  mutable n_writes : int;
  mutable n_renames : int;
  mutable n_checkpoints : int;
  mutable n_injected : int;  (* Injected faults fired (crashes excluded) *)
}

exception Injected of string
exception Crash of string

let make ?(seed = 1) directives =
  { seed; directives; n_reads = 0; n_writes = 0; n_renames = 0;
    n_checkpoints = 0; n_injected = 0 }

(* ---------------- plan syntax ----------------

   Comma-separated [key=value] directives, e.g.
     "seed=42,rate=0.05"
     "fail-write=3,short-write=5,crash-checkpoint=2"                       *)

let parse (spec : string) : plan =
  let seed = ref 1 and directives = ref [] in
  let fail fmt = Printf.ksprintf invalid_arg ("Faults.parse: " ^^ fmt) in
  String.split_on_char ',' spec
  |> List.iter (fun item ->
         let item = String.trim item in
         if item <> "" then
           match String.index_opt item '=' with
           | None -> fail "missing '=' in %S" item
           | Some i ->
               let key = String.sub item 0 i in
               let value = String.sub item (i + 1) (String.length item - i - 1) in
               let int_v () =
                 match int_of_string_opt value with
                 | Some n when n > 0 -> n
                 | _ -> fail "%s wants a positive integer, got %S" key value
               in
               (match key with
               | "seed" -> seed := int_v ()
               | "rate" -> (
                   match float_of_string_opt value with
                   | Some r when r >= 0. && r <= 1. ->
                       directives := Rate r :: !directives
                   | _ -> fail "rate wants a float in [0, 1], got %S" value)
               | "fail-read" -> directives := Nth (Fail_read, int_v ()) :: !directives
               | "fail-write" -> directives := Nth (Fail_write, int_v ()) :: !directives
               | "short-write" -> directives := Nth (Short_write, int_v ()) :: !directives
               | "crash-before-rename" ->
                   directives := Nth (Crash_before_rename, int_v ()) :: !directives
               | "crash-after-rename" ->
                   directives := Nth (Crash_after_rename, int_v ()) :: !directives
               | "crash-checkpoint" ->
                   directives := Nth (Crash_checkpoint, int_v ()) :: !directives
               | _ -> fail "unknown directive %S" key));
  make ~seed:!seed (List.rev !directives)

(* ---------------- the installed plan ----------------

   The active plan is *domain-local*: each domain sees (and advances) its
   own plan, so the parallel instance scheduler can give every checking
   instance a private fault stream whose decisions depend only on that
   instance's own operation history — never on how instances interleave
   across workers.  The main domain keeps the process-level plan installed
   by the CLI or a test; worker domains start with none until the scheduler
   installs a derived plan for the instance they are about to run. *)

let active_key : plan option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let active () = !(Domain.DLS.get active_key)
let install p = Domain.DLS.get active_key := Some p
let clear () = Domain.DLS.get active_key := None

(* The calling domain's plan, for capturing a spec to derive from. *)
let current () : plan option = active ()

let injected_count () =
  match active () with Some p -> p.n_injected | None -> 0

(* ---------------- deterministic decisions ---------------- *)

(* splitmix-style avalanche of (seed, stream tag, counter); also used by the
   retry backoff for its seeded jitter *)
let mix3 a b c =
  let z = (a * 0x9E3779B1) + (b * 0x85EBCA6B) + (c * 0xC2B2AE35) in
  let z = (z lxor (z lsr 15)) * 0x2545F491 in
  let z = (z lxor (z lsr 13)) * 0x5EB2D8C1 in
  (z lxor (z lsr 16)) land 0x3FFFFFFF

(* A fresh plan with [base]'s directives, zeroed counters, and a seed mixed
   with [salt]: the per-instance plans of the parallel scheduler.  Keying
   the stream off a stable instance identity (not a worker slot) is what
   makes a run's fault decisions — and therefore its reports and fault
   counters — byte-identical at every worker count. *)
let derive (base : plan) ~salt = make ~seed:(mix3 base.seed 0xd3e salt) base.directives

(* Stable salt for [derive]: FNV-1a over the instance's name. *)
let salt_of_string (s : string) : int =
  let h = ref 0x811C9DC5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    s;
  !h

(* ---------------- storage-op observation (tests) ----------------

   [observer], when set, is called on every storage read and write with the
   operation and path — plan or no plan installed.  [scope] is a
   domain-local tag the scheduler sets to the instance a worker is
   currently running, so an observer can attribute each operation; the
   isolation stress test uses the pair to prove no partition file is ever
   touched by two workers. *)

type op = Op_read | Op_write

let observer : (op -> string -> unit) option ref = ref None
let set_observer f = observer := f

let scope_key : string option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_scope s = Domain.DLS.get scope_key := s
let scope () = !(Domain.DLS.get scope_key)

let observe op path =
  match !observer with None -> () | Some f -> f op path

let rate_of p =
  List.fold_left
    (fun acc d -> match d with Rate r -> Float.max acc r | Nth _ -> acc)
    0. p.directives

let rate_hit p ~stream ~count =
  let r = rate_of p in
  r > 0. && float_of_int (mix3 p.seed stream count mod 1_000_000) < r *. 1_000_000.

let nth_hit p kind count =
  List.exists
    (function Nth (k, n) -> k = kind && n = count | Rate _ -> false)
    p.directives

let inject p msg =
  p.n_injected <- p.n_injected + 1;
  Obs.Trace.instant ~cat:"faults"
    ~args:[ ("msg", Obs.Trace.Str msg); ("nth", Obs.Trace.Int p.n_injected) ]
    "fault.injected";
  raise (Injected msg)

(* ---------------- hooks called by the storage layer ---------------- *)

let on_read ~path =
  observe Op_read path;
  match active () with
  | None -> ()
  | Some p ->
      p.n_reads <- p.n_reads + 1;
      if nth_hit p Fail_read p.n_reads || rate_hit p ~stream:1 ~count:p.n_reads
      then
        inject p
          (Printf.sprintf "injected read fault #%d on %s" p.n_reads
             (Filename.basename path))

(* [`Short] instructs the caller to persist only a truncated prefix of the
   temp file and then fail, simulating a write torn by ENOSPC or a crash. *)
let on_write ~path : [ `Ok | `Short ] =
  observe Op_write path;
  match active () with
  | None -> `Ok
  | Some p ->
      p.n_writes <- p.n_writes + 1;
      let name = Filename.basename path in
      if nth_hit p Fail_write p.n_writes then
        inject p (Printf.sprintf "injected write fault #%d on %s" p.n_writes name)
      else if nth_hit p Short_write p.n_writes then `Short
      else if rate_hit p ~stream:2 ~count:p.n_writes then
        if mix3 p.seed 3 p.n_writes land 1 = 0 then
          inject p
            (Printf.sprintf "injected write fault #%d on %s" p.n_writes name)
        else `Short
      else `Ok

let before_rename ~path =
  match active () with
  | None -> ()
  | Some p ->
      p.n_renames <- p.n_renames + 1;
      if nth_hit p Crash_before_rename p.n_renames then
        raise
          (Crash
             (Printf.sprintf "crash before rename #%d of %s" p.n_renames
                (Filename.basename path)))

let after_rename ~path =
  match active () with
  | None -> ()
  | Some p ->
      if nth_hit p Crash_after_rename p.n_renames then
        raise
          (Crash
             (Printf.sprintf "crash after rename #%d of %s" p.n_renames
                (Filename.basename path)))

let on_checkpoint () =
  match active () with
  | None -> ()
  | Some p ->
      p.n_checkpoints <- p.n_checkpoints + 1;
      if nth_hit p Crash_checkpoint p.n_checkpoints then
        raise (Crash (Printf.sprintf "crash at checkpoint #%d" p.n_checkpoints))
