(* Cooperative interruption for long-running engine work (ISSUE 8).

   A signal handler (or the shard supervisor) sets the process-wide flag;
   the engine polls it at its budget checkpoints — the same boundaries that
   make budget aborts safe — and raises [Interrupted].  At that instant the
   last checkpoint manifest is already durable (manifests are written after
   every completed pair, before the poll), so an interrupted run is always
   resumable with [run ~resume:true].

   The flag lives in its own module so both the engine functor and the
   process supervisor can poll it without a dependency cycle. *)

exception Interrupted

let flag = Atomic.make false
let request () = Atomic.set flag true
let requested () = Atomic.get flag
let reset () = Atomic.set flag false

(* Poll point: raise if an interrupt was requested. *)
let check () = if Atomic.get flag then raise Interrupted
