(* Versioned checkpoint manifest for the engine.

   After every scheduled partition pair the engine persists its partition
   metadata and scheduler frontier here, so a killed run can resume from the
   last completed pair instead of from zero.  Format (text, line-based):

     grapple-manifest 2
     next_pid N
     max_vertex N
     n_seed_edges N
     part <pid> <lo> <hi> <version> <approx_edges> <file-basename>
     ...
     done <pid-min> <pid-max> <version-a> <version-b> <count-a> <count-b>
     ...
     end <fnv1a-32 of everything above>

   Version 2 (ISSUE 10) records, per processed pair, the partitions'
   deduplicated edge counts at the moment the pair reached its local
   fixpoint.  Partition files only ever grow by appending behind that
   prefix (flushes preserve load order; splits mint fresh pids), so on
   reprocessing the engine joins only the edges past those counts — the
   cross-pair delta — instead of re-joining everything.  Version-1
   manifests (and their boxed-record partition files) fail validation and
   fall back to a fresh run, which overwrites the stale files.

   The trailing checksum covers the whole body, and the file is written
   atomically (temp + rename, via [Storage]), so a reader sees either a
   complete, self-consistent manifest or — after damage or a version bump —
   nothing, in which case the engine falls back to a fresh run.  Partition
   files are flushed *before* the manifest that references them, so any
   manifest that validates only ever points at durable partition state
   (possibly older than the files, never newer; reprocessing a pair the
   manifest missed is idempotent). *)

type part = {
  pid : int;
  lo : int;
  hi : int;              (* source-vertex interval [lo, hi) *)
  version : int;
  approx_edges : int;
  file : string;         (* basename, resolved against the workdir *)
}

type t = {
  next_pid : int;
  max_vertex : int;
  n_seed_edges : int;
  parts : part list;
  (* the scheduler frontier:
       ((pid_min, pid_max), (version_a, version_b, count_a, count_b))
     for every processed pair, exactly the engine's [processed] table; the
     counts are the partitions' deduplicated edge counts at the pair's last
     local fixpoint *)
  processed : ((int * int) * (int * int * int * int)) list;
}

let format_version = 2

let path ~workdir = Filename.concat workdir "manifest"

let render (m : t) : string =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "grapple-manifest %d\n" format_version;
  Printf.bprintf buf "next_pid %d\n" m.next_pid;
  Printf.bprintf buf "max_vertex %d\n" m.max_vertex;
  Printf.bprintf buf "n_seed_edges %d\n" m.n_seed_edges;
  List.iter
    (fun p ->
      Printf.bprintf buf "part %d %d %d %d %d %s\n" p.pid p.lo p.hi p.version
        p.approx_edges p.file)
    m.parts;
  List.iter
    (fun ((a, b), (va, vb, ca, cb)) ->
      Printf.bprintf buf "done %d %d %d %d %d %d\n" a b va vb ca cb)
    m.processed;
  let body = Buffer.contents buf in
  Printf.sprintf "%send %d\n" body (Storage.checksum_string body)

let save ~workdir (m : t) : unit =
  Storage.write_string_atomic ~path:(path ~workdir) (render m)

(* [None] on a missing, damaged, or wrong-version manifest — the caller
   starts fresh.  Never raises on bad contents. *)
let load ~workdir : t option =
  let file = path ~workdir in
  Faults.on_read ~path:file;
  if not (Sys.file_exists file) then None
  else begin
    let ic = open_in_bin file in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    match String.rindex_opt (String.trim contents) '\n' with
    | None -> None
    | Some i ->
        let body = String.sub contents 0 (i + 1) in
        let last =
          String.trim (String.sub contents (i + 1) (String.length contents - i - 1))
        in
        let checksum_ok =
          match String.split_on_char ' ' last with
          | [ "end"; sum ] ->
              int_of_string_opt sum = Some (Storage.checksum_string body)
          | _ -> false
        in
        if not checksum_ok then None
        else begin
          let next_pid = ref 0
          and max_vertex = ref 0
          and n_seed_edges = ref 0
          and parts = ref []
          and processed = ref []
          and header_ok = ref false
          and bad = ref false in
          let int s = match int_of_string_opt s with
            | Some n -> n
            | None -> bad := true; 0
          in
          String.split_on_char '\n' body
          |> List.iter (fun line ->
                 match String.split_on_char ' ' (String.trim line) with
                 | [ "" ] -> ()
                 | [ "grapple-manifest"; v ] ->
                     header_ok := int_of_string_opt v = Some format_version
                 | [ "next_pid"; n ] -> next_pid := int n
                 | [ "max_vertex"; n ] -> max_vertex := int n
                 | [ "n_seed_edges"; n ] -> n_seed_edges := int n
                 | [ "part"; pid; lo; hi; version; approx; file ] ->
                     parts :=
                       { pid = int pid; lo = int lo; hi = int hi;
                         version = int version; approx_edges = int approx; file }
                       :: !parts
                 | [ "done"; a; b; va; vb; ca; cb ] ->
                     processed :=
                       ((int a, int b), (int va, int vb, int ca, int cb))
                       :: !processed
                 | _ -> bad := true);
          if !bad || not !header_ok then None
          else
            Some
              { next_pid = !next_pid; max_vertex = !max_vertex;
                n_seed_edges = !n_seed_edges; parts = List.rev !parts;
                processed = List.rev !processed }
        end
  end
