(* Process-wide domain budget.

   Two layers of the system want true parallelism: the pipeline's instance
   scheduler runs checking instances on a fixed worker pool, and inside each
   instance the engine's SMT batch fan-out ([Engine.solve_batch]) spawns
   short-lived solver domains.  Left uncoordinated, the two multiply — W
   workers each spawning S solver domains oversubscribes the machine W×S.

   This module is the shared cap both layers draw from.  The cap counts
   *live domains including the initial one*; a layer that wants to fan out
   [acquire]s up to the slots it could use, spawns exactly what it was
   granted (possibly zero — then it degrades to sequential execution in the
   domain it already owns), and [release]s the slots when its domains are
   joined.  Grants never block: parallelism is an optimization here, never
   a correctness requirement, so a layer finding the budget exhausted just
   proceeds sequentially.

   [spawn] is a counting wrapper around [Domain.spawn]; every spawner in the
   tree goes through it so tests can pin the total number of domains ever
   created by a run. *)

let default_cap = max 1 (Domain.recommended_domain_count ())

(* slots still grantable; the initial domain's slot is pre-subtracted *)
let available = Atomic.make (default_cap - 1)

(* cumulative count of domains spawned through [spawn], for tests *)
let spawned_total = Atomic.make 0

let set_cap n =
  let n = max 1 n in
  Atomic.set available (n - 1)

(* Grant between 0 and [max] domain slots, atomically. *)
let rec acquire ~max:want =
  if want <= 0 then 0
  else
    let avail = Atomic.get available in
    if avail <= 0 then 0
    else
      let grant = min want avail in
      if Atomic.compare_and_set available avail (avail - grant) then grant
      else acquire ~max:want

let release n = if n > 0 then ignore (Atomic.fetch_and_add available n)

(* Unconditionally take [n] slots — the instance scheduler's workers have
   priority over solver fan-out.  [available] may go negative; [acquire]
   then grants nothing until the slots are released, which is exactly the
   intended degradation: engines inside worker domains solve sequentially. *)
let reserve n = if n > 0 then ignore (Atomic.fetch_and_add available (-n))

let spawn f =
  Atomic.incr spawned_total;
  Domain.spawn f

let n_spawned () = Atomic.get spawned_total
