(* Grapple's single-machine, disk-based graph engine (§4.3).

   The engine performs constraint-guided dynamic transitive closure: the
   input graph is partitioned by source-vertex intervals into on-disk edge
   partitions; each scheduling step loads a pair of partitions, joins every
   pair of consecutive edges whose labels compose under the client grammar
   and whose conjoined path constraint is satisfiable, and flushes new edges
   to the partitions owning their source vertices.  Oversized partitions are
   split eagerly so that any two partitions fit in the memory budget.
   Constraint results are memoized in an LRU cache keyed by path encoding.

   The engine is a functor over the label logic, instantiated once with the
   pointer-analysis grammar (phase 1) and once with the dataflow grammar
   (phase 2). *)

module Metrics = Metrics
module Lru = Lru
module Storage = Storage
module Faults = Faults
module Manifest = Manifest
module Domains = Domains
module Interrupt = Interrupt
module Shardproc = Shardproc
module Supervisor = Supervisor
module Encoding = Pathenc.Encoding
module Formula = Smt.Formula
module Solver = Smt.Solver

module type LABEL_LOGIC = sig
  type t

  val equal : t -> t -> bool
  val to_int : t -> int
  val of_int : int -> t
  val compose : t -> t -> t option
  val unary : t -> t list
  val mirror : t -> t option
  val is_result : t -> bool
  val pp : Format.formatter -> t -> unit
end

type config = {
  workdir : string;
  max_edges_per_partition : int;  (* memory budget, expressed in edges *)
  target_partitions : int;        (* initial partitioning *)
  cache_capacity : int;
  cache_enabled : bool;
  feasibility_enabled : bool;
      (* false turns off path sensitivity: every composition succeeds *)
  max_path_elements : int;
      (* compositions whose encodings exceed this many elements are dropped,
         bounding closure over recursive clone groups; 0 = unlimited *)
  max_encodings_per_key : int;
      (* distinct path encodings kept per (src, dst, label); further feasible
         paths between the same endpoints with the same label are witnesses
         of the same fact and are dropped; 0 = unlimited *)
  solver_domains : int;
      (* worker domains for parallel constraint solving ("multiple
         edge-induction threads" of §4.3); 1 = sequential.  Decode/solve
         timers are merged into the solve timer when > 1. *)
  max_retries : int;
      (* transient storage faults absorbed per operation before the failure
         propagates to the caller *)
  retry_base_ms : float;  (* base delay of the exponential backoff *)
  retry_seed : int;       (* seed of the deterministic backoff jitter *)
  edge_budget : int;
      (* abort with [Budget_exhausted] once this many transitive edges have
         been added; 0 = unlimited *)
  wall_budget_s : float;
      (* abort with [Budget_exhausted] after this much wall-clock time in
         [run]; 0 = unlimited *)
}

(* A budget abort.  State on disk stays consistent (the last checkpoint is
   durable), so the caller may retry with [run ~resume:true], extend the
   budget, or degrade the instance. *)
exception Budget_exhausted of string

(* A cooperative interrupt (SIGINT/SIGTERM, or the shard supervisor shutting
   down).  Raised from the same poll points as budget aborts, so the last
   checkpoint manifest is durable and the run is resumable. *)
exception Interrupted = Interrupt.Interrupted

(* Deterministic backoff: [base * 2^attempt], scaled by a seeded jitter in
   [1, 2) so concurrent instances don't retry in lockstep, yet a given
   (seed, attempt) always sleeps the same amount. *)
let backoff_delay_s ~seed ~base_ms ~attempt =
  let jitter =
    1. +. (float_of_int (Faults.mix3 seed 0x7e7 attempt mod 1000) /. 1000.)
  in
  base_ms /. 1000. *. (2. ** float_of_int attempt) *. jitter

(* mkdir -p *)
let rec ensure_dir dir =
  if dir <> "" && dir <> "/" && not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let default_config ~workdir =
  { workdir;
    max_edges_per_partition = 200_000;
    target_partitions = 4;
    cache_capacity = 65_536;
    cache_enabled = true;
    feasibility_enabled = true;
    max_path_elements = 64;
    max_encodings_per_key = 8;
    solver_domains = 1;
    max_retries = 3;
    retry_base_ms = 2.;
    retry_seed = 0x6a09;
    edge_budget = 0;
    wall_budget_s = 0. }

module Make (L : LABEL_LOGIC) = struct
  type edge = { src : int; dst : int; label : L.t; enc : Encoding.t }

  type pmeta = {
    pid : int;
    lo : int;
    hi : int;  (* owns source vertices in [lo, hi) *)
    path : string;
    mutable version : int;
    mutable approx_edges : int;  (* includes not-yet-deduplicated appends *)
  }

  type loaded = {
    meta : pmeta;
    mutable all : edge list;
    by_src : (int, edge list ref) Hashtbl.t;
    by_dst : (int, edge list ref) Hashtbl.t;
    present : (int * int * int * Encoding.t, unit) Hashtbl.t;
    key_counts : (int * int * int, int) Hashtbl.t;
        (* encodings already kept per (src, dst, label) *)
    mutable count : int;
    mutable dirty : bool;  (* contents differ from the on-disk file *)
  }

  type t = {
    config : config;
    decode : Encoding.t -> Formula.t;
    metrics : Metrics.t;
    cache : (Encoding.t, bool) Lru.t;
    mutable parts : pmeta list;  (* sorted by [lo] *)
    mutable next_pid : int;
    mutable seeds : edge list;   (* only before [run] *)
    mutable n_seed_edges : int;
    mutable max_vertex : int;
    mutable ran : bool;
    mutable run_start : float;  (* wall-budget reference point, set by [run] *)
  }

  let create ?(config : config option) ~decode ~workdir () =
    let config =
      match config with Some c -> c | None -> default_config ~workdir
    in
    ensure_dir config.workdir;
    let metrics = Metrics.create () in
    (* a writer that died mid-[atomic_write] leaves an orphaned temp file;
       sweep it now so it can never shadow live state *)
    let stale = Storage.sweep_stale_temps ~dir:config.workdir in
    if stale > 0 then Metrics.add metrics.Metrics.stale_temps stale;
    { config;
      decode;
      metrics;
      cache = Lru.create (max 16 config.cache_capacity);
      parts = [];
      next_pid = 0;
      seeds = [];
      n_seed_edges = 0;
      max_vertex = 0;
      ran = false;
      run_start = 0. }

  (* Sync pull-style counts (the LRU's eviction tally) into the registry on
     read.  [set] makes repeated reads idempotent. *)
  let metrics t =
    Metrics.set_count t.metrics.Metrics.cache_evictions (Lru.evictions t.cache);
    t.metrics

  (* ---------------- fault absorption and budgets ---------------- *)

  (* Absorb transient storage faults: injected faults and real I/O errors
     are retried with deterministic exponential backoff up to
     [max_retries] times, then propagated.  Simulated crashes
     ([Faults.Crash]) are never caught — a dead process doesn't retry. *)
  let with_retries t f =
    let rec go attempt =
      try f ()
      with (Faults.Injected _ | Sys_error _) as exn ->
        if attempt >= t.config.max_retries then raise exn
        else begin
          Metrics.incr t.metrics.Metrics.retries;
          Obs.Trace.instant ~cat:"storage"
            ~args:[ ("attempt", Obs.Trace.Int attempt) ]
            "storage.retry";
          Unix.sleepf
            (backoff_delay_s ~seed:t.config.retry_seed
               ~base_ms:t.config.retry_base_ms ~attempt);
          go (attempt + 1)
        end
    in
    go 0

  let check_budgets t =
    Interrupt.check ();
    let c = t.config in
    let edges_added = Metrics.count t.metrics.Metrics.edges_added in
    if c.edge_budget > 0 && edges_added > c.edge_budget then
      raise
        (Budget_exhausted
           (Printf.sprintf "edge budget exhausted (%d > %d)" edges_added
              c.edge_budget));
    if
      c.wall_budget_s > 0. && t.run_start > 0.
      && Unix.gettimeofday () -. t.run_start > c.wall_budget_s
    then
      raise
        (Budget_exhausted
           (Printf.sprintf "wall-clock budget exhausted (%.3fs)" c.wall_budget_s))

  (* ---------------- feasibility with memoization ---------------- *)

  let solve_one decode enc =
    match Solver.check (decode enc) with
    | Solver.Sat | Solver.Unknown -> true
    | Solver.Unsat -> false

  (* Decide a batch of (deduplicated, cache-missed) encodings, fanning the
     work out over worker domains when configured.  Decoding and solving are
     both pure over read-only state (the ICFET, the formula algebra), and
     the solver's statistics counters are atomic, so the verdicts — and the
     counter totals — are independent of how the batch is split.

     The fan-out draws its extra domains from the process-wide
     [Domains] budget: when the instance scheduler already owns every slot
     (this engine is running inside a worker domain), [acquire] grants
     nothing and the batch degrades to sequential solving in the calling
     domain instead of oversubscribing the machine. *)
  let solve_batch t (encs : Encoding.t list) : (Encoding.t * bool) list =
    let n = List.length encs in
    let domains = t.config.solver_domains in
    (* spawning a domain costs ~an OS thread; only fan out when the batch
       amortizes it *)
    if domains <= 1 || n < 16 * domains then
      List.map (fun enc -> (enc, solve_one t.decode enc)) encs
    else begin
      let grant = Domains.acquire ~max:(domains - 1) in
      if grant = 0 then
        List.map (fun enc -> (enc, solve_one t.decode enc)) encs
      else
        Fun.protect
          ~finally:(fun () -> Domains.release grant)
          (fun () ->
            let arr = Array.of_list encs in
            let lanes = grant + 1 in
            let chunk = (n + lanes - 1) / lanes in
            let work lo =
              let hi = min n (lo + chunk) in
              let out = ref [] in
              for i = hi - 1 downto lo do
                out := (arr.(i), solve_one t.decode arr.(i)) :: !out
              done;
              !out
            in
            let spawned =
              List.init grant (fun k ->
                  Domains.spawn (fun () -> work ((k + 1) * chunk)))
            in
            let mine = work 0 in
            (* concatenate chunks in index order: the result list preserves
               the input order whatever the grant was, so downstream
               consumers (LRU insertion order in particular) behave
               identically at every degree of fan-out *)
            mine @ List.concat_map Domain.join spawned)
    end

  let feasible t (enc : Encoding.t) : bool =
    if not t.config.feasibility_enabled then true
    else begin
      let m = t.metrics in
      (* a disabled cache is never consulted, so it must not count lookups:
         otherwise stats report a 0% hit rate for a cache that is off *)
      let cached =
        if t.config.cache_enabled then begin
          Metrics.incr m.Metrics.cache_lookups;
          Lru.find t.cache enc
        end
        else None
      in
      match cached with
      | Some answer ->
          Metrics.incr m.Metrics.cache_hits;
          answer
      | None ->
          let formula = Metrics.time m `Decode (fun () -> t.decode enc) in
          let answer =
            Metrics.time m `Solve (fun () ->
                match Solver.check formula with
                | Solver.Sat | Solver.Unknown -> true
                | Solver.Unsat -> false)
          in
          Metrics.incr m.Metrics.constraints_solved;
          if t.config.cache_enabled then Lru.add t.cache enc answer;
          answer
    end

  (* ---------------- seed edges and closure helpers ---------------- *)

  (* The unary (e.g. New => FlowsTo) and mirror (FlowsTo => reversed
     FlowsToBar) consequences of an edge; they share the edge's path, so no
     new constraint check is needed. *)
  let consequences (e : edge) : edge list =
    let unary =
      List.map (fun l -> { e with label = l }) (L.unary e.label)
    in
    let mirrors =
      List.filter_map
        (fun (d : edge) ->
          match L.mirror d.label with
          | Some l ->
              Some { src = d.dst; dst = d.src; label = l; enc = Encoding.rev d.enc }
          | None -> None)
        (e :: unary)
    in
    unary @ mirrors

  let add_seed t ~src ~dst ~label ~enc =
    if t.ran then invalid_arg "Engine.add_seed: engine already ran";
    let e = { src; dst; label; enc } in
    t.max_vertex <- max t.max_vertex (max src dst);
    t.seeds <- e :: t.seeds

  (* ---------------- partition bookkeeping ---------------- *)

  let part_path t pid = Filename.concat t.config.workdir
      (Printf.sprintf "p%04d.edges" pid)

  let fresh_pid t =
    let pid = t.next_pid in
    t.next_pid <- pid + 1;
    pid

  let owner t (v : int) : pmeta =
    match List.find_opt (fun p -> v >= p.lo && v < p.hi) t.parts with
    | Some p -> p
    | None ->
        invalid_arg (Printf.sprintf "Engine.owner: vertex %d out of range" v)

  let edge_key (e : edge) = (e.src, e.dst, L.to_int e.label, e.enc)

  let to_raw (e : edge) : Storage.raw_edge =
    { Storage.src = e.src; dst = e.dst; label = L.to_int e.label; enc = e.enc }

  let of_raw (r : Storage.raw_edge) : edge =
    { src = r.Storage.src; dst = r.Storage.dst;
      label = L.of_int r.Storage.label; enc = r.Storage.enc }

  let load t (meta : pmeta) : loaded =
    Obs.Trace.with_span ~cat:"engine"
      ~args:[ ("pid", Obs.Trace.Int meta.pid) ]
      "engine.load"
    @@ fun () ->
    let outcome =
      Metrics.time t.metrics `Io (fun () ->
          with_retries t (fun () -> Storage.read_file ~path:meta.path))
    in
    let raw = outcome.Storage.edges in
    Metrics.add t.metrics.Metrics.bytes_read outcome.Storage.bytes;
    let l =
      { meta; all = []; by_src = Hashtbl.create 1024;
        by_dst = Hashtbl.create 1024; present = Hashtbl.create 4096;
        key_counts = Hashtbl.create 4096; count = 0; dirty = false }
    in
    let n_raw = List.length raw in
    List.iter
      (fun r ->
        let e = of_raw r in
        let key = edge_key e in
        if not (Hashtbl.mem l.present key) then begin
          Hashtbl.replace l.present key ();
          let ckey = (e.src, e.dst, L.to_int e.label) in
          Hashtbl.replace l.key_counts ckey
            (1 + Option.value ~default:0 (Hashtbl.find_opt l.key_counts ckey));
          l.all <- e :: l.all;
          l.count <- l.count + 1;
          let push tbl k =
            match Hashtbl.find_opt tbl k with
            | Some r -> r := e :: !r
            | None -> Hashtbl.replace tbl k (ref [ e ])
          in
          push l.by_src e.src;
          push l.by_dst e.dst
        end)
      raw;
    if l.count <> n_raw then l.dirty <- true;  (* appended duplicates *)
    (match outcome.Storage.corrupt with
    | None -> ()
    | Some c ->
        (* the valid prefix survives; mark dirty so the next flush rewrites
           the repaired file.  Any record lost with the damaged tail is
           rederived when the pair is reprocessed (the checkpoint manifest
           predates the damage). *)
        Logs.warn (fun k ->
            k "partition %s: %a — kept %d-record prefix"
              (Filename.basename meta.path) Storage.pp_corruption c l.count);
        Metrics.incr t.metrics.Metrics.corrupt_reads;
        Obs.Trace.instant ~cat:"storage"
          ~args:[ ("pid", Obs.Trace.Int meta.pid);
                  ("kept_records", Obs.Trace.Int l.count) ]
          "storage.corrupt_recovered";
        l.dirty <- true);
    l

  (* Insert an edge into a loaded partition; true if it is new.  An edge is
     rejected (treated as already known) when its (src, dst, label) key has
     already accumulated [max_encodings_per_key] distinct path encodings:
     further encodings witness the same analysis fact. *)
  let insert t (l : loaded) (e : edge) : bool =
    let key = edge_key e in
    if Hashtbl.mem l.present key then false
    else begin
      let ckey = (e.src, e.dst, L.to_int e.label) in
      let kept = Option.value ~default:0 (Hashtbl.find_opt l.key_counts ckey) in
      let cap = t.config.max_encodings_per_key in
      if cap > 0 && kept >= cap then false
      else begin
        Hashtbl.replace l.present key ();
        Hashtbl.replace l.key_counts ckey (kept + 1);
        l.all <- e :: l.all;
        l.count <- l.count + 1;
        l.dirty <- true;
        let push tbl k =
          match Hashtbl.find_opt tbl k with
          | Some r -> r := e :: !r
          | None -> Hashtbl.replace tbl k (ref [ e ])
        in
        push l.by_src e.src;
        push l.by_dst e.dst;
        true
      end
    end

  (* Write a loaded partition back, splitting it if it outgrew the memory
     budget (eager repartitioning, §4.3). *)
  let flush t (l : loaded) : unit =
    Obs.Trace.with_span ~cat:"engine"
      ~args:[ ("pid", Obs.Trace.Int l.meta.pid);
              ("edges", Obs.Trace.Int l.count);
              ("dirty", Obs.Trace.Bool l.dirty) ]
      "engine.flush"
    @@ fun () ->
    let write_meta (meta : pmeta) edges =
      let bytes =
        Metrics.time t.metrics `Io (fun () ->
            with_retries t (fun () ->
                Storage.write_file ~path:meta.path (List.rev_map to_raw edges)))
      in
      Metrics.add t.metrics.Metrics.bytes_written bytes;
      meta.approx_edges <- List.length edges
    in
    let needs_split =
      l.count > t.config.max_edges_per_partition && l.meta.hi - l.meta.lo >= 2
    in
    if not needs_split then begin
      if l.dirty then begin
        write_meta l.meta l.all;
        l.meta.version <- l.meta.version + 1
      end
    end
    else begin
      (* split at the weighted median source vertex *)
      let srcs = List.map (fun e -> e.src) l.all in
      let sorted = List.sort compare srcs in
      let mid_src = List.nth sorted (l.count / 2) in
      let cut =
        (* cut strictly inside (lo, hi) so both halves are non-empty ranges *)
        let c = max (l.meta.lo + 1) (min mid_src (l.meta.hi - 1)) in
        c
      in
      let left, right = List.partition (fun e -> e.src < cut) l.all in
      let mk lo hi edges =
        let pid = fresh_pid t in
        let meta =
          { pid; lo; hi; path = part_path t pid; version = 0;
            approx_edges = 0 }
        in
        write_meta meta edges;
        meta
      in
      let ml = mk l.meta.lo cut left in
      let mr = mk cut l.meta.hi right in
      Storage.remove_file ~path:l.meta.path;
      t.parts <-
        List.sort
          (fun a b -> compare a.lo b.lo)
          (ml :: mr :: List.filter (fun p -> p.pid <> l.meta.pid) t.parts);
      Metrics.incr t.metrics.Metrics.repartitions;
      Obs.Trace.instant ~cat:"engine"
        ~args:[ ("split_pid", Obs.Trace.Int l.meta.pid);
                ("cut", Obs.Trace.Int cut);
                ("left_pid", Obs.Trace.Int ml.pid);
                ("right_pid", Obs.Trace.Int mr.pid) ]
        "engine.repartition"
    end

  (* ---------------- preprocessing ---------------- *)

  (* Partition the seed edges into [target_partitions] intervals of roughly
     equal edge counts and write them to disk. *)
  let preprocess t =
    let seeds =
      (* close seeds under unary/mirror, deduplicated *)
      let seen = Hashtbl.create 4096 in
      let out = ref [] in
      let add e =
        let key = edge_key e in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          out := e :: !out
        end
      in
      List.iter
        (fun e ->
          add e;
          List.iter add (consequences e))
        t.seeds;
      !out
    in
    t.seeds <- [];
    t.n_seed_edges <- List.length seeds;
    let sorted = List.sort (fun a b -> compare a.src b.src) seeds in
    let n = List.length sorted in
    let k = max 1 t.config.target_partitions in
    let per = max 1 ((n + k - 1) / k) in
    (* choose interval boundaries at multiples of [per], aligned to source
       vertex changes so an interval never splits a vertex *)
    let bounds = ref [] in
    let () =
      let i = ref 0 in
      let last_src = ref (-1) in
      List.iter
        (fun e ->
          if !i > 0 && !i mod per = 0 && e.src <> !last_src then
            bounds := e.src :: !bounds;
          last_src := e.src;
          incr i)
        sorted
    in
    let bounds = List.rev !bounds in
    let lo_list = 0 :: bounds in
    let hi_list = bounds @ [ t.max_vertex + 1 ] in
    let metas =
      List.map2
        (fun lo hi ->
          let pid = fresh_pid t in
          { pid; lo; hi; path = part_path t pid; version = 0;
            approx_edges = 0 })
        lo_list hi_list
    in
    List.iter
      (fun meta ->
        let edges =
          List.filter (fun e -> e.src >= meta.lo && e.src < meta.hi) sorted
        in
        let bytes =
          Metrics.time t.metrics `Io (fun () ->
              with_retries t (fun () ->
                  Storage.write_file ~path:meta.path (List.map to_raw edges)))
        in
        Metrics.add t.metrics.Metrics.bytes_written bytes;
        meta.approx_edges <- List.length edges)
      metas;
    t.parts <- metas

  (* ---------------- the edge-pair-centric computation ---------------- *)

  (* Join the loaded partitions to a local fixpoint.  [route] receives edges
     owned by partitions that are not loaded. *)
  (* How many queue entries are drained per batch before feasibility checks
     are resolved (in parallel when [solver_domains] > 1). *)
  let batch_size = 1024

  let local_fixpoint t (loadeds : loaded list) ~route =
    let m = t.metrics in
    let find_loaded v =
      List.find_opt (fun l -> v >= l.meta.lo && v < l.meta.hi) loadeds
    in
    let queue = Queue.create () in
    List.iter (fun l -> List.iter (fun e -> Queue.add e queue) l.all) loadeds;
    let add_new (e : edge) =
      let enqueue_if_new l e = if insert t l e then Queue.add e queue in
      match find_loaded e.src with
      | Some l ->
          if insert t l e then begin
            Metrics.incr m.Metrics.edges_added;
            Queue.add e queue;
            List.iter
              (fun d ->
                match find_loaded d.src with
                | Some l' -> enqueue_if_new l' d
                | None -> route d)
              (consequences e)
          end
      | None ->
          route e;
          List.iter
            (fun d ->
              match find_loaded d.src with
              | Some l' -> enqueue_if_new l' d
              | None -> route d)
            (consequences e)
    in
    (* candidates of one batch, awaiting a feasibility verdict *)
    let candidates : edge list ref = ref [] in
    let try_pair (e1 : edge) (e2 : edge) =
      match L.compose e1.label e2.label with
      | None -> ()
      | Some l3 -> (
          Metrics.incr m.Metrics.edges_considered;
          match Encoding.compose_normalized e1.enc e2.enc with
          | enc ->
              let cap = t.config.max_path_elements in
              if cap = 0 || Encoding.n_elements enc <= cap then
                candidates :=
                  { src = e1.src; dst = e2.dst; label = l3; enc } :: !candidates
          | exception Encoding.Incomposable -> ())
    in
    (* resolve the collected candidates: cache hits immediately, the misses
       as one (possibly parallel) solving batch *)
    let resolve_batch () =
      let cands = List.rev !candidates in
      candidates := [];
      if cands <> [] then begin
        if not t.config.feasibility_enabled then List.iter add_new cands
        else begin
          let unknown = Hashtbl.create 64 in
          List.iter
            (fun (e : edge) ->
              (* as in [feasible]: a disabled cache counts no lookups *)
              match
                if t.config.cache_enabled then begin
                  Metrics.incr m.Metrics.cache_lookups;
                  Lru.find t.cache e.enc
                end
                else None
              with
              | Some _ -> Metrics.incr m.Metrics.cache_hits
              | None ->
                  if not (Hashtbl.mem unknown e.enc) then
                    Hashtbl.replace unknown e.enc ())
            cands;
          let to_solve = Hashtbl.fold (fun enc () acc -> enc :: acc) unknown [] in
          let n_to_solve = List.length to_solve in
          let batch_t0 = Unix.gettimeofday () in
          let solved =
            Obs.Trace.with_span ~cat:"smt"
              ~args:[ ("batch_size", Obs.Trace.Int n_to_solve);
                      ("solver_domains", Obs.Trace.Int t.config.solver_domains) ]
              "smt.solve_batch"
            @@ fun () ->
            if t.config.solver_domains <= 1 then
              List.map
                (fun enc ->
                  let formula =
                    Metrics.time m `Decode (fun () -> t.decode enc)
                  in
                  ( enc,
                    Metrics.time m `Solve (fun () ->
                        match Solver.check formula with
                        | Solver.Sat | Solver.Unknown -> true
                        | Solver.Unsat -> false) ))
                to_solve
            else
              (* parallel: decode+solve timed together under the solve
                 timer (per-domain timers cannot be split) *)
              Metrics.time m `Solve (fun () -> solve_batch t to_solve)
          in
          if n_to_solve > 0 then
            Metrics.observe_batch m ~n:n_to_solve
              ~dt:(Unix.gettimeofday () -. batch_t0);
          Metrics.add m.Metrics.constraints_solved (List.length solved);
          let verdicts = Hashtbl.create 64 in
          List.iter
            (fun (enc, ok) ->
              Hashtbl.replace verdicts enc ok;
              if t.config.cache_enabled then Lru.add t.cache enc ok)
            solved;
          List.iter
            (fun (e : edge) ->
              let ok =
                match Hashtbl.find_opt verdicts e.enc with
                | Some ok -> ok
                | None ->
                    (* encoding not in this batch (e.g. cache-evicted
                       between collection and application): fall back to
                       the single-encoding path *)
                    feasible t e.enc
              in
              if ok then add_new e)
            cands
        end
      end
    in
    Metrics.time m `Join (fun () ->
        while not (Queue.is_empty queue) do
          (* budgets are polled per batch so a runaway pair cannot exceed
             its allowance by more than one batch of work *)
          check_budgets t;
          let drained = ref 0 in
          while (not (Queue.is_empty queue)) && !drained < batch_size do
            incr drained;
            let e = Queue.pop queue in
            (* as the left edge of a pair *)
            (match find_loaded e.dst with
            | Some l -> (
                match Hashtbl.find_opt l.by_src e.dst with
                | Some outs -> List.iter (fun e2 -> try_pair e e2) !outs
                | None -> ())
            | None -> ());
            (* as the right edge of a pair *)
            List.iter
              (fun l ->
                match Hashtbl.find_opt l.by_dst e.src with
                | Some ins -> List.iter (fun e1 -> try_pair e1 e) !ins
                | None -> ())
              loadeds
          done;
          resolve_batch ()
        done)

  (* Append externally-routed edges to the partitions owning them.  Owners
     are resolved here, after any splits performed by [flush], so an edge is
     never appended to a stale partition. *)
  let flush_external t (pending : edge list) =
    let by_owner : (int, edge list ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun e ->
        let meta = owner t e.src in
        match Hashtbl.find_opt by_owner meta.pid with
        | Some r -> r := e :: !r
        | None -> Hashtbl.replace by_owner meta.pid (ref [ e ]))
      pending;
    Hashtbl.iter
      (fun pid edges ->
        match List.find_opt (fun p -> p.pid = pid) t.parts with
        | None -> assert false
        | Some meta ->
            let bytes =
              Metrics.time t.metrics `Io (fun () ->
                  with_retries t (fun () ->
                      Storage.append_file ~path:meta.path
                        (List.map to_raw !edges)))
            in
            Metrics.add t.metrics.Metrics.bytes_written bytes;
            meta.approx_edges <- meta.approx_edges + List.length !edges;
            meta.version <- meta.version + 1)
      by_owner

  (* Process one scheduled pair of partitions. *)
  let process_pair t (pa : pmeta) (pb : pmeta) : unit =
    Obs.Trace.with_span ~cat:"engine"
      ~args:[ ("pa", Obs.Trace.Int pa.pid); ("pb", Obs.Trace.Int pb.pid) ]
      "engine.pair"
    @@ fun () ->
    Metrics.incr t.metrics.Metrics.pairs_processed;
    let loadeds =
      if pa.pid = pb.pid then [ load t pa ] else [ load t pa; load t pb ]
    in
    let pending = ref [] in
    let route (e : edge) =
      pending := e :: !pending;
      Metrics.incr t.metrics.Metrics.edges_added
    in
    local_fixpoint t loadeds ~route;
    List.iter (fun l -> flush t l) loadeds;
    flush_external t !pending

  (* ---------------- checkpointing ---------------- *)

  (* Persist partition metadata and the scheduler frontier.  Called after
     every completed pair, *after* that pair's partitions and routed appends
     are durable, so a validating manifest never references state newer than
     the files.  (The converse — files newer than the manifest — is safe:
     the missed pair is simply reprocessed, and reprocessing is idempotent
     because loads and inserts deduplicate.)  The crash-at-checkpoint fault
     hook fires after the save: the manifest is durable at that instant,
     which is exactly the boundary [--resume] guarantees byte-identical
     results from. *)
  let checkpoint t (processed : (int * int, int * int) Hashtbl.t) =
    let parts =
      List.map
        (fun p ->
          { Manifest.pid = p.pid; lo = p.lo; hi = p.hi; version = p.version;
            approx_edges = p.approx_edges; file = Filename.basename p.path })
        t.parts
    in
    let frontier =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) processed []
      |> List.sort compare
    in
    let m =
      { Manifest.next_pid = t.next_pid; max_vertex = t.max_vertex;
        n_seed_edges = t.n_seed_edges; parts; processed = frontier }
    in
    Obs.Trace.with_span ~cat:"engine"
      ~args:[ ("parts", Obs.Trace.Int (List.length parts)) ]
      "engine.checkpoint"
      (fun () ->
        Metrics.time t.metrics `Io (fun () ->
            with_retries t (fun () -> Manifest.save ~workdir:t.config.workdir m)));
    Faults.on_checkpoint ()

  (* Restore partition metadata and the scheduler frontier from the last
     checkpoint; false when there is none (or it failed validation). *)
  let try_restore t (processed : (int * int, int * int) Hashtbl.t) : bool =
    match with_retries t (fun () -> Manifest.load ~workdir:t.config.workdir) with
    | None -> false
    | Some m
      when not
             (List.for_all
                (fun (p : Manifest.part) ->
                  Sys.file_exists
                    (Filename.concat t.config.workdir p.Manifest.file))
                m.Manifest.parts) ->
        (* a checksum-valid manifest referencing a vanished partition file
           describes state that no longer exists: start fresh rather than
           resume into silently-empty partitions *)
        false
    | Some m ->
        t.parts <-
          List.map
            (fun (p : Manifest.part) ->
              { pid = p.Manifest.pid; lo = p.Manifest.lo; hi = p.Manifest.hi;
                path = Filename.concat t.config.workdir p.Manifest.file;
                version = p.Manifest.version;
                approx_edges = p.Manifest.approx_edges })
            m.Manifest.parts
          |> List.sort (fun a b -> compare a.lo b.lo);
        t.next_pid <- m.Manifest.next_pid;
        t.max_vertex <- max t.max_vertex m.Manifest.max_vertex;
        t.n_seed_edges <- m.Manifest.n_seed_edges;
        t.seeds <- [];  (* the partitions already hold the preprocessed seeds *)
        List.iter (fun (k, v) -> Hashtbl.replace processed k v)
          m.Manifest.processed;
        true

  (* Run to global fixpoint.  With [~resume:true], continue from the
     workdir's checkpoint manifest when one validates (fresh run
     otherwise): partitions and frontier are restored and only pairs whose
     versions advanced since the checkpoint are (re)processed.  The closure
     is confluent — facts accumulate monotonically and deduplicate — so a
     resumed run converges to the same fixpoint as an uninterrupted one. *)
  let run ?(resume = false) t =
    if t.ran then invalid_arg "Engine.run: already ran";
    t.ran <- true;
    t.run_start <- Unix.gettimeofday ();
    let processed : (int * int, int * int) Hashtbl.t = Hashtbl.create 256 in
    let restored = resume && try_restore t processed in
    if not restored then begin
      preprocess t;
      checkpoint t processed
    end;
    let continue = ref true in
    while !continue do
      continue := false;
      (* snapshot: [t.parts] changes under our feet when partitions split *)
      let snapshot = t.parts in
      List.iteri
        (fun i pa ->
          List.iteri
            (fun j pb ->
              if j >= i then begin
                let alive p = List.exists (fun q -> q.pid = p.pid) t.parts in
                if alive pa && alive pb then begin
                  let key = (min pa.pid pb.pid, max pa.pid pb.pid) in
                  let vers = (pa.version, pb.version) in
                  let needs =
                    match Hashtbl.find_opt processed key with
                    | None -> true
                    | Some v -> v <> vers
                  in
                  if needs then begin
                    continue := true;
                    process_pair t pa pb;
                    (* versions may have advanced during processing *)
                    let cur p =
                      match List.find_opt (fun q -> q.pid = p.pid) t.parts with
                      | Some q -> q.version
                      | None -> -1
                    in
                    Hashtbl.replace processed key (cur pa, cur pb);
                    checkpoint t processed;
                    check_budgets t
                  end
                end
              end)
            snapshot)
        snapshot
    done

  (* ---------------- results ---------------- *)

  let n_partitions t = List.length t.parts
  let n_seed_edges t = t.n_seed_edges

  (* Exact total edge count: loads each partition (deduplicating). *)
  let fold_edges t f acc =
    List.fold_left
      (fun acc meta ->
        let l = load t meta in
        List.fold_left (fun acc e -> f acc e) acc l.all)
      acc t.parts

  let total_edges t = fold_edges t (fun n _ -> n + 1) 0

  let iter_result_edges t f =
    fold_edges t (fun () e -> if L.is_result e.label then f e) ()

  (* Delete the working directory contents created by this engine. *)
  let cleanup t =
    List.iter
      (fun p ->
        Storage.remove_file ~path:p.path;
        Storage.remove_file ~path:(p.path ^ ".tmp"))
      t.parts;
    let manifest = Manifest.path ~workdir:t.config.workdir in
    Storage.remove_file ~path:manifest;
    Storage.remove_file ~path:(manifest ^ ".tmp")
end
