(* Grapple's single-machine, disk-based graph engine (§4.3).

   The engine performs constraint-guided dynamic transitive closure: the
   input graph is partitioned by source-vertex intervals into on-disk edge
   partitions; each scheduling step loads a pair of partitions, joins every
   pair of consecutive edges whose labels compose under the client grammar
   and whose conjoined path constraint is satisfiable, and flushes new edges
   to the partitions owning their source vertices.  Oversized partitions are
   split eagerly so that any two partitions fit in the memory budget.
   Constraint results are memoized in an LRU cache keyed by path encoding.

   Loaded partitions are flat int-packed edge buffers ([Edgebuf]): 4-word
   records over a [Bigarray], with path encodings interned in a side pool.
   The join runs semi-naively: per superstep, only the edges appended since
   the previous superstep (the delta) are sort-merge-joined against the
   partitions' standing sorted indexes, so settled edges are never re-paired.
   The same scheme extends across pairs — the checkpoint manifest records
   each partition's deduplicated edge count at every pair's last local
   fixpoint, and reprocessing a pair starts its delta there (valid because
   partition files only grow by appending behind that prefix).

   The engine is a functor over the label logic, instantiated once with the
   pointer-analysis grammar (phase 1) and once with the dataflow grammar
   (phase 2). *)

module Metrics = Metrics
module Lru = Lru
module Storage = Storage
module Edgebuf = Edgebuf
module Faults = Faults
module Manifest = Manifest
module Domains = Domains
module Interrupt = Interrupt
module Shardproc = Shardproc
module Supervisor = Supervisor
module Encoding = Pathenc.Encoding
module Formula = Smt.Formula
module Solver = Smt.Solver

module type LABEL_LOGIC = sig
  type t

  val equal : t -> t -> bool
  val to_int : t -> int
  val of_int : int -> t
  val compose : t -> t -> t option

  val compose_code : int -> int -> int
  (** [compose] on the dense integer codes, allocation-free for the
      int-packed join loop; [-1] means "no production".  Must agree with
      [compose] through [to_int]/[of_int]. *)

  val unary : t -> t list
  val mirror : t -> t option
  val is_result : t -> bool
  val pp : Format.formatter -> t -> unit
end

type config = {
  workdir : string;
  max_edges_per_partition : int;  (* memory budget, expressed in edges *)
  target_partitions : int;        (* initial partitioning *)
  cache_capacity : int;
  cache_enabled : bool;
  feasibility_enabled : bool;
      (* false turns off path sensitivity: every composition succeeds *)
  max_path_elements : int;
      (* compositions whose encodings exceed this many elements are dropped,
         bounding closure over recursive clone groups; 0 = unlimited *)
  max_encodings_per_key : int;
      (* distinct path encodings kept per (src, dst, label); further feasible
         paths between the same endpoints with the same label are witnesses
         of the same fact and are dropped; 0 = unlimited *)
  solver_domains : int;
      (* worker domains for parallel constraint solving ("multiple
         edge-induction threads" of §4.3); 1 = sequential.  Decode/solve
         timers are merged into the solve timer when > 1. *)
  max_retries : int;
      (* transient storage faults absorbed per operation before the failure
         propagates to the caller *)
  retry_base_ms : float;  (* base delay of the exponential backoff *)
  retry_seed : int;       (* seed of the deterministic backoff jitter *)
  edge_budget : int;
      (* abort with [Budget_exhausted] once this many transitive edges have
         been added; 0 = unlimited *)
  wall_budget_s : float;
      (* abort with [Budget_exhausted] after this much wall-clock time in
         [run]; 0 = unlimited *)
}

(* A budget abort.  State on disk stays consistent (the last checkpoint is
   durable), so the caller may retry with [run ~resume:true], extend the
   budget, or degrade the instance. *)
exception Budget_exhausted of string

(* A cooperative interrupt (SIGINT/SIGTERM, or the shard supervisor shutting
   down).  Raised from the same poll points as budget aborts, so the last
   checkpoint manifest is durable and the run is resumable. *)
exception Interrupted = Interrupt.Interrupted

(* Deterministic backoff: [base * 2^attempt], scaled by a seeded jitter in
   [1, 2) so concurrent instances don't retry in lockstep, yet a given
   (seed, attempt) always sleeps the same amount. *)
let backoff_delay_s ~seed ~base_ms ~attempt =
  let jitter =
    1. +. (float_of_int (Faults.mix3 seed 0x7e7 attempt mod 1000) /. 1000.)
  in
  base_ms /. 1000. *. (2. ** float_of_int attempt) *. jitter

(* mkdir -p *)
let rec ensure_dir dir =
  if dir <> "" && dir <> "/" && not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let default_config ~workdir =
  { workdir;
    max_edges_per_partition = 200_000;
    target_partitions = 4;
    cache_capacity = 65_536;
    cache_enabled = true;
    feasibility_enabled = true;
    max_path_elements = 64;
    max_encodings_per_key = 8;
    solver_domains = 1;
    max_retries = 3;
    retry_base_ms = 2.;
    retry_seed = 0x6a09;
    edge_budget = 0;
    wall_budget_s = 0. }

module Make (L : LABEL_LOGIC) = struct
  type edge = { src : int; dst : int; label : L.t; enc : Encoding.t }
  (* the boxed view, used at the API boundary (seeds, results, consequence
     expansion); the join loop itself works on int-packed [Edgebuf] records *)

  type pmeta = {
    pid : int;
    lo : int;
    hi : int;  (* owns source vertices in [lo, hi) *)
    path : string;
    mutable version : int;
    mutable approx_edges : int;  (* includes not-yet-deduplicated appends *)
  }

  (* A loaded partition.  [buf] holds the deduplicated edges in file order
     (load order, then insertions); [present] and [key_counts] key edges by
     the *canonical pool id* of their encoding ([Edgebuf.canon]), so
     membership is pure int hashing — candidate bytes pay one string lookup
     ([Edgebuf.find_bytes]) to reach id space, and everything after that
     never touches the bytes again.  [idx_src] and [idx_dst] are sorted
     edge-index arrays over the settled prefix [0, indexed): everything at
     or past [indexed] is the join delta of the next superstep. *)
  type loaded = {
    meta : pmeta;
    buf : Edgebuf.t;
    present : (int * int * int * int, unit) Hashtbl.t;
    key_counts : (int * int * int, int) Hashtbl.t;
        (* encodings already kept per (src, dst, label) *)
    mutable indexed : int;
    mutable idx_src : int array;  (* sorted by (src, insertion index) *)
    mutable idx_dst : int array;  (* sorted by (dst, insertion index) *)
    mutable dirty : bool;  (* contents differ from the on-disk file *)
  }

  (* An edge routed to a partition that is not loaded; flushed in batch by
     [flush_external]. *)
  type pending = {
    p_src : int;
    p_dst : int;
    p_label : int;
    p_bytes : string;
    p_enc : Encoding.t;
  }

  type t = {
    config : config;
    decode : Encoding.t -> Formula.t;
    metrics : Metrics.t;
    cache : (string, bool) Lru.t;
        (* feasibility verdicts keyed by canonical encoding wire bytes —
           one flat string hash per probe instead of a deep structural
           hash of the encoding *)
    mutable resident : (int * loaded) list;
        (* pid -> loaded partitions known to be in sync with their files;
           at most the two partitions of the current pair, so the memory
           budget ("any two partitions fit") is unchanged.  The scheduler
           holds one partition fixed across its inner loop, so residency
           turns half of all pair loads into no-ops. *)
    mutable parts : pmeta list;  (* sorted by [lo] *)
    mutable next_pid : int;
    mutable seeds : edge list;   (* only before [run] *)
    mutable n_seed_edges : int;
    mutable max_vertex : int;
    mutable ran : bool;
    mutable run_start : float;  (* wall-budget reference point, set by [run] *)
  }

  let create ?(config : config option) ~decode ~workdir () =
    let config =
      match config with Some c -> c | None -> default_config ~workdir
    in
    ensure_dir config.workdir;
    let metrics = Metrics.create () in
    (* a writer that died mid-[atomic_write] leaves an orphaned temp file;
       sweep it now so it can never shadow live state *)
    let stale = Storage.sweep_stale_temps ~dir:config.workdir in
    if stale > 0 then Metrics.add metrics.Metrics.stale_temps stale;
    { config;
      decode;
      metrics;
      cache = Lru.create (max 16 config.cache_capacity);
      resident = [];
      parts = [];
      next_pid = 0;
      seeds = [];
      n_seed_edges = 0;
      max_vertex = 0;
      ran = false;
      run_start = 0. }

  (* Sync pull-style counts (the LRU's eviction tally) into the registry on
     read.  [set] makes repeated reads idempotent. *)
  let metrics t =
    Metrics.set_count t.metrics.Metrics.cache_evictions (Lru.evictions t.cache);
    t.metrics

  (* ---------------- fault absorption and budgets ---------------- *)

  (* Absorb transient storage faults: injected faults and real I/O errors
     are retried with deterministic exponential backoff up to
     [max_retries] times, then propagated.  Simulated crashes
     ([Faults.Crash]) are never caught — a dead process doesn't retry. *)
  let with_retries t f =
    let rec go attempt =
      try f ()
      with (Faults.Injected _ | Sys_error _) as exn ->
        if attempt >= t.config.max_retries then raise exn
        else begin
          Metrics.incr t.metrics.Metrics.retries;
          Obs.Trace.instant ~cat:"storage"
            ~args:[ ("attempt", Obs.Trace.Int attempt) ]
            "storage.retry";
          Unix.sleepf
            (backoff_delay_s ~seed:t.config.retry_seed
               ~base_ms:t.config.retry_base_ms ~attempt);
          go (attempt + 1)
        end
    in
    go 0

  let check_budgets t =
    Interrupt.check ();
    let c = t.config in
    let edges_added = Metrics.count t.metrics.Metrics.edges_added in
    if c.edge_budget > 0 && edges_added > c.edge_budget then
      raise
        (Budget_exhausted
           (Printf.sprintf "edge budget exhausted (%d > %d)" edges_added
              c.edge_budget));
    if
      c.wall_budget_s > 0. && t.run_start > 0.
      && Unix.gettimeofday () -. t.run_start > c.wall_budget_s
    then
      raise
        (Budget_exhausted
           (Printf.sprintf "wall-clock budget exhausted (%.3fs)" c.wall_budget_s))

  (* ---------------- feasibility with memoization ---------------- *)

  let solve_one decode enc =
    match Solver.check (decode enc) with
    | Solver.Sat | Solver.Unknown -> true
    | Solver.Unsat -> false

  (* Decide a batch of (deduplicated, cache-missed) encodings, fanning the
     work out over worker domains when configured.  Decoding and solving are
     both pure over read-only state (the ICFET, the formula algebra), and
     the solver's statistics counters are atomic, so the verdicts — and the
     counter totals — are independent of how the batch is split.

     The fan-out draws its extra domains from the process-wide
     [Domains] budget: when the instance scheduler already owns every slot
     (this engine is running inside a worker domain), [acquire] grants
     nothing and the batch degrades to sequential solving in the calling
     domain instead of oversubscribing the machine. *)
  let solve_batch t (encs : Encoding.t list) : (Encoding.t * bool) list =
    let n = List.length encs in
    let domains = t.config.solver_domains in
    (* spawning a domain costs ~an OS thread; only fan out when the batch
       amortizes it *)
    if domains <= 1 || n < 16 * domains then
      List.map (fun enc -> (enc, solve_one t.decode enc)) encs
    else begin
      let grant = Domains.acquire ~max:(domains - 1) in
      if grant = 0 then
        List.map (fun enc -> (enc, solve_one t.decode enc)) encs
      else
        Fun.protect
          ~finally:(fun () -> Domains.release grant)
          (fun () ->
            let arr = Array.of_list encs in
            let lanes = grant + 1 in
            let chunk = (n + lanes - 1) / lanes in
            let work lo =
              let hi = min n (lo + chunk) in
              let out = ref [] in
              for i = hi - 1 downto lo do
                out := (arr.(i), solve_one t.decode arr.(i)) :: !out
              done;
              !out
            in
            let spawned =
              List.init grant (fun k ->
                  Domains.spawn (fun () -> work ((k + 1) * chunk)))
            in
            let mine = work 0 in
            (* concatenate chunks in index order: the result list preserves
               the input order whatever the grant was, so downstream
               consumers (LRU insertion order in particular) behave
               identically at every degree of fan-out *)
            mine @ List.concat_map Domain.join spawned)
    end

  (* [bytes] must be [enc]'s canonical wire bytes (the cache key). *)
  let feasible t ~(bytes : string) (enc : Encoding.t) : bool =
    if not t.config.feasibility_enabled then true
    else begin
      let m = t.metrics in
      (* a disabled cache is never consulted, so it must not count lookups:
         otherwise stats report a 0% hit rate for a cache that is off *)
      let cached =
        if t.config.cache_enabled then begin
          Metrics.incr m.Metrics.cache_lookups;
          Lru.find t.cache bytes
        end
        else None
      in
      match cached with
      | Some answer ->
          Metrics.incr m.Metrics.cache_hits;
          answer
      | None ->
          let formula = Metrics.time m `Decode (fun () -> t.decode enc) in
          let answer =
            Metrics.time m `Solve (fun () ->
                match Solver.check formula with
                | Solver.Sat | Solver.Unknown -> true
                | Solver.Unsat -> false)
          in
          Metrics.incr m.Metrics.constraints_solved;
          if t.config.cache_enabled then Lru.add t.cache bytes answer;
          answer
    end

  (* ---------------- seed edges and closure helpers ---------------- *)

  (* The unary (e.g. New => FlowsTo) and mirror (FlowsTo => reversed
     FlowsToBar) consequences of an edge; they share the edge's path, so no
     new constraint check is needed. *)
  let consequences (e : edge) : edge list =
    let unary =
      List.map (fun l -> { e with label = l }) (L.unary e.label)
    in
    let mirrors =
      List.filter_map
        (fun (d : edge) ->
          match L.mirror d.label with
          | Some l ->
              Some { src = d.dst; dst = d.src; label = l; enc = Encoding.rev d.enc }
          | None -> None)
        (e :: unary)
    in
    unary @ mirrors

  let add_seed t ~src ~dst ~label ~enc =
    if t.ran then invalid_arg "Engine.add_seed: engine already ran";
    let e = { src; dst; label; enc } in
    t.max_vertex <- max t.max_vertex (max src dst);
    t.seeds <- e :: t.seeds

  (* ---------------- partition bookkeeping ---------------- *)

  let part_path t pid = Filename.concat t.config.workdir
      (Printf.sprintf "p%04d.edges" pid)

  let fresh_pid t =
    let pid = t.next_pid in
    t.next_pid <- pid + 1;
    pid

  let owner t (v : int) : pmeta =
    match List.find_opt (fun p -> v >= p.lo && v < p.hi) t.parts with
    | Some p -> p
    | None ->
        invalid_arg (Printf.sprintf "Engine.owner: vertex %d out of range" v)

  (* Dedup key of a boxed edge: the encoding goes in as canonical wire
     bytes, so hashing the key walks one flat string instead of the whole
     encoding structure. *)
  let edge_key (e : edge) =
    (e.src, e.dst, L.to_int e.label, Encoding.to_bytes e.enc)

  let load t (meta : pmeta) : loaded =
    Obs.Trace.with_span ~cat:"engine"
      ~args:[ ("pid", Obs.Trace.Int meta.pid) ]
      "engine.load"
    @@ fun () ->
    let outcome =
      Metrics.time t.metrics `Io (fun () ->
          with_retries t (fun () -> Storage.read_flat ~path:meta.path))
    in
    Metrics.add t.metrics.Metrics.bytes_read outcome.Storage.bytes;
    let raw = outcome.Storage.buf in
    let n_raw = Edgebuf.n raw in
    let present = Hashtbl.create 4096 in
    let key_counts = Hashtbl.create 4096 in
    let count_key src dst label cid =
      Hashtbl.replace present (src, dst, label, cid) ();
      let ckey = (src, dst, label) in
      Hashtbl.replace key_counts ckey
        (1 + Option.value ~default:0 (Hashtbl.find_opt key_counts ckey))
    in
    (* first pass: membership tables, and whether the file holds exact
       duplicate records (it shouldn't — every writer deduplicates — but a
       hand-edited or legacy file must still load to a consistent state).
       Keys use the canonical pool ids the parse already built, so this
       pass never re-hashes encoding bytes. *)
    let dup = ref false in
    for i = 0 to n_raw - 1 do
      let cid = Edgebuf.canon raw (Edgebuf.enc_id raw i) in
      let key = (Edgebuf.src raw i, Edgebuf.dst raw i, Edgebuf.label raw i,
                 cid)
      in
      if Hashtbl.mem present key then dup := true
      else count_key (Edgebuf.src raw i) (Edgebuf.dst raw i)
             (Edgebuf.label raw i) cid
    done;
    let buf =
      if not !dup then raw  (* the common case: adopt the file's buffer *)
      else begin
        let b = Edgebuf.create ~capacity:(max 256 n_raw) () in
        Hashtbl.reset present;
        Hashtbl.reset key_counts;
        for i = 0 to n_raw - 1 do
          let bytes = Edgebuf.enc_bytes raw (Edgebuf.enc_id raw i) in
          let id = Edgebuf.intern_bytes b bytes in
          let key = (Edgebuf.src raw i, Edgebuf.dst raw i, Edgebuf.label raw i,
                     id)
          in
          if not (Hashtbl.mem present key) then begin
            count_key (Edgebuf.src raw i) (Edgebuf.dst raw i)
              (Edgebuf.label raw i) id;
            Edgebuf.push b ~src:(Edgebuf.src raw i) ~dst:(Edgebuf.dst raw i)
              ~label:(Edgebuf.label raw i) ~enc_id:id
          end
        done;
        b
      end
    in
    let l =
      { meta; buf; present; key_counts; indexed = 0; idx_src = [||];
        idx_dst = [||]; dirty = !dup }
    in
    (match outcome.Storage.corrupt with
    | None -> ()
    | Some c ->
        (* the valid prefix survives; mark dirty so the next flush rewrites
           the repaired file.  Any record lost with the damaged tail is
           rederived when the pair is reprocessed (the checkpoint manifest
           predates the damage). *)
        Logs.warn (fun k ->
            k "partition %s: %a — kept %d-record prefix"
              (Filename.basename meta.path) Storage.pp_corruption c
              (Edgebuf.n buf));
        Metrics.incr t.metrics.Metrics.corrupt_reads;
        Obs.Trace.instant ~cat:"storage"
          ~args:[ ("pid", Obs.Trace.Int meta.pid);
                  ("kept_records", Obs.Trace.Int (Edgebuf.n buf)) ]
          "storage.corrupt_recovered";
        l.dirty <- true);
    l

  (* ---------------- residency cache ---------------- *)

  let evict_except t pids =
    t.resident <- List.filter (fun (pid, _) -> List.mem pid pids) t.resident

  (* Load through the residency cache.  A resident partition's buffer and
     membership tables are in sync with its file (it was flushed, or never
     dirtied, when its pair completed), so a hit skips the read, the block
     parse, and the membership rebuild.  The guard on the [pmeta] identity
     drops entries that survived a restore or a metadata rebuild. *)
  let load_resident t (meta : pmeta) : loaded =
    match List.assoc_opt meta.pid t.resident with
    | Some l when l.meta == meta -> l
    | _ ->
        let l = load t meta in
        t.resident <- (meta.pid, l) :: List.remove_assoc meta.pid t.resident;
        l

  (* Insert an int-packed edge into a loaded partition; true if it is new.
     An edge is rejected (treated as already known) when its
     (src, dst, label) key has already accumulated [max_encodings_per_key]
     distinct path encodings: further encodings witness the same analysis
     fact.  [bytes] must be [enc]'s canonical wire bytes. *)
  let insert t (l : loaded) ~src ~dst ~label ~(bytes : string)
      ~(enc : Encoding.t) : bool =
    let known =
      match Edgebuf.find_bytes l.buf bytes with
      | Some cid -> Hashtbl.mem l.present (src, dst, label, cid)
      | None -> false  (* bytes nowhere in the pool: certainly a new fact *)
    in
    if known then false
    else begin
      let ckey = (src, dst, label) in
      let kept = Option.value ~default:0 (Hashtbl.find_opt l.key_counts ckey) in
      let cap = t.config.max_encodings_per_key in
      if cap > 0 && kept >= cap then false
      else begin
        (* canonical by construction: [intern_bytes] returns the existing
           binding or creates the first slot for these bytes *)
        let id = Edgebuf.intern_bytes ~decoded:enc l.buf bytes in
        Hashtbl.replace l.present (src, dst, label, id) ();
        Hashtbl.replace l.key_counts ckey (kept + 1);
        Edgebuf.push l.buf ~src ~dst ~label ~enc_id:id;
        l.dirty <- true;
        true
      end
    end

  (* ---------------- sorted edge-index arrays ---------------- *)

  (* Indexes are int arrays of edge positions, sorted by (key, position):
     the position tiebreak makes every scan order — and therefore every
     downstream insertion order — deterministic. *)

  let ids_range lo hi = Array.init (hi - lo) (fun k -> lo + k)

  let sort_ids buf keyf (ids : int array) =
    Array.sort
      (fun a b ->
        let c = compare (keyf buf a : int) (keyf buf b) in
        if c <> 0 then c else compare a b)
      ids;
    ids

  let merge_sorted buf keyf (a : int array) (b : int array) =
    let la = Array.length a and lb = Array.length b in
    if la = 0 then b
    else if lb = 0 then a
    else begin
      let out = Array.make (la + lb) 0 in
      let i = ref 0 and j = ref 0 in
      for k = 0 to la + lb - 1 do
        let take_a =
          if !i >= la then false
          else if !j >= lb then true
          else
            let c = compare (keyf buf a.(!i) : int) (keyf buf b.(!j)) in
            c < 0 || (c = 0 && a.(!i) <= b.(!j))
        in
        if take_a then begin
          out.(k) <- a.(!i);
          incr i
        end
        else begin
          out.(k) <- b.(!j);
          incr j
        end
      done;
      out
    end

  (* First position in [idx] whose key is >= [v]. *)
  let lower_bound buf keyf (idx : int array) v =
    let lo = ref 0 and hi = ref (Array.length idx) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if (keyf buf idx.(mid) : int) < v then lo := mid + 1 else hi := mid
    done;
    !lo

  (* Apply [f] to every edge position in [idx] whose key equals [v]. *)
  let scan_eq buf keyf (idx : int array) v f =
    let n = Array.length idx in
    let i = ref (lower_bound buf keyf idx v) in
    while !i < n && (keyf buf idx.(!i) : int) = v do
      f idx.(!i);
      incr i
    done

  (* Build the standing indexes over the first [upto] edges: the cross-pair
     delta start.  [upto] past the buffer (a corruption-truncated file)
     clamps to the available prefix. *)
  let prepare (l : loaded) ~upto =
    let upto = min (max upto 0) (Edgebuf.n l.buf) in
    l.idx_src <- sort_ids l.buf Edgebuf.src (ids_range 0 upto);
    l.idx_dst <- sort_ids l.buf Edgebuf.dst (ids_range 0 upto);
    l.indexed <- upto

  (* ---------------- flush paths ---------------- *)

  (* Write a loaded partition back, splitting it if it outgrew the memory
     budget (eager repartitioning, §4.3).  The buffer is already in file
     order, so an unsplit flush is one bulk serialization. *)
  let flush t (l : loaded) : unit =
    let count = Edgebuf.n l.buf in
    Obs.Trace.with_span ~cat:"engine"
      ~args:[ ("pid", Obs.Trace.Int l.meta.pid);
              ("edges", Obs.Trace.Int count);
              ("dirty", Obs.Trace.Bool l.dirty) ]
      "engine.flush"
    @@ fun () ->
    let write_meta (meta : pmeta) (buf : Edgebuf.t) =
      let bytes =
        Metrics.time t.metrics `Io (fun () ->
            with_retries t (fun () -> Storage.write_flat ~path:meta.path buf))
      in
      Metrics.add t.metrics.Metrics.bytes_written bytes;
      meta.approx_edges <- Edgebuf.n buf
    in
    let needs_split =
      count > t.config.max_edges_per_partition && l.meta.hi - l.meta.lo >= 2
    in
    if not needs_split then begin
      if l.dirty then begin
        write_meta l.meta l.buf;
        l.meta.version <- l.meta.version + 1;
        l.dirty <- false  (* back in sync with the file: residency-safe *)
      end
    end
    else begin
      (* split at the weighted median source vertex *)
      let srcs = Array.init count (fun i -> Edgebuf.src l.buf i) in
      Array.sort compare srcs;
      let mid_src = srcs.(count / 2) in
      let cut =
        (* cut strictly inside (lo, hi) so both halves are non-empty ranges *)
        max (l.meta.lo + 1) (min mid_src (l.meta.hi - 1))
      in
      let left = Edgebuf.create ~capacity:(max 256 count) () in
      let right = Edgebuf.create ~capacity:(max 256 count) () in
      for i = 0 to count - 1 do
        let target = if Edgebuf.src l.buf i < cut then left else right in
        Edgebuf.push target ~src:(Edgebuf.src l.buf i)
          ~dst:(Edgebuf.dst l.buf i) ~label:(Edgebuf.label l.buf i)
          ~enc_id:
            (Edgebuf.intern_bytes target
               (Edgebuf.enc_bytes l.buf (Edgebuf.enc_id l.buf i)))
      done;
      let mk lo hi buf =
        let pid = fresh_pid t in
        let meta =
          { pid; lo; hi; path = part_path t pid; version = 0;
            approx_edges = 0 }
        in
        write_meta meta buf;
        meta
      in
      let ml = mk l.meta.lo cut left in
      let mr = mk cut l.meta.hi right in
      Storage.remove_file ~path:l.meta.path;
      t.parts <-
        List.sort
          (fun a b -> compare a.lo b.lo)
          (ml :: mr :: List.filter (fun p -> p.pid <> l.meta.pid) t.parts);
      Metrics.incr t.metrics.Metrics.repartitions;
      Obs.Trace.instant ~cat:"engine"
        ~args:[ ("split_pid", Obs.Trace.Int l.meta.pid);
                ("cut", Obs.Trace.Int cut);
                ("left_pid", Obs.Trace.Int ml.pid);
                ("right_pid", Obs.Trace.Int mr.pid) ]
        "engine.repartition"
    end

  (* ---------------- preprocessing ---------------- *)

  (* Partition the seed edges into [target_partitions] intervals of roughly
     equal edge counts and write them to disk. *)
  let preprocess t =
    let seeds =
      (* close seeds under unary/mirror, deduplicated *)
      let seen = Hashtbl.create 4096 in
      let out = ref [] in
      let add e =
        let key = edge_key e in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          out := e :: !out
        end
      in
      List.iter
        (fun e ->
          add e;
          List.iter add (consequences e))
        t.seeds;
      !out
    in
    t.seeds <- [];
    t.n_seed_edges <- List.length seeds;
    let sorted = List.sort (fun a b -> Int.compare a.src b.src) seeds in
    let n = List.length sorted in
    let k = max 1 t.config.target_partitions in
    let per = max 1 ((n + k - 1) / k) in
    (* choose interval boundaries at multiples of [per], aligned to source
       vertex changes so an interval never splits a vertex *)
    let bounds = ref [] in
    let () =
      let i = ref 0 in
      let last_src = ref (-1) in
      List.iter
        (fun e ->
          if !i > 0 && !i mod per = 0 && e.src <> !last_src then
            bounds := e.src :: !bounds;
          last_src := e.src;
          incr i)
        sorted
    in
    let bounds = List.rev !bounds in
    let lo_list = 0 :: bounds in
    let hi_list = bounds @ [ t.max_vertex + 1 ] in
    let metas =
      List.map2
        (fun lo hi ->
          let pid = fresh_pid t in
          { pid; lo; hi; path = part_path t pid; version = 0;
            approx_edges = 0 })
        lo_list hi_list
    in
    (* one ordered pass: the metas ascend by [lo] and the seeds by [src], so
       each partition's slice is the next contiguous run of the sorted list
       (the last interval's [hi] is [max_vertex + 1], so it takes the rest) *)
    let rest = ref sorted in
    List.iter
      (fun meta ->
        let buf = Edgebuf.create () in
        let continue_ = ref true in
        while !continue_ do
          match !rest with
          | e :: tl when e.src < meta.hi ->
              rest := tl;
              Edgebuf.push_edge buf ~src:e.src ~dst:e.dst
                ~label:(L.to_int e.label) e.enc
          | _ -> continue_ := false
        done;
        let bytes =
          Metrics.time t.metrics `Io (fun () ->
              with_retries t (fun () -> Storage.write_flat ~path:meta.path buf))
        in
        Metrics.add t.metrics.Metrics.bytes_written bytes;
        meta.approx_edges <- Edgebuf.n buf)
      metas;
    t.parts <- metas

  (* ---------------- the edge-pair-centric computation ---------------- *)

  (* A composition that survived the label and encoding checks, awaiting a
     feasibility verdict. *)
  type cand = {
    c_src : int;
    c_dst : int;
    c_label : int;
    c_bytes : string;
    c_enc : Encoding.t;
  }

  (* How many candidates are collected before feasibility checks are
     resolved (in parallel when [solver_domains] > 1). *)
  let chunk_cap = 2048

  (* Join the loaded partitions to a local fixpoint, semi-naively: each
     superstep pairs only the edges appended since the last superstep (the
     delta) against the standing sorted indexes, then merges the delta in.
     Settled edges are never re-paired against each other — within a pair,
     and (via [prepare]'s cross-pair counts) across a pair's reprocessings.

     Coverage: for a delta edge e and a settled or delta partner f, the
     ordered pair (e, f) is generated exactly once —
       - e on the left: e's [dst] owner is scanned by src, settled index
         first, then that partition's own delta (so delta x delta included);
       - e on the right: every loaded partition's settled [idx_dst] is
         scanned (delta x delta already covered by the left pass).
     Edges inserted *during* a superstep land past the snapshot and join as
     the next superstep's delta.

     [route] receives edges owned by partitions that are not loaded. *)
  let local_fixpoint t (loadeds : loaded list) ~route =
    let m = t.metrics in
    let find_loaded v =
      List.find_opt (fun l -> v >= l.meta.lo && v < l.meta.hi) loadeds
    in
    (* materialize the unary/mirror consequences of a just-added edge; they
       share its (already decided) path, so no feasibility check *)
    let dispatch_consequences ~src ~dst ~label ~enc =
      let e = { src; dst; label = L.of_int label; enc } in
      List.iter
        (fun (d : edge) ->
          let dl = L.to_int d.label in
          let db = Encoding.to_bytes d.enc in
          match find_loaded d.src with
          | Some l' ->
              if insert t l' ~src:d.src ~dst:d.dst ~label:dl ~bytes:db
                   ~enc:d.enc
              then Metrics.incr m.Metrics.edges_added
          | None ->
              route
                { p_src = d.src; p_dst = d.dst; p_label = dl; p_bytes = db;
                  p_enc = d.enc })
        (consequences e)
    in
    (* a feasible candidate becomes an edge: inserted locally when a loaded
       partition owns its source (counting it once, here and only here),
       routed otherwise (routed edges are counted by [flush_external], when
       they genuinely land in their target file) *)
    let add_new ~src ~dst ~label ~bytes ~enc =
      match find_loaded src with
      | Some l ->
          if insert t l ~src ~dst ~label ~bytes ~enc then begin
            Metrics.incr m.Metrics.edges_added;
            dispatch_consequences ~src ~dst ~label ~enc
          end
      | None ->
          route { p_src = src; p_dst = dst; p_label = label; p_bytes = bytes;
                  p_enc = enc };
          dispatch_consequences ~src ~dst ~label ~enc
    in
    let chunk = ref [] in
    let chunk_n = ref 0 in
    (* resolve the collected candidates: dedup within the chunk (the same
       composition is rediscovered through every parallel witness pair),
       drop the ones that cannot materialize, then cache hits immediately
       and the misses as one (possibly parallel) solving batch *)
    let resolve_chunk () =
      if !chunk_n > 0 then begin
        (* budgets are polled per chunk so a runaway pair cannot exceed its
           allowance by more than one chunk of work *)
        check_budgets t;
        let cands = List.rev !chunk in
        chunk := [];
        chunk_n := 0;
        let seen = Hashtbl.create 256 in
        let cands =
          List.filter
            (fun c ->
              let key = (c.c_src, c.c_dst, c.c_label, c.c_bytes) in
              if Hashtbl.mem seen key then false
              else begin
                Hashtbl.replace seen key ();
                true
              end)
            cands
        in
        Metrics.add m.Metrics.edges_considered (List.length cands);
        (* don't pay for a verdict the insert would throw away: already
           present, or its (src, dst, label) key is at the witness cap *)
        let live =
          List.filter
            (fun c ->
              match find_loaded c.c_src with
              | None -> true
              | Some l ->
                  (match Edgebuf.find_bytes l.buf c.c_bytes with
                  | Some cid ->
                      not
                        (Hashtbl.mem l.present
                           (c.c_src, c.c_dst, c.c_label, cid))
                  | None -> true)
                  &&
                  let cap = t.config.max_encodings_per_key in
                  cap = 0
                  || Option.value ~default:0
                       (Hashtbl.find_opt l.key_counts
                          (c.c_src, c.c_dst, c.c_label))
                     < cap)
            cands
        in
        if live <> [] then begin
          if not t.config.feasibility_enabled then
            List.iter
              (fun c ->
                add_new ~src:c.c_src ~dst:c.c_dst ~label:c.c_label
                  ~bytes:c.c_bytes ~enc:c.c_enc)
              live
          else begin
            let unknown = Hashtbl.create 64 in
            let order = ref [] in
            List.iter
              (fun c ->
                (* as in [feasible]: a disabled cache counts no lookups *)
                match
                  if t.config.cache_enabled then begin
                    Metrics.incr m.Metrics.cache_lookups;
                    Lru.find t.cache c.c_bytes
                  end
                  else None
                with
                | Some _ -> Metrics.incr m.Metrics.cache_hits
                | None ->
                    if not (Hashtbl.mem unknown c.c_bytes) then begin
                      Hashtbl.replace unknown c.c_bytes ();
                      order := (c.c_bytes, c.c_enc) :: !order
                    end)
              live;
            let to_solve = List.rev !order in
            let n_to_solve = List.length to_solve in
            let batch_t0 = Unix.gettimeofday () in
            let solved =
              Obs.Trace.with_span ~cat:"smt"
                ~args:
                  [ ("batch_size", Obs.Trace.Int n_to_solve);
                    ("solver_domains", Obs.Trace.Int t.config.solver_domains) ]
                "smt.solve_batch"
              @@ fun () ->
              if t.config.solver_domains <= 1 then
                List.map
                  (fun (bytes, enc) ->
                    let formula =
                      Metrics.time m `Decode (fun () -> t.decode enc)
                    in
                    ( bytes,
                      Metrics.time m `Solve (fun () ->
                          match Solver.check formula with
                          | Solver.Sat | Solver.Unknown -> true
                          | Solver.Unsat -> false) ))
                  to_solve
              else
                (* parallel: decode+solve timed together under the solve
                   timer (per-domain timers cannot be split).  [solve_batch]
                   preserves input order, so the verdicts zip back onto
                   their cache keys positionally. *)
                Metrics.time m `Solve (fun () ->
                    List.map2
                      (fun (bytes, _) (_, ok) -> (bytes, ok))
                      to_solve
                      (solve_batch t (List.map snd to_solve)))
            in
            if n_to_solve > 0 then
              Metrics.observe_batch m ~n:n_to_solve
                ~dt:(Unix.gettimeofday () -. batch_t0);
            Metrics.add m.Metrics.constraints_solved (List.length solved);
            let verdicts = Hashtbl.create 64 in
            List.iter
              (fun (bytes, ok) ->
                Hashtbl.replace verdicts bytes ok;
                if t.config.cache_enabled then Lru.add t.cache bytes ok)
              solved;
            List.iter
              (fun c ->
                let ok =
                  match Hashtbl.find_opt verdicts c.c_bytes with
                  | Some ok -> ok
                  | None ->
                      (* encoding not in this batch (cache-evicted between
                         collection and application): fall back to the
                         single-encoding path *)
                      feasible t ~bytes:c.c_bytes c.c_enc
                in
                if ok then
                  add_new ~src:c.c_src ~dst:c.c_dst ~label:c.c_label
                    ~bytes:c.c_bytes ~enc:c.c_enc)
              live
          end
        end
      end
    in
    (* the join kernel: compose edge [i1] of [l1] with edge [i2] of [l2],
       entirely on unboxed ints until a production fires *)
    let try_pair (l1 : loaded) i1 (l2 : loaded) i2 =
      let code =
        L.compose_code (Edgebuf.label l1.buf i1) (Edgebuf.label l2.buf i2)
      in
      if code >= 0 then begin
        match
          Encoding.compose_normalized
            (Edgebuf.enc l1.buf (Edgebuf.enc_id l1.buf i1))
            (Edgebuf.enc l2.buf (Edgebuf.enc_id l2.buf i2))
        with
        | enc ->
            let cap = t.config.max_path_elements in
            if cap = 0 || Encoding.n_elements enc <= cap then begin
              chunk :=
                { c_src = Edgebuf.src l1.buf i1;
                  c_dst = Edgebuf.dst l2.buf i2; c_label = code;
                  c_bytes = Encoding.to_bytes enc; c_enc = enc }
                :: !chunk;
              incr chunk_n;
              (* resolving mid-scan is safe: insertions land past every
                 snapshot bound, and the index arrays are immutable *)
              if !chunk_n >= chunk_cap then resolve_chunk ()
            end
        | exception Encoding.Incomposable -> ()
      end
    in
    Metrics.time m `Join (fun () ->
        let continue_ = ref true in
        while !continue_ do
          check_budgets t;
          let snaps = List.map (fun l -> (l, Edgebuf.n l.buf)) loadeds in
          if List.for_all (fun (l, n_snap) -> l.indexed >= n_snap) snaps then
            continue_ := false
          else begin
            (* this superstep's delta: per loaded, the sorted-by-src index
               of the edges in [indexed, n_snap) *)
            let deltas =
              List.map
                (fun (l, n_snap) ->
                  (l, n_snap,
                   sort_ids l.buf Edgebuf.src (ids_range l.indexed n_snap)))
                snaps
            in
            let delta_src_of l2 =
              let (_, _, d) =
                List.find (fun (l, _, _) -> l == l2) deltas
              in
              d
            in
            List.iter
              (fun (l, n_snap, _) ->
                for i = l.indexed to n_snap - 1 do
                  (* as the left edge of a pair: the partner owning [dst],
                     settled index then its in-flight delta *)
                  let v_dst = Edgebuf.dst l.buf i in
                  (match find_loaded v_dst with
                  | Some l2 ->
                      scan_eq l2.buf Edgebuf.src l2.idx_src v_dst (fun j ->
                          try_pair l i l2 j);
                      scan_eq l2.buf Edgebuf.src (delta_src_of l2) v_dst
                        (fun j -> try_pair l i l2 j)
                  | None -> ());
                  (* as the right edge of a pair: settled partners only —
                     delta x delta was covered by the left pass *)
                  let v_src = Edgebuf.src l.buf i in
                  List.iter
                    (fun l1 ->
                      scan_eq l1.buf Edgebuf.dst l1.idx_dst v_src (fun j ->
                          try_pair l1 j l i))
                    loadeds
                done)
              deltas;
            resolve_chunk ();
            (* merge the delta into the standing indexes; edges inserted
               during this superstep sit past [n_snap] and form the next
               delta *)
            List.iter
              (fun (l, n_snap, dsrc) ->
                l.idx_src <- merge_sorted l.buf Edgebuf.src l.idx_src dsrc;
                l.idx_dst <-
                  merge_sorted l.buf Edgebuf.dst l.idx_dst
                    (sort_ids l.buf Edgebuf.dst (ids_range l.indexed n_snap));
                l.indexed <- n_snap)
              deltas
          end
        done)

  (* Append externally-routed edges to the partitions owning them.  Owners
     are resolved here, after any splits performed by [flush], so an edge is
     never appended to a stale partition.  Each pending edge is deduplicated
     against the target file (and against the batch itself), and only the
     edges that genuinely land count toward [edges_added] — a routed
     rediscovery of a known fact adds nothing. *)
  let flush_external t (pending : pending list) =
    let by_owner : (int, pending list ref) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun p ->
        let meta = owner t p.p_src in
        match Hashtbl.find_opt by_owner meta.pid with
        | Some r -> r := p :: !r
        | None ->
            Hashtbl.replace by_owner meta.pid (ref [ p ]);
            order := meta :: !order)
      pending;
    List.iter
      (fun (meta : pmeta) ->
        let batch = List.rev !(Hashtbl.find by_owner meta.pid) in
        let n_new, bytes_read, bytes_written =
          Metrics.time t.metrics `Io (fun () ->
              with_retries t (fun () ->
                  let outcome = Storage.read_flat ~path:meta.path in
                  let buf = outcome.Storage.buf in
                  let existing = Hashtbl.create (max 64 (2 * Edgebuf.n buf)) in
                  for i = 0 to Edgebuf.n buf - 1 do
                    Hashtbl.replace existing
                      (Edgebuf.src buf i, Edgebuf.dst buf i,
                       Edgebuf.label buf i,
                       Edgebuf.canon buf (Edgebuf.enc_id buf i))
                      ()
                  done;
                  let added = ref 0 in
                  List.iter
                    (fun p ->
                      let id =
                        Edgebuf.intern_bytes ~decoded:p.p_enc buf p.p_bytes
                      in
                      let key = (p.p_src, p.p_dst, p.p_label, id) in
                      if not (Hashtbl.mem existing key) then begin
                        Hashtbl.replace existing key ();
                        Edgebuf.push buf ~src:p.p_src ~dst:p.p_dst
                          ~label:p.p_label ~enc_id:id;
                        incr added
                      end)
                    batch;
                  if !added = 0 then (0, outcome.Storage.bytes, 0)
                  else
                    let written = Storage.write_flat ~path:meta.path buf in
                    (!added, outcome.Storage.bytes, written)))
        in
        Metrics.add t.metrics.Metrics.bytes_read bytes_read;
        Metrics.add t.metrics.Metrics.bytes_written bytes_written;
        if n_new > 0 then begin
          Metrics.add t.metrics.Metrics.edges_added n_new;
          meta.approx_edges <- meta.approx_edges + n_new;
          (* a batch that landed nothing leaves the file byte-identical:
             bumping the version would only force a no-op reprocess *)
          meta.version <- meta.version + 1;
          (* the file just outgrew any resident copy *)
          t.resident <- List.remove_assoc meta.pid t.resident
        end)
      (List.rev !order)

  (* Process one scheduled pair of partitions.  [counts] is the pair's
     recorded deduplicated edge counts at its previous local fixpoint
     ((0, 0) for a first encounter): the join starts its delta there.
     Returns the counts at this fixpoint, captured before flushing, for the
     caller to record. *)
  let process_pair t (pa : pmeta) (pb : pmeta) ~counts:(ca, cb) : int * int =
    Obs.Trace.with_span ~cat:"engine"
      ~args:[ ("pa", Obs.Trace.Int pa.pid); ("pb", Obs.Trace.Int pb.pid) ]
      "engine.pair"
    @@ fun () ->
    Metrics.incr t.metrics.Metrics.pairs_processed;
    (* keep residency at the memory budget: only this pair stays loaded *)
    evict_except t [ pa.pid; pb.pid ];
    let loadeds =
      if pa.pid = pb.pid then [ load_resident t pa ]
      else [ load_resident t pa; load_resident t pb ]
    in
    (match loadeds with
    | [ la ] -> prepare la ~upto:ca
    | [ la; lb ] ->
        prepare la ~upto:ca;
        prepare lb ~upto:cb
    | _ -> assert false);
    let pending = ref [] in
    let route p = pending := p :: !pending in
    local_fixpoint t loadeds ~route;
    let counts' =
      match loadeds with
      | [ la ] -> (Edgebuf.n la.buf, Edgebuf.n la.buf)
      | [ la; lb ] -> (Edgebuf.n la.buf, Edgebuf.n lb.buf)
      | _ -> assert false
    in
    List.iter (fun l -> flush t l) loadeds;
    (* a split partition's pid (and file) is gone: drop its resident copy *)
    t.resident <-
      List.filter
        (fun (pid, _) -> List.exists (fun p -> p.pid = pid) t.parts)
        t.resident;
    flush_external t (List.rev !pending);
    counts'

  (* ---------------- checkpointing ---------------- *)

  (* Persist partition metadata and the scheduler frontier.  Called after
     every completed pair, *after* that pair's partitions and routed appends
     are durable, so a validating manifest never references state newer than
     the files.  (The converse — files newer than the manifest — is safe:
     the missed pair is simply reprocessed, and reprocessing is idempotent
     because loads and inserts deduplicate; its recorded delta counts are at
     worst stale-low, which only re-joins a suffix.)  The
     crash-at-checkpoint fault hook fires after the save: the manifest is
     durable at that instant, which is exactly the boundary [--resume]
     guarantees byte-identical results from. *)
  let checkpoint t (processed : (int * int, int * int * int * int) Hashtbl.t) =
    let parts =
      List.map
        (fun p ->
          { Manifest.pid = p.pid; lo = p.lo; hi = p.hi; version = p.version;
            approx_edges = p.approx_edges; file = Filename.basename p.path })
        t.parts
    in
    let frontier =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) processed []
      |> List.sort compare
    in
    let m =
      { Manifest.next_pid = t.next_pid; max_vertex = t.max_vertex;
        n_seed_edges = t.n_seed_edges; parts; processed = frontier }
    in
    Obs.Trace.with_span ~cat:"engine"
      ~args:[ ("parts", Obs.Trace.Int (List.length parts)) ]
      "engine.checkpoint"
      (fun () ->
        Metrics.time t.metrics `Io (fun () ->
            with_retries t (fun () -> Manifest.save ~workdir:t.config.workdir m)));
    Faults.on_checkpoint ()

  (* Restore partition metadata and the scheduler frontier from the last
     checkpoint; false when there is none (or it failed validation). *)
  let try_restore t (processed : (int * int, int * int * int * int) Hashtbl.t)
      : bool =
    match with_retries t (fun () -> Manifest.load ~workdir:t.config.workdir) with
    | None -> false
    | Some m
      when not
             (List.for_all
                (fun (p : Manifest.part) ->
                  Sys.file_exists
                    (Filename.concat t.config.workdir p.Manifest.file))
                m.Manifest.parts) ->
        (* a checksum-valid manifest referencing a vanished partition file
           describes state that no longer exists: start fresh rather than
           resume into silently-empty partitions *)
        false
    | Some m ->
        t.parts <-
          List.map
            (fun (p : Manifest.part) ->
              { pid = p.Manifest.pid; lo = p.Manifest.lo; hi = p.Manifest.hi;
                path = Filename.concat t.config.workdir p.Manifest.file;
                version = p.Manifest.version;
                approx_edges = p.Manifest.approx_edges })
            m.Manifest.parts
          |> List.sort (fun a b -> compare a.lo b.lo);
        t.next_pid <- m.Manifest.next_pid;
        t.max_vertex <- max t.max_vertex m.Manifest.max_vertex;
        t.n_seed_edges <- m.Manifest.n_seed_edges;
        t.seeds <- [];  (* the partitions already hold the preprocessed seeds *)
        List.iter (fun (k, v) -> Hashtbl.replace processed k v)
          m.Manifest.processed;
        true

  (* Run to global fixpoint.  With [~resume:true], continue from the
     workdir's checkpoint manifest when one validates (fresh run
     otherwise): partitions and frontier are restored and only pairs whose
     versions advanced since the checkpoint are (re)processed — and those
     only past their recorded delta counts.  The closure is confluent —
     facts accumulate monotonically and deduplicate — so a resumed run
     converges to the same fixpoint as an uninterrupted one. *)
  let run ?(resume = false) t =
    if t.ran then invalid_arg "Engine.run: already ran";
    t.ran <- true;
    t.run_start <- Unix.gettimeofday ();
    (* (pid_min, pid_max) -> (version_min, version_max, count_min, count_max),
       versions and fixpoint counts stored in pid order *)
    let processed : (int * int, int * int * int * int) Hashtbl.t =
      Hashtbl.create 256
    in
    let restored = resume && try_restore t processed in
    if not restored then begin
      preprocess t;
      checkpoint t processed
    end;
    let continue = ref true in
    while !continue do
      continue := false;
      (* snapshot: [t.parts] changes under our feet when partitions split *)
      let snapshot = t.parts in
      List.iteri
        (fun i pa ->
          List.iteri
            (fun j pb ->
              if j >= i then begin
                let alive p = List.exists (fun q -> q.pid = p.pid) t.parts in
                if alive pa && alive pb then begin
                  let key = (min pa.pid pb.pid, max pa.pid pb.pid) in
                  let swap = pa.pid > pb.pid in
                  let vers =
                    if swap then (pb.version, pa.version)
                    else (pa.version, pb.version)
                  in
                  let needs, (c1, c2) =
                    match Hashtbl.find_opt processed key with
                    | None -> (true, (0, 0))
                    | Some (va, vb, ca, cb) -> ((va, vb) <> vers, (ca, cb))
                  in
                  if needs then begin
                    continue := true;
                    let counts = if swap then (c2, c1) else (c1, c2) in
                    let ca', cb' = process_pair t pa pb ~counts in
                    (* versions may have advanced during processing *)
                    let cur p =
                      match List.find_opt (fun q -> q.pid = p.pid) t.parts with
                      | Some q -> q.version
                      | None -> -1
                    in
                    let v1, v2, d1, d2 =
                      if swap then (cur pb, cur pa, cb', ca')
                      else (cur pa, cur pb, ca', cb')
                    in
                    Hashtbl.replace processed key (v1, v2, d1, d2);
                    checkpoint t processed;
                    check_budgets t
                  end
                end
              end)
            snapshot)
        snapshot
    done

  (* ---------------- results ---------------- *)

  let n_partitions t = List.length t.parts
  let n_seed_edges t = t.n_seed_edges

  (* Exact total edge count.  Every writer deduplicates, so the files hold
     each edge once and folding needs no membership tables — just the raw
     buffer.  Edges are folded newest-first per partition, matching the
     historical reverse-insertion-order iteration that report generation
     depends on. *)
  let fold_edges t f acc =
    List.fold_left
      (fun acc meta ->
        let outcome =
          Metrics.time t.metrics `Io (fun () ->
              with_retries t (fun () -> Storage.read_flat ~path:meta.path))
        in
        Metrics.add t.metrics.Metrics.bytes_read outcome.Storage.bytes;
        (match outcome.Storage.corrupt with
        | None -> ()
        | Some c ->
            Logs.warn (fun k ->
                k "partition %s: %a — kept %d-record prefix"
                  (Filename.basename meta.path) Storage.pp_corruption c
                  (Edgebuf.n outcome.Storage.buf));
            Metrics.incr t.metrics.Metrics.corrupt_reads);
        let buf = outcome.Storage.buf in
        let acc = ref acc in
        for i = Edgebuf.n buf - 1 downto 0 do
          let e =
            { src = Edgebuf.src buf i; dst = Edgebuf.dst buf i;
              label = L.of_int (Edgebuf.label buf i);
              enc = Edgebuf.enc buf (Edgebuf.enc_id buf i) }
          in
          acc := f !acc e
        done;
        !acc)
      acc t.parts

  let total_edges t = fold_edges t (fun n _ -> n + 1) 0

  let iter_result_edges t f =
    fold_edges t (fun () e -> if L.is_result e.label then f e) ()

  (* Delete the working directory contents created by this engine. *)
  let cleanup t =
    t.resident <- [];
    List.iter
      (fun p ->
        Storage.remove_file ~path:p.path;
        Storage.remove_file ~path:(p.path ^ ".tmp"))
      t.parts;
    let manifest = Manifest.path ~workdir:t.config.workdir in
    Storage.remove_file ~path:manifest;
    Storage.remove_file ~path:(manifest ^ ".tmp")
end
