(* Wall-clock and counter instrumentation for the engine, split into the
   four components of the paper's Figure 9: I/O, constraint
   encoding/decoding, SMT solving, and (in-memory) edge-pair computation. *)

type t = {
  mutable io_s : float;
  mutable decode_s : float;
  mutable solve_s : float;
  mutable join_s : float;
  mutable constraints_solved : int;   (* actual solver invocations *)
  mutable cache_lookups : int;
  mutable cache_hits : int;
  mutable edges_added : int;          (* transitive edges that survived *)
  mutable edges_considered : int;     (* candidate pairs that matched grammar *)
  mutable pairs_processed : int;      (* partition-pair loads: "iterations" *)
  mutable repartitions : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable retries : int;              (* storage ops retried after a fault *)
  mutable corrupt_reads : int;        (* reads recovered from a damaged tail *)
}

let create () =
  { io_s = 0.; decode_s = 0.; solve_s = 0.; join_s = 0.;
    constraints_solved = 0; cache_lookups = 0; cache_hits = 0;
    edges_added = 0; edges_considered = 0; pairs_processed = 0;
    repartitions = 0; bytes_read = 0; bytes_written = 0;
    retries = 0; corrupt_reads = 0 }

let time (m : t) (field : [ `Io | `Decode | `Solve | `Join ]) f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  (match field with
  | `Io -> m.io_s <- m.io_s +. dt
  | `Decode -> m.decode_s <- m.decode_s +. dt
  | `Solve -> m.solve_s <- m.solve_s +. dt
  | `Join -> m.join_s <- m.join_s +. dt);
  r

let hit_rate (m : t) =
  if m.cache_lookups = 0 then 0.
  else float_of_int m.cache_hits /. float_of_int m.cache_lookups

(* The Figure 9 percentages.  The join timer runs around the whole pair
   computation, so subtract the nested decode/solve time from it. *)
let breakdown (m : t) : (string * float) list =
  let join = Float.max 0. (m.join_s -. m.decode_s -. m.solve_s) in
  let total = m.io_s +. m.decode_s +. m.solve_s +. join in
  let pct x = if total = 0. then 0. else 100. *. x /. total in
  [ ("I/O", pct m.io_s);
    ("Constraint lookup", pct m.decode_s);
    ("SMT solving", pct m.solve_s);
    ("Edge computation", pct join) ]

let pp ppf (m : t) =
  Fmt.pf ppf
    "io=%.2fs decode=%.2fs solve=%.2fs join=%.2fs solved=%d hits=%d/%d \
     edges+=%d pairs=%d repart=%d"
    m.io_s m.decode_s m.solve_s m.join_s m.constraints_solved m.cache_hits
    m.cache_lookups m.edges_added m.pairs_processed m.repartitions
