(* Wall-clock and counter instrumentation for the engine, built on the
   observability registry (Obs.Registry).  The timers split into the four
   components of the paper's Figure 9: I/O, constraint encoding/decoding,
   SMT solving, and (in-memory) edge-pair computation; the counters cover
   solving, caching, edge derivation, partitioning, and storage-fault
   recovery; two histograms profile the batched SMT path.

   Each engine owns one [t] (one registry): an engine runs in a single
   domain, so updates need no synchronization.  Aggregation across engines
   — and therefore across worker domains — goes through [merge], which the
   registry performs in canonical (sorted-name) order, so totals are
   identical at every worker count. *)

module R = Obs.Registry

type t = {
  reg : R.t;
  io_s : R.gauge;
  decode_s : R.gauge;
  solve_s : R.gauge;
  join_s : R.gauge;
  constraints_solved : R.counter;  (* actual solver invocations *)
  cache_lookups : R.counter;       (* lookups against an *enabled* cache *)
  cache_hits : R.counter;
  cache_evictions : R.counter;     (* LRU entries displaced when full *)
  edges_added : R.counter;         (* transitive edges that survived *)
  edges_considered : R.counter;    (* candidate pairs that matched grammar *)
  pairs_processed : R.counter;     (* partition-pair loads: "iterations" *)
  repartitions : R.counter;
  bytes_read : R.counter;
  bytes_written : R.counter;
  retries : R.counter;             (* storage ops retried after a fault *)
  corrupt_reads : R.counter;       (* reads recovered from a damaged tail *)
  stale_temps : R.counter;         (* orphaned *.tmp files swept on open *)
  batch_sizes : R.histogram;       (* encodings per SMT solving batch *)
  batch_solve_ms : R.histogram;    (* wall ms per SMT solving batch *)
}

let batch_size_bounds =
  [| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024. |]

let batch_ms_bounds =
  [| 0.01; 0.05; 0.1; 0.5; 1.; 5.; 10.; 50.; 100.; 500.; 1000. |]

(* Build the handle record over an existing registry (find-or-create), so a
   registry marshalled across a process boundary can be re-adopted. *)
let of_registry reg =
  { reg;
    io_s = R.gauge reg "engine.io_s";
    decode_s = R.gauge reg "engine.decode_s";
    solve_s = R.gauge reg "engine.solve_s";
    join_s = R.gauge reg "engine.join_s";
    constraints_solved = R.counter reg "engine.constraints_solved";
    cache_lookups = R.counter reg "engine.cache_lookups";
    cache_hits = R.counter reg "engine.cache_hits";
    cache_evictions = R.counter reg "engine.cache_evictions";
    edges_added = R.counter reg "engine.edges_added";
    edges_considered = R.counter reg "engine.edges_considered";
    pairs_processed = R.counter reg "engine.pairs_processed";
    repartitions = R.counter reg "engine.repartitions";
    bytes_read = R.counter reg "engine.bytes_read";
    bytes_written = R.counter reg "engine.bytes_written";
    retries = R.counter reg "engine.retries";
    corrupt_reads = R.counter reg "engine.corrupt_reads";
    stale_temps = R.counter reg "engine.stale_temps";
    batch_sizes = R.histogram ~bounds:batch_size_bounds reg "smt.batch_size";
    batch_solve_ms = R.histogram ~bounds:batch_ms_bounds reg "smt.batch_solve_ms"
  }

let create () = of_registry (R.create ())

let registry (m : t) = m.reg

(* re-exported registry primitives, so call sites read [Metrics.incr] *)
let incr = R.incr ?by:None
let add c n = R.incr ~by:n c
let count = R.value
let set_count = R.set
let seconds = R.gauge_value

let timer_of (m : t) = function
  | `Io -> m.io_s
  | `Decode -> m.decode_s
  | `Solve -> m.solve_s
  | `Join -> m.join_s

(* Time [f] into the chosen component.  The delta is recorded in a
   finalizer so that a raising [f] — a budget abort, an injected fault —
   still contributes its elapsed time instead of silently dropping it. *)
let time (m : t) (field : [ `Io | `Decode | `Solve | `Join ]) f =
  let cell = timer_of m field in
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> R.gauge_add cell (Unix.gettimeofday () -. t0))
    f

(* One batched SMT resolution: [n] encodings decided in [dt] seconds. *)
let observe_batch (m : t) ~n ~dt =
  R.observe m.batch_sizes (float_of_int n);
  R.observe m.batch_solve_ms (dt *. 1000.)

(* [None] when no lookup was ever counted — the cache is disabled or was
   never consulted — so callers can render "off" instead of a fake 0%. *)
let hit_rate (m : t) : float option =
  let lookups = count m.cache_lookups in
  if lookups = 0 then None
  else Some (float_of_int (count m.cache_hits) /. float_of_int lookups)

(* The Figure 9 percentages.  The join timer runs around the whole pair
   computation, so subtract the nested decode/solve time from it. *)
let breakdown (m : t) : (string * float) list =
  let io = seconds m.io_s
  and decode = seconds m.decode_s
  and solve = seconds m.solve_s in
  let join = Float.max 0. (seconds m.join_s -. decode -. solve) in
  let total = io +. decode +. solve +. join in
  let pct x = if total = 0. then 0. else 100. *. x /. total in
  [ ("I/O", pct io);
    ("Constraint lookup", pct decode);
    ("SMT solving", pct solve);
    ("Edge computation", pct join) ]

let merge ~(into : t) (m : t) = R.merge ~into:into.reg m.reg

let pp ppf (m : t) =
  Format.fprintf ppf
    "io=%.2fs decode=%.2fs solve=%.2fs join=%.2fs solved=%d hits=%d/%d \
     evictions=%d edges+=%d considered=%d pairs=%d repart=%d bytes=%d/%d \
     retries=%d corrupt=%d stale_tmp=%d"
    (seconds m.io_s) (seconds m.decode_s) (seconds m.solve_s)
    (seconds m.join_s) (count m.constraints_solved) (count m.cache_hits)
    (count m.cache_lookups) (count m.cache_evictions) (count m.edges_added)
    (count m.edges_considered) (count m.pairs_processed)
    (count m.repartitions) (count m.bytes_read) (count m.bytes_written)
    (count m.retries) (count m.corrupt_reads) (count m.stale_temps)
