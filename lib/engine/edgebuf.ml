(* Flat int-packed edge buffer (ISSUE 10).

   Edges live in a [Bigarray] of native ints as fixed-width 4-word records

     src | dst | label-code | encoding-ref

   in insertion order, so the hot join loop touches contiguous unboxed
   memory instead of chasing list spines and boxed records.  Path encodings
   are interned in a side pool keyed by their canonical [Encoding] wire
   bytes: the encoding-ref field is an index into the pool, two edges with
   structurally equal encodings share one pool slot, and decoding back to
   the structured [Encoding.t] happens lazily, once per distinct encoding.

   The buffer is also the unit of I/O: [Storage] serializes the edge words
   and the pool directly from/to this representation, so the bytes on disk
   are the bytes in memory modulo fixed-width framing. *)

module Encoding = Pathenc.Encoding

type t = {
  mutable data : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
  mutable n : int;  (* edges *)
  mutable pool : string array;            (* enc id -> canonical wire bytes *)
  mutable decoded : Encoding.t option array;  (* enc id -> lazy decode *)
  mutable canon : int array;  (* enc id -> first id with the same bytes *)
  mutable pool_n : int;
  pool_tbl : (string, int) Hashtbl.t;     (* wire bytes -> enc id *)
}

let stride = 4

let alloc words =
  Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max words stride)

let create ?(capacity = 256) () =
  { data = alloc (capacity * stride);
    n = 0;
    pool = Array.make 64 "";
    decoded = Array.make 64 None;
    canon = Array.make 64 0;
    pool_n = 0;
    pool_tbl = Hashtbl.create 64 }

let n t = t.n
let pool_size t = t.pool_n

let src t i = Bigarray.Array1.unsafe_get t.data ((i * stride) + 0)
let dst t i = Bigarray.Array1.unsafe_get t.data ((i * stride) + 1)
let label t i = Bigarray.Array1.unsafe_get t.data ((i * stride) + 2)
let enc_id t i = Bigarray.Array1.unsafe_get t.data ((i * stride) + 3)

let enc_bytes t id = t.pool.(id)

(* Canonical representative of a pool slot: the first slot holding the same
   bytes.  Slots made by [intern_bytes] are their own canon; [pool_append]
   (file loading) may create byte-equal duplicates, which all map to the
   first occurrence.  Keying membership sets by [canon] therefore makes
   "same (src, dst, label, encoding)" a pure int comparison. *)
let canon t id = t.canon.(id)

(* The interned id the given wire bytes would resolve to, without
   interning: [None] means the bytes occur nowhere in this buffer's pool. *)
let find_bytes t (bytes : string) : int option = Hashtbl.find_opt t.pool_tbl bytes

(* Decode an interned encoding, caching the structured value per pool slot
   so each distinct encoding is decoded at most once per buffer. *)
let enc t id =
  match t.decoded.(id) with
  | Some e -> e
  | None ->
      let e = Encoding.of_bytes t.pool.(id) in
      t.decoded.(id) <- Some e;
      e

let grow_pool t =
  let cap = Array.length t.pool in
  let pool' = Array.make (2 * cap) "" in
  Array.blit t.pool 0 pool' 0 cap;
  t.pool <- pool';
  let dec' = Array.make (2 * cap) None in
  Array.blit t.decoded 0 dec' 0 cap;
  t.decoded <- dec';
  let can' = Array.make (2 * cap) 0 in
  Array.blit t.canon 0 can' 0 cap;
  t.canon <- can'

(* Intern canonical wire bytes; [?decoded] primes the decode cache when the
   caller already holds the structured value. *)
let intern_bytes ?decoded t (bytes : string) : int =
  match Hashtbl.find_opt t.pool_tbl bytes with
  | Some id ->
      (match (decoded, t.decoded.(id)) with
      | Some e, None -> t.decoded.(id) <- Some e
      | _ -> ());
      id
  | None ->
      let id = t.pool_n in
      if id = Array.length t.pool then grow_pool t;
      t.pool.(id) <- bytes;
      t.decoded.(id) <- decoded;
      t.canon.(id) <- id;
      t.pool_n <- id + 1;
      Hashtbl.replace t.pool_tbl bytes id;
      id

let intern t (e : Encoding.t) : int =
  intern_bytes ~decoded:e t (Encoding.to_bytes e)

(* Append raw pool bytes *without* dedup, so ids always equal file order:
   used by [Storage.read_flat], whose writer deduplicates anyway.  A
   crafted file with duplicate pool entries still round-trips, because
   every edge keeps the id it was written with. *)
let pool_append t (bytes : string) : int =
  let id = t.pool_n in
  if id = Array.length t.pool then grow_pool t;
  t.pool.(id) <- bytes;
  t.decoded.(id) <- None;
  t.pool_n <- id + 1;
  (match Hashtbl.find_opt t.pool_tbl bytes with
  | Some first -> t.canon.(id) <- first
  | None ->
      t.canon.(id) <- id;
      Hashtbl.replace t.pool_tbl bytes id);
  id

let push t ~src ~dst ~label ~enc_id =
  let need = (t.n + 1) * stride in
  if need > Bigarray.Array1.dim t.data then begin
    let data' = alloc (2 * Bigarray.Array1.dim t.data) in
    Bigarray.Array1.blit t.data (Bigarray.Array1.sub data' 0 (Bigarray.Array1.dim t.data));
    t.data <- data'
  end;
  let base = t.n * stride in
  Bigarray.Array1.unsafe_set t.data (base + 0) src;
  Bigarray.Array1.unsafe_set t.data (base + 1) dst;
  Bigarray.Array1.unsafe_set t.data (base + 2) label;
  Bigarray.Array1.unsafe_set t.data (base + 3) enc_id;
  t.n <- t.n + 1

(* Convenience push for callers holding a structured encoding. *)
let push_edge t ~src ~dst ~label (e : Encoding.t) =
  push t ~src ~dst ~label ~enc_id:(intern t e)

let iter t f =
  for i = 0 to t.n - 1 do
    f ~src:(src t i) ~dst:(dst t i) ~label:(label t i) ~enc_id:(enc_id t i)
  done
