(* On-disk edge storage for partitions — format 2 (flat blocks).

   A partition file is a flat sequence of self-validating records:

     varint payload-length | payload | varint FNV-1a-32(payload)

   where each payload is one *block*:

     'P' | varint count | count x (varint len | encoding wire bytes)
     'E' | varint count | count x (src, dst, label, enc-ref as int64 LE)

   Pool blocks ('P') carry the interned path-encoding pool of an
   [Edgebuf.t]; pool ids are assigned in file order across all pool blocks.
   Edge blocks ('E') carry fixed-width 4-word edge records referencing pool
   ids — the same packed layout the in-memory [Edgebuf] uses, so writing is
   a bounded conversion of machine words, not a per-edge structural
   serialization.  Files are written buffered and read back in one slurp:
   the engine's access pattern is strictly sequential (paper §4.3: "most
   edge accesses are sequential").

   Crash safety:
   - every write (including appends) goes through write-temp-then-rename, so
     a crash at any instant leaves either the old file or the new file, never
     a torn mixture;
   - [read_flat] never raises on damaged data: the length prefix bounds every
     block parse, the checksum catches bit damage, edge blocks referencing
     pool ids that never validated are rejected, and the result carries the
     longest valid prefix of blocks plus a typed corruption marker, so the
     engine can fall back to the last checkpoint instead of dying mid-parse.
     Recovery is block-granular: damage loses at most the tail from the
     first damaged block onward.

   All operations pass through the [Faults] hooks so a seeded fault plan can
   deterministically fail, truncate, or crash them. *)

module Encoding = Pathenc.Encoding

type raw_edge = { src : int; dst : int; label : int; enc : Encoding.t }

type corruption =
  | Truncated of int          (* byte offset of the torn trailing block *)
  | Checksum_mismatch of int  (* byte offset of the damaged block *)

(* The result of reading a file into a flat buffer: the longest prefix of
   intact blocks (all of them when [corrupt = None]) and the file's size in
   bytes. *)
type flat_outcome = {
  buf : Edgebuf.t;
  bytes : int;
  corrupt : corruption option;
}

(* List-shaped read result, for callers that want boxed edges. *)
type read_outcome = {
  edges : raw_edge list;
  bytes : int;
  corrupt : corruption option;
}

let pp_corruption ppf = function
  | Truncated off -> Fmt.pf ppf "truncated record at byte %d" off
  | Checksum_mismatch off -> Fmt.pf ppf "checksum mismatch at byte %d" off

(* FNV-1a, 32-bit *)
let fnv32 (b : Bytes.t) ~pos ~len =
  let h = ref 0x811C9DC5 in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * 0x01000193 land 0xFFFFFFFF
  done;
  !h

let checksum_string (s : string) : int =
  fnv32 (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

(* Edges per block: recovery granularity.  Small enough that damage loses a
   bounded tail, large enough that framing overhead stays negligible. *)
let default_block_cap = 512

let add_record buf (payload : Buffer.t) =
  let plen = Buffer.length payload in
  Encoding.add_varint buf plen;
  Buffer.add_buffer buf payload;
  Encoding.add_varint buf
    (fnv32 (Buffer.to_bytes payload) ~pos:0 ~len:plen)

(* Serialize an [Edgebuf.t]: pool blocks first, then edge blocks. *)
let flat_to_buffer ?(block_cap = default_block_cap) (eb : Edgebuf.t) :
    Buffer.t =
  let buf = Buffer.create 65536 in
  let payload = Buffer.create 8192 in
  let np = Edgebuf.pool_size eb in
  let i = ref 0 in
  while !i < np do
    let count = min block_cap (np - !i) in
    Buffer.clear payload;
    Buffer.add_char payload 'P';
    Encoding.add_varint payload count;
    for k = !i to !i + count - 1 do
      let s = Edgebuf.enc_bytes eb k in
      Encoding.add_varint payload (String.length s);
      Buffer.add_string payload s
    done;
    add_record buf payload;
    i := !i + count
  done;
  let ne = Edgebuf.n eb in
  let j = ref 0 in
  while !j < ne do
    let count = min block_cap (ne - !j) in
    Buffer.clear payload;
    Buffer.add_char payload 'E';
    Encoding.add_varint payload count;
    for k = !j to !j + count - 1 do
      Buffer.add_int64_le payload (Int64.of_int (Edgebuf.src eb k));
      Buffer.add_int64_le payload (Int64.of_int (Edgebuf.dst eb k));
      Buffer.add_int64_le payload (Int64.of_int (Edgebuf.label eb k));
      Buffer.add_int64_le payload (Int64.of_int (Edgebuf.enc_id eb k))
    done;
    add_record buf payload;
    j := !j + count
  done;
  buf

(* Atomically replace [path] with [contents]: write a sibling temp file,
   then rename over the target.  POSIX rename is atomic, so a crash leaves
   either the complete old contents or the complete new contents.  An
   injected [`Short] write persists only half the temp file and fails —
   the target is untouched, and the next successful write overwrites the
   garbage temp file. *)
let atomic_write ~path (contents : string) : unit =
  let tmp = path ^ ".tmp" in
  (match Faults.on_write ~path with
  | `Ok ->
      let oc = open_out_bin tmp in
      output_string oc contents;
      close_out oc
  | `Short ->
      let oc = open_out_bin tmp in
      output_string oc (String.sub contents 0 (String.length contents / 2));
      close_out oc;
      raise
        (Faults.Injected
           (Printf.sprintf "injected short write on %s" (Filename.basename path))));
  Faults.before_rename ~path;
  Sys.rename tmp path;
  Faults.after_rename ~path

let write_string_atomic ~path (contents : string) : unit =
  atomic_write ~path contents

(* Replace the file contents with the buffer's edges; returns bytes
   written. *)
let write_flat ?block_cap ~path (eb : Edgebuf.t) : int =
  let buf = flat_to_buffer ?block_cap eb in
  atomic_write ~path (Buffer.contents buf);
  Buffer.length buf

(* Parse one block starting at [!pos] into [eb].  Every access is bounded
   by the length prefix, and the payload decode happens on a [Bytes.sub]
   slice so a lying length can never walk past the block, let alone the
   file. *)
let parse_block bytes pos len (eb : Edgebuf.t) :
    [ `Ok | `Truncated | `Corrupt ] =
  let start = !pos in
  match
    let plen = Encoding.read_varint bytes pos in
    if plen < 1 || !pos + plen > len then raise Exit;
    let payload = Bytes.sub bytes !pos plen in
    pos := !pos + plen;
    let sum = Encoding.read_varint bytes pos in
    (payload, plen, sum)
  with
  | exception _ ->
      (* ran off the end of the file inside the block: a torn tail *)
      pos := start;
      `Truncated
  | payload, plen, sum ->
      if fnv32 payload ~pos:0 ~len:plen <> sum then begin
        pos := start;
        `Corrupt
      end
      else begin
        match
          match Bytes.get payload 0 with
          | 'P' ->
              let p = ref 1 in
              let count = Encoding.read_varint payload p in
              if count < 0 then raise Exit;
              for _ = 1 to count do
                let slen = Encoding.read_varint payload p in
                if slen < 0 || !p + slen > plen then raise Exit;
                ignore
                  (Edgebuf.pool_append eb
                     (Bytes.sub_string payload !p slen));
                p := !p + slen
              done;
              if !p <> plen then raise Exit
          | 'E' ->
              let p = ref 1 in
              let count = Encoding.read_varint payload p in
              if count < 0 || !p + (count * 32) <> plen then raise Exit;
              let np = Edgebuf.pool_size eb in
              (* little-endian 64-bit word, assembled on the int stack:
                 [Bytes.get_int64_le] would box an [Int64] for every word,
                 four per record, and this loop reads every record of every
                 partition load.  Truncation to 63 bits matches
                 [Int64.to_int]; out-of-range top bytes surface as negative
                 values and fail the field checks below. *)
              let le64 b off =
                Char.code (Bytes.unsafe_get b off)
                lor (Char.code (Bytes.unsafe_get b (off + 1)) lsl 8)
                lor (Char.code (Bytes.unsafe_get b (off + 2)) lsl 16)
                lor (Char.code (Bytes.unsafe_get b (off + 3)) lsl 24)
                lor (Char.code (Bytes.unsafe_get b (off + 4)) lsl 32)
                lor (Char.code (Bytes.unsafe_get b (off + 5)) lsl 40)
                lor (Char.code (Bytes.unsafe_get b (off + 6)) lsl 48)
                lor (Char.code (Bytes.unsafe_get b (off + 7)) lsl 56)
              in
              for k = 0 to count - 1 do
                let word i = le64 payload (!p + (k * 32) + (i * 8)) in
                let src = word 0 and dst = word 1 in
                let label = word 2 and enc_id = word 3 in
                if src < 0 || dst < 0 || label < 0 || enc_id < 0
                   || enc_id >= np
                then raise Exit;
                Edgebuf.push eb ~src ~dst ~label ~enc_id
              done
          | _ -> raise Exit
        with
        | exception _ ->
            pos := start;
            `Corrupt
        | () -> `Ok
      end

(* Read every intact block; stops (without raising) at the first truncated
   or damaged one and reports it. *)
let read_flat ~path : flat_outcome =
  Faults.on_read ~path;
  if not (Sys.file_exists path) then
    { buf = Edgebuf.create (); bytes = 0; corrupt = None }
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let bytes = Bytes.create len in
    really_input ic bytes 0 len;
    close_in ic;
    let eb = Edgebuf.create () in
    let pos = ref 0 in
    let corrupt = ref None in
    while !pos < len && !corrupt = None do
      match parse_block bytes pos len eb with
      | `Ok -> ()
      | `Truncated -> corrupt := Some (Truncated !pos)
      | `Corrupt -> corrupt := Some (Checksum_mismatch !pos)
    done;
    { buf = eb; bytes = len; corrupt = !corrupt }
  end

(* ---------------- boxed-edge conveniences ---------------- *)

let buf_of_edges (edges : raw_edge list) : Edgebuf.t =
  let eb = Edgebuf.create () in
  List.iter
    (fun e -> Edgebuf.push_edge eb ~src:e.src ~dst:e.dst ~label:e.label e.enc)
    edges;
  eb

let edges_of_buf (eb : Edgebuf.t) : raw_edge list =
  let out = ref [] in
  for i = Edgebuf.n eb - 1 downto 0 do
    out :=
      { src = Edgebuf.src eb i; dst = Edgebuf.dst eb i;
        label = Edgebuf.label eb i; enc = Edgebuf.enc eb (Edgebuf.enc_id eb i) }
      :: !out
  done;
  !out

let write_file ?block_cap ~path (edges : raw_edge list) : int =
  write_flat ?block_cap ~path (buf_of_edges edges)

let read_file ~path : read_outcome =
  let f = read_flat ~path in
  { edges = edges_of_buf f.buf; bytes = f.bytes; corrupt = f.corrupt }

(* Append [edges]; returns the serialized size of the appended edges.
   A raw O_APPEND append is not crash-safe (a crash mid-append leaves a torn
   tail whose later repair would silently drop any records appended behind
   it), so appends read the current valid prefix and atomically rewrite the
   whole file.  This costs a file-sized copy per append but makes appends
   idempotent under retry, which checkpoint recovery relies on. *)
let append_file ?block_cap ~path (edges : raw_edge list) : int =
  let existing = read_flat ~path in
  let before =
    Buffer.length (flat_to_buffer ?block_cap existing.buf)
  in
  List.iter
    (fun e ->
      Edgebuf.push_edge existing.buf ~src:e.src ~dst:e.dst ~label:e.label e.enc)
    edges;
  let total = write_flat ?block_cap ~path existing.buf in
  total - before

let remove_file ~path = if Sys.file_exists path then Sys.remove path

(* Remove orphaned [*.tmp] siblings left behind by a writer that died
   between opening its temp file and the rename.  They are garbage by
   construction — [atomic_write] always creates the temp fresh — and a
   stale one would otherwise sit in the workdir forever (or, worse, be
   mistaken for live state by a directory scan).  Returns how many were
   swept so the caller can account a typed recovery counter. *)
let sweep_stale_temps ~dir : int =
  if not (Sys.file_exists dir && Sys.is_directory dir) then 0
  else
    Array.fold_left
      (fun n f ->
        if Filename.check_suffix f ".tmp" then begin
          (try Sys.remove (Filename.concat dir f) with Sys_error _ -> ());
          n + 1
        end
        else n)
      0 (Sys.readdir dir)
