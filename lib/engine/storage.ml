(* On-disk edge storage for partitions.  A partition file is a flat sequence
   of self-validating records:

     varint payload-length | payload | varint FNV-1a-32(payload)

   where the payload is varint source, varint destination, varint label
   code, then the edge's path encoding in [Encoding] wire format.  Files are
   written buffered and read back in one slurp: the engine's access pattern
   is strictly sequential (paper §4.3: "most edge accesses are sequential").

   Crash safety:
   - every write (including appends) goes through write-temp-then-rename, so
     a crash at any instant leaves either the old file or the new file, never
     a torn mixture;
   - [read_file] never raises on damaged data: the length prefix bounds every
     record parse, the checksum catches bit damage, and the result carries
     the longest valid prefix plus a typed corruption marker, so the engine
     can fall back to the last checkpoint instead of dying mid-parse.

   All operations pass through the [Faults] hooks so a seeded fault plan can
   deterministically fail, truncate, or crash them. *)

module Encoding = Pathenc.Encoding

type raw_edge = { src : int; dst : int; label : int; enc : Encoding.t }

type corruption =
  | Truncated of int          (* byte offset of the torn trailing record *)
  | Checksum_mismatch of int  (* byte offset of the damaged record *)

(* The result of reading a file: the longest prefix of intact records (all
   of them when [corrupt = None]) and the file's size in bytes. *)
type read_outcome = {
  edges : raw_edge list;
  bytes : int;
  corrupt : corruption option;
}

let pp_corruption ppf = function
  | Truncated off -> Fmt.pf ppf "truncated record at byte %d" off
  | Checksum_mismatch off -> Fmt.pf ppf "checksum mismatch at byte %d" off

(* FNV-1a, 32-bit *)
let fnv32 (b : Bytes.t) ~pos ~len =
  let h = ref 0x811C9DC5 in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * 0x01000193 land 0xFFFFFFFF
  done;
  !h

let checksum_string (s : string) : int =
  fnv32 (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let write_edge buf (e : raw_edge) scratch =
  Buffer.clear scratch;
  Encoding.add_varint scratch e.src;
  Encoding.add_varint scratch e.dst;
  Encoding.add_varint scratch e.label;
  Encoding.write scratch e.enc;
  let payload = Buffer.to_bytes scratch in
  let plen = Bytes.length payload in
  Encoding.add_varint buf plen;
  Buffer.add_bytes buf payload;
  Encoding.add_varint buf (fnv32 payload ~pos:0 ~len:plen)

let edges_to_buffer (edges : raw_edge list) : Buffer.t =
  let buf = Buffer.create 65536 in
  let scratch = Buffer.create 256 in
  List.iter (fun e -> write_edge buf e scratch) edges;
  buf

(* Atomically replace [path] with [contents]: write a sibling temp file,
   then rename over the target.  POSIX rename is atomic, so a crash leaves
   either the complete old contents or the complete new contents.  An
   injected [`Short] write persists only half the temp file and fails —
   the target is untouched, and the next successful write overwrites the
   garbage temp file. *)
let atomic_write ~path (contents : string) : unit =
  let tmp = path ^ ".tmp" in
  (match Faults.on_write ~path with
  | `Ok ->
      let oc = open_out_bin tmp in
      output_string oc contents;
      close_out oc
  | `Short ->
      let oc = open_out_bin tmp in
      output_string oc (String.sub contents 0 (String.length contents / 2));
      close_out oc;
      raise
        (Faults.Injected
           (Printf.sprintf "injected short write on %s" (Filename.basename path))));
  Faults.before_rename ~path;
  Sys.rename tmp path;
  Faults.after_rename ~path

let write_string_atomic ~path (contents : string) : unit =
  atomic_write ~path contents

(* Replace the file contents with [edges]; returns bytes written. *)
let write_file ~path (edges : raw_edge list) : int =
  let buf = edges_to_buffer edges in
  atomic_write ~path (Buffer.contents buf);
  Buffer.length buf

(* Parse one record starting at [!pos].  Every access is bounded by the
   length prefix, and the payload decode happens on a [Bytes.sub] slice so a
   lying length can never walk past the record, let alone the file. *)
let parse_record bytes pos len :
    [ `Edge of raw_edge | `Truncated | `Corrupt ] =
  let start = !pos in
  match
    let plen = Encoding.read_varint bytes pos in
    if plen < 0 || !pos + plen > len then raise Exit;
    let payload = Bytes.sub bytes !pos plen in
    pos := !pos + plen;
    let sum = Encoding.read_varint bytes pos in
    (payload, plen, sum)
  with
  | exception _ ->
      (* ran off the end of the file inside the record: a torn tail *)
      pos := start;
      `Truncated
  | payload, plen, sum ->
      if fnv32 payload ~pos:0 ~len:plen <> sum then begin
        pos := start;
        `Corrupt
      end
      else begin
        match
          let p = ref 0 in
          let src = Encoding.read_varint payload p in
          let dst = Encoding.read_varint payload p in
          let label = Encoding.read_varint payload p in
          let enc = Encoding.read payload p in
          if !p <> plen then raise Exit;
          { src; dst; label; enc }
        with
        | exception _ ->
            pos := start;
            `Corrupt
        | e -> `Edge e
      end

(* Read every intact record; stops (without raising) at the first truncated
   or damaged one and reports it. *)
let read_file ~path : read_outcome =
  Faults.on_read ~path;
  if not (Sys.file_exists path) then { edges = []; bytes = 0; corrupt = None }
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let bytes = Bytes.create len in
    really_input ic bytes 0 len;
    close_in ic;
    let pos = ref 0 in
    let acc = ref [] in
    let corrupt = ref None in
    while !pos < len && !corrupt = None do
      match parse_record bytes pos len with
      | `Edge e -> acc := e :: !acc
      | `Truncated -> corrupt := Some (Truncated !pos)
      | `Corrupt -> corrupt := Some (Checksum_mismatch !pos)
    done;
    { edges = List.rev !acc; bytes = len; corrupt = !corrupt }
  end

(* Append [edges]; returns the serialized size of the appended edges.
   A raw O_APPEND append is not crash-safe (a crash mid-append leaves a torn
   tail whose later repair would silently drop any records appended behind
   it), so appends read the current valid prefix and atomically rewrite the
   whole file.  This costs a file-sized copy per append but makes appends
   idempotent under retry, which checkpoint recovery relies on. *)
let append_file ~path (edges : raw_edge list) : int =
  let existing = read_file ~path in
  let buf = edges_to_buffer existing.edges in
  let appended_from = Buffer.length buf in
  let scratch = Buffer.create 256 in
  List.iter (fun e -> write_edge buf e scratch) edges;
  atomic_write ~path (Buffer.contents buf);
  Buffer.length buf - appended_from

let remove_file ~path = if Sys.file_exists path then Sys.remove path

(* Remove orphaned [*.tmp] siblings left behind by a writer that died
   between opening its temp file and the rename.  They are garbage by
   construction — [atomic_write] always creates the temp fresh — and a
   stale one would otherwise sit in the workdir forever (or, worse, be
   mistaken for live state by a directory scan).  Returns how many were
   swept so the caller can account a typed recovery counter. *)
let sweep_stale_temps ~dir : int =
  if not (Sys.file_exists dir && Sys.is_directory dir) then 0
  else
    Array.fold_left
      (fun n f ->
        if Filename.check_suffix f ".tmp" then begin
          (try Sys.remove (Filename.concat dir f) with Sys_error _ -> ());
          n + 1
        end
        else n)
      0 (Sys.readdir dir)
