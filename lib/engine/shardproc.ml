(* Frame protocol between the shard supervisor and its worker processes
   (ISSUE 8).

   Workers are forked from the coordinator and talk to it over a pair of
   pipes carrying length-prefixed marshalled frames:

     coordinator -> worker:   Assign | Shutdown
     worker -> coordinator:   Hello | Heartbeat | Done

   A frame is a 4-byte big-endian payload length, the [Marshal]ed value,
   and a 4-byte big-endian FNV-1a checksum of the payload.  Workers read
   blocking (they have nothing else to do); the coordinator reads
   nonblocking under [select] and reassembles partial frames in a
   per-worker buffer, so a slow or half-written frame never stalls
   supervision of the other workers.

   The checksum turns a corrupted pipe into a *detected* peer failure
   rather than a [Marshal] crash or a silently wrong value: a worker that
   reads a damaged frame exits like a closed pipe (the supervisor
   re-dispatches its task), and a coordinator that reads one declares the
   worker dead and re-dispatches.

   The worker's heartbeat runs on its own domain so a worker wedged in a
   long computation keeps heartbeating, while a worker that is truly hung
   (stopped, livelocked below OCaml) goes silent and gets killed.  Both
   writers on the worker side share one mutex so frames never interleave.

   Discipline inside the child: any exception must terminate the process
   with [Unix._exit] — the child's stack is a copy of the coordinator's,
   and an exception unwinding past the fork point would run the
   coordinator's handlers (and its buffered I/O) a second time. *)

type to_worker =
  | Assign of { task : int; attempt : int; self_kill : bool }
      (* [self_kill]: SIGKILL yourself instead of running the task — the
         deterministic process-kill injection point behind
         [--shard-kill-nth] *)
  | Shutdown

type to_coordinator =
  | Hello of int      (* worker slot, sent once at startup *)
  | Heartbeat of int  (* worker slot, sent every heartbeat period *)
  | Done of { task : int; attempt : int; payload : string }

(* The peer's end of the pipe is gone (EOF, EPIPE, closed fd) — or sent a
   frame that fails its checksum, which is treated the same way. *)
exception Closed

(* ---------------- frame encoding ---------------- *)

(* Frames never approach this; a length beyond it means the length field
   itself is damaged. *)
let max_frame_len = 1 lsl 30

let frame_bytes (v : 'a) : Bytes.t =
  let payload = Marshal.to_string v [] in
  let len = String.length payload in
  let b = Bytes.create (4 + len + 4) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.blit_string payload 0 b 4 len;
  Bytes.set_int32_be b (4 + len)
    (Int32.of_int (Storage.checksum_string payload));
  b

let really_write fd (b : Bytes.t) =
  let len = Bytes.length b in
  let rec go off =
    if off < len then begin
      let n =
        try Unix.write fd b off (len - off) with
        | Unix.Unix_error (Unix.EINTR, _, _) -> 0
        | Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) -> raise Closed
      in
      go (off + n)
    end
  in
  go 0

let write_frame ?mutex fd (v : 'a) : unit =
  let b = frame_bytes v in
  match mutex with
  | None -> really_write fd b
  | Some mu ->
      Mutex.lock mu;
      Fun.protect ~finally:(fun () -> Mutex.unlock mu) (fun () ->
          really_write fd b)

(* ---------------- blocking reads (worker side) ---------------- *)

let really_read fd n : Bytes.t =
  let b = Bytes.create n in
  let rec go off =
    if off < n then begin
      let k =
        try Unix.read fd b off (n - off) with
        | Unix.Unix_error (Unix.EINTR, _, _) -> -1
        | Unix.Unix_error (Unix.EBADF, _, _) -> raise Closed
      in
      if k = 0 then raise Closed;
      go (off + max 0 k)
    end
  in
  go 0;
  b

let read_frame fd : 'a =
  let hdr = really_read fd 4 in
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if len < 0 || len > max_frame_len then raise Closed;
  let payload = really_read fd len in
  let sum = Int32.to_int (Bytes.get_int32_be (really_read fd 4) 0)
            land 0xFFFFFFFF
  in
  if Storage.fnv32 payload ~pos:0 ~len <> sum then raise Closed;
  Marshal.from_bytes payload 0

(* ---------------- buffered reads (coordinator side) ---------------- *)

type reader = { rbuf : Buffer.t }

let reader () = { rbuf = Buffer.create 4096 }

(* Pop every complete frame currently sitting in [r.rbuf].  Raises [Closed]
   on an impossible length field or a checksum mismatch: framing is lost
   (later byte boundaries mean nothing), so the peer is as good as dead. *)
let pop_frames (r : reader) : 'a list =
  let frames = ref [] in
  let continue = ref true in
  while !continue do
    let len = Buffer.length r.rbuf in
    if len < 4 then continue := false
    else begin
      let contents = Buffer.to_bytes r.rbuf in
      let flen = Int32.to_int (Bytes.get_int32_be contents 0) in
      if flen < 0 || flen > max_frame_len then raise Closed;
      if len < 4 + flen + 4 then continue := false
      else begin
        let sum = Int32.to_int (Bytes.get_int32_be contents (4 + flen))
                  land 0xFFFFFFFF
        in
        if Storage.fnv32 contents ~pos:4 ~len:flen <> sum then raise Closed;
        frames := Marshal.from_bytes (Bytes.sub contents 4 flen) 0 :: !frames;
        Buffer.clear r.rbuf;
        Buffer.add_subbytes r.rbuf contents (4 + flen + 4)
          (len - 4 - flen - 4)
      end
    end
  done;
  List.rev !frames

(* One nonblocking drain of [fd] into the reader; returns the complete
   frames that became available and whether the worker is gone — the pipe
   reached EOF, or a frame failed its checksum (framing is lost, so the
   stream is unusable from here on).  Any buffered partial frame is
   discarded with the dead worker. *)
let drain (r : reader) fd : 'a list * bool =
  let chunk = Bytes.create 65536 in
  let eof = ref false in
  let more = ref true in
  while !more do
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 ->
        eof := true;
        more := false
    | n -> Buffer.add_subbytes r.rbuf chunk 0 n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        more := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) ->
        eof := true;
        more := false
  done;
  match pop_frames r with
  | frames -> (frames, !eof)
  | exception Closed ->
      Buffer.clear r.rbuf;
      ([], true)

(* ---------------- the worker main loop ---------------- *)

(* Runs in the forked child; never returns.  [run] executes one task
   attempt and returns the marshalled result payload. *)
let worker_main ~slot ~hb_period_s ~(in_fd : Unix.file_descr)
    ~(out_fd : Unix.file_descr) ~(run : task:int -> attempt:int -> string) :
    unit =
  let wmu = Mutex.create () in
  let send (v : to_coordinator) = write_frame ~mutex:wmu out_fd v in
  (try send (Hello slot) with Closed | Unix.Unix_error _ -> Unix._exit 3);
  let stop = Atomic.make false in
  let (_ : unit Domain.t) =
    Domain.spawn (fun () ->
        try
          while not (Atomic.get stop) do
            Unix.sleepf hb_period_s;
            if not (Atomic.get stop) then send (Heartbeat slot)
          done
        with Closed | Unix.Unix_error _ -> ())
  in
  try
    let finished = ref false in
    while not !finished do
      match (read_frame in_fd : to_worker) with
      | Shutdown -> finished := true
      | Assign { task; attempt; self_kill } ->
          if self_kill then Unix.kill (Unix.getpid ()) Sys.sigkill;
          let payload = run ~task ~attempt in
          send (Done { task; attempt; payload })
    done;
    Atomic.set stop true;
    Unix._exit 0
  with
  | Closed -> Unix._exit 3
  | exn ->
      (* die loudly; the supervisor re-dispatches our instance from its
         checkpoint manifest *)
      (try
         Printf.eprintf "grapple shard worker %d: %s\n%!" slot
           (Printexc.to_string exn)
       with _ -> ());
      Unix._exit 2
