(** Fixed-capacity LRU map used for constraint memoization (paper,
    Section 4.3, "Constraint Memoization").  All operations are O(1). *)

type ('k, 'v) t

val create : int -> ('k, 'v) t
(** [create capacity] — raises [Invalid_argument] when [capacity <= 0]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; refreshes the key's recency on a hit. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or update; evicts the least recently used entry when full. *)

val size : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int

val evictions : ('k, 'v) t -> int
(** Entries displaced by capacity pressure since [create] or the last
    [clear], whichever is later. *)

val clear : ('k, 'v) t -> unit
(** Drop every entry and reset the eviction tally: a cleared cache starts a
    fresh accounting epoch (clearing is not an eviction). *)

val keys : ('k, 'v) t -> 'k list
(** Keys from most to least recently used; intended for tests. *)
