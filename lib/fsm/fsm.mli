(** Finite-state-machine property specifications (paper, Section 2,
    Figures 2 and 3a).

    A property names the object classes it tracks, the FSM states, the
    transitions driven by method-call events on a tracked object, and the
    states acceptable at the object's end of life.  Typestate semantics: the
    distinguished [Error] state is absorbing; an event with no declared
    transition either stalls (default) or errs ({!strict_events}). *)

type state = int

(** How a statement fires an event.  An FSM with no event declarations
    uses *name matching*: every library instance call fires an event named
    after the called method (the historical behavior).  An FSM compiled
    from a property DSL spec may declare events explicitly, each with a
    syntactic pattern and guards; a statement then fires the first
    declared event whose pattern matches and whose guards all hold. *)
type pattern =
  | Pcall of string  (** library instance call with this method name *)
  | Pany_call        (** any library instance call *)
  | Pstore           (** the tracked reference is stored into a field *)
  | Preturn          (** the tracked reference is returned *)

(** Guards are pure syntactic predicates over (statement, enclosing
    method), so every analysis that detects events independently agrees
    statement by statement. *)
type guard =
  | Garg_const of int * int  (** argument [i] is the integer literal [n] *)
  | Gnullable of bool
      (** the subject variable has (lacks) a null assignment in the
          enclosing method *)
  | Gescaping of bool
      (** the subject variable is (is not) stored to a field, passed as a
          call argument, or returned in the enclosing method *)

type event_decl = {
  ev_name : string;
  ev_pattern : pattern;
  ev_guards : guard list;
}

type t = private {
  name : string;
  tracked_classes : string list;
  state_names : string array;
  initial : state;
  error : state;
  transitions : (state * string, state) Hashtbl.t;
  accepting : state list;
  events : string list;
  ignore_unknown_events : bool;
  event_decls : event_decl list;
      (** empty = name matching; repeated names act as alternation, first
          match wins *)
  messages : (string * string) list;
      (** state name -> report message template ([{class}]/[{state}]
          substituted at report time) *)
}

(** {1 Building specifications} *)

type builder

exception Invalid_spec of string

val builder : string -> builder
val track : builder -> string -> unit
(** Add an object class whose allocations the property tracks. *)

val state : builder -> string -> unit
val initial : builder -> string -> unit
val accepting : builder -> string -> unit
val on : builder -> from:string -> event:string -> goto:string -> unit

val strict_events : builder -> unit
(** Make events without a declared transition drive the object to [Error]
    instead of leaving the state unchanged. *)

val declare_event :
  builder -> name:string -> pattern:pattern -> guards:guard list -> unit
(** Declare a pattern-matched event; switches the FSM to declared-event
    matching. *)

val message : builder -> state:string -> text:string -> unit
(** Attach a report message template to a state. *)

val build : builder -> t
(** Raises {!Invalid_spec} on a missing initial state, no tracked classes,
    or nondeterministic transitions.  An [Error] state is added if the
    specification does not declare one. *)

(** {1 Queries} *)

val n_states : t -> int
val state_name : t -> state -> string
val is_accepting : t -> state -> bool
val is_tracked : t -> string -> bool
val is_event : t -> string -> bool

(** {1 Typestate semantics} *)

val step : t -> state -> string -> state
val run : t -> string list -> state
(** [run t events] folds {!step} from the initial state. *)

val event_vector : t -> string -> int array
(** The transition function of one event as a vector indexed by state,
    suitable for {!Cfl.Transfn.intern}. *)

type verdict = Ok_ | Reaches_error | Bad_final of state

val check_sequence : t -> string list -> verdict
(** Classify a complete event sequence: reaches [Error], ends in a
    non-accepting state, or is fine. *)

(** {1 Event matching}

    The single point of truth for "which event, if any, does this
    statement fire" — used identically by the dataflow-graph builder, the
    summary pre-analysis, and the escape pre-filter.  The caller decides
    whether a call is a library call (target not defined in the program);
    the matcher resolves patterns and guards. *)

val call_event : t -> meth:Jir.Ast.meth -> Jir.Ast.call -> string option
(** Event fired by a library instance call ([None] for static calls, or
    when no declared pattern+guards match).  Name-matching FSMs fire the
    called method's name unconditionally. *)

val store_event : t -> meth:Jir.Ast.meth -> src:Jir.Ast.var -> string option
(** Event fired by storing the tracked reference [src] into a field
    (declared-event FSMs only). *)

val return_event : t -> meth:Jir.Ast.meth -> Jir.Ast.var -> string option
(** Event fired by returning the tracked reference (declared-event FSMs
    only). *)

val guard_holds :
  meth:Jir.Ast.meth -> var:Jir.Ast.var -> call:Jir.Ast.call option ->
  guard -> bool

val describe_state : t -> state -> cls:string -> string
(** Report text for reaching a state: its message template with
    [{class}]/[{state}] substituted, or just the state name. *)

(** {1 Transfer relations}

    A relation [r] over states: [r.(s).(s')] holds iff some abstracted
    event sequence can take the object from [s] to [s'].  Used by the
    interprocedural summary pre-analysis ({!module:Analysis.Summaries}):
    straight-line effects are functions, joins over branches make genuine
    relations, composition chains code fragments. *)

type rel = bool array array

val rel_identity : t -> rel
val rel_of_event : t -> string -> rel
(** The {!step} function of one event, lifted to a relation. *)

val rel_compose : rel -> rel -> rel
(** [rel_compose a b] is "first [a], then [b]". *)

val rel_join : rel -> rel -> rel
val rel_equal : rel -> rel -> bool
val rel_leq : rel -> rel -> bool
val rel_apply : rel -> bool array -> bool array
(** Image of a state set under the relation. *)

val rel_universal : t -> rel
(** Reflexive-transitive closure over every event of the property: the
    effect of an arbitrary unknown event sequence.  Over-approximates any
    concrete behavior; used for objects that escape the summary's view. *)

val rel_to_string : t -> rel -> string
(** Deterministic rendering ["s->s' s->s'' ..."], for tests and debug. *)

val pp : Format.formatter -> t -> unit
