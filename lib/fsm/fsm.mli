(** Finite-state-machine property specifications (paper, Section 2,
    Figures 2 and 3a).

    A property names the object classes it tracks, the FSM states, the
    transitions driven by method-call events on a tracked object, and the
    states acceptable at the object's end of life.  Typestate semantics: the
    distinguished [Error] state is absorbing; an event with no declared
    transition either stalls (default) or errs ({!strict_events}). *)

type state = int

type t = private {
  name : string;
  tracked_classes : string list;
  state_names : string array;
  initial : state;
  error : state;
  transitions : (state * string, state) Hashtbl.t;
  accepting : state list;
  events : string list;
  ignore_unknown_events : bool;
}

(** {1 Building specifications} *)

type builder

exception Invalid_spec of string

val builder : string -> builder
val track : builder -> string -> unit
(** Add an object class whose allocations the property tracks. *)

val state : builder -> string -> unit
val initial : builder -> string -> unit
val accepting : builder -> string -> unit
val on : builder -> from:string -> event:string -> goto:string -> unit

val strict_events : builder -> unit
(** Make events without a declared transition drive the object to [Error]
    instead of leaving the state unchanged. *)

val build : builder -> t
(** Raises {!Invalid_spec} on a missing initial state, no tracked classes,
    or nondeterministic transitions.  An [Error] state is added if the
    specification does not declare one. *)

(** {1 Queries} *)

val n_states : t -> int
val state_name : t -> state -> string
val is_accepting : t -> state -> bool
val is_tracked : t -> string -> bool
val is_event : t -> string -> bool

(** {1 Typestate semantics} *)

val step : t -> state -> string -> state
val run : t -> string list -> state
(** [run t events] folds {!step} from the initial state. *)

val event_vector : t -> string -> int array
(** The transition function of one event as a vector indexed by state,
    suitable for {!Cfl.Transfn.intern}. *)

type verdict = Ok_ | Reaches_error | Bad_final of state

val check_sequence : t -> string list -> verdict
(** Classify a complete event sequence: reaches [Error], ends in a
    non-accepting state, or is fine. *)

(** {1 Transfer relations}

    A relation [r] over states: [r.(s).(s')] holds iff some abstracted
    event sequence can take the object from [s] to [s'].  Used by the
    interprocedural summary pre-analysis ({!module:Analysis.Summaries}):
    straight-line effects are functions, joins over branches make genuine
    relations, composition chains code fragments. *)

type rel = bool array array

val rel_identity : t -> rel
val rel_of_event : t -> string -> rel
(** The {!step} function of one event, lifted to a relation. *)

val rel_compose : rel -> rel -> rel
(** [rel_compose a b] is "first [a], then [b]". *)

val rel_join : rel -> rel -> rel
val rel_equal : rel -> rel -> bool
val rel_leq : rel -> rel -> bool
val rel_apply : rel -> bool array -> bool array
(** Image of a state set under the relation. *)

val rel_universal : t -> rel
(** Reflexive-transitive closure over every event of the property: the
    effect of an arbitrary unknown event sequence.  Over-approximates any
    concrete behavior; used for objects that escape the summary's view. *)

val rel_to_string : t -> rel -> string
(** Deterministic rendering ["s->s' s->s'' ..."], for tests and debug. *)

val pp : Format.formatter -> t -> unit
