(* Finite-state-machine property specifications (paper §2, Figures 2/3a).

   A property names the object types it tracks, the FSM states and the
   transitions among them driven by method-call events on the tracked
   object, plus which states are acceptable at end of life.  Typestate
   semantics: an event with no declared transition from the current state
   drives the object into the distinguished [error] state, which is
   absorbing. *)

type state = int

(* How a statement fires an event.  The default (an FSM with no event
   declarations) is *name matching*: every library instance call fires an
   event named after the called method, which is how the hand-coded
   checkers have always worked.  An FSM compiled from a DSL spec may
   instead declare events explicitly, each with a syntactic pattern and
   optional guards; a statement then fires the first declared event whose
   pattern matches and whose guards all hold, or nothing. *)
type pattern =
  | Pcall of string  (* library instance call with this method name *)
  | Pany_call        (* any library instance call *)
  | Pstore           (* the tracked reference is stored into a field *)
  | Preturn          (* the tracked reference is returned *)

(* Guards are decided syntactically from the statement and its enclosing
   method, so the graph builder, the summary pre-analysis, and the escape
   pre-filter — which all detect events independently — agree exactly. *)
type guard =
  | Garg_const of int * int
      (* argument [i] is the integer literal [n] *)
  | Gnullable of bool
      (* the subject variable has (true) / lacks (false) a null assignment
         somewhere in the enclosing method *)
  | Gescaping of bool
      (* the subject variable is (true) / is not (false) stored to a field,
         passed as a call argument, or returned in the enclosing method *)

type event_decl = {
  ev_name : string;
  ev_pattern : pattern;
  ev_guards : guard list;
}

type t = {
  name : string;
  tracked_classes : string list;  (* allocation types to track *)
  state_names : string array;     (* index = state id *)
  initial : state;
  error : state;
  transitions : (state * string, state) Hashtbl.t;  (* (from, event) -> to *)
  accepting : state list;         (* states legal at object end-of-life *)
  events : string list;           (* all event method names, deduplicated *)
  ignore_unknown_events : bool;
      (* if true, events with no transition from a state leave the state
         unchanged instead of going to error; used for properties that only
         constrain a subset of the API *)
  event_decls : event_decl list;
      (* empty = name matching (the legacy behavior); repeated names act as
         pattern alternation, first match wins *)
  messages : (string * string) list;
      (* state name -> report message template; [{class}] and [{state}]
         are substituted at report time *)
}

type builder = {
  b_name : string;
  mutable b_classes : string list;
  mutable b_states : string list;  (* reverse order *)
  mutable b_initial : string option;
  mutable b_accepting : string list;
  mutable b_transitions : (string * string * string) list;  (* from,event,to *)
  mutable b_ignore_unknown : bool;
  mutable b_event_decls : event_decl list;  (* reverse order *)
  mutable b_messages : (string * string) list;
}

let builder name =
  { b_name = name; b_classes = []; b_states = []; b_initial = None;
    b_accepting = []; b_transitions = []; b_ignore_unknown = true;
    b_event_decls = []; b_messages = [] }

let track b cls = b.b_classes <- cls :: b.b_classes

let state b name =
  if not (List.mem name b.b_states) then b.b_states <- name :: b.b_states

let initial b name =
  state b name;
  b.b_initial <- Some name

let accepting b name =
  state b name;
  b.b_accepting <- name :: b.b_accepting

let on b ~from ~event ~goto =
  state b from;
  state b goto;
  b.b_transitions <- (from, event, goto) :: b.b_transitions

let strict_events b = b.b_ignore_unknown <- false

let declare_event b ~name ~pattern ~guards =
  b.b_event_decls <- { ev_name = name; ev_pattern = pattern; ev_guards = guards } :: b.b_event_decls

let message b ~state:st ~text =
  state b st;
  b.b_messages <- (st, text) :: b.b_messages

exception Invalid_spec of string

let build (b : builder) : t =
  let states = List.rev b.b_states in
  let states = states @ (if List.mem "Error" states then [] else [ "Error" ]) in
  let state_names = Array.of_list states in
  let id_of name =
    let rec go i =
      if i >= Array.length state_names then
        raise (Invalid_spec ("unknown state " ^ name))
      else if state_names.(i) = name then i
      else go (i + 1)
    in
    go 0
  in
  let initial =
    match b.b_initial with
    | Some s -> id_of s
    | None -> raise (Invalid_spec ("no initial state in " ^ b.b_name))
  in
  if b.b_classes = [] then
    raise (Invalid_spec ("no tracked classes in " ^ b.b_name));
  let transitions = Hashtbl.create 32 in
  List.iter
    (fun (from, event, goto) ->
      let key = (id_of from, event) in
      (match Hashtbl.find_opt transitions key with
      | Some prev when prev <> id_of goto ->
          raise
            (Invalid_spec
               (Printf.sprintf "nondeterministic transition %s --%s--> {%s,%s}"
                  from event state_names.(prev) goto))
      | _ -> ());
      Hashtbl.replace transitions key (id_of goto))
    b.b_transitions;
  let events =
    List.sort_uniq compare
      (List.map (fun (_, e, _) -> e) b.b_transitions
      @ List.map (fun d -> d.ev_name) b.b_event_decls)
  in
  { name = b.b_name;
    tracked_classes = List.rev b.b_classes;
    state_names;
    initial;
    error = id_of "Error";
    transitions;
    accepting = List.map id_of (List.sort_uniq compare b.b_accepting);
    events;
    ignore_unknown_events = b.b_ignore_unknown;
    event_decls = List.rev b.b_event_decls;
    messages = List.rev b.b_messages }

let n_states (t : t) = Array.length t.state_names

let state_name (t : t) s = t.state_names.(s)

let is_accepting (t : t) s = List.mem s t.accepting

let is_tracked (t : t) cls = List.mem cls t.tracked_classes

let is_event (t : t) event = List.mem event t.events

(* ------------------------------------------------------------------ *)
(* Event matching.                                                     *)
(*                                                                     *)
(* Three analyses detect events independently — the dataflow graph     *)
(* builder, the summary pre-analysis, and the escape pre-filter — and  *)
(* their answers must agree statement by statement or the pre-filters  *)
(* become unsound.  Everything here is therefore a pure syntactic      *)
(* function of (statement, enclosing method).  The caller is           *)
(* responsible for the "library call" test (call target not defined in *)
(* the program); the matcher only resolves pattern and guards.         *)
(* ------------------------------------------------------------------ *)

let rec block_stmts (b : Jir.Ast.block) : Jir.Ast.stmt list =
  List.concat_map
    (fun (s : Jir.Ast.stmt) ->
      s
      ::
      (match s.Jir.Ast.kind with
      | Jir.Ast.If (_, th, el) -> block_stmts th @ block_stmts el
      | Jir.Ast.While (_, b) -> block_stmts b
      | Jir.Ast.Try (b, cs) ->
          block_stmts b
          @ List.concat_map (fun c -> block_stmts c.Jir.Ast.handler) cs
      | _ -> []))
    b

(* Does [var] receive a null assignment anywhere in the method? *)
let has_null_def (m : Jir.Ast.meth) (var : Jir.Ast.var) =
  List.exists
    (fun (s : Jir.Ast.stmt) ->
      match s.Jir.Ast.kind with
      | Jir.Ast.Decl (_, x, Some Jir.Ast.Rnull) | Jir.Ast.Assign (x, Jir.Ast.Rnull) ->
          x = var
      | _ -> false)
    (block_stmts m.Jir.Ast.body)

(* Is [var] stored to a field, passed as a call argument, or returned
   anywhere in the method? *)
let escapes_method (m : Jir.Ast.meth) (var : Jir.Ast.var) =
  let in_expr e = List.mem var (Jir.Ast.expr_vars e) in
  let in_call (c : Jir.Ast.call) = List.exists in_expr c.Jir.Ast.args in
  List.exists
    (fun (s : Jir.Ast.stmt) ->
      match s.Jir.Ast.kind with
      | Jir.Ast.Store (_, _, y) -> y = var
      | Jir.Ast.Expr c -> in_call c
      | Jir.Ast.Decl (_, _, Some r) | Jir.Ast.Assign (_, r) -> (
          match r with
          | Jir.Ast.Rcall c -> in_call c
          | Jir.Ast.Rnew (_, args) -> List.exists in_expr args
          | _ -> false)
      | Jir.Ast.Return (Some e) -> in_expr e
      | _ -> false)
    (block_stmts m.Jir.Ast.body)

let guard_holds ~(meth : Jir.Ast.meth) ~(var : Jir.Ast.var)
    ~(call : Jir.Ast.call option) (g : guard) =
  match g with
  | Garg_const (i, n) -> (
      match call with
      | Some c -> (
          match List.nth_opt c.Jir.Ast.args i with
          | Some (Jir.Ast.Const k) -> k = n
          | _ -> false)
      | None -> false)
  | Gnullable want -> has_null_def meth var = want
  | Gescaping want -> escapes_method meth var = want

let first_match (t : t) ~meth ~var ~call ~(pattern_ok : pattern -> bool) =
  let rec go = function
    | [] -> None
    | d :: tl ->
        if
          pattern_ok d.ev_pattern
          && List.for_all (guard_holds ~meth ~var ~call) d.ev_guards
        then Some d.ev_name
        else go tl
  in
  go t.event_decls

(* Event fired by a library instance call, if any.  Name-matching FSMs
   (no declarations) fire the called method's name unconditionally: this
   is the historical behavior the hand-coded checkers rely on. *)
let call_event (t : t) ~(meth : Jir.Ast.meth) (c : Jir.Ast.call) :
    string option =
  match c.Jir.Ast.recv with
  | None -> None
  | Some r -> (
      match t.event_decls with
      | [] -> Some c.Jir.Ast.mname
      | _ ->
          first_match t ~meth ~var:r ~call:(Some c) ~pattern_ok:(function
            | Pcall m -> m = c.Jir.Ast.mname
            | Pany_call -> true
            | Pstore | Preturn -> false))

(* Event fired by storing the tracked reference [src] into a field. *)
let store_event (t : t) ~(meth : Jir.Ast.meth) ~(src : Jir.Ast.var) :
    string option =
  match t.event_decls with
  | [] -> None
  | _ ->
      first_match t ~meth ~var:src ~call:None ~pattern_ok:(function
        | Pstore -> true
        | Pcall _ | Pany_call | Preturn -> false)

(* Event fired by returning the tracked reference [var]. *)
let return_event (t : t) ~(meth : Jir.Ast.meth) (var : Jir.Ast.var) :
    string option =
  match t.event_decls with
  | [] -> None
  | _ ->
      first_match t ~meth ~var ~call:None ~pattern_ok:(function
        | Preturn -> true
        | Pcall _ | Pany_call | Pstore -> false)

(* Report text for reaching [s]: the state's message template with
   [{class}]/[{state}] substituted, or just the state name. *)
let describe_state (t : t) (s : state) ~(cls : string) : string =
  let name = t.state_names.(s) in
  match List.assoc_opt name t.messages with
  | None -> name
  | Some tmpl ->
      let replace ~sub ~by s =
        let slen = String.length sub in
        let buf = Buffer.create (String.length s) in
        let i = ref 0 in
        while !i <= String.length s - slen do
          if String.sub s !i slen = sub then begin
            Buffer.add_string buf by;
            i := !i + slen
          end
          else begin
            Buffer.add_char buf s.[!i];
            incr i
          end
        done;
        Buffer.add_string buf (String.sub s !i (String.length s - !i));
        Buffer.contents buf
      in
      replace ~sub:"{state}" ~by:name (replace ~sub:"{class}" ~by:cls tmpl)

(* One step of the FSM.  Error is absorbing; unknown events either stall or
   fail according to the spec. *)
let step (t : t) (s : state) (event : string) : state =
  if s = t.error then t.error
  else
    match Hashtbl.find_opt t.transitions (s, event) with
    | Some s' -> s'
    | None -> if t.ignore_unknown_events then s else t.error

(* The transition function of [event] as a vector usable with [Transfn]. *)
let event_vector (t : t) (event : string) : int array =
  Array.init (n_states t) (fun s -> step t s event)

(* Run a whole event sequence from the initial state. *)
let run (t : t) (events : string list) : state =
  List.fold_left (fun s e -> step t s e) t.initial events

(* A sequence is buggy if it reaches Error or ends in a non-accepting
   state. *)
type verdict = Ok_ | Reaches_error | Bad_final of state

let check_sequence (t : t) (events : string list) : verdict =
  let rec go s = function
    | [] -> if is_accepting t s then Ok_ else Bad_final s
    | e :: rest ->
        let s' = step t s e in
        if s' = t.error then Reaches_error else go s' rest
  in
  go t.initial events

(* ------------------------------------------------------------------ *)
(* Transfer relations.                                                 *)
(*                                                                     *)
(* A relation r over states: r.(s).(s') holds iff some abstracted      *)
(* event sequence can take the object from s to s'.  Relations are the *)
(* summary currency of the interprocedural pre-analysis: the effect of *)
(* a straight-line code fragment is a function (one true bit per row), *)
(* joins over branches make it a genuine relation, and composition     *)
(* chains fragments.  All operations are over the fixed state space of *)
(* one property, so sizes always agree.                                *)
(* ------------------------------------------------------------------ *)

type rel = bool array array

let rel_identity (t : t) : rel =
  let n = n_states t in
  Array.init n (fun s -> Array.init n (fun s' -> s = s'))

let rel_of_event (t : t) (event : string) : rel =
  let n = n_states t in
  Array.init n (fun s ->
      let s' = step t s event in
      Array.init n (fun j -> j = s'))

(* [rel_compose a b] relates s to s'' iff a takes s to some s' and b takes
   s' to s'': "first a, then b". *)
let rel_compose (a : rel) (b : rel) : rel =
  let n = Array.length a in
  Array.init n (fun s ->
      let row = Array.make n false in
      for s' = 0 to n - 1 do
        if a.(s).(s') then
          for s'' = 0 to n - 1 do
            if b.(s').(s'') then row.(s'') <- true
          done
      done;
      row)

let rel_join (a : rel) (b : rel) : rel =
  let n = Array.length a in
  Array.init n (fun s -> Array.init n (fun s' -> a.(s).(s') || b.(s).(s')))

let rel_equal (a : rel) (b : rel) : bool =
  let n = Array.length a in
  n = Array.length b
  &&
  (try
     for s = 0 to n - 1 do
       for s' = 0 to n - 1 do
         if a.(s).(s') <> b.(s).(s') then raise Exit
       done
     done;
     true
   with Exit -> false)

let rel_leq (a : rel) (b : rel) : bool = rel_equal (rel_join a b) b

(* Image of a state set under a relation. *)
let rel_apply (r : rel) (states : bool array) : bool array =
  let n = Array.length r in
  let out = Array.make n false in
  Array.iteri
    (fun s live -> if live then
        for s' = 0 to n - 1 do
          if r.(s).(s') then out.(s') <- true
        done)
    states;
  out

(* Reflexive-transitive closure over every event of the property: the
   effect of an unknown/unbounded event sequence, used for objects that
   escape the summary's view (stored to a field, aliased, passed to a
   library).  Over-approximates any concrete behavior. *)
let rel_universal (t : t) : rel =
  let r = ref (rel_identity t) in
  let one_step =
    List.fold_left
      (fun acc e -> rel_join acc (rel_of_event t e))
      (rel_identity t) t.events
  in
  let continue = ref true in
  while !continue do
    let next = rel_join !r (rel_compose !r one_step) in
    if rel_equal next !r then continue := false else r := next
  done;
  !r

let rel_to_string (t : t) (r : rel) : string =
  let buf = Buffer.create 64 in
  Array.iteri
    (fun s row ->
      Array.iteri
        (fun s' b ->
          if b then begin
            if Buffer.length buf > 0 then Buffer.add_char buf ' ';
            Buffer.add_string buf
              (Printf.sprintf "%s->%s" (state_name t s) (state_name t s'))
          end)
        row)
    r;
  Buffer.contents buf

let pp ppf (t : t) =
  Fmt.pf ppf "@[<v>FSM %s tracking %a@ initial=%s accepting={%a}@]" t.name
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
    t.tracked_classes
    (state_name t t.initial)
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
    (List.map (state_name t) t.accepting)
