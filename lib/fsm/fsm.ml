(* Finite-state-machine property specifications (paper §2, Figures 2/3a).

   A property names the object types it tracks, the FSM states and the
   transitions among them driven by method-call events on the tracked
   object, plus which states are acceptable at end of life.  Typestate
   semantics: an event with no declared transition from the current state
   drives the object into the distinguished [error] state, which is
   absorbing. *)

type state = int

type t = {
  name : string;
  tracked_classes : string list;  (* allocation types to track *)
  state_names : string array;     (* index = state id *)
  initial : state;
  error : state;
  transitions : (state * string, state) Hashtbl.t;  (* (from, event) -> to *)
  accepting : state list;         (* states legal at object end-of-life *)
  events : string list;           (* all event method names, deduplicated *)
  ignore_unknown_events : bool;
      (* if true, events with no transition from a state leave the state
         unchanged instead of going to error; used for properties that only
         constrain a subset of the API *)
}

type builder = {
  b_name : string;
  mutable b_classes : string list;
  mutable b_states : string list;  (* reverse order *)
  mutable b_initial : string option;
  mutable b_accepting : string list;
  mutable b_transitions : (string * string * string) list;  (* from,event,to *)
  mutable b_ignore_unknown : bool;
}

let builder name =
  { b_name = name; b_classes = []; b_states = []; b_initial = None;
    b_accepting = []; b_transitions = []; b_ignore_unknown = true }

let track b cls = b.b_classes <- cls :: b.b_classes

let state b name =
  if not (List.mem name b.b_states) then b.b_states <- name :: b.b_states

let initial b name =
  state b name;
  b.b_initial <- Some name

let accepting b name =
  state b name;
  b.b_accepting <- name :: b.b_accepting

let on b ~from ~event ~goto =
  state b from;
  state b goto;
  b.b_transitions <- (from, event, goto) :: b.b_transitions

let strict_events b = b.b_ignore_unknown <- false

exception Invalid_spec of string

let build (b : builder) : t =
  let states = List.rev b.b_states in
  let states = states @ (if List.mem "Error" states then [] else [ "Error" ]) in
  let state_names = Array.of_list states in
  let id_of name =
    let rec go i =
      if i >= Array.length state_names then
        raise (Invalid_spec ("unknown state " ^ name))
      else if state_names.(i) = name then i
      else go (i + 1)
    in
    go 0
  in
  let initial =
    match b.b_initial with
    | Some s -> id_of s
    | None -> raise (Invalid_spec ("no initial state in " ^ b.b_name))
  in
  if b.b_classes = [] then
    raise (Invalid_spec ("no tracked classes in " ^ b.b_name));
  let transitions = Hashtbl.create 32 in
  List.iter
    (fun (from, event, goto) ->
      let key = (id_of from, event) in
      (match Hashtbl.find_opt transitions key with
      | Some prev when prev <> id_of goto ->
          raise
            (Invalid_spec
               (Printf.sprintf "nondeterministic transition %s --%s--> {%s,%s}"
                  from event state_names.(prev) goto))
      | _ -> ());
      Hashtbl.replace transitions key (id_of goto))
    b.b_transitions;
  let events =
    List.sort_uniq compare (List.map (fun (_, e, _) -> e) b.b_transitions)
  in
  { name = b.b_name;
    tracked_classes = List.rev b.b_classes;
    state_names;
    initial;
    error = id_of "Error";
    transitions;
    accepting = List.map id_of (List.sort_uniq compare b.b_accepting);
    events;
    ignore_unknown_events = b.b_ignore_unknown }

let n_states (t : t) = Array.length t.state_names

let state_name (t : t) s = t.state_names.(s)

let is_accepting (t : t) s = List.mem s t.accepting

let is_tracked (t : t) cls = List.mem cls t.tracked_classes

let is_event (t : t) event = List.mem event t.events

(* One step of the FSM.  Error is absorbing; unknown events either stall or
   fail according to the spec. *)
let step (t : t) (s : state) (event : string) : state =
  if s = t.error then t.error
  else
    match Hashtbl.find_opt t.transitions (s, event) with
    | Some s' -> s'
    | None -> if t.ignore_unknown_events then s else t.error

(* The transition function of [event] as a vector usable with [Transfn]. *)
let event_vector (t : t) (event : string) : int array =
  Array.init (n_states t) (fun s -> step t s event)

(* Run a whole event sequence from the initial state. *)
let run (t : t) (events : string list) : state =
  List.fold_left (fun s e -> step t s e) t.initial events

(* A sequence is buggy if it reaches Error or ends in a non-accepting
   state. *)
type verdict = Ok_ | Reaches_error | Bad_final of state

let check_sequence (t : t) (events : string list) : verdict =
  let rec go s = function
    | [] -> if is_accepting t s then Ok_ else Bad_final s
    | e :: rest ->
        let s' = step t s e in
        if s' = t.error then Reaches_error else go s' rest
  in
  go t.initial events

(* ------------------------------------------------------------------ *)
(* Transfer relations.                                                 *)
(*                                                                     *)
(* A relation r over states: r.(s).(s') holds iff some abstracted      *)
(* event sequence can take the object from s to s'.  Relations are the *)
(* summary currency of the interprocedural pre-analysis: the effect of *)
(* a straight-line code fragment is a function (one true bit per row), *)
(* joins over branches make it a genuine relation, and composition     *)
(* chains fragments.  All operations are over the fixed state space of *)
(* one property, so sizes always agree.                                *)
(* ------------------------------------------------------------------ *)

type rel = bool array array

let rel_identity (t : t) : rel =
  let n = n_states t in
  Array.init n (fun s -> Array.init n (fun s' -> s = s'))

let rel_of_event (t : t) (event : string) : rel =
  let n = n_states t in
  Array.init n (fun s ->
      let s' = step t s event in
      Array.init n (fun j -> j = s'))

(* [rel_compose a b] relates s to s'' iff a takes s to some s' and b takes
   s' to s'': "first a, then b". *)
let rel_compose (a : rel) (b : rel) : rel =
  let n = Array.length a in
  Array.init n (fun s ->
      let row = Array.make n false in
      for s' = 0 to n - 1 do
        if a.(s).(s') then
          for s'' = 0 to n - 1 do
            if b.(s').(s'') then row.(s'') <- true
          done
      done;
      row)

let rel_join (a : rel) (b : rel) : rel =
  let n = Array.length a in
  Array.init n (fun s -> Array.init n (fun s' -> a.(s).(s') || b.(s).(s')))

let rel_equal (a : rel) (b : rel) : bool =
  let n = Array.length a in
  n = Array.length b
  &&
  (try
     for s = 0 to n - 1 do
       for s' = 0 to n - 1 do
         if a.(s).(s') <> b.(s).(s') then raise Exit
       done
     done;
     true
   with Exit -> false)

let rel_leq (a : rel) (b : rel) : bool = rel_equal (rel_join a b) b

(* Image of a state set under a relation. *)
let rel_apply (r : rel) (states : bool array) : bool array =
  let n = Array.length r in
  let out = Array.make n false in
  Array.iteri
    (fun s live -> if live then
        for s' = 0 to n - 1 do
          if r.(s).(s') then out.(s') <- true
        done)
    states;
  out

(* Reflexive-transitive closure over every event of the property: the
   effect of an unknown/unbounded event sequence, used for objects that
   escape the summary's view (stored to a field, aliased, passed to a
   library).  Over-approximates any concrete behavior. *)
let rel_universal (t : t) : rel =
  let r = ref (rel_identity t) in
  let one_step =
    List.fold_left
      (fun acc e -> rel_join acc (rel_of_event t e))
      (rel_identity t) t.events
  in
  let continue = ref true in
  while !continue do
    let next = rel_join !r (rel_compose !r one_step) in
    if rel_equal next !r then continue := false else r := next
  done;
  !r

let rel_to_string (t : t) (r : rel) : string =
  let buf = Buffer.create 64 in
  Array.iteri
    (fun s row ->
      Array.iteri
        (fun s' b ->
          if b then begin
            if Buffer.length buf > 0 then Buffer.add_char buf ' ';
            Buffer.add_string buf
              (Printf.sprintf "%s->%s" (state_name t s) (state_name t s'))
          end)
        row)
    r;
  Buffer.contents buf

let pp ppf (t : t) =
  Fmt.pf ppf "@[<v>FSM %s tracking %a@ initial=%s accepting={%a}@]" t.name
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
    t.tracked_classes
    (state_name t t.initial)
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
    (List.map (state_name t) t.accepting)
