(* Assembly of synthetic subjects.

   A subject is a layered service architecture: classes are organized into
   layers; every method of layer i may call methods of layer i-1 (bounded
   fanout, so the clone tree stays within budget); the entry method drives
   the top layer.  Pattern snippets — correct fillers, infeasible-path
   decoys, and the profile's quota of injected bugs — are planted into
   method bodies.  Every injected bug carries a ground-truth expectation
   keyed by source line, which the scoring module matches against Grapple's
   warnings. *)

type profile = {
  name : string;
  description : string;
  seed : int;
  layers : int;              (* call-chain depth *)
  classes_per_layer : int;
  methods_per_class : int;
  patterns_per_method : int; (* correct patterns planted per method *)
  calls_per_method : int;    (* calls into the previous layer *)
  bugs : (string * int) list;  (* checker -> number of injected bugs *)
  lint_bugs : (string * int) list;
      (* lint slug -> number of injected lint-detectable bugs *)
  loops_per_subject : int;
}

type subject = {
  profile : profile;
  program : Jir.Ast.program;
  expected : Patterns.expectation list;
  loc : int;
  n_methods : int;
}

let helpers_class = "Helpers"

(* One method body: planted patterns + calls into the previous layer +
   occasionally a bounded loop around a filler.  [callees] must already be
   the chosen call targets: the generator guarantees every method of the
   previous layer is called by someone, so all planted bugs are reachable
   from the entry point. *)
let gen_method (ctx : Patterns.ctx) ~cls ~name ~callees ~planted ~n_patterns
    ~with_loop =
  let param = "p0" in
  let pieces = ref [] in
  let helpers = ref [] in
  let expected = ref [] in
  let add (piece : Patterns.piece) =
    pieces := !pieces @ [ piece.Patterns.stmts ];
    helpers := !helpers @ piece.Patterns.helpers;
    expected := !expected @ piece.Patterns.expected
  in
  List.iter (fun mk -> add (mk ctx ~param)) planted;
  for _ = 1 to n_patterns do
    add ((Rng.pick ctx.Patterns.rng Patterns.correct_patterns) ctx ~param)
  done;
  let call_stmts =
    List.map
      (fun (ccls, cname) ->
        Jir.Builder.sstmt ~at:(Patterns.next_line ctx) ccls cname
          [ Jir.Builder.v param ])
      callees
  in
  let body = List.concat !pieces @ call_stmts in
  (* a loop wraps one extra pattern, not the whole body: unrolling doubles
     the branches under the loop, and CFETs are exponential in branch
     count, so keeping loop bodies small keeps tree sizes realistic *)
  let body =
    if with_loop then begin
      let looped = (Rng.pick ctx.Patterns.rng Patterns.correct_patterns) ctx ~param in
      helpers := !helpers @ looped.Patterns.helpers;
      expected := !expected @ looped.Patterns.expected;
      let iv = Patterns.fresh ctx "it" in
      body
      @ [ Jir.Builder.decl ~at:(Patterns.next_line ctx) Jir.Ast.Tint iv
            (Jir.Builder.e (Jir.Builder.i 0));
          Jir.Builder.while_ ~at:(Patterns.next_line ctx)
            Jir.Builder.(v iv <: i 2)
            (looped.Patterns.stmts
            @ [ Jir.Builder.assign ~at:(Patterns.next_line ctx) iv
                  Jir.Builder.(e (v iv +: i 1)) ]) ]
    end
    else body
  in
  let body = body @ [ Jir.Builder.ret0 ~at:(Patterns.next_line ctx) () ] in
  ( Jir.Builder.meth ~cls ~name ~params:[ (Jir.Ast.Tint, param) ] body,
    !helpers,
    !expected )

let generate (p : profile) : subject =
  let file = p.name ^ ".jir" in
  let ctx = Patterns.create_ctx ~seed:p.seed ~file ~helpers_class in
  let rng = ctx.Patterns.rng in
  (* distribute the bug quota over (layer, class, method) slots *)
  let slots = ref [] in
  for layer = 0 to p.layers - 1 do
    for c = 0 to p.classes_per_layer - 1 do
      for m = 0 to p.methods_per_class - 1 do
        slots := (layer, c, m) :: !slots
      done
    done
  done;
  let slots = Rng.shuffle rng !slots in
  let bug_plan : (int * int * int, (Patterns.ctx -> param:string -> Patterns.piece) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let rec assign_bugs bug_rng bugs slots =
    match (bugs, slots) with
    | [], rest -> rest
    | (_, n) :: rest, _ when n <= 0 -> assign_bugs bug_rng rest slots
    | (patterns, n) :: rest, slot :: more ->
        let pattern = Rng.pick bug_rng patterns in
        let cur =
          match Hashtbl.find_opt bug_plan slot with
          | Some r -> r
          | None ->
              let r = ref [] in
              Hashtbl.replace bug_plan slot r;
              r
        in
        cur := pattern :: !cur;
        assign_bugs bug_rng ((patterns, n - 1) :: rest) more
    | _ :: _, [] ->
        invalid_arg "Generator.generate: more bugs than method slots"
  in
  let after_checker_bugs =
    assign_bugs rng
      (List.map (fun (c, n) -> (Patterns.bug_patterns_for c, n)) p.bugs)
      slots
  in
  (* lint bugs draw from a stream of their own: planting them must not
     perturb the shared rng, or every draw after this point — loop
     placement, call targets, pattern choices — changes and the subject is
     a different program (with a different, possibly pathological, analysis
     cost) from its unlinted counterpart *)
  let lint_rng = Rng.create (p.seed lxor 0x6c696e74) in
  ignore
    (assign_bugs lint_rng
       (List.map (fun (l, n) -> (Patterns.lint_patterns_for l, n)) p.lint_bugs)
       after_checker_bugs);
  (* loops sprinkled over a few slots *)
  let loop_slots = Hashtbl.create 8 in
  List.iteri
    (fun i slot -> if i < p.loops_per_subject then Hashtbl.replace loop_slots slot ())
    (Rng.shuffle rng slots);
  let all_helpers = ref [] in
  let all_expected = ref [] in
  let layer_methods : (int, (string * string) list) Hashtbl.t = Hashtbl.create 8 in
  let classes = ref [] in
  for layer = 0 to p.layers - 1 do
    let prev_layer =
      if layer = 0 then []
      else Option.value ~default:[] (Hashtbl.find_opt layer_methods (layer - 1))
    in
    (* call-target assignment: cover every previous-layer method at least
       once before handing out random extras, so no planted bug is dead
       code *)
    let uncovered = ref (Rng.shuffle rng prev_layer) in
    let pick_callees n =
      let rec go n acc =
        if n = 0 || prev_layer = [] then List.rev acc
        else
          match !uncovered with
          | c :: rest ->
              uncovered := rest;
              go (n - 1) (c :: acc)
          | [] -> go (n - 1) (Rng.pick rng prev_layer :: acc)
      in
      go n []
    in
    let this_layer = ref [] in
    for c = 0 to p.classes_per_layer - 1 do
      let cname = Printf.sprintf "%s_L%d_C%d" (String.capitalize_ascii p.name) layer c in
      let methods = ref [] in
      for m = 0 to p.methods_per_class - 1 do
        let name = Printf.sprintf "op%d" m in
        let planted =
          match Hashtbl.find_opt bug_plan (layer, c, m) with
          | Some r -> !r
          | None -> []
        in
        let with_loop = Hashtbl.mem loop_slots (layer, c, m) in
        let mth, helpers, expected =
          gen_method ctx ~cls:cname ~name
            ~callees:(pick_callees (min p.calls_per_method (List.length prev_layer)))
            ~planted
            ~n_patterns:p.patterns_per_method
            ~with_loop
        in
        methods := mth :: !methods;
        all_helpers := !all_helpers @ helpers;
        all_expected := !all_expected @ expected;
        this_layer := (cname, name) :: !this_layer
      done;
      classes := Jir.Builder.cls cname (List.rev !methods) :: !classes
    done;
    Hashtbl.replace layer_methods layer !this_layer
  done;
  (* the entry point drives the top layer *)
  let top = Option.value ~default:[] (Hashtbl.find_opt layer_methods (p.layers - 1)) in
  let main_body =
    List.map
      (fun (cls, name) ->
        Jir.Builder.sstmt ~at:(Patterns.next_line ctx) cls name
          [ Jir.Builder.v "argc" ])
      top
    @ [ Jir.Builder.ret0 ~at:(Patterns.next_line ctx) () ]
  in
  let main_cls =
    Jir.Builder.cls "Main"
      [ Jir.Builder.meth ~cls:"Main" ~name:"main"
          ~params:[ (Jir.Ast.Tint, "argc") ] main_body ]
  in
  let helpers_cls = Jir.Builder.cls helpers_class !all_helpers in
  let program =
    Jir.Builder.resolved
      ~entries:[ ("Main", "main") ]
      (main_cls :: helpers_cls :: List.rev !classes)
  in
  let loc =
    let text = Jir.Pp.program_to_string program in
    List.length (String.split_on_char '\n' text)
  in
  { profile = p;
    program;
    expected = !all_expected;
    loc;
    n_methods = List.length (Jir.Ast.all_methods program) }

(* ------------------------------------------------------------------ *)
(* The four subjects of the evaluation, shaped after Table 1/Table 2:   *)
(* HBase is the largest and carries the most exception bugs; ZooKeeper  *)
(* is the smallest; the lock checker finds exactly one bug, in HDFS.    *)
(* Bug counts are the paper's scaled down by roughly 8x so a laptop     *)
(* regenerates every table in minutes.                                  *)
(* ------------------------------------------------------------------ *)

let mini_zookeeper () =
  generate
    { name = "minizk";
      description = "distributed coordination service (ZooKeeper profile)";
      seed = 101;
      layers = 3;
      classes_per_layer = 2;
      methods_per_class = 3;
      patterns_per_method = 2;
      calls_per_method = 2;
      bugs = [ ("io", 1); ("exception", 7); ("socket", 1); ("null", 1) ];
      lint_bugs =
        [ ("use-before-init", 1); ("dead-branch", 1);
          ("pointsto-never-read", 1) ];
      loops_per_subject = 2 }

let mini_hadoop () =
  generate
    { name = "minihadoop";
      description = "data-processing platform (Hadoop profile)";
      seed = 202;
      layers = 3;
      classes_per_layer = 3;
      methods_per_class = 3;
      patterns_per_method = 2;
      calls_per_method = 2;
      bugs = [ ("exception", 7) ];
      lint_bugs =
        [ ("use-before-init", 1); ("interproc-null", 1);
          ("pointsto-confused-sink", 1) ];
      loops_per_subject = 3 }

let mini_hdfs () =
  generate
    { name = "minihdfs";
      description = "distributed file system (HDFS profile)";
      seed = 303;
      layers = 3;
      classes_per_layer = 3;
      methods_per_class = 3;
      patterns_per_method = 2;
      calls_per_method = 2;
      bugs = [ ("io", 1); ("lock", 1); ("exception", 5); ("socket", 1) ];
      lint_bugs = [ ("null-deref", 1); ("pointsto-never-read", 1) ];
      loops_per_subject = 3 }

let mini_hbase () =
  generate
    { name = "minihbase";
      description = "distributed database (HBase profile)";
      seed = 404;
      layers = 3;
      classes_per_layer = 4;
      methods_per_class = 3;
      patterns_per_method = 2;
      calls_per_method = 2;
      bugs = [ ("io", 2); ("exception", 22) ];
      lint_bugs =
        [ ("null-deref", 1); ("dead-branch", 1); ("interproc-null", 1);
          ("pointsto-never-read", 1); ("pointsto-confused-sink", 1) ];
      loops_per_subject = 4 }

(* Subjects for the DSL-defined checkers (lib/spec builtins).  Each plants
   only its own checker's bugs, so the scored TP counts are exact. *)

let mini_locks () =
  generate
    { name = "minilocks";
      description = "two-lock service (lock_order product-property profile)";
      seed = 505;
      layers = 2;
      classes_per_layer = 2;
      methods_per_class = 2;
      patterns_per_method = 1;
      calls_per_method = 1;
      bugs = [ ("lock_order", 2) ];
      lint_bugs = [];
      loops_per_subject = 1 }

let mini_taint () =
  generate
    { name = "minitaint";
      description = "request handler (taint source-to-sink profile)";
      seed = 606;
      layers = 2;
      classes_per_layer = 2;
      methods_per_class = 2;
      patterns_per_method = 1;
      calls_per_method = 1;
      bugs = [ ("taint", 3) ];
      lint_bugs = [];
      loops_per_subject = 1 }

let mini_close () =
  generate
    { name = "miniclose";
      description = "storage layer (double-close / use-after-close profile)";
      seed = 707;
      layers = 2;
      classes_per_layer = 2;
      methods_per_class = 2;
      patterns_per_method = 1;
      calls_per_method = 1;
      bugs = [ ("close", 2) ];
      lint_bugs = [];
      loops_per_subject = 1 }

(* The handler-aware exception profile: the decoys are undeclared throws
   the caller demonstrably catches -- the plain exception walk reports
   them (its residual false-positive class), exc_twr must not. *)
let mini_twr () =
  generate
    { name = "minitwr";
      description = "try-with-resources idiom (handler-aware exception profile)";
      seed = 808;
      layers = 2;
      classes_per_layer = 2;
      methods_per_class = 2;
      patterns_per_method = 1;
      calls_per_method = 1;
      bugs = [ ("exc_twr", 2); ("exc_twr_decoy", 2) ];
      lint_bugs = [];
      loops_per_subject = 0 }

let all_subjects () =
  [ mini_zookeeper (); mini_hadoop (); mini_hdfs (); mini_hbase () ]

let dsl_subjects () =
  [ mini_locks (); mini_taint (); mini_close (); mini_twr () ]

(* ------------------------------------------------------------------ *)
(* The megaload tier (ISSUE 9): 100K-1M-LoC subjects shaped after what  *)
(* Sawja reports for real Java codebases — many compilation units       *)
(* reusing a shared library (high fan-in), per-unit class-hierarchy     *)
(* depth, and planted bugs at a fixed density per method count.         *)
(*                                                                      *)
(* Each unit is an island with its own entry point: unit call graphs    *)
(* never cross, so the clone tree grows linearly in the unit count      *)
(* (~40 instances per unit) instead of multiplying, while the shared    *)
(* library classes are cloned once per call site — exactly the fan-in   *)
(* profile that stresses the triage tiers and the out-of-core engine.   *)
(* ------------------------------------------------------------------ *)

type mega_profile = {
  m_name : string;
  m_description : string;
  m_seed : int;
  m_units : int;               (* compilation units (call-graph islands) *)
  m_layers : int;              (* hierarchy depth inside a unit *)
  m_classes_per_layer : int;
  m_methods_per_class : int;
  m_calls_per_method : int;
  m_lib_classes : int;         (* shared library classes (fan-in targets) *)
  m_lib_methods : int;         (* methods per shared library class *)
  m_lib_fanin : int;           (* library calls per bottom-layer method *)
  m_bug_every_n_methods : int; (* plant one bug per N method slots *)
  m_pattern_every_n_methods : int;
      (* plant one correct typestate pattern per N method slots; the other
         methods are resource-free straight-line code, which is what most
         of a real million-LoC codebase looks like (and what the escape
         prefilter exists to discard) *)
  m_filler_stmts : int;        (* straight-line int statements per method *)
  m_families : string list;    (* bug families cycled over the plan *)
  m_loops_per_unit : int;
}

(* A mega-tier method body: optional planted piece (bug or correct
   pattern), straight-line integer filler, calls into the callee set,
   return.  Filler is pure scalar code: it adds realistic method length
   without adding branches (CFETs are exponential in branch count) or
   tracked allocations. *)
let mega_method (ctx : Patterns.ctx) ~cls ~name ~callees ~planted ~filler
    ~with_loop =
  let param = "p0" in
  let pieces = ref [] in
  let helpers = ref [] in
  let expected = ref [] in
  List.iter
    (fun mk ->
      let (piece : Patterns.piece) = mk ctx ~param in
      pieces := !pieces @ [ piece.Patterns.stmts ];
      helpers := !helpers @ piece.Patterns.helpers;
      expected := !expected @ piece.Patterns.expected)
    planted;
  let filler_stmts =
    let acc = Patterns.fresh ctx "acc" in
    Jir.Builder.decl ~at:(Patterns.next_line ctx) Jir.Ast.Tint acc
      (Jir.Builder.e (Jir.Builder.v param))
    :: List.concat
         (List.init filler (fun i ->
              let k = (i * 7 mod 23) + 1 in
              [ Jir.Builder.assign ~at:(Patterns.next_line ctx) acc
                  Jir.Builder.(e (v acc +: i k)) ]))
  in
  let call_stmts =
    List.map
      (fun (ccls, cname) ->
        Jir.Builder.sstmt ~at:(Patterns.next_line ctx) ccls cname
          [ Jir.Builder.v param ])
      callees
  in
  let body = List.concat !pieces @ filler_stmts @ call_stmts in
  let body =
    if with_loop then begin
      let iv = Patterns.fresh ctx "it" in
      let acc2 = Patterns.fresh ctx "sum" in
      body
      @ [ Jir.Builder.decl ~at:(Patterns.next_line ctx) Jir.Ast.Tint iv
            (Jir.Builder.e (Jir.Builder.i 0));
          Jir.Builder.decl ~at:(Patterns.next_line ctx) Jir.Ast.Tint acc2
            (Jir.Builder.e (Jir.Builder.v param));
          Jir.Builder.while_ ~at:(Patterns.next_line ctx)
            Jir.Builder.(v iv <: i 2)
            [ Jir.Builder.assign ~at:(Patterns.next_line ctx) acc2
                Jir.Builder.(e (v acc2 +: i 3));
              Jir.Builder.assign ~at:(Patterns.next_line ctx) iv
                Jir.Builder.(e (v iv +: i 1)) ] ]
    end
    else body
  in
  let body = body @ [ Jir.Builder.ret0 ~at:(Patterns.next_line ctx) () ] in
  ( Jir.Builder.meth ~cls ~name ~params:[ (Jir.Ast.Tint, param) ] body,
    !helpers,
    !expected )

let generate_mega (mp : mega_profile) : subject =
  let file = mp.m_name ^ ".jir" in
  let ctx = Patterns.create_ctx ~seed:mp.m_seed ~file ~helpers_class in
  let rng = ctx.Patterns.rng in
  let all_helpers = ref [] in
  let all_expected = ref [] in
  let classes = ref [] in
  (* the shared library: correct-pattern service methods every unit's
     bottom layer calls into *)
  let lib_methods = ref [] in
  for c = 0 to mp.m_lib_classes - 1 do
    let cname = Printf.sprintf "MegaLib%d" c in
    let methods = ref [] in
    for m = 0 to mp.m_lib_methods - 1 do
      let name = Printf.sprintf "svc%d" m in
      (* library methods are cloned once per call site across every unit,
         so only one method per library class carries a tracked-resource
         pattern; the rest are scalar service code *)
      let planted =
        if m = 0 then [ Rng.pick rng Patterns.correct_patterns ] else []
      in
      let mth, helpers, expected =
        mega_method ctx ~cls:cname ~name ~callees:[] ~planted
          ~filler:mp.m_filler_stmts ~with_loop:false
      in
      methods := mth :: !methods;
      all_helpers := !all_helpers @ helpers;
      all_expected := !all_expected @ expected;
      lib_methods := (cname, name) :: !lib_methods
    done;
    classes := Jir.Builder.cls cname (List.rev !methods) :: !classes
  done;
  let lib_methods = List.rev !lib_methods in
  (* the bug plan: one bug per [m_bug_every_n_methods] slots, families
     assigned round-robin over a shuffled slot order *)
  let slots = ref [] in
  for u = 0 to mp.m_units - 1 do
    for layer = 0 to mp.m_layers - 1 do
      for c = 0 to mp.m_classes_per_layer - 1 do
        for m = 0 to mp.m_methods_per_class - 1 do
          slots := (u, layer, c, m) :: !slots
        done
      done
    done
  done;
  let shuffled = Rng.shuffle rng !slots in
  let n_bugs =
    List.length shuffled / max 1 mp.m_bug_every_n_methods
  in
  let bug_plan = Hashtbl.create 256 in
  List.iteri
    (fun i slot ->
      if i < n_bugs && mp.m_families <> [] then begin
        let fam = List.nth mp.m_families (i mod List.length mp.m_families) in
        let pattern = Rng.pick rng (Patterns.bug_patterns_for fam) in
        Hashtbl.replace bug_plan slot pattern
      end)
    shuffled;
  let loop_plan = Hashtbl.create 64 in
  List.iteri
    (fun i slot ->
      if i < mp.m_units * mp.m_loops_per_unit then
        Hashtbl.replace loop_plan slot ())
    (Rng.shuffle rng !slots);
  (* the pattern plan: one correct tracked-resource pattern per
     [m_pattern_every_n_methods] slots; everything else is scalar code *)
  let pattern_plan = Hashtbl.create 256 in
  let n_patterns =
    List.length !slots / max 1 mp.m_pattern_every_n_methods
  in
  List.iteri
    (fun i slot ->
      if i < n_patterns then Hashtbl.replace pattern_plan slot ())
    (Rng.shuffle rng !slots);
  (* the units: layered islands whose bottom layer fans into the shared
     library and whose top layer is driven by a per-unit entry point *)
  let entries = ref [] in
  for u = 0 to mp.m_units - 1 do
    let layer_methods = Hashtbl.create 8 in
    for layer = 0 to mp.m_layers - 1 do
      let prev_layer =
        if layer = 0 then []
        else Option.value ~default:[] (Hashtbl.find_opt layer_methods (layer - 1))
      in
      let uncovered = ref (Rng.shuffle rng prev_layer) in
      let pick_callees n pool =
        let rec go n acc =
          if n = 0 || pool = [] then List.rev acc
          else
            match !uncovered with
            | c :: rest ->
                uncovered := rest;
                go (n - 1) (c :: acc)
            | [] -> go (n - 1) (Rng.pick rng pool :: acc)
        in
        go n []
      in
      let this_layer = ref [] in
      for c = 0 to mp.m_classes_per_layer - 1 do
        let cname = Printf.sprintf "U%d_L%d_C%d" u layer c in
        let methods = ref [] in
        for m = 0 to mp.m_methods_per_class - 1 do
          let name = Printf.sprintf "op%d" m in
          let callees =
            if layer = 0 then
              (* bottom layer: fan into the shared library *)
              List.init mp.m_lib_fanin (fun _ -> Rng.pick rng lib_methods)
            else
              pick_callees
                (min mp.m_calls_per_method (List.length prev_layer))
                prev_layer
          in
          let planted =
            match Hashtbl.find_opt bug_plan (u, layer, c, m) with
            | Some pat -> [ pat ]
            | None ->
                if Hashtbl.mem pattern_plan (u, layer, c, m) then
                  [ Rng.pick rng Patterns.correct_patterns ]
                else []
          in
          let with_loop = Hashtbl.mem loop_plan (u, layer, c, m) in
          let mth, helpers, expected =
            mega_method ctx ~cls:cname ~name ~callees ~planted
              ~filler:mp.m_filler_stmts ~with_loop
          in
          methods := mth :: !methods;
          all_helpers := !all_helpers @ helpers;
          all_expected := !all_expected @ expected;
          this_layer := (cname, name) :: !this_layer
        done;
        classes := Jir.Builder.cls cname (List.rev !methods) :: !classes
      done;
      Hashtbl.replace layer_methods layer !this_layer
    done;
    let top =
      Option.value ~default:[] (Hashtbl.find_opt layer_methods (mp.m_layers - 1))
    in
    let main_cls = Printf.sprintf "U%dMain" u in
    let main_body =
      List.map
        (fun (cls, name) ->
          Jir.Builder.sstmt ~at:(Patterns.next_line ctx) cls name
            [ Jir.Builder.v "argc" ])
        top
      @ [ Jir.Builder.ret0 ~at:(Patterns.next_line ctx) () ]
    in
    classes :=
      Jir.Builder.cls main_cls
        [ Jir.Builder.meth ~cls:main_cls ~name:"main"
            ~params:[ (Jir.Ast.Tint, "argc") ] main_body ]
      :: !classes;
    entries := (main_cls, "main") :: !entries
  done;
  let helpers_cls = Jir.Builder.cls helpers_class !all_helpers in
  let program =
    Jir.Builder.resolved ~entries:(List.rev !entries)
      (helpers_cls :: List.rev !classes)
  in
  let loc =
    let text = Jir.Pp.program_to_string program in
    List.length (String.split_on_char '\n' text)
  in
  { profile =
      { name = mp.m_name;
        description = mp.m_description;
        seed = mp.m_seed;
        layers = mp.m_layers;
        classes_per_layer = mp.m_classes_per_layer;
        methods_per_class = mp.m_methods_per_class;
        patterns_per_method = 0;
        calls_per_method = mp.m_calls_per_method;
        bugs = [];
        lint_bugs = [];
        loops_per_subject = mp.m_units * mp.m_loops_per_unit };
    program;
    expected = !all_expected;
    loc;
    n_methods = List.length (Jir.Ast.all_methods program) }

let default_mega_families =
  [ "io"; "socket"; "exception"; "lock"; "lock_order"; "taint"; "close";
    "exc_twr" ]

(* >=100K LoC at the default 400 units; [units] scales the tier up or
   down (CI uses a smaller count, `bench -- megaload` honours the
   GRAPPLE_MEGALOAD_UNITS environment variable).  The density knobs are
   calibrated to a realistic resource-code ratio: ~1 in 4 methods
   touches a tracked resource, the rest is scalar code the escape
   prefilter exists to discard — which is also what keeps the global
   closure tractable at this scale. *)
let mega_profile ?(name = "mega100k") ?(units = 400) () =
  { m_name = name;
    m_description =
      "megaload tier: shared-library islands, Sawja-style depth";
    m_seed = 900;
    m_units = units;
    m_layers = 2;
    m_classes_per_layer = 3;
    m_methods_per_class = 3;
    m_calls_per_method = 1;
    m_lib_classes = 4;
    m_lib_methods = 4;
    m_lib_fanin = 1;
    m_bug_every_n_methods = 40;
    m_pattern_every_n_methods = 4;
    m_filler_stmts = 14;
    m_families = default_mega_families;
    m_loops_per_unit = 1 }

let mega_100k ?units () =
  generate_mega (mega_profile ~name:"mega100k" ?units ())

(* The paper-scale tier (~1M LoC at 2400 units).  Checking it end to end
   takes minutes, so `bench -- megaload` drives the 100K tier by default
   and this one scales in via GRAPPLE_MEGALOAD_UNITS. *)
let mega_1m ?(units = 2400) () =
  generate_mega (mega_profile ~name:"mega1m" ~units ())
