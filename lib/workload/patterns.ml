(* Code patterns the workload generator plants into synthetic subjects.
   Each pattern produces a statement snippet (plus any helper methods it
   needs) together with the ground-truth expectations it carries, so the
   benchmark harness can score reported warnings as true/false positives.

   The correct variants include *infeasible-path decoys*: code that is only
   safe because the unsafe path contradicts the branch conditions guarding
   it.  A path-insensitive checker reports these; Grapple must not.  They
   are what makes the precision columns of Table 2 meaningful. *)

open Jir.Builder

type exp_kind = [ `Leak | `Error | `Exn | `Lint of string ]
(* [`Lint name] expectations are matched against [Analysis.Lint] diagnostics
   rather than checker reports; the payload is the lint slug *)

type expectation = {
  exp_checker : string;             (* io | lock | socket | exception | lint *)
  exp_kind : exp_kind;
  exp_line : int;
  exp_note : string;
}

type piece = {
  stmts : Jir.Ast.stmt list;
  helpers : Jir.Ast.meth list;  (* added to the subject's Helpers class *)
  expected : expectation list;
}

type ctx = {
  rng : Rng.t;
  file : string;
  mutable line : int;
  mutable counter : int;
  helpers_class : string;
}

let create_ctx ~seed ~file ~helpers_class =
  { rng = Rng.create seed; file; line = 0; counter = 0; helpers_class }

let next_line ctx =
  ctx.line <- ctx.line + 1;
  { Jir.Ast.file = ctx.file; line = ctx.line }

let fresh ctx prefix =
  ctx.counter <- ctx.counter + 1;
  Printf.sprintf "%s%d" prefix ctx.counter

let no_expect stmts = { stmts; helpers = []; expected = [] }

let writer_t = Jir.Ast.Tobj "FileWriter"
let lock_t = Jir.Ast.Tobj "ReentrantLock"
let socket_t = Jir.Ast.Tobj "Socket"

(* ---------------- I/O resource patterns ---------------- *)

(* w = new FileWriter(); w.write(p); w.close();  -- correct *)
let io_ok ctx ~param =
  let w = fresh ctx "w" in
  no_expect
    [ decl ~at:(next_line ctx) writer_t w (new_ "FileWriter" []);
      call_stmt ~at:(next_line ctx) w "write" [ v param ];
      call_stmt ~at:(next_line ctx) w "close" [] ]

(* the close is skipped on a feasible branch -- leak *)
let io_leak_branch ctx ~param =
  let w = fresh ctx "w" in
  let alloc_at = next_line ctx in
  let stmts =
    [ decl ~at:alloc_at writer_t w (new_ "FileWriter" []);
      call_stmt ~at:(next_line ctx) w "write" [ v param ];
      if_ ~at:(next_line ctx)
        (v param >: i 10)
        [ call_stmt ~at:(next_line ctx) w "close" [] ]
        [] ]
  in
  { stmts;
    helpers = [];
    expected =
      [ { exp_checker = "io"; exp_kind = `Leak; exp_line = alloc_at.Jir.Ast.line;
          exp_note = "close skipped when param <= 10" } ] }

(* allocation and close are guarded by the same condition: the path that
   skips the close cannot allocate -- correct, and a decoy for
   path-insensitive checkers *)
let io_safe_infeasible ctx ~param =
  let w = fresh ctx "w" in
  let stmts =
    [ decl ~at:(next_line ctx) writer_t w null;
      if_ ~at:(next_line ctx)
        (v param >=: i 0)
        [ assign ~at:(next_line ctx) w (new_ "FileWriter" []);
          call_stmt ~at:(next_line ctx) w "write" [ i 1 ] ]
        [];
      if_ ~at:(next_line ctx)
        (v param >=: i 0)
        [ call_stmt ~at:(next_line ctx) w "close" [] ]
        [] ]
  in
  no_expect stmts

(* write after close on a feasible branch -- error state *)
let io_use_after_close ctx ~param =
  let w = fresh ctx "w" in
  let alloc_at = next_line ctx in
  let stmts =
    [ decl ~at:alloc_at writer_t w (new_ "FileWriter" []);
      if_ ~at:(next_line ctx)
        (v param >: i 3)
        [ call_stmt ~at:(next_line ctx) w "close" [] ]
        [];
      call_stmt ~at:(next_line ctx) w "write" [ v param ];
      call_stmt ~at:(next_line ctx) w "close" [] ]
  in
  { stmts;
    helpers = [];
    expected =
      [ { exp_checker = "io"; exp_kind = `Error;
          exp_line = alloc_at.Jir.Ast.line;
          exp_note = "write after close when param > 3" } ] }

(* the resource is created by a helper method and closed by the caller --
   correct, exercises parameter passing and value return *)
let io_ok_via_helper ctx ~param =
  let helper_name = fresh ctx "makeWriter" in
  let w = fresh ctx "w" in
  let hw = fresh ctx "hw" in
  let helper =
    meth ~cls:ctx.helpers_class ~name:helper_name ~params:[ (Jir.Ast.Tint, "n") ]
      ~ret:writer_t
      [ decl ~at:(next_line ctx) writer_t hw (new_ "FileWriter" []);
        call_stmt ~at:(next_line ctx) hw "write" [ v "n" ];
        return ~at:(next_line ctx) (Some (v hw)) ]
  in
  { stmts =
      [ decl ~at:(next_line ctx) writer_t w
          (scall_rhs ctx.helpers_class helper_name [ v param ]);
        call_stmt ~at:(next_line ctx) w "close" [] ];
    helpers = [ helper ];
    expected = [] }

(* created by a helper, never closed anywhere -- leak at the helper's
   allocation *)
let io_leak_via_helper ctx ~param =
  let helper_name = fresh ctx "openLog" in
  let w = fresh ctx "w" in
  let hw = fresh ctx "hw" in
  let alloc_at = next_line ctx in
  let helper =
    meth ~cls:ctx.helpers_class ~name:helper_name ~params:[ (Jir.Ast.Tint, "n") ]
      ~ret:writer_t
      [ decl ~at:alloc_at writer_t hw (new_ "FileWriter" []);
        return ~at:(next_line ctx) (Some (v hw)) ]
  in
  { stmts =
      [ decl ~at:(next_line ctx) writer_t w
          (scall_rhs ctx.helpers_class helper_name [ v param ]);
        call_stmt ~at:(next_line ctx) w "write" [ v param ] ];
    helpers = [ helper ];
    expected =
      [ { exp_checker = "io"; exp_kind = `Leak; exp_line = alloc_at.Jir.Ast.line;
          exp_note = "helper-created writer never closed" };
        (* the summary lint proves the same leak without the engine: the
           object reaches no accepting state on any path *)
        { exp_checker = "interproc"; exp_kind = `Lint "interproc-leak";
          exp_line = alloc_at.Jir.Ast.line;
          exp_note = "must-leak under the all-paths summary abstraction" } ] }

(* resource stored into a container field and closed through the loaded
   alias -- correct, exercises store[f] alias load[f] *)
let io_field_alias_ok ctx ~param =
  let h = fresh ctx "holder" in
  let w = fresh ctx "w" in
  let u = fresh ctx "u" in
  no_expect
    [ decl ~at:(next_line ctx) (Jir.Ast.Tobj "Holder") h (new_ "Holder" []);
      decl ~at:(next_line ctx) writer_t w (new_ "FileWriter" []);
      store ~at:(next_line ctx) h "res" w;
      call_stmt ~at:(next_line ctx) w "write" [ v param ];
      decl ~at:(next_line ctx) writer_t u (load h "res");
      call_stmt ~at:(next_line ctx) u "close" [] ]

(* stored into a field and only written through the alias -- leak *)
let io_field_alias_leak ctx ~param =
  let h = fresh ctx "holder" in
  let w = fresh ctx "w" in
  let u = fresh ctx "u" in
  let alloc_at = next_line ctx in
  { stmts =
      [ decl ~at:(next_line ctx) (Jir.Ast.Tobj "Holder") h (new_ "Holder" []);
        decl ~at:alloc_at writer_t w (new_ "FileWriter" []);
        store ~at:(next_line ctx) h "res" w;
        decl ~at:(next_line ctx) writer_t u (load h "res");
        call_stmt ~at:(next_line ctx) u "write" [ v param ] ];
    helpers = [];
    expected =
      [ { exp_checker = "io"; exp_kind = `Leak; exp_line = alloc_at.Jir.Ast.line;
          exp_note = "field-stored writer never closed" } ] }

(* ---------------- lock patterns ---------------- *)

let lock_ok ctx ~param =
  let l = fresh ctx "lk" in
  no_expect
    [ decl ~at:(next_line ctx) lock_t l (new_ "ReentrantLock" []);
      call_stmt ~at:(next_line ctx) l "lock" [];
      call_stmt ~at:(next_line ctx) l "unlock" [];
      if_ ~at:(next_line ctx)
        (v param >: i 0)
        [ call_stmt ~at:(next_line ctx) l "lock" [];
          call_stmt ~at:(next_line ctx) l "unlock" [] ]
        [] ]

(* lock/unlock mis-ordered (the HDFS bug of §5.1) -- error state *)
let lock_misorder ctx ~param:_ =
  let l = fresh ctx "lk" in
  let alloc_at = next_line ctx in
  { stmts =
      [ decl ~at:alloc_at lock_t l (new_ "ReentrantLock" []);
        call_stmt ~at:(next_line ctx) l "unlock" [];
        call_stmt ~at:(next_line ctx) l "lock" [] ];
    helpers = [];
    expected =
      [ { exp_checker = "lock"; exp_kind = `Error;
          exp_line = alloc_at.Jir.Ast.line;
          exp_note = "unlock before lock" } ] }

(* lock held on a feasible early-return-free path -- leak *)
let lock_leak_branch ctx ~param =
  let l = fresh ctx "lk" in
  let alloc_at = next_line ctx in
  { stmts =
      [ decl ~at:alloc_at lock_t l (new_ "ReentrantLock" []);
        call_stmt ~at:(next_line ctx) l "lock" [];
        if_ ~at:(next_line ctx)
          (v param <: i 100)
          [ call_stmt ~at:(next_line ctx) l "unlock" [] ]
          [] ];
    helpers = [];
    expected =
      [ { exp_checker = "lock"; exp_kind = `Leak;
          exp_line = alloc_at.Jir.Ast.line;
          exp_note = "lock not released when param >= 100" } ] }

(* ---------------- socket patterns ---------------- *)

let socket_ok ctx ~param =
  let s = fresh ctx "srv" in
  no_expect
    [ decl ~at:(next_line ctx) (Jir.Ast.Tobj "ServerSocketChannel") s
        (new_ "ServerSocketChannel" []);
      call_stmt ~at:(next_line ctx) s "bind" [ v param ];
      call_stmt ~at:(next_line ctx) s "configureBlocking" [ i 0 ];
      call_stmt ~at:(next_line ctx) s "accept" [];
      call_stmt ~at:(next_line ctx) s "close" [] ]

(* the Figure 1 shape: the socket escapes through an exception raised
   between open and close, and the handler does not close it -- leak *)
let socket_leak_exn ctx ~param =
  let s = fresh ctx "sock" in
  let ev = fresh ctx "e" in
  let alloc_at = next_line ctx in
  { stmts =
      [ decl ~at:alloc_at socket_t s (new_ "Socket" []);
        try_ ~at:(next_line ctx)
          [ call_stmt ~at:(next_line ctx) s "connect" [ v param ];
            call_stmt ~at:(next_line ctx) s "close" [] ]
          [ catch "IOException" ev
              [ (* log only; the socket stays open *)
                decl ~at:(next_line ctx) Jir.Ast.Tint (fresh ctx "code")
                  (Jir.Builder.e (i 1)) ] ] ];
    helpers = [];
    expected =
      [ { exp_checker = "socket"; exp_kind = `Leak;
          exp_line = alloc_at.Jir.Ast.line;
          exp_note = "socket left open on exception path" } ] }

(* same shape with a handler that closes -- correct *)
let socket_ok_exn ctx ~param =
  let s = fresh ctx "sock" in
  let ev = fresh ctx "e" in
  no_expect
    [ decl ~at:(next_line ctx) socket_t s (new_ "Socket" []);
      try_ ~at:(next_line ctx)
        [ call_stmt ~at:(next_line ctx) s "connect" [ v param ];
          call_stmt ~at:(next_line ctx) s "close" [] ]
        [ catch "IOException" ev
            [ call_stmt ~at:(next_line ctx) s "close" [] ] ] ]

(* the full Figure 1 dance: reconfigure saves the old channel, opens and
   configures a new one, and closes the old one only afterwards; the
   configuration calls may throw, and the handler closes neither channel,
   so both leak on the exception path -- two expectations *)
let socket_reconfigure_leak ctx ~param =
  let old_s = fresh ctx "oldSS" in
  let new_s = fresh ctx "ss" in
  let ev = fresh ctx "e" in
  let old_at = next_line ctx in
  let new_at = next_line ctx in
  { stmts =
      [ decl ~at:old_at (Jir.Ast.Tobj "ServerSocketChannel") old_s
          (new_ "ServerSocketChannel" []);
        call_stmt ~at:(next_line ctx) old_s "bind" [ v param ];
        try_ ~at:(next_line ctx)
          [ decl ~at:new_at (Jir.Ast.Tobj "ServerSocketChannel") new_s
              (new_ "ServerSocketChannel" []);
            call_stmt ~at:(next_line ctx) new_s "bind" [ v param +: i 1 ];
            call_stmt ~at:(next_line ctx) new_s "configureBlocking" [ i 0 ];
            call_stmt ~at:(next_line ctx) old_s "close" [];
            call_stmt ~at:(next_line ctx) new_s "close" [] ]
          [ catch "IOException" ev
              [ decl ~at:(next_line ctx) Jir.Ast.Tint (fresh ctx "logged")
                  (Jir.Builder.e (i 1)) ] ] ];
    helpers = [];
    expected =
      [ { exp_checker = "socket"; exp_kind = `Leak;
          exp_line = old_at.Jir.Ast.line;
          exp_note = "old channel not closed when reconfiguration throws" };
        { exp_checker = "socket"; exp_kind = `Leak;
          exp_line = new_at.Jir.Ast.line;
          exp_note = "new channel not closed when its own setup throws" } ] }

(* accept before bind on a feasible path -- error state *)
let socket_accept_unbound ctx ~param =
  let s = fresh ctx "srv" in
  let alloc_at = next_line ctx in
  { stmts =
      [ decl ~at:alloc_at (Jir.Ast.Tobj "ServerSocketChannel") s
          (new_ "ServerSocketChannel" []);
        if_ ~at:(next_line ctx)
          (v param >: i 0)
          [ call_stmt ~at:(next_line ctx) s "bind" [ v param ] ]
          [];
        call_stmt ~at:(next_line ctx) s "accept" [];
        call_stmt ~at:(next_line ctx) s "close" [] ];
    helpers = [];
    expected =
      [ { exp_checker = "socket"; exp_kind = `Error;
          exp_line = alloc_at.Jir.Ast.line;
          exp_note = "accept on unbound channel when param <= 0" } ] }

(* ---------------- exception patterns ---------------- *)

(* a helper throws an application error that no caller handles -- bug *)
let exn_unhandled ctx ~param =
  let helper_name = fresh ctx "risky" in
  let throw_at = next_line ctx in
  let helper =
    meth ~cls:ctx.helpers_class ~name:helper_name ~params:[ (Jir.Ast.Tint, "n") ]
      ~throws:[ "AppError" ]
      [ if_ ~at:(next_line ctx)
          (v "n" >: i 0)
          [ throw ~at:throw_at "AppError" ]
          [];
        ret0 ~at:(next_line ctx) () ]
  in
  { stmts = [ sstmt ~at:(next_line ctx) ctx.helpers_class helper_name [ v param ] ];
    helpers = [ helper ];
    expected =
      [ { exp_checker = "exception"; exp_kind = `Exn;
          exp_line = throw_at.Jir.Ast.line;
          exp_note = "AppError escapes every caller" } ] }

(* same, but the caller installs a handler -- correct *)
let exn_handled ctx ~param =
  let helper_name = fresh ctx "guarded" in
  let ev = fresh ctx "e" in
  let helper =
    meth ~cls:ctx.helpers_class ~name:helper_name ~params:[ (Jir.Ast.Tint, "n") ]
      ~throws:[ "AppError" ]
      [ if_ ~at:(next_line ctx)
          (v "n" >: i 5)
          [ throw ~at:(next_line ctx) "AppError" ]
          [];
        ret0 ~at:(next_line ctx) () ]
  in
  { stmts =
      [ try_ ~at:(next_line ctx)
          [ sstmt ~at:(next_line ctx) ctx.helpers_class helper_name [ v param ] ]
          [ catch "AppError" ev [] ] ];
    helpers = [ helper ];
    expected = [] }

(* a throw that is structurally guarded by an impossible condition --
   correct for the exception checker (decoy for path-insensitive ones), but
   the guard *is* a dead branch, and the lint layer proves it: the ground
   truth records that so the lint scorer counts the diagnostic as a TP *)
let exn_infeasible ctx ~param =
  let x = fresh ctx "x" in
  let decl_at = next_line ctx in
  let if_at = next_line ctx in
  { stmts =
      [ decl ~at:decl_at Jir.Ast.Tint x (Jir.Builder.e (v param *: i 2));
        if_ ~at:if_at
          ((v x >: v param +: v param))
          [ throw ~at:(next_line ctx) "AppError" ]
          [] ];
    helpers = [];
    expected =
      [ { exp_checker = "lint"; exp_kind = `Lint "dead-branch";
          exp_line = if_at.Jir.Ast.line;
          exp_note = "x = 2p can never exceed p + p" } ] }

(* ---------------- null-dereference patterns (extension checker) ------- *)

(* the receiver may still be null on a feasible path -- null deref *)
let null_deref_branch ctx ~param =
  let w = fresh ctx "nw" in
  let null_at = next_line ctx in
  { stmts =
      [ decl ~at:null_at writer_t w null;
        if_ ~at:(next_line ctx)
          (v param >: i 0)
          [ assign ~at:(next_line ctx) w (new_ "FileWriter" []);
            call_stmt ~at:(next_line ctx) w "write" [ v param ] ]
          [];
        call_stmt ~at:(next_line ctx) w "close" [] ];
    helpers = [];
    expected =
      [ { exp_checker = "null"; exp_kind = `Error;
          exp_line = null_at.Jir.Ast.line;
          exp_note = "close on null receiver when param <= 0" } ] }

(* every dereference is dominated by the same guard as the assignment --
   correct, and a decoy for path-insensitive null checkers *)
let null_safe_guarded ctx ~param =
  let w = fresh ctx "nw" in
  no_expect
    [ decl ~at:(next_line ctx) writer_t w null;
      if_ ~at:(next_line ctx)
        (v param >=: i 10)
        [ assign ~at:(next_line ctx) w (new_ "FileWriter" []) ]
        [];
      if_ ~at:(next_line ctx)
        (v param >=: i 10)
        [ call_stmt ~at:(next_line ctx) w "write" [ v param ];
          call_stmt ~at:(next_line ctx) w "close" [] ]
        [] ]

(* ---------------- lint-detectable patterns (Analysis.Lint) ------------ *)

(* the writer is used before its first assignment -- use-before-init; the
   later assignment and close keep the io checker quiet, so only the lint
   layer flags this *)
let lint_use_before_init ctx ~param =
  let w = fresh ctx "uw" in
  let decl_at = next_line ctx in
  let use_at = next_line ctx in
  { stmts =
      [ decl0 ~at:decl_at writer_t w;
        call_stmt ~at:use_at w "write" [ v param ];
        assign ~at:(next_line ctx) w (new_ "FileWriter" []);
        call_stmt ~at:(next_line ctx) w "close" [] ];
    helpers = [];
    expected =
      [ { exp_checker = "lint"; exp_kind = `Lint "use-before-init";
          exp_line = use_at.Jir.Ast.line;
          exp_note = "write before the writer is ever assigned" } ] }

(* unconditional dereference of a definitely-null variable -- both the lint
   layer (statically, any run) and the null checker (when enabled) see it,
   so the ground truth carries one expectation for each *)
let lint_null_deref ctx ~param =
  let w = fresh ctx "dn" in
  let null_at = next_line ctx in
  let deref_at = next_line ctx in
  { stmts =
      [ decl ~at:null_at writer_t w null;
        call_stmt ~at:deref_at w "write" [ v param ] ];
    helpers = [];
    expected =
      [ { exp_checker = "lint"; exp_kind = `Lint "null-deref";
          exp_line = deref_at.Jir.Ast.line;
          exp_note = "receiver is null on every path" };
        { exp_checker = "null"; exp_kind = `Error;
          exp_line = null_at.Jir.Ast.line;
          exp_note = "null checker sees the same dereference" } ] }

(* a helper that returns null on every path, dereferenced by the caller.
   Intraprocedurally the call result is unknown, so the local null-deref
   lint stays quiet -- only the summary-based interprocedural lint
   (interproc-null) sees the flow.  This is the injected bug the issue's
   acceptance criterion requires --interproc to catch. *)
let interproc_null_via_return ctx ~param =
  let helper_name = fresh ctx "defaultWriter" in
  let w = fresh ctx "iw" in
  let r = fresh ctx "ir" in
  let helper =
    meth ~cls:ctx.helpers_class ~name:helper_name
      ~params:[ (Jir.Ast.Tint, "n") ] ~ret:writer_t
      [ decl ~at:(next_line ctx) writer_t r null;
        return ~at:(next_line ctx) (Some (v r)) ]
  in
  let call_at = next_line ctx in
  let deref_at = next_line ctx in
  { stmts =
      [ decl ~at:call_at writer_t w
          (scall_rhs ctx.helpers_class helper_name [ v param ]);
        call_stmt ~at:deref_at w "write" [ v param ] ];
    helpers = [ helper ];
    expected =
      [ { exp_checker = "interproc"; exp_kind = `Lint "interproc-null";
          exp_line = deref_at.Jir.Ast.line;
          exp_note = "helper returns null on every path" } ] }

(* a branch on an arithmetically impossible condition with real code under
   it -- dead branch; needs the solver, not just constant folding *)
let lint_dead_branch ctx ~param =
  let z = fresh ctx "z" in
  let z_at = next_line ctx in
  let if_at = next_line ctx in
  { stmts =
      [ decl ~at:z_at Jir.Ast.Tint z (Jir.Builder.e (v param -: v param));
        if_ ~at:if_at
          (v z >: i 0)
          [ assign ~at:(next_line ctx) z (Jir.Builder.e (v z +: i 1)) ]
          [] ];
    helpers = [];
    expected =
      [ { exp_checker = "lint"; exp_kind = `Lint "dead-branch";
          exp_line = if_at.Jir.Ast.line;
          exp_note = "z = p - p is always 0, branch never taken" } ] }

(* ---------------- DSL-checker patterns (lib/spec builtins) ------------ *)

(* Ground truth for the four DSL-defined checkers.  The ok twins live
   inside the bug pieces (not in [correct_patterns]) so adding these
   checkers cannot perturb the rng stream of the existing profiles. *)

let lock_pair_t = Jir.Ast.Tobj "LockPair"
let user_input_t = Jir.Ast.Tobj "UserInput"

(* B acquired before A -- the product property's error; the ok twin takes
   the locks in order *)
let lock_order_inversion ctx ~param:_ =
  let q = fresh ctx "lp" in
  let r = fresh ctx "lp" in
  let alloc_at = next_line ctx in
  { stmts =
      [ decl ~at:(next_line ctx) lock_pair_t q (new_ "LockPair" []);
        call_stmt ~at:(next_line ctx) q "lockA" [];
        call_stmt ~at:(next_line ctx) q "lockB" [];
        call_stmt ~at:(next_line ctx) q "unlockA" [];
        decl ~at:alloc_at lock_pair_t r (new_ "LockPair" []);
        call_stmt ~at:(next_line ctx) r "lockB" [];
        call_stmt ~at:(next_line ctx) r "lockA" [];
        call_stmt ~at:(next_line ctx) r "unlockA" [] ];
    helpers = [];
    expected =
      [ { exp_checker = "lock_order"; exp_kind = `Error;
          exp_line = alloc_at.Jir.Ast.line;
          exp_note = "B acquired before A" } ] }

(* the inversion happens only on a feasible branch; the other path is
   clean, so a path-sensitive checker reports exactly one warning *)
let lock_order_branch ctx ~param =
  let r = fresh ctx "lp" in
  let alloc_at = next_line ctx in
  { stmts =
      [ decl ~at:alloc_at lock_pair_t r (new_ "LockPair" []);
        if_ ~at:(next_line ctx)
          (v param >: i 2)
          [ call_stmt ~at:(next_line ctx) r "lockB" [] ]
          [];
        call_stmt ~at:(next_line ctx) r "lockA" [];
        call_stmt ~at:(next_line ctx) r "unlockA" [] ];
    helpers = [];
    expected =
      [ { exp_checker = "lock_order"; exp_kind = `Error;
          exp_line = alloc_at.Jir.Ast.line;
          exp_note = "B first when param > 2" } ] }

(* tainted input reaches exec() unsanitized; the twin sanitizes first *)
let taint_exec ctx ~param:_ =
  let s = fresh ctx "in" in
  let u = fresh ctx "in" in
  let alloc_at = next_line ctx in
  { stmts =
      [ decl ~at:(next_line ctx) user_input_t s (new_ "UserInput" []);
        call_stmt ~at:(next_line ctx) s "sanitize" [];
        call_stmt ~at:(next_line ctx) s "exec" [];
        decl ~at:alloc_at user_input_t u (new_ "UserInput" []);
        call_stmt ~at:(next_line ctx) u "exec" [] ];
    helpers = [];
    expected =
      [ { exp_checker = "taint"; exp_kind = `Error;
          exp_line = alloc_at.Jir.Ast.line;
          exp_note = "exec before sanitize" } ] }

(* send() is a sink only with mode flag 0 (the `when arg 0 == 0' guard);
   the twin sends with flag 1 and stays clean *)
let taint_send_flag ctx ~param:_ =
  let t = fresh ctx "in" in
  let u = fresh ctx "in" in
  let alloc_at = next_line ctx in
  { stmts =
      [ decl ~at:(next_line ctx) user_input_t t (new_ "UserInput" []);
        call_stmt ~at:(next_line ctx) t "send" [ i 1 ];
        decl ~at:alloc_at user_input_t u (new_ "UserInput" []);
        call_stmt ~at:(next_line ctx) u "send" [ i 0 ] ];
    helpers = [];
    expected =
      [ { exp_checker = "taint"; exp_kind = `Error;
          exp_line = alloc_at.Jir.Ast.line;
          exp_note = "send with mode 0 before sanitize" } ] }

(* a field store is a sink: the tainted object escapes into the heap.
   The store also disqualifies the object from the escape pre-filter, so
   this pattern exercises the engine path of the DSL checkers *)
let taint_store ctx ~param:_ =
  let h = fresh ctx "holder" in
  let u = fresh ctx "in" in
  let alloc_at = next_line ctx in
  let store_at = next_line ctx in
  { stmts =
      [ decl ~at:(next_line ctx) (Jir.Ast.Tobj "Holder") h (new_ "Holder" []);
        decl ~at:alloc_at user_input_t u (new_ "UserInput" []);
        store ~at:store_at h "data" u ];
    helpers = [];
    expected =
      [ { exp_checker = "taint"; exp_kind = `Error;
          exp_line = alloc_at.Jir.Ast.line;
          exp_note = "stored to the heap before sanitize" };
        (* the stored field is also never loaded anywhere, so the
           points-to never-read lint fires at the store *)
        { exp_checker = "pointsto"; exp_kind = `Lint "pointsto-never-read";
          exp_line = store_at.Jir.Ast.line;
          exp_note = "field 'data' is stored but never loaded" } ] }

(* double close; the twin reads then closes once *)
let close_double ctx ~param =
  let ok = fresh ctx "fh" in
  let f = fresh ctx "fh" in
  let alloc_at = next_line ctx in
  { stmts =
      [ decl ~at:(next_line ctx) (Jir.Ast.Tobj "FileChannel") ok
          (new_ "FileChannel" []);
        call_stmt ~at:(next_line ctx) ok "read" [ v param ];
        call_stmt ~at:(next_line ctx) ok "close" [];
        decl ~at:alloc_at (Jir.Ast.Tobj "RandomAccessFile") f
          (new_ "RandomAccessFile" []);
        call_stmt ~at:(next_line ctx) f "read" [ v param ];
        call_stmt ~at:(next_line ctx) f "close" [];
        call_stmt ~at:(next_line ctx) f "close" [] ];
    helpers = [];
    expected =
      [ { exp_checker = "close"; exp_kind = `Error;
          exp_line = alloc_at.Jir.Ast.line;
          exp_note = "closed twice" } ] }

(* seek after a branch-guarded close: use-after-close on the closing path,
   clean on the other *)
let close_use_after_branch ctx ~param =
  let g = fresh ctx "fh" in
  let alloc_at = next_line ctx in
  { stmts =
      [ decl ~at:alloc_at (Jir.Ast.Tobj "FileChannel") g
          (new_ "FileChannel" []);
        call_stmt ~at:(next_line ctx) g "write" [ v param ];
        if_ ~at:(next_line ctx)
          (v param >: i 5)
          [ call_stmt ~at:(next_line ctx) g "close" [] ]
          [];
        call_stmt ~at:(next_line ctx) g "seek" [ v param ];
        call_stmt ~at:(next_line ctx) g "close" [] ];
    helpers = [];
    expected =
      [ { exp_checker = "close"; exp_kind = `Error;
          exp_line = alloc_at.Jir.Ast.line;
          exp_note = "seek after close when param > 5" } ] }

(* a helper throws an exception its signature does not declare and no
   caller handles it: a true positive for both the plain and the
   handler-aware exception walk *)
let exc_twr_unhandled ctx ~param =
  let helper_name = fresh ctx "riskyU" in
  let throw_at = next_line ctx in
  let helper =
    meth ~cls:ctx.helpers_class ~name:helper_name ~params:[ (Jir.Ast.Tint, "n") ]
      [ if_ ~at:(next_line ctx)
          (v "n" >: i 0)
          [ throw ~at:throw_at "AppError" ]
          [];
        ret0 ~at:(next_line ctx) () ]
  in
  { stmts = [ sstmt ~at:(next_line ctx) ctx.helpers_class helper_name [ v param ] ];
    helpers = [ helper ];
    expected =
      [ { exp_checker = "exc_twr"; exp_kind = `Exn;
          exp_line = throw_at.Jir.Ast.line;
          exp_note = "undeclared AppError escapes every caller" } ] }

(* the try-with-resources idiom the paper's exception checker
   false-positives on: the throw is undeclared, so the CFET has no
   caller-side divergence, but the caller lexically wraps the call in a
   matching try/catch.  No expectation: the plain walk reports it (a false
   positive), the handler-aware walk must not *)
let exc_twr_handled_decoy ctx ~param =
  let helper_name = fresh ctx "riskyH" in
  let ev = fresh ctx "e" in
  let helper =
    meth ~cls:ctx.helpers_class ~name:helper_name ~params:[ (Jir.Ast.Tint, "n") ]
      [ if_ ~at:(next_line ctx)
          (v "n" >: i 3)
          [ throw ~at:(next_line ctx) "AppError" ]
          [];
        ret0 ~at:(next_line ctx) () ]
  in
  { stmts =
      [ try_ ~at:(next_line ctx)
          [ sstmt ~at:(next_line ctx) ctx.helpers_class helper_name [ v param ] ]
          [ catch "AppError" ev [] ] ];
    helpers = [ helper ];
    expected = [] }

(* ---------------- points-to lint patterns ---------------- *)

(* a lock is parked into a holder field nobody ever loads: dead heap
   traffic the whole-program points-to lint reports at the store.  The
   pattern doubles as the acceptance witness for the points-to pre-filter
   tier: the store disqualifies the lock from the escape tier and
   wildcards it in the summary tier, but its reachable event alphabet is
   empty, so the lock FSM can never leave its accepting initial state —
   only the points-to tier proves it unreportable *)
let pointsto_never_read ctx ~param:_ =
  let h = fresh ctx "holder" in
  let l = fresh ctx "lk" in
  let store_at = next_line ctx in
  { stmts =
      [ decl ~at:(next_line ctx) (Jir.Ast.Tobj "Holder") h (new_ "Holder" []);
        decl ~at:(next_line ctx) lock_t l (new_ "ReentrantLock" []);
        store ~at:store_at h "parked" l ];
    helpers = [];
    expected =
      [ { exp_checker = "pointsto";
          exp_kind = `Lint "pointsto-never-read";
          exp_line = store_at.Jir.Ast.line;
          exp_note = "field 'parked' is stored but never loaded" } ] }

(* user input parked in a holder field crosses a method boundary through
   the heap and reaches exec() in the callee: no single method sees both
   the source allocation and the sink, so only the whole-program
   points-to lint can connect them *)
let pointsto_confused_sink ctx ~param:_ =
  let helper_name = fresh ctx "drain" in
  let h = fresh ctx "holder" in
  let u = fresh ctx "in" in
  let hw = fresh ctx "w" in
  let load_at = next_line ctx in
  let sink_at = next_line ctx in
  let helper =
    meth ~cls:ctx.helpers_class ~name:helper_name
      ~params:[ (Jir.Ast.Tobj "Holder", "b") ]
      [ decl ~at:load_at user_input_t hw (load "b" "payload");
        call_stmt ~at:sink_at hw "exec" [];
        ret0 ~at:(next_line ctx) () ]
  in
  { stmts =
      [ decl ~at:(next_line ctx) (Jir.Ast.Tobj "Holder") h (new_ "Holder" []);
        decl ~at:(next_line ctx) user_input_t u (new_ "UserInput" []);
        store ~at:(next_line ctx) h "payload" u;
        sstmt ~at:(next_line ctx) ctx.helpers_class helper_name [ v h ] ];
    helpers = [ helper ];
    expected =
      [ { exp_checker = "pointsto";
          exp_kind = `Lint "pointsto-confused-sink";
          exp_line = sink_at.Jir.Ast.line;
          exp_note = "heap-borne UserInput reaches exec in the callee" } ] }

(* ---------------- filler ---------------- *)

(* plain integer computation with branches; no property involved *)
let filler ctx ~param =
  let a = fresh ctx "a" in
  let b = fresh ctx "b" in
  no_expect
    [ decl ~at:(next_line ctx) Jir.Ast.Tint a (Jir.Builder.e (v param +: i 7));
      decl ~at:(next_line ctx) Jir.Ast.Tint b (Jir.Builder.e (v a *: i 2));
      if_ ~at:(next_line ctx)
        (v b >: v a)
        [ assign ~at:(next_line ctx) a (Jir.Builder.e (v b -: i 1)) ]
        [ assign ~at:(next_line ctx) b (Jir.Builder.e (v a +: i 1)) ] ]

(* the pattern sets, grouped the way the generator plants them *)
let correct_patterns =
  [ io_ok; io_safe_infeasible; io_ok_via_helper; io_field_alias_ok; lock_ok;
    socket_ok; socket_ok_exn; exn_handled; exn_infeasible; null_safe_guarded;
    filler ]

let bug_patterns_for = function
  | "io" -> [ io_leak_branch; io_use_after_close; io_leak_via_helper;
              io_field_alias_leak ]
  | "lock" -> [ lock_misorder; lock_leak_branch ]
  | "socket" -> [ socket_leak_exn; socket_accept_unbound; socket_reconfigure_leak ]
  | "exception" -> [ exn_unhandled ]
  | "null" -> [ null_deref_branch ]
  | "lock_order" -> [ lock_order_inversion; lock_order_branch ]
  | "taint" -> [ taint_exec; taint_send_flag; taint_store ]
  | "close" -> [ close_double; close_use_after_branch ]
  | "exc_twr" -> [ exc_twr_unhandled ]
  | "exc_twr_decoy" -> [ exc_twr_handled_decoy ]
  | c -> invalid_arg ("Patterns.bug_patterns_for: " ^ c)

(* lint-detectable bug patterns, keyed by lint slug (Analysis.Lint names) *)
let lint_patterns_for = function
  | "use-before-init" -> [ lint_use_before_init ]
  | "null-deref" -> [ lint_null_deref ]
  | "dead-branch" -> [ lint_dead_branch ]
  | "interproc-null" -> [ interproc_null_via_return ]
  | "pointsto-never-read" -> [ pointsto_never_read ]
  | "pointsto-confused-sink" -> [ pointsto_confused_sink ]
  | c -> invalid_arg ("Patterns.lint_patterns_for: " ^ c)
