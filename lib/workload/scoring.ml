(* Scoring of checker warnings against a subject's injected ground truth
   (Table 2).  A warning is a true positive when an injected bug with the
   same checker, compatible kind, and the same source line matches; each
   expectation matches at most one warning.  Unmatched warnings are false
   positives; unmatched expectations are misses (false negatives). *)

module Report = Grapple.Report

type score = {
  tp : int;
  fp : int;
  fn : int;
  fp_reports : Report.t list;
  missed : Patterns.expectation list;
}

let kind_matches (k : Report.kind) (e : Patterns.exp_kind) =
  match (k, e) with
  | Report.Leak _, `Leak
  | Report.Error_state _, `Error
  | Report.Unhandled_exception _, `Exn ->
      true
  | _ -> false

let report_line (r : Report.t) = r.Report.alloc_at.Jir.Ast.line

(* Score the warnings of one checker.

   An empty filtered ground truth is an error by default: a score of
   "0 FN" against a subject that planted no bugs of [checker] is
   vacuous, and silently reporting it as a perfect run hides harness
   misconfiguration (wrong checker name, wrong subject).  Callers that
   legitimately score a no-bugs combination — e.g. a clean-subject
   false-positive count — opt in with [~allow_empty:true]. *)
let score ?(allow_empty = false) ~(checker : string)
    ~(expected : Patterns.expectation list) ~(reports : Report.t list) () :
    score =
  let expected =
    List.filter (fun e -> e.Patterns.exp_checker = checker) expected
  in
  if expected = [] && not allow_empty then
    invalid_arg
      (Printf.sprintf
         "Scoring.score: no ground-truth expectations for checker %S (pass \
          ~allow_empty:true to score a zero-bug subject)"
         checker);
  let reports = List.filter (fun r -> r.Report.checker = checker) reports in
  let unmatched = Hashtbl.create 16 in
  List.iteri (fun i e -> Hashtbl.replace unmatched i e) expected;
  let tp = ref 0 in
  let fp_reports = ref [] in
  List.iter
    (fun r ->
      let matching =
        Hashtbl.fold
          (fun i e best ->
            match best with
            | Some _ -> best
            | None ->
                if
                  kind_matches r.Report.kind e.Patterns.exp_kind
                  && report_line r = e.Patterns.exp_line
                then Some i
                else None)
          unmatched None
      in
      match matching with
      | Some i ->
          Hashtbl.remove unmatched i;
          incr tp
      | None -> fp_reports := r :: !fp_reports)
    reports;
  let missed = Hashtbl.fold (fun _ e acc -> e :: acc) unmatched [] in
  { tp = !tp;
    fp = List.length !fp_reports;
    fn = List.length missed;
    fp_reports = List.rev !fp_reports;
    missed }

let pp ppf (s : score) =
  Fmt.pf ppf "TP=%d FP=%d FN=%d" s.tp s.fp s.fn

(* ------------------------------------------------------------------ *)
(* Lint diagnostics scored the same way: an expectation with checker    *)
(* "lint" and kind `Lint name matches a diagnostic of that lint on the  *)
(* same source line, at most once.                                      *)
(* ------------------------------------------------------------------ *)

type lint_score = {
  ltp : int;
  lfp : int;
  lfn : int;
  lfp_diags : Analysis.Lint.diag list;
  lmissed : Patterns.expectation list;
}

(* [checker] selects which expectations the diagnostics are scored
   against: "lint" (default) for the intraprocedural lints, "interproc"
   for the summary-based whole-program lints. *)
let score_lints ?(allow_empty = false) ?(checker = "lint")
    ~(expected : Patterns.expectation list)
    (diags : Analysis.Lint.diag list) : lint_score =
  let expected =
    List.filter (fun e -> e.Patterns.exp_checker = checker) expected
  in
  if expected = [] && not allow_empty then
    invalid_arg
      (Printf.sprintf
         "Scoring.score_lints: no ground-truth expectations for %S (pass \
          ~allow_empty:true to score a zero-bug subject)"
         checker);
  let unmatched = Hashtbl.create 16 in
  List.iteri (fun i e -> Hashtbl.replace unmatched i e) expected;
  let tp = ref 0 in
  let fp_diags = ref [] in
  List.iter
    (fun (d : Analysis.Lint.diag) ->
      let matching =
        Hashtbl.fold
          (fun i e best ->
            match best with
            | Some _ -> best
            | None -> (
                match e.Patterns.exp_kind with
                | `Lint name
                  when name = d.Analysis.Lint.lint
                       && d.Analysis.Lint.at.Jir.Ast.line = e.Patterns.exp_line
                  ->
                    Some i
                | _ -> None))
          unmatched None
      in
      match matching with
      | Some i ->
          Hashtbl.remove unmatched i;
          incr tp
      | None -> fp_diags := d :: !fp_diags)
    diags;
  let lmissed = Hashtbl.fold (fun _ e acc -> e :: acc) unmatched [] in
  { ltp = !tp;
    lfp = List.length !fp_diags;
    lfn = List.length lmissed;
    lfp_diags = List.rev !fp_diags;
    lmissed }

let pp_lint ppf (s : lint_score) =
  Fmt.pf ppf "TP=%d FP=%d FN=%d" s.ltp s.lfp s.lfn
